// Command benchguard compares Go benchmark results against a committed
// baseline and exits non-zero when any benchmark regressed beyond the
// tolerance — the CI tripwire for the solver's performance budget (see
// docs/PERFORMANCE.md).
//
// It reads `go test -json -bench` streams (the BENCH_*.json artifacts CI
// already uploads) or plain `go test -bench` text, extracts every
// "Benchmark... ns/op" line, and keeps the minimum ns/op per benchmark
// name (the least-noisy statistic for a tripwire). The GOMAXPROCS suffix
// ("-4") is stripped so baselines survive runner core-count changes.
//
// Usage:
//
//	benchguard -baseline .github/bench_baseline.json BENCH_game.json BENCH_platform.json
//	benchguard -baseline .github/bench_baseline.json -update BENCH_game.json ...
//
// A benchmark present in the baseline but absent from the inputs is only a
// warning (CI shards benches across artifacts); a regression beyond
// -tolerance (default 0.15 = +15% ns/op) is fatal. New benchmarks are
// reported so the baseline can be refreshed with -update.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// benchLine matches a benchmark result line. The leading name is optional:
// test2json events carry the name in the Test field and often emit the
// result line as bare "       2\t  123 ns/op" output.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)?\s*\d+\s+([0-9.]+) ns/op`)

// procsSuffix is the GOMAXPROCS suffix go test appends to benchmark names.
var procsSuffix = regexp.MustCompile(`-\d+$`)

// parse extracts benchmark name -> minimum ns/op from a test2json stream or
// plain benchmark text.
func parse(r io.Reader, into map[string]float64) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		text, name := line, ""
		if line[0] == '{' {
			var ev event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				return err
			}
			if ev.Action != "output" {
				continue
			}
			text = strings.TrimSpace(ev.Output)
			name = ev.Test
		}
		m := benchLine.FindStringSubmatch(text)
		if m == nil {
			continue
		}
		if m[1] != "" {
			name = m[1]
		}
		if !strings.HasPrefix(name, "Benchmark") {
			continue
		}
		name = procsSuffix.ReplaceAllString(name, "")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return fmt.Errorf("bad ns/op in %q: %w", text, err)
		}
		if prev, ok := into[name]; !ok || ns < prev {
			into[name] = ns
		}
	}
	return sc.Err()
}

// check compares current results against the baseline and returns the
// regression report lines, the informational lines, and whether the run
// passed.
func check(baseline, current map[string]float64, tolerance float64) (bad, info []string) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			info = append(info, fmt.Sprintf("warn: %s in baseline but not in inputs", name))
			continue
		}
		if base <= 0 {
			continue
		}
		ratio := cur/base - 1
		if ratio > tolerance {
			bad = append(bad, fmt.Sprintf("%s regressed %.1f%%: %.0f ns/op (baseline %.0f, tolerance %.0f%%)",
				name, ratio*100, cur, base, tolerance*100))
		}
	}
	extra := make([]string, 0)
	for name := range current {
		if _, ok := baseline[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		info = append(info, fmt.Sprintf("note: %s not in baseline (run with -update to add)", name))
	}
	return bad, info
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", ".github/bench_baseline.json", "committed baseline file")
	tolerance := fs.Float64("tolerance", 0.15, "fatal relative ns/op regression (0.15 = +15%)")
	update := fs.Bool("update", false, "rewrite the baseline from the inputs instead of checking")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "benchguard: no bench result files given")
		return 2
	}
	current := map[string]float64{}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "benchguard: %v\n", err)
			return 2
		}
		err = parse(f, current)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "benchguard: %s: %v\n", path, err)
			return 2
		}
	}
	if len(current) == 0 {
		fmt.Fprintln(stderr, "benchguard: no benchmark results found in inputs")
		return 2
	}
	if *update {
		buf, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchguard: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*baselinePath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchguard: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchguard: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return 0
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchguard: %v (run with -update to create)\n", err)
		return 2
	}
	baseline := map[string]float64{}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(stderr, "benchguard: %s: %v\n", *baselinePath, err)
		return 2
	}
	bad, info := check(baseline, current, *tolerance)
	for _, line := range info {
		fmt.Fprintln(stdout, line)
	}
	if len(bad) > 0 {
		for _, line := range bad {
			fmt.Fprintln(stderr, line)
		}
		return 1
	}
	fmt.Fprintf(stdout, "benchguard: %d benchmarks within %.0f%% of baseline\n",
		len(baseline), *tolerance*100)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
