package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleStream = `{"Action":"output","Package":"fairtask/internal/game","Output":"BenchmarkSolveFGT/W200-4         \t       1\t  31415926 ns/op\t 1024 B/op\t 12 allocs/op\n"}
{"Action":"output","Package":"fairtask/internal/game","Output":"BenchmarkSolveFGT/W200-4         \t       1\t  29000000 ns/op\n"}
{"Action":"output","Package":"fairtask/internal/game","Output":"some unrelated output\n"}
{"Action":"output","Package":"fairtask/internal/platform","Test":"BenchmarkBatch/pool=2","Output":"       2\t   2598992 ns/op\n"}
{"Action":"run","Package":"fairtask/internal/game"}
BenchmarkPlainText-8   	     100	    5000 ns/op
`

func TestParse(t *testing.T) {
	got := map[string]float64{}
	if err := parse(strings.NewReader(sampleStream), got); err != nil {
		t.Fatal(err)
	}
	// Duplicate results keep the minimum, the -4/-8 suffixes are stripped,
	// and bare result lines take their name from the event's Test field.
	want := map[string]float64{
		"BenchmarkSolveFGT/W200": 29000000,
		"BenchmarkBatch/pool=2":  2598992,
		"BenchmarkPlainText":     5000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestCheck(t *testing.T) {
	baseline := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100, "BenchmarkGone": 50}
	current := map[string]float64{"BenchmarkA": 110, "BenchmarkB": 120, "BenchmarkNew": 7}
	bad, info := check(baseline, current, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "BenchmarkB") {
		t.Fatalf("regressions = %v, want exactly BenchmarkB", bad)
	}
	joined := strings.Join(info, "\n")
	if !strings.Contains(joined, "BenchmarkGone") || !strings.Contains(joined, "BenchmarkNew") {
		t.Errorf("info lines missing baseline-only/new benchmarks:\n%s", joined)
	}
}

func TestRunUpdateThenCheck(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(sampleStream), 0o644); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "baseline.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", base, "-update", in}, &out, &errb); code != 0 {
		t.Fatalf("update exited %d: %s", code, errb.String())
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var baseline map[string]float64
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatal(err)
	}
	if baseline["BenchmarkSolveFGT/W200"] != 29000000 {
		t.Fatalf("baseline = %v", baseline)
	}
	// Same inputs against the fresh baseline pass.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", base, in}, &out, &errb); code != 0 {
		t.Fatalf("check exited %d: %s", code, errb.String())
	}
	// A 20x slowdown fails at the default 15% tolerance.
	slow := strings.ReplaceAll(sampleStream, "29000000 ns/op", "580000000 ns/op")
	slow = strings.ReplaceAll(slow, "31415926 ns/op", "620000000 ns/op")
	if err := os.WriteFile(in, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", base, in}, &out, &errb); code != 1 {
		t.Fatalf("regressed run exited %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "BenchmarkSolveFGT/W200 regressed") {
		t.Errorf("stderr missing regression line: %s", errb.String())
	}
}
