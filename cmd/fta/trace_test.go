package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// genProblem writes a small synthetic dataset and returns its path.
func genProblem(t *testing.T) string {
	t.Helper()
	csv := filepath.Join(t.TempDir(), "p.csv")
	if err := run([]string{"gen", "-dataset", "syn", "-seed", "3",
		"-centers", "2", "-tasks", "60", "-workers", "8", "-points", "16",
		"-out", csv}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	return csv
}

// TestTraceJSONLGolden pins the -trace-out line schema: downstream plotting
// scripts parse these exact keys, so a renamed or dropped field is a break.
func TestTraceJSONLGolden(t *testing.T) {
	csv := genProblem(t)
	out := filepath.Join(t.TempDir(), "trace.jsonl")
	if _, err := capture(t, func() error {
		return run([]string{"assign", "-in", csv, "-alg", "FGT", "-eps", "2",
			"-trace-out", out})
	}); err != nil {
		t.Fatalf("assign: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want := []string{"algorithm", "avg_payoff", "center", "changes", "iteration", "payoff_diff", "potential"}
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		keys := make([]string, 0, len(rec))
		for k := range rec {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if !reflect.DeepEqual(keys, want) {
			t.Fatalf("line %d keys = %v, want %v", lines, keys, want)
		}
		if rec["algorithm"] != "FGT" {
			t.Fatalf("line %d algorithm = %v", lines, rec["algorithm"])
		}
		if _, ok := rec["iteration"].(float64); !ok {
			t.Fatalf("line %d iteration not numeric: %T", lines, rec["iteration"])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("FGT trace produced no iterations")
	}
}

// TestAssignSpanOutAndTrace drives the span pipeline end to end: assign
// writes a Chrome trace_event file, and the trace subcommand reads it back
// into a per-phase breakdown.
func TestAssignSpanOutAndTrace(t *testing.T) {
	csv := genProblem(t)
	spans := filepath.Join(t.TempDir(), "spans.json")
	if _, err := capture(t, func() error {
		return run([]string{"assign", "-in", csv, "-alg", "FGT", "-eps", "2",
			"-span-out", spans})
	}); err != nil {
		t.Fatalf("assign: %v", err)
	}

	// The file must be valid Chrome trace_event JSON with complete events.
	raw, err := os.ReadFile(spans)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("span file is not valid JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	for _, want := range []string{"fta assign", "assign", "center.solve", "vdps.generate", "state.build", "round"} {
		if !names[want] {
			t.Errorf("span file missing %q event (got %v)", want, names)
		}
	}

	out, err := capture(t, func() error {
		return run([]string{"trace", "-in", spans, "-top", "2"})
	})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	for _, want := range []string{"phase", "center.solve", "vdps.generate", "p99", "slowest center.solve spans"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q in:\n%s", want, out)
		}
	}
}

func TestTraceBadInput(t *testing.T) {
	if err := run([]string{"trace"}); err == nil {
		t.Error("trace without -in accepted")
	}
	if err := run([]string{"trace", "-in", "/nonexistent/spans.json"}); err == nil {
		t.Error("trace with missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"trace", "-in", bad}); err == nil {
		t.Error("trace with invalid JSON accepted")
	}
}
