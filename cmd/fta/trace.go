package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"fairtask"
	"fairtask/internal/obs"
)

// writeSpanFile persists collected span traces as a Chrome trace_event JSON
// file, loadable in Perfetto or chrome://tracing and readable back with the
// trace subcommand.
func writeSpanFile(path string, traces ...fairtask.SpanTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fairtask.WriteChromeTrace(f, traces...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	var (
		in    = fs.String("in", "", "Chrome trace_event span file written by fta assign -span-out")
		top   = fs.Int("top", 5, "slowest spans to list (0 = skip)")
		phase = fs.String("phase", "center.solve", "phase whose slowest spans to list (empty = all phases)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("trace: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	traces, err := obs.ReadChromeTrace(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("trace: %s: %w", *in, err)
	}
	for i, tr := range traces {
		if i > 0 {
			fmt.Println()
		}
		if err := printTraceBreakdown(tr, *phase, *top); err != nil {
			return err
		}
	}
	return nil
}

// printTraceBreakdown prints one trace's per-phase aggregation as a table
// (self/total time, count, p50/p99) followed by the slowest spans of the
// requested phase.
func printTraceBreakdown(tr obs.Trace, phase string, top int) error {
	fmt.Printf("trace %q: %d spans over %s\n", tr.Name, len(tr.Spans), fmtDur(tr.Duration()))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "phase\tcount\ttotal\tself\tp50\tp99\tmax\t")
	for _, ph := range obs.Breakdown(tr) {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\t\n",
			ph.Name, ph.Count, fmtDur(ph.Total), fmtDur(ph.Self),
			fmtDur(ph.P50), fmtDur(ph.P99), fmtDur(ph.Max))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if top <= 0 {
		return nil
	}
	slow := obs.TopSpans(tr, phase, top)
	if len(slow) == 0 {
		return nil
	}
	label := phase
	if label == "" {
		label = "any phase"
	}
	fmt.Printf("slowest %s spans:\n", label)
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, s := range slow {
		detail := ""
		for _, a := range s.Attrs {
			detail += fmt.Sprintf("  %s=%s", a.Key, a.Value)
		}
		fmt.Fprintf(tw, "  %s\t%s\t+%s%s\n", s.Name, fmtDur(s.Duration), fmtDur(s.Start), detail)
	}
	return tw.Flush()
}

// fmtDur rounds a duration to a display-friendly precision: microseconds
// under a millisecond, otherwise 10µs granularity.
func fmtDur(d time.Duration) string {
	if d < time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(10 * time.Microsecond).String()
}
