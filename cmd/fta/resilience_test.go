package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fairtask/internal/fault"
)

// TestServeHTTPServerTimeouts is the regression test for the serve command's
// http.Server construction: every connection timeout must be set, not just
// ReadHeaderTimeout — a client trickling a request body (or never reading the
// response) used to pin a connection forever.
func TestServeHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer("127.0.0.1:0", nil, time.Minute, 2*time.Minute, 3*time.Minute)
	if srv.ReadHeaderTimeout != 10*time.Second {
		t.Errorf("ReadHeaderTimeout = %v, want 10s", srv.ReadHeaderTimeout)
	}
	if srv.ReadTimeout != time.Minute {
		t.Errorf("ReadTimeout = %v, want 1m", srv.ReadTimeout)
	}
	if srv.WriteTimeout != 2*time.Minute {
		t.Errorf("WriteTimeout = %v, want 2m", srv.WriteTimeout)
	}
	if srv.IdleTimeout != 3*time.Minute {
		t.Errorf("IdleTimeout = %v, want 3m", srv.IdleTimeout)
	}
	if srv.Addr != "127.0.0.1:0" {
		t.Errorf("Addr = %q", srv.Addr)
	}
}

// stripVolatile drops the one nondeterministic output row (wall-clock time)
// so the rest of the report can be compared byte for byte.
func stripVolatile(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "cpu time") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestChaosAssignReproducible is the acceptance criterion for deterministic
// chaos: the same seeded chaos run — armed failpoint, degradation ladder on —
// must be bit-reproducible across invocations, in both the report and the
// exported routes.
func TestChaosAssignReproducible(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	dir := t.TempDir()
	csv := filepath.Join(dir, "problem.csv")
	if err := run([]string{"gen", "-dataset", "syn", "-seed", "3", "-centers", "2",
		"-tasks", "60", "-workers", "8", "-points", "16", "-out", csv}); err != nil {
		t.Fatal(err)
	}

	runOnce := func(routes string) string {
		out, err := capture(t, func() error {
			return run([]string{"assign", "-in", csv, "-alg", "GTA", "-eps", "2",
				"-fail", "vdps.generate:err:3", "-degrade", "-routes", routes})
		})
		if err != nil {
			t.Fatalf("chaos assign: %v", err)
		}
		return out
	}
	r1 := filepath.Join(dir, "routes1.csv")
	r2 := filepath.Join(dir, "routes2.csv")
	out1 := runOnce(r1)
	out2 := runOnce(r2)

	if !strings.Contains(out1, "degraded") || !strings.Contains(out1, "sampled") {
		t.Errorf("chaos run did not report the sampled rung:\n%s", out1)
	}
	if got, want := stripVolatile(out1), stripVolatile(out2); got != want {
		t.Errorf("chaos reports differ across identical invocations:\n--- first\n%s\n--- second\n%s", got, want)
	}
	b1, err := os.ReadFile(r1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(r2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("route exports differ across identical chaos invocations")
	}
	if len(b1) == 0 {
		t.Error("chaos run exported empty routes")
	}
}

// TestChaosAssignRejectsBadSpec pins the CLI's failpoint-spec validation:
// unknown points and malformed specs must fail fast, before any solving.
func TestChaosAssignRejectsBadSpec(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	dir := t.TempDir()
	csv := filepath.Join(dir, "problem.csv")
	if err := run([]string{"gen", "-dataset", "syn", "-seed", "1", "-centers", "1",
		"-tasks", "20", "-workers", "4", "-points", "8", "-out", csv}); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"nope.such.point:err:1", "vdps.generate:frobnicate", "vdps.generate"} {
		_, err := capture(t, func() error {
			return run([]string{"assign", "-in", csv, "-alg", "GTA", "-eps", "2", "-fail", spec})
		})
		if err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

// TestDegradeAssignHealthyStaysExact makes sure the ladder is invisible when
// nothing fails: -degrade on a healthy run must not report a rung.
func TestDegradeAssignHealthyStaysExact(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "problem.csv")
	if err := run([]string{"gen", "-dataset", "syn", "-seed", "2", "-centers", "1",
		"-tasks", "20", "-workers", "4", "-points", "8", "-out", csv}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"assign", "-in", csv, "-alg", "GTA", "-eps", "2", "-degrade"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "degraded") {
		t.Errorf("healthy degrade-enabled run reported a rung:\n%s", out)
	}
}
