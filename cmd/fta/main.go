// Command fta is the command-line front end of the fairtask library.
//
// Subcommands:
//
//	fta gen   -dataset syn|gm -out problem.csv [size flags]
//	fta assign -in problem.csv -alg MPTA|GTA|FGT|IEGT|MMTA|LEXIFAIR [-eps km] [-seed n]
//	          [-trace-out trace.jsonl]
//	fta sweep -fig fig2..fig12 [-scale n] [-gmscale n] [-seed n]
//	fta sim   -in problem.csv -alg IEGT -epochs n [-dt hours]
//	fta report -in problem.csv -alg FGT [-eps km]
//	fta audit -in problem.csv -routes routes.csv [-alg FGT] [-eps km]
//	fta serve [-addr host:port] [-pprof] [-log-format text|json] [-log-level info]
//	          [-job-workers n] [-queue-depth n] [-job-ttl 15m] [-solve-timeout 0]
//	          [-drain-timeout 30s]
//
// "fta sweep" regenerates the series behind every figure of the paper's
// evaluation section; see EXPERIMENTS.md for the mapping.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	"fairtask"
	"fairtask/internal/experiment"
	"fairtask/internal/fault"
	"fairtask/internal/jobs"
	"fairtask/internal/obs"
	"fairtask/internal/platform"
	"fairtask/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fta:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:])
	case "assign":
		return cmdAssign(args[1:])
	case "sweep":
		return cmdSweep(args[1:])
	case "sim":
		return cmdSim(args[1:])
	case "report":
		return cmdReport(args[1:])
	case "audit":
		return cmdAudit(args[1:])
	case "online":
		return cmdOnline(args[1:])
	case "stream":
		return cmdStream(args[1:])
	case "render":
		return cmdRender(args[1:])
	case "trace":
		return cmdTrace(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fta <subcommand> [flags]

subcommands:
  gen     generate a SYN or GM dataset as CSV
  assign  solve a dataset with one algorithm and print metrics
  sweep   regenerate a paper figure's series (fig2..fig12)
  sim     run the epoch-based platform simulation
  report  solve a dataset and print a full fairness report
  audit   re-verify a saved route CSV against its dataset
  online  replay a random task stream through the online matcher
  stream  drive the incremental equilibrium engine with a delta stream
  render  draw one center's assignment as an SVG map
  trace   analyze a span file written by assign -span-out
  serve   run the assignment engine as an HTTP service

run "fta <subcommand> -h" for flags.`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	var (
		kind    = fs.String("dataset", "syn", "dataset kind: syn, gm, or gmission (raw files)")
		out     = fs.String("out", "", "output CSV path (default stdout)")
		seed    = fs.Int64("seed", 1, "random seed")
		centers = fs.Int("centers", 0, "SYN: number of distribution centers")
		tasks   = fs.Int("tasks", 0, "number of tasks |S|")
		workers = fs.Int("workers", 0, "number of workers |W|")
		points  = fs.Int("points", 0, "number of delivery points |DP|")
		expiry  = fs.Float64("expiry", 0, "SYN: task expiry e in hours")
		maxDP   = fs.Int("maxdp", 0, "worker maxDP (SYN)")
		gmTasks = fs.String("gmission-tasks", "", "gmission: raw task CSV (id,x,y,expiry,reward)")
		gmWork  = fs.String("gmission-workers", "", "gmission: raw worker CSV (id,x,y,maxdp)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var prob *fairtask.Problem
	switch *kind {
	case "syn":
		p, err := fairtask.GenerateSYN(fairtask.SYNConfig{
			Seed: *seed, Centers: *centers, Tasks: *tasks, Workers: *workers,
			DeliveryPoints: *points, Expiry: *expiry, MaxDP: *maxDP,
		})
		if err != nil {
			return err
		}
		prob = p
	case "gm":
		in, err := fairtask.GenerateGM(fairtask.GMConfig{
			Seed: *seed, Tasks: *tasks, Workers: *workers, DeliveryPoints: *points,
		})
		if err != nil {
			return err
		}
		prob = &fairtask.Problem{Instances: []fairtask.Instance{*in}}
	case "gmission":
		if *gmTasks == "" || *gmWork == "" {
			return fmt.Errorf("gmission requires -gmission-tasks and -gmission-workers")
		}
		tf, err := os.Open(*gmTasks)
		if err != nil {
			return err
		}
		defer tf.Close()
		wf, err := os.Open(*gmWork)
		if err != nil {
			return err
		}
		defer wf.Close()
		in, err := fairtask.LoadGMission(tf, wf, fairtask.GMissionOptions{
			DeliveryPoints: *points, Seed: *seed,
		})
		if err != nil {
			return err
		}
		prob = &fairtask.Problem{Instances: []fairtask.Instance{*in}}
	default:
		return fmt.Errorf("unknown dataset %q (want syn, gm or gmission)", *kind)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := fairtask.WriteCSV(w, prob); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d centers, %d points, %d tasks, %d workers\n",
		len(prob.Instances), countPoints(prob), prob.TaskCount(), prob.WorkerCount())
	return nil
}

func countPoints(p *fairtask.Problem) int {
	var n int
	for i := range p.Instances {
		n += len(p.Instances[i].Points)
	}
	return n
}

func loadProblem(path string) (*fairtask.Problem, error) {
	if path == "" {
		return nil, fmt.Errorf("-in is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return fairtask.ReadCSV(f)
}

func cmdAssign(args []string) error {
	fs := flag.NewFlagSet("assign", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "input problem CSV")
		alg       = fs.String("alg", "FGT", "algorithm: MPTA, GTA, FGT, IEGT, MMTA or LEXIFAIR")
		eps       = fs.Float64("eps", 0, "pruning threshold epsilon in km (0 = no pruning)")
		seed      = fs.Int64("seed", 1, "random seed for FGT/IEGT")
		routes    = fs.String("routes", "", "optional path for a per-stop route CSV export")
		traceOut  = fs.String("trace-out", "", "write the per-iteration convergence trace as JSONL (FGT/IEGT)")
		spanOut   = fs.String("span-out", "", "write a span timeline as Chrome trace_event JSON (Perfetto-loadable; analyze with fta trace)")
		degrade   = fs.Bool("degrade", false, "fall back exact→sampled→greedy when a solve stage fails or exceeds its budget")
		degradeTO = fs.Duration("degrade-budget", 10*time.Second, "per-rung wall-clock budget for -degrade")
		retryMax  = fs.Int("retry-max", 0, "retry failed per-center solves up to this many total attempts (0 = no retry)")
		failSpecs = fs.String("fail", "", "arm chaos failpoints, e.g. 'vdps.generate:err:3' (dev only; see docs/RESILIENCE.md)")
		sweepPar  = fs.Int("sweep-par", 0, "goroutines for the deterministic parallel best-response sweep inside each FGT/IEGT solve (0/1 = sequential; results are bit-identical either way)")
		pool      = fs.Int("pool", 0, "run per-center solves on a shared worker pool of this size (0 = per-call fan-out; results are identical either way)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prob, err := loadProblem(*in)
	if err != nil {
		return err
	}
	opt := fairtask.Options{
		Algorithm:     fairtask.Algorithm(*alg),
		Seed:          *seed,
		Trace:         *traceOut != "",
		SweepParallel: *sweepPar,
	}
	if *pool > 0 {
		sp := fairtask.NewSolvePool(*pool, nil)
		defer sp.Close()
		opt.Pool = sp
	}
	if *eps > 0 {
		opt.VDPS.Epsilon = *eps
	} else {
		opt.VDPS.Epsilon = math.Inf(1)
	}
	if *degrade {
		opt.Degrade = &fairtask.DegradeOptions{
			ExactBudget:   *degradeTO,
			SampledBudget: *degradeTO,
		}
	}
	if *retryMax > 1 {
		opt.Retry = &fairtask.RetryPolicy{MaxAttempts: *retryMax}
	}
	if *failSpecs != "" {
		if err := fault.ArmSpecs(*failSpecs); err != nil {
			return err
		}
		// Count-based failpoint triggering across concurrent center solves
		// follows the goroutine schedule; chaos runs promise bit-identical
		// output across invocations, so they solve centers sequentially —
		// which also rules out the shared pool.
		opt.Parallelism = 1
		opt.Pool = nil
	}
	ctx := context.Background()
	var tracer *fairtask.Tracer
	var rootSp *fairtask.Span
	if *spanOut != "" {
		tracer = fairtask.NewTracer()
		rootSp = tracer.Root("fta assign")
		rootSp.SetAttr("algorithm", *alg)
		rootSp.SetAttrInt("centers", len(prob.Instances))
		ctx = fairtask.ContextWithSpan(ctx, rootSp)
	}
	res, err := fairtask.SolveProblemContext(ctx, prob, opt)
	if err != nil {
		return err
	}
	if tracer != nil {
		rootSp.End()
		if err := writeSpanFile(*spanOut, tracer.Collect("fta assign")); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		if err := writeTraceJSONL(*traceOut, *alg, prob, res); err != nil {
			return err
		}
	}
	if *routes != "" {
		assignments := make([]*fairtask.Assignment, len(res.PerCenter))
		for i, r := range res.PerCenter {
			assignments[i] = r.Assignment
		}
		f, err := os.Create(*routes)
		if err != nil {
			return err
		}
		if err := fairtask.WriteAssignmentCSV(f, prob, assignments); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "algorithm\t%s\n", *alg)
	fmt.Fprintf(tw, "workers\t%d\n", len(res.Payoffs))
	fmt.Fprintf(tw, "payoff difference\t%.4f\n", res.Difference)
	fmt.Fprintf(tw, "average payoff\t%.4f\n", res.Average)
	if res.Degraded != "" {
		fmt.Fprintf(tw, "degraded\t%s\n", res.Degraded)
	}
	fmt.Fprintf(tw, "cpu time\t%s\n", res.Elapsed)
	return tw.Flush()
}

// writeTraceJSONL exports every center's per-iteration convergence trace as
// JSON Lines: one IterationStat per line, tagged with the center ID and
// algorithm, ready for Figure-12-style convergence plots. Baselines without
// iterative dynamics (GTA, MPTA, MMTA) produce an empty file.
func writeTraceJSONL(path, alg string, prob *fairtask.Problem, res *fairtask.ProblemResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for i, r := range res.PerCenter {
		for _, st := range r.Trace {
			line := struct {
				Center    int    `json:"center"`
				Algorithm string `json:"algorithm"`
				fairtask.IterationStat
			}{prob.Instances[i].CenterID, alg, st}
			if err := enc.Encode(line); err != nil {
				f.Close()
				return err
			}
		}
	}
	return f.Close()
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		fig     = fs.String("fig", "", "figure to regenerate (fig2..fig12); empty lists figures")
		scale   = fs.Int("scale", 10, "SYN downscale factor (1 = paper scale)")
		gmscale = fs.Int("gmscale", 1, "GM downscale factor")
		seed    = fs.Int64("seed", 1, "random seed")
		budget  = fs.Int("mpta-budget", 0, "MPTA node budget (0 = sweep default)")
		table1  = fs.Bool("table1", false, "print the Table I parameter registry and exit")
		reps    = fs.Int("reps", 1, "repetitions with consecutive seeds; >1 reports mean and std")
		csvOut  = fs.String("csv", "", "also write the raw series as CSV to this path (single run only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *table1 {
		return experiment.WriteTableI(os.Stdout)
	}
	if *fig == "" {
		fmt.Println("available figures:")
		for _, n := range experiment.Names() {
			fmt.Println(" ", n)
		}
		return nil
	}
	cfg := experiment.Config{
		Seed: *seed, SYNScale: *scale, GMScale: *gmscale, MPTANodeBudget: *budget,
	}
	if *reps > 1 {
		agg, err := experiment.RunRepeated(*fig, cfg, *reps)
		if err != nil {
			return err
		}
		return agg.WriteTables(os.Stdout)
	}
	s, err := experiment.Run(*fig, cfg)
	if err != nil {
		return err
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return err
		}
		if err := s.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return s.WriteTables(os.Stdout)
}

func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "input problem CSV")
		alg      = fs.String("alg", "IEGT", "algorithm: MPTA, GTA, FGT, IEGT, MMTA or LEXIFAIR")
		epochs   = fs.Int("epochs", 12, "number of assignment rounds")
		dt       = fs.Float64("dt", 1, "epoch length in hours")
		eps      = fs.Float64("eps", 0, "pruning threshold epsilon in km (0 = no pruning)")
		seed     = fs.Int64("seed", 1, "random seed for FGT/IEGT")
		arrivals = fs.Float64("arrivals", 0, "Poisson task arrivals per point per epoch (0 = none)")
		rush     = fs.Bool("rush", false, "modulate arrivals with the bimodal rush-hour profile")
		jsonOut  = fs.String("json", "", "also write the full report as JSON to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prob, err := loadProblem(*in)
	if err != nil {
		return err
	}
	solver, err := fairtask.NewAssigner(fairtask.Options{
		Algorithm: fairtask.Algorithm(*alg), Seed: *seed,
	})
	if err != nil {
		return err
	}
	cfg := fairtask.SimConfig{Epochs: *epochs, EpochLength: *dt, Solver: solver}
	if *eps > 0 {
		cfg.VDPS.Epsilon = *eps
	}
	if *arrivals > 0 {
		ac := fairtask.ArrivalConfig{Seed: *seed, RatePerPoint: *arrivals}
		if *rush {
			ac.RateProfile = fairtask.RushHourProfile
		}
		cfg.TaskSource = fairtask.NewPoissonArrivals(ac)
	}
	rep, err := fairtask.Simulate(prob, cfg)
	if err != nil {
		return err
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "epoch\tonline\tassigned\tcompleted\texpired\tP_dif\tavg payoff")
	for _, e := range rep.Epochs {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.4f\t%.4f\n",
			e.Epoch, e.OnlineWorkers, e.AssignedWorkers, e.CompletedTasks,
			e.ExpiredTasks, e.Difference, e.Average)
	}
	fmt.Fprintf(tw, "\ntotal completed\t%d\n", rep.CompletedTasks)
	fmt.Fprintf(tw, "total expired\t%d\n", rep.ExpiredTasks)
	fmt.Fprintf(tw, "cumulative P_dif\t%.4f\n", rep.CumulativeDifference)
	fmt.Fprintf(tw, "cumulative avg rate\t%.4f\n", rep.CumulativeAverage)
	return tw.Flush()
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	var (
		in   = fs.String("in", "", "input problem CSV")
		alg  = fs.String("alg", "FGT", "algorithm: MPTA, GTA, FGT, IEGT, MMTA or LEXIFAIR")
		eps  = fs.Float64("eps", 0, "pruning threshold epsilon in km (0 = no pruning)")
		seed = fs.Int64("seed", 1, "random seed for FGT/IEGT")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prob, err := loadProblem(*in)
	if err != nil {
		return err
	}
	opt := fairtask.Options{Algorithm: fairtask.Algorithm(*alg), Seed: *seed}
	if *eps > 0 {
		opt.VDPS.Epsilon = *eps
	} else {
		opt.VDPS.Epsilon = math.Inf(1)
	}
	res, err := fairtask.SolveProblem(prob, opt)
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "algorithm\t%s\n", *alg)
	fmt.Fprintf(tw, "workers\t%d\n", len(res.Payoffs))
	fmt.Fprintf(tw, "payoff difference (P_dif)\t%.4f\n", res.Difference)
	fmt.Fprintf(tw, "average payoff\t%.4f\n", res.Average)
	fmt.Fprintf(tw, "minimum payoff\t%.4f\n", fairtask.MinPayoff(res.Payoffs))
	fmt.Fprintf(tw, "Gini coefficient\t%.4f\n", fairtask.Gini(res.Payoffs))
	fmt.Fprintf(tw, "Jain index\t%.4f\n", fairtask.JainIndex(res.Payoffs))
	fmt.Fprintf(tw, "payoff quartiles (p25/p50/p75)\t%.4f / %.4f / %.4f\n",
		fairtask.PayoffQuantile(res.Payoffs, 0.25),
		fairtask.PayoffQuantile(res.Payoffs, 0.5),
		fairtask.PayoffQuantile(res.Payoffs, 0.75))
	fmt.Fprintf(tw, "cpu time\t%s\n", res.Elapsed)
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "center\tworkers\tassigned\tP_dif\tavg payoff")
	for i, r := range res.PerCenter {
		s := r.Summary
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.4f\t%.4f\n",
			prob.Instances[i].CenterID, len(s.Payoffs), s.Assigned, s.Difference, s.Average)
	}
	return tw.Flush()
}

// cmdAudit re-verifies a persisted assignment (an "fta assign -routes"
// export) against its dataset: route structure, deadlines, recomputed
// payoffs, VDPS membership, and — when -alg names a game-theoretic algorithm
// — the equilibrium certificate. It exits non-zero on any violation, so it
// can gate a dispatch pipeline.
func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "input problem CSV")
		routes = fs.String("routes", "", "route CSV written by \"fta assign -routes\"")
		alg    = fs.String("alg", "", "algorithm that produced the routes; FGT or IEGT enables the equilibrium check, LEXIFAIR the leximin check")
		eps    = fs.Float64("eps", 0, "pruning threshold epsilon in km used for the solve (0 = no pruning)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prob, err := loadProblem(*in)
	if err != nil {
		return err
	}
	if *routes == "" {
		return fmt.Errorf("-routes is required")
	}
	f, err := os.Open(*routes)
	if err != nil {
		return err
	}
	assignments, err := fairtask.ReadAssignmentCSV(f, prob)
	f.Close()
	if err != nil {
		return err
	}

	opt := fairtask.AuditOptions{Algorithm: *alg, Converged: *alg != ""}
	if *eps > 0 {
		opt.VDPS.Epsilon = *eps
	} else {
		opt.VDPS.Epsilon = math.Inf(1)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "center\tworkers\tassigned\tP_dif\tavg payoff\tresult")
	var bad int
	var reports []*fairtask.AuditReport
	for i := range prob.Instances {
		inst := &prob.Instances[i]
		rep := fairtask.Audit(inst, assignments[i], nil, opt)
		reports = append(reports, rep)
		verdict := "ok"
		if !rep.OK() {
			verdict = fmt.Sprintf("%d violation(s)", len(rep.Violations))
			bad++
		}
		s := rep.Recomputed
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.4f\t%.4f\t%s\n",
			inst.CenterID, len(inst.Workers), s.Assigned, s.Difference, s.Average, verdict)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for i, rep := range reports {
		for _, v := range rep.Violations {
			fmt.Printf("center %d: %s\n", prob.Instances[i].CenterID, v.String())
		}
	}
	if bad > 0 {
		return fmt.Errorf("audit failed for %d of %d centers", bad, len(prob.Instances))
	}
	fmt.Printf("audit passed: %d center(s)\n", len(prob.Instances))
	return nil
}

func cmdOnline(args []string) error {
	fs := flag.NewFlagSet("online", flag.ContinueOnError)
	var (
		workers = fs.Int("workers", 8, "number of couriers")
		tasks   = fs.Int("tasks", 200, "number of arriving tasks")
		rate    = fs.Float64("rate", 40, "task arrivals per hour")
		window  = fs.Float64("window", 0.75, "delivery window per task in hours")
		space   = fs.Float64("space", 6, "side length of the service square in km")
		speed   = fs.Float64("speed", 12, "courier speed in km/h")
		seed    = fs.Int64("seed", 1, "random seed for the stream")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rate <= 0 || *tasks <= 0 || *workers <= 0 {
		return fmt.Errorf("rate, tasks and workers must be positive")
	}
	travel, err := fairtask.NewTravelModel(fairtask.Euclidean{}, *speed)
	if err != nil {
		return err
	}
	inst := &fairtask.Instance{
		Center: fairtask.Pt(*space/2, *space/2),
		Travel: travel,
	}
	rng := rand.New(rand.NewSource(*seed))
	for w := 0; w < *workers; w++ {
		inst.Workers = append(inst.Workers, fairtask.Worker{
			ID:  w,
			Loc: fairtask.Pt(rng.Float64()**space, rng.Float64()**space),
		})
	}
	type arrival struct {
		at   float64
		task fairtask.OnlineTask
	}
	stream := make([]arrival, *tasks)
	for i := range stream {
		at := float64(i) / *rate
		stream[i] = arrival{
			at: at,
			task: fairtask.OnlineTask{
				ID:     i,
				Loc:    fairtask.Pt(rng.Float64()**space, rng.Float64()**space),
				Expiry: at + *window,
				Reward: 1,
			},
		}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tassigned\trejected\trate spread (P_dif)\tavg rate")
	for _, policy := range []fairtask.OnlinePolicy{fairtask.OnlineGreedy, fairtask.OnlineFairFirst} {
		m, err := fairtask.NewOnlineMatcher(inst, policy)
		if err != nil {
			return err
		}
		for _, a := range stream {
			m.Offer(a.at, a.task)
		}
		rep := m.Report()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.4f\t%.4f\n",
			rep.Policy, rep.Assigned, rep.Rejected, rep.RateDifference, rep.RateAverage)
	}
	return tw.Flush()
}

func cmdRender(args []string) error {
	fs := flag.NewFlagSet("render", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "input problem CSV")
		center = fs.Int("center", -1, "center ID to draw (-1 = first)")
		alg    = fs.String("alg", "FGT", "algorithm: MPTA, GTA, FGT, IEGT, MMTA or LEXIFAIR")
		eps    = fs.Float64("eps", 0, "pruning threshold epsilon in km (0 = no pruning)")
		seed   = fs.Int64("seed", 1, "random seed for FGT/IEGT")
		out    = fs.String("out", "", "output SVG path (default stdout)")
		labels = fs.Bool("labels", false, "draw point and worker labels")
		width  = fs.Int("width", 720, "canvas width in pixels")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prob, err := loadProblem(*in)
	if err != nil {
		return err
	}
	var inst *fairtask.Instance
	for i := range prob.Instances {
		if *center == -1 || prob.Instances[i].CenterID == *center {
			inst = &prob.Instances[i]
			break
		}
	}
	if inst == nil {
		return fmt.Errorf("center %d not found", *center)
	}
	opt := fairtask.Options{Algorithm: fairtask.Algorithm(*alg), Seed: *seed}
	if *eps > 0 {
		opt.VDPS.Epsilon = *eps
	} else {
		opt.VDPS.Epsilon = math.Inf(1)
	}
	res, err := fairtask.Solve(inst, opt)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return fairtask.RenderSVG(w, inst, res.Assignment, fairtask.RenderOptions{
		Width:      *width,
		ShowLabels: *labels,
	})
}

// newServerHandler builds the fully instrumented HTTP handler over the
// library's full algorithm set: solver telemetry flows into the handler's
// metrics registry and requests are logged to logger (nil disables logging).
// sweepPar enables the deterministic parallel best-response sweep inside
// each FGT/IEGT solve (0/1 = sequential). Split out so tests can mount it
// on httptest servers.
func newServerHandler(logger *slog.Logger, sweepPar int) *server.Handler {
	// The factory closure runs per request, after rec is set below; the nil
	// guard only covers the construction window.
	var rec *fairtask.MetricsRecorder
	h := server.New(func(algorithm string, seed int64) (fairtask.Assigner, error) {
		opt := fairtask.Options{
			Algorithm:     fairtask.Algorithm(algorithm),
			Seed:          seed,
			SweepParallel: sweepPar,
		}
		if rec != nil {
			opt.Recorder = rec
		}
		return fairtask.NewAssigner(opt)
	})
	rec = fairtask.NewMetricsRecorder(h.Registry)
	// Seed every algorithm's labeled metric families so dashboards and rate()
	// queries see them at zero from the first scrape instead of appearing
	// only after the first solve.
	algs := make([]string, 0, len(fairtask.ExtendedAlgorithms()))
	for _, a := range fairtask.ExtendedAlgorithms() {
		algs = append(algs, string(a))
	}
	rec.SeedAlgorithms(algs...)
	h.Recorder = rec
	h.Logger = logger
	return h
}

// newLogger builds a slog.Logger writing to w in the given format ("text"
// or "json") at the given minimum level ("debug", "info", "warn", "error").
func newLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// mountPprof registers the net/http/pprof handlers on mux under
// /debug/pprof/, mirroring the package's DefaultServeMux registrations.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// newHTTPServer builds the serve command's http.Server with full connection
// timeouts. A server with only ReadHeaderTimeout lets a client that sends
// headers promptly and then trickles the body (or never reads the response)
// pin a connection forever; ReadTimeout, WriteTimeout and IdleTimeout bound
// every phase. Long-running solves belong on POST /jobs, which responds
// immediately, so WriteTimeout does not cap solve time.
func newHTTPServer(addr string, handler http.Handler, readTO, writeTO, idleTO time.Duration) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       readTO,
		WriteTimeout:      writeTO,
		IdleTimeout:       idleTO,
	}
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8732", "listen address")
		withPprof  = fs.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
		logFormat  = fs.String("log-format", "text", "structured log format: text or json")
		logLevel   = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		jobWorkers = fs.Int("job-workers", 0, "async solve worker pool size (0 = GOMAXPROCS)")
		queueDepth = fs.Int("queue-depth", 64, "bounded job queue depth; full queue answers 429")
		jobTTL     = fs.Duration("job-ttl", 15*time.Minute, "how long finished job results stay queryable")
		solveTO    = fs.Duration("solve-timeout", 0, "per-solve deadline for /solve and /jobs (0 = none)")
		drainTO    = fs.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight jobs before force-cancel")
		readTO     = fs.Duration("read-timeout", time.Minute, "max duration for reading a full request, body included (0 = none)")
		writeTO    = fs.Duration("write-timeout", 2*time.Minute, "max duration for writing a response; long solves should use POST /jobs (0 = none)")
		idleTO     = fs.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout (0 = read-timeout)")
		degrade    = fs.Bool("degrade", false, "fall back exact→sampled→greedy when a solve stage fails or exceeds its budget")
		degradeTO  = fs.Duration("degrade-budget", 10*time.Second, "per-rung wall-clock budget for -degrade")
		retryMax   = fs.Int("retry-max", 0, "retry failed solves/jobs up to this many total attempts (0 = no retry)")
		failSpecs  = fs.String("fail", "", "arm chaos failpoints, e.g. 'vdps.generate:err:3' (dev only; see docs/RESILIENCE.md)")
		traceRing  = fs.Int("trace-ring", 32, "recent solve traces retained at GET /debug/traces (0 disables span tracing)")
		sweepPar   = fs.Int("sweep-par", 0, "goroutines for the deterministic parallel best-response sweep inside each FGT/IEGT solve (0/1 = sequential; results are bit-identical either way)")
		poolSize   = fs.Int("pool", 0, "run per-center solve work of all requests on one shared worker pool of this size (0 = per-request fan-out; results are identical either way)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := newLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	if *failSpecs != "" {
		if err := fault.ArmSpecs(*failSpecs); err != nil {
			return err
		}
		logger.Warn("chaos failpoints armed", "specs", *failSpecs)
	}
	handler := newServerHandler(logger, *sweepPar)
	if *poolSize > 0 {
		pool := fairtask.NewSolvePool(*poolSize, fairtask.NewParallelMetrics(handler.Registry))
		defer pool.Close()
		handler.Pool = pool
	}
	if *traceRing <= 0 {
		handler.Traces = nil
	} else {
		handler.Traces = obs.NewTraceRing(*traceRing)
	}
	if *degrade {
		handler.Degrade = &platform.Degrade{
			ExactBudget:   *degradeTO,
			SampledBudget: *degradeTO,
		}
	}
	var retry *fault.RetryPolicy
	if *retryMax > 1 {
		retry = &fault.RetryPolicy{MaxAttempts: *retryMax}
		handler.Retry = retry
	}
	manager := jobs.New(jobs.Config{
		Workers:    *jobWorkers,
		QueueDepth: *queueDepth,
		TTL:        *jobTTL,
		Timeout:    *solveTO,
		Metrics:    obs.NewJobsMetrics(handler.Registry),
		Retry:      retry,
		Fault:      obs.NewFaultMetrics(handler.Registry),
		Traces:     handler.Traces,
		Logger:     logger,
	})
	handler.Jobs = manager
	handler.SolveTimeout = *solveTO
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	if *withPprof {
		mountPprof(mux)
	}
	srv := newHTTPServer(*addr, mux, *readTO, *writeTO, *idleTO)

	// Serve until SIGINT/SIGTERM, then drain: stop admitting jobs (flipping
	// /readyz to 503 so orchestrators stop routing here), let queued and
	// running solves finish within the grace period, and only then stop the
	// HTTP listener — status polls keep working throughout the drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "pprof", *withPprof,
		"job_workers", manager.Stats().Workers, "queue_depth", *queueDepth,
		"endpoints", "POST /solve, POST /jobs, GET /jobs/{id}, DELETE /jobs/{id}, GET /healthz, GET /readyz, GET /metrics")

	select {
	case err := <-errc:
		manager.Close(context.Background())
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	logger.Info("shutting down", "drain_timeout", *drainTO)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := manager.Close(drainCtx); err != nil {
		logger.Warn("drain incomplete, jobs force-canceled", "error", err.Error())
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Info("stopped")
	return nil
}
