package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"fairtask/internal/dataset"
	"fairtask/internal/evo"
	"fairtask/internal/game"
	"fairtask/internal/model"
	"fairtask/internal/obs"
	"fairtask/internal/online"
	"fairtask/internal/stream"
	"fairtask/internal/vdps"
)

// resolveLatency is the latency distribution of one resolve kind (noop,
// warm, regen, cold, continuation) in the fta stream report.
type resolveLatency struct {
	Count  int     `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// streamReport is the machine-readable summary written by fta stream -json.
type streamReport struct {
	Algorithm           string                    `json:"algorithm"`
	Seed                int64                     `json:"seed"`
	Continue            bool                      `json:"continue"`
	Deltas              int                       `json:"deltas"`
	DeltasByKind        map[string]int            `json:"deltas_by_kind"`
	Resolves            map[string]int            `json:"resolves"`
	ResolveLatencies    map[string]resolveLatency `json:"resolve_latencies"`
	WarmP50MS           float64                   `json:"warm_p50_ms"`
	WarmP99MS           float64                   `json:"warm_p99_ms"`
	WarmMeanMS          float64                   `json:"warm_mean_ms"`
	ColdMeanMS          float64                   `json:"cold_mean_ms"`
	ColdSamples         int                       `json:"cold_samples"`
	SpeedupX            float64                   `json:"speedup_x"`
	WorkersTouched      float64                   `json:"workers_touched_mean"`
	Workers             int                       `json:"workers"`
	IterationsSaved     int                       `json:"iterations_saved_total"`
	IterationsSavedMean float64                   `json:"iterations_saved_mean"`
	FinalDifference     float64                   `json:"final_payoff_difference"`
	FinalAverage        float64                   `json:"final_average_payoff"`
}

func cmdStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ContinueOnError)
	var (
		alg      = fs.String("alg", "FGT", "algorithm: FGT or IEGT")
		seed     = fs.Int64("seed", 1, "random seed for the instance, the stream and the dynamics")
		eps      = fs.Float64("eps", 0, "pruning threshold epsilon in km (0 = no pruning)")
		rate     = fs.Float64("rate", 60, "task arrivals per hour")
		duration = fs.Float64("duration", 1, "stream horizon in hours")
		lifetime = fs.Float64("lifetime", 0.8, "lifetime of an arriving task in hours")
		churn    = fs.Float64("churn", 4, "worker online/offline events per hour")
		reprice  = fs.Float64("reprice", 20, "task re-pricing events per hour")
		tasks    = fs.Int("tasks", 60, "initial tasks |S|")
		workers  = fs.Int("workers", 10, "initial workers |W|")
		points   = fs.Int("points", 24, "delivery points |DP|")
		coldN    = fs.Int("cold-every", 0, "cold-solve baseline every N deltas (0 = auto, ~8 samples)")
		cont     = fs.Bool("continue", false, "seed each resolve from the previous equilibrium (audited, not bit-pinned)")
		jsonOut  = fs.String("json", "", "write the machine-readable report to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	in, err := dataset.GenerateGM(dataset.GMConfig{
		Seed: *seed, Tasks: *tasks, Workers: *workers, DeliveryPoints: *points,
	})
	if err != nil {
		return err
	}
	vopt := vdps.Options{Epsilon: math.Inf(1)}
	if *eps > 0 {
		vopt.Epsilon = *eps
	}
	ds, err := stream.GenerateStream(in, stream.StreamConfig{
		Seed: *seed, Rate: *rate, Duration: *duration, Lifetime: *lifetime,
		ChurnRate: *churn, RepriceRate: *reprice,
	})
	if err != nil {
		return err
	}
	if len(ds) == 0 {
		return fmt.Errorf("empty stream: raise -rate, -churn or -reprice")
	}

	reg := obs.NewRegistry()
	opt := stream.Options{
		Algorithm: stream.Algorithm(*alg),
		VDPS:      vopt,
		Continue:  *cont,
		Metrics:   obs.NewStreamMetrics(reg),
	}
	opt.Game.Seed, opt.Evo.Seed = *seed, *seed
	eng, err := stream.New(context.Background(), in, opt)
	if err != nil {
		return err
	}

	// Warm pass: every delta through the live engine, one at a time, as an
	// ingest loop would see them.
	rep := streamReport{
		Algorithm:        *alg,
		Seed:             *seed,
		Continue:         *cont,
		Deltas:           len(ds),
		DeltasByKind:     map[string]int{},
		Resolves:         map[string]int{},
		ResolveLatencies: map[string]resolveLatency{},
		Workers:          *workers,
	}
	warmNS := make([]float64, 0, len(ds))
	byKind := map[string][]float64{}
	var touched int
	for _, d := range ds {
		start := time.Now()
		res, err := eng.Apply(context.Background(), d)
		if err != nil {
			return fmt.Errorf("delta %d (%s): %w", d.Seq, d.Kind, err)
		}
		ns := float64(time.Since(start).Nanoseconds())
		warmNS = append(warmNS, ns)
		byKind[res.Resolve] = append(byKind[res.Resolve], ns)
		rep.DeltasByKind[string(d.Kind)]++
		rep.Resolves[res.Resolve]++
		rep.IterationsSaved += res.IterationsSaved
		touched += res.WorkersTouched
	}
	snap := eng.Snapshot()
	rep.WarmP50MS = percentile(warmNS, 50) / 1e6
	rep.WarmP99MS = percentile(warmNS, 99) / 1e6
	rep.WarmMeanMS = mean(warmNS) / 1e6
	rep.WorkersTouched = float64(touched) / float64(len(ds))
	rep.FinalDifference = snap.Summary.Difference
	rep.FinalAverage = snap.Summary.Average
	for kind, ns := range byKind {
		rep.ResolveLatencies[kind] = resolveLatency{
			Count:  len(ns),
			P50MS:  percentile(ns, 50) / 1e6,
			P99MS:  percentile(ns, 99) / 1e6,
			MeanMS: mean(ns) / 1e6,
		}
	}
	if n := rep.Resolves[stream.ResolveContinuation]; n > 0 {
		rep.IterationsSavedMean = float64(rep.IterationsSaved) / float64(n)
	}

	// Cold baseline: re-solve sampled prefixes from scratch, the cost an
	// engine-less deployment would pay on every delta.
	every := *coldN
	if every <= 0 {
		every = len(ds)/8 + 1
	}
	var coldNS []float64
	for i := every - 1; i < len(ds); i += every {
		replayed := in.Clone()
		if err := stream.Replay(replayed, ds[:i+1]...); err != nil {
			return err
		}
		start := time.Now()
		if err := coldSolve(replayed, *alg, *seed, vopt); err != nil {
			return err
		}
		coldNS = append(coldNS, float64(time.Since(start).Nanoseconds()))
	}
	rep.ColdSamples = len(coldNS)
	rep.ColdMeanMS = mean(coldNS) / 1e6
	if rep.WarmMeanMS > 0 {
		rep.SpeedupX = rep.ColdMeanMS / rep.WarmMeanMS
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "stream\t%d deltas over %.2fh", len(ds), *duration)
	for _, k := range sortedKeys(rep.DeltasByKind) {
		fmt.Fprintf(tw, "\t%s=%d", k, rep.DeltasByKind[k])
	}
	fmt.Fprintln(tw)
	fmt.Fprintln(tw, "resolve\tcount\tp50\tp99\tmean")
	for _, k := range sortedKeys(rep.Resolves) {
		lat := rep.ResolveLatencies[k]
		fmt.Fprintf(tw, "%s\t%d\t%.3fms\t%.3fms\t%.3fms\n",
			k, lat.Count, lat.P50MS, lat.P99MS, lat.MeanMS)
	}
	if n := rep.Resolves[stream.ResolveContinuation]; n > 0 {
		fmt.Fprintf(tw, "iterations saved\t%d total\t%.2f/continuation\n",
			rep.IterationsSaved, rep.IterationsSavedMean)
	}
	fmt.Fprintf(tw, "warm apply\tp50 %.3fms\tp99 %.3fms\tmean %.3fms\tworkers touched %.1f/%d\n",
		rep.WarmP50MS, rep.WarmP99MS, rep.WarmMeanMS, rep.WorkersTouched, rep.Workers)
	fmt.Fprintf(tw, "cold solve\tmean %.3fms\t(%d samples)\tspeedup %.1fx\n",
		rep.ColdMeanMS, rep.ColdSamples, rep.SpeedupX)
	fmt.Fprintln(tw)
	if err := tw.Flush(); err != nil {
		return err
	}
	if err := onlineComparison(in, ds, snap, reg); err != nil {
		return err
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			return err
		}
	}
	return nil
}

// coldSolve runs the reference pipeline from scratch — regenerate the
// strategy spaces, then the full dynamics — discarding the result; only the
// wall clock matters to the caller.
func coldSolve(in *model.Instance, alg string, seed int64, vopt vdps.Options) error {
	if len(in.Workers) == 0 {
		return nil
	}
	g, err := vdps.Generate(in, vopt)
	if err != nil {
		return err
	}
	if alg == "IEGT" {
		_, err = evo.ReferenceIEGT(context.Background(), g, evo.Options{Seed: seed})
	} else {
		_, err = game.ReferenceFGT(context.Background(), g, game.Options{Seed: seed})
	}
	return err
}

// onlineComparison replays the stream's task arrivals through the greedy and
// fair-first online matchers (irrevocable per-task assignment) and prints
// them beside the warm engine's equilibrium, reproducing the paper's batch
// fairness result in the streaming setting. The matchers run on the initial
// roster; worker churn only affects the engine row.
func onlineComparison(in *model.Instance, ds []stream.Delta, snap stream.Snapshot, reg *obs.Registry) error {
	om := obs.NewOnlineMetrics(reg)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tassigned\trejected\tspread (P_dif)\tavg payoff")
	for _, policy := range []online.Policy{online.Greedy, online.FairFirst} {
		m, err := online.NewMatcher(in, policy)
		if err != nil {
			return err
		}
		m.Instrument(om.ForPolicy(policy.String()))
		for _, d := range ds {
			if d.Kind != stream.TaskArrived {
				continue
			}
			m.Offer(d.At, online.Task{
				ID: d.TaskID, Loc: in.Points[d.Point].Loc, Expiry: d.Expiry, Reward: d.Reward,
			})
		}
		r := m.Report()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.4f\t%.4f\n",
			r.Policy, r.Assigned, r.Rejected, r.RateDifference, r.RateAverage)
	}
	fmt.Fprintf(tw, "warm %s\t%d\t-\t%.4f\t%.4f\n",
		snap.Algorithm, snap.Summary.Assigned, snap.Summary.Difference, snap.Summary.Average)
	return tw.Flush()
}

// percentile returns the p-th percentile of xs (nearest-rank); xs is sorted
// in place.
func percentile(xs []float64, p int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	i := len(xs) * p / 100
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
