package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected to a pipe and returns what it
// printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help failed: %v", err)
	}
}

func TestGenAssignSimPipeline(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "p.csv")

	if err := run([]string{"gen", "-dataset", "syn", "-seed", "3",
		"-centers", "2", "-tasks", "60", "-workers", "8", "-points", "16",
		"-out", csv}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if _, err := os.Stat(csv); err != nil {
		t.Fatalf("gen wrote nothing: %v", err)
	}

	out, err := capture(t, func() error {
		return run([]string{"assign", "-in", csv, "-alg", "IEGT", "-eps", "2"})
	})
	if err != nil {
		t.Fatalf("assign: %v", err)
	}
	for _, want := range []string{"IEGT", "payoff difference", "average payoff"} {
		if !strings.Contains(out, want) {
			t.Errorf("assign output missing %q in:\n%s", want, out)
		}
	}

	out, err = capture(t, func() error {
		return run([]string{"sim", "-in", csv, "-alg", "GTA", "-epochs", "2"})
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	for _, want := range []string{"epoch", "cumulative P_dif", "total completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("sim output missing %q in:\n%s", want, out)
		}
	}
}

func TestGenGMToStdout(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"gen", "-dataset", "gm", "-tasks", "30",
			"-workers", "4", "-points", "10"})
	})
	if err != nil {
		t.Fatalf("gen gm: %v", err)
	}
	if !strings.Contains(out, "meta,") || !strings.Contains(out, "center,") {
		t.Errorf("CSV header records missing:\n%.200s", out)
	}
}

func TestGenUnknownDataset(t *testing.T) {
	if err := run([]string{"gen", "-dataset", "nope"}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestAssignRequiresInput(t *testing.T) {
	if err := run([]string{"assign"}); err == nil {
		t.Error("assign without -in accepted")
	}
	if err := run([]string{"assign", "-in", "/nonexistent/x.csv"}); err == nil {
		t.Error("assign with missing file accepted")
	}
}

func TestAssignUnknownAlgorithm(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "p.csv")
	if err := run([]string{"gen", "-dataset", "gm", "-tasks", "20",
		"-workers", "3", "-points", "6", "-out", csv}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"assign", "-in", csv, "-alg", "XXX"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestSweepListsFigures(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"sweep"})
	})
	if err != nil {
		t.Fatalf("sweep list: %v", err)
	}
	for _, want := range []string{"fig2", "fig12"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure list missing %q", want)
		}
	}
}

func TestSweepRunsTinyFigure(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"sweep", "-fig", "fig12", "-scale", "100", "-gmscale", "5"})
	})
	if err != nil {
		t.Fatalf("sweep fig12: %v", err)
	}
	if !strings.Contains(out, "Convergence") || !strings.Contains(out, "FGT") {
		t.Errorf("sweep output unexpected:\n%s", out)
	}
}

func TestSweepUnknownFigure(t *testing.T) {
	if err := run([]string{"sweep", "-fig", "fig99"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestAssignRoutesExport(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "p.csv")
	routes := filepath.Join(dir, "routes.csv")
	if err := run([]string{"gen", "-dataset", "gm", "-tasks", "40",
		"-workers", "5", "-points", "10", "-out", csv}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"assign", "-in", csv, "-alg", "GTA", "-routes", routes})
	}); err != nil {
		t.Fatalf("assign -routes: %v", err)
	}
	data, err := os.ReadFile(routes)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "center,worker,stop,point") {
		t.Errorf("routes CSV malformed:\n%.120s", data)
	}
}

func TestReport(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "p.csv")
	if err := run([]string{"gen", "-dataset", "syn", "-centers", "2",
		"-tasks", "40", "-workers", "8", "-points", "12", "-out", csv}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"report", "-in", csv, "-alg", "MMTA"})
	})
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	for _, want := range []string{"Gini", "Jain", "minimum payoff", "center"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSweepTable1(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"sweep", "-table1"})
	})
	if err != nil {
		t.Fatalf("sweep -table1: %v", err)
	}
	if !strings.Contains(out, "epsilon") || !strings.Contains(out, "maxDP") {
		t.Errorf("table1 output unexpected:\n%s", out)
	}
}

func TestSweepRepeated(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"sweep", "-fig", "fig12", "-scale", "100",
			"-gmscale", "5", "-reps", "2"})
	})
	if err != nil {
		t.Fatalf("sweep -reps: %v", err)
	}
	if !strings.Contains(out, "mean of 2 runs") {
		t.Errorf("repeated sweep output unexpected:\n%s", out)
	}
}

func TestOnline(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"online", "-workers", "4", "-tasks", "40"})
	})
	if err != nil {
		t.Fatalf("online: %v", err)
	}
	for _, want := range []string{"greedy", "fair-first", "rate spread"} {
		if !strings.Contains(out, want) {
			t.Errorf("online output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"online", "-rate", "0"}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestRender(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "p.csv")
	svg := filepath.Join(dir, "map.svg")
	if err := run([]string{"gen", "-dataset", "gm", "-tasks", "30",
		"-workers", "4", "-points", "8", "-out", csv}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"render", "-in", csv, "-alg", "GTA", "-out", svg, "-labels"}); err != nil {
		t.Fatalf("render: %v", err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Errorf("not an SVG:\n%.80s", data)
	}
	if err := run([]string{"render", "-in", csv, "-center", "99"}); err == nil {
		t.Error("missing center accepted")
	}
}

func TestSweepCSVExport(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "series.csv")
	if _, err := capture(t, func() error {
		return run([]string{"sweep", "-fig", "fig12", "-scale", "100",
			"-gmscale", "5", "-csv", csvPath})
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "figure,x,algorithm") {
		t.Errorf("series CSV malformed:\n%.100s", data)
	}
}

func TestSimArrivalsAndJSON(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "p.csv")
	jsonPath := filepath.Join(dir, "report.json")
	if err := run([]string{"gen", "-dataset", "syn", "-centers", "1",
		"-tasks", "20", "-workers", "4", "-points", "8", "-out", csv}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"sim", "-in", csv, "-alg", "GTA", "-epochs", "3",
			"-arrivals", "1", "-rush", "-json", jsonPath})
	}); err != nil {
		t.Fatalf("sim with arrivals: %v", err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := jsonUnmarshal(data, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if _, ok := rep["Epochs"]; !ok {
		t.Error("JSON report missing Epochs")
	}
}

func jsonUnmarshal(data []byte, v any) error {
	return json.Unmarshal(data, v)
}

func TestServeHandler(t *testing.T) {
	srv := httptest.NewServer(newServerHandler(nil, 0))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}

	// Round-trip a real problem through the HTTP API with FGT.
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "p.csv")
	if err := run([]string{"gen", "-dataset", "gm", "-tasks", "30",
		"-workers", "4", "-points", "8", "-out", csvPath}); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/solve?alg=FGT&seed=2", "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["algorithm"] != "FGT" {
		t.Errorf("algorithm = %v", out["algorithm"])
	}

	// The serve handler wires a MetricsRecorder: the scrape must show both
	// the HTTP request just made and the solver-side counters it drove.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	metrics, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(metrics)
	for _, want := range []string{
		`fta_http_requests_total{code="2xx",route="/solve"} 1`,
		"fta_vdps_candidates_total",
		"fta_solve_iterations_count 1",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("metrics missing %q in:\n%s", want, exposition)
		}
	}
}

func TestAssignTraceOut(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "p.csv")
	trace := filepath.Join(dir, "trace.jsonl")
	if err := run([]string{"gen", "-dataset", "syn", "-centers", "2",
		"-tasks", "40", "-workers", "8", "-points", "12", "-out", csv}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"assign", "-in", csv, "-alg", "FGT", "-eps", "2",
			"-trace-out", trace})
	}); err != nil {
		t.Fatalf("assign -trace-out: %v", err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 {
		t.Fatal("trace file is empty")
	}
	centers := map[float64]bool{}
	lastIter := map[float64]float64{}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line %q is not JSON: %v", line, err)
		}
		for _, key := range []string{"center", "algorithm", "iteration", "changes", "payoff_diff", "avg_payoff"} {
			if _, ok := rec[key]; !ok {
				t.Fatalf("trace line missing %q: %s", key, line)
			}
		}
		if rec["algorithm"] != "FGT" {
			t.Errorf("trace algorithm = %v", rec["algorithm"])
		}
		c := rec["center"].(float64)
		centers[c] = true
		// Iterations must be 1-based and increasing per center.
		it := rec["iteration"].(float64)
		if it != lastIter[c]+1 {
			t.Errorf("center %v iteration jumped from %v to %v", c, lastIter[c], it)
		}
		lastIter[c] = it
	}
	if len(centers) != 2 {
		t.Errorf("trace covers %d centers, want 2", len(centers))
	}
}

func TestGenGMissionRawFiles(t *testing.T) {
	dir := t.TempDir()
	tasks := filepath.Join(dir, "tasks.csv")
	workers := filepath.Join(dir, "workers.csv")
	out := filepath.Join(dir, "p.csv")
	if err := os.WriteFile(tasks, []byte(
		"0,0.1,0.1,2,1\n1,0.2,0.1,2,1\n2,2.0,2.1,2,1\n3,2.1,2.0,2,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(workers, []byte("0,1,1,3\n1,0.5,0.5,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"gen", "-dataset", "gmission",
		"-gmission-tasks", tasks, "-gmission-workers", workers,
		"-points", "2", "-out", out}); err != nil {
		t.Fatalf("gen gmission: %v", err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"assign", "-in", out, "-alg", "GTA"})
	}); err != nil {
		t.Fatalf("assign on loaded gmission: %v", err)
	}
	if err := run([]string{"gen", "-dataset", "gmission"}); err == nil {
		t.Error("missing raw file flags accepted")
	}
}

func TestAuditRoundTrip(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "p.csv")
	routes := filepath.Join(dir, "routes.csv")
	if err := run([]string{"gen", "-dataset", "syn", "-seed", "11",
		"-centers", "2", "-tasks", "40", "-workers", "6", "-points", "12",
		"-out", csv}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run([]string{"assign", "-in", csv, "-alg", "FGT", "-routes", routes})
	}); err != nil {
		t.Fatalf("assign -routes: %v", err)
	}

	out, err := capture(t, func() error {
		return run([]string{"audit", "-in", csv, "-routes", routes, "-alg", "FGT"})
	})
	if err != nil {
		t.Fatalf("audit rejected a clean export: %v\n%s", err, out)
	}
	for _, want := range []string{"center", "result", "audit passed: 2 center(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("audit output missing %q in:\n%s", want, out)
		}
	}

	// Corrupt the export: point the first route row at a different delivery
	// point, producing either an overlap, a deadline miss or a non-member
	// route — any of which must fail the audit with a non-zero exit.
	data, err := os.ReadFile(routes)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("route export too small to corrupt:\n%s", data)
	}
	f1 := strings.Split(lines[1], ",")
	f2 := strings.Split(lines[2], ",")
	f1[3] = f2[3] // duplicate another row's point ID
	lines[1] = strings.Join(f1, ",")
	if err := os.WriteFile(routes, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = capture(t, func() error {
		return run([]string{"audit", "-in", csv, "-routes", routes})
	})
	if err == nil {
		t.Fatalf("audit accepted a corrupted export:\n%s", out)
	}
	if !strings.Contains(out, "violation") {
		t.Errorf("audit output does not mention violations:\n%s", out)
	}
}

func TestAuditRequiresRoutes(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "p.csv")
	if err := run([]string{"gen", "-dataset", "gm", "-tasks", "20",
		"-workers", "4", "-points", "8", "-out", csv}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"audit", "-in", csv}); err == nil {
		t.Error("audit without -routes accepted")
	}
}

// The full LEXIFAIR pipeline: assign with route export, then audit the
// exported routes under the leximin certificate.
func TestLexifairAssignAndAuditPipeline(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "p.csv")
	routes := filepath.Join(dir, "routes.csv")
	if err := run([]string{"gen", "-dataset", "syn", "-seed", "5", "-centers", "2",
		"-tasks", "40", "-workers", "6", "-points", "10", "-out", csv}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run([]string{"assign", "-in", csv, "-alg", "LEXIFAIR", "-routes", routes})
	})
	if err != nil {
		t.Fatalf("assign -alg LEXIFAIR: %v", err)
	}
	if !strings.Contains(out, "LEXIFAIR") {
		t.Errorf("assign output does not name the algorithm:\n%s", out)
	}
	if _, err := os.Stat(routes); err != nil {
		t.Fatalf("assign wrote no routes: %v", err)
	}
	audit, err := capture(t, func() error {
		return run([]string{"audit", "-in", csv, "-routes", routes, "-alg", "LEXIFAIR"})
	})
	if err != nil {
		t.Fatalf("audit of LEXIFAIR routes failed: %v\n%s", err, audit)
	}
	// The leximin certificate must actually gate: an all-null route set
	// (header-only CSV) cannot be leximin-optimal here and must fail.
	emptyRoutes := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(emptyRoutes,
		[]byte("center,worker,stop,point,arrival,reward,payoff\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = capture(t, func() error {
		return run([]string{"audit", "-in", csv, "-routes", emptyRoutes, "-alg", "LEXIFAIR"})
	})
	if err == nil {
		t.Fatalf("empty assignment passed the LEXIFAIR audit:\n%s", out)
	}
	if !strings.Contains(out+err.Error(), "lexifair") {
		t.Errorf("audit rejection does not mention the lexifair check: %v\n%s", err, out)
	}
}
