package fairtask_test

import (
	"fmt"
	"log"

	"fairtask"
)

// ExampleSolve builds a tiny hand-crafted instance — one center, three
// delivery points on a line, two couriers — and solves it with the
// fairness-aware game-theoretic algorithm.
func ExampleSolve() {
	travel, err := fairtask.NewTravelModel(fairtask.Euclidean{}, 1)
	if err != nil {
		log.Fatal(err)
	}
	inst := &fairtask.Instance{
		Center: fairtask.Pt(0, 0),
		Travel: travel,
		Points: []fairtask.DeliveryPoint{
			{ID: 0, Loc: fairtask.Pt(1, 0), Tasks: []fairtask.Task{
				{ID: 0, Point: 0, Expiry: 10, Reward: 2}}},
			{ID: 1, Loc: fairtask.Pt(2, 0), Tasks: []fairtask.Task{
				{ID: 1, Point: 1, Expiry: 10, Reward: 2}}},
			{ID: 2, Loc: fairtask.Pt(0, 2), Tasks: []fairtask.Task{
				{ID: 2, Point: 2, Expiry: 10, Reward: 3}}},
		},
		Workers: []fairtask.Worker{
			{ID: 0, Loc: fairtask.Pt(-1, 0), MaxDP: 2},
			{ID: 1, Loc: fairtask.Pt(0, -1), MaxDP: 2},
		},
	}
	res, err := fairtask.Solve(inst, fairtask.Options{
		Algorithm: fairtask.AlgFGT,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("assigned workers:", res.Summary.Assigned)
	fmt.Println("disjoint:", res.Assignment.Validate(inst) == nil)
	// Output:
	// converged: true
	// assigned workers: 2
	// disjoint: true
}

// ExamplePayoffDifference computes the paper's unfairness measure P_dif
// (Equation 2) over a payoff vector.
func ExamplePayoffDifference() {
	payoffs := []float64{2, 2, 5}
	fmt.Printf("P_dif = %.2f\n", fairtask.PayoffDifference(payoffs))
	fmt.Printf("average = %.2f\n", fairtask.AveragePayoff(payoffs))
	// Output:
	// P_dif = 2.00
	// average = 3.00
}

// ExampleGenerateSYN generates a scaled-down version of the paper's
// synthetic workload (Table I) and reports its shape.
func ExampleGenerateSYN() {
	p, err := fairtask.GenerateSYN(fairtask.SYNConfig{
		Seed:           1,
		Centers:        4,
		Tasks:          200,
		Workers:        16,
		DeliveryPoints: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("centers:", len(p.Instances))
	fmt.Println("tasks:", p.TaskCount())
	fmt.Println("workers:", p.WorkerCount())
	// Output:
	// centers: 4
	// tasks: 200
	// workers: 16
}

// ExampleNewAssigner shows the algorithm-agnostic interface used by the
// multi-center solver and the platform simulation.
func ExampleNewAssigner() {
	for _, alg := range fairtask.Algorithms() {
		a, err := fairtask.NewAssigner(fairtask.Options{Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(a.Name())
	}
	// Output:
	// MPTA
	// GTA
	// FGT
	// IEGT
}
