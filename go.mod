module fairtask

go 1.22
