package fairtask_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented parses every library source file and fails
// on any exported declaration without a doc comment — the mechanical form
// of the "document every public item" policy. Example binaries are exempt.
func TestExportedSymbolsDocumented(t *testing.T) {
	var files []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (name == "examples" || name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 20 {
		t.Fatalf("suspiciously few source files found: %d", len(files))
	}

	fset := token.NewFileSet()
	var missing []string
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					missing = append(missing, loc(path, fset, d.Pos(), "func "+d.Name.Name))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
							missing = append(missing, loc(path, fset, sp.Pos(), "type "+sp.Name.Name))
						}
					case *ast.ValueSpec:
						for _, name := range sp.Names {
							if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
								missing = append(missing, loc(path, fset, name.Pos(), "value "+name.Name))
							}
						}
					}
				}
			}
		}
	}
	for _, m := range missing {
		t.Error("undocumented exported symbol: " + m)
	}
}

func loc(path string, fset *token.FileSet, pos token.Pos, what string) string {
	p := fset.Position(pos)
	return path + ":" + itoa(p.Line) + " " + what
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
