// Benchmarks regenerating every figure of the paper's evaluation section
// (one Benchmark per figure; see DESIGN.md §5 for the index) plus
// micro-benchmarks of the core components and the ablations called out in
// DESIGN.md. Figure benches run the full sweep per iteration at a reduced
// scale (SYNScale 50, GMScale 2) so the whole suite finishes on a laptop;
// use cmd/fta sweep -scale 10 (or 1) for larger runs.
package fairtask_test

import (
	"fmt"
	"io"
	"math"
	"testing"

	"fairtask"
	"fairtask/internal/experiment"
)

// benchConfig is the reduced-scale configuration for figure benches.
func benchConfig() experiment.Config {
	return experiment.Config{
		Seed:           1,
		SYNScale:       50,
		GMScale:        2,
		MPTANodeBudget: 50_000,
	}
}

// runFigure executes a figure sweep b.N times and reports a few headline
// metrics from the last run.
func runFigure(b *testing.B, name string) {
	b.Helper()
	var last *experiment.Series
	for i := 0; i < b.N; i++ {
		s, err := experiment.Run(name, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	if last != nil {
		last.WriteTables(io.Discard)
		reportSeries(b, last)
	}
}

// reportSeries attaches the headline numbers (payoff difference of each
// algorithm at the last x) as custom benchmark metrics.
func reportSeries(b *testing.B, s *experiment.Series) {
	b.Helper()
	xs := map[float64]bool{}
	maxX := math.Inf(-1)
	for _, p := range s.Points {
		if !xs[p.X] {
			xs[p.X] = true
		}
		if p.X > maxX {
			maxX = p.X
		}
	}
	for _, p := range s.Points {
		if p.X == maxX {
			b.ReportMetric(p.PayoffDiff, fmt.Sprintf("Pdif_%s", p.Algorithm))
		}
	}
}

// Figure benches — one per evaluation figure (Table I parameters, scaled).

func BenchmarkFig2EpsilonGM(b *testing.B)  { runFigure(b, "fig2") }
func BenchmarkFig3EpsilonSYN(b *testing.B) { runFigure(b, "fig3") }
func BenchmarkFig4TasksGM(b *testing.B)    { runFigure(b, "fig4") }
func BenchmarkFig5TasksSYN(b *testing.B)   { runFigure(b, "fig5") }
func BenchmarkFig6WorkersGM(b *testing.B)  { runFigure(b, "fig6") }
func BenchmarkFig7WorkersSYN(b *testing.B) { runFigure(b, "fig7") }
func BenchmarkFig8PointsGM(b *testing.B)   { runFigure(b, "fig8") }
func BenchmarkFig9PointsSYN(b *testing.B)  { runFigure(b, "fig9") }
func BenchmarkFig10ExpirySYN(b *testing.B) { runFigure(b, "fig10") }
func BenchmarkFig11MaxDPSYN(b *testing.B)  { runFigure(b, "fig11") }

// BenchmarkFig12Convergence traces FGT and IEGT to equilibrium and reports
// the iteration counts as metrics.
func BenchmarkFig12Convergence(b *testing.B) {
	var last *experiment.Series
	for i := 0; i < b.N; i++ {
		s, err := experiment.Run("fig12", benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	iters := map[string]float64{}
	for _, p := range last.Points {
		if p.X > iters[p.Algorithm] {
			iters[p.Algorithm] = p.X
		}
	}
	for alg, n := range iters {
		b.ReportMetric(n, fmt.Sprintf("iters_%s", alg))
	}
}

// Component micro-benchmarks.

func benchGM(b *testing.B, tasks, workers, points int) *fairtask.Instance {
	b.Helper()
	in, err := fairtask.GenerateGM(fairtask.GMConfig{
		Seed: 1, Tasks: tasks, Workers: workers, DeliveryPoints: points,
	})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func benchSolve(b *testing.B, alg fairtask.Algorithm, eps float64) {
	b.Helper()
	in := benchGM(b, 200, 40, 60)
	opt := fairtask.Options{Algorithm: alg, Seed: 1, VDPS: fairtask.VDPSOptions{Epsilon: eps}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fairtask.Solve(in, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveGTA(b *testing.B)  { benchSolve(b, fairtask.AlgGTA, 0.6) }
func BenchmarkSolveMPTA(b *testing.B) { benchSolve(b, fairtask.AlgMPTA, 0.6) }
func BenchmarkSolveFGT(b *testing.B)  { benchSolve(b, fairtask.AlgFGT, 0.6) }
func BenchmarkSolveIEGT(b *testing.B) { benchSolve(b, fairtask.AlgIEGT, 0.6) }

// benchSolveW200 is the large-population workload of ISSUE 4's incremental
// fairness kernel: 200 workers make the O(W) vs O(log W) best-response gap
// visible (see docs/PERFORMANCE.md and BENCH_game.json).
func benchSolveW200(b *testing.B, alg fairtask.Algorithm) {
	b.Helper()
	in := benchGM(b, 1000, 200, 150)
	opt := fairtask.Options{Algorithm: alg, Seed: 1, VDPS: fairtask.VDPSOptions{Epsilon: 0.6}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fairtask.Solve(in, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveFGTW200(b *testing.B)  { benchSolveW200(b, fairtask.AlgFGT) }
func BenchmarkSolveIEGTW200(b *testing.B) { benchSolveW200(b, fairtask.AlgIEGT) }

// Ablation: VDPS generation with and without distance-constrained pruning
// (the paper's claim is pruning preserves results while cutting CPU time).
func BenchmarkVDPSGenPruned(b *testing.B) {
	in := benchGM(b, 200, 40, 60)
	opt := fairtask.Options{Algorithm: fairtask.AlgGTA, VDPS: fairtask.VDPSOptions{Epsilon: 0.6}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fairtask.Solve(in, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVDPSGenUnpruned(b *testing.B) {
	in := benchGM(b, 200, 40, 60)
	opt := fairtask.Options{Algorithm: fairtask.AlgGTA}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fairtask.Solve(in, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: FGT early termination via the utility-gain threshold (paper's
// future-work "early termination of iterations").
func BenchmarkFGTEarlyTermination(b *testing.B) {
	in := benchGM(b, 200, 40, 60)
	opt := fairtask.Options{
		Algorithm:      fairtask.AlgFGT,
		Seed:           1,
		EpsilonUtility: 0.01,
		VDPS:           fairtask.VDPSOptions{Epsilon: 0.6},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fairtask.Solve(in, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// Payoff difference computation at population scale.
func BenchmarkPayoffDifference(b *testing.B) {
	p := make([]float64, 2000)
	for i := range p {
		p[i] = float64(i%37) / 7
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fairtask.PayoffDifference(p)
	}
}

// Dataset generation throughput.
func BenchmarkGenerateSYN(b *testing.B) {
	cfg := fairtask.SYNConfig{Seed: 1, Centers: 5, Tasks: 10_000, Workers: 200, DeliveryPoints: 500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fairtask.GenerateSYN(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateGM(b *testing.B) {
	cfg := fairtask.GMConfig{Seed: 1, Tasks: 200, Workers: 40, DeliveryPoints: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fairtask.GenerateGM(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Platform simulation round throughput.
func BenchmarkSimulate(b *testing.B) {
	p, err := fairtask.GenerateSYN(fairtask.SYNConfig{
		Seed: 1, Centers: 2, Tasks: 400, Workers: 20, DeliveryPoints: 40,
	})
	if err != nil {
		b.Fatal(err)
	}
	solver, err := fairtask.NewAssigner(fairtask.Options{Algorithm: fairtask.AlgGTA})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fairtask.Simulate(p, fairtask.SimConfig{Epochs: 4, Solver: solver}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches (DESIGN.md §3 design choices), driven through the
// experiment registry so "go test -bench Ablation" reproduces the series.

func runAblation(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Run(name, benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationIndex(b *testing.B)         { runAblation(b, "ablation-index") }
func BenchmarkAblationDecomposition(b *testing.B) { runAblation(b, "ablation-decomposition") }
func BenchmarkAblationEarlyTerm(b *testing.B)     { runAblation(b, "ablation-earlyterm") }
func BenchmarkAblationOrder(b *testing.B)         { runAblation(b, "ablation-order") }
func BenchmarkAblationMutation(b *testing.B)      { runAblation(b, "ablation-mutation") }
