// Quickstart: generate a gMission-style workload, run all four assignment
// algorithms, and compare fairness (payoff difference) against average
// payoff — the paper's core trade-off.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"fairtask"
)

func main() {
	// A single distribution center with clustered tasks, 100 delivery
	// points derived by k-means, and 40 couriers (Table I GM defaults).
	inst, err := fairtask.GenerateGM(fairtask.GMConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d delivery points, %d tasks, %d workers\n\n",
		len(inst.Points), inst.TaskCount(), len(inst.Workers))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tpayoff difference\taverage payoff\titerations\tconverged")
	for _, alg := range fairtask.Algorithms() {
		res, err := fairtask.Solve(inst, fairtask.Options{
			Algorithm: alg,
			Seed:      7,
			// Distance-constrained pruning at the paper's GM default.
			VDPS: fairtask.VDPSOptions{Epsilon: 0.6},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%d\t%v\n",
			alg, res.Summary.Difference, res.Summary.Average,
			res.Iterations, res.Converged)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nLower payoff difference = fairer assignment.")
	fmt.Println("The game-theoretic methods (FGT, IEGT) trade a little average")
	fmt.Println("payoff for much lower inequality between workers.")
}
