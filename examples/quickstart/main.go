// Quickstart: generate a gMission-style workload, run all four assignment
// algorithms, and compare fairness (payoff difference) against average
// payoff — the paper's core trade-off.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"fairtask"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	// A single distribution center with clustered tasks, 100 delivery
	// points derived by k-means, and 40 couriers (Table I GM defaults).
	inst, err := fairtask.GenerateGM(fairtask.GMConfig{Seed: 42})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "instance: %d delivery points, %d tasks, %d workers\n\n",
		len(inst.Points), inst.TaskCount(), len(inst.Workers))

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tpayoff difference\taverage payoff\titerations\tconverged")
	for _, alg := range fairtask.Algorithms() {
		res, err := fairtask.Solve(inst, fairtask.Options{
			Algorithm: alg,
			Seed:      7,
			// Distance-constrained pruning at the paper's GM default.
			VDPS: fairtask.VDPSOptions{Epsilon: 0.6},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%d\t%v\n",
			alg, res.Summary.Difference, res.Summary.Average,
			res.Iterations, res.Converged)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(out, "\nLower payoff difference = fairer assignment.")
	fmt.Fprintln(out, "The game-theoretic methods (FGT, IEGT) trade a little average")
	fmt.Fprintln(out, "payoff for much lower inequality between workers.")
	return nil
}
