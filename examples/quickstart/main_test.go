package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end: it must succeed and print a
// result row for every algorithm.
func TestRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"instance:", "algorithm", "FGT", "IEGT"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
