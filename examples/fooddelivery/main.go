// Food delivery: a hand-built lunch-rush scenario for a dark kitchen.
//
// A ghost kitchen (the distribution center) serves eight neighbourhood
// drop-off points; each point has a batch of meal orders that must arrive
// within its delivery window. Five couriers with different start positions
// and capacities are assigned delivery routes with the fairness-aware FGT
// algorithm, and the resulting per-courier routes are printed.
//
// Run with: go run ./examples/fooddelivery
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"fairtask"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	travel, err := fairtask.NewTravelModel(fairtask.Euclidean{}, 15) // e-bikes: 15 km/h
	if err != nil {
		return err
	}

	inst := &fairtask.Instance{
		CenterID: 1,
		Center:   fairtask.Pt(0, 0), // the kitchen
		Travel:   travel,
	}

	// Neighbourhood drop-off points: location, number of orders, delivery
	// window in hours. Windows are deliberately tight for the far points.
	spots := []struct {
		name   string
		loc    fairtask.Point
		orders int
		window float64
	}{
		{"Riverside", fairtask.Pt(1.2, 0.4), 6, 0.75},
		{"Old Town", fairtask.Pt(0.8, -1.0), 4, 0.60},
		{"Campus", fairtask.Pt(-1.5, 0.6), 7, 0.80},
		{"Harbor", fairtask.Pt(2.4, 1.8), 3, 0.90},
		{"Mills", fairtask.Pt(-0.6, -1.7), 5, 0.70},
		{"Heights", fairtask.Pt(-2.2, -0.8), 4, 1.00},
		{"Station", fairtask.Pt(0.3, 1.5), 6, 0.65},
		{"Parkside", fairtask.Pt(1.7, -1.9), 2, 1.10},
	}
	taskID := 0
	for i, s := range spots {
		dp := fairtask.DeliveryPoint{ID: i, Loc: s.loc}
		for o := 0; o < s.orders; o++ {
			dp.Tasks = append(dp.Tasks, fairtask.Task{
				ID: taskID, Point: i, Expiry: s.window, Reward: 1,
			})
			taskID++
		}
		inst.Points = append(inst.Points, dp)
	}

	// Couriers: start position and how many stops they will accept.
	couriers := []struct {
		name  string
		loc   fairtask.Point
		stops int
	}{
		{"Ana", fairtask.Pt(-0.4, 0.3), 3},
		{"Bo", fairtask.Pt(0.9, 0.8), 2},
		{"Cleo", fairtask.Pt(-1.1, -0.9), 3},
		{"Dee", fairtask.Pt(1.5, -0.5), 2},
		{"Eli", fairtask.Pt(0.1, -1.2), 3},
	}
	for i, c := range couriers {
		inst.Workers = append(inst.Workers, fairtask.Worker{
			ID: i, Loc: c.loc, MaxDP: c.stops,
		})
	}
	if err := inst.Validate(); err != nil {
		return err
	}

	res, err := fairtask.Solve(inst, fairtask.Options{
		Algorithm: fairtask.AlgFGT,
		Seed:      3,
	})
	if err != nil {
		return err
	}

	fmt.Fprintln(out, "Lunch-rush assignment (FGT, inequity-aversion utility):")
	fmt.Fprintln(out)
	for w, route := range res.Assignment.Routes {
		name := couriers[w].name
		if len(route) == 0 {
			fmt.Fprintf(out, "  %-5s idle this round\n", name)
			continue
		}
		var stops []string
		for _, p := range route {
			stops = append(stops, spots[p].name)
		}
		arr := inst.RouteArrivals(w, route)
		eta := arr[len(arr)-1] * 60
		fmt.Fprintf(out, "  %-5s kitchen -> %s  (%d orders, done in %.0f min, payoff %.2f)\n",
			name, strings.Join(stops, " -> "),
			int(inst.RouteReward(route)), eta, res.Summary.Payoffs[w])
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "payoff difference across couriers: %.3f\n", res.Summary.Difference)
	fmt.Fprintf(out, "average courier payoff:            %.3f\n", res.Summary.Average)
	if err := res.Assignment.Validate(inst); err != nil {
		return fmt.Errorf("assignment failed validation: %w", err)
	}
	fmt.Fprintln(out, "all delivery windows verified feasible")
	return nil
}
