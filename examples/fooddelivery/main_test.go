package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example: the hand-built lunch-rush instance must
// solve, validate every delivery window, and print the courier routes.
func TestRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Lunch-rush assignment", "payoff difference", "all delivery windows verified feasible"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
