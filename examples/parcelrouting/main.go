// Parcel routing: a multi-depot parcel network solved per depot in
// parallel, plus a day-long platform simulation with worker lifecycles.
//
// The scenario: a regional parcel operator with 8 depots, 400 drop points
// and 160 drivers. One-shot assignment compares GTA with IEGT over the whole
// driver population; then an 8-round simulation shows drivers going offline
// while driving routes and parcels expiring when nobody can take them.
//
// Run with: go run ./examples/parcelrouting
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"fairtask"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	prob, err := fairtask.GenerateSYN(fairtask.SYNConfig{
		Seed:           2024,
		Centers:        8,
		DeliveryPoints: 400,
		Workers:        160,
		Tasks:          8000,
		Expiry:         2, // hours
		MaxDP:          3,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "network: %d depots, %d drop points, %d parcels, %d drivers\n\n",
		len(prob.Instances), 400, prob.TaskCount(), prob.WorkerCount())

	// One-shot assignment across all depots in parallel.
	for _, alg := range []fairtask.Algorithm{fairtask.AlgGTA, fairtask.AlgIEGT} {
		res, err := fairtask.SolveProblem(prob, fairtask.Options{
			Algorithm: alg,
			Seed:      5,
			VDPS:      fairtask.VDPSOptions{Epsilon: 2},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-5s payoff difference %.3f, average payoff %.3f (solved in %s)\n",
			alg, res.Difference, res.Average, res.Elapsed.Round(1000000))
	}

	// Day simulation: drivers go offline for the duration of their routes;
	// parcels not assigned before their deadline expire.
	solver, err := fairtask.NewAssigner(fairtask.Options{
		Algorithm: fairtask.AlgIEGT, Seed: 5,
		VDPS: fairtask.VDPSOptions{Epsilon: 2},
	})
	if err != nil {
		return err
	}
	rep, err := fairtask.Simulate(prob, fairtask.SimConfig{
		Epochs:      8,
		EpochLength: 0.5, // assignment round every 30 simulated minutes
		Solver:      solver,
		VDPS:        fairtask.VDPSOptions{Epsilon: 2},
		// Fresh parcels keep arriving: on average half a parcel per drop
		// point every round, valid for 2 hours.
		TaskSource: fairtask.NewPoissonArrivals(fairtask.ArrivalConfig{
			Seed: 7, RatePerPoint: 0.5, Lifetime: 2,
		}),
	})
	if err != nil {
		return err
	}

	fmt.Fprintln(out, "\nsimulated morning (IEGT every 30 min):")
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "round\tclock\tonline\tassigned\tdelivered\texpired")
	for _, e := range rep.Epochs {
		fmt.Fprintf(tw, "%d\t%.1fh\t%d\t%d\t%d\t%d\n",
			e.Epoch, e.Now, e.OnlineWorkers, e.AssignedWorkers,
			e.CompletedTasks, e.ExpiredTasks)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "\ndelivered %d parcels, %d expired\n", rep.CompletedTasks, rep.ExpiredTasks)
	fmt.Fprintf(out, "long-run earnings-rate inequality across drivers: %.3f (avg rate %.3f)\n",
		rep.CumulativeDifference, rep.CumulativeAverage)
	return nil
}
