package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example: the multi-depot solve and the epoch
// simulation must both complete and print their reports.
func TestRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"network:", "simulated morning", "delivered"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
