// Convergence study: traces the per-iteration behaviour of the two
// game-theoretic algorithms to their equilibria (paper Figure 12).
//
// FGT performs sequential best-response updates until a pure Nash
// equilibrium; IEGT applies replicator dynamics until an improved
// evolutionary equilibrium. Both traces print the payoff difference,
// average payoff and number of strategy changes per round.
//
// Run with: go run ./examples/convergence
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"fairtask"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	inst, err := fairtask.GenerateGM(fairtask.GMConfig{
		Seed:           9,
		Tasks:          200,
		Workers:        40,
		DeliveryPoints: 60,
	})
	if err != nil {
		return err
	}

	for _, alg := range []fairtask.Algorithm{fairtask.AlgFGT, fairtask.AlgIEGT} {
		res, err := fairtask.Solve(inst, fairtask.Options{
			Algorithm: alg,
			Seed:      11,
			Trace:     true,
			VDPS:      fairtask.VDPSOptions{Epsilon: 0.6},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s converged=%v after %d iterations\n", alg, res.Converged, res.Iterations)
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "iter\tchanges\tpayoff difference\taverage payoff")
		for _, it := range res.Trace {
			fmt.Fprintf(tw, "%d\t%d\t%.4f\t%.4f\n",
				it.Iteration, it.Changes, it.PayoffDiff, it.AvgPayoff)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	fmt.Fprintln(out, "Both traces end with zero strategy changes: FGT at a pure Nash")
	fmt.Fprintln(out, "equilibrium, IEGT at an improved evolutionary equilibrium.")
	return nil
}
