package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example: both algorithms must converge and print
// a per-iteration trace.
func TestRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FGT converged=true", "IEGT converged=true", "iter"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
