// Online dispatch: the single-task assignment mode of the paper's §III,
// where delivery requests arrive one at a time over an afternoon and must
// be matched to a courier immediately.
//
// The same 200-request stream is replayed under two policies — greedy
// (fastest completion) and fair-first (lowest cumulative earnings rate) —
// showing the batch result in its online form: fairness-aware matching
// narrows the courier earnings spread at a small throughput cost.
//
// Run with: go run ./examples/onlinedispatch
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"os"
	"text/tabwriter"

	"fairtask"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	travel, err := fairtask.NewTravelModel(fairtask.Euclidean{}, 12) // cargo bikes
	if err != nil {
		return err
	}
	inst := &fairtask.Instance{
		Center: fairtask.Pt(0, 0),
		Travel: travel,
	}
	for w := 0; w < 8; w++ {
		angle := float64(w) / 8 * 6.28318
		inst.Workers = append(inst.Workers, fairtask.Worker{
			ID:  w,
			Loc: fairtask.Pt(1.5*math.Cos(angle), 1.5*math.Sin(angle)),
		})
	}

	// A reproducible afternoon of requests: one every ~90 seconds, drop-off
	// within 3 km of the hub, 45-minute delivery windows.
	rng := rand.New(rand.NewSource(99))
	type arrival struct {
		at   float64
		task fairtask.OnlineTask
	}
	var stream []arrival
	for i := 0; i < 200; i++ {
		at := float64(i) * 0.025 // hours
		stream = append(stream, arrival{
			at: at,
			task: fairtask.OnlineTask{
				ID:     i,
				Loc:    fairtask.Pt(rng.Float64()*6-3, rng.Float64()*6-3),
				Expiry: at + 0.75,
				Reward: 1,
			},
		})
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tassigned\trejected\trate spread (P_dif)\tavg rate")
	for _, policy := range []fairtask.OnlinePolicy{fairtask.OnlineGreedy, fairtask.OnlineFairFirst} {
		m, err := fairtask.NewOnlineMatcher(inst, policy)
		if err != nil {
			return err
		}
		for _, a := range stream {
			m.Offer(a.at, a.task)
		}
		rep := m.Report()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.3f\n",
			rep.Policy, rep.Assigned, rep.Rejected, rep.RateDifference, rep.RateAverage)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out, "\nfair-first trades a little throughput for a much tighter")
	fmt.Fprintln(out, "earnings-rate spread across couriers.")
	return nil
}
