package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example: both online policies must replay the
// request stream and report their throughput/fairness rows.
func TestRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"policy", "greedy", "fair-first"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
