// Mixed fleet: heterogeneous worker speeds and priority-aware fairness.
//
// A depot serves twelve drop points with a fleet of bikes (12 km/h) and
// vans (30 km/h). Two extensions beyond the paper's core model are
// exercised: per-worker speed overrides (vans cover the same legs in less
// time, so they see more feasible delivery point sets) and the
// priority-aware inequity-aversion utility (senior couriers with priority 2
// are entitled to proportionally higher payoffs before counting as
// advantaged).
//
// Run with: go run ./examples/mixedfleet
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"fairtask"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer) error {
	travel, err := fairtask.NewTravelModel(fairtask.Euclidean{}, 12) // fleet default: bikes
	if err != nil {
		return err
	}
	inst := &fairtask.Instance{
		Center: fairtask.Pt(0, 0),
		Travel: travel,
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 12; i++ {
		dp := fairtask.DeliveryPoint{
			ID:  i,
			Loc: fairtask.Pt(rng.Float64()*8-4, rng.Float64()*8-4),
		}
		orders := 2 + rng.Intn(4)
		for o := 0; o < orders; o++ {
			dp.Tasks = append(dp.Tasks, fairtask.Task{
				ID: i*10 + o, Point: i, Expiry: 0.6 + rng.Float64(), Reward: 1,
			})
		}
		inst.Points = append(inst.Points, dp)
	}

	type courier struct {
		name     string
		vehicle  string
		speed    float64 // 0 = fleet default
		priority float64
	}
	fleet := []courier{
		{"Ana", "bike", 0, 1},
		{"Bo", "bike", 0, 1},
		{"Cleo", "van", 30, 1},
		{"Dee", "van", 30, 2}, // senior: entitled to 2x payoff
		{"Eli", "bike", 0, 2}, // senior on a bike
	}
	for i, c := range fleet {
		inst.Workers = append(inst.Workers, fairtask.Worker{
			ID:       i,
			Loc:      fairtask.Pt(rng.Float64()*4-2, rng.Float64()*4-2),
			MaxDP:    3,
			Speed:    c.speed,
			Priority: c.priority,
		})
	}
	if err := inst.Validate(); err != nil {
		return err
	}

	res, err := fairtask.Solve(inst, fairtask.Options{
		Algorithm:     fairtask.AlgFGT,
		Seed:          2,
		UsePriorities: true,
	})
	if err != nil {
		return err
	}
	if err := res.Assignment.Validate(inst); err != nil {
		return fmt.Errorf("assignment invalid: %w", err)
	}

	fmt.Fprintln(out, "Mixed-fleet assignment (FGT with priority-aware IAU):")
	fmt.Fprintln(out)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "courier\tvehicle\tpriority\tstops\tpayoff\tpayoff/priority")
	for w, c := range fleet {
		route := res.Assignment.Routes[w]
		p := res.Summary.Payoffs[w]
		fmt.Fprintf(tw, "%s\t%s\t%g\t%d\t%.2f\t%.2f\n",
			c.name, c.vehicle, c.priority, len(route), p, p/c.priority)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "raw payoff difference:  %.3f\n", res.Summary.Difference)
	norm := make([]float64, len(fleet))
	for w, c := range fleet {
		norm[w] = res.Summary.Payoffs[w] / c.priority
	}
	fmt.Fprintf(out, "priority-normalized:    %.3f  (what the utility equalizes)\n",
		fairtask.PayoffDifference(norm))
	return nil
}
