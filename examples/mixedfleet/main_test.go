package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRun smoke-tests the example: the mixed fleet must solve under the
// priority-aware utility and print both the raw and normalized spreads.
func TestRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Mixed-fleet assignment", "raw payoff difference", "priority-normalized"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
