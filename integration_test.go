package fairtask_test

import (
	"bytes"
	"math"
	"testing"

	"fairtask"
)

// TestEndToEndPipeline exercises the full user journey: generate a
// multi-center dataset, persist and reload it, solve it with every
// algorithm, export the routes, and run a platform simulation — asserting
// cross-cutting invariants at each step.
func TestEndToEndPipeline(t *testing.T) {
	prob, err := fairtask.GenerateSYN(fairtask.SYNConfig{
		Seed: 77, Centers: 3, Tasks: 240, Workers: 18, DeliveryPoints: 45,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Persist and reload; the reloaded problem must behave identically.
	var buf bytes.Buffer
	if err := fairtask.WriteCSV(&buf, prob); err != nil {
		t.Fatal(err)
	}
	reloaded, err := fairtask.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		diff, avg float64
	}
	results := map[fairtask.Algorithm]outcome{}
	for _, alg := range fairtask.ExtendedAlgorithms() {
		opt := fairtask.Options{
			Algorithm: alg,
			Seed:      9,
			VDPS:      fairtask.VDPSOptions{Epsilon: 2},
		}
		orig, err := fairtask.SolveProblem(prob, opt)
		if err != nil {
			t.Fatalf("%s on original: %v", alg, err)
		}
		again, err := fairtask.SolveProblem(reloaded, opt)
		if err != nil {
			t.Fatalf("%s on reloaded: %v", alg, err)
		}
		if math.Abs(orig.Difference-again.Difference) > 1e-9 ||
			math.Abs(orig.Average-again.Average) > 1e-9 {
			t.Errorf("%s: reloaded problem solved differently (%g/%g vs %g/%g)",
				alg, orig.Difference, orig.Average, again.Difference, again.Average)
		}
		for i, r := range orig.PerCenter {
			if err := r.Assignment.Validate(&prob.Instances[i]); err != nil {
				t.Errorf("%s center %d invalid: %v", alg, i, err)
			}
		}
		results[alg] = outcome{orig.Difference, orig.Average}

		// Route export must succeed for every algorithm's output.
		assignments := make([]*fairtask.Assignment, len(orig.PerCenter))
		for i, r := range orig.PerCenter {
			assignments[i] = r.Assignment
		}
		var routes bytes.Buffer
		if err := fairtask.WriteAssignmentCSV(&routes, prob, assignments); err != nil {
			t.Errorf("%s: route export failed: %v", alg, err)
		}
	}

	// Paper ordering: IEGT fairest, then FGT, both below the baselines.
	if !(results[fairtask.AlgIEGT].diff < results[fairtask.AlgGTA].diff) {
		t.Errorf("IEGT P_dif %.3f not below GTA %.3f",
			results[fairtask.AlgIEGT].diff, results[fairtask.AlgGTA].diff)
	}
	if !(results[fairtask.AlgFGT].diff < results[fairtask.AlgMPTA].diff) {
		t.Errorf("FGT P_dif %.3f not below MPTA %.3f",
			results[fairtask.AlgFGT].diff, results[fairtask.AlgMPTA].diff)
	}
	if results[fairtask.AlgMPTA].avg < results[fairtask.AlgIEGT].avg-1e-9 {
		t.Errorf("MPTA average %.3f below IEGT %.3f",
			results[fairtask.AlgMPTA].avg, results[fairtask.AlgIEGT].avg)
	}

	// Simulation over the same problem with arrivals.
	solver, err := fairtask.NewAssigner(fairtask.Options{
		Algorithm: fairtask.AlgFGT, Seed: 9,
		VDPS: fairtask.VDPSOptions{Epsilon: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fairtask.Simulate(prob, fairtask.SimConfig{
		Epochs:      3,
		EpochLength: 0.75,
		Solver:      solver,
		VDPS:        fairtask.VDPSOptions{Epsilon: 2},
		TaskSource:  fairtask.NewPoissonArrivals(fairtask.ArrivalConfig{Seed: 5, RatePerPoint: 0.5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CompletedTasks == 0 {
		t.Error("simulation completed nothing")
	}
	if len(rep.Earnings) != prob.WorkerCount() {
		t.Errorf("earnings for %d workers, want %d", len(rep.Earnings), prob.WorkerCount())
	}
}

// TestSeedStability pins the exact metrics of one configuration so
// accidental changes to any algorithm, the generator, or the travel model
// are caught. Update deliberately when semantics change.
func TestSeedStability(t *testing.T) {
	in, err := fairtask.GenerateGM(fairtask.GMConfig{
		Seed: 123, Tasks: 100, Workers: 10, DeliveryPoints: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fairtask.Solve(in, fairtask.Options{
		Algorithm: fairtask.AlgIEGT, Seed: 123,
		VDPS: fairtask.VDPSOptions{Epsilon: 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Re-running must give bit-identical results.
	res2, err := fairtask.Solve(in, fairtask.Options{
		Algorithm: fairtask.AlgIEGT, Seed: 123,
		VDPS: fairtask.VDPSOptions{Epsilon: 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Difference != res2.Summary.Difference ||
		res.Summary.Average != res2.Summary.Average ||
		res.Iterations != res2.Iterations {
		t.Error("identical runs diverged")
	}
}

// TestManhattanMetricEndToEnd solves an instance under the L1 metric: the
// whole pipeline (VDPS DP, grid-index superset filtering, games) must
// remain consistent for non-Euclidean travel.
func TestManhattanMetricEndToEnd(t *testing.T) {
	travelModel, err := fairtask.NewTravelModel(fairtask.Manhattan{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	base, err := fairtask.GenerateGM(fairtask.GMConfig{
		Seed: 12, Tasks: 80, Workers: 8, DeliveryPoints: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	base.Travel = travelModel
	for _, alg := range fairtask.Algorithms() {
		res, err := fairtask.Solve(base, fairtask.Options{
			Algorithm: alg, Seed: 5,
			VDPS: fairtask.VDPSOptions{Epsilon: 1.2},
		})
		if err != nil {
			t.Fatalf("%s under Manhattan: %v", alg, err)
		}
		if err := res.Assignment.Validate(base); err != nil {
			t.Errorf("%s under Manhattan: invalid assignment: %v", alg, err)
		}
	}
}

// TestScaleSoak runs a larger SYN problem (scale ~5 of the paper) through
// all four algorithms and validates every invariant. Skipped under -short.
func TestScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	p, err := fairtask.GenerateSYN(fairtask.SYNConfig{
		Seed: 3, Centers: 10, Tasks: 20_000, Workers: 400, DeliveryPoints: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var prevDiff = map[fairtask.Algorithm]float64{}
	for _, alg := range fairtask.Algorithms() {
		res, err := fairtask.SolveProblem(p, fairtask.Options{
			Algorithm: alg, Seed: 7,
			VDPS:           fairtask.VDPSOptions{Epsilon: 2},
			MPTANodeBudget: 100_000,
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		for i, r := range res.PerCenter {
			if err := r.Assignment.Validate(&p.Instances[i]); err != nil {
				t.Fatalf("%s center %d invalid: %v", alg, i, err)
			}
		}
		prevDiff[alg] = res.Difference
	}
	if !(prevDiff[fairtask.AlgIEGT] < prevDiff[fairtask.AlgGTA]) {
		t.Errorf("soak: IEGT P_dif %.3f not below GTA %.3f",
			prevDiff[fairtask.AlgIEGT], prevDiff[fairtask.AlgGTA])
	}
}
