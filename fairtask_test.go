package fairtask_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"fairtask"
)

func gmInstance(t *testing.T) *fairtask.Instance {
	t.Helper()
	in, err := fairtask.GenerateGM(fairtask.GMConfig{
		Seed: 1, Tasks: 80, Workers: 8, DeliveryPoints: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSolveAllAlgorithms(t *testing.T) {
	in := gmInstance(t)
	for _, alg := range fairtask.Algorithms() {
		res, err := fairtask.Solve(in, fairtask.Options{Algorithm: alg, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if err := res.Assignment.Validate(in); err != nil {
			t.Errorf("%s: invalid assignment: %v", alg, err)
		}
		if res.Summary.Difference < 0 {
			t.Errorf("%s: negative payoff difference", alg)
		}
	}
}

func TestSolveDefaultsToFGT(t *testing.T) {
	in := gmInstance(t)
	res, err := fairtask.Solve(in, fairtask.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("default FGT should converge on a small instance")
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	in := gmInstance(t)
	if _, err := fairtask.Solve(in, fairtask.Options{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestNewAssignerNames(t *testing.T) {
	for _, alg := range fairtask.Algorithms() {
		a, err := fairtask.NewAssigner(fairtask.Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != string(alg) {
			t.Errorf("Name = %q, want %q", a.Name(), alg)
		}
	}
}

// The headline claim of the paper: the game-theoretic methods achieve lower
// payoff difference than the fairness-oblivious baselines, and MPTA attains
// the highest average payoff. Verified here on a mid-size GM instance.
func TestFairnessOrdering(t *testing.T) {
	in, err := fairtask.GenerateGM(fairtask.GMConfig{
		Seed: 7, Tasks: 150, Workers: 12, DeliveryPoints: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(alg fairtask.Algorithm) fairtask.Summary {
		res, err := fairtask.Solve(in, fairtask.Options{Algorithm: alg, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		return res.Summary
	}
	mpta := run(fairtask.AlgMPTA)
	gta := run(fairtask.AlgGTA)
	iegt := run(fairtask.AlgIEGT)

	if iegt.Difference >= mpta.Difference {
		t.Errorf("IEGT P_dif %.3f should be below MPTA's %.3f", iegt.Difference, mpta.Difference)
	}
	if iegt.Difference >= gta.Difference {
		t.Errorf("IEGT P_dif %.3f should be below GTA's %.3f", iegt.Difference, gta.Difference)
	}
	if mpta.Average < gta.Average-1e-9 {
		t.Errorf("MPTA average %.3f should be >= GTA average %.3f", mpta.Average, gta.Average)
	}
}

func TestSolveProblem(t *testing.T) {
	p, err := fairtask.GenerateSYN(fairtask.SYNConfig{
		Seed: 2, Centers: 3, Tasks: 90, Workers: 12, DeliveryPoints: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fairtask.SolveProblem(p, fairtask.Options{Algorithm: fairtask.AlgGTA})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Payoffs) != p.WorkerCount() {
		t.Errorf("payoffs = %d, want %d", len(res.Payoffs), p.WorkerCount())
	}
	if math.Abs(res.Difference-fairtask.PayoffDifference(res.Payoffs)) > 1e-12 {
		t.Error("difference helper inconsistent")
	}
	if math.Abs(res.Average-fairtask.AveragePayoff(res.Payoffs)) > 1e-12 {
		t.Error("average helper inconsistent")
	}
}

func TestCSVRoundTripThroughPublicAPI(t *testing.T) {
	p, err := fairtask.GenerateSYN(fairtask.SYNConfig{
		Seed: 4, Centers: 2, Tasks: 20, Workers: 4, DeliveryPoints: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fairtask.WriteCSV(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := fairtask.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.TaskCount() != p.TaskCount() {
		t.Error("round trip lost tasks")
	}
}

func TestSimulateThroughPublicAPI(t *testing.T) {
	p, err := fairtask.GenerateSYN(fairtask.SYNConfig{
		Seed: 5, Centers: 2, Tasks: 60, Workers: 8, DeliveryPoints: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	solver, err := fairtask.NewAssigner(fairtask.Options{Algorithm: fairtask.AlgIEGT, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fairtask.Simulate(p, fairtask.SimConfig{Epochs: 3, Solver: solver})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 3 {
		t.Errorf("epochs = %d", len(rep.Epochs))
	}
}

func TestTravelModelHelper(t *testing.T) {
	m, err := fairtask.NewTravelModel(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Time(fairtask.Pt(0, 0), fairtask.Pt(3, 4)); math.Abs(got-1) > 1e-9 {
		t.Errorf("Time = %g, want 1", got)
	}
	if _, err := fairtask.NewTravelModel(nil, 0); err == nil {
		t.Error("zero speed accepted")
	}
}

func TestDefaultFairness(t *testing.T) {
	p := fairtask.DefaultFairness()
	if p.Alpha != 0.5 || p.Beta != 0.5 {
		t.Errorf("defaults = %+v, want 0.5/0.5", p)
	}
}

func TestSolveWithEpsilonPruning(t *testing.T) {
	in := gmInstance(t)
	pruned, err := fairtask.Solve(in, fairtask.Options{
		Algorithm: fairtask.AlgGTA,
		VDPS:      fairtask.VDPSOptions{Epsilon: 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pruned.Assignment.Validate(in); err != nil {
		t.Errorf("pruned assignment invalid: %v", err)
	}
}

func TestExtendedAlgorithms(t *testing.T) {
	in := gmInstance(t)
	algs := fairtask.ExtendedAlgorithms()
	if len(algs) != 6 || algs[4] != fairtask.AlgMMTA || algs[5] != fairtask.AlgLexifair {
		t.Fatalf("ExtendedAlgorithms = %v", algs)
	}
	res, err := fairtask.Solve(in, fairtask.Options{Algorithm: fairtask.AlgMMTA})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(in); err != nil {
		t.Errorf("MMTA via public API invalid: %v", err)
	}
}

// LEXIFAIR must work through the public facade with the auditor's leximin
// certificate enabled — the end-to-end path the CLI and HTTP layers use.
func TestLexifairPublicSolveWithAudit(t *testing.T) {
	in := gmInstance(t)
	res, err := fairtask.Solve(in, fairtask.Options{
		Algorithm: fairtask.AlgLexifair,
		Audit:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(in); err != nil {
		t.Errorf("LEXIFAIR via public API invalid: %v", err)
	}
	if res.Summary.Assigned == 0 {
		t.Error("LEXIFAIR assigned nothing")
	}
}

func TestFairnessMetricHelpers(t *testing.T) {
	p := []float64{1, 1, 4}
	if fairtask.Gini(p) <= 0 {
		t.Error("Gini of unequal payoffs should be positive")
	}
	if j := fairtask.JainIndex(p); j <= 0 || j > 1 {
		t.Errorf("Jain = %g out of range", j)
	}
	if fairtask.MinPayoff(p) != 1 {
		t.Error("MinPayoff wrong")
	}
}

// MMTA should achieve a minimum payoff at least as high as GTA's — its
// whole purpose.
func TestMMTARaisesMinimum(t *testing.T) {
	in, err := fairtask.GenerateGM(fairtask.GMConfig{
		Seed: 3, Tasks: 120, Workers: 10, DeliveryPoints: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	gta, err := fairtask.Solve(in, fairtask.Options{Algorithm: fairtask.AlgGTA})
	if err != nil {
		t.Fatal(err)
	}
	mmta, err := fairtask.Solve(in, fairtask.Options{Algorithm: fairtask.AlgMMTA})
	if err != nil {
		t.Fatal(err)
	}
	if fairtask.MinPayoff(mmta.Summary.Payoffs) < fairtask.MinPayoff(gta.Summary.Payoffs)-1e-9 {
		t.Errorf("MMTA min %g below GTA min %g",
			fairtask.MinPayoff(mmta.Summary.Payoffs), fairtask.MinPayoff(gta.Summary.Payoffs))
	}
}

func TestSimulateWithPoissonArrivals(t *testing.T) {
	p, err := fairtask.GenerateSYN(fairtask.SYNConfig{
		Seed: 8, Centers: 2, Tasks: 40, Workers: 10, DeliveryPoints: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	solver, err := fairtask.NewAssigner(fairtask.Options{Algorithm: fairtask.AlgGTA})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fairtask.Simulate(p, fairtask.SimConfig{
		Epochs:      4,
		EpochLength: 0.5,
		Solver:      solver,
		TaskSource:  fairtask.NewPoissonArrivals(fairtask.ArrivalConfig{Seed: 2, RatePerPoint: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CompletedTasks == 0 {
		t.Error("no tasks completed despite arrivals")
	}
}

func TestDistributionHelpers(t *testing.T) {
	p := []float64{1, 2, 3, 4}
	if got := fairtask.PayoffQuantile(p, 0.5); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("median = %g", got)
	}
	lz := fairtask.LorenzCurve(p)
	if len(lz) != 5 || lz[4].Share != 1 {
		t.Errorf("Lorenz = %v", lz)
	}
}

func TestSolveSampledUnlimitedMaxDP(t *testing.T) {
	in, err := fairtask.GenerateGM(fairtask.GMConfig{
		Seed: 6, Tasks: 120, Workers: 8, DeliveryPoints: 40, MaxDP: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unlimited maxDP: make every worker cap-free. (GMConfig.MaxDP -1 maps
	// to 0 = unlimited in the generator.)
	for i := range in.Workers {
		in.Workers[i].MaxDP = 0
	}
	res, err := fairtask.SolveSampled(in,
		fairtask.SampleVDPSOptions{Seed: 2, Samples: 4},
		fairtask.Options{Algorithm: fairtask.AlgIEGT, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(in); err != nil {
		t.Errorf("sampled assignment invalid: %v", err)
	}
	if res.Summary.Assigned == 0 {
		t.Error("sampled solve assigned nothing")
	}
	long := false
	for _, r := range res.Assignment.Routes {
		if len(r) > 3 {
			long = true
		}
	}
	if !long {
		t.Log("note: no route longer than 3 points (acceptable but unusual)")
	}
}

func TestEquilibriumVerifiers(t *testing.T) {
	in := gmInstance(t)
	opt := fairtask.Options{Algorithm: fairtask.AlgFGT, Seed: 4}
	fgt, err := fairtask.Solve(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := fairtask.VerifyNashEquilibrium(in, fgt.Assignment, opt); err != nil {
		t.Errorf("FGT result not certified as NE: %v", err)
	}
	iegt, err := fairtask.Solve(in, fairtask.Options{Algorithm: fairtask.AlgIEGT, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := fairtask.VerifyEvolutionaryEquilibrium(in, iegt.Assignment, fairtask.Options{}); err != nil {
		t.Errorf("IEGT result not certified stable: %v", err)
	}
}

func TestPublicWrapperCoverage(t *testing.T) {
	in := gmInstance(t)
	res, err := fairtask.Solve(in, fairtask.Options{Algorithm: fairtask.AlgGTA})
	if err != nil {
		t.Fatal(err)
	}
	// Summarize must agree with the result's own summary.
	sum := fairtask.Summarize(in, res.Assignment)
	if math.Abs(sum.Difference-res.Summary.Difference) > 1e-12 {
		t.Error("Summarize disagrees with solver summary")
	}
	// RushHourProfile peaks above its trough through the public wrapper.
	if fairtask.RushHourProfile(8) <= fairtask.RushHourProfile(2) {
		t.Error("RushHourProfile shape wrong through wrapper")
	}
	// RenderSVG produces a document.
	var buf bytes.Buffer
	if err := fairtask.RenderSVG(&buf, in, res.Assignment, fairtask.RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "<svg") {
		t.Error("RenderSVG output malformed")
	}
	// Online matcher construction through the wrapper.
	m, err := fairtask.NewOnlineMatcher(in, fairtask.OnlineGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Offer(0, fairtask.OnlineTask{ID: 1, Loc: fairtask.Pt(0, 0), Expiry: 100, Reward: 1}); !ok {
		t.Error("online offer rejected on a trivial task")
	}
	// Instance stats through the alias.
	var st fairtask.InstanceStats = in.Stats()
	if st.Points != len(in.Points) {
		t.Error("InstanceStats alias broken")
	}
}

func TestSolveProblemContext(t *testing.T) {
	p, err := fairtask.GenerateSYN(fairtask.SYNConfig{
		Seed: 2, Centers: 2, Tasks: 40, Workers: 8, DeliveryPoints: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fairtask.SolveProblemContext(ctx, p, fairtask.Options{Algorithm: fairtask.AlgGTA}); err == nil {
		t.Error("cancelled context accepted")
	}
	if _, err := fairtask.SolveProblemContext(context.Background(), p,
		fairtask.Options{Algorithm: fairtask.AlgGTA}); err != nil {
		t.Errorf("live context failed: %v", err)
	}
}

// TestStreamFacade exercises the public streaming surface end to end:
// engine construction, a generated delta stream applied through the warm
// paths, continuation mode with its audit certificate, and the replay
// helper reconstructing the instance the engine stands on.
func TestStreamFacade(t *testing.T) {
	in, err := fairtask.GenerateGM(fairtask.GMConfig{
		Seed: 9, Tasks: 40, Workers: 6, DeliveryPoints: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := fairtask.GenerateStreamDeltas(in, fairtask.StreamGenConfig{
		Seed: 9, Duration: 1, RepriceRate: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("empty generated stream")
	}

	reg := fairtask.NewMetricsRegistry()
	opt := fairtask.StreamOptions{Metrics: fairtask.NewStreamMetrics(reg)}
	opt.VDPS.Epsilon = 1.5
	opt.Game.Seed = 9
	eng, err := fairtask.NewStreamEngine(context.Background(), in, opt)
	if err != nil {
		t.Fatal(err)
	}
	replayed := in.Clone()
	for _, d := range ds {
		res, err := eng.Apply(context.Background(), d)
		if err != nil {
			t.Fatalf("seq %d: %v", d.Seq, err)
		}
		if res.Resolve == fairtask.StreamResolveCold {
			t.Fatalf("seq %d fell back to a cold solve", d.Seq)
		}
		if err := fairtask.ReplayStreamDeltas(replayed, d); err != nil {
			t.Fatalf("replay seq %d: %v", d.Seq, err)
		}
	}
	if _, err := eng.Apply(context.Background(), ds[0]); err == nil {
		t.Fatal("stale sequence accepted")
	} else if !errors.Is(err, fairtask.ErrStreamStaleSeq) {
		t.Fatalf("stale sequence error = %v", err)
	}
	snap := eng.Snapshot()
	if snap.Instance.TaskCount() != replayed.TaskCount() {
		t.Fatalf("replay diverged: engine holds %d tasks, replay %d",
			snap.Instance.TaskCount(), replayed.TaskCount())
	}

	// Continuation mode: every non-noop resolve must carry a passing audit.
	copt := fairtask.StreamOptions{Continue: true}
	copt.VDPS.Epsilon = 1.5
	copt.Game.Seed = 9
	ceng, err := fairtask.NewStreamEngine(context.Background(), in, copt)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		res, err := ceng.Apply(context.Background(), d)
		if err != nil {
			t.Fatalf("continuation seq %d: %v", d.Seq, err)
		}
		if res.Resolve != fairtask.StreamResolveContinuation {
			continue
		}
		if res.Audit == nil || len(res.Audit.Violations) > 0 {
			t.Fatalf("continuation seq %d missing passing audit: %+v", d.Seq, res.Audit)
		}
		if res.IterationsSaved < 0 {
			t.Fatalf("continuation seq %d negative IterationsSaved", d.Seq)
		}
	}
}
