package payoff

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/travel"
)

func testInstance() *model.Instance {
	in := &model.Instance{
		Center: geo.Pt(0, 0),
		Travel: travel.MustModel(geo.Euclidean{}, 1),
	}
	for i := 0; i < 3; i++ {
		in.Points = append(in.Points, model.DeliveryPoint{
			ID: i, Loc: geo.Pt(float64(i+1), 0),
			Tasks: []model.Task{{ID: i, Point: i, Expiry: 100, Reward: float64(i + 1)}},
		})
	}
	in.Workers = []model.Worker{
		{ID: 0, Loc: geo.Pt(-1, 0)},
		{ID: 1, Loc: geo.Pt(0, 2), Contribution: 2},
	}
	return in
}

func TestWorkerPayoff(t *testing.T) {
	in := testInstance()
	// Worker 0: approach 1; route {0,1}: legs 1 + 1 -> time 3, reward 1+2=3.
	got := Worker(in, 0, model.Route{0, 1})
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("payoff = %g, want 1", got)
	}
	if Worker(in, 0, nil) != 0 {
		t.Error("empty route should have zero payoff")
	}
}

func TestWeightedWorker(t *testing.T) {
	in := testInstance()
	base := Worker(in, 1, model.Route{0})
	weighted := WeightedWorker(in, 1, model.Route{0})
	if math.Abs(weighted-2*base) > 1e-9 {
		t.Errorf("weighted = %g, want %g", weighted, 2*base)
	}
	if w0 := WeightedWorker(in, 0, model.Route{0}); math.Abs(w0-Worker(in, 0, model.Route{0})) > 1e-9 {
		t.Error("default contribution should not change payoff")
	}
}

func TestOf(t *testing.T) {
	in := testInstance()
	a := model.NewAssignment(2)
	a.Routes[0] = model.Route{0, 1}
	p := Of(in, a)
	if len(p) != 2 {
		t.Fatalf("len = %d", len(p))
	}
	if math.Abs(p[0]-1) > 1e-9 || p[1] != 0 {
		t.Errorf("payoffs = %v", p)
	}
}

func TestDifferenceSmallCases(t *testing.T) {
	if Difference(nil) != 0 || Difference([]float64{5}) != 0 {
		t.Error("degenerate inputs should give 0")
	}
	// Two workers: |a-b|.
	if got := Difference([]float64{1, 3}); math.Abs(got-2) > 1e-9 {
		t.Errorf("Difference = %g, want 2", got)
	}
	// Three workers 0,1,2: ordered-pair sum = 2*(1+2+1) = 8, /6 = 4/3.
	if got := Difference([]float64{0, 1, 2}); math.Abs(got-4.0/3) > 1e-9 {
		t.Errorf("Difference = %g, want 4/3", got)
	}
	if got := Difference([]float64{2, 2, 2}); got != 0 {
		t.Errorf("equal payoffs: Difference = %g, want 0", got)
	}
}

// naiveDifference is the O(n^2) transcription of Equation 2.
func naiveDifference(p []float64) float64 {
	n := len(p)
	if n < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				sum += math.Abs(p[i] - p[j])
			}
		}
	}
	return sum / float64(n*(n-1))
}

// Property: the fast Difference agrees with the naive Equation 2.
func TestDifferenceMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = float64(v) / 16
		}
		return math.Abs(Difference(p)-naiveDifference(p)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Properties of P_dif: non-negative, zero iff all equal, permutation and
// translation invariant, scales linearly.
func TestDifferenceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		p := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64() * 10
		}
		d := Difference(p)
		if d < 0 {
			t.Fatalf("negative difference %g", d)
		}
		// Permutation invariance.
		q := append([]float64(nil), p...)
		rng.Shuffle(n, func(i, j int) { q[i], q[j] = q[j], q[i] })
		if math.Abs(Difference(q)-d) > 1e-9 {
			t.Fatal("difference not permutation invariant")
		}
		// Translation invariance.
		for i := range q {
			q[i] = p[i] + 5
		}
		if math.Abs(Difference(q)-d) > 1e-9 {
			t.Fatal("difference not translation invariant")
		}
		// Scaling.
		for i := range q {
			q[i] = p[i] * 3
		}
		if math.Abs(Difference(q)-3*d) > 1e-9 {
			t.Fatal("difference does not scale linearly")
		}
	}
}

func TestAverage(t *testing.T) {
	if Average(nil) != 0 {
		t.Error("Average(nil) != 0")
	}
	if got := Average([]float64{1, 2, 3}); math.Abs(got-2) > 1e-9 {
		t.Errorf("Average = %g, want 2", got)
	}
}

func TestSummarize(t *testing.T) {
	in := testInstance()
	a := model.NewAssignment(2)
	a.Routes[0] = model.Route{0, 1} // payoff 1
	a.Routes[1] = model.Route{2}    // approach 2, leg 3 -> time 5, reward 3 -> 0.6
	s := Summarize(in, a)
	if s.Assigned != 2 {
		t.Errorf("Assigned = %d", s.Assigned)
	}
	if math.Abs(s.Average-0.8) > 1e-9 {
		t.Errorf("Average = %g, want 0.8", s.Average)
	}
	if math.Abs(s.Difference-0.4) > 1e-9 {
		t.Errorf("Difference = %g, want 0.4", s.Difference)
	}
	if math.Abs(s.Min-0.6) > 1e-9 || math.Abs(s.Max-1) > 1e-9 {
		t.Errorf("Min/Max = %g/%g", s.Min, s.Max)
	}
	if math.Abs(s.Total-1.6) > 1e-9 {
		t.Errorf("Total = %g", s.Total)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	in := testInstance()
	in.Workers = nil
	s := Summarize(in, model.NewAssignment(0))
	if s.Difference != 0 || s.Average != 0 || s.Assigned != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestGini(t *testing.T) {
	if Gini(nil) != 0 || Gini([]float64{5}) != 0 {
		t.Error("degenerate Gini should be 0")
	}
	if got := Gini([]float64{2, 2, 2}); got != 0 {
		t.Errorf("equal payoffs Gini = %g, want 0", got)
	}
	// {0,0,0,4}: mean = 1; mean absolute pairwise difference = 24/12 = 2;
	// Gini = 2/(2*1) = 1 under the uncorrected mean-absolute-difference
	// definition this package uses. Pin the value.
	if got := Gini([]float64{0, 0, 0, 4}); math.Abs(got-1) > 1e-9 {
		t.Errorf("Gini = %g, want 1 (pinned definition)", got)
	}
	// Monotone: more unequal distributions have higher Gini.
	if Gini([]float64{1, 3}) <= Gini([]float64{1.5, 2.5}) {
		t.Error("Gini not monotone in spread")
	}
	if Gini([]float64{0, 0}) != 0 {
		t.Error("all-zero Gini should be 0")
	}
}

func TestJainIndex(t *testing.T) {
	if JainIndex(nil) != 1 || JainIndex([]float64{0, 0}) != 1 {
		t.Error("degenerate Jain should be 1")
	}
	if got := JainIndex([]float64{3, 3, 3}); math.Abs(got-1) > 1e-9 {
		t.Errorf("equal payoffs Jain = %g, want 1", got)
	}
	// Single earner among n: 1/n.
	if got := JainIndex([]float64{4, 0, 0, 0}); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("Jain = %g, want 0.25", got)
	}
}

// Property: Jain's index lies in [1/n, 1] for non-negative non-zero input.
func TestJainBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := make([]float64, len(raw))
		nonzero := false
		for i, v := range raw {
			p[i] = float64(v)
			if v != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			return true
		}
		j := JainIndex(p)
		n := float64(len(p))
		return j >= 1/n-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinPayoff(t *testing.T) {
	if MinPayoff(nil) != 0 {
		t.Error("empty MinPayoff should be 0")
	}
	if got := MinPayoff([]float64{3, 1, 2}); got != 1 {
		t.Errorf("MinPayoff = %g", got)
	}
}
