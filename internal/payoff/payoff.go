// Package payoff computes worker payoffs (Definition 7) and assignment-level
// metrics: the payoff difference P_dif (Equation 2, the paper's unfairness
// measure) and the average worker payoff.
package payoff

import (
	"math"
	"sort"

	"fairtask/internal/model"
)

// Worker returns worker w's payoff for the route r (Definition 7): the total
// task reward of the route's delivery points divided by the worker's total
// travel time. An empty route yields a zero payoff.
func Worker(in *model.Instance, w int, r model.Route) float64 {
	if len(r) == 0 {
		return 0
	}
	t := in.RouteTime(w, r)
	if t <= 0 {
		return 0
	}
	return in.RouteReward(r) / t
}

// WeightedWorker is the contribution-weighted payoff extension (paper §VIII,
// "workers with different contributions to tasks"): the route reward is
// scaled by the worker's contribution factor before dividing by travel time.
func WeightedWorker(in *model.Instance, w int, r model.Route) float64 {
	return Worker(in, w, r) * in.Workers[w].EffectiveContribution()
}

// Of returns the per-worker payoffs of an assignment, indexed like
// in.Workers.
func Of(in *model.Instance, a *model.Assignment) []float64 {
	out := make([]float64, len(a.Routes))
	for w, r := range a.Routes {
		out[w] = Worker(in, w, r)
	}
	return out
}

// Difference returns P_dif (Equation 2): the mean absolute payoff difference
// over all ordered worker pairs,
//
//	P_dif = sum_{i != j} |P(w_i) - P(w_j)| / (|W| (|W|-1)).
//
// It returns 0 for fewer than two workers. The computation sorts a copy of
// the payoffs and uses prefix sums, so it runs in O(n log n) rather than the
// naive O(n^2).
func Difference(payoffs []float64) float64 {
	return DifferenceBuf(payoffs, nil)
}

// DifferenceBuf is Difference with a caller-provided scratch buffer for the
// sorted copy, for per-iteration callers (the solver trace bookkeeping) that
// would otherwise allocate every round. buf is grown when too small; the
// result is bit-identical to Difference.
func DifferenceBuf(payoffs, buf []float64) float64 {
	n := len(payoffs)
	if n < 2 {
		return 0
	}
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	sorted := buf[:n]
	copy(sorted, payoffs)
	sort.Float64s(sorted)
	// sum over unordered pairs i<j of (p_j - p_i); each ordered pair counts
	// the same absolute difference, so the ordered-pair sum is twice this.
	var pairSum, prefix float64
	for i, p := range sorted {
		pairSum += p*float64(i) - prefix
		prefix += p
	}
	return 2 * pairSum / float64(n*(n-1))
}

// Average returns the mean payoff, or 0 for an empty slice.
func Average(payoffs []float64) float64 {
	if len(payoffs) == 0 {
		return 0
	}
	var sum float64
	for _, p := range payoffs {
		sum += p
	}
	return sum / float64(len(payoffs))
}

// Summary aggregates the paper's evaluation metrics for one assignment.
type Summary struct {
	// Payoffs holds the per-worker payoffs.
	Payoffs []float64
	// Difference is P_dif (Equation 2), the unfairness measure.
	Difference float64
	// Average is the mean worker payoff.
	Average float64
	// Min and Max are the extreme payoffs.
	Min, Max float64
	// Total is the summed payoff.
	Total float64
	// Assigned is the number of workers with non-empty routes.
	Assigned int
}

// Summarize computes a Summary for the assignment.
func Summarize(in *model.Instance, a *model.Assignment) Summary {
	p := Of(in, a)
	s := Summary{
		Payoffs:    p,
		Difference: Difference(p),
		Average:    Average(p),
		Assigned:   a.AssignedWorkers(),
	}
	if len(p) == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, v := range p {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		s.Total += v
	}
	return s
}

// Gini returns the Gini coefficient of the payoffs: 0 for perfect equality,
// approaching 1 as one worker takes everything. It is an alternative
// descriptive fairness measure (the paper's future work asks for additional
// models of fairness). Defined as the mean absolute difference divided by
// twice the mean; 0 when the mean is 0 or fewer than two workers.
func Gini(payoffs []float64) float64 {
	if len(payoffs) < 2 {
		return 0
	}
	mean := Average(payoffs)
	if mean <= 0 {
		return 0
	}
	return Difference(payoffs) / (2 * mean)
}

// JainIndex returns Jain's fairness index (sum p)^2 / (n * sum p^2): 1 for
// perfect equality, 1/n when a single worker takes everything. Returns 1
// for empty input or all-zero payoffs (vacuously fair).
func JainIndex(payoffs []float64) float64 {
	n := len(payoffs)
	if n == 0 {
		return 1
	}
	var sum, sq float64
	for _, p := range payoffs {
		sum += p
		sq += p * p
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sq)
}

// MinPayoff returns the smallest payoff, or 0 for empty input. It is the
// objective of max-min fair assignment (Ye et al., discussed in the paper's
// related work).
func MinPayoff(payoffs []float64) float64 {
	if len(payoffs) == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, p := range payoffs {
		if p < min {
			min = p
		}
	}
	return min
}
