package payoff

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantile(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	p := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3, 2}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(p, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// Input unmodified.
	if p[0] != 4 {
		t.Error("Quantile modified input")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotone(t *testing.T) {
	f := func(raw []uint8, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = float64(v)
		}
		q1 := float64(qa%101) / 100
		q2 := float64(qb%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(p, q1), Quantile(p, q2)
		return v1 <= v2+1e-9 &&
			v1 >= MinPayoff(p)-1e-9 && v2 <= Quantile(p, 1)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLorenzBasics(t *testing.T) {
	// Empty input: the diagonal.
	lz := Lorenz(nil)
	if len(lz) != 2 || lz[1] != (LorenzPoint{1, 1}) {
		t.Errorf("empty Lorenz = %v", lz)
	}
	// Perfect equality: the curve is the diagonal.
	lz = Lorenz([]float64{2, 2, 2, 2})
	for _, pt := range lz {
		if math.Abs(pt.Share-pt.Population) > 1e-9 {
			t.Errorf("equality Lorenz deviates from diagonal at %+v", pt)
		}
	}
	// Extreme inequality: the poorest 3 of 4 hold nothing.
	lz = Lorenz([]float64{0, 0, 0, 8})
	if lz[3].Share != 0 {
		t.Errorf("poorest-3 share = %g, want 0", lz[3].Share)
	}
	if lz[4].Share != 1 {
		t.Errorf("full share = %g, want 1", lz[4].Share)
	}
	// All-zero payoffs: diagonal by convention.
	lz = Lorenz([]float64{0, 0})
	if math.Abs(lz[1].Share-0.5) > 1e-9 {
		t.Errorf("all-zero Lorenz = %v", lz)
	}
}

// Properties: the Lorenz curve starts at (0,0), ends at (1,1), is
// non-decreasing, and never rises above the diagonal.
func TestLorenzShape(t *testing.T) {
	f := func(raw []uint8) bool {
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = float64(v)
		}
		lz := Lorenz(p)
		if lz[0] != (LorenzPoint{0, 0}) {
			return false
		}
		last := lz[len(lz)-1]
		if math.Abs(last.Population-1) > 1e-9 || math.Abs(last.Share-1) > 1e-9 {
			return false
		}
		for i := 1; i < len(lz); i++ {
			if lz[i].Share < lz[i-1].Share-1e-9 {
				return false
			}
			if lz[i].Share > lz[i].Population+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Cross-check: the Gini coefficient of this package approximates the area
// interpretation 1 - 2*AUC(Lorenz) up to the small-sample correction.
func TestGiniLorenzConsistency(t *testing.T) {
	p := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	lz := Lorenz(p)
	var auc float64
	for i := 1; i < len(lz); i++ {
		auc += (lz[i].Share + lz[i-1].Share) / 2 * (lz[i].Population - lz[i-1].Population)
	}
	areaGini := 1 - 2*auc
	// The mean-absolute-difference Gini equals the area Gini times n/(n-1).
	n := float64(len(p))
	if got := Gini(p); math.Abs(got-areaGini*n/(n-1)) > 1e-9 {
		t.Errorf("Gini = %g, area-based = %g (corrected %g)",
			got, areaGini, areaGini*n/(n-1))
	}
}
