package payoff

import (
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 <= q <= 1) of the payoffs using linear
// interpolation between order statistics. It returns 0 for empty input and
// clamps q into [0, 1].
func Quantile(payoffs []float64, q float64) float64 {
	n := len(payoffs)
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), payoffs...)
	sort.Float64s(sorted)
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LorenzPoint is one point of a Lorenz curve: the poorest Population share
// of workers holds the Share fraction of total payoff.
type LorenzPoint struct {
	Population float64
	Share      float64
}

// Lorenz returns the Lorenz curve of the payoffs: len(payoffs)+1 points
// from (0,0) to (1,1), with the i-th point giving the payoff share of the
// poorest i workers. For all-zero or empty input it returns the diagonal
// (perfect equality), matching the Gini convention in this package.
func Lorenz(payoffs []float64) []LorenzPoint {
	n := len(payoffs)
	if n == 0 {
		return []LorenzPoint{{0, 0}, {1, 1}}
	}
	sorted := append([]float64(nil), payoffs...)
	sort.Float64s(sorted)
	total := Sum(sorted)
	out := make([]LorenzPoint, n+1)
	var cum float64
	for i, p := range sorted {
		cum += p
		share := float64(i+1) / float64(n)
		if total > 0 {
			out[i+1] = LorenzPoint{Population: share, Share: cum / total}
		} else {
			out[i+1] = LorenzPoint{Population: share, Share: share}
		}
	}
	return out
}

// Sum returns the total of the payoffs.
func Sum(payoffs []float64) float64 {
	var s float64
	for _, p := range payoffs {
		s += p
	}
	return s
}
