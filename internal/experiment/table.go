package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"
)

// WriteTables renders the series as three pivot tables — payoff difference,
// average payoff and CPU seconds — with one row per x value and one column
// per algorithm, mirroring how the paper's figures present the comparison.
func (s *Series) WriteTables(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n", s.Figure, s.Title); err != nil {
		return err
	}
	metrics := []struct {
		name string
		get  func(Point) float64
	}{
		{"payoff difference (P_dif)", func(p Point) float64 { return p.PayoffDiff }},
		{"average payoff", func(p Point) float64 { return p.AvgPayoff }},
		{"minimum payoff", func(p Point) float64 { return p.MinPayoff }},
		{"CPU time (s)", func(p Point) float64 { return p.CPUSeconds }},
	}
	for _, m := range metrics {
		if err := s.writePivot(w, m.name, m.get); err != nil {
			return err
		}
	}
	return nil
}

// algorithmsInOrder returns the distinct algorithm names in first-seen
// order, which the runners emit in the paper's MPTA, GTA, FGT, IEGT order.
func (s *Series) algorithmsInOrder() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range s.Points {
		if !seen[p.Algorithm] {
			seen[p.Algorithm] = true
			out = append(out, p.Algorithm)
		}
	}
	return out
}

// xValues returns the distinct x values in ascending order.
func (s *Series) xValues() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, p := range s.Points {
		if !seen[p.X] {
			seen[p.X] = true
			out = append(out, p.X)
		}
	}
	sort.Float64s(out)
	return out
}

// Lookup returns the point for (x, algorithm), or ok == false.
func (s *Series) Lookup(x float64, algorithm string) (Point, bool) {
	for _, p := range s.Points {
		if p.X == x && p.Algorithm == algorithm {
			return p, true
		}
	}
	return Point{}, false
}

func (s *Series) writePivot(w io.Writer, title string, get func(Point) float64) error {
	if _, err := fmt.Fprintf(w, "\n-- %s --\n", title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	algs := s.algorithmsInOrder()

	fmt.Fprintf(tw, "%s", s.XLabel)
	for _, a := range algs {
		fmt.Fprintf(tw, "\t%s", a)
	}
	fmt.Fprintln(tw)

	for _, x := range s.xValues() {
		fmt.Fprintf(tw, "%g", x)
		for _, a := range algs {
			if p, ok := s.Lookup(x, a); ok {
				fmt.Fprintf(tw, "\t%.4f", get(p))
			} else {
				fmt.Fprintf(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteCSV emits the series as a flat CSV (one row per measurement) for
// external plotting tools:
//
//	figure,x,algorithm,payoff_diff,avg_payoff,min_payoff,cpu_seconds,iterations
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{
		"figure", "x", "algorithm", "payoff_diff", "avg_payoff", "min_payoff", "cpu_seconds", "iterations",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, p := range s.Points {
		rec := []string{
			s.Figure, f(p.X), p.Algorithm,
			f(p.PayoffDiff), f(p.AvgPayoff), f(p.MinPayoff), f(p.CPUSeconds),
			strconv.Itoa(p.Iterations),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
