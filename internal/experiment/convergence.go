package experiment

import (
	"context"
	"fairtask/internal/dataset"
	"fairtask/internal/evo"
	"fairtask/internal/game"
	"fairtask/internal/vdps"
)

func init() {
	registry["fig12"] = fig12Convergence
}

// fig12Convergence reproduces Figure 12: the payoff difference (and the
// number of strategy changes) per iteration for FGT and IEGT on the default
// GM workload, showing both algorithms converging to an equilibrium. The
// series' X is the iteration index; PayoffDiff/AvgPayoff are the metrics
// after that round; Iterations carries the per-round change count.
func fig12Convergence(cfg Config) (*Series, error) {
	s := &Series{Figure: "fig12", Title: "Convergence of FGT and IEGT", XLabel: "iteration"}

	in, err := dataset.GenerateGM(cfg.gmConfig())
	if err != nil {
		return nil, err
	}
	g, err := vdps.Generate(in, vdps.Options{Epsilon: DefaultEpsilonGM})
	if err != nil {
		return nil, err
	}

	fgt, err := game.FGT(context.Background(), g, game.Options{Seed: cfg.Seed, Trace: true})
	if err != nil {
		return nil, err
	}
	for _, it := range fgt.Trace {
		s.Points = append(s.Points, Point{
			X:          float64(it.Iteration),
			Algorithm:  "FGT",
			PayoffDiff: it.PayoffDiff,
			AvgPayoff:  it.AvgPayoff,
			Iterations: it.Changes,
		})
	}

	iegt, err := evo.IEGT(context.Background(), g, evo.Options{Seed: cfg.Seed, Trace: true})
	if err != nil {
		return nil, err
	}
	for _, it := range iegt.Trace {
		s.Points = append(s.Points, Point{
			X:          float64(it.Iteration),
			Algorithm:  "IEGT",
			PayoffDiff: it.PayoffDiff,
			AvgPayoff:  it.AvgPayoff,
			Iterations: it.Changes,
		})
	}
	return s, nil
}
