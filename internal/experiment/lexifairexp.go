package experiment

import (
	"fmt"

	"fairtask/internal/assign"
	"fairtask/internal/dataset"
	"fairtask/internal/vdps"
)

func init() {
	registry["lexifair"] = lexifairCompare
}

// lexifairCompare contrasts the leximin LEXIFAIR assigner with the paper's
// equilibrium algorithms (FGT, IEGT) and the max-min heuristic MMTA on
// small GM workloads where the exact lexicographic solve is cheap. The
// series reports, per instance seed, P_dif, the average payoff, the minimum
// payoff (the objective LEXIFAIR optimizes first) and the solve time —
// the egalitarian-vs-inequity-aversion trade-off discussed in
// docs/ASSIGNERS.md.
func lexifairCompare(cfg Config) (*Series, error) {
	s := &Series{
		Figure: "lexifair",
		Title:  "Leximin LEXIFAIR vs equilibrium and max-min baselines",
		XLabel: "instance seed",
	}
	for seed := int64(0); seed < 5; seed++ {
		in, err := dataset.GenerateGM(dataset.GMConfig{
			Seed:           cfg.Seed + seed,
			Tasks:          40,
			Workers:        4,
			DeliveryPoints: 8,
		})
		if err != nil {
			return nil, err
		}
		algs := []assign.Assigner{
			fgtRunner{seed: cfg.Seed},
			iegtRunner{seed: cfg.Seed},
			assign.MMTA{},
			assign.Lexifair{},
		}
		vopt := vdps.Options{Epsilon: DefaultEpsilonGM, MaxSize: 2}
		for _, alg := range algs {
			pt, err := measureProblem(asProblem(in), alg, vopt, cfg.Parallelism)
			if err != nil {
				return nil, fmt.Errorf("lexifair seed %d: %w", seed, err)
			}
			pt.X = float64(seed)
			s.Points = append(s.Points, pt)
		}
	}
	return s, nil
}
