package experiment

import (
	"context"
	"fmt"
	"time"

	"fairtask/internal/assign"
	"fairtask/internal/dataset"
	"fairtask/internal/evo"
	"fairtask/internal/game"
	"fairtask/internal/vdps"
)

// Ablation runners quantify the design choices called out in DESIGN.md:
// the ε pruning itself is covered by fig2/fig3; these cover the spatial
// index inside VDPS generation, the MPTA conflict-graph decomposition, FGT
// early termination and update order, and IEGT mutation.
func init() {
	registry["ablation-index"] = ablationIndex
	registry["ablation-decomposition"] = ablationDecomposition
	registry["ablation-earlyterm"] = ablationEarlyTerm
	registry["ablation-order"] = ablationOrder
	registry["ablation-mutation"] = ablationMutation
}

// ablationIndex measures VDPS generation time with the grid index against
// the full scan at growing |DP| (GM geometry, default ε).
func ablationIndex(cfg Config) (*Series, error) {
	s := &Series{
		Figure: "ablation-index",
		Title:  "VDPS generation: grid index vs full scan",
		XLabel: "|DP| (scaled)",
	}
	for _, dp := range []int{20, 40, 60, 80, 100} {
		c := cfg.gmConfig()
		c.DeliveryPoints = cfg.gmScaled(dp)
		in, err := dataset.GenerateGM(c)
		if err != nil {
			return nil, err
		}
		for _, variant := range []struct {
			name    string
			disable bool
		}{{"indexed", false}, {"scan", true}} {
			start := time.Now()
			g, err := vdps.Generate(in, vdps.Options{
				Epsilon:      DefaultEpsilonGM,
				DisableIndex: variant.disable,
			})
			if err != nil {
				return nil, fmt.Errorf("ablation-index at %d: %w", dp, err)
			}
			s.Points = append(s.Points, Point{
				X:          float64(cfg.gmScaled(dp)),
				Algorithm:  variant.name,
				CPUSeconds: time.Since(start).Seconds(),
				AvgPayoff:  float64(len(g.Candidates())), // candidate count, for equality checks
			})
		}
	}
	return s, nil
}

// ablationDecomposition compares MPTA with and without conflict-graph
// decomposition on the SYN workload.
func ablationDecomposition(cfg Config) (*Series, error) {
	s := &Series{
		Figure: "ablation-decomposition",
		Title:  "MPTA: conflict-graph decomposition vs monolithic search",
		XLabel: "|W| (scaled)",
	}
	for _, w := range []int{1000, 2000, 3000} {
		c := cfg.synConfig()
		c.Workers = cfg.scaled(w)
		p, err := dataset.GenerateSYN(c)
		if err != nil {
			return nil, err
		}
		for _, variant := range []struct {
			name    string
			disable bool
		}{{"decomposed", false}, {"monolithic", true}} {
			alg := assign.MPTA{
				NodeBudget:           cfg.MPTANodeBudget,
				DisableDecomposition: variant.disable,
			}
			pt, err := measureProblem(p, alg, vdps.Options{Epsilon: DefaultEpsilonSYN}, cfg.Parallelism)
			if err != nil {
				return nil, fmt.Errorf("ablation-decomposition at %d: %w", w, err)
			}
			pt.X = float64(cfg.scaled(w))
			pt.Algorithm = variant.name
			s.Points = append(s.Points, pt)
		}
	}
	return s, nil
}

// ablationEarlyTerm compares default FGT against the early-termination
// variant (utility-gain threshold), the paper's future-work optimization.
func ablationEarlyTerm(cfg Config) (*Series, error) {
	s := &Series{
		Figure: "ablation-earlyterm",
		Title:  "FGT: exact best response vs early termination",
		XLabel: "utility threshold",
	}
	in, err := dataset.GenerateGM(cfg.gmConfig())
	if err != nil {
		return nil, err
	}
	g, err := vdps.Generate(in, vdps.Options{Epsilon: DefaultEpsilonGM})
	if err != nil {
		return nil, err
	}
	for _, th := range []float64{0, 0.001, 0.01, 0.1} {
		start := time.Now()
		res, err := game.FGT(context.Background(), g, game.Options{Seed: cfg.Seed, EpsilonUtility: th})
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{
			X:          th,
			Algorithm:  "FGT",
			PayoffDiff: res.Summary.Difference,
			AvgPayoff:  res.Summary.Average,
			CPUSeconds: time.Since(start).Seconds(),
			Iterations: res.Iterations,
		})
	}
	return s, nil
}

// ablationOrder compares FGT's sequential round-robin updates against
// random per-round orders.
func ablationOrder(cfg Config) (*Series, error) {
	s := &Series{
		Figure: "ablation-order",
		Title:  "FGT: round-robin vs random update order",
		XLabel: "seed",
	}
	in, err := dataset.GenerateGM(cfg.gmConfig())
	if err != nil {
		return nil, err
	}
	g, err := vdps.Generate(in, vdps.Options{Epsilon: DefaultEpsilonGM})
	if err != nil {
		return nil, err
	}
	for seed := int64(0); seed < 3; seed++ {
		for _, variant := range []struct {
			name   string
			random bool
		}{{"roundrobin", false}, {"random", true}} {
			start := time.Now()
			res, err := game.FGT(context.Background(), g, game.Options{Seed: seed, RandomOrder: variant.random})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{
				X:          float64(seed),
				Algorithm:  variant.name,
				PayoffDiff: res.Summary.Difference,
				AvgPayoff:  res.Summary.Average,
				CPUSeconds: time.Since(start).Seconds(),
				Iterations: res.Iterations,
			})
		}
	}
	return s, nil
}

// ablationMutation sweeps IEGT's mutation rate.
func ablationMutation(cfg Config) (*Series, error) {
	s := &Series{
		Figure: "ablation-mutation",
		Title:  "IEGT: replicator dynamics with mutation",
		XLabel: "mutation rate",
	}
	in, err := dataset.GenerateGM(cfg.gmConfig())
	if err != nil {
		return nil, err
	}
	g, err := vdps.Generate(in, vdps.Options{Epsilon: DefaultEpsilonGM})
	if err != nil {
		return nil, err
	}
	for _, mu := range []float64{0, 0.05, 0.1, 0.2} {
		start := time.Now()
		res, err := evo.IEGT(context.Background(), g, evo.Options{
			Seed: cfg.Seed, MutationRate: mu, MaxIterations: 100,
		})
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{
			X:          mu,
			Algorithm:  "IEGT",
			PayoffDiff: res.Summary.Difference,
			AvgPayoff:  res.Summary.Average,
			CPUSeconds: time.Since(start).Seconds(),
			Iterations: res.Iterations,
		})
	}
	return s, nil
}
