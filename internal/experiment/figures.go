package experiment

import (
	"fmt"
	"math"

	"fairtask/internal/dataset"
	"fairtask/internal/model"
	"fairtask/internal/vdps"
)

func init() {
	registry["fig2"] = fig2EpsilonGM
	registry["fig3"] = fig3EpsilonSYN
	registry["fig4"] = fig4TasksGM
	registry["fig5"] = fig5TasksSYN
	registry["fig6"] = fig6WorkersGM
	registry["fig7"] = fig7WorkersSYN
	registry["fig8"] = fig8PointsGM
	registry["fig9"] = fig9PointsSYN
	registry["fig10"] = fig10ExpirySYN
	registry["fig11"] = fig11MaxDPSYN
}

// sweep runs the four algorithms at every x value over problems produced by
// make, with the given pruning threshold.
func sweep(cfg Config, s *Series, xs []float64, epsilon float64,
	make func(x float64) (*model.Problem, error)) error {
	for _, x := range xs {
		p, err := make(x)
		if err != nil {
			return fmt.Errorf("%s at %g: %w", s.Figure, x, err)
		}
		for _, alg := range algorithmSet(cfg, cfg.Seed) {
			pt, err := measureProblem(p, alg, vdps.Options{Epsilon: epsilon}, cfg.Parallelism)
			if err != nil {
				return fmt.Errorf("%s at %g: %w", s.Figure, x, err)
			}
			pt.X = x
			s.Points = append(s.Points, pt)
		}
	}
	return nil
}

// epsilonSweep runs the four pruned algorithms at every epsilon, plus the
// "-W" unpruned variants. The unpruned runs do not depend on epsilon, so
// they are measured once and replicated across the x axis (the paper plots
// them as flat reference lines).
func epsilonSweep(cfg Config, s *Series, eps []float64,
	make func() (*model.Problem, error)) error {
	p, err := make()
	if err != nil {
		return err
	}
	for _, e := range eps {
		for _, alg := range algorithmSet(cfg, cfg.Seed) {
			pt, err := measureProblem(p, alg, vdps.Options{Epsilon: e}, cfg.Parallelism)
			if err != nil {
				return fmt.Errorf("%s at eps=%g: %w", s.Figure, e, err)
			}
			pt.X = e
			s.Points = append(s.Points, pt)
		}
	}
	for _, alg := range algorithmSet(cfg, cfg.Seed) {
		pt, err := measureProblem(p, alg, vdps.Options{Epsilon: math.Inf(1)}, cfg.Parallelism)
		if err != nil {
			return fmt.Errorf("%s unpruned: %w", s.Figure, err)
		}
		pt.Algorithm += "-W"
		for _, e := range eps {
			cp := pt
			cp.X = e
			s.Points = append(s.Points, cp)
		}
	}
	return nil
}

func fig2EpsilonGM(cfg Config) (*Series, error) {
	s := &Series{Figure: "fig2", Title: "Effect of epsilon (GM)", XLabel: "epsilon (km)"}
	err := epsilonSweep(cfg, s, []float64{0.2, 0.4, 0.6, 0.8, 1.0}, func() (*model.Problem, error) {
		in, err := dataset.GenerateGM(cfg.gmConfig())
		if err != nil {
			return nil, err
		}
		return asProblem(in), nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

func fig3EpsilonSYN(cfg Config) (*Series, error) {
	s := &Series{Figure: "fig3", Title: "Effect of epsilon (SYN)", XLabel: "epsilon (km)"}
	err := epsilonSweep(cfg, s, []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4}, func() (*model.Problem, error) {
		return dataset.GenerateSYN(cfg.synConfig())
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

func fig4TasksGM(cfg Config) (*Series, error) {
	s := &Series{Figure: "fig4", Title: "Effect of |S| (GM)", XLabel: "|S| (scaled)"}
	var xs []float64
	for _, v := range []int{100, 200, 300, 400, 500} {
		xs = append(xs, float64(cfg.gmScaled(v)))
	}
	err := sweep(cfg, s, xs, DefaultEpsilonGM,
		func(x float64) (*model.Problem, error) {
			c := cfg.gmConfig()
			c.Tasks = int(x)
			in, err := dataset.GenerateGM(c)
			if err != nil {
				return nil, err
			}
			return asProblem(in), nil
		})
	if err != nil {
		return nil, err
	}
	return s, nil
}

func fig5TasksSYN(cfg Config) (*Series, error) {
	s := &Series{Figure: "fig5", Title: "Effect of |S| (SYN)", XLabel: "|S| (scaled)"}
	var xs []float64
	for _, v := range []int{25_000, 50_000, 75_000, 100_000, 125_000} {
		xs = append(xs, float64(cfg.scaled(v)))
	}
	err := sweep(cfg, s, xs, DefaultEpsilonSYN, func(x float64) (*model.Problem, error) {
		c := cfg.synConfig()
		c.Tasks = int(x)
		return dataset.GenerateSYN(c)
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

func fig6WorkersGM(cfg Config) (*Series, error) {
	s := &Series{Figure: "fig6", Title: "Effect of |W| (GM)", XLabel: "|W| (scaled)"}
	var xs []float64
	for _, v := range []int{20, 40, 60, 80, 100} {
		xs = append(xs, float64(cfg.gmScaled(v)))
	}
	err := sweep(cfg, s, xs, DefaultEpsilonGM,
		func(x float64) (*model.Problem, error) {
			c := cfg.gmConfig()
			c.Workers = int(x)
			in, err := dataset.GenerateGM(c)
			if err != nil {
				return nil, err
			}
			return asProblem(in), nil
		})
	if err != nil {
		return nil, err
	}
	return s, nil
}

func fig7WorkersSYN(cfg Config) (*Series, error) {
	s := &Series{Figure: "fig7", Title: "Effect of |W| (SYN)", XLabel: "|W| (scaled)"}
	var xs []float64
	for _, v := range []int{1_000, 2_000, 3_000, 4_000, 5_000} {
		xs = append(xs, float64(cfg.scaled(v)))
	}
	err := sweep(cfg, s, xs, DefaultEpsilonSYN, func(x float64) (*model.Problem, error) {
		c := cfg.synConfig()
		c.Workers = int(x)
		return dataset.GenerateSYN(c)
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

func fig8PointsGM(cfg Config) (*Series, error) {
	s := &Series{Figure: "fig8", Title: "Effect of |DP| (GM)", XLabel: "|DP| (scaled)"}
	var xs []float64
	for _, v := range []int{20, 40, 60, 80, 100} {
		xs = append(xs, float64(cfg.gmScaled(v)))
	}
	err := sweep(cfg, s, xs, DefaultEpsilonGM,
		func(x float64) (*model.Problem, error) {
			c := cfg.gmConfig()
			c.DeliveryPoints = int(x)
			in, err := dataset.GenerateGM(c)
			if err != nil {
				return nil, err
			}
			return asProblem(in), nil
		})
	if err != nil {
		return nil, err
	}
	return s, nil
}

func fig9PointsSYN(cfg Config) (*Series, error) {
	s := &Series{Figure: "fig9", Title: "Effect of |DP| (SYN)", XLabel: "|DP| (scaled)"}
	var xs []float64
	for _, v := range []int{3_000, 3_500, 4_000, 4_500, 5_000} {
		xs = append(xs, float64(cfg.scaled(v)))
	}
	err := sweep(cfg, s, xs, DefaultEpsilonSYN, func(x float64) (*model.Problem, error) {
		c := cfg.synConfig()
		c.DeliveryPoints = int(x)
		return dataset.GenerateSYN(c)
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

func fig10ExpirySYN(cfg Config) (*Series, error) {
	s := &Series{Figure: "fig10", Title: "Effect of e (SYN)", XLabel: "e (hours)"}
	err := sweep(cfg, s, []float64{0.5, 1, 1.5, 2, 2.5}, DefaultEpsilonSYN,
		func(x float64) (*model.Problem, error) {
			c := cfg.synConfig()
			c.Expiry = x
			return dataset.GenerateSYN(c)
		})
	if err != nil {
		return nil, err
	}
	return s, nil
}

func fig11MaxDPSYN(cfg Config) (*Series, error) {
	s := &Series{Figure: "fig11", Title: "Effect of maxDP (SYN)", XLabel: "maxDP"}
	err := sweep(cfg, s, []float64{1, 2, 3, 4}, DefaultEpsilonSYN,
		func(x float64) (*model.Problem, error) {
			c := cfg.synConfig()
			c.MaxDP = int(x)
			return dataset.GenerateSYN(c)
		})
	if err != nil {
		return nil, err
	}
	return s, nil
}
