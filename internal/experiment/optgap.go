package experiment

import (
	"context"
	"fmt"
	"time"

	"fairtask/internal/assign"
	"fairtask/internal/dataset"
	"fairtask/internal/vdps"
)

func init() {
	registry["optgap"] = optGap
}

// optGap measures how close the heuristics come to the exact scalarized
// FTA optimum (score = avg - P_dif, see assign.Exact) on small random
// instances where exhaustive search is feasible. The series reports, per
// instance seed, the achieved score of EXACT and each heuristic; the gap is
// the vertical distance to the EXACT line.
func optGap(cfg Config) (*Series, error) {
	s := &Series{
		Figure: "optgap",
		Title:  "Optimality gap vs exact scalarized FTA optimum",
		XLabel: "instance seed",
	}
	for seed := int64(0); seed < 5; seed++ {
		in, err := dataset.GenerateGM(dataset.GMConfig{
			Seed:           cfg.Seed + seed,
			Tasks:          40,
			Workers:        4,
			DeliveryPoints: 8,
		})
		if err != nil {
			return nil, err
		}
		g, err := vdps.Generate(in, vdps.Options{Epsilon: DefaultEpsilonGM, MaxSize: 2})
		if err != nil {
			return nil, err
		}
		algs := []assign.Assigner{
			assign.Exact{},
			assign.MPTA{NodeBudget: cfg.MPTANodeBudget},
			assign.GTA{},
			fgtRunner{seed: cfg.Seed},
			iegtRunner{seed: cfg.Seed},
		}
		for _, alg := range algs {
			start := time.Now()
			res, err := alg.Assign(context.Background(), g)
			if err != nil {
				return nil, fmt.Errorf("optgap seed %d %s: %w", seed, alg.Name(), err)
			}
			s.Points = append(s.Points, Point{
				X:          float64(seed),
				Algorithm:  alg.Name(),
				PayoffDiff: res.Summary.Difference,
				// AvgPayoff doubles as the scalarized score column for this
				// experiment so the pivot table shows the gap directly.
				AvgPayoff:  assign.Score(res.Summary.Payoffs, 1),
				CPUSeconds: time.Since(start).Seconds(),
				Iterations: res.Iterations,
			})
		}
	}
	return s, nil
}
