package experiment

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Parameter is one row of the paper's Table I ("Experiment Parameters"):
// the swept values of one knob for one dataset, with the default value the
// paper underlines.
type Parameter struct {
	// Name is the paper's symbol, e.g. "epsilon" or "|S|".
	Name string
	// Dataset is "GM" or "SYN".
	Dataset string
	// Values are the swept settings in Table I order.
	Values []float64
	// Default is the underlined default value.
	Default float64
	// Unit annotates the values ("km", "h", "count").
	Unit string
}

// TableI returns the paper's full experiment parameter registry. The figure
// runners derive their sweeps from the same values (scaled for SYN); this
// function is the authoritative transcription of the table.
func TableI() []Parameter {
	return []Parameter{
		{Name: "epsilon", Dataset: "GM", Values: []float64{0.2, 0.4, 0.6, 0.8, 1}, Default: 0.6, Unit: "km"},
		{Name: "epsilon", Dataset: "SYN", Values: []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4}, Default: 2, Unit: "km"},
		{Name: "|S|", Dataset: "GM", Values: []float64{100, 200, 300, 400, 500}, Default: 200, Unit: "count"},
		{Name: "|S|", Dataset: "SYN", Values: []float64{25000, 50000, 75000, 100000, 125000}, Default: 100000, Unit: "count"},
		{Name: "|W|", Dataset: "GM", Values: []float64{20, 40, 60, 80, 100}, Default: 40, Unit: "count"},
		{Name: "|W|", Dataset: "SYN", Values: []float64{1000, 2000, 3000, 4000, 5000}, Default: 2000, Unit: "count"},
		{Name: "|DP|", Dataset: "GM", Values: []float64{20, 40, 60, 80, 100}, Default: 100, Unit: "count"},
		{Name: "|DP|", Dataset: "SYN", Values: []float64{3000, 3500, 4000, 4500, 5000}, Default: 5000, Unit: "count"},
		{Name: "e", Dataset: "SYN", Values: []float64{0.5, 1, 1.5, 2, 2.5}, Default: 2, Unit: "h"},
		{Name: "maxDP", Dataset: "SYN", Values: []float64{1, 2, 3, 4}, Default: 3, Unit: "count"},
	}
}

// WriteTableI renders the parameter registry as an aligned text table, with
// the default value marked like the paper's underlining.
func WriteTableI(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "parameter\tdataset\tvalues (default marked *)\tunit")
	for _, p := range TableI() {
		var vals []string
		for _, v := range p.Values {
			s := fmt.Sprintf("%g", v)
			if v == p.Default {
				s += "*"
			}
			vals = append(vals, s)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", p.Name, p.Dataset, strings.Join(vals, ", "), p.Unit)
	}
	return tw.Flush()
}
