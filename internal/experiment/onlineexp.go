package experiment

import (
	"math/rand"
	"time"

	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/online"
	"fairtask/internal/travel"
)

func init() {
	registry["online"] = onlineMatching
}

// onlineMatching compares the greedy and fair-first policies of the online
// single-task assignment mode (paper §III) across worker counts: a fixed
// reproducible task stream is replayed against fleets of growing size. The
// series reports each policy's earnings-rate spread (in PayoffDiff), mean
// rate (AvgPayoff) and assignment count (Iterations).
func onlineMatching(cfg Config) (*Series, error) {
	s := &Series{
		Figure: "online",
		Title:  "Online single-task matching: greedy vs fair-first",
		XLabel: "|W|",
	}
	tm, err := travel.NewModel(geo.Euclidean{}, 12)
	if err != nil {
		return nil, err
	}

	const space = 6.0
	mkStream := func() []online.Task {
		rng := rand.New(rand.NewSource(cfg.Seed))
		tasks := make([]online.Task, 240)
		for i := range tasks {
			at := float64(i) / 40
			tasks[i] = online.Task{
				ID:     i,
				Loc:    geo.Pt(rng.Float64()*space, rng.Float64()*space),
				Expiry: at + 0.75,
				Reward: 1,
			}
		}
		return tasks
	}

	for _, nw := range []int{4, 8, 12, 16} {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(nw)))
		inst := &model.Instance{
			Center: geo.Pt(space/2, space/2),
			Travel: tm,
		}
		for w := 0; w < nw; w++ {
			inst.Workers = append(inst.Workers, model.Worker{
				ID:  w,
				Loc: geo.Pt(rng.Float64()*space, rng.Float64()*space),
			})
		}
		for _, policy := range []online.Policy{online.Greedy, online.FairFirst} {
			m, err := online.NewMatcher(inst, policy)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			for i, task := range mkStream() {
				m.Offer(float64(i)/40, task)
			}
			rep := m.Report()
			s.Points = append(s.Points, Point{
				X:          float64(nw),
				Algorithm:  policy.String(),
				PayoffDiff: rep.RateDifference,
				AvgPayoff:  rep.RateAverage,
				CPUSeconds: time.Since(start).Seconds(),
				Iterations: rep.Assigned,
			})
		}
	}
	return s, nil
}
