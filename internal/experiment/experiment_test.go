package experiment

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyConfig shrinks the workloads far enough for unit tests.
func tinyConfig() Config {
	return Config{Seed: 1, SYNScale: 100, GMScale: 4, MPTANodeBudget: 20_000}
}

func TestNamesComplete(t *testing.T) {
	names := Names()
	want := []string{
		"ablation-decomposition", "ablation-earlyterm", "ablation-index",
		"ablation-mutation", "ablation-order",
		"fig10", "fig11", "fig12", "fig2", "fig3", "fig4",
		"fig5", "fig6", "fig7", "fig8", "fig9", "hetero", "lexifair",
		"online", "optgap",
	}
	if len(names) != len(want) {
		t.Fatalf("registered figures = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registered figures = %v, want %v", names, want)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("fig99", Config{}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestScaled(t *testing.T) {
	c := Config{SYNScale: 10}
	if c.scaled(100) != 10 || c.scaled(5) != 1 {
		t.Error("scaled arithmetic wrong")
	}
}

// TestFig10ShapeAndMetrics runs the expiry sweep at tiny scale and checks
// the series structure plus the paper's qualitative claims: average payoff
// is non-decreasing-ish in e (more reachable points), and every algorithm is
// measured at every x.
func TestFig10ShapeAndMetrics(t *testing.T) {
	s, err := Run("fig10", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	xs := s.xValues()
	if len(xs) != 5 {
		t.Fatalf("x values = %v", xs)
	}
	algs := s.algorithmsInOrder()
	if len(algs) != 4 {
		t.Fatalf("algorithms = %v", algs)
	}
	for _, x := range xs {
		for _, a := range algs {
			p, ok := s.Lookup(x, a)
			if !ok {
				t.Fatalf("missing point (%g, %s)", x, a)
			}
			if p.PayoffDiff < 0 || p.AvgPayoff < 0 || p.CPUSeconds < 0 {
				t.Errorf("negative metric at (%g, %s): %+v", x, a, p)
			}
		}
	}
	// Average payoff at the loosest deadline must be at least the tightest's
	// for the payoff-maximizing baseline (more feasible strategies).
	lo, _ := s.Lookup(xs[0], "MPTA")
	hi, _ := s.Lookup(xs[len(xs)-1], "MPTA")
	if hi.AvgPayoff < lo.AvgPayoff-1e-9 {
		t.Errorf("MPTA average payoff fell when deadlines relaxed: %g -> %g",
			lo.AvgPayoff, hi.AvgPayoff)
	}
}

// TestFig2IncludesUnprunedVariants checks the epsilon sweep carries the
// paper's "-W" reference series.
func TestFig2IncludesUnprunedVariants(t *testing.T) {
	cfg := tinyConfig()
	s, err := Run("fig2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	algs := s.algorithmsInOrder()
	if len(algs) != 8 {
		t.Fatalf("algorithms = %v, want 4 + 4 -W variants", algs)
	}
	withW := 0
	for _, a := range algs {
		if strings.HasSuffix(a, "-W") {
			withW++
		}
	}
	if withW != 4 {
		t.Errorf("unpruned variants = %d, want 4", withW)
	}
	// The -W series is flat: identical result replicated across x.
	xs := s.xValues()
	first, _ := s.Lookup(xs[0], "GTA-W")
	last, _ := s.Lookup(xs[len(xs)-1], "GTA-W")
	if first.PayoffDiff != last.PayoffDiff || first.AvgPayoff != last.AvgPayoff {
		t.Error("-W variant should be constant across epsilon")
	}
}

func TestFig12ConvergenceSeries(t *testing.T) {
	s, err := Run("fig12", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	algs := s.algorithmsInOrder()
	if len(algs) != 2 || algs[0] != "FGT" || algs[1] != "IEGT" {
		t.Fatalf("algorithms = %v", algs)
	}
	// Each trace ends with zero strategy changes (converged).
	for _, a := range algs {
		var lastChanges = -1
		var lastX float64
		for _, p := range s.Points {
			if p.Algorithm == a && p.X > lastX {
				lastX = p.X
				lastChanges = p.Iterations
			}
		}
		if lastChanges != 0 {
			t.Errorf("%s: final round had %d changes, want 0", a, lastChanges)
		}
	}
}

func TestWriteTables(t *testing.T) {
	s, err := Run("fig11", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteTables(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"fig11", "payoff difference", "average payoff", "CPU time",
		"MPTA", "GTA", "FGT", "IEGT", "maxDP",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
}

// TestGMSweepFairnessShape verifies the headline comparison on the GM task
// sweep at reduced size: IEGT's payoff difference stays below MPTA's at the
// default point.
func TestGMSweepFairnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	cfg := tinyConfig()
	s, err := Run("fig4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := 50.0 // default |S| at GMScale 4
	mpta, ok1 := s.Lookup(x, "MPTA")
	iegt, ok2 := s.Lookup(x, "IEGT")
	if !ok1 || !ok2 {
		t.Fatal("default point missing")
	}
	if iegt.PayoffDiff >= mpta.PayoffDiff {
		t.Errorf("IEGT P_dif %.4f should be below MPTA's %.4f",
			iegt.PayoffDiff, mpta.PayoffDiff)
	}
}

func TestAblationRunnersRegistered(t *testing.T) {
	for _, name := range []string{
		"ablation-index", "ablation-decomposition", "ablation-earlyterm",
		"ablation-order", "ablation-mutation",
	} {
		found := false
		for _, n := range Names() {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Errorf("%s not registered", name)
		}
	}
}

func TestAblationIndexEquivalence(t *testing.T) {
	s, err := Run("ablation-index", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Candidate counts (stored in AvgPayoff) must match between variants at
	// every x: the index is an optimization, never a semantic change.
	for _, x := range s.xValues() {
		idx, ok1 := s.Lookup(x, "indexed")
		scan, ok2 := s.Lookup(x, "scan")
		if !ok1 || !ok2 {
			t.Fatalf("missing variant at x=%g", x)
		}
		if idx.AvgPayoff != scan.AvgPayoff {
			t.Errorf("x=%g: candidate counts differ: %g vs %g", x, idx.AvgPayoff, scan.AvgPayoff)
		}
	}
}

func TestAblationEarlyTermFewerOrEqualIterations(t *testing.T) {
	s, err := Run("ablation-earlyterm", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts := s.Points
	if len(pts) < 2 {
		t.Fatal("too few points")
	}
	exact := pts[0]
	loosest := pts[len(pts)-1]
	if loosest.Iterations > exact.Iterations {
		t.Errorf("loose threshold used more iterations (%d) than exact (%d)",
			loosest.Iterations, exact.Iterations)
	}
}

func TestAblationMutationRuns(t *testing.T) {
	s, err := Run("ablation-mutation", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("points = %d", len(s.Points))
	}
}

func TestAblationDecompositionAndOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, name := range []string{"ablation-decomposition", "ablation-order"} {
		s, err := Run(name, tinyConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s.Points) == 0 {
			t.Errorf("%s produced no points", name)
		}
	}
}

func TestTableIConsistency(t *testing.T) {
	rows := TableI()
	if len(rows) != 10 {
		t.Fatalf("Table I rows = %d, want 10", len(rows))
	}
	for _, p := range rows {
		if p.Dataset != "GM" && p.Dataset != "SYN" {
			t.Errorf("%s: bad dataset %q", p.Name, p.Dataset)
		}
		found := false
		for _, v := range p.Values {
			if v == p.Default {
				found = true
			}
		}
		if !found {
			t.Errorf("%s (%s): default %g not among values %v",
				p.Name, p.Dataset, p.Default, p.Values)
		}
		for i := 1; i < len(p.Values); i++ {
			if p.Values[i] <= p.Values[i-1] {
				t.Errorf("%s (%s): values not strictly increasing", p.Name, p.Dataset)
			}
		}
	}
	// The defaults encoded in the workload configs must match Table I.
	cfg := Config{}.withDefaults()
	cfg.SYNScale = 1
	cfg.GMScale = 1
	syn := cfg.synConfig().WithDefaults()
	if syn.Tasks != 100000 || syn.Workers != 2000 || syn.DeliveryPoints != 5000 ||
		syn.Expiry != 2 || syn.MaxDP != 3 {
		t.Errorf("SYN defaults diverge from Table I: %+v", syn)
	}
	gm := cfg.gmConfig().WithDefaults()
	if gm.Tasks != 200 || gm.Workers != 40 || gm.DeliveryPoints != 100 {
		t.Errorf("GM defaults diverge from Table I: %+v", gm)
	}
}

func TestWriteTableI(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTableI(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"epsilon", "maxDP", "2*", "0.6*", "100000*"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q:\n%s", want, out)
		}
	}
}

func TestOptGap(t *testing.T) {
	s, err := Run("optgap", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// At every seed, EXACT's score (stored in AvgPayoff) dominates all
	// heuristics.
	for _, x := range s.xValues() {
		exact, ok := s.Lookup(x, "EXACT")
		if !ok {
			t.Fatalf("EXACT missing at seed %g", x)
		}
		for _, a := range s.algorithmsInOrder() {
			if a == "EXACT" {
				continue
			}
			p, ok := s.Lookup(x, a)
			if !ok {
				t.Fatalf("%s missing at seed %g", a, x)
			}
			if p.AvgPayoff > exact.AvgPayoff+1e-9 {
				t.Errorf("seed %g: %s score %g beats EXACT %g", x, a, p.AvgPayoff, exact.AvgPayoff)
			}
		}
	}
}

func TestLexifairExperiment(t *testing.T) {
	s, err := Run("lexifair", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	algs := s.algorithmsInOrder()
	want := []string{"FGT", "IEGT", "MMTA", "LEXIFAIR"}
	if len(algs) != len(want) {
		t.Fatalf("algorithms = %v, want %v", algs, want)
	}
	for i := range want {
		if algs[i] != want[i] {
			t.Fatalf("algorithms = %v, want %v", algs, want)
		}
	}
	// LEXIFAIR maximizes the minimum payoff first, so on these exactly
	// solvable instances no baseline may beat its MinPayoff.
	for _, x := range s.xValues() {
		lex, ok := s.Lookup(x, "LEXIFAIR")
		if !ok {
			t.Fatalf("LEXIFAIR missing at seed %g", x)
		}
		for _, a := range algs {
			if a == "LEXIFAIR" {
				continue
			}
			p, ok := s.Lookup(x, a)
			if !ok {
				t.Fatalf("%s missing at seed %g", a, x)
			}
			if p.MinPayoff > lex.MinPayoff+1e-9 {
				t.Errorf("seed %g: %s min payoff %g beats LEXIFAIR %g",
					x, a, p.MinPayoff, lex.MinPayoff)
			}
		}
	}
}

func TestRunRepeated(t *testing.T) {
	agg, err := RunRepeated("fig11", tinyConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Points) == 0 {
		t.Fatal("no aggregated points")
	}
	for _, p := range agg.Points {
		if p.Runs != 3 {
			t.Errorf("(%g, %s): runs = %d, want 3", p.X, p.Algorithm, p.Runs)
		}
		if p.StdPayoffDiff < 0 || p.MeanCPU < 0 {
			t.Errorf("negative aggregate at (%g, %s)", p.X, p.Algorithm)
		}
	}
	var buf bytes.Buffer
	if err := agg.WriteTables(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "±") || !strings.Contains(buf.String(), "mean of 3 runs") {
		t.Errorf("aggregate table malformed:\n%s", buf.String())
	}
}

func TestRunRepeatedUnknownFigure(t *testing.T) {
	if _, err := RunRepeated("fig99", tinyConfig(), 2); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunRepeatedClampsReps(t *testing.T) {
	agg, err := RunRepeated("fig12", tinyConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range agg.Points {
		if p.Runs != 1 {
			t.Errorf("runs = %d, want 1", p.Runs)
		}
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	s, err := Run("fig12", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "figure,x,algorithm,payoff_diff") {
		t.Errorf("CSV header wrong:\n%.120s", out)
	}
	if lines := strings.Count(strings.TrimSpace(out), "\n"); lines != len(s.Points) {
		t.Errorf("CSV rows = %d, want %d", lines, len(s.Points))
	}
}

// TestEveryFigureRuns smoke-tests every registered runner at ultra-tiny
// scale: correct structure, no errors.
func TestEveryFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := Config{Seed: 1, SYNScale: 400, GMScale: 8, MPTANodeBudget: 5_000}
	for _, name := range Names() {
		s, err := Run(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s.Points) == 0 {
			t.Errorf("%s produced no points", name)
		}
		if s.Figure != name {
			t.Errorf("%s: series labeled %q", name, s.Figure)
		}
		for _, p := range s.Points {
			if p.CPUSeconds < 0 || p.PayoffDiff < 0 {
				t.Errorf("%s: negative metric %+v", name, p)
			}
		}
	}
}

func TestHeteroFleet(t *testing.T) {
	s, err := Run("hetero", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	xs := s.xValues()
	if len(xs) != 4 || xs[0] != 1 {
		t.Fatalf("x values = %v", xs)
	}
	// Fairness under the greedy baseline should be no better with a very
	// unequal fleet than with a homogeneous one.
	homog, ok1 := s.Lookup(1, "GTA")
	spread, ok2 := s.Lookup(3, "GTA")
	if !ok1 || !ok2 {
		t.Fatal("GTA points missing")
	}
	if spread.PayoffDiff < homog.PayoffDiff*0.5 {
		t.Errorf("heterogeneity unexpectedly improved GTA fairness strongly: %g -> %g",
			homog.PayoffDiff, spread.PayoffDiff)
	}
}

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTableIGolden pins the exact rendered Table I against a golden file
// (regenerate with -update after deliberate changes).
func TestTableIGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTableI(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "table1.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if buf.String() != string(want) {
		t.Errorf("Table I output changed; run with -update if intended.\ngot:\n%s\nwant:\n%s",
			buf.String(), want)
	}
}

func TestOnlineExperiment(t *testing.T) {
	s, err := Run("online", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Points); got != 8 {
		t.Fatalf("points = %d, want 8 (4 fleet sizes x 2 policies)", got)
	}
	// Fair-first spread <= greedy spread at every fleet size.
	for _, x := range s.xValues() {
		g, ok1 := s.Lookup(x, "greedy")
		f, ok2 := s.Lookup(x, "fair-first")
		if !ok1 || !ok2 {
			t.Fatalf("policies missing at |W|=%g", x)
		}
		if f.PayoffDiff > g.PayoffDiff+1e-9 {
			t.Errorf("|W|=%g: fair-first spread %g above greedy %g",
				x, f.PayoffDiff, g.PayoffDiff)
		}
	}
}
