package experiment

import (
	"fmt"

	"fairtask/internal/dataset"
	"fairtask/internal/vdps"
)

func init() {
	registry["hetero"] = heteroFleet
}

// heteroFleet measures the effect of fleet speed heterogeneity (the
// Worker.Speed extension) on fairness: workers draw their speed from
// {5/f, 5·f} km/h, so x = f = 1 is the paper's homogeneous fleet and larger
// f mixes increasingly unequal vehicles. Expectation: payoff difference
// grows with f for the fairness-oblivious baselines (fast workers earn
// proportionally more) while the game-theoretic methods compensate
// partially — they can redistribute sets, but cannot equalize physics.
func heteroFleet(cfg Config) (*Series, error) {
	s := &Series{
		Figure: "hetero",
		Title:  "Effect of fleet speed heterogeneity",
		XLabel: "speed spread factor",
	}
	for _, f := range []float64{1, 1.5, 2, 3} {
		c := cfg.synConfig()
		if f > 1 {
			c.SpeedChoices = []float64{5 / f, 5 * f}
		}
		p, err := dataset.GenerateSYN(c)
		if err != nil {
			return nil, err
		}
		for _, alg := range algorithmSet(cfg, cfg.Seed) {
			pt, err := measureProblem(p, alg, vdps.Options{Epsilon: DefaultEpsilonSYN}, cfg.Parallelism)
			if err != nil {
				return nil, fmt.Errorf("hetero at f=%g: %w", f, err)
			}
			pt.X = f
			s.Points = append(s.Points, pt)
		}
	}
	return s, nil
}
