package experiment

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"fairtask/internal/stats"
)

// AggregatePoint is the per-(x, algorithm) aggregation over repeated runs.
type AggregatePoint struct {
	X         float64
	Algorithm string
	// Mean and Std of the payoff difference over the repetitions.
	MeanPayoffDiff, StdPayoffDiff float64
	// Mean and Std of the average payoff.
	MeanAvgPayoff, StdAvgPayoff float64
	// MeanCPU is the mean solve time in seconds.
	MeanCPU float64
	// Runs is the number of repetitions aggregated.
	Runs int
}

// AggregateSeries is the repeated-run form of Series.
type AggregateSeries struct {
	Figure string
	Title  string
	XLabel string
	Points []AggregatePoint
}

// RunRepeated executes the named figure reps times with seeds cfg.Seed,
// cfg.Seed+1, ... and aggregates every (x, algorithm) cell to mean and
// standard deviation — the form in which papers usually report randomized
// experiments. reps < 1 is treated as 1.
func RunRepeated(name string, cfg Config, reps int) (*AggregateSeries, error) {
	if reps < 1 {
		reps = 1
	}
	type key struct {
		x   float64
		alg string
	}
	diffs := map[key][]float64{}
	avgs := map[key][]float64{}
	cpus := map[key][]float64{}
	var template *Series
	for r := 0; r < reps; r++ {
		run := cfg
		run.Seed = cfg.Seed + int64(r)
		s, err := Run(name, run)
		if err != nil {
			return nil, fmt.Errorf("repetition %d: %w", r, err)
		}
		if template == nil {
			template = s
		}
		for _, p := range s.Points {
			k := key{p.X, p.Algorithm}
			diffs[k] = append(diffs[k], p.PayoffDiff)
			avgs[k] = append(avgs[k], p.AvgPayoff)
			cpus[k] = append(cpus[k], p.CPUSeconds)
		}
	}

	out := &AggregateSeries{
		Figure: template.Figure,
		Title:  template.Title + fmt.Sprintf(" (mean of %d runs)", reps),
		XLabel: template.XLabel,
	}
	keys := make([]key, 0, len(diffs))
	for k := range diffs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].x != keys[j].x {
			return keys[i].x < keys[j].x
		}
		return keys[i].alg < keys[j].alg
	})
	for _, k := range keys {
		out.Points = append(out.Points, AggregatePoint{
			X:              k.x,
			Algorithm:      k.alg,
			MeanPayoffDiff: stats.Mean(diffs[k]),
			StdPayoffDiff:  stats.StdDev(diffs[k]),
			MeanAvgPayoff:  stats.Mean(avgs[k]),
			StdAvgPayoff:   stats.StdDev(avgs[k]),
			MeanCPU:        stats.Mean(cpus[k]),
			Runs:           len(diffs[k]),
		})
	}
	return out, nil
}

// WriteTables renders the aggregated series with mean±std cells.
func (s *AggregateSeries) WriteTables(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n", s.Figure, s.Title); err != nil {
		return err
	}
	metrics := []struct {
		name string
		cell func(AggregatePoint) string
	}{
		{"payoff difference (P_dif)", func(p AggregatePoint) string {
			return fmt.Sprintf("%.4f±%.4f", p.MeanPayoffDiff, p.StdPayoffDiff)
		}},
		{"average payoff", func(p AggregatePoint) string {
			return fmt.Sprintf("%.4f±%.4f", p.MeanAvgPayoff, p.StdAvgPayoff)
		}},
		{"CPU time (s)", func(p AggregatePoint) string {
			return fmt.Sprintf("%.4f", p.MeanCPU)
		}},
	}
	algs := s.algorithmsInOrder()
	xs := s.xValues()
	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "\n-- %s --\n", m.name); err != nil {
			return err
		}
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "%s", s.XLabel)
		for _, a := range algs {
			fmt.Fprintf(tw, "\t%s", a)
		}
		fmt.Fprintln(tw)
		for _, x := range xs {
			fmt.Fprintf(tw, "%g", x)
			for _, a := range algs {
				cell := "-"
				for _, p := range s.Points {
					if p.X == x && p.Algorithm == a {
						cell = m.cell(p)
						break
					}
				}
				fmt.Fprintf(tw, "\t%s", cell)
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func (s *AggregateSeries) algorithmsInOrder() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range s.Points {
		if !seen[p.Algorithm] {
			seen[p.Algorithm] = true
			out = append(out, p.Algorithm)
		}
	}
	sort.Strings(out)
	return out
}

func (s *AggregateSeries) xValues() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, p := range s.Points {
		if !seen[p.X] {
			seen[p.X] = true
			out = append(out, p.X)
		}
	}
	sort.Float64s(out)
	return out
}
