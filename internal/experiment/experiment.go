// Package experiment reproduces the paper's evaluation (§VII): a registry of
// runners, one per figure, each sweeping one parameter of Table I and
// measuring payoff difference, average payoff and CPU time for the four
// algorithms (MPTA, GTA, FGT, IEGT) — plus the unpruned "-W" variants for
// the ε experiments and the convergence traces of Figure 12.
//
// The SYN workloads are scaled down by Config.SYNScale (default 10) relative
// to the paper's 2x Xeon Gold testbed: all of |S|, |W|, |DP| and the number
// of distribution centers shrink by the same factor, which preserves the
// per-center density — and therefore the curve shapes — while fitting a
// single-core run. See EXPERIMENTS.md for paper-vs-measured values.
package experiment

import (
	"context"
	"fmt"
	"sort"
	"time"

	"fairtask/internal/assign"
	"fairtask/internal/dataset"
	"fairtask/internal/evo"
	"fairtask/internal/game"
	"fairtask/internal/model"
	"fairtask/internal/payoff"
	"fairtask/internal/platform"
	"fairtask/internal/vdps"
)

// Config configures a figure run.
type Config struct {
	// Seed drives dataset generation and randomized algorithms.
	Seed int64
	// SYNScale divides the paper's SYN sizes (tasks, workers, delivery
	// points, centers). Zero means 10. One reproduces the paper's scale.
	SYNScale int
	// GMScale divides the paper's GM sizes. Zero means 1 — GM is already
	// laptop-sized; tests and quick benches raise it.
	GMScale int
	// MPTANodeBudget bounds the MPTA search per instance. Zero means the
	// sweep default of 200000 (the full default of 2e6 is used only when
	// explicitly requested).
	MPTANodeBudget int
	// Parallelism bounds concurrent per-center solves. Zero means
	// GOMAXPROCS.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.SYNScale <= 0 {
		c.SYNScale = 10
	}
	if c.GMScale <= 0 {
		c.GMScale = 1
	}
	if c.MPTANodeBudget <= 0 {
		c.MPTANodeBudget = 200_000
	}
	return c
}

// Point is one measurement: algorithm variant at one x value.
type Point struct {
	// X is the swept parameter value actually used (after scaling).
	X float64
	// Algorithm is "MPTA", "GTA", "FGT", "IEGT" or a "-W" variant.
	Algorithm string
	// PayoffDiff is P_dif over the full worker population.
	PayoffDiff float64
	// AvgPayoff is the mean worker payoff.
	AvgPayoff float64
	// MinPayoff is the smallest worker payoff — the egalitarian objective
	// the lexifair comparison ranks algorithms by.
	MinPayoff float64
	// CPUSeconds is the wall-clock solve time (VDPS generation included).
	CPUSeconds float64
	// Iterations reports game rounds (0 for one-shot baselines).
	Iterations int
}

// Series is the output of one figure runner.
type Series struct {
	// Figure is the registry key, e.g. "fig3".
	Figure string
	// Title describes the experiment.
	Title string
	// XLabel names the swept parameter.
	XLabel string
	// Points holds every measurement, ordered by (X, Algorithm).
	Points []Point
}

// Runner produces the series for one figure.
type Runner func(cfg Config) (*Series, error)

// registry maps figure keys to runners; populated in figures.go and
// convergence.go.
var registry = map[string]Runner{}

// Names returns the registered figure keys in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes the named figure.
func Run(name string, cfg Config) (*Series, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown figure %q (have %v)", name, Names())
	}
	return r(cfg.withDefaults())
}

// algorithmSet returns the paper's four algorithms with sweep-appropriate
// budgets.
func algorithmSet(cfg Config, seed int64) []assign.Assigner {
	return []assign.Assigner{
		assign.MPTA{NodeBudget: cfg.MPTANodeBudget},
		assign.GTA{},
		fgtRunner{seed: seed},
		iegtRunner{seed: seed},
	}
}

// fgtRunner adapts game.FGT for the harness (the public adapter lives in the
// root package, which internal code cannot import).
type fgtRunner struct{ seed int64 }

// Name implements assign.Assigner.
func (fgtRunner) Name() string { return "FGT" }

// Assign implements assign.Assigner.
func (r fgtRunner) Assign(ctx context.Context, g *vdps.Generator) (*game.Result, error) {
	return game.FGT(ctx, g, game.Options{Seed: r.seed})
}

// iegtRunner adapts evo.IEGT likewise.
type iegtRunner struct{ seed int64 }

// Name implements assign.Assigner.
func (iegtRunner) Name() string { return "IEGT" }

// Assign implements assign.Assigner.
func (r iegtRunner) Assign(ctx context.Context, g *vdps.Generator) (*game.Result, error) {
	return evo.IEGT(ctx, g, evo.Options{Seed: r.seed})
}

// measureProblem solves a multi-center problem with one algorithm and
// returns the aggregated measurement.
func measureProblem(p *model.Problem, alg assign.Assigner, vopt vdps.Options, par int) (Point, error) {
	start := time.Now()
	res, err := platform.Assign(p, alg, platform.Options{VDPS: vopt, Parallelism: par})
	if err != nil {
		return Point{}, fmt.Errorf("%s: %w", alg.Name(), err)
	}
	iters := 0
	for _, r := range res.PerCenter {
		if r.Iterations > iters {
			iters = r.Iterations
		}
	}
	return Point{
		Algorithm:  alg.Name(),
		PayoffDiff: res.Difference,
		AvgPayoff:  res.Average,
		MinPayoff:  payoff.MinPayoff(res.Payoffs),
		CPUSeconds: time.Since(start).Seconds(),
		Iterations: iters,
	}, nil
}

// asProblem wraps a single instance for the shared measurement path.
func asProblem(in *model.Instance) *model.Problem {
	return &model.Problem{Instances: []model.Instance{*in}}
}

// scaled divides v by the config's SYN scale, with a floor of 1.
func (c Config) scaled(v int) int {
	s := v / c.SYNScale
	if s < 1 {
		return 1
	}
	return s
}

// synConfig returns the Table I default SYN workload at the config's scale.
func (c Config) synConfig() dataset.SYNConfig {
	return dataset.SYNConfig{
		Seed:           c.Seed,
		Centers:        c.scaled(50),
		Tasks:          c.scaled(100_000),
		Workers:        c.scaled(2_000),
		DeliveryPoints: c.scaled(5_000),
		Expiry:         2,
		MaxDP:          3,
	}
}

// gmScaled divides v by the config's GM scale, with a floor of 1.
func (c Config) gmScaled(v int) int {
	s := v / c.GMScale
	if s < 1 {
		return 1
	}
	return s
}

// gmConfig returns the Table I default GM workload at the config's GM scale.
func (c Config) gmConfig() dataset.GMConfig {
	return dataset.GMConfig{
		Seed:           c.Seed,
		Tasks:          c.gmScaled(200),
		Workers:        c.gmScaled(40),
		DeliveryPoints: c.gmScaled(100),
	}
}

// Default pruning thresholds (underlined in Table I).
const (
	// DefaultEpsilonGM is the GM distance threshold in km.
	DefaultEpsilonGM = 0.6
	// DefaultEpsilonSYN is the SYN distance threshold in km.
	DefaultEpsilonSYN = 2
)
