package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

// noSleep records requested delays without actually sleeping.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestRetrierSucceedsFirstTry(t *testing.T) {
	var slept []time.Duration
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, Sleep: noSleep(&slept)})
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error { calls++; return nil })
	if err != nil || calls != 1 || len(slept) != 0 {
		t.Fatalf("err=%v calls=%d slept=%v, want nil/1/none", err, calls, slept)
	}
}

func TestRetrierRetriesUntilSuccess(t *testing.T) {
	var slept []time.Duration
	r := NewRetrier(RetryPolicy{MaxAttempts: 5, Sleep: noSleep(&slept)})
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 || len(slept) != 2 {
		t.Fatalf("err=%v calls=%d slept=%d, want nil/3/2", err, calls, len(slept))
	}
}

func TestRetrierExhaustionWrapsRetryError(t *testing.T) {
	var slept []time.Duration
	cause := errors.New("always fails")
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, Sleep: noSleep(&slept)})
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error { calls++; return cause })
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetryError", err)
	}
	if re.Attempts != 3 || calls != 3 {
		t.Errorf("Attempts=%d calls=%d, want 3/3", re.Attempts, calls)
	}
	if !errors.Is(err, cause) {
		t.Error("RetryError does not unwrap to the cause")
	}
}

func TestRetrierStopsOnNonRetryable(t *testing.T) {
	fatal := errors.New("fatal")
	r := NewRetrier(RetryPolicy{
		MaxAttempts: 5,
		Retryable:   func(err error) bool { return !errors.Is(err, fatal) },
		Sleep:       func(context.Context, time.Duration) error { return nil },
	})
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error { calls++; return fatal })
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want the fatal error after 1 call", err, calls)
	}
	var re *RetryError
	if errors.As(err, &re) {
		t.Error("non-retryable error was wrapped in RetryError")
	}
}

func TestRetrierDefaultRetryableStopsOnContextErrors(t *testing.T) {
	if DefaultRetryable(context.Canceled) || DefaultRetryable(context.DeadlineExceeded) {
		t.Error("DefaultRetryable retries context errors")
	}
	if !DefaultRetryable(errors.New("other")) {
		t.Error("DefaultRetryable rejects a plain error")
	}
}

func TestRetrierHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRetrier(RetryPolicy{MaxAttempts: 100, BaseDelay: time.Millisecond})
	calls := 0
	err := r.Do(ctx, func(context.Context) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls > 3 {
		t.Errorf("kept retrying after cancel: %d calls", calls)
	}
}

func TestRetrierSchedulesAreSeedDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, Jitter: 0.5, Seed: 42}
	a, b := p.Schedule(), p.Schedule()
	if len(a) != 5 {
		t.Fatalf("schedule length %d, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same policy diverged at delay %d: %v vs %v", i, a[i], b[i])
		}
	}
	p2 := p
	p2.Seed = 43
	c := p2.Schedule()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical jittered schedules")
	}
}

func TestRetrierDoMatchesSchedule(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, Jitter: 0.3, Seed: 9,
		Sleep: noSleep(&slept)}
	r := NewRetrier(p)
	_ = r.Do(context.Background(), func(context.Context) error { return errors.New("x") })
	want := p.Schedule()
	if len(slept) != len(want) {
		t.Fatalf("slept %d delays, schedule has %d", len(slept), len(want))
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("delay %d: Do slept %v, Schedule says %v", i, slept[i], want[i])
		}
	}
	// A second Do must sleep the identical sequence: the retrier is
	// stateless across calls.
	slept = nil
	_ = r.Do(context.Background(), func(context.Context) error { return errors.New("x") })
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("second Do diverged at delay %d", i)
		}
	}
}

func TestRetrierBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	s := p.Schedule()
	want := []time.Duration{10, 20, 40, 50, 50, 50, 50}
	for i := range want {
		if s[i] != want[i]*time.Millisecond {
			t.Errorf("delay %d = %v, want %v", i, s[i], want[i]*time.Millisecond)
		}
	}
}

func TestRetrierJitterNeverExceedsBaseSchedule(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 80 * time.Millisecond, Jitter: 0.9, Seed: 3}
	plain := RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 80 * time.Millisecond}
	s, bound := p.Schedule(), plain.Schedule()
	for i := range s {
		if s[i] > bound[i] {
			t.Errorf("jittered delay %d = %v exceeds unjittered %v", i, s[i], bound[i])
		}
		if s[i] <= 0 {
			t.Errorf("jittered delay %d = %v, want positive", i, s[i])
		}
	}
}

func TestRetrierOnRetryHook(t *testing.T) {
	type call struct {
		attempt int
		delay   time.Duration
	}
	var calls []call
	r := NewRetrier(RetryPolicy{
		MaxAttempts: 3,
		OnRetry:     func(a int, d time.Duration, _ error) { calls = append(calls, call{a, d}) },
		Sleep:       func(context.Context, time.Duration) error { return nil },
	})
	_ = r.Do(context.Background(), func(context.Context) error { return errors.New("x") })
	if len(calls) != 2 || calls[0].attempt != 1 || calls[1].attempt != 2 {
		t.Fatalf("OnRetry calls = %+v, want attempts 1 and 2", calls)
	}
}

func TestRetrierSingleAttemptPolicyPassesThrough(t *testing.T) {
	cause := errors.New("boom")
	r := NewRetrier(RetryPolicy{})
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error { calls++; return cause })
	if err != cause || calls != 1 {
		t.Fatalf("err=%v calls=%d, want raw cause after 1 call", err, calls)
	}
}

func TestRetrierRetriesInjectedFaults(t *testing.T) {
	p := Point("test.retry.fp")
	defer p.Disarm()
	p.Arm(Behavior{Count: 2})
	r := NewRetrier(RetryPolicy{MaxAttempts: 4,
		Sleep: func(context.Context, time.Duration) error { return nil }})
	err := r.Do(context.Background(), func(ctx context.Context) error { return p.Hit(ctx) })
	if err != nil {
		t.Fatalf("retrier did not outlast a 2-count failpoint: %v", err)
	}
	if hits, fired := p.Stats(); hits != 3 || fired != 2 {
		t.Errorf("Stats = (%d, %d), want (3, 2)", hits, fired)
	}
}
