// Package fault is the deterministic fault-injection and resilience layer
// of the fairtask engine: named failpoints threaded through the solve path,
// a context-aware retrier with capped exponential backoff, and the parsing
// of the CLI's chaos specs.
//
// # Failpoints
//
// A Failpoint is a named injection site. Production code declares one per
// site at package init (fault.Point("vdps.generate")) and calls Hit on the
// hot path; while the point is disarmed — the permanent state outside chaos
// runs — Hit is a single atomic pointer load returning nil, so the layer
// adds no measurable cost (see BenchmarkFailpointDisarmed). Tests and dev
// chaos runs arm a point with a Behavior: an injected error, an injected
// latency, or a panic.
//
// # Determinism
//
// Chaos runs must be reproducible bit for bit, so triggering never consults
// the wall clock: a count-based trigger fires on the first Count hits, and a
// probability-based trigger draws from a rand.PCG seeded by the Behavior.
// Two runs of the same single-threaded code path with the same armed specs
// therefore inject the same faults at the same hits. (Count- and
// probability-based triggers observed from concurrent goroutines are still
// race-free, but the assignment of trigger to goroutine follows the
// scheduler; chaos runs that need bit-reproducibility keep the consuming
// path sequential, as "fta assign -fail" does.)
//
// The package is stdlib-only and imports nothing from this repository, so
// every internal package can thread failpoints without import cycles.
package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel every injected failure wraps: code observing
// an error from a chaos run can classify it with errors.Is(err, ErrInjected)
// no matter how many layers wrapped it on the way up.
var ErrInjected = errors.New("fault: injected failure")

// Error is the error form of a fired error-kind failpoint. It wraps the
// behavior's cause (ErrInjected by default), so both errors.Is against the
// sentinel and errors.As against *Error work through wrapping.
type Error struct {
	// Point is the failpoint that fired.
	Point string
	// Err is the injected cause; never nil.
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: failpoint %s: %v", e.Point, e.Err)
}

// Unwrap exposes the injected cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Kind selects what a fired failpoint does.
type Kind int

const (
	// KindError makes Hit return an *Error wrapping Behavior.Err.
	KindError Kind = iota
	// KindSleep makes Hit block for Behavior.Delay (or until ctx is done,
	// returning ctx.Err()). A completed sleep returns nil: latency
	// injection delays the caller without failing it.
	KindSleep
	// KindPanic makes Hit panic. Sites running under a recover boundary
	// (the jobs worker pool) turn this into a failure; anywhere else it
	// crashes the process, which is the point of a panic drill.
	KindPanic
)

// String returns the spec keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "err"
	case KindSleep:
		return "sleep"
	default:
		return "panic"
	}
}

// Behavior describes what an armed failpoint injects and when it triggers.
// The zero value fires an ErrInjected-wrapping error on every hit.
type Behavior struct {
	// Kind selects the effect; default KindError.
	Kind Kind
	// Err is the cause wrapped by KindError injections. Nil means
	// ErrInjected.
	Err error
	// Delay is the injected latency for KindSleep.
	Delay time.Duration
	// Count caps how many hits trigger: the first Count hits fire, later
	// hits pass through. Zero means unlimited.
	Count int
	// Prob triggers each hit with this probability, drawn from a PCG
	// seeded with Seed — deterministic, never wall-clock. Values outside
	// (0, 1) mean "every hit". Count still caps the total fired.
	Prob float64
	// Seed seeds the probability PCG.
	Seed uint64
}

// arming is the mutable state of an armed failpoint.
type arming struct {
	mu    sync.Mutex
	b     Behavior
	rng   *rand.Rand
	hits  int64
	fired int64
}

// Failpoint is one named injection site. The zero value is not usable —
// obtain points with Point. A disarmed point's Hit is one atomic load.
type Failpoint struct {
	name  string
	state atomic.Pointer[arming]
}

// registry is the process-global failpoint namespace. Sites register at
// package init, so by the time a test or the CLI arms a spec every
// reachable point exists and unknown names can be rejected as typos.
var registry struct {
	mu     sync.Mutex
	points map[string]*Failpoint
}

// Point returns the failpoint registered under name, creating it disarmed
// on first use. Calls with the same name return the same point, so declaring
// packages and arming tests meet at the name alone.
func Point(name string) *Failpoint {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.points == nil {
		registry.points = map[string]*Failpoint{}
	}
	p := registry.points[name]
	if p == nil {
		p = &Failpoint{name: name}
		registry.points[name] = p
	}
	return p
}

// Lookup returns the failpoint registered under name, or nil. Unlike Point
// it never creates, so spec validation can distinguish typos from sites.
func Lookup(name string) *Failpoint {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return registry.points[name]
}

// Names returns every registered failpoint name in sorted order.
func Names() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]string, 0, len(registry.points))
	for n := range registry.points {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DisarmAll disarms every registered failpoint. Chaos tests defer it so one
// armed point can never leak into the next test.
func DisarmAll() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, p := range registry.points {
		p.state.Store(nil)
	}
}

// Name returns the point's registered name.
func (f *Failpoint) Name() string { return f.name }

// Arm replaces the point's behavior and resets its hit and fire counters.
func (f *Failpoint) Arm(b Behavior) {
	if b.Err == nil {
		b.Err = ErrInjected
	}
	a := &arming{b: b}
	if b.Prob > 0 && b.Prob < 1 {
		a.rng = rand.New(rand.NewPCG(b.Seed, 0))
	}
	f.state.Store(a)
}

// Disarm returns the point to the pass-through state.
func (f *Failpoint) Disarm() { f.state.Store(nil) }

// Armed reports whether the point currently has a behavior installed (it may
// still pass hits through once its Count is exhausted).
func (f *Failpoint) Armed() bool { return f.state.Load() != nil }

// Stats returns how many times the point was hit and how many of those hits
// fired since it was last armed. Both are zero for a disarmed point.
func (f *Failpoint) Stats() (hits, fired int64) {
	a := f.state.Load()
	if a == nil {
		return 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hits, a.fired
}

// Hit evaluates the failpoint. Disarmed — the production state — it is a
// single atomic load returning nil. Armed, it decides deterministically
// whether this hit triggers and then injects the behavior: an error return,
// a context-aware sleep, or a panic.
func (f *Failpoint) Hit(ctx context.Context) error {
	a := f.state.Load()
	if a == nil {
		return nil
	}
	return a.hit(ctx, f.name)
}

// hit applies the armed behavior for one call site hit.
func (a *arming) hit(ctx context.Context, point string) error {
	a.mu.Lock()
	a.hits++
	fire := true
	if a.b.Count > 0 && a.fired >= int64(a.b.Count) {
		fire = false
	}
	if fire && a.rng != nil {
		fire = a.rng.Float64() < a.b.Prob
	}
	if fire {
		a.fired++
	}
	b := a.b
	a.mu.Unlock()
	if !fire {
		return nil
	}
	switch b.Kind {
	case KindSleep:
		t := time.NewTimer(b.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case KindPanic:
		panic(fmt.Sprintf("fault: failpoint %s: injected panic", point))
	default:
		return &Error{Point: point, Err: b.Err}
	}
}

// ParseSpec parses one chaos spec of the form
//
//	name:kind[:param]...
//
// where kind is err, sleep or panic, and each param is one of
//
//	N        fire at most N times (count trigger)
//	p=F      fire each hit with probability F (0 < F < 1)
//	seed=N   seed for the probability PCG
//	D        injected latency, e.g. 50ms (sleep only; Go duration syntax)
//
// Examples: "vdps.generate:err:3" fails the first three candidate
// generations; "jobs.run:sleep:50ms:p=0.5:seed=7" delays roughly half of all
// job executions by 50ms, reproducibly for seed 7.
func ParseSpec(spec string) (name string, b Behavior, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || parts[0] == "" {
		return "", b, fmt.Errorf("fault: bad spec %q (want name:kind[:param]...)", spec)
	}
	name = parts[0]
	switch parts[1] {
	case "err":
		b.Kind = KindError
	case "sleep":
		b.Kind = KindSleep
	case "panic":
		b.Kind = KindPanic
	default:
		return "", b, fmt.Errorf("fault: bad spec %q: unknown kind %q (want err, sleep or panic)", spec, parts[1])
	}
	for _, p := range parts[2:] {
		switch {
		case strings.HasPrefix(p, "p="):
			v, perr := strconv.ParseFloat(p[2:], 64)
			if perr != nil || v <= 0 || v >= 1 {
				return "", b, fmt.Errorf("fault: bad spec %q: probability %q (want 0 < p < 1)", spec, p)
			}
			b.Prob = v
		case strings.HasPrefix(p, "seed="):
			v, perr := strconv.ParseUint(p[5:], 10, 64)
			if perr != nil {
				return "", b, fmt.Errorf("fault: bad spec %q: seed %q", spec, p)
			}
			b.Seed = v
		default:
			if n, perr := strconv.Atoi(p); perr == nil {
				if n <= 0 {
					return "", b, fmt.Errorf("fault: bad spec %q: count must be positive", spec)
				}
				b.Count = n
				continue
			}
			d, perr := time.ParseDuration(p)
			if perr != nil || d < 0 {
				return "", b, fmt.Errorf("fault: bad spec %q: parameter %q", spec, p)
			}
			if b.Kind != KindSleep {
				return "", b, fmt.Errorf("fault: bad spec %q: duration %q only applies to sleep", spec, p)
			}
			b.Delay = d
		}
	}
	if b.Kind == KindSleep && b.Delay == 0 {
		return "", b, fmt.Errorf("fault: bad spec %q: sleep needs a duration, e.g. sleep:50ms", spec)
	}
	return name, b, nil
}

// ArmSpecs parses and arms a comma-separated list of chaos specs (see
// ParseSpec). Every named point must already be registered by the code path
// that declares it; an unknown name is rejected with the list of known
// points, so a typo cannot silently arm nothing.
func ArmSpecs(specs string) error {
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, b, err := ParseSpec(spec)
		if err != nil {
			return err
		}
		p := Lookup(name)
		if p == nil {
			return fmt.Errorf("fault: unknown failpoint %q (known: %s)", name, strings.Join(Names(), ", "))
		}
		p.Arm(b)
	}
	return nil
}
