package fault

import (
	"context"
	"testing"
	"time"
)

// BenchmarkFailpointDisarmed is the headline number: a disarmed failpoint on
// the hot path must cost one atomic load, so resilience instrumentation is
// free outside chaos runs. CI records this in BENCH_fault.json.
func BenchmarkFailpointDisarmed(b *testing.B) {
	p := Point("bench.disarmed")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Hit(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFailpointDisarmedParallel(b *testing.B) {
	p := Point("bench.disarmed.par")
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := p.Hit(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFailpointArmedPassthrough measures an armed point whose count is
// exhausted — the worst case still on the non-firing path.
func BenchmarkFailpointArmedPassthrough(b *testing.B) {
	p := Point("bench.armed")
	defer p.Disarm()
	p.Arm(Behavior{Count: 1})
	ctx := context.Background()
	_ = p.Hit(ctx) // burn the single firing hit
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Hit(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetrierSuccess measures the retry wrapper's overhead on an
// operation that never fails — the production steady state.
func BenchmarkRetrierSuccess(b *testing.B) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond})
	ctx := context.Background()
	op := func(context.Context) error { return nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Do(ctx, op); err != nil {
			b.Fatal(err)
		}
	}
}
