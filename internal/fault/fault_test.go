package fault

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedHitIsNil(t *testing.T) {
	p := Point("test.disarmed")
	if err := p.Hit(context.Background()); err != nil {
		t.Fatalf("disarmed Hit = %v, want nil", err)
	}
	if p.Armed() {
		t.Error("Armed() = true for a never-armed point")
	}
}

func TestPointIsIdempotent(t *testing.T) {
	if Point("test.same") != Point("test.same") {
		t.Error("Point returned distinct instances for one name")
	}
	if Lookup("test.never-registered") != nil {
		t.Error("Lookup invented a point")
	}
	if Lookup("test.same") == nil {
		t.Error("Lookup missed a registered point")
	}
}

func TestErrorInjection(t *testing.T) {
	p := Point("test.err")
	defer p.Disarm()
	p.Arm(Behavior{Kind: KindError})
	err := p.Hit(context.Background())
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("errors.Is(err, ErrInjected) = false for %v", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != "test.err" {
		t.Fatalf("errors.As *Error failed or wrong point: %v", err)
	}
}

func TestCustomErrorCauseStaysIsable(t *testing.T) {
	cause := errors.New("downstream boom")
	p := Point("test.cause")
	defer p.Disarm()
	p.Arm(Behavior{Err: cause})
	err := p.Hit(context.Background())
	if !errors.Is(err, cause) {
		t.Fatalf("errors.Is against the custom cause failed: %v", err)
	}
}

func TestCountTrigger(t *testing.T) {
	p := Point("test.count")
	defer p.Disarm()
	p.Arm(Behavior{Count: 2})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := p.Hit(ctx); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: err = %v, want injected", i+1, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := p.Hit(ctx); err != nil {
			t.Fatalf("post-count hit: err = %v, want nil", err)
		}
	}
	hits, fired := p.Stats()
	if hits != 5 || fired != 2 {
		t.Errorf("Stats = (%d, %d), want (5, 2)", hits, fired)
	}
}

func TestProbabilityTriggerIsSeedDeterministic(t *testing.T) {
	fires := func(seed uint64) []bool {
		p := Point("test.prob")
		defer p.Disarm()
		p.Arm(Behavior{Prob: 0.5, Seed: seed})
		out := make([]bool, 64)
		for i := range out {
			out[i] = p.Hit(context.Background()) != nil
		}
		return out
	}
	a, b := fires(7), fires(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := fires(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 64-hit fire patterns")
	}
	var n int
	for _, f := range a {
		if f {
			n++
		}
	}
	if n == 0 || n == len(a) {
		t.Errorf("p=0.5 fired %d/%d times — trigger looks degenerate", n, len(a))
	}
}

func TestSleepInjection(t *testing.T) {
	p := Point("test.sleep")
	defer p.Disarm()
	p.Arm(Behavior{Kind: KindSleep, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := p.Hit(context.Background()); err != nil {
		t.Fatalf("sleep hit errored: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("sleep returned after %v, want >= 20ms", d)
	}
}

func TestSleepObservesContext(t *testing.T) {
	p := Point("test.sleepctx")
	defer p.Disarm()
	p.Arm(Behavior{Kind: KindSleep, Delay: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.Hit(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Error("sleep did not abort with the context")
	}
}

func TestPanicInjection(t *testing.T) {
	p := Point("test.panic")
	defer p.Disarm()
	p.Arm(Behavior{Kind: KindPanic, Count: 1})
	defer func() {
		if r := recover(); r == nil {
			t.Error("armed panic point did not panic")
		}
	}()
	_ = p.Hit(context.Background())
}

func TestDisarmAll(t *testing.T) {
	p := Point("test.disarmall")
	p.Arm(Behavior{})
	DisarmAll()
	if p.Armed() {
		t.Error("point still armed after DisarmAll")
	}
	if err := p.Hit(context.Background()); err != nil {
		t.Errorf("Hit after DisarmAll = %v", err)
	}
}

func TestConcurrentHitsAreRaceFreeAndCounted(t *testing.T) {
	p := Point("test.concurrent")
	defer p.Disarm()
	p.Arm(Behavior{Count: 10})
	var wg sync.WaitGroup
	var injected sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			for i := 0; i < 100; i++ {
				if p.Hit(context.Background()) != nil {
					n++
				}
			}
			injected.Store(g, n)
		}(g)
	}
	wg.Wait()
	total := 0
	injected.Range(func(_, v any) bool { total += v.(int); return true })
	if total != 10 {
		t.Errorf("fired %d injections across goroutines, want exactly 10", total)
	}
	hits, fired := p.Stats()
	if hits != 800 || fired != 10 {
		t.Errorf("Stats = (%d, %d), want (800, 10)", hits, fired)
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		name string
		want Behavior
	}{
		{"vdps.generate:err:3", "vdps.generate", Behavior{Kind: KindError, Count: 3}},
		{"jobs.run:err", "jobs.run", Behavior{Kind: KindError}},
		{"jobs.run:sleep:50ms", "jobs.run", Behavior{Kind: KindSleep, Delay: 50 * time.Millisecond}},
		{"jobs.run:sleep:50ms:p=0.5:seed=7", "jobs.run",
			Behavior{Kind: KindSleep, Delay: 50 * time.Millisecond, Prob: 0.5, Seed: 7}},
		{"game.fgt.round:panic:1", "game.fgt.round", Behavior{Kind: KindPanic, Count: 1}},
		{"platform.solve:err:p=0.25", "platform.solve", Behavior{Kind: KindError, Prob: 0.25}},
	}
	for _, c := range cases {
		name, b, err := ParseSpec(c.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q) error: %v", c.spec, err)
			continue
		}
		if name != c.name || b != c.want {
			t.Errorf("ParseSpec(%q) = %q, %+v; want %q, %+v", c.spec, name, b, c.name, c.want)
		}
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"", "noseparator", "x:boom", "x:err:p=2", "x:err:p=0", "x:err:-1",
		"x:err:0", "x:sleep", "x:sleep:nope", "x:err:seed=x", "x:err:50ms",
		":err",
	} {
		if _, _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted garbage", spec)
		}
	}
}

func TestArmSpecsRejectsUnknownPoint(t *testing.T) {
	err := ArmSpecs("definitely.not.registered:err")
	if err == nil || !strings.Contains(err.Error(), "unknown failpoint") {
		t.Fatalf("err = %v, want unknown-failpoint error", err)
	}
}

func TestArmSpecsArmsMultiple(t *testing.T) {
	a, b := Point("test.multi.a"), Point("test.multi.b")
	defer DisarmAll()
	if err := ArmSpecs("test.multi.a:err:1, test.multi.b:sleep:1ms"); err != nil {
		t.Fatal(err)
	}
	if !a.Armed() || !b.Armed() {
		t.Error("ArmSpecs left a named point disarmed")
	}
}
