package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// RetryPolicy configures a Retrier: capped exponential backoff with seeded,
// deterministic jitter. The zero value of every field selects a sensible
// default, but the zero policy as a whole means "one attempt, no retry" —
// retrying is always an explicit decision.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first.
	// Values below 2 disable retrying.
	MaxAttempts int
	// BaseDelay is the delay before the first retry. Zero means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Zero means 2s.
	MaxDelay time.Duration
	// Multiplier is the per-retry growth factor. Zero means 2.
	Multiplier float64
	// Jitter randomizes each delay by up to this fraction of its value,
	// in [0, 1). The draw comes from a PCG seeded with Seed, so the full
	// delay schedule is a pure function of the policy — two runs with the
	// same policy sleep the same sequence (bit-reproducible chaos runs
	// depend on this; wall-clock randomness would break them).
	Jitter float64
	// Seed seeds the jitter PCG.
	Seed uint64
	// Retryable classifies errors; a false return stops immediately.
	// Nil means "retry everything except context cancellation/expiry".
	Retryable func(error) bool
	// OnRetry is invoked before each backoff sleep with the 1-based number
	// of the attempt that just failed, the delay about to be slept, and the
	// error. Callers hang metrics and logs here. Nil disables it.
	OnRetry func(attempt int, delay time.Duration, err error)
	// Sleep waits between attempts; tests substitute a recording stub.
	// Nil means a context-aware timer sleep.
	Sleep func(ctx context.Context, d time.Duration) error
}

// withDefaults fills the policy's zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Retryable == nil {
		p.Retryable = DefaultRetryable
	}
	if p.Sleep == nil {
		p.Sleep = sleepContext
	}
	return p
}

// DefaultRetryable retries every error except context cancellation and
// deadline expiry: those mean the caller is gone or out of time, and more
// attempts only burn CPU the context already withdrew.
func DefaultRetryable(err error) bool {
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// Schedule returns the policy's full backoff schedule — the delay before
// retry 1, 2, ... — as a pure function of the policy. Two policies with
// equal fields produce identical schedules; tests assert determinism
// against this.
func (p RetryPolicy) Schedule() []time.Duration {
	p = p.withDefaults()
	if p.MaxAttempts < 2 {
		return nil
	}
	rng := newJitterRNG(p)
	out := make([]time.Duration, p.MaxAttempts-1)
	d := p.BaseDelay
	for i := range out {
		out[i] = jitterDelay(d, p.Jitter, rng)
		d = nextDelay(d, p)
	}
	return out
}

// RetryError wraps the final error of an exhausted retry loop with the
// number of attempts made. Unwrap exposes the cause, so errors.Is
// classification (context errors, fault.ErrInjected, ...) keeps working.
type RetryError struct {
	// Attempts is how many times the operation ran.
	Attempts int
	// Err is the last attempt's error; never nil.
	Err error
}

// Error implements error.
func (e *RetryError) Error() string {
	return fmt.Sprintf("fault: %d attempt(s) failed: %v", e.Attempts, e.Err)
}

// Unwrap exposes the final attempt's error.
func (e *RetryError) Unwrap() error { return e.Err }

// Retrier executes operations under a RetryPolicy. It is stateless across
// Do calls — every Do derives its jitter from the policy seed alone — so one
// Retrier is safe for concurrent use and every call sees the same schedule.
type Retrier struct {
	policy RetryPolicy
}

// NewRetrier returns a Retrier over the policy with defaults applied.
func NewRetrier(p RetryPolicy) *Retrier {
	return &Retrier{policy: p.withDefaults()}
}

// Policy returns the effective (default-filled) policy.
func (r *Retrier) Policy() RetryPolicy { return r.policy }

// Do runs op until it succeeds, exhausts MaxAttempts, hits a non-retryable
// error, or ctx is done. The returned error is nil on success, ctx.Err()
// when the context ended the loop, op's own error when it was not
// retryable, and a *RetryError wrapping the final error when every attempt
// failed.
func (r *Retrier) Do(ctx context.Context, op func(ctx context.Context) error) error {
	p := r.policy
	attempts := p.MaxAttempts
	if attempts < 2 {
		return op(ctx)
	}
	rng := newJitterRNG(p)
	delay := p.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = op(ctx)
		if err == nil {
			return nil
		}
		if !p.Retryable(err) {
			return err
		}
		if attempt >= attempts {
			return &RetryError{Attempts: attempt, Err: err}
		}
		d := jitterDelay(delay, p.Jitter, rng)
		if p.OnRetry != nil {
			p.OnRetry(attempt, d, err)
		}
		if serr := p.Sleep(ctx, d); serr != nil {
			return serr
		}
		delay = nextDelay(delay, p)
	}
}

// newJitterRNG returns the seeded PCG a Do call (or Schedule) draws jitter
// from, or nil when the policy has no jitter.
func newJitterRNG(p RetryPolicy) *rand.Rand {
	if p.Jitter <= 0 {
		return nil
	}
	return rand.New(rand.NewPCG(p.Seed, 1))
}

// jitterDelay applies the deterministic jitter draw to one delay.
func jitterDelay(d time.Duration, jitter float64, rng *rand.Rand) time.Duration {
	if rng == nil || jitter <= 0 {
		return d
	}
	// Spread the delay over [d*(1-jitter), d]: jitter shortens, never
	// lengthens, so MaxDelay stays an upper bound for the whole schedule.
	f := 1 - jitter*rng.Float64()
	return time.Duration(float64(d) * f)
}

// nextDelay grows the backoff, capped at MaxDelay.
func nextDelay(d time.Duration, p RetryPolicy) time.Duration {
	n := time.Duration(float64(d) * p.Multiplier)
	if n > p.MaxDelay || n <= 0 {
		n = p.MaxDelay
	}
	return n
}

// sleepContext blocks for d or until ctx is done, whichever comes first.
func sleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
