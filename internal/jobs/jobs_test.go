package jobs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"fairtask/internal/obs"
)

// sleepTask returns a task that blocks until release is closed or the job
// context is done, reporting which happened.
func sleepTask(release <-chan struct{}) Task {
	return func(ctx context.Context) (any, error) {
		select {
		case <-release:
			return "ok", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func mustSubmit(t *testing.T, m *Manager, task Task) Snapshot {
	t.Helper()
	s, err := m.Submit(task)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return s
}

func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if s.State == want {
			return s
		}
		time.Sleep(time.Millisecond)
	}
	s, _ := m.Get(id)
	t.Fatalf("job %s: state %s, want %s", id, s.State, want)
	return Snapshot{}
}

func TestJobLifecycleDone(t *testing.T) {
	m := New(Config{Workers: 2, QueueDepth: 4})
	defer m.Close(context.Background())

	s := mustSubmit(t, m, func(ctx context.Context) (any, error) { return 42, nil })
	if s.State != StateQueued {
		t.Fatalf("submit state = %s, want queued", s.State)
	}
	fin, err := m.Wait(context.Background(), s.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if fin.State != StateDone || fin.Result != 42 {
		t.Fatalf("final = %+v, want done/42", fin)
	}
	if fin.FinishedAt.Before(fin.StartedAt) || fin.StartedAt.Before(fin.SubmittedAt) {
		t.Fatalf("timestamps out of order: %+v", fin)
	}
}

func TestJobFailure(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 2})
	defer m.Close(context.Background())

	boom := errors.New("boom")
	s := mustSubmit(t, m, func(ctx context.Context) (any, error) { return nil, boom })
	fin, err := m.Wait(context.Background(), s.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if fin.State != StateFailed || !errors.Is(fin.Err, boom) {
		t.Fatalf("final = %v/%v, want failed/boom", fin.State, fin.Err)
	}
}

func TestQueueSaturationRejects(t *testing.T) {
	reg := obs.NewRegistry()
	mt := obs.NewJobsMetrics(reg)
	m := New(Config{Workers: 1, QueueDepth: 2, Metrics: mt})
	release := make(chan struct{})
	defer m.Close(context.Background()) // LIFO: runs after release is closed
	defer close(release)

	// Occupy the single worker, then fill the queue.
	busy := mustSubmit(t, m, sleepTask(release))
	waitState(t, m, busy.ID, StateRunning)
	for i := 0; i < 2; i++ {
		mustSubmit(t, m, sleepTask(release))
	}
	if _, err := m.Submit(sleepTask(release)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit on full queue: err = %v, want ErrQueueFull", err)
	}
	st := m.Stats()
	if st.QueueDepth != 2 || st.QueueCapacity != 2 || st.Running != 1 {
		t.Fatalf("stats = %+v, want depth 2/2 running 1", st)
	}
	if got := mt.Rejected.Value(); got != 1 {
		t.Fatalf("rejected_total = %d, want 1", got)
	}
}

func TestCancelRunning(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 2})
	defer m.Close(context.Background())

	started := make(chan struct{})
	var once sync.Once
	s := mustSubmit(t, m, func(ctx context.Context) (any, error) {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	if snap, err := m.Cancel(s.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	} else if snap.State != StateRunning && snap.State != StateCanceled {
		t.Fatalf("post-cancel state = %s", snap.State)
	}
	fin := waitState(t, m, s.ID, StateCanceled)
	if !errors.Is(fin.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", fin.Err)
	}
}

func TestCancelQueuedNeverRuns(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	defer m.Close(context.Background())

	busy := mustSubmit(t, m, sleepTask(release))
	waitState(t, m, busy.ID, StateRunning)

	ran := make(chan struct{})
	queued := mustSubmit(t, m, func(ctx context.Context) (any, error) {
		close(ran)
		return nil, nil
	})
	snap, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if snap.State != StateCanceled {
		t.Fatalf("queued job post-cancel state = %s, want canceled", snap.State)
	}
	close(release)
	waitState(t, m, busy.ID, StateDone)
	select {
	case <-ran:
		t.Fatal("canceled queued job still ran")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestCancelTerminalIsNoop(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 1})
	defer m.Close(context.Background())

	s := mustSubmit(t, m, func(ctx context.Context) (any, error) { return "v", nil })
	m.Wait(context.Background(), s.ID)
	snap, err := m.Cancel(s.ID)
	if err != nil {
		t.Fatalf("Cancel terminal: %v", err)
	}
	if snap.State != StateDone || snap.Result != "v" {
		t.Fatalf("terminal cancel mutated job: %+v", snap)
	}
}

func TestGetUnknown(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close(context.Background())
	if _, err := m.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown: %v, want ErrNotFound", err)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel unknown: %v, want ErrNotFound", err)
	}
}

func TestPerJobTimeout(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 1, Timeout: 20 * time.Millisecond})
	defer m.Close(context.Background())

	s := mustSubmit(t, m, func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	fin, err := m.Wait(context.Background(), s.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if fin.State != StateFailed || !errors.Is(fin.Err, context.DeadlineExceeded) {
		t.Fatalf("final = %v/%v, want failed/deadline", fin.State, fin.Err)
	}
}

func TestTTLEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	reg := obs.NewRegistry()
	mt := obs.NewJobsMetrics(reg)
	m := New(Config{Workers: 1, QueueDepth: 4, TTL: time.Minute, Metrics: mt, Clock: clock})
	defer m.Close(context.Background())

	s := mustSubmit(t, m, func(ctx context.Context) (any, error) { return nil, nil })
	m.Wait(context.Background(), s.ID)

	m.Sweep()
	if _, err := m.Get(s.ID); err != nil {
		t.Fatalf("fresh terminal job evicted early: %v", err)
	}

	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	m.Sweep()
	if _, err := m.Get(s.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired job still present: err = %v", err)
	}
	if got := mt.Evicted.Value(); got != 1 {
		t.Fatalf("evicted_total = %d, want 1", got)
	}
}

func TestCapacityEvictionDropsOldestTerminal(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 1, TTL: -1, MaxJobs: 3})
	defer m.Close(context.Background())
	// Effective MaxJobs = QueueDepth+Workers+1 = 3.

	var ids []string
	for i := 0; i < 3; i++ {
		s := mustSubmit(t, m, func(ctx context.Context) (any, error) { return nil, nil })
		m.Wait(context.Background(), s.ID)
		ids = append(ids, s.ID)
	}
	// Store is at capacity with 3 terminal jobs; the next submit must evict
	// the oldest to make room.
	s := mustSubmit(t, m, func(ctx context.Context) (any, error) { return nil, nil })
	m.Wait(context.Background(), s.ID)
	if _, err := m.Get(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest terminal job not evicted: err = %v", err)
	}
	if _, err := m.Get(s.ID); err != nil {
		t.Fatalf("newest job missing: %v", err)
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 4})
	var ran sync.WaitGroup
	ran.Add(3)
	var ids []string
	for i := 0; i < 3; i++ {
		s := mustSubmit(t, m, func(ctx context.Context) (any, error) {
			ran.Done()
			return nil, nil
		})
		ids = append(ids, s.ID)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ran.Wait()
	for _, id := range ids {
		s, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s) after drain: %v", id, err)
		}
		if s.State != StateDone {
			t.Fatalf("job %s after drain: %s, want done", id, s.State)
		}
	}
	if _, err := m.Submit(func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrNotAccepting) {
		t.Fatalf("Submit after Close: %v, want ErrNotAccepting", err)
	}
	if st := m.Stats(); st.Accepting {
		t.Fatal("Stats().Accepting = true after Close")
	}
}

func TestCloseForceCancelsOnDeadline(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 2})
	stuck := mustSubmit(t, m, func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	waitState(t, m, stuck.ID, StateRunning)
	queued := mustSubmit(t, m, func(ctx context.Context) (any, error) { return nil, nil })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close: %v, want deadline exceeded", err)
	}
	for _, id := range []string{stuck.ID, queued.ID} {
		s, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if s.State != StateCanceled {
			t.Fatalf("job %s after forced close: %s, want canceled", id, s.State)
		}
	}
}

func TestTaskPanicBecomesFailure(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 1})
	defer m.Close(context.Background())

	s := mustSubmit(t, m, func(ctx context.Context) (any, error) { panic("kaboom") })
	fin, err := m.Wait(context.Background(), s.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	var pe *PanicError
	if fin.State != StateFailed || !errors.As(fin.Err, &pe) || pe.Value != "kaboom" {
		t.Fatalf("final = %v/%v, want failed/PanicError(kaboom)", fin.State, fin.Err)
	}
	// The worker must survive the panic.
	s2 := mustSubmit(t, m, func(ctx context.Context) (any, error) { return "alive", nil })
	fin2, _ := m.Wait(context.Background(), s2.ID)
	if fin2.State != StateDone {
		t.Fatalf("worker dead after panic: job 2 state = %s", fin2.State)
	}
}

func TestMetricsTerminalCounters(t *testing.T) {
	reg := obs.NewRegistry()
	mt := obs.NewJobsMetrics(reg)
	m := New(Config{Workers: 1, QueueDepth: 4, Metrics: mt})
	defer m.Close(context.Background())

	ok := mustSubmit(t, m, func(ctx context.Context) (any, error) { return nil, nil })
	m.Wait(context.Background(), ok.ID)
	bad := mustSubmit(t, m, func(ctx context.Context) (any, error) { return nil, errors.New("x") })
	m.Wait(context.Background(), bad.ID)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := sb.String()
	for _, want := range []string{
		`fta_jobs_total{state="done"} 1`,
		`fta_jobs_total{state="failed"} 1`,
		`fta_jobs_submitted_total 2`,
		"fta_jobs_queue_depth 0",
		"fta_jobs_running 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestConcurrentSubmitCancelGet(t *testing.T) {
	m := New(Config{Workers: 4, QueueDepth: 64})
	defer m.Close(context.Background())

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s, err := m.Submit(func(ctx context.Context) (any, error) { return i, nil })
				if errors.Is(err, ErrQueueFull) {
					continue
				}
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				if i%3 == 0 {
					m.Cancel(s.ID)
				}
				m.Get(s.ID)
				m.Stats()
			}
		}()
	}
	wg.Wait()
}

// TestJobTracing verifies that a trace ring wired into the manager records
// one trace per finished job, with the queued phase and the run phase as
// children of the job root, and that solve spans started inside the task
// nest under job.run.
func TestJobTracing(t *testing.T) {
	ring := obs.NewTraceRing(4)
	m := New(Config{Workers: 1, QueueDepth: 2, Traces: ring})
	defer m.Close(context.Background())

	s := mustSubmit(t, m, func(ctx context.Context) (any, error) {
		_, sp := obs.StartSpan(ctx, "work")
		defer sp.End()
		return "ok", nil
	})
	if _, err := m.Wait(context.Background(), s.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	traces := ring.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if !strings.HasPrefix(tr.Name, "job ") {
		t.Errorf("trace name = %q, want job <id>", tr.Name)
	}
	byName := make(map[string]obs.SpanRecord)
	for _, rec := range tr.Spans {
		byName[rec.Name] = rec
	}
	root, ok := byName["job"]
	if !ok {
		t.Fatalf("missing job root span in %v", tr.Spans)
	}
	if got := root.Attr("id"); got != s.ID {
		t.Errorf("job span id attr = %q, want %q", got, s.ID)
	}
	for _, name := range []string{"job.queued", "job.run"} {
		rec, ok := byName[name]
		if !ok {
			t.Fatalf("missing %s span in %v", name, tr.Spans)
		}
		if rec.Parent != root.ID {
			t.Errorf("%s parent = %d, want job root %d", name, rec.Parent, root.ID)
		}
	}
	work, ok := byName["work"]
	if !ok {
		t.Fatal("task-started span not recorded")
	}
	if work.Parent != byName["job.run"].ID {
		t.Errorf("work parent = %d, want job.run %d", work.Parent, byName["job.run"].ID)
	}
}

// TestJobTracingDisabled keeps the nil-ring fast path honest: no Traces
// config means no tracer is constructed and tasks see no span in their
// context.
func TestJobTracingDisabled(t *testing.T) {
	m := New(Config{Workers: 1, QueueDepth: 1})
	defer m.Close(context.Background())
	s := mustSubmit(t, m, func(ctx context.Context) (any, error) {
		if obs.SpanFromContext(ctx) != nil {
			t.Error("unexpected active span without a trace ring")
		}
		return nil, nil
	})
	if _, err := m.Wait(context.Background(), s.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}
