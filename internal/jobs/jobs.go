// Package jobs is the asynchronous solve-job subsystem of the fairtask
// service: a bounded FIFO queue with admission control, a fixed-size worker
// pool executing solves under per-job deadlines, a job lifecycle state
// machine, and a TTL- plus capacity-bounded result store.
//
// The design targets a continuously loaded assignment service. Synchronous
// request/response solving couples a client connection to a CPU-heavy
// computation; under heavy traffic that means unbounded concurrency and
// work wasted on disconnected clients. The manager instead admits at most
// QueueDepth pending solves (rejecting the rest immediately, so callers can
// answer 429 and shed load), runs them on Workers goroutines, and threads a
// per-job context.Context into the solver so both explicit cancellation and
// deadline expiry stop the iteration loops inside FGT/IEGT/MPTA and the
// VDPS dynamic program.
//
// Lifecycle: queued -> running -> done | failed | canceled. A job canceled
// while queued never runs. Terminal jobs stay queryable until evicted by
// TTL or by the store's capacity bound (oldest-terminal-first). Close
// drains: submission stops, queued jobs still execute, and only when the
// drain context expires are the survivors force-canceled.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"fairtask/internal/fault"
	"fairtask/internal/obs"
)

// State is a job lifecycle state.
type State string

// The job lifecycle states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Task is the unit of work a job executes. The context is canceled when the
// job is canceled, its deadline expires, or the manager force-stops during
// shutdown; tasks must observe it to make cancellation effective.
type Task func(ctx context.Context) (any, error)

// Sentinel errors returned by Submit, Get and Cancel.
var (
	// ErrQueueFull means the bounded queue has no room; callers should
	// reject the request (HTTP 429) rather than wait.
	ErrQueueFull = errors.New("jobs: queue is full")
	// ErrStoreFull means the result store holds MaxJobs non-evictable
	// (non-terminal) jobs; like ErrQueueFull it signals overload.
	ErrStoreFull = errors.New("jobs: result store is full")
	// ErrNotAccepting means the manager is draining or closed.
	ErrNotAccepting = errors.New("jobs: not accepting new jobs")
	// ErrNotFound means the job ID is unknown or already evicted.
	ErrNotFound = errors.New("jobs: no such job")
)

// Config parameterizes a Manager. The zero value of every field selects a
// production-safe default.
type Config struct {
	// Workers is the worker pool size. Zero means runtime.GOMAXPROCS(0):
	// solves are CPU-bound, so more workers than cores only adds contention.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs. Zero
	// means 64.
	QueueDepth int
	// TTL is how long a terminal job's result stays queryable. Zero means
	// 15 minutes; negative disables TTL eviction.
	TTL time.Duration
	// MaxJobs caps the result store. Zero means 4096. The effective cap is
	// raised to QueueDepth+Workers+1 so live jobs can always be stored.
	MaxJobs int
	// Timeout is the per-job execution deadline, measured from run start.
	// Zero means no deadline.
	Timeout time.Duration
	// Metrics receives the subsystem's telemetry. Nil disables it.
	Metrics *obs.JobsMetrics
	// Traces receives one span trace per executed job (a "job" root with
	// "job.queued" and "job.run" phases; solve-path spans nest under
	// "job.run"). Nil disables job tracing entirely — jobs then run without
	// an active span and every solve-path span site stays a nil check.
	Traces *obs.TraceRing
	// Retry re-executes failed job tasks under this policy — capped
	// exponential backoff with deterministic seeded jitter. The whole retry
	// loop runs inside the job's deadline (Timeout), and context
	// cancellation is never retried, so a canceled job stops immediately.
	// Nil or MaxAttempts < 2 disables retrying. A panicking attempt is
	// recovered into a *PanicError and counts as a retryable failure.
	Retry *fault.RetryPolicy
	// Fault receives retry telemetry (fta_retry_total{scope="jobs"}).
	// Nil disables it.
	Fault *obs.FaultMetrics
	// Logger receives job lifecycle logs. Nil disables logging.
	Logger *slog.Logger
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TTL == 0 {
		c.TTL = 15 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if min := c.QueueDepth + c.Workers + 1; c.MaxJobs < min {
		c.MaxJobs = min
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Snapshot is a point-in-time copy of a job's externally visible state.
type Snapshot struct {
	// ID is the job's opaque identifier.
	ID string
	// State is the lifecycle state at snapshot time.
	State State
	// SubmittedAt, StartedAt and FinishedAt are the lifecycle timestamps;
	// StartedAt/FinishedAt are zero until the transition happens.
	SubmittedAt, StartedAt, FinishedAt time.Time
	// Err is the failure or cancellation cause for failed/canceled jobs.
	Err error
	// Result is the task's return value for done jobs.
	Result any
	// Attempts is how many times the task ran (1 without retries; 0 for
	// jobs that never started).
	Attempts int
}

// job is the manager-internal record; all fields past task are guarded by
// Manager.mu.
type job struct {
	id        string
	task      Task
	ctx       context.Context
	cancel    context.CancelFunc
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       error
	result    any
	attempts  int
	cancelReq bool
	done      chan struct{} // closed on reaching a terminal state
}

// Manager owns the queue, the worker pool and the result store.
type Manager struct {
	cfg   Config
	queue chan *job

	rootCtx    context.Context
	rootCancel context.CancelFunc

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string // submission order, for oldest-first eviction scans
	accepting bool
	closed    bool
	running   int

	wg          sync.WaitGroup
	janitorStop chan struct{}
}

// New starts a Manager with cfg's worker pool and, when TTL eviction is
// enabled, a background janitor sweeping expired results.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:         cfg,
		queue:       make(chan *job, cfg.QueueDepth),
		jobs:        make(map[string]*job),
		accepting:   true,
		janitorStop: make(chan struct{}),
	}
	m.rootCtx, m.rootCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	if cfg.TTL > 0 {
		interval := cfg.TTL / 2
		if interval < time.Second {
			interval = time.Second
		}
		go m.janitor(interval)
	}
	return m
}

// Submit enqueues a task and returns the queued job's snapshot. It never
// blocks: a full queue returns ErrQueueFull, a store saturated with live
// jobs returns ErrStoreFull, and a draining manager returns ErrNotAccepting.
func (m *Manager) Submit(task Task) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.accepting {
		m.reject()
		return Snapshot{}, ErrNotAccepting
	}
	m.evictLocked(m.cfg.Clock())
	if len(m.jobs) >= m.cfg.MaxJobs {
		m.reject()
		return Snapshot{}, ErrStoreFull
	}

	j := &job{
		id:        newID(),
		task:      task,
		state:     StateQueued,
		submitted: m.cfg.Clock(),
		done:      make(chan struct{}),
	}
	j.ctx, j.cancel = context.WithCancel(m.rootCtx)
	select {
	case m.queue <- j:
	default:
		j.cancel()
		m.reject()
		return Snapshot{}, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if mt := m.cfg.Metrics; mt != nil {
		mt.Submitted.Inc()
		mt.QueueDepth.Inc()
	}
	if m.cfg.Logger != nil {
		m.cfg.Logger.Info("job queued", "job", j.id, "queue_depth", len(m.queue))
	}
	return snapshotLocked(j), nil
}

// reject counts a refused submission; callers hold m.mu.
func (m *Manager) reject() {
	if mt := m.cfg.Metrics; mt != nil {
		mt.Rejected.Inc()
	}
}

// Get returns the job's current snapshot, or ErrNotFound.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return Snapshot{}, ErrNotFound
	}
	return snapshotLocked(j), nil
}

// Cancel requests cancellation of a job. A queued job transitions to
// canceled immediately and never runs; a running job has its context
// canceled and transitions once the task observes it; a terminal job is
// left unchanged. The post-request snapshot is returned.
func (m *Manager) Cancel(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return Snapshot{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		j.cancelReq = true
		j.cancel()
		m.finishLocked(j, StateCanceled, context.Canceled, nil)
	case StateRunning:
		j.cancelReq = true
		j.cancel()
	}
	return snapshotLocked(j), nil
}

// Wait blocks until the job reaches a terminal state or ctx is done, and
// returns the final snapshot. Exposed for tests and embedders; the HTTP API
// polls instead.
func (m *Manager) Wait(ctx context.Context, id string) (Snapshot, error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return Snapshot{}, ErrNotFound
	}
	select {
	case <-j.done:
		return m.Get(id)
	case <-ctx.Done():
		return Snapshot{}, ctx.Err()
	}
}

// Stats reports the manager's admission state for readiness probes.
type Stats struct {
	// Accepting is false once draining has begun.
	Accepting bool `json:"accepting"`
	// QueueDepth and QueueCapacity describe the bounded queue.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Workers is the pool size; Running is how many are busy.
	Workers int `json:"workers"`
	Running int `json:"running"`
	// Stored is the number of jobs in the result store.
	Stored int `json:"stored"`
}

// Stats returns the current admission state.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Accepting:     m.accepting,
		QueueDepth:    len(m.queue),
		QueueCapacity: cap(m.queue),
		Workers:       m.cfg.Workers,
		Running:       m.running,
		Stored:        len(m.jobs),
	}
}

// Close drains the subsystem: submission stops immediately, queued jobs
// still execute, and the call blocks until every job reaches a terminal
// state. When ctx expires first, all remaining jobs are force-canceled and
// ctx.Err() is returned after the workers exit. Close is idempotent.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return nil
	}
	m.accepting = false
	m.closed = true
	close(m.queue)
	close(m.janitorStop)
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.forceCancel()
		<-done
		return ctx.Err()
	}
}

// forceCancel cancels the root context (stopping every running task) and
// marks still-queued jobs cancel-requested so the draining workers retire
// them as canceled instead of starting them.
func (m *Manager) forceCancel() {
	m.mu.Lock()
	for _, j := range m.jobs {
		if !j.state.Terminal() {
			j.cancelReq = true
		}
	}
	m.mu.Unlock()
	m.rootCancel()
}

// worker executes queued jobs until the queue is closed and drained.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// runJob drives one job through running to a terminal state.
func (m *Manager) runJob(j *job) {
	mt := m.cfg.Metrics
	m.mu.Lock()
	if mt != nil {
		mt.QueueDepth.Dec()
	}
	if j.state != StateQueued || j.cancelReq {
		// Canceled while queued (state already terminal), or force-canceled
		// during drain (still queued: retire without running).
		if !j.state.Terminal() {
			m.finishLocked(j, StateCanceled, context.Canceled, nil)
		}
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = m.cfg.Clock()
	m.running++
	wait := j.started.Sub(j.submitted)
	m.mu.Unlock()
	if mt != nil {
		mt.Running.Inc()
		mt.WaitSeconds.Observe(wait.Seconds())
	}

	ctx := j.ctx
	if m.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.cfg.Timeout)
		defer cancel()
	}
	// Job tracing: the tracer is anchored at submit time so the queued
	// phase sits on the timeline; the run span becomes the job context's
	// active span and the solve path nests under it.
	var tracer *obs.Tracer
	var rootSp, runSp *obs.Span
	if m.cfg.Traces != nil {
		tracer = obs.NewTracerAt(j.submitted)
		rootSp = tracer.Root("job")
		rootSp.SetAttr("id", j.id)
		tracer.RecordRange(rootSp, "job.queued", j.submitted, j.started)
		runSp = rootSp.Child("job.run")
		ctx = obs.ContextWithSpan(ctx, runSp)
	}
	result, err := m.execute(ctx, j)
	if tracer != nil {
		runSp.End()
		rootSp.End()
		m.cfg.Traces.Add(tracer.Collect("job " + j.id))
	}

	m.mu.Lock()
	m.running--
	switch {
	case j.cancelReq || errors.Is(err, context.Canceled):
		if err == nil {
			err = context.Canceled
		}
		m.finishLocked(j, StateCanceled, err, nil)
	case err != nil:
		m.finishLocked(j, StateFailed, err, nil)
	default:
		m.finishLocked(j, StateDone, nil, result)
	}
	m.mu.Unlock()
	if mt != nil {
		mt.Running.Dec()
	}
}

// finishLocked moves a job to a terminal state; callers hold m.mu.
func (m *Manager) finishLocked(j *job, state State, err error, result any) {
	j.state = state
	j.err = err
	j.result = result
	j.finished = m.cfg.Clock()
	close(j.done)
	if mt := m.cfg.Metrics; mt != nil {
		if !j.started.IsZero() {
			mt.RunSeconds.Observe(j.finished.Sub(j.started).Seconds())
		}
		switch state {
		case StateDone:
			mt.Done.Inc()
		case StateFailed:
			mt.Failed.Inc()
		case StateCanceled:
			mt.Canceled.Inc()
		}
	}
	if m.cfg.Logger != nil {
		attrs := []any{"job", j.id, "state", string(state)}
		if err != nil {
			attrs = append(attrs, "error", err.Error())
		}
		m.cfg.Logger.Info("job finished", attrs...)
	}
}

// fpRun is hit at the start of every job task attempt, so chaos specs can
// fail, delay or panic job executions ("jobs.run:err:3"). Disarmed it is one
// atomic load per attempt.
var fpRun = fault.Point("jobs.run")

// execute runs the job's task once, or under Config.Retry when retrying is
// enabled. Each attempt passes the jobs.run failpoint first, and a panicking
// attempt — task or failpoint — is recovered into a *PanicError, so retry
// treats panics like failures.
func (m *Manager) execute(ctx context.Context, j *job) (any, error) {
	var result any
	attempt := func(actx context.Context) (err error) {
		m.mu.Lock()
		j.attempts++
		m.mu.Unlock()
		// The recover covers the failpoint as well as the task, so a
		// panic-kind jobs.run arming is a retryable failure, not a dead
		// worker goroutine.
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Value: r}
			}
		}()
		if err := fpRun.Hit(actx); err != nil {
			return fmt.Errorf("jobs: run: %w", err)
		}
		result, err = runTask(actx, j.task)
		return err
	}
	p := m.cfg.Retry
	if p == nil || p.MaxAttempts < 2 {
		return result, attempt(ctx)
	}
	pol := *p
	chain := pol.OnRetry
	pol.OnRetry = func(n int, d time.Duration, err error) {
		if ft := m.cfg.Fault; ft != nil {
			ft.RetryJobs.Inc()
		}
		if m.cfg.Logger != nil {
			m.cfg.Logger.Warn("job attempt failed, retrying",
				"job", j.id, "attempt", n, "backoff", d, "error", err.Error())
		}
		if chain != nil {
			chain(n, d, err)
		}
	}
	err := fault.NewRetrier(pol).Do(ctx, attempt)
	if err != nil {
		var re *fault.RetryError
		if errors.As(err, &re) {
			if ft := m.cfg.Fault; ft != nil {
				ft.ExhaustedJobs.Inc()
			}
		}
		return nil, err
	}
	return result, nil
}

// runTask invokes the task, converting a panic into an error so one bad
// solve cannot take down the worker pool.
func runTask(ctx context.Context, task Task) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r}
		}
	}()
	return task(ctx)
}

// PanicError wraps a panic recovered from a job's task.
type PanicError struct{ Value any }

// Error implements error.
func (p *PanicError) Error() string { return "jobs: task panicked" }

// Sweep evicts expired and over-capacity terminal jobs now. The janitor
// calls it periodically; it is exported for embedders that disable the
// janitor (negative TTL) and for tests.
func (m *Manager) Sweep() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictLocked(m.cfg.Clock())
}

// janitor periodically sweeps the result store until Close.
func (m *Manager) janitor(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.Sweep()
		case <-m.janitorStop:
			return
		}
	}
}

// evictLocked drops terminal jobs past TTL, then — while the store is at or
// over capacity — the oldest terminal jobs; callers hold m.mu. Live jobs
// are never evicted.
func (m *Manager) evictLocked(now time.Time) {
	evicted := 0
	keep := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if j == nil {
			continue
		}
		expired := m.cfg.TTL > 0 && j.state.Terminal() && now.Sub(j.finished) >= m.cfg.TTL
		if expired {
			delete(m.jobs, id)
			evicted++
			continue
		}
		keep = append(keep, id)
	}
	m.order = keep
	if len(m.jobs) >= m.cfg.MaxJobs {
		keep = m.order[:0]
		for _, id := range m.order {
			j := m.jobs[id]
			if len(m.jobs) >= m.cfg.MaxJobs && j.state.Terminal() {
				delete(m.jobs, id)
				evicted++
				continue
			}
			keep = append(keep, id)
		}
		m.order = keep
	}
	if evicted > 0 {
		if mt := m.cfg.Metrics; mt != nil {
			mt.Evicted.Add(int64(evicted))
		}
	}
}

// snapshotLocked copies a job's visible state; callers hold m.mu.
func snapshotLocked(j *job) Snapshot {
	return Snapshot{
		ID:          j.id,
		State:       j.state,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
		Err:         j.err,
		Result:      j.result,
		Attempts:    j.attempts,
	}
}

// newID returns a 16-hex-character cryptographically random job ID.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it somehow
		// does, an ID collision is still vanishingly unlikely via time.
		return hex.EncodeToString([]byte(time.Now().Format(time.RFC3339Nano)))
	}
	return hex.EncodeToString(b[:])
}
