package jobs

import (
	"context"
	"testing"
)

// BenchmarkSubmitDrain measures full queue round-trips: enqueue a trivial
// job, let a worker dequeue and retire it, and wait for the terminal state.
func BenchmarkSubmitDrain(b *testing.B) {
	m := New(Config{Workers: 2, QueueDepth: 256, TTL: -1})
	defer m.Close(context.Background())
	task := Task(func(ctx context.Context) (any, error) { return nil, nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := m.Submit(task)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Wait(context.Background(), s.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubmitReject measures the admission-control fast path: every
// submission bounces off a full queue whose single worker is blocked.
func BenchmarkSubmitReject(b *testing.B) {
	m := New(Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	defer m.Close(context.Background())
	defer close(release)
	blocker := Task(func(ctx context.Context) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	})
	// Occupy the worker, wait for it to start, then fill the queue slot so
	// every bench-loop submission hits the rejection path.
	if _, err := m.Submit(blocker); err != nil {
		b.Fatal(err)
	}
	for m.Stats().Running == 0 {
	}
	for {
		if _, err := m.Submit(blocker); err != nil {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Submit(blocker); err == nil {
			b.Fatal("expected rejection")
		}
	}
}

// BenchmarkStats measures the readiness-probe path.
func BenchmarkStats(b *testing.B) {
	m := New(Config{Workers: 2, QueueDepth: 64})
	defer m.Close(context.Background())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Stats()
	}
}
