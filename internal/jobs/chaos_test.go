package jobs

import (
	"context"
	"errors"
	"testing"
	"time"

	"fairtask/internal/fault"
	"fairtask/internal/obs"
)

// fastRetry is a retry policy whose backoff is too short to slow tests down
// but long enough to exercise the real sleep path.
func fastRetry(attempts int) *fault.RetryPolicy {
	return &fault.RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
	}
}

func TestChaosJobRetrySucceeds(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	reg := obs.NewRegistry()
	ft := obs.NewFaultMetrics(reg)
	m := New(Config{Workers: 1, QueueDepth: 4, Retry: fastRetry(3), Fault: ft})
	defer m.Close(context.Background())

	// The first two attempts fail with an injected error; the third runs.
	fault.Lookup("jobs.run").Arm(fault.Behavior{Kind: fault.KindError, Count: 2})
	s := mustSubmit(t, m, func(ctx context.Context) (any, error) { return "ok", nil })
	fin, err := m.Wait(context.Background(), s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone || fin.Result != "ok" {
		t.Fatalf("final = %+v, want done/ok", fin)
	}
	if fin.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", fin.Attempts)
	}
	if got := ft.RetryJobs.Value(); got != 2 {
		t.Errorf("fta_retry_total{scope=jobs} = %d, want 2", got)
	}
	if got := ft.ExhaustedJobs.Value(); got != 0 {
		t.Errorf("fta_retry_exhausted_total{scope=jobs} = %d, want 0", got)
	}
}

func TestChaosJobRetryExhausted(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	reg := obs.NewRegistry()
	ft := obs.NewFaultMetrics(reg)
	m := New(Config{Workers: 1, QueueDepth: 4, Retry: fastRetry(2), Fault: ft})
	defer m.Close(context.Background())

	fault.Lookup("jobs.run").Arm(fault.Behavior{Kind: fault.KindError, Count: 100})
	s := mustSubmit(t, m, func(ctx context.Context) (any, error) { return "ok", nil })
	fin, err := m.Wait(context.Background(), s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateFailed {
		t.Fatalf("state = %s, want failed", fin.State)
	}
	// The failure chain must stay errors.Is/As-able through the retry and
	// injection wrappers.
	if !errors.Is(fin.Err, fault.ErrInjected) {
		t.Errorf("job error %v does not unwrap to fault.ErrInjected", fin.Err)
	}
	var re *fault.RetryError
	if !errors.As(fin.Err, &re) {
		t.Fatalf("job error %v is not a *fault.RetryError", fin.Err)
	}
	if re.Attempts != 2 {
		t.Errorf("RetryError.Attempts = %d, want 2", re.Attempts)
	}
	if fin.Attempts != 2 {
		t.Errorf("snapshot attempts = %d, want 2", fin.Attempts)
	}
	if got := ft.ExhaustedJobs.Value(); got != 1 {
		t.Errorf("fta_retry_exhausted_total{scope=jobs} = %d, want 1", got)
	}
}

// TestChaosJobPanicFailpointRecovered arms a panic-kind failpoint: the panic
// must be recovered into a retryable *PanicError instead of killing the
// worker goroutine, and the retry must then succeed.
func TestChaosJobPanicFailpointRecovered(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	m := New(Config{Workers: 1, QueueDepth: 4, Retry: fastRetry(2)})
	defer m.Close(context.Background())

	fault.Lookup("jobs.run").Arm(fault.Behavior{Kind: fault.KindPanic, Count: 1})
	s := mustSubmit(t, m, func(ctx context.Context) (any, error) { return 7, nil })
	fin, err := m.Wait(context.Background(), s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone || fin.Result != 7 {
		t.Fatalf("final = %+v, want done/7", fin)
	}
	if fin.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", fin.Attempts)
	}
}

// TestChaosJobCancellationNotRetried pins down that context cancellation
// stops the retry loop immediately: a canceled job must not burn its
// remaining attempts.
func TestChaosJobCancellationNotRetried(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	m := New(Config{Workers: 1, QueueDepth: 4, Retry: fastRetry(5)})
	defer m.Close(context.Background())

	started := make(chan struct{})
	s := mustSubmit(t, m, func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	if _, err := m.Cancel(s.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := m.Wait(context.Background(), s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", fin.State)
	}
	if fin.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (cancellation must not be retried)", fin.Attempts)
	}
}

// TestChaosQueueSaturationWithFaults drives the queue to saturation while
// every execution fails and retries: admission control must still reject
// overload crisply, and the manager must drain cleanly afterwards.
func TestChaosQueueSaturationWithFaults(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	m := New(Config{Workers: 2, QueueDepth: 2, Retry: fastRetry(3)})

	release := make(chan struct{})
	// Occupy both workers with blocking tasks, then fill the queue.
	for i := 0; i < 2; i++ {
		mustSubmit(t, m, sleepTask(release))
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Running < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never picked up the blocking jobs")
		}
		time.Sleep(time.Millisecond)
	}
	// Every execution from here on fails and retries; the queued jobs churn
	// through their retry budgets during the drain below.
	fault.Lookup("jobs.run").Arm(fault.Behavior{Kind: fault.KindError, Count: 1000})
	for i := 0; i < 2; i++ {
		mustSubmit(t, m, func(ctx context.Context) (any, error) { return nil, nil })
	}
	if _, err := m.Submit(func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated Submit err = %v, want ErrQueueFull", err)
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("Close with faults armed: %v", err)
	}
}

// TestChaosRetryScheduleDeterministic re-runs an identical failing job under
// the same seeded policy and demands the identical backoff schedule.
func TestChaosRetryScheduleDeterministic(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	run := func() []time.Duration {
		var delays []time.Duration
		pol := fastRetry(4)
		pol.Jitter = 0.5
		pol.Seed = 99
		pol.OnRetry = func(_ int, d time.Duration, _ error) { delays = append(delays, d) }
		m := New(Config{Workers: 1, QueueDepth: 2, Retry: pol})
		defer m.Close(context.Background())

		fault.Lookup("jobs.run").Arm(fault.Behavior{Kind: fault.KindError, Count: 1000})
		s := mustSubmit(t, m, func(ctx context.Context) (any, error) { return nil, nil })
		if _, err := m.Wait(context.Background(), s.ID); err != nil {
			t.Fatal(err)
		}
		return delays
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("retry counts = %d, %d, want 3 each", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff schedules diverge at retry %d: %v vs %v", i, a, b)
		}
	}
}

// TestChaosSleepFailpointNeverHangs arms a latency failpoint far longer than
// the job timeout: the injected sleep must yield to the context instead of
// hanging the worker.
func TestChaosSleepFailpointNeverHangs(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	m := New(Config{Workers: 1, QueueDepth: 2, Timeout: 20 * time.Millisecond})
	defer m.Close(context.Background())

	fault.Lookup("jobs.run").Arm(fault.Behavior{Kind: fault.KindSleep, Delay: time.Hour})
	s := mustSubmit(t, m, func(ctx context.Context) (any, error) { return nil, nil })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	fin, err := m.Wait(ctx, s.ID)
	if err != nil {
		t.Fatalf("job hung on an injected sleep: %v", err)
	}
	if fin.State != StateFailed && fin.State != StateCanceled {
		t.Fatalf("state = %s, want failed or canceled", fin.State)
	}
	if !errors.Is(fin.Err, context.DeadlineExceeded) && !errors.Is(fin.Err, context.Canceled) {
		t.Errorf("err = %v, want a context error", fin.Err)
	}
}
