// Package cluster implements k-means clustering over 2D points.
//
// The paper derives delivery points for the gMission dataset by k-means
// clustering task locations into x clusters (x = 20, 40, 60, 80, 100) and
// treating each centroid as a delivery point; the tasks of a cluster are the
// deliveries to that point. This package is that substrate.
package cluster

import (
	"errors"
	"math"
	"math/rand"

	"fairtask/internal/geo"
)

// Result describes a k-means clustering of a point set.
type Result struct {
	// Centroids holds the final cluster centers, len == K.
	Centroids []geo.Point
	// Assign maps each input point index to its cluster index in Centroids.
	Assign []int
	// Inertia is the sum of squared Euclidean distances from each point to
	// its assigned centroid (the k-means objective value).
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// Options configure KMeans.
type Options struct {
	// MaxIterations bounds the Lloyd loop; 0 means the default of 100.
	MaxIterations int
	// Tolerance stops iteration when the relative inertia improvement drops
	// below it; 0 means the default of 1e-6.
	Tolerance float64
	// Rand supplies the randomness for k-means++ seeding. Nil means a fixed
	// deterministic source (seed 1).
	Rand *rand.Rand
}

// Errors returned by KMeans.
var (
	ErrNoPoints   = errors.New("cluster: no input points")
	ErrBadK       = errors.New("cluster: k must be >= 1")
	ErrKTooLarge  = errors.New("cluster: k exceeds number of points")
	ErrNotFinites = errors.New("cluster: input contains non-finite coordinates")
)

// KMeans clusters pts into k groups using k-means++ seeding followed by
// Lloyd iterations. The run is deterministic for a given Options.Rand.
func KMeans(pts []geo.Point, k int, opt Options) (*Result, error) {
	if len(pts) == 0 {
		return nil, ErrNoPoints
	}
	if k < 1 {
		return nil, ErrBadK
	}
	if k > len(pts) {
		return nil, ErrKTooLarge
	}
	for _, p := range pts {
		if !p.IsFinite() {
			return nil, ErrNotFinites
		}
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = 100
	}
	tol := opt.Tolerance
	if tol <= 0 {
		tol = 1e-6
	}
	rng := opt.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}

	centroids := seedPlusPlus(pts, k, rng)
	assign := make([]int, len(pts))
	prevInertia := math.Inf(1)
	iters := 0
	var inertia float64
	for iters = 1; iters <= maxIter; iters++ {
		inertia = assignAll(pts, centroids, assign)
		recompute(pts, assign, centroids, rng)
		if prevInertia-inertia <= tol*math.Max(prevInertia, 1) {
			break
		}
		prevInertia = inertia
	}
	// Final assignment against the last centroid update.
	inertia = assignAll(pts, centroids, assign)
	return &Result{
		Centroids:  centroids,
		Assign:     assign,
		Inertia:    inertia,
		Iterations: iters,
	}, nil
}

// seedPlusPlus picks k initial centers with the k-means++ D^2 weighting.
func seedPlusPlus(pts []geo.Point, k int, rng *rand.Rand) []geo.Point {
	centroids := make([]geo.Point, 0, k)
	centroids = append(centroids, pts[rng.Intn(len(pts))])
	d2 := make([]float64, len(pts))
	for len(centroids) < k {
		var total float64
		for i, p := range pts {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with existing centers; duplicate
			// an arbitrary point to keep len(centroids) == k.
			centroids = append(centroids, pts[rng.Intn(len(pts))])
			continue
		}
		target := rng.Float64() * total
		idx := 0
		for i, w := range d2 {
			target -= w
			if target <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, pts[idx])
	}
	return centroids
}

// assignAll assigns each point to its nearest centroid, filling assign, and
// returns the total inertia.
func assignAll(pts []geo.Point, centroids []geo.Point, assign []int) float64 {
	var inertia float64
	for i, p := range pts {
		best, bestD := 0, math.Inf(1)
		for j, c := range centroids {
			if d := sqDist(p, c); d < bestD {
				best, bestD = j, d
			}
		}
		assign[i] = best
		inertia += bestD
	}
	return inertia
}

// recompute moves each centroid to the mean of its assigned points. Empty
// clusters are re-seeded on a random input point so k is preserved.
func recompute(pts []geo.Point, assign []int, centroids []geo.Point, rng *rand.Rand) {
	sums := make([]geo.Point, len(centroids))
	counts := make([]int, len(centroids))
	for i, p := range pts {
		c := assign[i]
		sums[c] = sums[c].Add(p)
		counts[c]++
	}
	for j := range centroids {
		if counts[j] == 0 {
			centroids[j] = pts[rng.Intn(len(pts))]
			continue
		}
		centroids[j] = sums[j].Scale(1 / float64(counts[j]))
	}
}

func sqDist(a, b geo.Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}
