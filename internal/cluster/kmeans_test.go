package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fairtask/internal/geo"
)

func TestKMeansErrors(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 1)}
	if _, err := KMeans(nil, 1, Options{}); err != ErrNoPoints {
		t.Errorf("empty input: err = %v, want ErrNoPoints", err)
	}
	if _, err := KMeans(pts, 0, Options{}); err != ErrBadK {
		t.Errorf("k=0: err = %v, want ErrBadK", err)
	}
	if _, err := KMeans(pts, 3, Options{}); err != ErrKTooLarge {
		t.Errorf("k>n: err = %v, want ErrKTooLarge", err)
	}
	if _, err := KMeans([]geo.Point{geo.Pt(math.NaN(), 0)}, 1, Options{}); err != ErrNotFinites {
		t.Errorf("NaN input: err = %v, want ErrNotFinites", err)
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(2, 0), geo.Pt(1, 3)}
	res, err := KMeans(pts, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := geo.Centroid(pts)
	got := res.Centroids[0]
	if math.Abs(got.X-want.X) > 1e-9 || math.Abs(got.Y-want.Y) > 1e-9 {
		t.Errorf("k=1 centroid = %v, want %v", got, want)
	}
	for i, a := range res.Assign {
		if a != 0 {
			t.Errorf("point %d assigned to %d, want 0", i, a)
		}
	}
}

func TestKMeansSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pts []geo.Point
	blobs := []geo.Point{geo.Pt(0, 0), geo.Pt(100, 0), geo.Pt(50, 100)}
	for _, b := range blobs {
		for i := 0; i < 40; i++ {
			pts = append(pts, geo.Point{
				X: b.X + rng.NormFloat64(),
				Y: b.Y + rng.NormFloat64(),
			})
		}
	}
	res, err := KMeans(pts, 3, Options{Rand: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	// Each found centroid should be within 5 units of a true blob center,
	// and each blob should be matched by some centroid.
	matched := make([]bool, len(blobs))
	for _, c := range res.Centroids {
		found := false
		for i, b := range blobs {
			if math.Hypot(c.X-b.X, c.Y-b.Y) < 5 {
				matched[i] = true
				found = true
			}
		}
		if !found {
			t.Errorf("centroid %v matches no blob", c)
		}
	}
	for i, m := range matched {
		if !m {
			t.Errorf("blob %d unmatched", i)
		}
	}
}

// Invariant: every point is assigned to its nearest centroid.
func TestKMeansNearestAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([]geo.Point, 200)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	res, err := KMeans(pts, 8, Options{Rand: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		got := res.Assign[i]
		gotD := sqDist(p, res.Centroids[got])
		for j, c := range res.Centroids {
			if d := sqDist(p, c); d < gotD-1e-9 {
				t.Fatalf("point %d assigned to %d (d2=%g) but %d is closer (d2=%g)",
					i, got, gotD, j, d)
			}
		}
	}
}

// Invariant: inertia equals the recomputed sum of squared distances.
func TestKMeansInertiaConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := make([]geo.Point, 100)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	res, err := KMeans(pts, 4, Options{Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, p := range pts {
		sum += sqDist(p, res.Centroids[res.Assign[i]])
	}
	if math.Abs(sum-res.Inertia) > 1e-6 {
		t.Errorf("inertia = %g, recomputed = %g", res.Inertia, sum)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := make([]geo.Point, 60)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64(), rng.Float64())
	}
	a, err := KMeans(pts, 5, Options{Rand: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, 5, Options{Rand: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Errorf("same seed produced different inertia: %g vs %g", a.Inertia, b.Inertia)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("same seed produced different assignment at %d", i)
		}
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	pts := make([]geo.Point, 10)
	for i := range pts {
		pts[i] = geo.Pt(1, 1)
	}
	res, err := KMeans(pts, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("identical points should yield zero inertia, got %g", res.Inertia)
	}
}

// Property: k-means with k == len(pts) on distinct points reaches zero
// inertia (each point becomes its own cluster), and assignments stay in range.
func TestKMeansProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		count := int(n%20) + 2
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geo.Point, count)
		seen := map[geo.Point]bool{}
		for i := range pts {
			for {
				p := geo.Pt(float64(rng.Intn(1000)), float64(rng.Intn(1000)))
				if !seen[p] {
					seen[p] = true
					pts[i] = p
					break
				}
			}
		}
		k := rng.Intn(count) + 1
		res, err := KMeans(pts, k, Options{Rand: rng})
		if err != nil {
			return false
		}
		for _, a := range res.Assign {
			if a < 0 || a >= k {
				return false
			}
		}
		return res.Inertia >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKMeansOptionKnobs(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pts := make([]geo.Point, 80)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	// A single Lloyd iteration must not beat a fully converged run.
	one, err := KMeans(pts, 5, Options{MaxIterations: 1, Rand: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	full, err := KMeans(pts, 5, Options{Rand: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	if full.Inertia > one.Inertia+1e-9 {
		t.Errorf("converged inertia %g above single-iteration %g", full.Inertia, one.Inertia)
	}
	if one.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", one.Iterations)
	}
	// A huge tolerance stops immediately after the first measurement.
	loose, err := KMeans(pts, 5, Options{Tolerance: 1e9, Rand: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Iterations > 2 {
		t.Errorf("loose tolerance ran %d iterations", loose.Iterations)
	}
}
