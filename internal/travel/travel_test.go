package travel

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"fairtask/internal/geo"
)

func TestNewModelRejectsBadSpeed(t *testing.T) {
	for _, speed := range []float64{0, -1, -0.001} {
		if _, err := NewModel(geo.Euclidean{}, speed); !errors.Is(err, ErrBadSpeed) {
			t.Errorf("speed %g: err = %v, want ErrBadSpeed", speed, err)
		}
	}
}

func TestNewModelDefaultsToEuclidean(t *testing.T) {
	m, err := NewModel(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Metric().Name() != "euclidean" {
		t.Errorf("default metric = %q, want euclidean", m.Metric().Name())
	}
}

func TestTimeScalesWithSpeed(t *testing.T) {
	a, b := geo.Pt(0, 0), geo.Pt(3, 4)
	slow := MustModel(geo.Euclidean{}, 1)
	fast := MustModel(geo.Euclidean{}, 5)
	if got := slow.Time(a, b); math.Abs(got-5) > 1e-9 {
		t.Errorf("slow.Time = %g, want 5", got)
	}
	if got := fast.Time(a, b); math.Abs(got-1) > 1e-9 {
		t.Errorf("fast.Time = %g, want 1", got)
	}
	if got := fast.Distance(a, b); math.Abs(got-5) > 1e-9 {
		t.Errorf("Distance = %g, want 5", got)
	}
}

func TestMustModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustModel with bad speed did not panic")
		}
	}()
	MustModel(nil, 0)
}

func TestValid(t *testing.T) {
	var zero Model
	if zero.Valid() {
		t.Error("zero Model reported valid")
	}
	if !MustModel(nil, 2).Valid() {
		t.Error("constructed Model reported invalid")
	}
}

// Property: time is distance/speed for arbitrary finite points and speeds.
func TestTimeDistanceConsistency(t *testing.T) {
	f := func(ax, ay, bx, by int16, s uint8) bool {
		speed := float64(s%50) + 0.5
		m := MustModel(geo.Euclidean{}, speed)
		a, b := geo.Pt(float64(ax), float64(ay)), geo.Pt(float64(bx), float64(by))
		return math.Abs(m.Time(a, b)*speed-m.Distance(a, b)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
