// Package travel converts distances into travel times.
//
// The paper assumes workers move at a constant speed (5 km/h in the
// experiments); travel time between two locations is distance divided by
// speed under a chosen distance metric.
package travel

import (
	"errors"
	"fmt"

	"fairtask/internal/geo"
)

// ErrBadSpeed is returned by NewModel for non-positive speeds.
var ErrBadSpeed = errors.New("travel: speed must be positive")

// Model computes travel time and distance between locations.
// The zero Model is not usable; construct one with NewModel.
type Model struct {
	metric geo.Metric
	speed  float64
}

// NewModel returns a travel model over the given metric at the given constant
// speed. Speed units are distance-units per time-unit (the experiments use
// km and hours). A nil metric defaults to Euclidean.
func NewModel(metric geo.Metric, speed float64) (Model, error) {
	if speed <= 0 {
		return Model{}, fmt.Errorf("%w: %g", ErrBadSpeed, speed)
	}
	if metric == nil {
		metric = geo.Euclidean{}
	}
	return Model{metric: metric, speed: speed}, nil
}

// MustModel is NewModel that panics on error, for tests and literals.
func MustModel(metric geo.Metric, speed float64) Model {
	m, err := NewModel(metric, speed)
	if err != nil {
		panic(err)
	}
	return m
}

// Speed returns the model's constant speed.
func (m Model) Speed() float64 { return m.speed }

// Metric returns the model's distance metric.
func (m Model) Metric() geo.Metric { return m.metric }

// Distance returns the travel distance between a and b.
func (m Model) Distance(a, b geo.Point) float64 {
	return m.metric.Distance(a, b)
}

// Time returns the travel time between a and b (the paper's c(a, b)).
func (m Model) Time(a, b geo.Point) float64 {
	return m.metric.Distance(a, b) / m.speed
}

// Valid reports whether the model was constructed via NewModel.
func (m Model) Valid() bool { return m.speed > 0 && m.metric != nil }
