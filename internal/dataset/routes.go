package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"fairtask/internal/model"
	"fairtask/internal/payoff"
)

// ErrAssignmentCSV is the sentinel wrapped by every ReadAssignmentCSV
// rejection — malformed rows, unknown IDs, duplicate or missing stops.
// Classify parse failures with errors.Is without matching message text.
var ErrAssignmentCSV = errors.New("dataset: invalid assignment csv")

// WriteAssignmentCSV writes the routes of a per-center assignment set as a
// flat CSV for downstream tooling (dispatch systems, dashboards). One row
// per visited delivery point:
//
//	center,worker,stop,point,arrival,reward,payoff
//
// where stop is the 0-based position in the worker's route, arrival the
// worker's arrival time at the point in hours, reward the point's total
// task reward, and payoff the worker's overall payoff (repeated per row).
// assignments must be indexed like problem.Instances.
func WriteAssignmentCSV(w io.Writer, p *model.Problem, assignments []*model.Assignment) error {
	if len(assignments) != len(p.Instances) {
		return fmt.Errorf("dataset: %d assignments for %d instances",
			len(assignments), len(p.Instances))
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"center", "worker", "stop", "point", "arrival", "reward", "payoff"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range p.Instances {
		in := &p.Instances[i]
		a := assignments[i]
		if a == nil {
			continue
		}
		if err := a.Validate(in); err != nil {
			return fmt.Errorf("dataset: center %d: %w", in.CenterID, err)
		}
		for wi, route := range a.Routes {
			if len(route) == 0 {
				continue
			}
			arr := in.RouteArrivals(wi, route)
			pf := payoff.Worker(in, wi, route)
			for stop, pt := range route {
				rec := []string{
					strconv.Itoa(in.CenterID),
					strconv.Itoa(in.Workers[wi].ID),
					strconv.Itoa(stop),
					strconv.Itoa(in.Points[pt].ID),
					f(arr[stop]),
					f(in.Points[pt].TotalReward()),
					f(pf),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadAssignmentCSV parses the WriteAssignmentCSV format back into per-center
// assignments indexed like p.Instances, resolving center, worker and point
// IDs against the problem. Centers absent from the file get empty (not nil)
// assignments, so the result can be audited or re-written directly. The
// arrival, reward and payoff columns are ignored: they are derived data, and
// re-deriving them is exactly what the auditor is for.
func ReadAssignmentCSV(r io.Reader, p *model.Problem) ([]*model.Assignment, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 7
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: read header: %v", ErrAssignmentCSV, err)
	}
	want := []string{"center", "worker", "stop", "point", "arrival", "reward", "payoff"}
	for i, col := range want {
		if header[i] != col {
			return nil, fmt.Errorf("%w: column %d is %q, want %q", ErrAssignmentCSV, i, header[i], col)
		}
	}

	centers := make(map[int]int, len(p.Instances))
	workers := make([]map[int]int, len(p.Instances))
	points := make([]map[int]int, len(p.Instances))
	for i := range p.Instances {
		in := &p.Instances[i]
		centers[in.CenterID] = i
		workers[i] = make(map[int]int, len(in.Workers))
		for wi := range in.Workers {
			workers[i][in.Workers[wi].ID] = wi
		}
		points[i] = make(map[int]int, len(in.Points))
		for pi := range in.Points {
			points[i][in.Points[pi].ID] = pi
		}
	}

	// stops[instance][worker] maps stop position -> point index; routes are
	// materialized after reading so row order does not matter.
	type routeKey struct{ inst, worker int }
	stops := make(map[routeKey]map[int]int)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrAssignmentCSV, line, err)
		}
		centerID, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad center %q", ErrAssignmentCSV, line, rec[0])
		}
		inst, ok := centers[centerID]
		if !ok {
			return nil, fmt.Errorf("%w: line %d: unknown center %d", ErrAssignmentCSV, line, centerID)
		}
		workerID, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad worker %q", ErrAssignmentCSV, line, rec[1])
		}
		wi, ok := workers[inst][workerID]
		if !ok {
			return nil, fmt.Errorf("%w: line %d: unknown worker %d in center %d",
				ErrAssignmentCSV, line, workerID, centerID)
		}
		stop, err := strconv.Atoi(rec[2])
		if err != nil || stop < 0 {
			return nil, fmt.Errorf("%w: line %d: bad stop %q", ErrAssignmentCSV, line, rec[2])
		}
		pointID, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad point %q", ErrAssignmentCSV, line, rec[3])
		}
		pi, ok := points[inst][pointID]
		if !ok {
			return nil, fmt.Errorf("%w: line %d: unknown point %d in center %d",
				ErrAssignmentCSV, line, pointID, centerID)
		}
		k := routeKey{inst, wi}
		if stops[k] == nil {
			stops[k] = make(map[int]int)
		}
		if _, dup := stops[k][stop]; dup {
			return nil, fmt.Errorf("%w: line %d: duplicate stop %d for worker %d in center %d",
				ErrAssignmentCSV, line, stop, workerID, centerID)
		}
		stops[k][stop] = pi
	}

	out := make([]*model.Assignment, len(p.Instances))
	for i := range p.Instances {
		out[i] = model.NewAssignment(len(p.Instances[i].Workers))
	}
	for k, byStop := range stops {
		route := make([]int, len(byStop))
		for stop, pi := range byStop {
			if stop >= len(route) {
				in := &p.Instances[k.inst]
				return nil, fmt.Errorf("%w: center %d worker %d: stop %d with only %d stops (missing earlier stop)",
					ErrAssignmentCSV, in.CenterID, in.Workers[k.worker].ID, stop, len(byStop))
			}
			route[stop] = pi
		}
		out[k.inst].Routes[k.worker] = route
	}
	return out, nil
}
