package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"fairtask/internal/model"
	"fairtask/internal/payoff"
)

// WriteAssignmentCSV writes the routes of a per-center assignment set as a
// flat CSV for downstream tooling (dispatch systems, dashboards). One row
// per visited delivery point:
//
//	center,worker,stop,point,arrival,reward,payoff
//
// where stop is the 0-based position in the worker's route, arrival the
// worker's arrival time at the point in hours, reward the point's total
// task reward, and payoff the worker's overall payoff (repeated per row).
// assignments must be indexed like problem.Instances.
func WriteAssignmentCSV(w io.Writer, p *model.Problem, assignments []*model.Assignment) error {
	if len(assignments) != len(p.Instances) {
		return fmt.Errorf("dataset: %d assignments for %d instances",
			len(assignments), len(p.Instances))
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"center", "worker", "stop", "point", "arrival", "reward", "payoff"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range p.Instances {
		in := &p.Instances[i]
		a := assignments[i]
		if a == nil {
			continue
		}
		if err := a.Validate(in); err != nil {
			return fmt.Errorf("dataset: center %d: %w", in.CenterID, err)
		}
		for wi, route := range a.Routes {
			if len(route) == 0 {
				continue
			}
			arr := in.RouteArrivals(wi, route)
			pf := payoff.Worker(in, wi, route)
			for stop, pt := range route {
				rec := []string{
					strconv.Itoa(in.CenterID),
					strconv.Itoa(in.Workers[wi].ID),
					strconv.Itoa(stop),
					strconv.Itoa(in.Points[pt].ID),
					f(arr[stop]),
					f(in.Points[pt].TotalReward()),
					f(pf),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
