package dataset

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// fixtureGMission builds raw CSV content mimicking an exported gMission
// dump: clustered tasks plus a handful of workers.
func fixtureGMission(nTasks, nWorkers int) (tasks, workers string) {
	rng := rand.New(rand.NewSource(3))
	var tb, wb strings.Builder
	for i := 0; i < nTasks; i++ {
		cx, cy := float64(rng.Intn(3)), float64(rng.Intn(3))
		fmt.Fprintf(&tb, "%d,%g,%g,%g,%g\n",
			i, cx+rng.Float64()*0.3, cy+rng.Float64()*0.3,
			0.5+rng.Float64()*2, 1.0)
	}
	for w := 0; w < nWorkers; w++ {
		fmt.Fprintf(&wb, "%d,%g,%g,%d\n", w, rng.Float64()*3, rng.Float64()*3, 3)
	}
	return tb.String(), wb.String()
}

func TestLoadGMission(t *testing.T) {
	tasks, workers := fixtureGMission(120, 10)
	in, err := LoadGMission(strings.NewReader(tasks), strings.NewReader(workers),
		GMissionOptions{DeliveryPoints: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("loaded instance invalid: %v", err)
	}
	if in.TaskCount() != 120 {
		t.Errorf("tasks = %d, want 120", in.TaskCount())
	}
	if len(in.Workers) != 10 {
		t.Errorf("workers = %d, want 10", len(in.Workers))
	}
	if len(in.Points) == 0 || len(in.Points) > 15 {
		t.Errorf("points = %d", len(in.Points))
	}
	// The center must be the centroid of task locations: inside the data
	// bounding box (tasks live in [0, 3.3]^2).
	if in.Center.X < 0 || in.Center.X > 3.3 || in.Center.Y < 0 || in.Center.Y > 3.3 {
		t.Errorf("center %v outside data region", in.Center)
	}
}

func TestLoadGMissionClusterCap(t *testing.T) {
	tasks, workers := fixtureGMission(8, 2)
	in, err := LoadGMission(strings.NewReader(tasks), strings.NewReader(workers),
		GMissionOptions{DeliveryPoints: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Points) > 8 {
		t.Errorf("points = %d, want <= task count", len(in.Points))
	}
}

func TestLoadGMissionRejectsGarbage(t *testing.T) {
	good, workers := fixtureGMission(5, 2)
	cases := []struct {
		name           string
		tasks, workers string
	}{
		{"empty tasks", "", workers},
		{"bad task id", "x,1,1,1,1\n", workers},
		{"bad task coord", "1,zz,1,1,1\n", workers},
		{"short task row", "1,2,3\n", workers},
		{"bad worker id", good, "x,1,1,3\n"},
		{"bad worker maxdp", good, "1,1,1,zz\n"},
	}
	for _, c := range cases {
		if _, err := LoadGMission(strings.NewReader(c.tasks), strings.NewReader(c.workers),
			GMissionOptions{}); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestLoadGMissionSolvesEndToEnd(t *testing.T) {
	tasks, workers := fixtureGMission(80, 6)
	in, err := LoadGMission(strings.NewReader(tasks), strings.NewReader(workers),
		GMissionOptions{DeliveryPoints: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Loaded data must be directly solvable: exercised via the exported
	// dataset -> vdps pipeline at the integration level (root tests); here
	// we just confirm the instance is structurally complete.
	if in.TotalReward() != 80 {
		t.Errorf("total reward = %g, want 80 (unit rewards)", in.TotalReward())
	}
}
