package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"fairtask/internal/cluster"
	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/travel"
)

// GMission raw-file support: the paper evaluates on the gMission dataset
// [29], which this container cannot download. When you have the data,
// export it to two headerless CSV files and load them here; the same
// preprocessing as the paper (centroid distribution center, k-means
// delivery points) is then applied.
//
//	tasks.csv:   task_id,x,y,expiry_hours,reward
//	workers.csv: worker_id,x,y,maxdp
//
// Coordinates must share one planar unit (km after projection).

// GMissionOptions configure LoadGMission.
type GMissionOptions struct {
	// DeliveryPoints is the k-means cluster count x (Table I: 20..100).
	// Zero means 100, capped at the task count.
	DeliveryPoints int
	// Speed is the worker speed in km/h. Zero means 5.
	Speed float64
	// Seed drives the k-means seeding.
	Seed int64
}

// ErrBadGMission reports malformed raw gMission rows.
var ErrBadGMission = fmt.Errorf("dataset: malformed gMission CSV")

// gmTask is one raw task row.
type gmTask struct {
	id     int
	loc    geo.Point
	expiry float64
	reward float64
}

// LoadGMission reads raw task and worker CSVs (schema above) and builds the
// single-center instance exactly as the paper preprocesses gMission: the
// distribution center at the centroid of all task locations and delivery
// points from k-means clustering of the tasks.
func LoadGMission(tasks, workers io.Reader, opt GMissionOptions) (*model.Instance, error) {
	rawTasks, err := readGMissionTasks(tasks)
	if err != nil {
		return nil, err
	}
	if len(rawTasks) == 0 {
		return nil, fmt.Errorf("%w: no tasks", ErrBadGMission)
	}
	rawWorkers, err := readGMissionWorkers(workers)
	if err != nil {
		return nil, err
	}

	k := opt.DeliveryPoints
	if k <= 0 {
		k = 100
	}
	if k > len(rawTasks) {
		k = len(rawTasks)
	}
	speed := opt.Speed
	if speed <= 0 {
		speed = 5
	}
	tm, err := travel.NewModel(geo.Euclidean{}, speed)
	if err != nil {
		return nil, err
	}

	locs := make([]geo.Point, len(rawTasks))
	for i, t := range rawTasks {
		locs[i] = t.loc
	}
	center, _ := geo.Centroid(locs)
	km, err := cluster.KMeans(locs, k, cluster.Options{
		Rand: newSeededRand(opt.Seed),
	})
	if err != nil {
		return nil, fmt.Errorf("dataset: clustering gMission tasks: %w", err)
	}

	in := &model.Instance{Center: center, Travel: tm}
	remap := make([]int, len(km.Centroids))
	for i := range remap {
		remap[i] = -1
	}
	for ci, cent := range km.Centroids {
		used := false
		for _, a := range km.Assign {
			if a == ci {
				used = true
				break
			}
		}
		if !used {
			continue
		}
		remap[ci] = len(in.Points)
		in.Points = append(in.Points, model.DeliveryPoint{
			ID:  len(in.Points),
			Loc: cent,
		})
	}
	for ti, a := range km.Assign {
		pi := remap[a]
		t := rawTasks[ti]
		in.Points[pi].Tasks = append(in.Points[pi].Tasks, model.Task{
			ID:     t.id,
			Point:  pi,
			Expiry: t.expiry,
			Reward: t.reward,
		})
	}
	in.Workers = rawWorkers
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

func readGMissionTasks(r io.Reader) ([]gmTask, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	var out []gmTask
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: tasks line %d: %v", ErrBadGMission, line, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("%w: tasks line %d: bad id", ErrBadGMission, line)
		}
		vals := make([]float64, 4)
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: tasks line %d: bad field %d", ErrBadGMission, line, i+1)
			}
			vals[i] = v
		}
		out = append(out, gmTask{
			id:     id,
			loc:    geo.Pt(vals[0], vals[1]),
			expiry: vals[2],
			reward: vals[3],
		})
	}
	return out, nil
}

func readGMissionWorkers(r io.Reader) ([]model.Worker, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	var out []model.Worker
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: workers line %d: %v", ErrBadGMission, line, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("%w: workers line %d: bad id", ErrBadGMission, line)
		}
		x, err1 := strconv.ParseFloat(rec[1], 64)
		y, err2 := strconv.ParseFloat(rec[2], 64)
		maxDP, err3 := strconv.Atoi(rec[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%w: workers line %d", ErrBadGMission, line)
		}
		out = append(out, model.Worker{ID: id, Loc: geo.Pt(x, y), MaxDP: maxDP})
	}
	return out, nil
}

// newSeededRand returns a deterministic rand source for the loader.
func newSeededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
