package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/travel"
)

// CSV persistence: a problem is a flat record stream with one row per
// entity, so instances can be inspected with standard tooling and exchanged
// between runs. The schema is:
//
//	kind,center,id,x,y,a,b
//
// where kind is one of "meta", "center", "point", "task", "worker":
//
//	meta:   center = speed, id unused, a = metric name
//	center: center = center ID, x/y = location
//	point:  center = center ID, id = point ID, x/y = location
//	task:   center = center ID, id = task ID, x = point ID, a = expiry, b = reward
//	worker: center = center ID, id = worker ID, x/y = location, a = maxDP,
//	        b = speed override (empty or 0 = instance default)
var (
	// ErrBadCSV reports a malformed record stream.
	ErrBadCSV = errors.New("dataset: malformed CSV")
)

const csvColumns = 7

// WriteCSV writes the problem to w in the package's CSV schema.
func WriteCSV(w io.Writer, p *model.Problem) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()

	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	d := strconv.Itoa

	speed := 5.0 // placeholder for empty problems; instances override it
	metric := "euclidean"
	if len(p.Instances) > 0 {
		speed = p.Instances[0].Travel.Speed()
		metric = p.Instances[0].Travel.Metric().Name()
	}
	if err := cw.Write([]string{"meta", f(speed), "", "", "", metric, ""}); err != nil {
		return err
	}
	for i := range p.Instances {
		in := &p.Instances[i]
		ci := d(in.CenterID)
		if err := cw.Write([]string{"center", ci, "", f(in.Center.X), f(in.Center.Y), "", ""}); err != nil {
			return err
		}
		for pi := range in.Points {
			dp := &in.Points[pi]
			if err := cw.Write([]string{"point", ci, d(dp.ID), f(dp.Loc.X), f(dp.Loc.Y), "", ""}); err != nil {
				return err
			}
			for _, t := range dp.Tasks {
				if err := cw.Write([]string{"task", ci, d(t.ID), d(dp.ID), "", f(t.Expiry), f(t.Reward)}); err != nil {
					return err
				}
			}
		}
		for _, wk := range in.Workers {
			if err := cw.Write([]string{"worker", ci, d(wk.ID), f(wk.Loc.X), f(wk.Loc.Y), d(wk.MaxDP), f(wk.Speed)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a problem previously written by WriteCSV.
func ReadCSV(r io.Reader) (*model.Problem, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = csvColumns

	speed := 5.0
	var metric geo.Metric = geo.Euclidean{}
	type pointRef struct {
		inst  int
		local int
	}
	prob := &model.Problem{}
	instByID := map[int]int{}       // center ID -> instance index
	pointByID := map[int]pointRef{} // global point ID -> location

	parseF := func(s, what string) (float64, error) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("%w: bad %s %q", ErrBadCSV, what, s)
		}
		return v, nil
	}
	parseI := func(s, what string) (int, error) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("%w: bad %s %q", ErrBadCSV, what, s)
		}
		return v, nil
	}

	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Wrap the reader error too, so callers can errors.As through to
			// transport-level causes such as *http.MaxBytesError.
			return nil, fmt.Errorf("%w: %w", ErrBadCSV, err)
		}
		switch rec[0] {
		case "meta":
			if speed, err = parseF(rec[1], "speed"); err != nil {
				return nil, err
			}
			switch rec[5] {
			case "euclidean", "":
				metric = geo.Euclidean{}
			case "manhattan":
				metric = geo.Manhattan{}
			default:
				return nil, fmt.Errorf("%w: unknown metric %q", ErrBadCSV, rec[5])
			}
		case "center":
			cid, err := parseI(rec[1], "center ID")
			if err != nil {
				return nil, err
			}
			x, err := parseF(rec[3], "x")
			if err != nil {
				return nil, err
			}
			y, err := parseF(rec[4], "y")
			if err != nil {
				return nil, err
			}
			if _, dup := instByID[cid]; dup {
				return nil, fmt.Errorf("%w: duplicate center %d", ErrBadCSV, cid)
			}
			instByID[cid] = len(prob.Instances)
			prob.Instances = append(prob.Instances, model.Instance{
				CenterID: cid,
				Center:   geo.Pt(x, y),
			})
		case "point":
			ii, err := instOf(rec[1], instByID, parseI)
			if err != nil {
				return nil, err
			}
			id, err := parseI(rec[2], "point ID")
			if err != nil {
				return nil, err
			}
			x, err := parseF(rec[3], "x")
			if err != nil {
				return nil, err
			}
			y, err := parseF(rec[4], "y")
			if err != nil {
				return nil, err
			}
			in := &prob.Instances[ii]
			pointByID[id] = pointRef{inst: ii, local: len(in.Points)}
			in.Points = append(in.Points, model.DeliveryPoint{ID: id, Loc: geo.Pt(x, y)})
		case "task":
			ii, err := instOf(rec[1], instByID, parseI)
			if err != nil {
				return nil, err
			}
			id, err := parseI(rec[2], "task ID")
			if err != nil {
				return nil, err
			}
			pid, err := parseI(rec[3], "task point ID")
			if err != nil {
				return nil, err
			}
			expiry, err := parseF(rec[5], "expiry")
			if err != nil {
				return nil, err
			}
			reward, err := parseF(rec[6], "reward")
			if err != nil {
				return nil, err
			}
			ref, ok := pointByID[pid]
			if !ok || ref.inst != ii {
				return nil, fmt.Errorf("%w: task %d references unknown point %d", ErrBadCSV, id, pid)
			}
			dp := &prob.Instances[ii].Points[ref.local]
			dp.Tasks = append(dp.Tasks, model.Task{ID: id, Point: ref.local, Expiry: expiry, Reward: reward})
		case "worker":
			ii, err := instOf(rec[1], instByID, parseI)
			if err != nil {
				return nil, err
			}
			id, err := parseI(rec[2], "worker ID")
			if err != nil {
				return nil, err
			}
			x, err := parseF(rec[3], "x")
			if err != nil {
				return nil, err
			}
			y, err := parseF(rec[4], "y")
			if err != nil {
				return nil, err
			}
			maxDP, err := parseI(rec[5], "maxDP")
			if err != nil {
				return nil, err
			}
			speed := 0.0
			if rec[6] != "" {
				if speed, err = parseF(rec[6], "worker speed"); err != nil {
					return nil, err
				}
			}
			prob.Instances[ii].Workers = append(prob.Instances[ii].Workers, model.Worker{
				ID: id, Loc: geo.Pt(x, y), MaxDP: maxDP, Speed: speed,
			})
		default:
			return nil, fmt.Errorf("%w: unknown record kind %q", ErrBadCSV, rec[0])
		}
	}

	tm, err := travel.NewModel(metric, speed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCSV, err)
	}
	for i := range prob.Instances {
		prob.Instances[i].Travel = tm
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	return prob, nil
}

func instOf(field string, byID map[int]int, parseI func(string, string) (int, error)) (int, error) {
	cid, err := parseI(field, "center ID")
	if err != nil {
		return 0, err
	}
	ii, ok := byID[cid]
	if !ok {
		return 0, fmt.Errorf("%w: record references unknown center %d", ErrBadCSV, cid)
	}
	return ii, nil
}
