package dataset

import (
	"math"
	"math/rand"
	"testing"

	"fairtask/internal/model"
)

func arrivalsProblem(t *testing.T) *model.Problem {
	t.Helper()
	p, err := GenerateSYN(SYNConfig{
		Seed: 1, Centers: 2, Tasks: 10, Workers: 4, DeliveryPoints: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoissonArrivalsAddTasks(t *testing.T) {
	p := arrivalsProblem(t)
	before := p.TaskCount()
	src := NewPoissonArrivals(ArrivalConfig{Seed: 2, RatePerPoint: 3, Lifetime: 1.5})
	src(0, 4.0, p)
	added := p.TaskCount() - before
	if added == 0 {
		t.Fatal("no tasks arrived at rate 3 over 20 points")
	}
	// Expected about 3 * 20 = 60; allow wide slack.
	if added < 20 || added > 120 {
		t.Errorf("arrivals = %d, expected around 60", added)
	}
	// All new tasks expire at now + lifetime.
	seen := map[int]bool{}
	for i := range p.Instances {
		for _, dp := range p.Instances[i].Points {
			for _, task := range dp.Tasks {
				if task.ID < 1<<20 {
					continue // pre-existing
				}
				if seen[task.ID] {
					t.Fatalf("duplicate arrival ID %d", task.ID)
				}
				seen[task.ID] = true
				if math.Abs(task.Expiry-5.5) > 1e-9 {
					t.Errorf("arrival expiry = %g, want 5.5", task.Expiry)
				}
				if task.Reward != 1 {
					t.Errorf("arrival reward = %g", task.Reward)
				}
			}
		}
	}
	if len(seen) != added {
		t.Errorf("unique arrivals %d != added %d", len(seen), added)
	}
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	a := arrivalsProblem(t)
	b := arrivalsProblem(t)
	NewPoissonArrivals(ArrivalConfig{Seed: 7})(0, 0, a)
	NewPoissonArrivals(ArrivalConfig{Seed: 7})(0, 0, b)
	if a.TaskCount() != b.TaskCount() {
		t.Error("same seed produced different arrival counts")
	}
}

func TestPoissonSamplerMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const lambda = 2.5
	const n = 20000
	var sum int
	for i := 0; i < n; i++ {
		sum += poisson(rng, lambda)
	}
	mean := float64(sum) / n
	if math.Abs(mean-lambda) > 0.1 {
		t.Errorf("poisson mean = %g, want about %g", mean, lambda)
	}
}

func TestPoissonArrivalsTaskPointIndices(t *testing.T) {
	p := arrivalsProblem(t)
	NewPoissonArrivals(ArrivalConfig{Seed: 3, RatePerPoint: 2})(0, 1, p)
	// Instance validation checks Task.Point consistency; expiries are
	// absolute here (now+lifetime > 0) so validation still passes.
	if err := p.Validate(); err != nil {
		t.Errorf("problem invalid after arrivals: %v", err)
	}
}

func TestRushHourProfile(t *testing.T) {
	peak := RushHourProfile(8)
	trough := RushHourProfile(2)
	if peak <= trough {
		t.Errorf("peak %g not above trough %g", peak, trough)
	}
	if RushHourProfile(18) <= trough {
		t.Error("evening peak not above trough")
	}
	// Positive at every hour, periodic over days.
	for h := 0.0; h < 48; h += 0.5 {
		if RushHourProfile(h) <= 0 {
			t.Fatalf("profile non-positive at %g", h)
		}
	}
	if math.Abs(RushHourProfile(3)-RushHourProfile(27)) > 1e-12 {
		t.Error("profile not 24h-periodic")
	}
}

func TestPoissonArrivalsWithProfile(t *testing.T) {
	mk := func() *model.Problem {
		p, err := GenerateSYN(SYNConfig{
			Seed: 1, Centers: 1, Tasks: 5, Workers: 2, DeliveryPoints: 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	count := func(now float64) int {
		p := mk()
		before := p.TaskCount()
		src := NewPoissonArrivals(ArrivalConfig{
			Seed: 5, RatePerPoint: 2, RateProfile: RushHourProfile,
		})
		src(0, now, p)
		return p.TaskCount() - before
	}
	atPeak := count(8)
	atNight := count(2)
	if atPeak <= atNight {
		t.Errorf("peak arrivals %d not above overnight %d", atPeak, atNight)
	}
}
