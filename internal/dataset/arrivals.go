package dataset

import (
	"math"
	"math/rand"

	"fairtask/internal/model"
)

// ArrivalConfig parameterizes NewPoissonArrivals.
type ArrivalConfig struct {
	// Seed drives the arrival process.
	Seed int64
	// RatePerPoint is the expected number of new tasks per delivery point
	// per epoch (Poisson distributed). Default 1.
	RatePerPoint float64
	// Lifetime is how long a new task stays valid, in hours from its
	// arrival. Default 2 (the Table I expiry).
	Lifetime float64
	// Reward is the per-task reward. Default 1.
	Reward float64
	// FirstID is the ID assigned to the first generated task; subsequent
	// tasks count up from it. Pick it above all existing task IDs. Default
	// 1 << 20.
	FirstID int
	// RateProfile, when non-nil, multiplies RatePerPoint by a time-varying
	// factor evaluated at each epoch's clock (e.g. RushHourProfile for a
	// bimodal daily demand curve). Nil means a constant rate.
	RateProfile func(now float64) float64
}

// RushHourProfile is a bimodal daily demand multiplier with peaks around
// hour 8 and hour 18 (roughly 3x the overnight trough), for simulations of
// commuter-driven delivery demand. The returned factor is always positive.
func RushHourProfile(now float64) float64 {
	h := math.Mod(now, 24)
	peak := func(center, width float64) float64 {
		d := (h - center) / width
		return math.Exp(-d * d)
	}
	return 0.4 + 1.3*peak(8, 1.8) + 1.3*peak(18, 2.2)
}

// NewPoissonArrivals returns a task source compatible with
// platform.SimConfig.TaskSource: on every epoch it appends a Poisson number
// of fresh tasks to each delivery point of each center, with expiry
// now + Lifetime. The returned closure owns its RNG, so a single source
// must not be shared between concurrent simulations.
func NewPoissonArrivals(cfg ArrivalConfig) func(epoch int, now float64, p *model.Problem) {
	rate := cfg.RatePerPoint
	if rate <= 0 {
		rate = 1
	}
	lifetime := cfg.Lifetime
	if lifetime <= 0 {
		lifetime = 2
	}
	reward := cfg.Reward
	if reward <= 0 {
		reward = 1
	}
	nextID := cfg.FirstID
	if nextID <= 0 {
		nextID = 1 << 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	return func(epoch int, now float64, p *model.Problem) {
		effective := rate
		if cfg.RateProfile != nil {
			f := cfg.RateProfile(now)
			if f < 0 {
				f = 0
			}
			effective = rate * f
		}
		for i := range p.Instances {
			in := &p.Instances[i]
			for pi := range in.Points {
				n := poisson(rng, effective)
				for k := 0; k < n; k++ {
					in.Points[pi].Tasks = append(in.Points[pi].Tasks, model.Task{
						ID:     nextID,
						Point:  pi,
						Expiry: now + lifetime,
						Reward: reward,
					})
					nextID++
				}
			}
		}
	}
}

// poisson samples a Poisson(lambda) variate with Knuth's algorithm (fine
// for the small per-epoch rates used here).
func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
