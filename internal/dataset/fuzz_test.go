package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV reader never panics and that anything it
// accepts round-trips through WriteCSV and back to an equivalent problem.
func FuzzReadCSV(f *testing.F) {
	// Seed corpus: a real generated problem plus malformed fragments.
	p, err := GenerateSYN(SYNConfig{Seed: 1, Centers: 2, Tasks: 12, Workers: 4, DeliveryPoints: 6})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, p); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("meta,5,,,,euclidean,\n")
	f.Add("center,0,,0,0,,\npoint,0,0,1,2,,\ntask,0,0,0,,1,1\n")
	f.Add("garbage")
	f.Add("")

	f.Fuzz(func(t *testing.T, data string) {
		prob, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var out bytes.Buffer
		if err := WriteCSV(&out, prob); err != nil {
			t.Fatalf("accepted problem failed to serialize: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("round trip of accepted problem failed: %v", err)
		}
		if again.TaskCount() != prob.TaskCount() || again.WorkerCount() != prob.WorkerCount() {
			t.Fatal("round trip changed the problem")
		}
	})
}

// FuzzLoadGMission checks the raw gMission loader never panics and every
// accepted input yields a valid instance.
func FuzzLoadGMission(f *testing.F) {
	tasks, workers := fixtureGMission(10, 3)
	f.Add(tasks, workers)
	f.Add("", "")
	f.Add("0,1,1,1,1\n", "0,0,0,1\n")
	f.Add("x,y,z\n", "1,2\n")

	f.Fuzz(func(t *testing.T, taskCSV, workerCSV string) {
		in, err := LoadGMission(strings.NewReader(taskCSV), strings.NewReader(workerCSV),
			GMissionOptions{DeliveryPoints: 4})
		if err != nil {
			return
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("accepted instance fails validation: %v", err)
		}
	})
}
