package dataset

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"fairtask/internal/model"
)

// FuzzReadCSV checks the CSV reader never panics and that anything it
// accepts round-trips through WriteCSV and back to an equivalent problem.
func FuzzReadCSV(f *testing.F) {
	// Seed corpus: a real generated problem plus malformed fragments.
	p, err := GenerateSYN(SYNConfig{Seed: 1, Centers: 2, Tasks: 12, Workers: 4, DeliveryPoints: 6})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, p); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("meta,5,,,,euclidean,\n")
	f.Add("center,0,,0,0,,\npoint,0,0,1,2,,\ntask,0,0,0,,1,1\n")
	f.Add("garbage")
	f.Add("")

	f.Fuzz(func(t *testing.T, data string) {
		prob, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var out bytes.Buffer
		if err := WriteCSV(&out, prob); err != nil {
			t.Fatalf("accepted problem failed to serialize: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("round trip of accepted problem failed: %v", err)
		}
		if again.TaskCount() != prob.TaskCount() || again.WorkerCount() != prob.WorkerCount() {
			t.Fatal("round trip changed the problem")
		}
	})
}

// FuzzReadAssignmentCSV checks the assignment-route reader never panics,
// rejects malformed input with the typed ErrAssignmentCSV sentinel, and
// shapes every accepted result like the problem it resolves against.
func FuzzReadAssignmentCSV(f *testing.F) {
	p, err := GenerateSYN(SYNConfig{Seed: 2, Centers: 2, Tasks: 12, Workers: 4, DeliveryPoints: 6})
	if err != nil {
		f.Fatal(err)
	}
	header := "center,worker,stop,point,arrival,reward,payoff\n"
	// Seed corpus: a real (empty-routes) export plus the canonical header
	// with plausible and malformed rows.
	empty := make([]*model.Assignment, len(p.Instances))
	for i := range empty {
		empty[i] = model.NewAssignment(len(p.Instances[i].Workers))
	}
	var buf bytes.Buffer
	if err := WriteAssignmentCSV(&buf, p, empty); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(header)
	f.Add(header + "0,0,0,0,1,1,1\n")
	f.Add(header + "0,0,0,0,1,1,1\n0,0,1,1,2,1,1\n")
	f.Add(header + "99,0,0,0,1,1,1\n")
	f.Add(header + "0,99,0,0,1,1,1\n")
	f.Add(header + "0,0,-1,0,1,1,1\n")
	f.Add(header + "0,0,0,0,1,1,1\n0,0,0,1,1,1,1\n")
	f.Add(header + "0,0,5,0,1,1,1\n")
	f.Add("garbage")
	f.Add("")

	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadAssignmentCSV(strings.NewReader(data), p)
		if err != nil {
			if !errors.Is(err, ErrAssignmentCSV) {
				t.Fatalf("rejection %v is not typed as ErrAssignmentCSV", err)
			}
			return
		}
		if len(got) != len(p.Instances) {
			t.Fatalf("accepted result has %d assignments for %d instances",
				len(got), len(p.Instances))
		}
		for i, a := range got {
			if a == nil {
				t.Fatalf("accepted result has nil assignment for instance %d", i)
			}
			if len(a.Routes) != len(p.Instances[i].Workers) {
				t.Fatalf("instance %d: %d routes for %d workers",
					i, len(a.Routes), len(p.Instances[i].Workers))
			}
		}
	})
}

// FuzzLoadGMission checks the raw gMission loader never panics and every
// accepted input yields a valid instance.
func FuzzLoadGMission(f *testing.F) {
	tasks, workers := fixtureGMission(10, 3)
	f.Add(tasks, workers)
	f.Add("", "")
	f.Add("0,1,1,1,1\n", "0,0,0,1\n")
	f.Add("x,y,z\n", "1,2\n")

	f.Fuzz(func(t *testing.T, taskCSV, workerCSV string) {
		in, err := LoadGMission(strings.NewReader(taskCSV), strings.NewReader(workerCSV),
			GMissionOptions{DeliveryPoints: 4})
		if err != nil {
			return
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("accepted instance fails validation: %v", err)
		}
	})
}
