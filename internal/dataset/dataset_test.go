package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"fairtask/internal/geo"
	"fairtask/internal/model"
)

func TestGenerateSYNDefaultsScaledDown(t *testing.T) {
	cfg := SYNConfig{
		Seed: 1, Centers: 5, Tasks: 500, Workers: 50, DeliveryPoints: 100,
	}
	p, err := GenerateSYN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instances) != 5 {
		t.Fatalf("centers = %d", len(p.Instances))
	}
	if p.TaskCount() != 500 {
		t.Errorf("tasks = %d, want 500", p.TaskCount())
	}
	if p.WorkerCount() != 50 {
		t.Errorf("workers = %d, want 50", p.WorkerCount())
	}
	var points int
	for i := range p.Instances {
		points += len(p.Instances[i].Points)
	}
	if points != 100 {
		t.Errorf("points = %d, want 100", points)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("generated problem invalid: %v", err)
	}
}

func TestGenerateSYNServiceRadius(t *testing.T) {
	cfg := SYNConfig{Seed: 2, Centers: 3, Tasks: 60, Workers: 12, DeliveryPoints: 30}
	p, err := GenerateSYN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const radius = 7.5 // default
	for i := range p.Instances {
		in := &p.Instances[i]
		for _, dp := range in.Points {
			if d := (geo.Euclidean{}).Distance(in.Center, dp.Loc); d > radius+1e-9 {
				t.Errorf("point %d is %g km from its center, beyond %g", dp.ID, d, radius)
			}
		}
		for _, w := range in.Workers {
			if d := (geo.Euclidean{}).Distance(in.Center, w.Loc); d > radius+1e-9 {
				t.Errorf("worker %d is %g km from its center", w.ID, d)
			}
		}
	}
}

func TestGenerateSYNDeterministic(t *testing.T) {
	cfg := SYNConfig{Seed: 7, Centers: 2, Tasks: 40, Workers: 8, DeliveryPoints: 20}
	a, err := GenerateSYN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSYN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Instances {
		if a.Instances[i].Center != b.Instances[i].Center {
			t.Fatal("same seed, different centers")
		}
		for j := range a.Instances[i].Points {
			if a.Instances[i].Points[j].Loc != b.Instances[i].Points[j].Loc {
				t.Fatal("same seed, different points")
			}
		}
	}
}

func TestGenerateSYNExpiry(t *testing.T) {
	cfg := SYNConfig{
		Seed: 3, Centers: 2, Tasks: 50, Workers: 4, DeliveryPoints: 10,
		Expiry: 1.5, ExpiryJitter: 0.5,
	}
	p, err := GenerateSYN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Instances {
		for _, dp := range p.Instances[i].Points {
			for _, task := range dp.Tasks {
				if task.Expiry < 1.0-1e-9 || task.Expiry > 2.0+1e-9 {
					t.Errorf("task expiry %g outside [1, 2]", task.Expiry)
				}
			}
		}
	}
	// Bad jitter rejected.
	if _, err := GenerateSYN(SYNConfig{Expiry: 1, ExpiryJitter: 1}); err == nil {
		t.Error("jitter >= expiry accepted")
	}
}

func TestGenerateSYNUnlimitedMaxDP(t *testing.T) {
	cfg := SYNConfig{Seed: 1, Centers: 1, Tasks: 10, Workers: 3, DeliveryPoints: 5, MaxDP: -1}
	p, err := GenerateSYN(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range p.Instances[0].Workers {
		if w.MaxDP != 0 {
			t.Errorf("worker maxDP = %d, want 0 (unlimited)", w.MaxDP)
		}
	}
}

func TestGenerateGM(t *testing.T) {
	cfg := GMConfig{Seed: 5, Tasks: 120, Workers: 10, DeliveryPoints: 20}
	in, err := GenerateGM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("GM instance invalid: %v", err)
	}
	if in.TaskCount() != 120 {
		t.Errorf("tasks = %d, want 120", in.TaskCount())
	}
	if len(in.Points) == 0 || len(in.Points) > 20 {
		t.Errorf("points = %d, want 1..20", len(in.Points))
	}
	if len(in.Workers) != 10 {
		t.Errorf("workers = %d", len(in.Workers))
	}
	// The center is the centroid of task locations; with tasks spread over
	// blobs inside [0, 4]^2 (plus Gaussian tails) it must lie near that box.
	if in.Center.X < -2 || in.Center.X > 6 || in.Center.Y < -2 || in.Center.Y > 6 {
		t.Errorf("center %v far outside the region", in.Center)
	}
	// Every point holds at least one task (empty clusters are dropped).
	for _, dp := range in.Points {
		if len(dp.Tasks) == 0 {
			t.Errorf("point %d has no tasks", dp.ID)
		}
		if math.IsInf(dp.EarliestExpiry(), 1) {
			t.Errorf("point %d has no expiry", dp.ID)
		}
	}
}

func TestGenerateGMMoreClustersThanTasks(t *testing.T) {
	in, err := GenerateGM(GMConfig{Seed: 1, Tasks: 5, Workers: 2, DeliveryPoints: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Points) > 5 {
		t.Errorf("points = %d, want <= task count", len(in.Points))
	}
}

func TestGenerateGMBadExpiry(t *testing.T) {
	if _, err := GenerateGM(GMConfig{MinExpiry: 3, MaxExpiry: 1}); err == nil {
		t.Error("inverted expiry range accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	p, err := GenerateSYN(SYNConfig{Seed: 11, Centers: 3, Tasks: 30, Workers: 6, DeliveryPoints: 12})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Instances) != len(p.Instances) {
		t.Fatalf("instances = %d, want %d", len(q.Instances), len(p.Instances))
	}
	if q.TaskCount() != p.TaskCount() || q.WorkerCount() != p.WorkerCount() {
		t.Error("task/worker counts differ after round trip")
	}
	for i := range p.Instances {
		a, b := &p.Instances[i], &q.Instances[i]
		if a.Center != b.Center || a.CenterID != b.CenterID {
			t.Fatalf("instance %d center mismatch", i)
		}
		if a.Travel.Speed() != b.Travel.Speed() {
			t.Fatal("speed not preserved")
		}
		if len(a.Points) != len(b.Points) {
			t.Fatalf("instance %d point count mismatch", i)
		}
		for j := range a.Points {
			if a.Points[j].Loc != b.Points[j].Loc || a.Points[j].ID != b.Points[j].ID {
				t.Fatalf("point mismatch at %d/%d", i, j)
			}
			if len(a.Points[j].Tasks) != len(b.Points[j].Tasks) {
				t.Fatalf("task count mismatch at %d/%d", i, j)
			}
			for k := range a.Points[j].Tasks {
				ta, tb := a.Points[j].Tasks[k], b.Points[j].Tasks[k]
				if ta != tb {
					t.Fatalf("task mismatch: %+v vs %+v", ta, tb)
				}
			}
		}
		for j := range a.Workers {
			if a.Workers[j] != b.Workers[j] {
				t.Fatalf("worker mismatch at %d/%d", i, j)
			}
		}
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"bogus,0,0,0,0,0,0\n",
		"center,notanint,,1,2,,\n",
		"point,0,0,1,2,,\n",                         // unknown center
		"meta,x,,,,euclidean,\n",                    // bad speed
		"meta,5,,,,warp,\n",                         // unknown metric
		"center,0,,0,0,,\ntask,0,1,99,,1,1\n",       // unknown point
		"center,0,,0,0,,\ncenter,0,,1,1,,\n",        // duplicate center
		"center,0,,0,0,,\nworker,0,0,0,0,notint,\n", // bad maxDP
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("accepted garbage: %q", c)
		}
	}
}

func TestCSVManhattanMetric(t *testing.T) {
	p, err := GenerateSYN(SYNConfig{Seed: 1, Centers: 1, Tasks: 5, Workers: 2, DeliveryPoints: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, p); err != nil {
		t.Fatal(err)
	}
	s := strings.Replace(buf.String(), "euclidean", "manhattan", 1)
	q, err := ReadCSV(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	if q.Instances[0].Travel.Metric().Name() != "manhattan" {
		t.Error("metric not preserved")
	}
}

func TestWriteAssignmentCSV(t *testing.T) {
	p, err := GenerateSYN(SYNConfig{Seed: 21, Centers: 2, Tasks: 40, Workers: 6, DeliveryPoints: 12})
	if err != nil {
		t.Fatal(err)
	}
	assignments := make([]*model.Assignment, 2)
	for i := range p.Instances {
		a := model.NewAssignment(len(p.Instances[i].Workers))
		// Give worker 0 a singleton route on the first reachable point.
		for pt := range p.Instances[i].Points {
			r := model.Route{pt}
			if p.Instances[i].RouteFeasible(0, r) {
				a.Routes[0] = r
				break
			}
		}
		assignments[i] = a
	}
	var buf bytes.Buffer
	if err := WriteAssignmentCSV(&buf, p, assignments); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "center,worker,stop,point,arrival,reward,payoff") {
		t.Errorf("missing header:\n%.100s", out)
	}
	lines := strings.Count(strings.TrimSpace(out), "\n")
	if lines < 1 {
		t.Error("no route rows written")
	}
}

func TestWriteAssignmentCSVErrors(t *testing.T) {
	p, err := GenerateSYN(SYNConfig{Seed: 1, Centers: 1, Tasks: 10, Workers: 2, DeliveryPoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAssignmentCSV(&buf, p, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := []*model.Assignment{model.NewAssignment(1)} // wrong worker count
	if err := WriteAssignmentCSV(&buf, p, bad); err == nil {
		t.Error("invalid assignment accepted")
	}
	// Nil per-center assignments are skipped, not an error.
	if err := WriteAssignmentCSV(&buf, p, []*model.Assignment{nil}); err != nil {
		t.Errorf("nil assignment rejected: %v", err)
	}
}

func TestCSVPersistsWorkerSpeed(t *testing.T) {
	p, err := GenerateSYN(SYNConfig{Seed: 1, Centers: 1, Tasks: 6, Workers: 2, DeliveryPoints: 3})
	if err != nil {
		t.Fatal(err)
	}
	p.Instances[0].Workers[1].Speed = 7.5
	var buf bytes.Buffer
	if err := WriteCSV(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Instances[0].Workers[1].Speed; got != 7.5 {
		t.Errorf("speed after round trip = %g, want 7.5", got)
	}
	if got := q.Instances[0].Workers[0].Speed; got != 0 {
		t.Errorf("default speed = %g, want 0", got)
	}
}

func TestGenerateSYNSpeedChoices(t *testing.T) {
	p, err := GenerateSYN(SYNConfig{
		Seed: 9, Centers: 2, Tasks: 20, Workers: 30, DeliveryPoints: 10,
		SpeedChoices: []float64{4, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]int{}
	for i := range p.Instances {
		for _, w := range p.Instances[i].Workers {
			seen[w.Speed]++
		}
	}
	if seen[4] == 0 || seen[8] == 0 {
		t.Errorf("speed choices not both used: %v", seen)
	}
	if len(seen) != 2 {
		t.Errorf("unexpected speeds: %v", seen)
	}
}
