package dataset

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"

	"fairtask/internal/assign"
	"fairtask/internal/model"
	"fairtask/internal/vdps"
)

// solveAssignments produces real multi-stop assignments for round-tripping.
func solveAssignments(t *testing.T, p *model.Problem) []*model.Assignment {
	t.Helper()
	out := make([]*model.Assignment, len(p.Instances))
	for i := range p.Instances {
		g, err := vdps.Generate(&p.Instances[i], vdps.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := assign.GTA{}.Assign(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = res.Assignment
	}
	return out
}

func TestAssignmentCSVRoundTrip(t *testing.T) {
	p, err := GenerateSYN(SYNConfig{Seed: 7, Centers: 2, Tasks: 40, Workers: 6, DeliveryPoints: 12})
	if err != nil {
		t.Fatal(err)
	}
	want := solveAssignments(t, p)
	var buf bytes.Buffer
	if err := WriteAssignmentCSV(&buf, p, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAssignmentCSV(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d assignments, want %d", len(got), len(want))
	}
	var stops int
	for i := range want {
		if len(got[i].Routes) != len(want[i].Routes) {
			t.Fatalf("center %d: %d routes, want %d", i, len(got[i].Routes), len(want[i].Routes))
		}
		for w := range want[i].Routes {
			a, b := want[i].Routes[w], got[i].Routes[w]
			if len(a) != len(b) {
				t.Fatalf("center %d worker %d: route %v, want %v", i, w, b, a)
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("center %d worker %d: route %v, want %v", i, w, b, a)
				}
			}
			stops += len(a)
		}
		if err := got[i].Validate(&p.Instances[i]); err != nil {
			t.Errorf("center %d: round-tripped assignment invalid: %v", i, err)
		}
	}
	if stops == 0 {
		t.Error("round-trip exercised no non-empty routes")
	}
}

func TestReadAssignmentCSVErrors(t *testing.T) {
	p, err := GenerateSYN(SYNConfig{Seed: 1, Centers: 1, Tasks: 10, Workers: 2, DeliveryPoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	centerID := p.Instances[0].CenterID
	workerID := p.Instances[0].Workers[0].ID
	pointID := p.Instances[0].Points[0].ID
	header := "center,worker,stop,point,arrival,reward,payoff\n"
	row := func(c, w, s, pt int) string {
		return strings.Join([]string{
			strconv.Itoa(c), strconv.Itoa(w), strconv.Itoa(s), strconv.Itoa(pt), "0", "1", "1",
		}, ",") + "\n"
	}
	cases := []struct {
		name, body string
	}{
		{"bad header", "centre,worker,stop,point,arrival,reward,payoff\n"},
		{"unknown center", header + row(centerID+99, workerID, 0, pointID)},
		{"unknown worker", header + row(centerID, 999, 0, pointID)},
		{"unknown point", header + row(centerID, workerID, 0, 999)},
		{"negative stop", header + row(centerID, workerID, -1, pointID)},
		{"duplicate stop", header + row(centerID, workerID, 0, pointID) +
			row(centerID, workerID, 0, p.Instances[0].Points[1].ID)},
		{"gap in stops", header + row(centerID, workerID, 1, pointID)},
		{"short row", header + "1,2,3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadAssignmentCSV(strings.NewReader(tc.body), p); err == nil {
				t.Errorf("accepted %q", tc.body)
			}
		})
	}

	// An empty body (header only) yields empty, valid assignments.
	got, err := ReadAssignmentCSV(strings.NewReader(header), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] == nil || len(got[0].Routes) != 2 {
		t.Errorf("header-only read = %+v", got)
	}
}
