// Package dataset generates the paper's two experimental workloads — the
// synthetic SYN dataset (Table I) and a gMission-style GM dataset — and
// persists problem instances as CSV files.
//
// SYN follows §VII-A: distribution centers, delivery points and workers are
// placed uniformly at random in a square 2D space; every delivery point and
// worker is associated with one distribution center; tasks are attached to
// random delivery points with unit reward; worker speed is 5 km/h.
//
// Placement detail: the paper associates delivery points and workers with a
// distribution center "at random" inside a [0,100]^2 km space. Taken
// literally, a point's own center would usually be tens of kilometres away
// and unreachable within the 0.5-2.5 h expiry window, which contradicts the
// saturation the paper observes at e >= 1.5 h (Figure 10). We therefore
// place each center's delivery points and workers uniformly within a
// service-area disk around the center (default radius 7.5 km = 1.5 h at
// 5 km/h), which reproduces exactly that saturation point. See DESIGN.md.
//
// GM mimics the gMission preprocessing of §VII-A: task locations form
// spatial clusters; the distribution center is the centroid of all tasks;
// k-means over task locations yields x delivery points; each task belongs to
// its cluster's delivery point.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"fairtask/internal/cluster"
	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/travel"
)

// SYNConfig parameterizes GenerateSYN. Zero fields take the paper's default
// (underlined) values from Table I, scaled as documented per field.
type SYNConfig struct {
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
	// Space is the side length of the square region in km. Default 100.
	Space float64
	// Centers is the number of distribution centers. Default 50.
	Centers int
	// Tasks is |S|, the total number of tasks. Default 100000.
	Tasks int
	// Workers is |W|, the total number of workers. Default 2000.
	Workers int
	// DeliveryPoints is |DP|, the total number of delivery points.
	// Default 5000.
	DeliveryPoints int
	// Expiry is the task expiration time e in hours. Default 2.
	Expiry float64
	// ExpiryJitter spreads each task's expiry uniformly in
	// [Expiry-Jitter, Expiry+Jitter]. Default 0 (all equal, as in Table I).
	ExpiryJitter float64
	// MaxDP is every worker's maximum acceptable number of delivery points.
	// Default 3.
	MaxDP int
	// Speed is the worker speed in km/h. Default 5.
	Speed float64
	// Reward is the per-task reward. Default 1.
	Reward float64
	// ServiceRadius is the radius in km of each center's service disk in
	// which its delivery points and workers are placed. Default 7.5
	// (= 1.5 h at 5 km/h; see the package comment).
	ServiceRadius float64
	// SpeedChoices, when non-empty, draws each worker's speed override
	// uniformly from this list (heterogeneous fleets). Empty means all
	// workers use the Speed default.
	SpeedChoices []float64
}

// WithDefaults returns the config with zero fields replaced by Table I
// defaults.
func (c SYNConfig) WithDefaults() SYNConfig {
	if c.Space <= 0 {
		c.Space = 100
	}
	if c.Centers <= 0 {
		c.Centers = 50
	}
	if c.Tasks <= 0 {
		c.Tasks = 100000
	}
	if c.Workers <= 0 {
		c.Workers = 2000
	}
	if c.DeliveryPoints <= 0 {
		c.DeliveryPoints = 5000
	}
	if c.Expiry <= 0 {
		c.Expiry = 2
	}
	if c.MaxDP < 0 {
		c.MaxDP = 0 // explicit "unlimited"
	} else if c.MaxDP == 0 {
		c.MaxDP = 3
	}
	if c.Speed <= 0 {
		c.Speed = 5
	}
	if c.Reward <= 0 {
		c.Reward = 1
	}
	if c.ServiceRadius <= 0 {
		c.ServiceRadius = 7.5
	}
	return c
}

// ErrBadConfig reports an unusable generator configuration.
var ErrBadConfig = errors.New("dataset: bad configuration")

// GenerateSYN builds a multi-center synthetic problem per the config.
func GenerateSYN(cfg SYNConfig) (*model.Problem, error) {
	c := cfg.WithDefaults()
	if c.ExpiryJitter < 0 || c.ExpiryJitter >= c.Expiry {
		return nil, fmt.Errorf("%w: expiry jitter %g out of [0, expiry)", ErrBadConfig, c.ExpiryJitter)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	tm, err := travel.NewModel(geo.Euclidean{}, c.Speed)
	if err != nil {
		return nil, err
	}

	prob := &model.Problem{Instances: make([]model.Instance, c.Centers)}
	for i := range prob.Instances {
		prob.Instances[i] = model.Instance{
			CenterID: i,
			Center:   geo.Pt(rng.Float64()*c.Space, rng.Float64()*c.Space),
			Travel:   tm,
		}
	}

	// Delivery points: random center, uniform position in its service disk.
	centerOf := make([]int, c.DeliveryPoints) // global dp index -> center
	localIdx := make([]int, c.DeliveryPoints) // global dp index -> index within center
	for d := 0; d < c.DeliveryPoints; d++ {
		ci := rng.Intn(c.Centers)
		inst := &prob.Instances[ci]
		centerOf[d] = ci
		localIdx[d] = len(inst.Points)
		inst.Points = append(inst.Points, model.DeliveryPoint{
			ID:  d,
			Loc: diskPoint(rng, inst.Center, c.ServiceRadius),
		})
	}

	// Tasks: attached to random delivery points.
	for t := 0; t < c.Tasks; t++ {
		d := rng.Intn(c.DeliveryPoints)
		inst := &prob.Instances[centerOf[d]]
		expiry := c.Expiry
		if c.ExpiryJitter > 0 {
			expiry += (rng.Float64()*2 - 1) * c.ExpiryJitter
		}
		dp := &inst.Points[localIdx[d]]
		dp.Tasks = append(dp.Tasks, model.Task{
			ID:     t,
			Point:  localIdx[d],
			Expiry: expiry,
			Reward: c.Reward,
		})
	}

	// Workers: random center, uniform position in its service disk.
	for w := 0; w < c.Workers; w++ {
		ci := rng.Intn(c.Centers)
		inst := &prob.Instances[ci]
		wk := model.Worker{
			ID:    w,
			Loc:   diskPoint(rng, inst.Center, c.ServiceRadius),
			MaxDP: c.MaxDP,
		}
		if len(c.SpeedChoices) > 0 {
			wk.Speed = c.SpeedChoices[rng.Intn(len(c.SpeedChoices))]
		}
		inst.Workers = append(inst.Workers, wk)
	}

	if err := prob.Validate(); err != nil {
		return nil, err
	}
	return prob, nil
}

// diskPoint returns a point uniform in the disk of the given radius around c.
func diskPoint(rng *rand.Rand, c geo.Point, radius float64) geo.Point {
	r := radius * math.Sqrt(rng.Float64())
	theta := rng.Float64() * 2 * math.Pi
	return geo.Pt(c.X+r*math.Cos(theta), c.Y+r*math.Sin(theta))
}

// GMConfig parameterizes GenerateGM, the gMission-style single-center
// dataset. Zero fields take the GM defaults of Table I.
type GMConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Tasks is |S|. Default 200.
	Tasks int
	// Workers is |W|. Default 40.
	Workers int
	// DeliveryPoints is the k-means cluster count x. Default 100, capped at
	// the task count.
	DeliveryPoints int
	// Blobs is the number of spatial task clusters in the raw data.
	// Default 8.
	Blobs int
	// Space is the side length in km of the region holding the blob centers
	// and workers. Default 4 (gMission's campus-scale extent; the paper's GM
	// epsilon ranges over 0.2-1 km).
	Space float64
	// BlobSigma is the Gaussian spread of tasks around their blob in km.
	// Default 0.4.
	BlobSigma float64
	// MinExpiry and MaxExpiry bound the uniform task expiration times in
	// hours. Defaults 0.5 and 3.
	MinExpiry, MaxExpiry float64
	// MaxDP is every worker's maximum acceptable number of delivery points.
	// Default 3 (Table I lists maxDP for SYN only; GM reuses the default).
	MaxDP int
	// Speed is the worker speed in km/h. Default 5.
	Speed float64
	// Reward is the per-task reward. Default 1.
	Reward float64
}

// WithDefaults returns the config with zero fields replaced by defaults.
func (c GMConfig) WithDefaults() GMConfig {
	if c.Tasks <= 0 {
		c.Tasks = 200
	}
	if c.Workers <= 0 {
		c.Workers = 40
	}
	if c.DeliveryPoints <= 0 {
		c.DeliveryPoints = 100
	}
	if c.DeliveryPoints > c.Tasks {
		c.DeliveryPoints = c.Tasks
	}
	if c.Blobs <= 0 {
		c.Blobs = 8
	}
	if c.Space <= 0 {
		c.Space = 4
	}
	if c.BlobSigma <= 0 {
		c.BlobSigma = 0.4
	}
	if c.MinExpiry <= 0 {
		c.MinExpiry = 0.5
	}
	if c.MaxExpiry <= 0 {
		c.MaxExpiry = 3
	}
	if c.MaxDP < 0 {
		c.MaxDP = 0 // explicit "unlimited"
	} else if c.MaxDP == 0 {
		c.MaxDP = 3
	}
	if c.Speed <= 0 {
		c.Speed = 5
	}
	if c.Reward <= 0 {
		c.Reward = 1
	}
	return c
}

// GenerateGM builds the single-center gMission-style instance: clustered
// task locations, centroid distribution center, k-means delivery points.
func GenerateGM(cfg GMConfig) (*model.Instance, error) {
	c := cfg.WithDefaults()
	if c.MinExpiry > c.MaxExpiry {
		return nil, fmt.Errorf("%w: MinExpiry %g > MaxExpiry %g", ErrBadConfig, c.MinExpiry, c.MaxExpiry)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	tm, err := travel.NewModel(geo.Euclidean{}, c.Speed)
	if err != nil {
		return nil, err
	}

	// Raw task locations: Gaussian blobs, like gMission's campus hot spots.
	blobs := make([]geo.Point, c.Blobs)
	for i := range blobs {
		blobs[i] = geo.Pt(rng.Float64()*c.Space, rng.Float64()*c.Space)
	}
	taskLocs := make([]geo.Point, c.Tasks)
	for i := range taskLocs {
		b := blobs[rng.Intn(c.Blobs)]
		taskLocs[i] = geo.Pt(b.X+rng.NormFloat64()*c.BlobSigma, b.Y+rng.NormFloat64()*c.BlobSigma)
	}

	// Distribution center: centroid of all task locations (paper §VII-A).
	center, _ := geo.Centroid(taskLocs)

	// Delivery points: k-means centroids over task locations.
	km, err := cluster.KMeans(taskLocs, c.DeliveryPoints, cluster.Options{Rand: rng})
	if err != nil {
		return nil, fmt.Errorf("dataset: clustering tasks: %w", err)
	}

	in := &model.Instance{
		CenterID: 0,
		Center:   center,
		Travel:   tm,
	}
	// k-means can leave clusters empty in degenerate inputs; keep only
	// centroids that received at least one task, compacting indices.
	remap := make([]int, len(km.Centroids))
	for i := range remap {
		remap[i] = -1
	}
	for i, cent := range km.Centroids {
		used := false
		for _, a := range km.Assign {
			if a == i {
				used = true
				break
			}
		}
		if !used {
			continue
		}
		remap[i] = len(in.Points)
		in.Points = append(in.Points, model.DeliveryPoint{
			ID:  len(in.Points),
			Loc: cent,
		})
	}
	for t, a := range km.Assign {
		pi := remap[a]
		dp := &in.Points[pi]
		dp.Tasks = append(dp.Tasks, model.Task{
			ID:     t,
			Point:  pi,
			Expiry: c.MinExpiry + rng.Float64()*(c.MaxExpiry-c.MinExpiry),
			Reward: c.Reward,
		})
	}

	for w := 0; w < c.Workers; w++ {
		in.Workers = append(in.Workers, model.Worker{
			ID:    w,
			Loc:   geo.Pt(rng.Float64()*c.Space, rng.Float64()*c.Space),
			MaxDP: c.MaxDP,
		})
	}

	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}
