// Package fairness implements the Inequity Aversion based Utility (IAU) of
// paper §V-A (Equations 5-7) and the exact potential function of Lemma 2,
// plus the priority-aware extension sketched in the paper's conclusion.
//
// IAU models inequity aversion (Fehr & Schmidt): a worker's utility is its
// payoff minus penalties for disadvantageous inequity (others earn more, MP)
// and advantageous inequity (the worker earns more than others, LP):
//
//	IAU_i = P_i - (alpha/(|W|-1))*MP_i - (beta/(|W|-1))*LP_i
//	MP_i  = sum over j with P_j > P_i of (P_j - P_i)
//	LP_i  = sum over j with P_i > P_j of (P_i - P_j)
package fairness

import "math"

// Params hold the inequity-aversion weights. The paper's experiments set
// both to 0.5 so envy (MP) and guilt (LP) weigh equally.
type Params struct {
	// Alpha weights MP, the disadvantageous-inequity penalty.
	Alpha float64
	// Beta weights LP, the advantageous-inequity penalty.
	Beta float64
}

// DefaultParams returns the paper's experimental setting alpha = beta = 0.5.
func DefaultParams() Params { return Params{Alpha: 0.5, Beta: 0.5} }

// MP returns the total extra payoff workers richer than i obtain
// (Equation 6).
func MP(payoffs []float64, i int) float64 {
	var sum float64
	pi := payoffs[i]
	for j, pj := range payoffs {
		if j != i && pj > pi {
			sum += pj - pi
		}
	}
	return sum
}

// LP returns the total extra payoff worker i obtains compared with poorer
// workers (Equation 7).
func LP(payoffs []float64, i int) float64 {
	var sum float64
	pi := payoffs[i]
	for j, pj := range payoffs {
		if j != i && pi > pj {
			sum += pi - pj
		}
	}
	return sum
}

// IAU returns worker i's inequity-aversion utility (Equation 5) given the
// payoffs of all workers. With fewer than two workers the inequity terms
// vanish and IAU equals the raw payoff.
func IAU(p Params, payoffs []float64, i int) float64 {
	n := len(payoffs)
	if n < 2 {
		return payoffs[i]
	}
	scale := 1 / float64(n-1)
	return payoffs[i] - p.Alpha*scale*MP(payoffs, i) - p.Beta*scale*LP(payoffs, i)
}

// All returns the IAU of every worker.
func All(p Params, payoffs []float64) []float64 {
	out := make([]float64, len(payoffs))
	for i := range payoffs {
		out[i] = IAU(p, payoffs, i)
	}
	return out
}

// Potential returns the exact potential Phi = sum of IAUs (Lemma 2). In an
// exact potential game, a unilateral strategy change alters Phi by exactly
// the deviator's utility change, which is what guarantees best-response
// dynamics converge to a pure Nash equilibrium.
//
// Note: the paper asserts Phi = sum IAU is an exact potential; because MP/LP
// couple workers, the identity holds exactly only when the inequity terms of
// non-deviators are unchanged. The game package therefore treats Phi as a
// Lyapunov-style progress measure and additionally bounds iterations.
func Potential(p Params, payoffs []float64) float64 {
	var phi float64
	for i := range payoffs {
		phi += IAU(p, payoffs, i)
	}
	return phi
}

// NormalizedPayoff returns the priority-normalized payoff the priority-aware
// IAU compares workers by: payoff / priority, with non-positive (or NaN)
// priorities treated as 1. The NaN guard keeps the zero-payoff identity
// NormalizedPayoff(0, pr) == 0 that the game package's index construction
// relies on — NaN <= 0 is false, so without it a NaN priority would turn a
// zero payoff into a NaN normalized value.
func NormalizedPayoff(payoff, priority float64) float64 {
	if priority <= 0 || math.IsNaN(priority) {
		priority = 1
	}
	return payoff / priority
}

// PriorityIAU is the priority-aware fairness extension (paper §VIII): the
// inequity penalties compare priority-normalized payoffs P_j / priority_j,
// so a high-priority worker is "entitled" to proportionally higher payoff
// before being considered advantaged.
func PriorityIAU(p Params, payoffs, priorities []float64, i int) float64 {
	return PriorityIAUBuf(p, payoffs, priorities, i, nil)
}

// PriorityIAUBuf is PriorityIAU with a caller-provided scratch buffer for
// the normalized payoffs, for hot loops that would otherwise allocate one
// slice per call. norm is grown when too small; passing a buffer of
// len(payoffs) capacity makes the call allocation-free. The result is
// bit-identical to PriorityIAU.
func PriorityIAUBuf(p Params, payoffs, priorities []float64, i int, norm []float64) float64 {
	n := len(payoffs)
	if n < 2 {
		return payoffs[i]
	}
	if cap(norm) < n {
		norm = make([]float64, n)
	}
	norm = norm[:n]
	for j := range payoffs {
		norm[j] = NormalizedPayoff(payoffs[j], priorities[j])
	}
	scale := 1 / float64(n-1)
	return payoffs[i] - p.Alpha*scale*MP(norm, i) - p.Beta*scale*LP(norm, i)
}
