package fairness

import (
	"math"
	"math/rand"
	"testing"
)

// approxEqual bounds the last-ulp divergence the aggregate MP/LP form is
// allowed versus the reference scan (see the Index doc comment).
func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	tol := 1e-9 * math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol
}

// valuePool deliberately contains ties, zero and near values so the
// equal-rank exclusion paths are exercised.
var valuePool = []float64{0, 0, 0.5, 0.5, 1, 1.25, 1.25, 2, 2.75, 3, 3, 4.5}

func randomPayoffs(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = valuePool[rng.Intn(len(valuePool))]
	}
	return out
}

// buildIndex constructs an index holding payoffs.
func buildIndex(prm Params, payoffs, priorities []float64) *Index {
	ix := NewIndex(prm, len(payoffs), priorities)
	for w, p := range payoffs {
		ix.Update(w, p)
	}
	return ix
}

// referenceUtility is the scratch-copy form the index replaces: worker w's
// IAU if its payoff became p, all others fixed.
func referenceUtility(prm Params, payoffs, priorities []float64, w int, p float64) float64 {
	scratch := append([]float64(nil), payoffs...)
	scratch[w] = p
	if priorities != nil {
		return PriorityIAU(prm, scratch, priorities, w)
	}
	return IAU(prm, scratch, w)
}

func TestIndexMatchesReference(t *testing.T) {
	prm := DefaultParams()
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		payoffs := randomPayoffs(rng, n)
		ix := buildIndex(prm, payoffs, nil)
		for w := 0; w < n; w++ {
			// Stored-value queries.
			wantMP, wantLP := MP(payoffs, w), LP(payoffs, w)
			mp, lp := ix.Inequity(w, payoffs[w])
			if !approxEqual(mp, wantMP) || !approxEqual(lp, wantLP) {
				t.Fatalf("seed %d worker %d: Inequity = (%g, %g), reference (%g, %g)",
					seed, w, mp, lp, wantMP, wantLP)
			}
			if got, want := ix.CurrentUtility(w), IAU(prm, payoffs, w); !approxEqual(got, want) {
				t.Fatalf("seed %d worker %d: CurrentUtility = %g, reference %g", seed, w, got, want)
			}
			// Hypothetical queries over the whole pool, including values
			// equal to other workers' payoffs (tie exclusion) and zero.
			for _, p := range valuePool {
				got := ix.Utility(w, p)
				want := referenceUtility(prm, payoffs, nil, w, p)
				if !approxEqual(got, want) {
					t.Fatalf("seed %d worker %d p=%g: Utility = %g, reference %g",
						seed, w, p, got, want)
				}
			}
		}
		if got, want := ix.Potential(), Potential(prm, payoffs); !approxEqual(got, want) {
			t.Fatalf("seed %d: Potential = %g, reference %g", seed, got, want)
		}
		ref := All(prm, payoffs)
		all := ix.All(nil)
		for w := range ref {
			if !approxEqual(all[w], ref[w]) {
				t.Fatalf("seed %d worker %d: All = %g, reference %g", seed, w, all[w], ref[w])
			}
		}
	}
}

func TestIndexPriorityMatchesReference(t *testing.T) {
	prm := Params{Alpha: 0.7, Beta: 0.3}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		payoffs := randomPayoffs(rng, n)
		priorities := make([]float64, n)
		for i := range priorities {
			// Include the non-positive priorities NormalizedPayoff treats
			// as 1.
			priorities[i] = []float64{-1, 0, 0.5, 1, 2, 4}[rng.Intn(6)]
		}
		ix := buildIndex(prm, payoffs, priorities)
		for w := 0; w < n; w++ {
			for _, p := range valuePool {
				got := ix.Utility(w, p)
				want := referenceUtility(prm, payoffs, priorities, w, p)
				if !approxEqual(got, want) {
					t.Fatalf("seed %d worker %d p=%g: priority Utility = %g, reference %g",
						seed, w, p, got, want)
				}
			}
		}
	}
}

// TestIndexHistoryIndependence pins the bit-exactness invariant the solver
// determinism tests rely on: two update sequences reaching the same payoff
// state must answer every query with the exact same bits.
func TestIndexHistoryIndependence(t *testing.T) {
	prm := DefaultParams()
	rng := rand.New(rand.NewSource(7))
	n := 8
	final := randomPayoffs(rng, n)

	direct := buildIndex(prm, final, nil)

	meandering := buildIndex(prm, make([]float64, n), nil)
	for round := 0; round < 50; round++ {
		w := rng.Intn(n)
		meandering.Update(w, valuePool[rng.Intn(len(valuePool))])
	}
	for w, p := range final {
		meandering.Update(w, p)
	}

	for w := 0; w < n; w++ {
		for _, p := range valuePool {
			a, b := direct.Utility(w, p), meandering.Utility(w, p)
			if a != b {
				t.Fatalf("worker %d p=%g: direct %g != meandering %g (history leaked into aggregates)",
					w, p, a, b)
			}
		}
	}
}

func TestIndexSingleWorker(t *testing.T) {
	ix := NewIndex(DefaultParams(), 1, nil)
	ix.Update(0, 3)
	if got := ix.Utility(0, 3); got != 3 {
		t.Fatalf("single-worker Utility = %g, want raw payoff 3", got)
	}
}

func TestIndexUtilityAllocationFree(t *testing.T) {
	payoffs := []float64{0, 1, 1, 2.75, 0.5, 3}
	ix := buildIndex(DefaultParams(), payoffs, nil)
	allocs := testing.AllocsPerRun(100, func() {
		ix.Utility(2, 2.75)
		ix.Inequity(4, 0)
	})
	if allocs != 0 {
		t.Fatalf("Index.Utility allocated %v objects per run, want 0", allocs)
	}
}

func TestPriorityIAUBufAllocationFreeAndIdentical(t *testing.T) {
	prm := DefaultParams()
	payoffs := []float64{0, 1, 1, 2.75, 0.5, 3}
	priorities := []float64{1, 2, 0.5, 1, 4, 1}
	buf := make([]float64, len(payoffs))
	for i := range payoffs {
		got := PriorityIAUBuf(prm, payoffs, priorities, i, buf)
		want := PriorityIAU(prm, payoffs, priorities, i)
		if got != want {
			t.Fatalf("worker %d: PriorityIAUBuf = %g, PriorityIAU = %g (must be bit-identical)",
				i, got, want)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		PriorityIAUBuf(prm, payoffs, priorities, 3, buf)
	})
	if allocs != 0 {
		t.Fatalf("PriorityIAUBuf allocated %v objects per run, want 0", allocs)
	}
}

// FuzzIndexUtility cross-checks arbitrary four-worker payoff vectors against
// the reference scan.
func FuzzIndexUtility(f *testing.F) {
	f.Add(0.0, 1.0, 1.0, 2.5, 1.0)
	f.Add(3.25, 0.0, 3.25, 0.125, 0.0)
	f.Add(-1.5, 2.0, 0.0, 2.0, 2.0)
	f.Fuzz(func(t *testing.T, a, b, c, d, probe float64) {
		for _, v := range []float64{a, b, c, d, probe} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				t.Skip()
			}
		}
		prm := DefaultParams()
		payoffs := []float64{a, b, c, d}
		ix := NewIndex(prm, len(payoffs), nil)
		for w, p := range payoffs {
			ix.Update(w, p)
		}
		for w := range payoffs {
			got := ix.Utility(w, probe)
			want := referenceUtility(prm, payoffs, nil, w, probe)
			if !approxEqual(got, want) {
				t.Fatalf("worker %d probe %g: Utility = %g, reference %g", w, probe, got, want)
			}
		}
	})
}

func BenchmarkIAUIndex(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	payoffs := randomPayoffs(rng, n)
	ix := buildIndex(DefaultParams(), payoffs, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Utility(i%n, valuePool[i%len(valuePool)])
	}
}

// BenchmarkIAUReference is the O(W) scan the index replaces, for comparison
// with BenchmarkIAUIndex.
func BenchmarkIAUReference(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	payoffs := randomPayoffs(rng, n)
	prm := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IAU(prm, payoffs, i%n)
	}
}
