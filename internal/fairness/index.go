package fairness

import (
	"fmt"
	"sort"
)

// Index answers IAU queries incrementally. The reference MP/LP/IAU functions
// rescan every payoff on every call, so one best-response round of the game
// package costs O(W^2 * S). The index instead keeps the current payoffs in an
// order-statistics structure — a sorted multiset with prefix sums — and
// answers
//
//	"IAU of worker w if its payoff became p, all others fixed"
//
// in O(log W): binary-search p's rank among the W stored values, then
//
//	MP = (sum of payoffs above p) - (count above p) * p
//	LP = (count below p) * p - (sum of payoffs below p)
//
// from two prefix-sum differences, excluding w's own stored value. Both
// searches touch a contiguous W-element array, so at game scale they are
// also far cheaper in cache traffic than the reference's O(W) scan.
//
// Update replaces one value in the sorted array (O(W) memmove) and rebuilds
// the prefix sums; updates happen once per actual strategy switch while
// queries happen once per candidate strategy, so the asymmetric costs
// favor the query side by orders of magnitude.
//
// Invariants:
//   - The multiset always holds exactly one value per worker (workers start
//     at 0 and move via Update), so exclusion of the querying worker is a
//     single comparison against its stored value.
//   - The prefix sums are recomputed from the sorted array after every
//     update — a pure function of the current multiset, never of the update
//     history — so equal states yield bit-equal query results regardless of
//     the switch sequence that produced them, a property the deterministic
//     same-seed solver tests rely on.
//
// Results can differ from the reference scan in the last few ulps (the
// reference accumulates (p_j - p_i) terms in worker order; the index sums
// payoffs in ascending order and subtracts count*p once). Differential tests
// in this package bound that divergence and the game/evo packages pin solver
// decisions bit-exactly against the retained reference implementations.
//
// Concurrency: the query methods — Utility, Inequity, CurrentUtility,
// Payoff, Potential, All, Workers — are pure reads and safe to call from
// any number of goroutines concurrently, as long as no Update runs at the
// same time. Update mutates the multiset and must be externally serialized
// against both other updates and all queries. The game and evo solvers'
// parallel speculative sweeps rely on exactly this contract: concurrent
// read-only queries against a frozen index, updates only in the sequential
// commit phase.
type Index struct {
	prm Params
	// priorities holds the raw worker priorities for the priority-aware
	// extension (normalization treats values <= 0 as 1, like PriorityIAU),
	// or nil for the plain IAU.
	priorities []float64
	// scale terms, precomputed with the same association the reference
	// IAU uses (alpha*scale and beta*scale each rounded once).
	aScale, bScale float64
	// vals is the sorted multiset of the workers' current normalized
	// payoffs (len = worker count).
	vals []float64
	// pre[i] is the sum of vals[:i] (len = worker count + 1).
	pre []float64
	// raw[w] is worker w's stored raw payoff; cur[w] its normalized value.
	raw, cur []float64
}

// NewIndex builds an index for n workers, all starting at payoff 0.
// priorities enables the priority-aware IAU (one raw priority per worker,
// values <= 0 normalize as 1); nil selects the plain IAU.
func NewIndex(prm Params, n int, priorities []float64) *Index {
	if priorities != nil && len(priorities) != n {
		panic(fmt.Sprintf("fairness: %d priorities for %d workers", len(priorities), n))
	}
	ix := &Index{
		prm:        prm,
		priorities: priorities,
		vals:       make([]float64, n),
		pre:        make([]float64, n+1),
		raw:        make([]float64, n),
		cur:        make([]float64, n),
	}
	if n >= 2 {
		scale := 1 / float64(n-1)
		ix.aScale = prm.Alpha * scale
		ix.bScale = prm.Beta * scale
	}
	return ix
}

// Workers returns the number of workers the index tracks.
func (ix *Index) Workers() int { return len(ix.raw) }

// normalize maps a raw payoff of worker w to the value space the multiset
// orders by (identical to the reference PriorityIAU normalization).
func (ix *Index) normalize(w int, p float64) float64 {
	if ix.priorities == nil {
		return p
	}
	return NormalizedPayoff(p, ix.priorities[w])
}

// Update sets worker w's payoff to p: remove the old normalized value from
// the sorted multiset, insert the new one, rebuild the prefix sums.
func (ix *Index) Update(w int, p float64) {
	vn := ix.normalize(w, p)
	ix.raw[w] = p
	if vn == ix.cur[w] {
		return
	}
	n := len(ix.vals)
	pos := sort.SearchFloat64s(ix.vals, ix.cur[w])
	copy(ix.vals[pos:], ix.vals[pos+1:])
	ins := sort.SearchFloat64s(ix.vals[:n-1], vn)
	copy(ix.vals[ins+1:], ix.vals[ins:n-1])
	ix.vals[ins] = vn
	ix.cur[w] = vn
	for i, v := range ix.vals {
		ix.pre[i+1] = ix.pre[i] + v
	}
}

// Payoff returns worker w's stored raw payoff.
func (ix *Index) Payoff(w int) float64 { return ix.raw[w] }

// upperBound returns the first index in the sorted slice a with a value
// strictly greater than v. (sort.Search would need a capturing closure,
// which the hot path must not allocate.)
func upperBound(a []float64, v float64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Inequity returns the MP and LP terms (Equations 6-7) worker w would incur
// if its payoff became p, the other workers' stored payoffs fixed. Both are
// clamped at 0 so rounding in the aggregate form can never turn a penalty
// into a reward.
func (ix *Index) Inequity(w int, p float64) (mp, lp float64) {
	pn := ix.normalize(w, p)
	n := len(ix.vals)
	// lo = first rank >= pn, hi = first rank > pn; values equal to pn
	// belong to neither penalty.
	lo := sort.SearchFloat64s(ix.vals, pn)
	hi := lo
	if hi < n && ix.vals[hi] == pn {
		hi = upperBound(ix.vals, pn)
	}
	sumBelow, cntBelow := ix.pre[lo], lo
	sumAbove, cntAbove := ix.pre[n]-ix.pre[hi], n-hi
	// Exclude the querying worker's own stored value.
	if cw := ix.cur[w]; cw > pn {
		sumAbove -= cw
		cntAbove--
	} else if cw < pn {
		sumBelow -= cw
		cntBelow--
	}
	mp = sumAbove - float64(cntAbove)*pn
	lp = float64(cntBelow)*pn - sumBelow
	if mp < 0 {
		mp = 0
	}
	if lp < 0 {
		lp = 0
	}
	return mp, lp
}

// Utility returns worker w's IAU (Equation 5, or the priority-aware variant
// when the index was built with priorities) if its payoff became p, all other
// workers fixed at their stored payoffs. It is the O(log W) counterpart of
//
//	scratch := append([]float64(nil), payoffs...)
//	scratch[w] = p
//	IAU(prm, scratch, w)      // or PriorityIAU
//
// and never allocates.
func (ix *Index) Utility(w int, p float64) float64 {
	if len(ix.raw) < 2 {
		return p
	}
	mp, lp := ix.Inequity(w, p)
	return p - ix.aScale*mp - ix.bScale*lp
}

// CurrentUtility returns worker w's IAU at its stored payoff.
func (ix *Index) CurrentUtility(w int) float64 {
	return ix.Utility(w, ix.raw[w])
}

// All fills dst (grown as needed) with every worker's IAU at the stored
// payoffs in O(W log W), the fast counterpart of the reference All.
func (ix *Index) All(dst []float64) []float64 {
	n := len(ix.raw)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for w := range dst {
		dst[w] = ix.CurrentUtility(w)
	}
	return dst
}

// Potential returns Phi = sum of stored-payoff IAUs (Lemma 2) in
// O(W log W) instead of the reference's O(W^2). The value can differ from
// Potential(prm, payoffs) in the final ulps; consumers that require the
// reference rounding bit-for-bit (the solver traces) keep calling the
// reference function.
func (ix *Index) Potential() float64 {
	var phi float64
	for w := range ix.raw {
		phi += ix.CurrentUtility(w)
	}
	return phi
}
