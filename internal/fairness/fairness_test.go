package fairness

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMPLP(t *testing.T) {
	p := []float64{1, 3, 5}
	// Worker 0 (payoff 1): MP = (3-1)+(5-1) = 6, LP = 0.
	if got := MP(p, 0); got != 6 {
		t.Errorf("MP(0) = %g, want 6", got)
	}
	if got := LP(p, 0); got != 0 {
		t.Errorf("LP(0) = %g, want 0", got)
	}
	// Worker 1: MP = 2, LP = 2.
	if MP(p, 1) != 2 || LP(p, 1) != 2 {
		t.Errorf("MP/LP(1) = %g/%g, want 2/2", MP(p, 1), LP(p, 1))
	}
	// Worker 2: MP = 0, LP = (5-1)+(5-3) = 6.
	if MP(p, 2) != 0 || LP(p, 2) != 6 {
		t.Errorf("MP/LP(2) = %g/%g, want 0/6", MP(p, 2), LP(p, 2))
	}
}

func TestIAU(t *testing.T) {
	p := []float64{1, 3, 5}
	prm := DefaultParams()
	// IAU_1 = 3 - 0.5/2*2 - 0.5/2*2 = 3 - 0.5 - 0.5 = 2.
	if got := IAU(prm, p, 1); math.Abs(got-2) > 1e-9 {
		t.Errorf("IAU(1) = %g, want 2", got)
	}
	// IAU_0 = 1 - 0.25*6 = -0.5.
	if got := IAU(prm, p, 0); math.Abs(got+0.5) > 1e-9 {
		t.Errorf("IAU(0) = %g, want -0.5", got)
	}
}

func TestIAUSingleWorker(t *testing.T) {
	if got := IAU(DefaultParams(), []float64{7}, 0); got != 7 {
		t.Errorf("single-worker IAU = %g, want raw payoff 7", got)
	}
}

func TestIAUEqualPayoffs(t *testing.T) {
	p := []float64{2, 2, 2, 2}
	for i := range p {
		if got := IAU(DefaultParams(), p, i); math.Abs(got-2) > 1e-9 {
			t.Errorf("equal payoffs: IAU(%d) = %g, want 2", i, got)
		}
	}
}

func TestAll(t *testing.T) {
	p := []float64{1, 3, 5}
	all := All(DefaultParams(), p)
	for i := range p {
		if all[i] != IAU(DefaultParams(), p, i) {
			t.Errorf("All[%d] mismatch", i)
		}
	}
}

// Property: IAU_i <= P_i always (penalties are non-negative), with equality
// iff all payoffs are equal or the weights are zero.
func TestIAUNeverExceedsPayoff(t *testing.T) {
	f := func(raw []uint8, a, b uint8) bool {
		if len(raw) < 2 {
			return true
		}
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = float64(v)
		}
		prm := Params{Alpha: float64(a%10) / 10, Beta: float64(b%10) / 10}
		for i := range p {
			if IAU(prm, p, i) > p[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the fairest distribution (all equal) maximizes Potential among
// mean-preserving spreads for alpha+beta >= 0.
func TestPotentialPrefersEquality(t *testing.T) {
	prm := DefaultParams()
	equal := []float64{2, 2, 2, 2}
	spread := []float64{0, 1, 3, 4} // same mean, unequal
	if Potential(prm, equal) <= Potential(prm, spread) {
		t.Errorf("Potential(equal)=%g should exceed Potential(spread)=%g",
			Potential(prm, equal), Potential(prm, spread))
	}
}

// The paper's Lemma 2 claims Phi = sum IAU is an exact potential. Because
// MP/LP couple the workers, a unilateral deviation also shifts the other
// workers' inequity terms, so the identity dU_i = dPhi holds only
// approximately. This test documents the empirically observed behaviour that
// the game package relies on: for alpha = beta = 0.5, the large majority of
// utility-improving unilateral deviations also raise Phi (the game package
// additionally caps iterations precisely because Phi is not an exact
// Lyapunov function).
func TestPotentialTracksDeviatorImprovement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prm := DefaultParams()
	improvedBoth, improvedI := 0, 0
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(5)
		p := make([]float64, n)
		for j := range p {
			p[j] = rng.Float64() * 5
		}
		i := rng.Intn(n)
		q := append([]float64(nil), p...)
		q[i] = rng.Float64() * 5
		dU := IAU(prm, q, i) - IAU(prm, p, i)
		dPhi := Potential(prm, q) - Potential(prm, p)
		if dU > 1e-9 {
			improvedI++
			if dPhi > 1e-12 {
				improvedBoth++
			}
		}
	}
	if improvedI == 0 {
		t.Fatal("no improving deviations sampled")
	}
	// Empirically about 85% of improving deviations raise Phi at
	// alpha = beta = 0.5; require > 75% so regressions in the IAU
	// arithmetic are caught without overstating the (inexact) potential.
	if float64(improvedBoth) < 0.75*float64(improvedI) {
		t.Errorf("potential rose in only %d/%d improving deviations",
			improvedBoth, improvedI)
	}
}

func TestPriorityIAU(t *testing.T) {
	prm := DefaultParams()
	p := []float64{2, 4}
	// Equal priorities: must match plain IAU.
	for i := range p {
		got := PriorityIAU(prm, p, []float64{1, 1}, i)
		want := IAU(prm, p, i)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("equal priorities: PriorityIAU(%d) = %g, want %g", i, got, want)
		}
	}
	// Worker 1 has priority 2: normalized payoffs are equal (2, 2), so no
	// penalties apply.
	if got := PriorityIAU(prm, p, []float64{1, 2}, 1); math.Abs(got-4) > 1e-9 {
		t.Errorf("priority-normalized IAU = %g, want 4", got)
	}
	// Non-positive priorities fall back to 1.
	if got := PriorityIAU(prm, p, []float64{0, -1}, 0); math.Abs(got-IAU(prm, p, 0)) > 1e-9 {
		t.Errorf("bad priorities not defaulted: %g", got)
	}
	// Single worker.
	if got := PriorityIAU(prm, []float64{3}, []float64{1}, 0); got != 3 {
		t.Errorf("single-worker PriorityIAU = %g", got)
	}
}
