package online

import (
	"math/rand"
	"testing"

	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/obs"
	"fairtask/internal/travel"
)

func matcherInstance(workers int) *model.Instance {
	in := &model.Instance{
		Center: geo.Pt(0, 0),
		Travel: travel.MustModel(geo.Euclidean{}, 1),
	}
	for w := 0; w < workers; w++ {
		in.Workers = append(in.Workers, model.Worker{
			ID: w, Loc: geo.Pt(float64(w), 0),
		})
	}
	return in
}

func TestNewMatcherNoWorkers(t *testing.T) {
	in := matcherInstance(0)
	if _, err := NewMatcher(in, Greedy); err != ErrNoWorkers {
		t.Errorf("err = %v, want ErrNoWorkers", err)
	}
}

func TestPolicyString(t *testing.T) {
	if Greedy.String() != "greedy" || FairFirst.String() != "fair-first" {
		t.Error("policy names wrong")
	}
	if Policy(99).String() != "unknown" {
		t.Error("unknown policy name")
	}
}

func TestOfferGreedyPicksFastest(t *testing.T) {
	// Worker 0 at the center, worker 1 at distance 5: greedy must use 0.
	in := matcherInstance(2)
	in.Workers[1].Loc = geo.Pt(5, 0)
	m, err := NewMatcher(in, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := m.Offer(0, Task{ID: 1, Loc: geo.Pt(1, 0), Expiry: 100, Reward: 1})
	if !ok || w != 0 {
		t.Errorf("assigned worker %d ok=%v, want worker 0", w, ok)
	}
}

func TestOfferRespectsDeadline(t *testing.T) {
	in := matcherInstance(1) // worker 0 at the center
	m, err := NewMatcher(in, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	// Task 10 km out, deadline 5 h at 1 km/h: infeasible.
	if _, ok := m.Offer(0, Task{ID: 1, Loc: geo.Pt(10, 0), Expiry: 5, Reward: 1}); ok {
		t.Error("infeasible task accepted")
	}
	rep := m.Report()
	if rep.Rejected != 1 || rep.Assigned != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestOfferBusyWorkerUnavailable(t *testing.T) {
	in := matcherInstance(1)
	m, err := NewMatcher(in, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	// First job keeps the only worker busy until t = 1.
	if _, ok := m.Offer(0, Task{ID: 1, Loc: geo.Pt(1, 0), Expiry: 10, Reward: 1}); !ok {
		t.Fatal("first task rejected")
	}
	// Second task with a deadline before the worker can possibly finish:
	// busy till 1, then back to center (1) plus 1 out -> done at 3 > 2.
	if _, ok := m.Offer(0.5, Task{ID: 2, Loc: geo.Pt(1, 0), Expiry: 2, Reward: 1}); ok {
		t.Error("task assigned to busy worker that cannot make the deadline")
	}
	// With a loose deadline the busy worker is queued behind the first job.
	if _, ok := m.Offer(0.5, Task{ID: 3, Loc: geo.Pt(1, 0), Expiry: 10, Reward: 1}); !ok {
		t.Error("loose-deadline task rejected")
	}
}

func TestFairFirstPrefersIdleWorkers(t *testing.T) {
	in := matcherInstance(2) // workers at x=0 and x=1
	m, err := NewMatcher(in, FairFirst)
	if err != nil {
		t.Fatal(err)
	}
	w1, ok := m.Offer(0, Task{ID: 1, Loc: geo.Pt(0.5, 0), Expiry: 100, Reward: 1})
	if !ok {
		t.Fatal("rejected")
	}
	w2, ok := m.Offer(0, Task{ID: 2, Loc: geo.Pt(-0.5, 0), Expiry: 100, Reward: 1})
	if !ok {
		t.Fatal("rejected")
	}
	if w1 == w2 {
		t.Errorf("fair-first gave both tasks to worker %d", w1)
	}
}

// On a random task stream, the fair-first policy must produce a lower (or
// equal) earnings-rate difference than greedy while assigning a comparable
// number of tasks.
func TestFairFirstNarrowsSpread(t *testing.T) {
	mkStream := func() []Task {
		rng := rand.New(rand.NewSource(42))
		tasks := make([]Task, 120)
		for i := range tasks {
			tasks[i] = Task{
				ID:     i,
				Loc:    geo.Pt(rng.Float64()*4-2, rng.Float64()*4-2),
				Expiry: float64(i)/10 + 4,
				Reward: 1,
			}
		}
		return tasks
	}
	run := func(p Policy) Report {
		in := matcherInstance(6)
		m, err := NewMatcher(in, p)
		if err != nil {
			t.Fatal(err)
		}
		for i, task := range mkStream() {
			m.Offer(float64(i)/10, task)
		}
		return m.Report()
	}
	g := run(Greedy)
	f := run(FairFirst)
	if f.RateDifference > g.RateDifference+1e-9 {
		t.Errorf("fair-first rate spread %.3f exceeds greedy %.3f",
			f.RateDifference, g.RateDifference)
	}
	if f.Assigned < g.Assigned/2 {
		t.Errorf("fair-first throughput collapsed: %d vs %d", f.Assigned, g.Assigned)
	}
}

func TestReportCopiesState(t *testing.T) {
	in := matcherInstance(1)
	m, err := NewMatcher(in, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	m.Offer(0, Task{ID: 1, Loc: geo.Pt(1, 0), Expiry: 10, Reward: 2})
	rep := m.Report()
	rep.Earnings[0] = -1
	if m.Report().Earnings[0] != 2 {
		t.Error("Report shares internal slices")
	}
}

func TestInstrumentMirrorsOutcomes(t *testing.T) {
	reg := obs.NewRegistry()
	om := obs.NewOnlineMetrics(reg)
	m, err := NewMatcher(matcherInstance(1), Greedy)
	if err != nil {
		t.Fatal(err)
	}
	m.Instrument(om.ForPolicy(Greedy.String()))
	if _, ok := m.Offer(0, Task{Loc: geo.Pt(1, 0), Expiry: 10, Reward: 1}); !ok {
		t.Fatal("feasible offer rejected")
	}
	if _, ok := m.Offer(0, Task{Loc: geo.Pt(1, 0), Expiry: 0.01, Reward: 1}); ok {
		t.Fatal("infeasible offer accepted")
	}
	if om.AssignedGreedy.Value() != 1 || om.RejectedGreedy.Value() != 1 {
		t.Fatalf("counters = %d/%d, want 1/1",
			om.AssignedGreedy.Value(), om.RejectedGreedy.Value())
	}
	if om.AssignedFairFirst.Value() != 0 {
		t.Fatal("wrong policy counter incremented")
	}
}
