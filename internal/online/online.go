// Package online implements the single-task assignment mode the paper
// describes in §III ("the server assigns each task to a worker at a time")
// and that the related work (Tong et al., Chen et al.) studies as online
// matching: tasks arrive one by one and must be irrevocably assigned to an
// available worker immediately.
//
// Two policies are provided: Greedy assigns the arriving task to the worker
// who can complete it fastest (maximizing the task's payoff rate), while
// FairFirst assigns it to the feasible worker with the lowest cumulative
// earnings rate — an online analogue of the paper's payoff-difference
// minimization. Comparing the two reproduces, in the online setting, the
// batch result that fairness-aware assignment narrows the earnings spread
// at a small cost in total throughput.
package online

import (
	"errors"
	"math"

	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/obs"
	"fairtask/internal/payoff"
)

// Policy selects how the matcher picks among feasible workers.
type Policy int

const (
	// Greedy picks the worker that completes the task soonest.
	Greedy Policy = iota
	// FairFirst picks the worker with the lowest cumulative earnings rate
	// (earnings per hour traveled; idle workers count as rate zero and are
	// preferred).
	FairFirst
)

// String names the policy for reports.
func (p Policy) String() string {
	switch p {
	case Greedy:
		return "greedy"
	case FairFirst:
		return "fair-first"
	default:
		return "unknown"
	}
}

// Task is one arriving delivery task: a drop-off location, an absolute
// deadline, and a reward.
type Task struct {
	ID     int
	Loc    geo.Point
	Expiry float64
	Reward float64
}

// Matcher assigns arriving tasks to workers of one distribution center.
// Create one with NewMatcher; it is not safe for concurrent use.
type Matcher struct {
	inst     *model.Instance
	policy   Policy
	busyTill []float64
	loc      []geo.Point // each worker's current location (moves with jobs)
	earnings []float64
	travel   []float64
	assigned int
	rejected int
	// cAssigned and cRejected mirror the run counters into telemetry
	// (fta_online_assigned_total / fta_online_rejected_total); nil when
	// the matcher is uninstrumented.
	cAssigned, cRejected *obs.Counter
}

// ErrNoWorkers is returned by NewMatcher for an instance without workers.
var ErrNoWorkers = errors.New("online: instance has no workers")

// NewMatcher builds a matcher over the instance's workers and travel model.
// Delivery points of the instance are not used; tasks carry their own
// locations.
func NewMatcher(in *model.Instance, policy Policy) (*Matcher, error) {
	if len(in.Workers) == 0 {
		return nil, ErrNoWorkers
	}
	m := &Matcher{
		inst:     in,
		policy:   policy,
		busyTill: make([]float64, len(in.Workers)),
		loc:      make([]geo.Point, len(in.Workers)),
		earnings: make([]float64, len(in.Workers)),
		travel:   make([]float64, len(in.Workers)),
	}
	for i := range in.Workers {
		m.loc[i] = in.Workers[i].Loc
	}
	return m, nil
}

// Instrument mirrors every Offer outcome into the counters — typically the
// policy's pair from obs.OnlineMetrics.ForPolicy. Nil counters disable the
// corresponding side.
func (m *Matcher) Instrument(assigned, rejected *obs.Counter) {
	m.cAssigned, m.cRejected = assigned, rejected
}

// Offer presents a task arriving at the given time. The matcher assigns it
// per its policy to a worker who can pick the package up at the center and
// reach the task location before expiry, or rejects it (ok == false). An
// assigned worker is busy until delivery completes and ends up at the task
// location.
func (m *Matcher) Offer(now float64, task Task) (worker int, ok bool) {
	type cand struct {
		w    int
		done float64
		dist float64
	}
	best := cand{w: -1}
	bestKey := math.Inf(1)
	for w := range m.busyTill {
		start := now
		if m.busyTill[w] > start {
			start = m.busyTill[w]
		}
		toCenter := m.inst.Travel.Time(m.loc[w], m.inst.Center)
		toTask := m.inst.Travel.Time(m.inst.Center, task.Loc)
		done := start + toCenter + toTask
		if done > task.Expiry {
			continue
		}
		var key float64
		switch m.policy {
		case FairFirst:
			key = m.rate(w)
		default:
			key = done
		}
		if key < bestKey {
			bestKey = key
			best = cand{w: w, done: done, dist: toCenter + toTask}
		}
	}
	if best.w == -1 {
		m.rejected++
		if m.cRejected != nil {
			m.cRejected.Inc()
		}
		return -1, false
	}
	worker = best.w
	m.busyTill[worker] = best.done
	m.loc[worker] = task.Loc
	m.earnings[worker] += task.Reward
	m.travel[worker] += best.dist
	m.assigned++
	if m.cAssigned != nil {
		m.cAssigned.Inc()
	}
	return worker, true
}

// rate returns worker w's cumulative earnings rate (reward per hour of
// travel), 0 when the worker has not traveled yet.
func (m *Matcher) rate(w int) float64 {
	if m.travel[w] == 0 {
		return 0
	}
	return m.earnings[w] / m.travel[w]
}

// Report summarizes a matcher's run so far.
type Report struct {
	// Policy is the matching policy used.
	Policy Policy
	// Assigned and Rejected count offered tasks.
	Assigned, Rejected int
	// Earnings and TravelTime are per-worker cumulative values.
	Earnings, TravelTime []float64
	// RateDifference is P_dif over the workers' earnings rates.
	RateDifference float64
	// RateAverage is the mean earnings rate.
	RateAverage float64
}

// Report returns the current summary.
func (m *Matcher) Report() Report {
	rates := make([]float64, len(m.earnings))
	for w := range rates {
		rates[w] = m.rate(w)
	}
	return Report{
		Policy:         m.policy,
		Assigned:       m.assigned,
		Rejected:       m.rejected,
		Earnings:       append([]float64(nil), m.earnings...),
		TravelTime:     append([]float64(nil), m.travel...),
		RateDifference: payoff.Difference(rates),
		RateAverage:    payoff.Average(rates),
	}
}
