package vdps

import "fairtask/internal/model"

// Rebind repoints the generator at a structurally identical instance: the
// same delivery points (count, order, locations, earliest expiries) and the
// same travel model, but possibly different task rewards or a different
// worker roster. Per-worker queries (WorkerStrategies, ForWorker) read the
// new instance immediately; candidate structure is untouched.
//
// Rebind is the cheap half of incremental strategy-space repair for the
// streaming engine: worker arrivals and departures never change the
// center-level candidate DP, and reward-only task churn changes candidate
// rewards but not frontiers. Callers are responsible for the structural
// contract — a delta that changes any point's earliest expiry (or the point
// set itself) invalidates the DP and requires a full Generate instead.
func (g *Generator) Rebind(in *model.Instance) {
	g.inst = in
}

// EffectiveMaxSize returns the candidate-set size cap Generate would apply
// to the instance under the options: Options.MaxSize when positive,
// otherwise the worker-derived cap, both clamped to the point count. The
// streaming engine compares this value across a worker-roster delta to
// decide whether a cached generator still covers every set size a worker
// could ask for, or whether the candidate DP must be re-run.
func EffectiveMaxSize(in *model.Instance, opt Options) int {
	ms := opt.MaxSize
	if ms <= 0 {
		ms = derivedMaxSize(in)
	}
	if ms > len(in.Points) {
		ms = len(in.Points)
	}
	return ms
}

// RepairRewards recomputes the cached Reward of every candidate containing
// at least one of the given delivery points, after task arrivals, removals
// or reward changes confined to those points. It returns the indices of
// candidates whose reward actually changed (bitwise), in ascending order.
//
// Each affected reward is recomputed from scratch by summing the point
// rewards in ascending point order — exactly the accumulation order
// addCandidate uses during a cold Generate — so a repaired generator is
// bit-identical to a freshly generated one on every field the solvers read.
// Strategy references handed out before the repair hold stale payoffs;
// rebuild affected workers with WorkerStrategies.
func (g *Generator) RepairRewards(points []int) []int {
	if len(points) == 0 {
		return nil
	}
	touched := make(map[int]bool, len(points))
	for _, p := range points {
		touched[p] = true
	}
	var changed []int
	for ci := range g.candidates {
		c := &g.candidates[ci]
		hit := false
		for _, p := range c.Points {
			if touched[p] {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		var reward float64
		for _, p := range c.Points {
			reward += g.inst.Points[p].TotalReward()
		}
		if reward != c.Reward {
			c.Reward = reward
			changed = append(changed, ci)
		}
	}
	return changed
}
