package vdps

import (
	"context"
	"math"
	"slices"
	"sort"

	"fairtask/internal/bitset"
	"fairtask/internal/geo"
	"fairtask/internal/grid"
	"fairtask/internal/model"
)

// Rebind repoints the generator at a structurally identical instance: the
// same delivery points (count, order, locations, earliest expiries) and the
// same travel model, but possibly different task rewards or a different
// worker roster. Per-worker queries (WorkerStrategies, ForWorker) read the
// new instance immediately; candidate structure is untouched.
//
// Rebind is the cheap half of incremental strategy-space repair for the
// streaming engine: worker arrivals and departures never change the
// center-level candidate DP, and reward-only task churn changes candidate
// rewards but not frontiers. Callers are responsible for the structural
// contract — a delta that changes any point's earliest expiry (or the point
// set itself) invalidates the DP and requires a full Generate instead.
func (g *Generator) Rebind(in *model.Instance) {
	g.inst = in
}

// EffectiveMaxSize returns the candidate-set size cap Generate would apply
// to the instance under the options: Options.MaxSize when positive,
// otherwise the worker-derived cap, both clamped to the point count. The
// streaming engine compares this value across a worker-roster delta to
// decide whether a cached generator still covers every set size a worker
// could ask for, or whether the candidate DP must be re-run.
func EffectiveMaxSize(in *model.Instance, opt Options) int {
	ms := opt.MaxSize
	if ms <= 0 {
		ms = derivedMaxSize(in)
	}
	if ms > len(in.Points) {
		ms = len(in.Points)
	}
	return ms
}

// RepairRewards recomputes the cached Reward of every candidate containing
// at least one of the given delivery points, after task arrivals, removals
// or reward changes confined to those points. It returns the indices of
// candidates whose reward actually changed (bitwise), in ascending order.
//
// Each affected reward is recomputed from scratch by summing the point
// rewards in ascending point order — exactly the accumulation order
// addCandidate uses during a cold Generate — so a repaired generator is
// bit-identical to a freshly generated one on every field the solvers read.
// Strategy references handed out before the repair hold stale payoffs;
// rebuild affected workers with WorkerStrategies.
func (g *Generator) RepairRewards(points []int) []int {
	if len(points) == 0 {
		return nil
	}
	touched := make(map[int]bool, len(points))
	for _, p := range points {
		touched[p] = true
	}
	var changed []int
	for ci := range g.candidates {
		c := &g.candidates[ci]
		hit := false
		for _, p := range c.Points {
			if touched[p] {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		var reward float64
		for _, p := range c.Points {
			reward += g.inst.Points[p].TotalReward()
		}
		if reward != c.Reward {
			c.Reward = reward
			changed = append(changed, ci)
		}
	}
	return changed
}

// RepairStrategyPayoffs recomputes the payoff keys of worker w's cached
// strategy list in place after candidate rewards changed, instead of
// re-enumerating the candidate table through WorkerStrategies. Reward changes
// cannot alter which candidates are feasible for a worker or which frontier
// entry is fastest (both depend only on expiries and geometry), so the list's
// (candidate, entry) membership is still exact — only the payoff keys and
// their order are stale.
//
// changed lists, ascending, the candidate indices whose Reward RepairRewards
// just moved; only refs pointing at those candidates are re-keyed. Everything
// else in the cached list keeps its exact payoff bits and its relative order
// — WorkerStrategies' total order is payoff descending with ascending
// candidate on ties, and candidate indices are unique within a list, so that
// order is strict and the unchanged entries are already a sorted subsequence
// of the final list. The repair therefore splits the list, re-keys and sorts
// only the (typically few) changed entries, and merges: O(n + k log k)
// instead of the full re-enumeration's candidate-table scan and n-entry sort.
// The result is bit-identical, values and permutation, to a fresh
// WorkerStrategies call. refs is mutated in place; callers own the
// transactional consequences (the streaming engine's dirty-flag protocol).
func (g *Generator) RepairStrategyPayoffs(w int, refs []StrategyRef, changed []int, sc *StrategyScratch) {
	n := len(refs)
	if n == 0 || len(changed) == 0 {
		return
	}
	// Partition: unchanged entries slide to the front of refs preserving
	// their (already final) order; changed entries gather into scratch.
	keys := sc.keys[:0]
	u := 0
	for i := range refs {
		ci := int(refs[i].Cand)
		if j := sort.SearchInts(changed, ci); j < len(changed) && changed[j] == ci {
			keys = append(keys, refs[i])
		} else {
			refs[u] = refs[i]
			u++
		}
	}
	sc.keys = keys
	k := len(keys)
	if k == 0 {
		return
	}
	approach := g.inst.ApproachTime(w)
	factor := g.inst.SpeedFactor(w)
	if factor == 1 {
		for i := range keys {
			c := &g.candidates[keys[i].Cand]
			keys[i].Payoff = c.Reward / (approach + c.Frontier[keys[i].Entry].Time)
		}
	} else {
		for i := range keys {
			c := &g.candidates[keys[i].Cand]
			keys[i].Payoff = c.Reward / (approach + factor*c.Frontier[keys[i].Entry].Time)
		}
	}
	if cap(sc.tmp) < k {
		sc.tmp = make([]StrategyRef, k, cap(sc.keys))
	}
	out := sortKeysByPayoffDesc(keys, sc.tmp[:k])
	// The stable radix sort orders equal payoffs by input order; restore the
	// ascending-candidate tie-break within each equal-payoff run. Payoffs are
	// non-negative, so value ties are exactly bit-pattern ties and runs are
	// adjacent after the radix pass (and almost always length 1).
	for i := 0; i < k; {
		j := i + 1
		for j < k && math.Float64bits(out[j].Payoff) == math.Float64bits(out[i].Payoff) {
			j++
		}
		if j-i > 1 {
			slices.SortFunc(out[i:j], func(a, b StrategyRef) int { return int(a.Cand) - int(b.Cand) })
		}
		i = j
	}
	// Backward merge of the two sorted runs into refs[:n].
	i, j, p := u-1, k-1, n-1
	for j >= 0 {
		if i >= 0 && refLess(&out[j], &refs[i]) {
			refs[p] = refs[i]
			i--
		} else {
			refs[p] = out[j]
			j--
		}
		p--
	}
}

// refLess orders strategy references the way WorkerStrategies emits them:
// payoff descending, candidate ascending on ties.
func refLess(a, b *StrategyRef) bool {
	da, db := descBits(a.Payoff), descBits(b.Payoff)
	if da != db {
		return da < db
	}
	return a.Cand < b.Cand
}

// FeasibleFor reports whether candidate ci is a strategy WorkerStrategies
// would include for worker w: the set size respects the worker's maxDP and
// some frontier sequence is executable within all deadlines at the worker's
// speed. The streaming engine uses it to decide whether a regenerated
// candidate widens a worker's strategy space.
func (g *Generator) FeasibleFor(w, ci int) bool {
	if maxDP := g.inst.Workers[w].MaxDP; maxDP > 0 && int(g.setSize[ci]) > maxDP {
		return false
	}
	c := &g.candidates[ci]
	approach := g.inst.ApproachTime(w)
	if factor := g.inst.SpeedFactor(w); factor != 1 {
		fi, ok := c.bestForScaledIndex(g.inst, w)
		return ok && approach+factor*c.Frontier[fi].Time > 0
	}
	if g.maxSlack[ci] < approach {
		return false
	}
	fi, _ := c.bestForIndex(approach)
	return approach+c.Frontier[fi].Time > 0
}

// ExpiryRepair reports the candidate-table surgery RepairExpiries performed,
// in terms the strategy-space caches above the generator need to stay
// consistent: how retained candidate indices moved, which candidates are
// gone, and which are regenerated.
type ExpiryRepair struct {
	// Remap maps every pre-repair candidate index to its post-repair index,
	// or -1 for candidates that were dropped (they contained a changed
	// point). Retained candidates keep their identity: points, frontier and
	// reward are untouched, only the index moves.
	Remap []int
	// Dropped lists the pre-repair indices of dropped candidates, ascending.
	Dropped []int
	// Fresh lists the post-repair indices of regenerated candidates —
	// every candidate containing at least one changed point that is feasible
	// under the new expiries — ascending.
	Fresh []int
}

// RepairExpiries re-runs the candidate DP restricted to the sets containing
// at least one of the given delivery points, after those points' earliest
// task expiries changed, and splices the regenerated candidates into the
// table in the deterministic (size, lexicographic points) order. Candidates
// without a changed point are retained as-is: a set's feasible sequences and
// Pareto frontier depend only on the expiries and geometry of its own
// points, so a full GenerateContext on the mutated instance would rebuild
// them bit-identically.
//
// The restricted DP explores exactly the states that can still reach a
// changed point: a state is kept when its set already contains one, or when
// the remaining size budget covers the ε-graph hop distance from its last
// point to the nearest changed point (a lower bound on any extension path,
// so the pruning never loses a candidate). On dense instances where every
// set can reach every point this degrades to the full DP; on ε-sparse
// instances it touches a small neighborhood of the changed points.
//
// The generator must already be rebound to the mutated instance. On error
// (cancellation, ErrTooManySets) the candidate table is left untouched.
// Cached strategy lists hold pre-repair candidate indices; remap unaffected
// lists with Remap and rebuild workers referencing Dropped candidates or
// gaining Fresh ones.
func (g *Generator) RepairExpiries(ctx context.Context, points []int) (ExpiryRepair, error) {
	if len(points) == 0 {
		remap := make([]int, len(g.candidates))
		for i := range remap {
			remap[i] = i
		}
		return ExpiryRepair{Remap: remap}, nil
	}
	in := g.inst
	n := len(in.Points)
	changed := make([]bool, n)
	changedMask := bitset.New(n)
	for _, p := range points {
		changed[p] = true
		changedMask = changedMask.With(p)
	}
	maxSize := g.stats.MaxSetSize
	eps := g.opt.Epsilon
	if eps <= 0 {
		eps = math.Inf(1)
	}

	expiry := make([]float64, n)
	for i := range in.Points {
		expiry[i] = in.Points[i].EarliestExpiry()
	}
	var neighbors [][]int
	if !math.IsInf(eps, 1) && !g.opt.DisableIndex && n > 0 {
		locs := make([]geo.Point, n)
		for i := range in.Points {
			locs[i] = in.Points[i].Loc
		}
		neighbors = grid.New(locs, eps).Neighborhoods(eps)
	}

	hops := hopDistances(in, changed, neighbors, eps)
	// keep retains a DP state that contains a changed point or can still
	// absorb one within the remaining size budget. Every ancestor of a kept
	// state is kept (the hop bound relaxes by exactly one per removed
	// extension step), so kept states carry their full, exact frontiers.
	keep := func(ds *dpState, size int) bool {
		if ds.set.Intersects(changedMask) {
			return true
		}
		return hops[ds.last] <= maxSize-size
	}

	retained := 0
	for ci := range g.candidates {
		if !g.candidates[ci].Mask.Intersects(changedMask) {
			retained++
		}
	}

	// Restricted DP, mirroring GenerateContext's level loop.
	level := make([]*dpState, 0, n)
	byCand := map[string]*Candidate{}
	for j := 0; j < n; j++ {
		t := in.Travel.Time(in.Center, in.Points[j].Loc)
		if t > expiry[j] {
			continue
		}
		st := State{Seq: model.Route{j}, Time: t, Slack: expiry[j] - t}
		ds := &dpState{set: bitset.Of(j), last: j, frontier: []State{st}}
		if !keep(ds, 1) {
			continue
		}
		level = append(level, ds)
		if changed[j] {
			g.addCandidate(byCand, ds)
		}
	}
	all := allPoints(n)
	for size := 2; size <= maxSize && len(level) > 0; size++ {
		if err := ctx.Err(); err != nil {
			return ExpiryRepair{}, err
		}
		next, _ := expandChunk(ctx, g, level, all, neighbors, expiry, eps)
		if err := ctx.Err(); err != nil {
			return ExpiryRepair{}, err
		}
		level = level[:0]
		for _, ds := range next {
			if !keep(ds, size) {
				continue
			}
			level = append(level, ds)
			if ds.set.Intersects(changedMask) {
				g.addCandidate(byCand, ds)
				if g.opt.MaxSets > 0 && retained+len(byCand) > g.opt.MaxSets {
					return ExpiryRepair{}, ErrTooManySets
				}
			}
		}
	}

	// Finalize the regenerated candidates and splice them into the retained
	// table in candLess order — the same total order finalizeCandidates
	// establishes, so the repaired table is bit-identical to a full re-run.
	fresh := make([]Candidate, 0, len(byCand))
	for _, c := range byCand {
		sortFrontier(c.Frontier)
		fresh = append(fresh, *c)
	}
	sort.Slice(fresh, func(i, j int) bool { return candLess(&fresh[i], &fresh[j]) })

	rep := ExpiryRepair{Remap: make([]int, len(g.candidates))}
	merged := make([]Candidate, 0, retained+len(fresh))
	fi := 0
	for ci := range g.candidates {
		c := &g.candidates[ci]
		if c.Mask.Intersects(changedMask) {
			rep.Remap[ci] = -1
			rep.Dropped = append(rep.Dropped, ci)
			continue
		}
		for fi < len(fresh) && candLess(&fresh[fi], c) {
			rep.Fresh = append(rep.Fresh, len(merged))
			merged = append(merged, fresh[fi])
			fi++
		}
		rep.Remap[ci] = len(merged)
		merged = append(merged, *c)
	}
	for ; fi < len(fresh); fi++ {
		rep.Fresh = append(rep.Fresh, len(merged))
		merged = append(merged, fresh[fi])
	}

	g.candidates = merged
	g.stats.Candidates = len(merged)
	g.maxSlack = make([]float64, len(merged))
	g.setSize = make([]int32, len(merged))
	for ci := range merged {
		g.maxSlack[ci] = merged[ci].MaxSlack()
		g.setSize[ci] = int32(len(merged[ci].Points))
	}
	return rep, nil
}

// hopDistances returns each point's BFS hop distance to the nearest changed
// point over the ε-adjacency graph (0 for changed points). The adjacency
// used is the Euclidean-ball superset the DP's grid index provides, which
// can only under-estimate distances for metrics whose travel distance
// exceeds the Euclidean one — an under-estimate weakens the pruning but
// never loses a reachable candidate. With ε disabled every pair is adjacent.
func hopDistances(in *model.Instance, changed []bool, neighbors [][]int, eps float64) []int {
	n := len(in.Points)
	const far = 1 << 30
	hops := make([]int, n)
	queue := make([]int, 0, n)
	for p := 0; p < n; p++ {
		if changed[p] {
			hops[p] = 0
			queue = append(queue, p)
		} else {
			hops[p] = far
		}
	}
	if math.IsInf(eps, 1) {
		for p := range hops {
			if hops[p] != 0 {
				hops[p] = 1
			}
		}
		return hops
	}
	adj := neighbors
	if adj == nil {
		// Index disabled: build the ε-ball adjacency with a direct scan.
		locs := make([]geo.Point, n)
		for i := range in.Points {
			locs[i] = in.Points[i].Loc
		}
		adj = grid.New(locs, eps).Neighborhoods(eps)
	}
	for qi := 0; qi < len(queue); qi++ {
		p := queue[qi]
		for _, q := range adj[p] {
			if hops[q] > hops[p]+1 {
				hops[q] = hops[p] + 1
				queue = append(queue, q)
			}
		}
	}
	return hops
}
