package vdps

import (
	"math"
	"math/rand"
	"testing"

	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/travel"
)

// assertFrontierMonotone checks the documented frontier contract on every
// candidate: non-empty, sorted by strictly ascending Time, and — because
// dominance removes any state that is no slower and no slacker than another —
// strictly ascending Slack too.
func assertFrontierMonotone(t *testing.T, g *Generator) {
	t.Helper()
	for ci := range g.Candidates() {
		c := &g.Candidates()[ci]
		if len(c.Frontier) == 0 {
			t.Fatalf("candidate %v has an empty frontier", c.Points)
		}
		for i := 1; i < len(c.Frontier); i++ {
			prev, cur := c.Frontier[i-1], c.Frontier[i]
			if !(cur.Time > prev.Time) {
				t.Errorf("candidate %v: frontier Time not strictly ascending: %g after %g",
					c.Points, cur.Time, prev.Time)
			}
			if !(cur.Slack > prev.Slack) {
				t.Errorf("candidate %v: frontier Slack not strictly ascending: %g after %g",
					c.Points, cur.Slack, prev.Slack)
			}
		}
	}
}

// TestFrontierTwoStateDeterministic pins a hand-computed two-state frontier.
// Point A at (1,0) with a loose deadline, point B at (0,1.2) with a tight
// one:
//
//	A then B: time 1 + |A-B| = 1 + sqrt(1+1.44) = 2.562, slack
//	          min(10-1, 3-2.562) = 0.438
//	B then A: time 1.2 + |B-A| = 2.762, slack min(3-1.2, 10-2.762) = 1.8
//
// Neither order dominates: A-first is faster, B-first has more slack, so the
// {A,B} frontier must keep both states, ascending in both coordinates.
func TestFrontierTwoStateDeterministic(t *testing.T) {
	in := &model.Instance{
		Center: geo.Pt(0, 0),
		Travel: travel.MustModel(geo.Euclidean{}, 1),
		Points: []model.DeliveryPoint{
			{ID: 0, Loc: geo.Pt(1, 0), Tasks: []model.Task{{ID: 0, Point: 0, Expiry: 10, Reward: 1}}},
			{ID: 1, Loc: geo.Pt(0, 1.2), Tasks: []model.Task{{ID: 1, Point: 1, Expiry: 3, Reward: 1}}},
		},
		Workers: []model.Worker{{ID: 0, Loc: geo.Pt(0, 0), MaxDP: 2}},
	}
	g, err := Generate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertFrontierMonotone(t, g)

	var pair *Candidate
	for ci := range g.Candidates() {
		if len(g.Candidates()[ci].Points) == 2 {
			pair = &g.Candidates()[ci]
		}
	}
	if pair == nil {
		t.Fatal("pair candidate {0,1} not generated")
	}
	if len(pair.Frontier) != 2 {
		t.Fatalf("pair frontier has %d states, want 2: %+v", len(pair.Frontier), pair.Frontier)
	}
	ab := 1 + math.Hypot(1, 1.2)
	ba := 1.2 + math.Hypot(1, 1.2)
	if math.Abs(pair.Frontier[0].Time-ab) > 1e-9 || math.Abs(pair.Frontier[0].Slack-(3-ab)) > 1e-9 {
		t.Errorf("first state = %+v, want time %g slack %g", pair.Frontier[0], ab, 3-ab)
	}
	if math.Abs(pair.Frontier[1].Time-ba) > 1e-9 || math.Abs(pair.Frontier[1].Slack-1.8) > 1e-9 {
		t.Errorf("second state = %+v, want time %g slack 1.8", pair.Frontier[1], ba)
	}
}

// TestFrontierMonotoneRandom sweeps random instances with heterogeneous
// expiries — the regime that actually produces multi-state frontiers — and
// asserts the monotonicity contract on every candidate.
func TestFrontierMonotoneRandom(t *testing.T) {
	multi := 0
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := &model.Instance{
			Center: geo.Pt(0, 0),
			Travel: travel.MustModel(geo.Euclidean{}, 1),
		}
		for i := 0; i < 7; i++ {
			in.Points = append(in.Points, model.DeliveryPoint{
				ID:  i,
				Loc: geo.Pt(rng.Float64()*4-2, rng.Float64()*4-2),
				Tasks: []model.Task{{
					ID: i, Point: i,
					Expiry: 2 + rng.Float64()*8,
					Reward: 1,
				}},
			})
		}
		in.Workers = []model.Worker{{ID: 0, MaxDP: 3}}
		g, err := Generate(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		assertFrontierMonotone(t, g)
		for ci := range g.Candidates() {
			if len(g.Candidates()[ci].Frontier) > 1 {
				multi++
			}
		}
	}
	if multi == 0 {
		t.Error("no multi-state frontier across all seeds; test exercises nothing")
	}
}
