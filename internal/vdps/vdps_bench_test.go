package vdps

import (
	"math/rand"
	"testing"

	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/travel"
)

func benchInstance(nPoints int) *model.Instance {
	rng := rand.New(rand.NewSource(1))
	in := &model.Instance{
		Center: geo.Pt(5, 5),
		Travel: travel.MustModel(geo.Euclidean{}, 5),
	}
	for i := 0; i < nPoints; i++ {
		in.Points = append(in.Points, model.DeliveryPoint{
			ID:  i,
			Loc: geo.Pt(rng.Float64()*15, rng.Float64()*15),
			Tasks: []model.Task{
				{ID: i, Point: i, Expiry: 2, Reward: 1},
			},
		})
	}
	in.Workers = []model.Worker{{ID: 0, Loc: geo.Pt(5, 5), MaxDP: 3}}
	return in
}

func BenchmarkGeneratePruned(b *testing.B) {
	in := benchInstance(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(in, Options{Epsilon: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateUnpruned(b *testing.B) {
	in := benchInstance(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(in, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateParallel(b *testing.B) {
	in := benchInstance(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(in, Options{Epsilon: 2, Parallel: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateSampled(b *testing.B) {
	in := benchInstance(100)
	in.Workers[0].MaxDP = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateSampled(in, SampleOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForWorker(b *testing.B) {
	in := benchInstance(100)
	g, err := Generate(in, Options{Epsilon: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ForWorker(0)
	}
}
