package vdps

import (
	"math"
	"math/rand"
	"testing"

	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/travel"
)

// lineInstance places nPoints delivery points at x = 1..n on the x axis,
// center at the origin, one worker at (-1, 0), unit speed, one unit-reward
// task per point with the given expiry.
func lineInstance(nPoints int, expiry float64, maxDP int) *model.Instance {
	in := &model.Instance{
		Center: geo.Pt(0, 0),
		Travel: travel.MustModel(geo.Euclidean{}, 1),
	}
	for i := 0; i < nPoints; i++ {
		in.Points = append(in.Points, model.DeliveryPoint{
			ID:  i,
			Loc: geo.Pt(float64(i+1), 0),
			Tasks: []model.Task{
				{ID: i, Point: i, Expiry: expiry, Reward: 1},
			},
		})
	}
	in.Workers = []model.Worker{{ID: 0, Loc: geo.Pt(-1, 0), MaxDP: maxDP}}
	return in
}

func TestGenerateSingletons(t *testing.T) {
	in := lineInstance(3, 100, 1)
	g, err := Generate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// maxDP 1 -> only singleton sets.
	if got := len(g.Candidates()); got != 3 {
		t.Fatalf("candidates = %d, want 3", got)
	}
	for _, c := range g.Candidates() {
		if len(c.Points) != 1 {
			t.Errorf("candidate %v has size %d, want 1", c.Points, len(c.Points))
		}
		if len(c.Frontier) != 1 {
			t.Errorf("singleton frontier size = %d", len(c.Frontier))
		}
	}
	// Point at x=2: time 2, slack 98.
	c := g.Candidates()[1]
	if c.Points[0] != 1 {
		t.Fatalf("unexpected ordering: %v", c.Points)
	}
	if math.Abs(c.MinTime()-2) > 1e-9 || math.Abs(c.MaxSlack()-98) > 1e-9 {
		t.Errorf("time/slack = %g/%g, want 2/98", c.MinTime(), c.MaxSlack())
	}
}

func TestGenerateRespectsDeadlines(t *testing.T) {
	// Expiry 2.5: singleton x=3 unreachable (arrival 3 from center).
	in := lineInstance(3, 2.5, 3)
	g, err := Generate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range g.Candidates() {
		for _, p := range c.Points {
			if p == 2 {
				t.Errorf("candidate %v contains unreachable point 2", c.Points)
			}
		}
	}
	// {0,1} must be present (arrivals 1, 2 <= 2.5).
	found := false
	for _, c := range g.Candidates() {
		if len(c.Points) == 2 && c.Points[0] == 0 && c.Points[1] == 1 {
			found = true
			// Optimal order visits x=1 then x=2: time 2.
			if math.Abs(c.MinTime()-2) > 1e-9 {
				t.Errorf("{0,1} min time = %g, want 2", c.MinTime())
			}
		}
	}
	if !found {
		t.Error("feasible pair {0,1} not generated")
	}
}

func TestGenerateFullLine(t *testing.T) {
	in := lineInstance(4, 100, 0) // unlimited maxDP
	g, err := Generate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All 2^4-1 = 15 non-empty subsets are feasible with a loose deadline.
	if got := len(g.Candidates()); got != 15 {
		t.Fatalf("candidates = %d, want 15", got)
	}
	// The full set's min time is a shortest feasible path; visiting in order
	// 1,2,3,4 gives 4.
	last := g.Candidates()[len(g.Candidates())-1]
	if len(last.Points) != 4 {
		t.Fatalf("last candidate size = %d", len(last.Points))
	}
	if math.Abs(last.MinTime()-4) > 1e-9 {
		t.Errorf("full-set min time = %g, want 4", last.MinTime())
	}
}

func TestEpsilonPruning(t *testing.T) {
	// Points at x = 1, 2, 10: the leg 2->10 (8 km) exceeds eps=2, so sets
	// containing both 'near' and 'far' points cannot be built, but the far
	// singleton remains (center legs are not pruned, matching Algorithm 1's
	// |Q| = 1 base case).
	in := &model.Instance{
		Center: geo.Pt(0, 0),
		Travel: travel.MustModel(geo.Euclidean{}, 1),
	}
	for i, x := range []float64{1, 2, 10} {
		in.Points = append(in.Points, model.DeliveryPoint{
			ID: i, Loc: geo.Pt(x, 0),
			Tasks: []model.Task{{ID: i, Point: i, Expiry: 100, Reward: 1}},
		})
	}
	in.Workers = []model.Worker{{ID: 0, Loc: geo.Pt(0, 0), MaxDP: 0}}

	g, err := Generate(in, Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range g.Candidates() {
		if len(c.Points) > 1 && c.Mask.Has(2) {
			t.Errorf("pruned generation produced %v containing the far point", c.Points)
		}
	}
	hasFarSingleton := false
	for _, c := range g.Candidates() {
		if len(c.Points) == 1 && c.Points[0] == 2 {
			hasFarSingleton = true
		}
	}
	if !hasFarSingleton {
		t.Error("far singleton should survive pruning")
	}
	if g.Stats().ExtensionsPruned == 0 {
		t.Error("expected pruned extensions to be counted")
	}

	// Without pruning, the mixed sets exist.
	gw, err := Generate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gw.Candidates()) <= len(g.Candidates()) {
		t.Errorf("unpruned candidates (%d) should exceed pruned (%d)",
			len(gw.Candidates()), len(g.Candidates()))
	}
}

func TestMaxSetsLimit(t *testing.T) {
	in := lineInstance(6, 100, 0)
	if _, err := Generate(in, Options{MaxSets: 5}); err == nil {
		t.Error("expected ErrTooManySets")
	}
}

func TestGenerateRejectsInvalidInstance(t *testing.T) {
	in := lineInstance(2, 100, 1)
	in.Workers[0].MaxDP = -1
	if _, err := Generate(in, Options{}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestForWorker(t *testing.T) {
	in := lineInstance(3, 100, 2)
	g, err := Generate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ws := g.ForWorker(0)
	if len(ws) == 0 {
		t.Fatal("worker has no strategies")
	}
	// Ordered by descending payoff.
	for i := 1; i < len(ws); i++ {
		if ws[i].Payoff > ws[i-1].Payoff+1e-12 {
			t.Errorf("strategies not sorted: %g before %g", ws[i-1].Payoff, ws[i].Payoff)
		}
	}
	// maxDP = 2: no strategy with 3 points.
	for _, s := range ws {
		if len(s.Seq) > 2 {
			t.Errorf("strategy %v exceeds maxDP", s.Seq)
		}
		// Payoff consistency.
		if math.Abs(s.Payoff-s.Reward/s.Time) > 1e-9 {
			t.Errorf("payoff inconsistent: %g vs %g", s.Payoff, s.Reward/s.Time)
		}
		// Every strategy must be feasible for the worker.
		if !in.RouteFeasible(0, s.Seq) {
			t.Errorf("strategy %v infeasible for worker", s.Seq)
		}
	}
	// Best strategy for the line with approach 1: {0,1} visited 1,2 ->
	// reward 2 / time 3 = 0.667 beats {0} (1/2) and {0,1,2} excluded by maxDP.
	best := ws[0]
	if math.Abs(best.Payoff-2.0/3) > 1e-9 {
		t.Errorf("best payoff = %g, want 2/3", best.Payoff)
	}
}

func TestForWorkerApproachFiltering(t *testing.T) {
	// Deadline 3: center-origin route to x=2 arrives at 2 (slack 1 at best).
	// A worker 2 km from the center (approach 2) cannot use it; a worker at
	// the center can.
	in := lineInstance(2, 3, 0)
	in.Workers = []model.Worker{
		{ID: 0, Loc: geo.Pt(0, 0)},
		{ID: 1, Loc: geo.Pt(-2, 0)},
	}
	g, err := Generate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	atCenter := g.ForWorker(0)
	far := g.ForWorker(1)
	if len(atCenter) <= len(far) {
		t.Errorf("worker at center has %d strategies, far worker %d; want strictly more",
			len(atCenter), len(far))
	}
	for _, s := range far {
		if !in.RouteFeasible(1, s.Seq) {
			t.Errorf("far worker given infeasible strategy %v", s.Seq)
		}
	}
}

// bruteCandidate enumerates all feasible center-origin sequences for subsets
// up to maxSize by explicit permutation search and returns, per set key, the
// best (minimal) time achievable for a given approach offset.
func bruteBestTime(in *model.Instance, maxSize int, eps float64, approach float64) map[string]float64 {
	n := len(in.Points)
	if eps <= 0 {
		eps = math.Inf(1)
	}
	best := map[string]float64{}
	var rec func(seq []int, used map[int]bool, t float64, ok bool)
	rec = func(seq []int, used map[int]bool, t float64, ok bool) {
		if len(seq) > 0 && ok {
			key := setKeyOf(seq)
			if prev, exists := best[key]; !exists || t < prev {
				best[key] = t
			}
		}
		if len(seq) == maxSize {
			return
		}
		for q := 0; q < n; q++ {
			if used[q] {
				continue
			}
			var legT float64
			pruned := false
			if len(seq) == 0 {
				legT = in.Travel.Time(in.Center, in.Points[q].Loc)
			} else {
				lastLoc := in.Points[seq[len(seq)-1]].Loc
				if in.Travel.Distance(lastLoc, in.Points[q].Loc) > eps {
					pruned = true
				}
				legT = in.Travel.Time(lastLoc, in.Points[q].Loc)
			}
			if pruned {
				continue
			}
			nt := t + legT
			feasible := ok && approach+nt <= in.Points[q].EarliestExpiry()
			used[q] = true
			rec(append(seq, q), used, nt, feasible)
			used[q] = false
		}
	}
	rec(nil, map[int]bool{}, 0, true)
	return best
}

func setKeyOf(seq []int) string {
	present := make([]bool, 64)
	for _, p := range seq {
		present[p] = true
	}
	key := make([]byte, 64)
	for i, b := range present {
		if b {
			key[i] = '1'
		} else {
			key[i] = '0'
		}
	}
	return string(key)
}

// TestAgainstBruteForce cross-checks the DP against explicit permutation
// enumeration on random instances, with and without pruning.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(4) // 3..6 points
		in := &model.Instance{
			Center: geo.Pt(5, 5),
			Travel: travel.MustModel(geo.Euclidean{}, 1),
		}
		for i := 0; i < n; i++ {
			in.Points = append(in.Points, model.DeliveryPoint{
				ID:  i,
				Loc: geo.Pt(rng.Float64()*10, rng.Float64()*10),
				Tasks: []model.Task{{
					ID: i, Point: i,
					Expiry: 2 + rng.Float64()*10,
					Reward: 1,
				}},
			})
		}
		in.Workers = []model.Worker{{ID: 0, Loc: geo.Pt(rng.Float64()*10, rng.Float64()*10), MaxDP: 0}}
		eps := math.Inf(1)
		if trial%2 == 1 {
			eps = 2 + rng.Float64()*4
		}
		maxSize := 3

		g, err := Generate(in, Options{Epsilon: eps, MaxSize: maxSize})
		if err != nil {
			t.Fatal(err)
		}
		approach := in.ApproachTime(0)
		want := bruteBestTime(in, maxSize, eps, approach)

		got := map[string]float64{}
		for _, s := range g.ForWorker(0) {
			got[setKeyOf(s.Seq)] = s.Time - approach
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: DP found %d worker-valid sets, brute force %d",
				trial, len(got), len(want))
		}
		for key, wt := range want {
			gt, ok := got[key]
			if !ok {
				t.Fatalf("trial %d: brute-force set %s missing from DP", trial, key)
			}
			if math.Abs(gt-wt) > 1e-9 {
				t.Errorf("trial %d: set %s time %g (DP) vs %g (brute)", trial, key, gt, wt)
			}
		}
	}
}

// TestFrontierInvariant checks every frontier is sorted and non-dominated.
func TestFrontierInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	in := &model.Instance{
		Center: geo.Pt(0, 0),
		Travel: travel.MustModel(geo.Euclidean{}, 1),
	}
	for i := 0; i < 6; i++ {
		in.Points = append(in.Points, model.DeliveryPoint{
			ID: i, Loc: geo.Pt(rng.Float64()*4-2, rng.Float64()*4-2),
			Tasks: []model.Task{{ID: i, Point: i, Expiry: 1 + rng.Float64()*5, Reward: 1}},
		})
	}
	in.Workers = []model.Worker{{ID: 0, Loc: geo.Pt(1, 1), MaxDP: 4}}
	g, err := Generate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range g.Candidates() {
		f := c.Frontier
		if len(f) == 0 {
			t.Fatalf("candidate %v has empty frontier", c.Points)
		}
		for i := 1; i < len(f); i++ {
			if f[i].Time < f[i-1].Time {
				t.Errorf("frontier not time-sorted for %v", c.Points)
			}
			if f[i].Slack <= f[i-1].Slack {
				t.Errorf("frontier slacks not strictly increasing for %v", c.Points)
			}
		}
		// Every frontier sequence visits exactly the candidate's set.
		for _, st := range f {
			if setKeyOf(st.Seq) != setKeyOf(c.Points) {
				t.Errorf("sequence %v does not cover set %v", st.Seq, c.Points)
			}
		}
	}
}

func TestBestFor(t *testing.T) {
	c := Candidate{Frontier: []State{
		{Time: 1, Slack: 0.5},
		{Time: 2, Slack: 2},
	}}
	if st, ok := c.BestFor(0.3); !ok || st.Time != 1 {
		t.Errorf("BestFor(0.3) = %+v, %v", st, ok)
	}
	if st, ok := c.BestFor(1); !ok || st.Time != 2 {
		t.Errorf("BestFor(1) = %+v, %v", st, ok)
	}
	if _, ok := c.BestFor(3); ok {
		t.Error("BestFor(3) should fail")
	}
}

// TestIndexMatchesScan verifies the spatial-index extension path produces
// exactly the same candidates (sets, times, slacks) as the full scan.
func TestIndexMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		in := &model.Instance{
			Center: geo.Pt(5, 5),
			Travel: travel.MustModel(geo.Euclidean{}, 1),
		}
		n := 8 + rng.Intn(8)
		for i := 0; i < n; i++ {
			in.Points = append(in.Points, model.DeliveryPoint{
				ID:  i,
				Loc: geo.Pt(rng.Float64()*10, rng.Float64()*10),
				Tasks: []model.Task{{
					ID: i, Point: i, Expiry: 3 + rng.Float64()*8, Reward: 1,
				}},
			})
		}
		in.Workers = []model.Worker{{ID: 0, Loc: geo.Pt(5, 5), MaxDP: 3}}
		eps := 1 + rng.Float64()*4

		indexed, err := Generate(in, Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		scanned, err := Generate(in, Options{Epsilon: eps, DisableIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		ci, cs := indexed.Candidates(), scanned.Candidates()
		if len(ci) != len(cs) {
			t.Fatalf("trial %d: %d candidates with index, %d without", trial, len(ci), len(cs))
		}
		for k := range ci {
			if setKeyOf(ci[k].Points) != setKeyOf(cs[k].Points) {
				t.Fatalf("trial %d: candidate %d set mismatch", trial, k)
			}
			if len(ci[k].Frontier) != len(cs[k].Frontier) {
				t.Fatalf("trial %d: candidate %d frontier size mismatch", trial, k)
			}
			for f := range ci[k].Frontier {
				a, b := ci[k].Frontier[f], cs[k].Frontier[f]
				if math.Abs(a.Time-b.Time) > 1e-12 || math.Abs(a.Slack-b.Slack) > 1e-12 {
					t.Fatalf("trial %d: frontier state mismatch: %+v vs %+v", trial, a, b)
				}
			}
		}
		if indexed.Stats().ExtensionsPruned != scanned.Stats().ExtensionsPruned {
			t.Errorf("trial %d: pruned-extension stats differ: %d vs %d",
				trial, indexed.Stats().ExtensionsPruned, scanned.Stats().ExtensionsPruned)
		}
	}
}

// TestForWorkerHeterogeneousSpeed checks workers with speed overrides: every
// returned strategy is exactly feasible at the worker's speed, payoffs use
// the scaled travel time, and a faster worker never has fewer strategies
// than an identical slower one.
func TestForWorkerHeterogeneousSpeed(t *testing.T) {
	in := lineInstance(4, 6, 3)
	in.Workers = []model.Worker{
		{ID: 0, Loc: geo.Pt(-1, 0), MaxDP: 3},             // default speed 1
		{ID: 1, Loc: geo.Pt(-1, 0), MaxDP: 3, Speed: 0.5}, // half speed
		{ID: 2, Loc: geo.Pt(-1, 0), MaxDP: 3, Speed: 2},   // double speed
	}
	g, err := Generate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	normal := g.ForWorker(0)
	slow := g.ForWorker(1)
	fast := g.ForWorker(2)

	if len(slow) > len(normal) || len(fast) < len(normal) {
		t.Errorf("strategy counts: slow %d, normal %d, fast %d; want slow <= normal <= fast",
			len(slow), len(normal), len(fast))
	}
	check := func(w int, ws []WorkerVDPS) {
		for _, s := range ws {
			if !in.RouteFeasible(w, s.Seq) {
				t.Errorf("worker %d: strategy %v infeasible at its speed", w, s.Seq)
			}
			if math.Abs(s.Time-in.RouteTime(w, s.Seq)) > 1e-9 {
				t.Errorf("worker %d: cached time %g != model time %g",
					w, s.Time, in.RouteTime(w, s.Seq))
			}
			if math.Abs(s.Payoff-s.Reward/s.Time) > 1e-9 {
				t.Errorf("worker %d: payoff inconsistent", w)
			}
		}
	}
	check(0, normal)
	check(1, slow)
	check(2, fast)

	// A fast worker's payoff for the same set is strictly higher.
	if len(fast) > 0 && len(normal) > 0 {
		for _, fs := range fast {
			for _, ns := range normal {
				if fs.Candidate == ns.Candidate && fs.Payoff <= ns.Payoff {
					t.Errorf("fast worker payoff %g not above normal %g for same set",
						fs.Payoff, ns.Payoff)
				}
			}
		}
	}
}

// Property: with larger epsilon, the candidate set never shrinks, and every
// pruned candidate also exists unpruned with the same minimal time.
func TestPrunedSubsetOfUnpruned(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 8; trial++ {
		in := &model.Instance{
			Center: geo.Pt(0, 0),
			Travel: travel.MustModel(geo.Euclidean{}, 1),
		}
		n := 6 + rng.Intn(4)
		for i := 0; i < n; i++ {
			in.Points = append(in.Points, model.DeliveryPoint{
				ID:  i,
				Loc: geo.Pt(rng.Float64()*8-4, rng.Float64()*8-4),
				Tasks: []model.Task{{
					ID: i, Point: i, Expiry: 3 + rng.Float64()*6, Reward: 1,
				}},
			})
		}
		in.Workers = []model.Worker{{ID: 0, Loc: geo.Pt(0, 0), MaxDP: 3}}
		eps := 1.5 + rng.Float64()*2

		pruned, err := Generate(in, Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		unpruned, err := Generate(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(pruned.Candidates()) > len(unpruned.Candidates()) {
			t.Fatalf("trial %d: pruned %d > unpruned %d candidates",
				trial, len(pruned.Candidates()), len(unpruned.Candidates()))
		}
		full := map[string]float64{}
		for _, c := range unpruned.Candidates() {
			full[c.Mask.Key()] = c.MinTime()
		}
		for _, c := range pruned.Candidates() {
			ft, ok := full[c.Mask.Key()]
			if !ok {
				t.Fatalf("trial %d: pruned-only candidate %v", trial, c.Points)
			}
			// Pruning can only remove sequences, so the pruned min time is
			// never better than the unpruned one.
			if c.MinTime() < ft-1e-9 {
				t.Fatalf("trial %d: pruned min time %g beats unpruned %g",
					trial, c.MinTime(), ft)
			}
		}
	}
}

// TestParallelMatchesSequential verifies sharded level expansion produces
// exactly the sequential result (candidates, frontiers, stats).
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 6; trial++ {
		in := &model.Instance{
			Center: geo.Pt(0, 0),
			Travel: travel.MustModel(geo.Euclidean{}, 1),
		}
		n := 10 + rng.Intn(6)
		for i := 0; i < n; i++ {
			in.Points = append(in.Points, model.DeliveryPoint{
				ID:  i,
				Loc: geo.Pt(rng.Float64()*8-4, rng.Float64()*8-4),
				Tasks: []model.Task{{
					ID: i, Point: i, Expiry: 3 + rng.Float64()*6, Reward: 1,
				}},
			})
		}
		in.Workers = []model.Worker{{ID: 0, Loc: geo.Pt(0, 0), MaxDP: 3}}
		eps := 1.5 + rng.Float64()*3

		seq, err := Generate(in, Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Generate(in, Options{Epsilon: eps, Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		cs, cp := seq.Candidates(), par.Candidates()
		if len(cs) != len(cp) {
			t.Fatalf("trial %d: %d sequential vs %d parallel candidates", trial, len(cs), len(cp))
		}
		for i := range cs {
			if setKeyOf(cs[i].Points) != setKeyOf(cp[i].Points) {
				t.Fatalf("trial %d: candidate %d set mismatch", trial, i)
			}
			if len(cs[i].Frontier) != len(cp[i].Frontier) {
				t.Fatalf("trial %d: candidate %d frontier size mismatch", trial, i)
			}
			for f := range cs[i].Frontier {
				a, b := cs[i].Frontier[f], cp[i].Frontier[f]
				if a.Time != b.Time || a.Slack != b.Slack {
					t.Fatalf("trial %d: frontier mismatch %+v vs %+v", trial, a, b)
				}
			}
		}
		if seq.Stats() != par.Stats() {
			t.Fatalf("trial %d: stats differ: %+v vs %+v", trial, seq.Stats(), par.Stats())
		}
	}
}
