package vdps

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"fairtask/internal/dataset"
	"fairtask/internal/model"
)

// repairGM builds a deterministic Gaussian-mixture instance for repair tests.
func repairGM(t *testing.T, seed int64, tasks, workers, points int) *model.Instance {
	t.Helper()
	in, err := dataset.GenerateGM(dataset.GMConfig{
		Seed: seed, Tasks: tasks, Workers: workers, DeliveryPoints: points,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Vary worker speeds so the scaled-speed branches are exercised too.
	speeds := []float64{4, 5, 6}
	for w := range in.Workers {
		in.Workers[w].Speed = speeds[w%len(speeds)]
	}
	return in
}

// mutateExpiries shifts the expiry of every task at a deterministic subset of
// points — some up, some down — and returns the points whose earliest expiry
// actually changed, ascending. The instance is mutated in place.
func mutateExpiries(in *model.Instance, rng *rand.Rand) []int {
	var changed []int
	for p := range in.Points {
		if len(in.Points[p].Tasks) == 0 || rng.Intn(4) != 0 {
			continue
		}
		before := in.Points[p].EarliestExpiry()
		scale := 0.5 + rng.Float64() // [0.5, 1.5): both tighter and looser
		for i := range in.Points[p].Tasks {
			in.Points[p].Tasks[i].Expiry *= scale
		}
		if in.Points[p].EarliestExpiry() != before {
			changed = append(changed, p)
		}
	}
	return changed
}

// assertGeneratorsEqual compares every field the solvers read: the candidate
// table (points, masks, frontiers, rewards), the derived per-candidate caches
// and every worker's enumerated strategy space, all bitwise.
func assertGeneratorsEqual(t *testing.T, got, want *Generator) {
	t.Helper()
	gc, wc := got.Candidates(), want.Candidates()
	if len(gc) != len(wc) {
		t.Fatalf("candidate count %d, want %d", len(gc), len(wc))
	}
	for ci := range gc {
		if !reflect.DeepEqual(gc[ci].Points, wc[ci].Points) {
			t.Fatalf("candidate %d points %v, want %v", ci, gc[ci].Points, wc[ci].Points)
		}
		if !reflect.DeepEqual(gc[ci].Frontier, wc[ci].Frontier) {
			t.Fatalf("candidate %d (%v) frontier diverged:\ngot  %+v\nwant %+v",
				ci, gc[ci].Points, gc[ci].Frontier, wc[ci].Frontier)
		}
		if gc[ci].Reward != wc[ci].Reward {
			t.Fatalf("candidate %d reward %v, want %v", ci, gc[ci].Reward, wc[ci].Reward)
		}
		if got.maxSlack[ci] != want.maxSlack[ci] || got.setSize[ci] != want.setSize[ci] {
			t.Fatalf("candidate %d caches (%v,%d), want (%v,%d)",
				ci, got.maxSlack[ci], got.setSize[ci], want.maxSlack[ci], want.setSize[ci])
		}
	}
	var sc1, sc2 StrategyScratch
	for w := range want.Instance().Workers {
		gs, ws := got.WorkerStrategies(w, &sc1), want.WorkerStrategies(w, &sc2)
		if !reflect.DeepEqual(gs, ws) {
			t.Fatalf("worker %d strategies diverged:\ngot  %+v\nwant %+v", w, gs, ws)
		}
	}
}

// TestRepairExpiriesMatchesGenerate is the unit-level pin of incremental
// candidate regeneration: after moving a subset of points' earliest expiries,
// RepairExpiries must leave the generator bit-identical — candidates,
// frontiers, caches and every worker's strategy space — to a full Generate on
// the mutated instance, across epsilon regimes and with the grid index
// disabled.
func TestRepairExpiriesMatchesGenerate(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
	}{
		{"eps", Options{Epsilon: 1.5}},
		{"eps-noindex", Options{Epsilon: 1.5, DisableIndex: true}},
		{"dense", Options{Epsilon: 0, MaxSize: 3}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				in := repairGM(t, seed, 60, 8, 24)
				g, err := Generate(in, tc.opt)
				if err != nil {
					t.Fatal(err)
				}
				before := append([]Candidate(nil), g.Candidates()...)

				mutated := in.Clone()
				rng := rand.New(rand.NewSource(seed * 31))
				pts := mutateExpiries(mutated, rng)
				if len(pts) == 0 {
					t.Fatalf("seed %d: mutation changed no expiries", seed)
				}
				g.Rebind(mutated)
				rep, err := g.RepairExpiries(context.Background(), pts)
				if err != nil {
					t.Fatal(err)
				}
				want, err := Generate(mutated, tc.opt)
				if err != nil {
					t.Fatal(err)
				}
				assertGeneratorsEqual(t, g, want)

				// Remap/Dropped/Fresh must describe the surgery exactly.
				if len(rep.Remap) != len(before) {
					t.Fatalf("remap length %d, want %d", len(rep.Remap), len(before))
				}
				dropped := map[int]bool{}
				for _, ci := range rep.Dropped {
					dropped[ci] = true
				}
				for ci := range before {
					ni := rep.Remap[ci]
					if ni < 0 {
						if !dropped[ci] {
							t.Fatalf("candidate %d remapped to -1 but not in Dropped", ci)
						}
						continue
					}
					if !reflect.DeepEqual(before[ci].Points, g.Candidates()[ni].Points) {
						t.Fatalf("retained candidate %d moved to %d with different points", ci, ni)
					}
				}
				fresh := map[int]bool{}
				for _, ni := range rep.Fresh {
					fresh[ni] = true
					hit := false
					for _, p := range g.Candidates()[ni].Points {
						for _, q := range pts {
							if p == q {
								hit = true
							}
						}
					}
					if !hit {
						t.Fatalf("fresh candidate %d contains no changed point", ni)
					}
				}
				if got := len(before) - len(rep.Dropped) + len(rep.Fresh); got != len(g.Candidates()) {
					t.Fatalf("retained+fresh = %d, table has %d", got, len(g.Candidates()))
				}
			}
		})
	}
}

// TestRepairExpiriesNoChange pins the identity fast path: an empty changed
// set returns the identity remap and touches nothing.
func TestRepairExpiriesNoChange(t *testing.T) {
	in := repairGM(t, 9, 40, 6, 18)
	g, err := Generate(in, Options{Epsilon: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	n := len(g.Candidates())
	rep, err := g.RepairExpiries(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Dropped) != 0 || len(rep.Fresh) != 0 || len(rep.Remap) != n {
		t.Fatalf("identity repair reported surgery: %+v", rep)
	}
	for i, ni := range rep.Remap {
		if ni != i {
			t.Fatalf("remap[%d] = %d, want identity", i, ni)
		}
	}
}

// TestRepairExpiriesErrorLeavesTable pins the transactional contract: a
// repair that fails (canceled context) leaves the candidate table untouched.
func TestRepairExpiriesErrorLeavesTable(t *testing.T) {
	in := repairGM(t, 10, 60, 8, 24)
	g, err := Generate(in, Options{Epsilon: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]Candidate(nil), g.Candidates()...)
	mutated := in.Clone()
	pts := mutateExpiries(mutated, rand.New(rand.NewSource(77)))
	if len(pts) == 0 {
		t.Fatal("mutation changed no expiries")
	}
	g.Rebind(mutated)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.RepairExpiries(ctx, pts); err == nil {
		t.Fatal("canceled repair did not fail")
	}
	if !reflect.DeepEqual(before, g.Candidates()) {
		t.Fatal("failed repair mutated the candidate table")
	}
}

// TestRepairStrategyPayoffsMatchesWorkerStrategies pins the in-place strategy
// repair: after a reward-only change and RepairRewards, re-keying a worker's
// cached list in place must be bit-identical — values and permutation — to a
// fresh WorkerStrategies enumeration.
func TestRepairStrategyPayoffsMatchesWorkerStrategies(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		in := repairGM(t, seed, 60, 8, 24)
		g, err := Generate(in, Options{Epsilon: 1.5})
		if err != nil {
			t.Fatal(err)
		}
		var sc StrategyScratch
		cached := make([][]StrategyRef, len(in.Workers))
		for w := range in.Workers {
			cached[w] = append([]StrategyRef(nil), g.WorkerStrategies(w, &sc)...)
		}

		// Re-price every task at a deterministic subset of points.
		mutated := in.Clone()
		rng := rand.New(rand.NewSource(seed * 13))
		var pts []int
		for p := range mutated.Points {
			if len(mutated.Points[p].Tasks) == 0 || rng.Intn(3) != 0 {
				continue
			}
			for i := range mutated.Points[p].Tasks {
				mutated.Points[p].Tasks[i].Reward *= 0.25 + 2*rng.Float64()
			}
			pts = append(pts, p)
		}
		if len(pts) == 0 {
			t.Fatalf("seed %d: no points re-priced", seed)
		}
		g.Rebind(mutated)
		changed := g.RepairRewards(pts)
		if len(changed) == 0 {
			t.Fatalf("seed %d: reward repair changed no candidates", seed)
		}

		var rsc, wsc StrategyScratch
		for w := range mutated.Workers {
			g.RepairStrategyPayoffs(w, cached[w], changed, &rsc)
			want := g.WorkerStrategies(w, &wsc)
			if !reflect.DeepEqual(cached[w], want) {
				t.Fatalf("seed %d worker %d: repaired list diverged:\ngot  %+v\nwant %+v",
					seed, w, cached[w], want)
			}
		}
	}
}

// TestFeasibleForMatchesEnumeration pins FeasibleFor against the ground
// truth: a candidate is feasible for a worker exactly when WorkerStrategies
// includes it.
func TestFeasibleForMatchesEnumeration(t *testing.T) {
	in := repairGM(t, 5, 60, 8, 24)
	g, err := Generate(in, Options{Epsilon: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	var sc StrategyScratch
	for w := range in.Workers {
		included := map[int32]bool{}
		for _, s := range g.WorkerStrategies(w, &sc) {
			included[s.Cand] = true
		}
		for ci := range g.Candidates() {
			if got, want := g.FeasibleFor(w, ci), included[int32(ci)]; got != want {
				t.Fatalf("worker %d candidate %d: FeasibleFor %v, enumeration %v",
					w, ci, got, want)
			}
		}
	}
}

// TestRepairExpiriesEmptyPoint covers the degenerate mutation the streaming
// engine produces when a point's last task expires: the point's earliest
// expiry jumps to +Inf, its candidates must drop to whatever remains
// feasible, and the repaired table must still match a full Generate.
func TestRepairExpiriesEmptyPoint(t *testing.T) {
	in := repairGM(t, 6, 60, 8, 24)
	g, err := Generate(in, Options{Epsilon: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	target := -1
	for p := range in.Points {
		if len(in.Points[p].Tasks) > 0 {
			target = p
			break
		}
	}
	if target < 0 {
		t.Fatal("instance has no tasks")
	}
	mutated := in.Clone()
	mutated.Points[target].Tasks = nil
	if mutated.Points[target].EarliestExpiry() == in.Points[target].EarliestExpiry() {
		t.Fatal("draining the point did not move its earliest expiry")
	}
	g.Rebind(mutated)
	if _, err := g.RepairExpiries(context.Background(), []int{target}); err != nil {
		t.Fatal(err)
	}
	want, err := Generate(mutated, Options{Epsilon: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	assertGeneratorsEqual(t, g, want)
	if math.IsInf(mutated.Points[target].EarliestExpiry(), 1) {
		// A taskless point is trivially reachable: its singletons survive
		// with infinite slack rather than disappearing.
		found := false
		for _, c := range g.Candidates() {
			if len(c.Points) == 1 && c.Points[0] == target {
				found = true
			}
		}
		if !found {
			t.Fatal("drained point lost its singleton candidate")
		}
	}
}
