package vdps

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"fairtask/internal/bitset"
	"fairtask/internal/model"
	"fairtask/internal/obs"
)

// SampleOptions configure GenerateSampled.
type SampleOptions struct {
	// Epsilon is the distance-constrained pruning threshold; zero or +Inf
	// disables it, as in Options.
	Epsilon float64
	// MaxSize caps route length. Zero means no cap (all points).
	MaxSize int
	// Samples is the number of randomized routes grown from each feasible
	// starting point. Zero means the default of 8.
	Samples int
	// Branch is how many of the nearest feasible successors the growth step
	// chooses among at random. Zero means the default of 3.
	Branch int
	// Seed drives the randomized growth.
	Seed int64
	// Recorder receives one obs.VDPSEvent per successful generation run.
	// Nil disables telemetry.
	Recorder obs.Recorder
}

// GenerateSampled builds a candidate pool by randomized greedy route growth
// instead of exhaustive subset enumeration. It exists for instances where
// workers accept long routes (large or unlimited maxDP), for which the
// exact dynamic program of Generate is exponential. Every returned
// candidate is a genuine C-VDPS with an exactly feasible sequence, but the
// pool is a sample: optimality of per-set sequences and completeness of the
// set space are not guaranteed.
//
// Growth rule: from each feasible singleton start, Samples routes are grown;
// each step considers the unvisited points within Epsilon of the route's
// last point that can still be reached before their deadlines, and picks
// uniformly among the Branch nearest. Every prefix of every grown route is
// recorded as a candidate.
func GenerateSampled(in *model.Instance, opt SampleOptions) (*Generator, error) {
	return GenerateSampledContext(context.Background(), in, opt)
}

// GenerateSampledContext is GenerateSampled with cancellation: ctx is
// checked once per starting point, returning ctx.Err() when it is done.
func GenerateSampledContext(ctx context.Context, in *model.Instance, opt SampleOptions) (*Generator, error) {
	begin := time.Now()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	_, sp := obs.StartSpan(ctx, "vdps.sample")
	defer sp.End()
	if err := fpSample.Hit(ctx); err != nil {
		return nil, fmt.Errorf("vdps: sample: %w", err)
	}
	eps := opt.Epsilon
	if eps <= 0 {
		eps = math.Inf(1)
	}
	maxSize := opt.MaxSize
	if maxSize <= 0 || maxSize > len(in.Points) {
		maxSize = len(in.Points)
	}
	samples := opt.Samples
	if samples <= 0 {
		samples = 8
	}
	branch := opt.Branch
	if branch <= 0 {
		branch = 3
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	n := len(in.Points)
	expiry := make([]float64, n)
	for i := range in.Points {
		expiry[i] = in.Points[i].EarliestExpiry()
	}

	g := &Generator{inst: in, opt: Options{Epsilon: opt.Epsilon, MaxSize: maxSize}}
	g.stats.MaxSetSize = maxSize
	byCand := map[string]*Candidate{}

	record := func(seq model.Route, time, slack float64) {
		set := bitset.New(n)
		for _, p := range seq {
			set = set.With(p)
		}
		key := set.Key()
		c := byCand[key]
		if c == nil {
			pts := set.Values()
			var reward float64
			for _, p := range pts {
				reward += in.Points[p].TotalReward()
			}
			c = &Candidate{Points: pts, Mask: set, Reward: reward}
			byCand[key] = c
		}
		c.Frontier = mergeFrontier(c.Frontier, State{
			Seq: seq.Clone(), Time: time, Slack: slack,
		})
	}

	type step struct {
		point int
		dist  float64
	}
	for start := 0; start < n; start++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t0 := in.Travel.Time(in.Center, in.Points[start].Loc)
		if t0 > expiry[start] {
			continue
		}
		for s := 0; s < samples; s++ {
			seq := model.Route{start}
			visited := bitset.New(n).With(start)
			time := t0
			slack := expiry[start] - t0
			record(seq, time, slack)
			for len(seq) < maxSize {
				last := seq[len(seq)-1]
				lastLoc := in.Points[last].Loc
				var feasible []step
				for q := 0; q < n; q++ {
					if visited.Has(q) {
						continue
					}
					d := in.Travel.Distance(lastLoc, in.Points[q].Loc)
					if d > eps {
						continue
					}
					if time+in.Travel.Time(lastLoc, in.Points[q].Loc) > expiry[q] {
						continue
					}
					feasible = append(feasible, step{q, d})
				}
				if len(feasible) == 0 {
					break
				}
				sort.Slice(feasible, func(i, j int) bool {
					return feasible[i].dist < feasible[j].dist
				})
				k := branch
				if k > len(feasible) {
					k = len(feasible)
				}
				next := feasible[rng.Intn(k)].point
				legTime := in.Travel.Time(lastLoc, in.Points[next].Loc)
				time += legTime
				if room := expiry[next] - time; room < slack {
					slack = room
				}
				seq = append(seq, next)
				visited = visited.With(next)
				record(seq, time, slack)
			}
			g.stats.SubsetsExplored += len(seq)
		}
	}

	g.finalizeCandidates(byCand)
	if opt.Recorder != nil {
		opt.Recorder.RecordVDPS(obs.VDPSEvent{
			Points:     n,
			Workers:    len(in.Workers),
			Subsets:    g.stats.SubsetsExplored,
			Candidates: g.stats.Candidates,
			Sampled:    true,
			Elapsed:    time.Since(begin),
		})
	}
	return g, nil
}
