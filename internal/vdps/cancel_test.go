package vdps

import (
	"context"
	"errors"
	"testing"
)

func TestGenerateContextCanceled(t *testing.T) {
	in := lineInstance(8, 100, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateContext(ctx, in, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("GenerateContext with pre-canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestGenerateSampledContextCanceled(t *testing.T) {
	in := lineInstance(8, 100, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateSampledContext(ctx, in, SampleOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("GenerateSampledContext with pre-canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestGenerateContextUnaffectedWhenLive guards the refactor: threading a
// live context through generation must not change the candidate pool.
func TestGenerateContextUnaffectedWhenLive(t *testing.T) {
	in := lineInstance(6, 100, 6)
	plain, err := Generate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := GenerateContext(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats().Candidates != withCtx.Stats().Candidates {
		t.Fatalf("candidate count diverged: %d (Generate) vs %d (GenerateContext)",
			plain.Stats().Candidates, withCtx.Stats().Candidates)
	}
}
