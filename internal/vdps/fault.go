package vdps

import "fairtask/internal/fault"

// Failpoints for chaos testing the candidate-generation layer. Disarmed
// (always, outside chaos runs) each costs one atomic load per generation.
var (
	fpGenerate = fault.Point("vdps.generate")
	fpSample   = fault.Point("vdps.sample")
)
