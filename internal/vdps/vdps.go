// Package vdps generates Valid Delivery Point Sets (paper §IV, Algorithm 1).
//
// A Center-origin VDPS (C-VDPS) is a set Q of delivery points for which a
// visiting sequence starting at the distribution center exists that reaches
// every point of Q before its earliest task expiration. The paper computes
// these once per center with a subset dynamic program and then checks, for
// each worker, whether the worker's approach time to the center still allows
// the sequence to meet the deadlines.
//
// We implement the DP as a deadline-constrained Held-Karp: for each subset Q
// and last point j we keep the Pareto frontier of (time, slack) states,
// where time is the center-origin travel time of the sequence and
// slack = min over the visited prefix of (dp.e - arrival(dp)). A worker with
// approach time a can use a state iff a <= slack, so per-worker validity is a
// frontier scan rather than a re-run of the DP. This subsumes the paper's
// "record only the minimal-travel-time sequence" rule (the min-time state is
// always on the frontier) while also retaining slower-but-slacker sequences
// that remain feasible for distant workers.
//
// The distance-constrained pruning strategy (threshold ε) discards DP
// extensions whose leg between consecutive delivery points exceeds ε,
// exactly as in §IV.
package vdps

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"fairtask/internal/bitset"
	"fairtask/internal/geo"
	"fairtask/internal/grid"
	"fairtask/internal/model"
	"fairtask/internal/obs"
)

// Options configure generation.
type Options struct {
	// Epsilon is the distance-constrained pruning threshold in distance
	// units (km). Zero or +Inf disables pruning (the paper's "-W" variants).
	Epsilon float64
	// MaxSize caps the size of generated sets. Zero derives the cap from the
	// instance's workers: max over w.MaxDP, treating MaxDP == 0 (unlimited)
	// as the number of delivery points.
	MaxSize int
	// MaxSets aborts generation when more than this many C-VDPSs would be
	// produced, protecting against exponential blow-ups on dense instances.
	// Zero means no limit.
	MaxSets int
	// DisableIndex turns off the spatial grid index used to enumerate
	// ε-neighbors during DP extensions, falling back to a full scan per
	// state. Only useful for the indexing ablation benchmark.
	DisableIndex bool
	// Parallel shards each DP level over this many goroutines. Values
	// below 2 keep the sequential path. Results are identical either way.
	Parallel int
	// Recorder receives one obs.VDPSEvent per successful generation run.
	// Nil disables telemetry.
	Recorder obs.Recorder
}

// ErrTooManySets is returned when Options.MaxSets is exceeded.
var ErrTooManySets = errors.New("vdps: candidate set limit exceeded")

// State is one Pareto-optimal sequence for a candidate set: Seq is the
// center-origin visiting order, Time its center-origin travel time (arrival
// at the last point), and Slack the minimum over the sequence prefix of
// (point expiry - arrival). A worker with approach time a can execute Seq
// within all deadlines iff a <= Slack.
type State struct {
	Seq   model.Route
	Time  float64
	Slack float64
}

// Candidate is one C-VDPS: a set of delivery points with its Pareto frontier
// of feasible sequences and cached aggregate reward.
type Candidate struct {
	// Points holds the set's delivery point indices in ascending order.
	Points []int
	// Mask is the same set as a bit set, for O(1) disjointness tests.
	Mask bitset.Set
	// Frontier holds the non-dominated (Time, Slack) states, sorted by
	// ascending Time. Dominance prunes every state that is no slower and no
	// slacker than another, so a slower state survives only with strictly
	// more slack: Slack is strictly ascending along the frontier too.
	Frontier []State
	// Reward is the total reward of all tasks on the set's points.
	Reward float64
}

// MinTime returns the minimal center-origin travel time over the frontier.
func (c *Candidate) MinTime() float64 { return c.Frontier[0].Time }

// MaxSlack returns the maximal slack over the frontier, i.e. the largest
// worker approach time for which the candidate remains valid.
func (c *Candidate) MaxSlack() float64 {
	return c.Frontier[len(c.Frontier)-1].Slack
}

// BestFor returns the minimal-time state usable by a worker with the given
// approach time, or ok == false when no state fits.
func (c *Candidate) BestFor(approach float64) (State, bool) {
	if fi, ok := c.bestForIndex(approach); ok {
		return c.Frontier[fi], true
	}
	return State{}, false
}

// bestForIndex returns the frontier index BestFor would select.
func (c *Candidate) bestForIndex(approach float64) (int, bool) {
	// Frontier is sorted by ascending time (and, by Pareto dominance,
	// ascending slack); scanning in time order makes the first state with
	// Slack >= approach the fastest usable one.
	for fi := range c.Frontier {
		if c.Frontier[fi].Slack >= approach {
			return fi, true
		}
	}
	return 0, false
}

// bestForScaled returns the candidate's minimal-time sequence that worker w
// can execute within all deadlines at the worker's own speed, checked
// exactly via the model (used when the worker overrides the default speed).
func (c *Candidate) bestForScaled(in *model.Instance, w int) (State, bool) {
	if fi, ok := c.bestForScaledIndex(in, w); ok {
		return c.Frontier[fi], true
	}
	return State{}, false
}

// bestForScaledIndex returns the frontier index bestForScaled would select.
func (c *Candidate) bestForScaledIndex(in *model.Instance, w int) (int, bool) {
	for fi := range c.Frontier { // sorted by ascending center-origin time
		if in.RouteFeasible(w, c.Frontier[fi].Seq) {
			return fi, true
		}
	}
	return 0, false
}

// Generator holds the generated candidates for one instance and answers
// per-worker validity queries.
type Generator struct {
	inst       *model.Instance
	opt        Options
	candidates []Candidate
	stats      Stats
	// maxSlack[ci] and setSize[ci] mirror candidates[ci].MaxSlack() and
	// len(candidates[ci].Points): flat arrays let the per-worker feasibility
	// scan in WorkerStrategies reject candidates without touching the
	// candidate structs (and their pointer-chased frontiers) at all.
	maxSlack []float64
	setSize  []int32
}

// Stats reports the work performed during generation, used by the pruning
// ablation experiments.
type Stats struct {
	// SubsetsExplored counts distinct (set, last) DP states created.
	SubsetsExplored int
	// ExtensionsPruned counts DP extensions discarded by the ε rule.
	ExtensionsPruned int
	// Candidates is the number of C-VDPSs produced.
	Candidates int
	// MaxSetSize is the size cap that was applied.
	MaxSetSize int
}

// dpState is a node in the subset DP: a (set, last) pair with its Pareto
// frontier of (time, slack, sequence) entries.
type dpState struct {
	set      bitset.Set
	last     int
	frontier []State
}

// Generate runs the C-VDPS dynamic program for the instance.
func Generate(in *model.Instance, opt Options) (*Generator, error) {
	return GenerateContext(context.Background(), in, opt)
}

// GenerateContext is Generate with cancellation: the dynamic program checks
// ctx at every level boundary and periodically inside a level's expansion,
// returning ctx.Err() when it is done. Candidate generation dominates the
// solve time of large instances, so this is where a canceled request saves
// the most work.
func GenerateContext(ctx context.Context, in *model.Instance, opt Options) (*Generator, error) {
	start := time.Now()
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("vdps: %w", err)
	}
	_, sp := obs.StartSpan(ctx, "vdps.generate")
	defer sp.End()
	if err := fpGenerate.Hit(ctx); err != nil {
		return nil, fmt.Errorf("vdps: generate: %w", err)
	}
	maxSize := opt.MaxSize
	if maxSize <= 0 {
		maxSize = derivedMaxSize(in)
	}
	if maxSize > len(in.Points) {
		maxSize = len(in.Points)
	}
	eps := opt.Epsilon
	if eps <= 0 {
		eps = math.Inf(1)
	}

	g := &Generator{inst: in, opt: opt}
	g.stats.MaxSetSize = maxSize

	// Expiry and pairwise data reused across the DP.
	n := len(in.Points)
	expiry := make([]float64, n)
	for i := range in.Points {
		expiry[i] = in.Points[i].EarliestExpiry()
	}

	// With finite ε, precompute each point's ε-neighborhood with a spatial
	// grid so DP extensions only enumerate reachable successors. The
	// Euclidean-ball index is a superset filter for non-Euclidean metrics
	// whose distance is >= Euclidean (e.g. Manhattan), so the per-leg check
	// below remains the source of truth.
	var neighbors [][]int
	if !math.IsInf(eps, 1) && !opt.DisableIndex && n > 0 {
		locs := make([]geo.Point, n)
		for i := range in.Points {
			locs[i] = in.Points[i].Loc
		}
		neighbors = grid.New(locs, eps).Neighborhoods(eps)
	}

	// Level 1: singleton sequences from the center.
	level := make([]*dpState, 0, n)
	byCand := map[string]*Candidate{}
	for j := 0; j < n; j++ {
		t := in.Travel.Time(in.Center, in.Points[j].Loc)
		if t > expiry[j] {
			continue
		}
		st := State{Seq: model.Route{j}, Time: t, Slack: expiry[j] - t}
		ds := &dpState{set: bitset.Of(j), last: j, frontier: []State{st}}
		level = append(level, ds)
		g.stats.SubsetsExplored++
		g.addCandidate(byCand, ds)
	}

	// Levels 2..maxSize: extend every frontier state with every unvisited
	// point within ε of the current last point. With Options.Parallel > 1,
	// the level is sharded over goroutines computing chunk-local maps that
	// are merged in fixed chunk order, keeping results deterministic.
	all := allPoints(n)
	workers := opt.Parallel
	if workers < 1 {
		workers = 1
	}
	for size := 2; size <= maxSize && len(level) > 0; size++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var next map[stateKey]*dpState
		if workers == 1 || len(level) < 2*workers {
			var pruned int
			next, pruned = expandChunk(ctx, g, level, all, neighbors, expiry, eps)
			g.stats.ExtensionsPruned += pruned
			for range next {
				g.stats.SubsetsExplored++
			}
		} else {
			next = g.expandParallel(ctx, level, all, neighbors, expiry, eps, workers)
		}
		if err := ctx.Err(); err != nil {
			// A cancellation observed mid-level leaves next incomplete;
			// abandon the partial expansion rather than emit wrong results.
			return nil, err
		}
		level = level[:0]
		for _, ds := range next {
			level = append(level, ds)
			g.addCandidate(byCand, ds)
			if opt.MaxSets > 0 && len(byCand) > opt.MaxSets {
				return nil, fmt.Errorf("%w: more than %d", ErrTooManySets, opt.MaxSets)
			}
		}
	}

	g.finalizeCandidates(byCand)
	if opt.Recorder != nil {
		opt.Recorder.RecordVDPS(obs.VDPSEvent{
			Points:     n,
			Workers:    len(in.Workers),
			Subsets:    g.stats.SubsetsExplored,
			Pruned:     g.stats.ExtensionsPruned,
			Candidates: g.stats.Candidates,
			Elapsed:    time.Since(start),
		})
	}
	return g, nil
}

// finalizeCandidates collects the generated candidate map into the flat,
// deterministically ordered candidate slice (by size, then lexicographic
// point set) and derives the per-candidate feasibility arrays the batch
// strategy scans use. Every Generator constructor — the exact DP and the
// sampler — must end with this so WorkerStrategies sees a complete view.
func (g *Generator) finalizeCandidates(byCand map[string]*Candidate) {
	g.candidates = make([]Candidate, 0, len(byCand))
	for _, c := range byCand {
		sortFrontier(c.Frontier)
		g.candidates = append(g.candidates, *c)
	}
	sort.Slice(g.candidates, func(i, j int) bool {
		return candLess(&g.candidates[i], &g.candidates[j])
	})
	g.stats.Candidates = len(g.candidates)
	g.maxSlack = make([]float64, len(g.candidates))
	g.setSize = make([]int32, len(g.candidates))
	for ci := range g.candidates {
		g.maxSlack[ci] = g.candidates[ci].MaxSlack()
		g.setSize[ci] = int32(len(g.candidates[ci].Points))
	}
}

// candLess is the deterministic candidate-table order every constructor
// establishes: by set size, then lexicographic point set. Exactly one
// candidate exists per point set, so the order is total.
func candLess(a, b *Candidate) bool {
	if len(a.Points) != len(b.Points) {
		return len(a.Points) < len(b.Points)
	}
	for k := range a.Points {
		if a.Points[k] != b.Points[k] {
			return a.Points[k] < b.Points[k]
		}
	}
	return false
}

// allPoints returns [0, n) as successor candidates; memoized per call site
// would not help since the slice is shared and read-only.
func allPoints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// derivedMaxSize returns the largest set size any worker may accept.
func derivedMaxSize(in *model.Instance) int {
	max := 0
	for i := range in.Workers {
		m := in.Workers[i].MaxDP
		if m == 0 {
			return len(in.Points)
		}
		if m > max {
			max = m
		}
	}
	if max == 0 {
		// No workers: generate singletons only; nothing will consume more.
		return 1
	}
	return max
}

// stateKey identifies a DP node. A comparable struct keys the level maps
// without the former set.Key()+"#"+strconv.Itoa(last) concatenation, which
// allocated a fresh string per DP transition.
type stateKey struct {
	set  string
	last int
}

func newStateKey(set bitset.Set, last int) stateKey {
	return stateKey{set: set.Key(), last: last}
}

// insert adds st to the state's Pareto frontier, dropping dominated entries.
// A state dominates another when it is no slower and no tighter.
func (ds *dpState) insert(st State) {
	for _, ex := range ds.frontier {
		if ex.Time <= st.Time && ex.Slack >= st.Slack {
			return // dominated by an existing state
		}
	}
	kept := ds.frontier[:0]
	for _, ex := range ds.frontier {
		if !(st.Time <= ex.Time && st.Slack >= ex.Slack) {
			kept = append(kept, ex)
		}
	}
	ds.frontier = append(kept, st)
}

// addCandidate merges the dpState's frontier into the candidate for its set.
func (g *Generator) addCandidate(byCand map[string]*Candidate, ds *dpState) {
	key := ds.set.Key()
	c := byCand[key]
	if c == nil {
		pts := ds.set.Values()
		var reward float64
		for _, p := range pts {
			reward += g.inst.Points[p].TotalReward()
		}
		c = &Candidate{Points: pts, Mask: ds.set.Clone(), Reward: reward}
		byCand[key] = c
	}
	for _, st := range ds.frontier {
		c.Frontier = mergeFrontier(c.Frontier, st)
	}
}

// mergeFrontier inserts st into a candidate-level frontier with dominance.
func mergeFrontier(frontier []State, st State) []State {
	for _, ex := range frontier {
		if ex.Time <= st.Time && ex.Slack >= st.Slack {
			return frontier
		}
	}
	kept := frontier[:0]
	for _, ex := range frontier {
		if !(st.Time <= ex.Time && st.Slack >= ex.Slack) {
			kept = append(kept, ex)
		}
	}
	return append(kept, st)
}

func sortFrontier(f []State) {
	sort.Slice(f, func(i, j int) bool { return f[i].Time < f[j].Time })
}

// Candidates returns all generated C-VDPSs. The slice is shared; callers
// must not modify it.
func (g *Generator) Candidates() []Candidate { return g.candidates }

// Stats returns generation statistics.
func (g *Generator) Stats() Stats { return g.stats }

// Instance returns the instance the generator was built for.
func (g *Generator) Instance() *model.Instance { return g.inst }

// WorkerVDPS is one strategy available to a specific worker: a candidate set
// together with the fastest sequence the worker can execute and the derived
// payoff (Definition 7).
type WorkerVDPS struct {
	// Candidate indexes Generator.Candidates().
	Candidate int
	// Seq is the worker's visiting order (center-origin).
	Seq model.Route
	// Time is the worker's total travel time: approach + center-origin time.
	Time float64
	// Reward is the total reward of the set's tasks.
	Reward float64
	// Payoff is Reward / Time.
	Payoff float64
}

// ForWorker returns the strategies valid for worker index w: every candidate
// whose size respects the worker's maxDP and whose frontier contains a
// sequence the worker can complete within all deadlines. Strategies are
// ordered by descending payoff.
//
// For workers using the instance's default speed the check is exact and
// O(frontier) via the slack trick. For workers with a speed override the
// frontier sequences are re-checked exactly at the worker's speed; note the
// frontier keeps only sequences Pareto-optimal at the default speed, so in
// rare geometries a heterogeneous-speed worker may miss a sequence that is
// feasible only for its speed (every returned strategy is still exactly
// feasible — the approximation can only under-report options).
func (g *Generator) ForWorker(w int) []WorkerVDPS {
	return g.AppendForWorker(nil, w)
}

// AppendForWorker appends worker w's strategies (see ForWorker) to dst and
// returns the extended slice, sorting only the appended segment. It lets
// batch callers — game.NewState builds the strategy space of every worker —
// reuse one scratch buffer across workers instead of growing a fresh slice
// through repeated doublings per call.
func (g *Generator) AppendForWorker(dst []WorkerVDPS, w int) []WorkerVDPS {
	base := len(dst)
	out := dst
	approach := g.inst.ApproachTime(w)
	maxDP := g.inst.Workers[w].MaxDP
	factor := g.inst.SpeedFactor(w)
	for ci := range g.candidates {
		c := &g.candidates[ci]
		if maxDP > 0 && len(c.Points) > maxDP {
			continue
		}
		var st State
		var ok bool
		if factor == 1 {
			st, ok = c.BestFor(approach)
		} else {
			// Heterogeneous speed: the slack shortcut does not apply (every
			// center-origin leg scales by the worker's speed factor), so
			// re-check each frontier sequence exactly. Frontiers are tiny.
			st, ok = c.bestForScaled(g.inst, w)
		}
		if !ok {
			continue
		}
		total := approach + factor*st.Time
		if total <= 0 {
			// A worker standing at the center with a zero-length route
			// cannot happen (routes are non-empty and distinct points), but
			// guard against degenerate geometry producing zero travel time.
			continue
		}
		out = append(out, WorkerVDPS{
			Candidate: ci,
			Seq:       st.Seq,
			Time:      total,
			Reward:    c.Reward,
			Payoff:    c.Reward / total,
		})
	}
	// The comparator is a total order (the candidate index is unique), so
	// the sorted result is the same permutation whatever the algorithm; the
	// type-specialized slices.SortFunc avoids sort.Slice's reflect-based
	// swaps, which dominated NewState's profile on large instances.
	seg := out[base:]
	slices.SortFunc(seg, func(a, b WorkerVDPS) int {
		if a.Payoff != b.Payoff {
			if a.Payoff > b.Payoff {
				return -1
			}
			return 1
		}
		return a.Candidate - b.Candidate
	})
	return out
}

// StrategyRef is a worker strategy in compact reference form: the payoff the
// strategy yields for the worker plus the (candidate, frontier-entry) pair
// that identifies its visiting sequence. At 16 pointer-free bytes it is what
// game.State stores per strategy — the full WorkerVDPS form materializes
// ~4.5x more memory per entry and, via its route slice, forces the garbage
// collector to scan the entire strategy space. Resolve the sequence lazily
// with Generator.RefSeq and the point set with Generator.RefPoints.
type StrategyRef struct {
	// Payoff is Reward / Time for this worker (Definition 7).
	Payoff float64
	// Cand indexes Generator.Candidates().
	Cand int32
	// Entry indexes the candidate's Frontier: the fastest state the worker
	// can execute within all deadlines.
	Entry int32
}

// RefSeq returns the center-origin visiting sequence a StrategyRef selects.
// The route is shared with the generator; callers must not modify it.
func (g *Generator) RefSeq(r StrategyRef) model.Route {
	return g.candidates[r.Cand].Frontier[r.Entry].Seq
}

// RefPoints returns the delivery-point set of a StrategyRef, in ascending
// order. The slice is shared with the generator; callers must not modify it.
func (g *Generator) RefPoints(r StrategyRef) []int {
	return g.candidates[r.Cand].Points
}

// StrategyScratch carries the reusable key buffers for batch
// WorkerStrategies calls. The zero value is ready to use; it must not be
// shared between goroutines.
type StrategyScratch struct {
	keys, tmp []StrategyRef
}

// descBits maps a payoff to a uint64 whose unsigned ascending order is the
// payoff's descending order (the usual sign-flip trick for total-ordering
// float bits, complemented). Equal payoffs map to equal bits, so a stable
// sort on descBits preserves the candidate-ascending tie-break.
func descBits(p float64) uint64 {
	u := math.Float64bits(p)
	if u&(1<<63) != 0 {
		u = ^u
	} else {
		u |= 1 << 63
	}
	return ^u
}

// sortKeysByPayoffDesc orders keys by (payoff descending, insertion order
// ascending) with a stable byte-wise LSD radix sort: ~n work per pass with
// no comparator calls, several times faster than a comparison sort on the
// key count game states see. tmp must have the same length as keys; the
// returned slice is whichever buffer holds the sorted result. Passes whose
// digit is constant across all keys (common in the exponent bytes) are
// skipped.
func sortKeysByPayoffDesc(keys, tmp []StrategyRef) []StrategyRef {
	n := len(keys)
	var hist [256]int
	src, dst := keys, tmp
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range hist {
			hist[i] = 0
		}
		for i := range src {
			hist[byte(descBits(src[i].Payoff)>>shift)]++
		}
		if hist[byte(descBits(src[0].Payoff)>>shift)] == n {
			continue
		}
		sum := 0
		for i := range hist {
			c := hist[i]
			hist[i] = sum
			sum += c
		}
		for i := range src {
			d := byte(descBits(src[i].Payoff) >> shift)
			dst[hist[d]] = src[i]
			hist[d]++
		}
		src, dst = dst, src
	}
	return src
}

// WorkerStrategies returns worker w's strategies in compact reference form —
// the same candidates in the same order as ForWorker — allocated exactly at
// their final size.
//
// It works in three phases: gather a (payoff, candidate, frontier-entry)
// reference per feasible candidate — rejecting infeasible candidates on the
// flat maxSlack/setSize arrays without touching the candidate structs — then
// radix-sort the 16-byte references, then copy them once into an exact-size,
// pointer-free result the garbage collector never scans. Compared with
// building WorkerVDPS structs this moves ~4.5x fewer bytes through the sort,
// the allocator's zeroing and the GC, which is what makes game.NewState's
// strategy-space construction cheap at population scale (see
// docs/PERFORMANCE.md).
func (g *Generator) WorkerStrategies(w int, sc *StrategyScratch) []StrategyRef {
	keys := sc.keys[:0]
	approach := g.inst.ApproachTime(w)
	maxDP := int32(g.inst.Workers[w].MaxDP)
	factor := g.inst.SpeedFactor(w)
	if factor == 1 {
		for ci, ms := range g.maxSlack {
			if ms < approach || (maxDP > 0 && g.setSize[ci] > maxDP) {
				continue
			}
			c := &g.candidates[ci]
			fi, _ := c.bestForIndex(approach) // maxSlack >= approach guarantees ok
			total := approach + c.Frontier[fi].Time
			if total <= 0 {
				continue
			}
			keys = append(keys, StrategyRef{Payoff: c.Reward / total, Cand: int32(ci), Entry: int32(fi)})
		}
	} else {
		// Heterogeneous speed: the slack shortcut does not apply, so every
		// size-eligible candidate's frontier is re-checked via the model.
		for ci := range g.candidates {
			if maxDP > 0 && g.setSize[ci] > maxDP {
				continue
			}
			c := &g.candidates[ci]
			fi, ok := c.bestForScaledIndex(g.inst, w)
			if !ok {
				continue
			}
			total := approach + factor*c.Frontier[fi].Time
			if total <= 0 {
				continue
			}
			keys = append(keys, StrategyRef{Payoff: c.Reward / total, Cand: int32(ci), Entry: int32(fi)})
		}
	}
	sc.keys = keys
	if len(keys) == 0 {
		return nil
	}
	if cap(sc.tmp) < len(keys) {
		sc.tmp = make([]StrategyRef, len(keys), cap(sc.keys))
	}
	// Keys were gathered in ascending candidate order, so the stable sort
	// yields the same (payoff desc, candidate asc) permutation as ForWorker.
	sorted := sortKeysByPayoffDesc(keys, sc.tmp[:len(keys)])
	out := make([]StrategyRef, len(sorted))
	copy(out, sorted)
	return out
}

// Parallelism returns the effective worker count for the generator's
// parallel phases: Options.Parallel when set, otherwise GOMAXPROCS.
// Candidate generation itself only shards when Options.Parallel asks for it
// (its sequential path is the reference implementation); derived batch
// scans — game.NewState's per-worker strategy-space construction — use this
// value to self-parallelize with the same 2x-headroom heuristic
// expandParallel applies.
func (g *Generator) Parallelism() int {
	if g.opt.Parallel >= 1 {
		return g.opt.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// expandChunk computes the next-level states generated by the given slice
// of current-level states. It returns the chunk-local (set, last) map and
// the number of ε-pruned extensions. Stats are left to the caller so the
// function is safe to run concurrently. Cancellation is polled every 64
// states; on cancel the partial map is returned and the caller discards it.
func expandChunk(ctx context.Context, g *Generator, chunk []*dpState, all []int,
	neighbors [][]int, expiry []float64, eps float64) (map[stateKey]*dpState, int) {
	in := g.inst
	n := len(in.Points)
	next := map[stateKey]*dpState{}
	var pruned int
	for di, ds := range chunk {
		if di&0x3f == 0 && ctx.Err() != nil {
			return next, pruned
		}
		lastLoc := in.Points[ds.last].Loc
		succ := all
		if neighbors != nil {
			succ = neighbors[ds.last]
			// Extensions never enumerated thanks to the index still count
			// as pruned, keeping the stat comparable to the full scan.
			pruned += n - len(succ)
		}
		for _, q := range succ {
			if ds.set.Has(q) {
				continue
			}
			leg := in.Travel.Distance(lastLoc, in.Points[q].Loc)
			if leg > eps {
				pruned++
				continue
			}
			legTime := in.Travel.Time(lastLoc, in.Points[q].Loc)
			for _, st := range ds.frontier {
				nt := st.Time + legTime
				if nt > expiry[q] {
					continue
				}
				slack := st.Slack
				if s := expiry[q] - nt; s < slack {
					slack = s
				}
				newSet := ds.set.Clone().With(q)
				key := newStateKey(newSet, q)
				tgt := next[key]
				if tgt == nil {
					tgt = &dpState{set: newSet, last: q}
					next[key] = tgt
				}
				seq := append(st.Seq.Clone(), q)
				tgt.insert(State{Seq: seq, Time: nt, Slack: slack})
			}
		}
	}
	return next, pruned
}

// expandParallel shards the level across the given number of goroutines and
// merges the chunk-local maps in fixed chunk order. Ties between states with
// identical (time, slack) keep the lower chunk's sequence, so the merged
// result equals the sequential computation.
func (g *Generator) expandParallel(ctx context.Context, level []*dpState, all []int,
	neighbors [][]int, expiry []float64, eps float64, workers int) map[stateKey]*dpState {
	chunkSize := (len(level) + workers - 1) / workers
	type part struct {
		next   map[stateKey]*dpState
		pruned int
	}
	parts := make([]part, 0, workers)
	for start := 0; start < len(level); start += chunkSize {
		end := start + chunkSize
		if end > len(level) {
			end = len(level)
		}
		parts = append(parts, part{})
		_ = level[start:end]
	}
	var wg sync.WaitGroup
	idx := 0
	for start := 0; start < len(level); start += chunkSize {
		end := start + chunkSize
		if end > len(level) {
			end = len(level)
		}
		wg.Add(1)
		go func(i int, chunk []*dpState) {
			defer wg.Done()
			parts[i].next, parts[i].pruned = expandChunk(ctx, g, chunk, all, neighbors, expiry, eps)
		}(idx, level[start:end])
		idx++
	}
	wg.Wait()

	merged := map[stateKey]*dpState{}
	for _, p := range parts {
		g.stats.ExtensionsPruned += p.pruned
		// Deterministic cross-chunk merge: iterate the chunk's states via a
		// sorted key list so frontier tie-breaking is stable.
		keys := make([]stateKey, 0, len(p.next))
		for k := range p.next {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].set != keys[j].set {
				return keys[i].set < keys[j].set
			}
			return keys[i].last < keys[j].last
		})
		for _, k := range keys {
			src := p.next[k]
			tgt := merged[k]
			if tgt == nil {
				merged[k] = src
				g.stats.SubsetsExplored++
				continue
			}
			for _, st := range src.frontier {
				tgt.insert(st)
			}
		}
	}
	return merged
}
