package vdps

import (
	"math"
	"math/rand"
	"testing"

	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/travel"
)

func sampleInstance(n int, seed int64) *model.Instance {
	in := &model.Instance{
		Center: geo.Pt(0, 0),
		Travel: travel.MustModel(geo.Euclidean{}, 1),
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		in.Points = append(in.Points, model.DeliveryPoint{
			ID:  i,
			Loc: geo.Pt(rng.Float64()*8-4, rng.Float64()*8-4),
			Tasks: []model.Task{
				{ID: i, Point: i, Expiry: 4 + rng.Float64()*8, Reward: 1},
			},
		})
	}
	in.Workers = []model.Worker{{ID: 0, Loc: geo.Pt(0.5, 0.5)}} // unlimited maxDP
	return in
}

func TestGenerateSampledValidity(t *testing.T) {
	in := sampleInstance(25, 1)
	g, err := GenerateSampled(in, SampleOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Candidates()) == 0 {
		t.Fatal("no sampled candidates")
	}
	// Every frontier sequence must be a genuinely feasible center-origin
	// route with consistent time and slack.
	for _, c := range g.Candidates() {
		for _, st := range c.Frontier {
			if len(st.Seq) != len(c.Points) {
				t.Fatalf("sequence %v does not cover set %v", st.Seq, c.Points)
			}
			time := 0.0
			prev := in.Center
			slack := math.Inf(1)
			for _, p := range st.Seq {
				time += in.Travel.Time(prev, in.Points[p].Loc)
				prev = in.Points[p].Loc
				if room := in.Points[p].EarliestExpiry() - time; room < slack {
					slack = room
				}
			}
			if slack < 0 {
				t.Fatalf("infeasible sampled sequence %v", st.Seq)
			}
			if math.Abs(time-st.Time) > 1e-9 || math.Abs(slack-st.Slack) > 1e-9 {
				t.Fatalf("sequence %v: stored (%g, %g) vs recomputed (%g, %g)",
					st.Seq, st.Time, st.Slack, time, slack)
			}
		}
	}
}

// On small instances every sampled set must also appear in the exhaustive
// generation, with a time no better than the exact optimum for that set.
func TestGenerateSampledSubsetOfExact(t *testing.T) {
	in := sampleInstance(7, 3)
	in.Workers[0].MaxDP = 3
	exact, err := Generate(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := GenerateSampled(in, SampleOptions{MaxSize: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	exactBySet := map[string]*Candidate{}
	for i := range exact.Candidates() {
		c := &exact.Candidates()[i]
		exactBySet[c.Mask.Key()] = c
	}
	for _, c := range sampled.Candidates() {
		e, ok := exactBySet[c.Mask.Key()]
		if !ok {
			t.Fatalf("sampled set %v not found by exact generation", c.Points)
		}
		if c.MinTime() < e.MinTime()-1e-9 {
			t.Fatalf("sampled set %v min time %g beats exact %g",
				c.Points, c.MinTime(), e.MinTime())
		}
	}
}

// The sampler makes unlimited-maxDP instances tractable where the exact DP
// would enumerate 2^n subsets: here 40 points with no cap.
func TestGenerateSampledScales(t *testing.T) {
	in := sampleInstance(40, 5)
	g, err := GenerateSampled(in, SampleOptions{Seed: 6, Samples: 4})
	if err != nil {
		t.Fatal(err)
	}
	ws := g.ForWorker(0)
	if len(ws) == 0 {
		t.Fatal("worker has no sampled strategies")
	}
	// Some multi-point strategies should exist.
	multi := 0
	for _, s := range ws {
		if len(s.Seq) > 3 {
			multi++
		}
		if !in.RouteFeasible(0, s.Seq) {
			t.Fatalf("sampled strategy %v infeasible", s.Seq)
		}
	}
	if multi == 0 {
		t.Error("sampler produced no long routes despite unlimited maxDP")
	}
}

func TestGenerateSampledDeterministic(t *testing.T) {
	in := sampleInstance(15, 7)
	a, err := GenerateSampled(in, SampleOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSampled(in, SampleOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Candidates()) != len(b.Candidates()) {
		t.Error("same seed, different candidate counts")
	}
}

func TestGenerateSampledRejectsInvalid(t *testing.T) {
	in := sampleInstance(3, 1)
	in.Workers[0].MaxDP = -1
	if _, err := GenerateSampled(in, SampleOptions{}); err == nil {
		t.Error("invalid instance accepted")
	}
}
