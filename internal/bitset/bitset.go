// Package bitset provides a small fixed-capacity bit set used to represent
// delivery-point sets compactly and test disjointness in O(words).
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

// Set is a bit set over non-negative integers. The zero value is an empty
// set with zero capacity; use New to pre-size.
type Set []uint64

// New returns a set able to hold values in [0, n) without reallocation.
func New(n int) Set {
	if n <= 0 {
		return Set{}
	}
	return make(Set, (n+63)/64)
}

// Of returns a set containing exactly the given values.
func Of(values ...int) Set {
	var s Set
	for _, v := range values {
		s = s.With(v)
	}
	return s
}

// With returns a set with bit i added, growing if needed. The receiver may be
// modified and must be replaced by the result.
func (s Set) With(i int) Set {
	w := i / 64
	for len(s) <= w {
		s = append(s, 0)
	}
	s[w] |= 1 << uint(i%64)
	return s
}

// Without returns a set with bit i removed.
func (s Set) Without(i int) Set {
	w := i / 64
	if w < len(s) {
		s[w] &^= 1 << uint(i%64)
	}
	return s
}

// Has reports whether bit i is present.
func (s Set) Has(i int) bool {
	w := i / 64
	return w < len(s) && s[w]&(1<<uint(i%64)) != 0
}

// Intersects reports whether s and t share any bit.
func (s Set) Intersects(t Set) bool {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		if s[i]&t[i] != 0 {
			return true
		}
	}
	return false
}

// Union returns a new set containing all bits of s and t.
func (s Set) Union(t Set) Set {
	a, b := s, t
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make(Set, len(a))
	copy(out, a)
	for i := range b {
		out[i] |= b[i]
	}
	return out
}

// Minus returns a new set with the bits of t removed from s.
func (s Set) Minus(t Set) Set {
	out := make(Set, len(s))
	copy(out, s)
	n := len(t)
	if len(out) < n {
		n = len(out)
	}
	for i := 0; i < n; i++ {
		out[i] &^= t[i]
	}
	return out
}

// Count returns the number of set bits.
func (s Set) Count() int {
	var n int
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bits are set.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Values returns the set bits in ascending order.
func (s Set) Values() []int {
	var out []int
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// String renders the set as "{1, 5, 9}".
func (s Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, v := range s.Values() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(strconv.Itoa(v))
	}
	sb.WriteByte('}')
	return sb.String()
}

// Key returns a compact string usable as a map key. Two sets with the same
// elements always produce the same key regardless of capacity.
func (s Set) Key() string {
	end := len(s)
	for end > 0 && s[end-1] == 0 {
		end--
	}
	var sb strings.Builder
	for i := 0; i < end; i++ {
		w := s[i]
		sb.WriteByte(byte(w))
		sb.WriteByte(byte(w >> 8))
		sb.WriteByte(byte(w >> 16))
		sb.WriteByte(byte(w >> 24))
		sb.WriteByte(byte(w >> 32))
		sb.WriteByte(byte(w >> 40))
		sb.WriteByte(byte(w >> 48))
		sb.WriteByte(byte(w >> 56))
	}
	return sb.String()
}
