package bitset

import "testing"

func BenchmarkIntersects(b *testing.B) {
	x := New(512)
	y := New(512)
	for i := 0; i < 512; i += 7 {
		x = x.With(i)
	}
	for i := 0; i < 512; i += 11 {
		y = y.With(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Intersects(y)
	}
}

func BenchmarkKey(b *testing.B) {
	s := New(256)
	for i := 0; i < 256; i += 3 {
		s = s.With(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Key()
	}
}

func BenchmarkValues(b *testing.B) {
	s := New(256)
	for i := 0; i < 256; i += 3 {
		s = s.With(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Values()
	}
}
