package bitset

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(10)
	if !s.Empty() || s.Count() != 0 {
		t.Error("new set should be empty")
	}
	s = s.With(3).With(7).With(64)
	if !s.Has(3) || !s.Has(7) || !s.Has(64) {
		t.Error("With did not set bits")
	}
	if s.Has(4) || s.Has(63) {
		t.Error("unexpected bits set")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	s = s.Without(7)
	if s.Has(7) || s.Count() != 2 {
		t.Error("Without failed")
	}
	// Without beyond capacity is a no-op.
	s = s.Without(1000)
	if s.Count() != 2 {
		t.Error("Without out of range changed the set")
	}
}

func TestOf(t *testing.T) {
	s := Of(1, 5, 9)
	got := s.Values()
	want := []int{1, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("Values = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
	if s.String() != "{1, 5, 9}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestIntersects(t *testing.T) {
	a := Of(1, 2, 3)
	b := Of(3, 4)
	c := Of(4, 5, 200)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping sets reported disjoint")
	}
	if a.Intersects(c) || c.Intersects(a) {
		t.Error("disjoint sets reported overlapping")
	}
	var empty Set
	if a.Intersects(empty) || empty.Intersects(a) {
		t.Error("empty set intersects nothing")
	}
}

func TestUnionMinus(t *testing.T) {
	a := Of(1, 2)
	b := Of(2, 70)
	u := a.Union(b)
	for _, v := range []int{1, 2, 70} {
		if !u.Has(v) {
			t.Errorf("union missing %d", v)
		}
	}
	if u.Count() != 3 {
		t.Errorf("union count = %d", u.Count())
	}
	m := u.Minus(b)
	if !m.Has(1) || m.Has(2) || m.Has(70) {
		t.Errorf("minus = %v", m)
	}
	// Originals untouched.
	if a.Count() != 2 || b.Count() != 2 {
		t.Error("Union/Minus modified inputs")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Of(1, 2)
	b := a.Clone()
	b = b.With(3)
	if a.Has(3) {
		t.Error("Clone shares storage")
	}
}

func TestKeyCanonical(t *testing.T) {
	a := Of(1, 130)
	b := New(1000).With(1).With(130)
	if a.Key() != b.Key() {
		t.Error("same elements, different keys")
	}
	if Of(1).Key() == Of(2).Key() {
		t.Error("different sets share a key")
	}
	var empty Set
	if empty.Key() != New(64).Key() {
		t.Error("empty sets should share the empty key")
	}
}

// Property: Values returns exactly the inserted distinct values, sorted.
func TestValuesRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		var s Set
		uniq := map[int]bool{}
		for _, v := range raw {
			i := int(v % 512)
			s = s.With(i)
			uniq[i] = true
		}
		want := make([]int, 0, len(uniq))
		for v := range uniq {
			want = append(want, v)
		}
		sort.Ints(want)
		got := s.Values()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return s.Count() == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a.Intersects(b) iff the value sets share an element.
func TestIntersectsAgreesWithValues(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		var a, b Set
		ma := map[int]bool{}
		for _, v := range ra {
			a = a.With(int(v))
			ma[int(v)] = true
		}
		shared := false
		for _, v := range rb {
			b = b.With(int(v))
			if ma[int(v)] {
				shared = true
			}
		}
		return a.Intersects(b) == shared
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
