package obs

import (
	"context"
	"testing"
)

// The acceptance bar for the tracing layer: a span site on a path without
// a tracer must cost roughly one nil check (single-digit ns, 0 allocs).
// These benchmarks measure both the disabled and enabled paths and are
// exported to CI as BENCH_trace.json.

// BenchmarkSpanSiteDisabled measures the instrumented-site cost when
// tracing is off: Child/SetAttr/End on a nil span.
func BenchmarkSpanSiteDisabled(b *testing.B) {
	var parent *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := parent.Child("round")
		sp.SetAttrInt("i", i)
		sp.End()
	}
}

// BenchmarkStartSpanDisabled measures StartSpan on a context without an
// active span: one context.Value lookup, no allocation.
func BenchmarkStartSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "phase")
		sp.End()
	}
}

// BenchmarkSpanFromContextDisabled measures the once-per-function span
// fetch hot loops use before switching to raw Child calls.
func BenchmarkSpanFromContextDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sp := SpanFromContext(ctx); sp != nil {
			b.Fatal("unexpected span")
		}
	}
}

// BenchmarkSpanSiteEnabled measures the same site with tracing on: one
// node allocation and a CAS publish per span.
func BenchmarkSpanSiteEnabled(b *testing.B) {
	tr := NewTracer()
	root := tr.Root("root")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := root.Child("round")
		sp.End()
		if i&0xFFFF == 0xFFFF {
			b.StopTimer()
			tr.Collect("drain") // keep memory bounded across b.N
			b.StartTimer()
		}
	}
}

// BenchmarkSpanSiteEnabledParallel measures contention behaviour: many
// goroutines ending spans against the sharded lock-free buffer.
func BenchmarkSpanSiteEnabledParallel(b *testing.B) {
	tr := NewTracer()
	root := tr.Root("root")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sp := root.Child("round")
			sp.End()
		}
	})
	b.StopTimer()
	tr.Collect("drain")
}
