package obs

// AuditMetrics bundles the instruments of the assignment auditor
// (internal/audit): how many audits ran and how many found at least one
// violated invariant. Both are registered at construction so the first
// /metrics scrape already lists them with zero values.
type AuditMetrics struct {
	reg *Registry

	// Runs counts executed assignment audits (one per audited center).
	Runs *Counter
	// Failures counts audits that found at least one violation.
	Failures *Counter
}

// NewAuditMetrics registers the fta_audit_* families on the registry and
// returns the bundle. Safe to call more than once on the same registry: the
// instruments are shared via the registry's first-registration semantics.
func NewAuditMetrics(reg *Registry) *AuditMetrics {
	return &AuditMetrics{
		reg: reg,
		Runs: reg.Counter("fta_audit_runs_total",
			"Assignment audits executed."),
		Failures: reg.Counter("fta_audit_failures_total",
			"Assignment audits that found at least one violated invariant."),
	}
}

// Registry returns the registry the metrics write into.
func (a *AuditMetrics) Registry() *Registry { return a.reg }
