package obs

import (
	"strconv"
	"time"
)

// IterationStat records one round of a game-theoretic solver run (FGT
// best-response or IEGT replicator dynamics). It is the canonical
// per-iteration convergence record: game.Result.Trace, the Recorder hook,
// and the CLI's --trace-out JSONL export all use this type.
type IterationStat struct {
	// Iteration is the 1-based round number.
	Iteration int `json:"iteration"`
	// Changes is how many workers switched strategy this round.
	Changes int `json:"changes"`
	// Potential is Phi = sum of IAUs after the round — at the solver's
	// fairness weights for FGT, and at the default weights for IEGT (whose
	// raw-payoff dynamics have no potential of their own; Phi is recorded so
	// traces stay comparable across algorithms).
	Potential float64 `json:"potential"`
	// PayoffDiff is P_dif after the round.
	PayoffDiff float64 `json:"payoff_diff"`
	// AvgPayoff is the mean payoff after the round.
	AvgPayoff float64 `json:"avg_payoff"`
}

// VDPSEvent summarizes one candidate-generation run (vdps.Generate or
// vdps.GenerateSampled).
type VDPSEvent struct {
	// Points and Workers are the instance's sizes.
	Points, Workers int
	// Subsets counts distinct (set, last) DP states created.
	Subsets int
	// Pruned counts DP extensions discarded by the epsilon rule.
	Pruned int
	// Candidates is the number of C-VDPSs produced.
	Candidates int
	// Sampled is true for the randomized sampler, false for the exact DP.
	Sampled bool
	// Elapsed is the generation wall time.
	Elapsed time.Duration
}

// SolveEvent summarizes one completed single-center solve.
type SolveEvent struct {
	// Algorithm is the assigner's name (FGT, IEGT, GTA, MPTA, MMTA).
	Algorithm string
	// CenterID identifies the distribution center.
	CenterID int
	// Workers and Points are the instance's sizes.
	Workers, Points int
	// Iterations is the number of game rounds executed (zero for the
	// non-iterative baselines).
	Iterations int
	// Converged reports whether an equilibrium was reached before the cap.
	Converged bool
	// Elapsed is the solve wall time, excluding VDPS generation.
	Elapsed time.Duration
	// Degraded names the degradation-ladder rung that served the solve
	// ("sampled", "greedy"); empty for a full-fidelity exact solve.
	Degraded string
	// Difference and Average are the final P_dif and mean payoff of the
	// solved center.
	Difference, Average float64
	// Potential is the fairness potential Phi of the final payoffs. Only
	// meaningful for the iterative solvers (Iterations > 0); the
	// non-iterative baselines leave it zero and it is not observed for them.
	Potential float64
}

// AssignEvent summarizes one multi-center platform assignment.
type AssignEvent struct {
	// Algorithm is the assigner's name.
	Algorithm string
	// Centers, Workers and Points are the problem's total sizes.
	Centers, Workers, Points int
	// Parallelism is the number of concurrent per-center solves used.
	Parallelism int
	// Elapsed is the wall time of the whole assignment.
	Elapsed time.Duration
}

// Recorder receives telemetry events from the solve path. Implementations
// must be safe for concurrent use: the platform solves centers in parallel
// and the HTTP service handles overlapping requests. A nil Recorder means
// telemetry is disabled; emitting code guards every call behind a nil check
// so the disabled path costs one pointer comparison.
type Recorder interface {
	// RecordVDPS is called once per candidate-generation run.
	RecordVDPS(VDPSEvent)
	// RecordIteration is called after every FGT/IEGT round with the
	// algorithm name and the round's convergence statistics.
	RecordIteration(algorithm string, stat IterationStat)
	// RecordSolve is called once per completed single-center solve.
	RecordSolve(SolveEvent)
	// RecordAssign is called once per completed multi-center assignment.
	RecordAssign(AssignEvent)
}

// MetricsRecorder is a Recorder that aggregates events into a Registry as
// Prometheus-style metrics. Label-free instruments are pre-registered at
// construction so the first exposition already lists them with zero values;
// algorithm-labeled children materialize on first use.
type MetricsRecorder struct {
	reg *Registry

	vdpsSubsets    *Counter
	vdpsPruned     *Counter
	vdpsCandidates *Counter
	vdpsSeconds    *Histogram

	solveIterations *Histogram
	solveSeconds    *Histogram

	assignSeconds     *Histogram
	assignCenters     *Counter
	assignParallelism *Gauge
	assignWorkers     *Counter
}

// NewMetricsRecorder builds a MetricsRecorder over the registry,
// pre-registering every fixed-name instrument.
func NewMetricsRecorder(reg *Registry) *MetricsRecorder {
	return &MetricsRecorder{
		reg: reg,
		vdpsSubsets: reg.Counter("fta_vdps_subsets_total",
			"Dynamic-program (set, last) states explored during VDPS generation."),
		vdpsPruned: reg.Counter("fta_vdps_pruned_total",
			"DP extensions discarded by the epsilon distance-pruning rule."),
		vdpsCandidates: reg.Counter("fta_vdps_candidates_total",
			"C-VDPS candidate sets generated."),
		vdpsSeconds: reg.Histogram("fta_vdps_generation_seconds",
			"Wall time of one VDPS candidate-generation run.", DefBuckets),
		solveIterations: reg.Histogram("fta_solve_iterations",
			"Game rounds per single-center solve.", CountBuckets),
		solveSeconds: reg.Histogram("fta_solve_seconds",
			"Wall time of one single-center solve, excluding VDPS generation.", DefBuckets),
		assignSeconds: reg.Histogram("fta_assign_seconds",
			"Wall time of one multi-center assignment.", DefBuckets),
		assignCenters: reg.Counter("fta_assign_centers_total",
			"Distribution centers solved by multi-center assignments."),
		assignParallelism: reg.Gauge("fta_assign_parallelism",
			"Concurrent per-center solves used by the latest assignment."),
		assignWorkers: reg.Counter("fta_assign_workers_total",
			"Workers covered by multi-center assignments."),
	}
}

// Registry returns the registry the recorder writes into.
func (m *MetricsRecorder) Registry() *Registry { return m.reg }

// RecordVDPS implements Recorder.
func (m *MetricsRecorder) RecordVDPS(e VDPSEvent) {
	m.vdpsSubsets.Add(int64(e.Subsets))
	m.vdpsPruned.Add(int64(e.Pruned))
	m.vdpsCandidates.Add(int64(e.Candidates))
	m.vdpsSeconds.Observe(e.Elapsed.Seconds())
}

// RecordIteration implements Recorder: it accumulates strategy switches per
// algorithm. Per-round payoff gauges were removed here — with centers
// solving in parallel, interleaved rounds of different centers made a
// last-write-wins gauge meaningless; the final per-solve values are now
// observed as histograms by RecordSolve instead.
func (m *MetricsRecorder) RecordIteration(algorithm string, st IterationStat) {
	m.reg.Counter("fta_solve_strategy_changes_total",
		"Worker strategy switches across all solver rounds.",
		L("algorithm", algorithm)).Add(int64(st.Changes))
}

// Help strings of the per-solve payoff histograms, shared between
// RecordSolve and SeedAlgorithms so pre-registered and on-demand families
// are identical.
const (
	helpPayoffDifference = "Final P_dif per completed single-center solve."
	helpAveragePayoff    = "Final mean worker payoff per completed single-center solve."
	helpPotential        = "Final fairness potential Phi per completed iterative solve."
	helpStrategyChanges  = "Worker strategy switches across all solver rounds."
	helpSolveTotal       = "Completed single-center solves."
)

// RecordSolve implements Recorder.
func (m *MetricsRecorder) RecordSolve(e SolveEvent) {
	alg := L("algorithm", e.Algorithm)
	m.solveIterations.Observe(float64(e.Iterations))
	m.solveSeconds.Observe(e.Elapsed.Seconds())
	m.reg.Histogram("fta_solve_payoff_difference",
		helpPayoffDifference, PayoffBuckets, alg).Observe(e.Difference)
	m.reg.Histogram("fta_solve_average_payoff",
		helpAveragePayoff, PayoffBuckets, alg).Observe(e.Average)
	if e.Iterations > 0 {
		// Phi only exists for the game-theoretic solvers; observing the
		// baselines' zero value would just distort the distribution.
		m.reg.Histogram("fta_solve_potential",
			helpPotential, PayoffBuckets, alg).Observe(e.Potential)
	}
	m.reg.Counter("fta_solve_total", helpSolveTotal,
		alg, L("converged", strconv.FormatBool(e.Converged))).Inc()
	if e.Degraded != "" {
		// Shares the fta_degrade_total family with NewFaultMetrics via the
		// registry's first-registration semantics; counted here — and only
		// here — so a degraded solve is never double-counted.
		m.reg.Counter("fta_degrade_total",
			"Solves served by a degradation-ladder rung.", L("rung", e.Degraded)).Inc()
	}
}

// SeedAlgorithms pre-registers the algorithm-labeled solve families for the
// given algorithm names so the first scrape lists them with zero values,
// like the label-free families NewMetricsRecorder registers. Call it at
// server startup with the algorithms the service can run.
func (m *MetricsRecorder) SeedAlgorithms(algorithms ...string) {
	for _, a := range algorithms {
		alg := L("algorithm", a)
		m.reg.Histogram("fta_solve_payoff_difference", helpPayoffDifference, PayoffBuckets, alg)
		m.reg.Histogram("fta_solve_average_payoff", helpAveragePayoff, PayoffBuckets, alg)
		m.reg.Histogram("fta_solve_potential", helpPotential, PayoffBuckets, alg)
		m.reg.Counter("fta_solve_strategy_changes_total", helpStrategyChanges, alg)
		m.reg.Counter("fta_solve_total", helpSolveTotal, alg, L("converged", "true"))
		m.reg.Counter("fta_solve_total", helpSolveTotal, alg, L("converged", "false"))
		m.reg.Counter("fta_assign_total", "Completed multi-center assignments.", alg)
	}
}

// RecordAssign implements Recorder.
func (m *MetricsRecorder) RecordAssign(e AssignEvent) {
	m.assignSeconds.Observe(e.Elapsed.Seconds())
	m.assignCenters.Add(int64(e.Centers))
	m.assignParallelism.Set(float64(e.Parallelism))
	m.reg.Counter("fta_assign_total", "Completed multi-center assignments.",
		L("algorithm", e.Algorithm)).Inc()
	m.assignWorkers.Add(int64(e.Workers))
}
