package obs

// StreamMetrics bundles the instruments of the streaming equilibrium engine
// (internal/stream): delta counters by kind, apply/resolve latencies, the
// per-delta repair blast radius and the engine's sequence high-water mark.
// A nil *StreamMetrics disables the telemetry entirely. See
// docs/STREAMING.md and docs/OBSERVABILITY.md.
type StreamMetrics struct {
	reg *Registry

	// DeltaTaskArrived..DeltaRewardChanged count applied deltas by kind
	// (fta_stream_deltas_total). Rejected deltas are not counted here.
	DeltaTaskArrived, DeltaTaskExpired    *Counter
	DeltaWorkerOnline, DeltaWorkerOffline *Counter
	DeltaRewardChanged                    *Counter
	// Rejected counts deltas refused before commit: stale or duplicate
	// sequence numbers, unknown entities, validation failures and armed
	// stream.apply failpoints (fta_stream_rejected_total).
	Rejected *Counter
	// ApplySeconds observes the wall-clock latency of whole Apply calls,
	// and ResolveSeconds the equilibrium re-solve portion alone.
	ApplySeconds, ResolveSeconds *Histogram
	// WorkersTouched observes how many workers each applied batch forced
	// the engine to rebuild strategy spaces for — the repair blast radius.
	WorkersTouched *Histogram
	// ResolveNoop..ResolveContinuation count applied batches by how the
	// engine re-established equilibrium (fta_stream_resolves_total): noop
	// (nothing the game reads changed), warm (repaired strategy spaces),
	// regen (candidate DP re-run, full or incremental), cold
	// (failpoint/error fallback through the platform ladder) or
	// continuation (dynamics seeded from the previous equilibrium,
	// audit-certified).
	ResolveNoop, ResolveWarm, ResolveRegen, ResolveCold *Counter
	ResolveContinuation                                 *Counter
	// ContinuationFallbacks counts continuation resolves that failed their
	// audit certificate (or hit the iteration cap) and were served by the
	// default bit-pinned replay instead
	// (fta_stream_continuation_fallbacks_total).
	ContinuationFallbacks *Counter
	// IterationsSaved observes, per continuation resolve, how many dynamics
	// rounds seeding from the previous equilibrium saved against the most
	// recent random-init resolve (fta_stream_iterations_saved).
	IterationsSaved *Histogram
	// Seq tracks the engine's last applied sequence number
	// (fta_stream_seq).
	Seq *Gauge
}

// NewStreamMetrics registers the fta_stream_* families on the registry and
// returns the bundle. Safe to call more than once on the same registry via
// its first-registration semantics; fta serve calls it at startup so the
// families are visible before the first delta arrives.
func NewStreamMetrics(reg *Registry) *StreamMetrics {
	deltas := func(kind string) *Counter {
		return reg.Counter("fta_stream_deltas_total",
			"Applied stream deltas by kind.", L("kind", kind))
	}
	resolves := func(kind string) *Counter {
		return reg.Counter("fta_stream_resolves_total",
			"Applied stream batches by resolve path.", L("kind", kind))
	}
	return &StreamMetrics{
		reg:                reg,
		DeltaTaskArrived:   deltas("task_arrived"),
		DeltaTaskExpired:   deltas("task_expired"),
		DeltaWorkerOnline:  deltas("worker_online"),
		DeltaWorkerOffline: deltas("worker_offline"),
		DeltaRewardChanged: deltas("reward_changed"),
		Rejected: reg.Counter("fta_stream_rejected_total",
			"Stream deltas rejected before commit."),
		ApplySeconds: reg.Histogram("fta_stream_apply_seconds",
			"Latency of stream Apply calls.", DefBuckets),
		ResolveSeconds: reg.Histogram("fta_stream_resolve_seconds",
			"Latency of the equilibrium re-solve within Apply.", DefBuckets),
		WorkersTouched: reg.Histogram("fta_stream_workers_touched",
			"Workers whose strategy spaces were rebuilt per applied batch.",
			CountBuckets),
		ResolveNoop:         resolves("noop"),
		ResolveWarm:         resolves("warm"),
		ResolveRegen:        resolves("regen"),
		ResolveCold:         resolves("cold"),
		ResolveContinuation: resolves("continuation"),
		ContinuationFallbacks: reg.Counter("fta_stream_continuation_fallbacks_total",
			"Continuation resolves that failed certification and fell back to the bit-pinned replay."),
		IterationsSaved: reg.Histogram("fta_stream_iterations_saved",
			"Dynamics rounds saved per continuation resolve vs the last random-init resolve.",
			CountBuckets),
		Seq: reg.Gauge("fta_stream_seq",
			"Last applied stream sequence number."),
	}
}

// Registry returns the registry the metrics write into.
func (m *StreamMetrics) Registry() *Registry { return m.reg }

// DeltaCounter returns the applied-delta counter for the kind string, or
// nil for an unknown kind. Nil receivers return nil.
func (m *StreamMetrics) DeltaCounter(kind string) *Counter {
	if m == nil {
		return nil
	}
	switch kind {
	case "task_arrived":
		return m.DeltaTaskArrived
	case "task_expired":
		return m.DeltaTaskExpired
	case "worker_online":
		return m.DeltaWorkerOnline
	case "worker_offline":
		return m.DeltaWorkerOffline
	case "reward_changed":
		return m.DeltaRewardChanged
	}
	return nil
}

// ResolveCounter returns the resolve-path counter for the kind string
// ("noop", "warm", "regen", "cold", "continuation"), or nil for an unknown
// kind. Nil receivers return nil.
func (m *StreamMetrics) ResolveCounter(kind string) *Counter {
	if m == nil {
		return nil
	}
	switch kind {
	case "noop":
		return m.ResolveNoop
	case "warm":
		return m.ResolveWarm
	case "regen":
		return m.ResolveRegen
	case "cold":
		return m.ResolveCold
	case "continuation":
		return m.ResolveContinuation
	}
	return nil
}

// OnlineMetrics bundles the instruments of the online matcher baseline
// (internal/online): per-policy offer outcomes. A nil *OnlineMetrics
// disables the telemetry entirely.
type OnlineMetrics struct {
	reg *Registry

	// AssignedGreedy and AssignedFairFirst count accepted offers by policy
	// (fta_online_assigned_total); RejectedGreedy and RejectedFairFirst
	// count offers no worker could serve (fta_online_rejected_total).
	AssignedGreedy, AssignedFairFirst *Counter
	RejectedGreedy, RejectedFairFirst *Counter
}

// NewOnlineMetrics registers the fta_online_* families for both matcher
// policies on the registry and returns the bundle. Safe to call more than
// once on the same registry.
func NewOnlineMetrics(reg *Registry) *OnlineMetrics {
	return &OnlineMetrics{
		reg: reg,
		AssignedGreedy: reg.Counter("fta_online_assigned_total",
			"Online matcher offers accepted, by policy.", L("policy", "greedy")),
		AssignedFairFirst: reg.Counter("fta_online_assigned_total",
			"Online matcher offers accepted, by policy.", L("policy", "fair-first")),
		RejectedGreedy: reg.Counter("fta_online_rejected_total",
			"Online matcher offers no worker could serve, by policy.", L("policy", "greedy")),
		RejectedFairFirst: reg.Counter("fta_online_rejected_total",
			"Online matcher offers no worker could serve, by policy.", L("policy", "fair-first")),
	}
}

// Registry returns the registry the metrics write into.
func (m *OnlineMetrics) Registry() *Registry { return m.reg }

// ForPolicy returns the (assigned, rejected) counter pair for the policy
// string ("greedy" or "fair-first"), or nils for an unknown policy. Nil
// receivers return nils.
func (m *OnlineMetrics) ForPolicy(policy string) (assigned, rejected *Counter) {
	if m == nil {
		return nil, nil
	}
	switch policy {
	case "greedy":
		return m.AssignedGreedy, m.RejectedGreedy
	case "fair-first":
		return m.AssignedFairFirst, m.RejectedFairFirst
	}
	return nil, nil
}
