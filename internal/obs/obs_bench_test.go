package obs

import (
	"io"
	"testing"
	"time"
)

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 1000)
	}
}

func BenchmarkRegistryLookup(b *testing.B) {
	r := NewRegistry()
	r.Counter("bench_total", "", L("route", "/solve"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("bench_total", "", L("route", "/solve")).Inc()
	}
}

func BenchmarkRecordIteration(b *testing.B) {
	rec := NewMetricsRecorder(NewRegistry())
	st := IterationStat{Iteration: 3, Changes: 2, Potential: 10, PayoffDiff: 1.5, AvgPayoff: 6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.RecordIteration("FGT", st)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	rec := NewMetricsRecorder(r)
	for i := 0; i < 50; i++ {
		rec.RecordSolve(SolveEvent{Algorithm: "FGT", Iterations: i, Converged: true, Elapsed: time.Millisecond})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
