package obs

import (
	"strings"
	"testing"
)

func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	v := 1.5
	reg.GaugeFunc("test_dynamic", "Sampled at scrape time.", func() float64 { return v })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "test_dynamic 1.5") {
		t.Fatalf("exposition missing dynamic value:\n%s", sb.String())
	}
	v = 2.5
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "test_dynamic 2.5") {
		t.Fatal("GaugeFunc must re-evaluate at every exposition")
	}
}

func TestGaugeFuncKindConflict(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_conflict", "")
	defer func() {
		if recover() == nil {
			t.Fatal("GaugeFunc over a counter name must panic")
		}
	}()
	reg.GaugeFunc("test_conflict", "", func() float64 { return 0 })
}

func TestRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	rm := NewRuntimeMetrics(reg)
	if rm.Uptime() < 0 {
		t.Fatal("negative uptime")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"fta_build_info{",
		"fta_uptime_seconds ",
		"fta_goroutines ",
		"fta_heap_bytes ",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, `go_version="go`) {
		t.Error("build info missing go_version label")
	}
	if !strings.Contains(out, `version="`) {
		t.Error("build info missing version label")
	}
	// Goroutines and heap must read as positive at scrape time.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "fta_goroutines ") || strings.HasPrefix(line, "fta_heap_bytes ") {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("runtime sample unexpectedly zero: %s", line)
			}
		}
	}
}
