package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// This file converts collected traces to and from the Chrome trace_event
// JSON format, loadable in chrome://tracing and https://ui.perfetto.dev.
// Each Trace becomes one "process" (pid); spans become "X" complete events
// with microsecond timestamps. Chrome's viewer nests events on one thread
// track by time containment, which breaks when sibling spans overlap (our
// per-center solves run concurrently), so overlapping siblings are assigned
// distinct lanes (tids) via greedy interval partitioning: a child either
// inherits its parent's lane or, when an earlier sibling still occupies it,
// opens a new one. Span identity (id/parent) rides in each event's args so
// ReadChromeTrace can rebuild the exact span tree for `fta trace`.

// chromeEvent is one entry of the trace_event "traceEvents" array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level object form of the trace_event format.
type chromeFile struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	DisplayUnit string         `json:"displayTimeUnit"`
	Metadata    map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace writes traces as Chrome trace_event JSON to w. The file
// loads directly in chrome://tracing and Perfetto; each trace appears as
// its own named process with concurrent spans on separate thread lanes.
func WriteChromeTrace(w io.Writer, traces ...Trace) error {
	file := chromeFile{DisplayUnit: "ms", TraceEvents: []chromeEvent{}}
	for pi, tr := range traces {
		pid := pi + 1
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": tr.Name},
		})
		lanes := assignLanes(tr.Spans)
		for i, s := range tr.Spans {
			dur := float64(s.Duration.Nanoseconds()) / 1e3
			args := map[string]any{"id": s.ID, "parent": s.Parent}
			for _, a := range s.Attrs {
				args[a.Key] = a.Value
			}
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name:  s.Name,
				Phase: "X",
				TS:    float64(s.Start.Nanoseconds()) / 1e3,
				Dur:   &dur,
				PID:   pid,
				TID:   lanes[i],
				Args:  args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// assignLanes maps each span (by index into spans, which must be sorted by
// start) to a Chrome thread lane so every lane holds a laminar family:
// spans on one lane are pairwise nested (ancestor/descendant) or time
// disjoint, which is exactly what Chrome's per-thread nesting renders
// correctly. Children prefer their parent's lane — Chrome then draws them
// nested under it — and spill to other lanes when concurrent siblings
// collide.
func assignLanes(spans []SpanRecord) []int {
	lanes := make([]int, len(spans))
	byID := make(map[uint64]int, len(spans))
	for i, s := range spans {
		byID[s.ID] = i
	}
	isAncestor := func(anc, i int) bool {
		id := spans[anc].ID
		for p := spans[i].Parent; p != 0; {
			if p == id {
				return true
			}
			pi, ok := byID[p]
			if !ok {
				return false
			}
			p = spans[pi].Parent
		}
		return false
	}
	// laneSpans[l] lists the span indices already on lane l+1 (lane 0 is
	// left to metadata rows). A candidate fits a lane when every occupant
	// is either an ancestor of it or disjoint in time.
	var laneSpans [][]int
	fits := func(i, l int) bool {
		s := spans[i]
		for _, j := range laneSpans[l] {
			o := spans[j]
			disjoint := o.End() <= s.Start || s.End() <= o.Start
			if !disjoint && !isAncestor(j, i) {
				return false
			}
		}
		return true
	}
	place := func(i, preferred int) {
		if preferred >= 0 && preferred < len(laneSpans) && fits(i, preferred) {
			lanes[i] = preferred + 1
			laneSpans[preferred] = append(laneSpans[preferred], i)
			return
		}
		for l := range laneSpans {
			if fits(i, l) {
				lanes[i] = l + 1
				laneSpans[l] = append(laneSpans[l], i)
				return
			}
		}
		laneSpans = append(laneSpans, []int{i})
		lanes[i] = len(laneSpans)
	}
	// Place spans in depth order so parents get lanes before their
	// children; within a depth the sorted start order is kept.
	depth := make([]int, len(spans))
	var depthOf func(i int) int
	depthOf = func(i int) int {
		if depth[i] != 0 {
			return depth[i]
		}
		p, ok := byID[spans[i].Parent]
		if spans[i].Parent == 0 || !ok || p == i {
			depth[i] = 1
		} else {
			depth[i] = depthOf(p) + 1
		}
		return depth[i]
	}
	for i := range spans {
		depthOf(i)
	}
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return depth[order[a]] < depth[order[b]] })
	for _, i := range order {
		pref := -1
		if p, ok := byID[spans[i].Parent]; ok && spans[i].Parent != 0 {
			pref = lanes[p] - 1
		}
		place(i, pref)
	}
	return lanes
}

// ReadChromeTrace parses a file written by WriteChromeTrace and rebuilds
// the traces, grouped by pid, with span identity restored from event args.
// It accepts only files produced by this package (it relies on the id and
// parent args), not arbitrary Chrome traces.
func ReadChromeTrace(r io.Reader) ([]Trace, error) {
	var file chromeFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("parse chrome trace: %w", err)
	}
	names := make(map[int]string)
	spans := make(map[int][]SpanRecord)
	seen := make(map[int]bool)
	var pids []int
	note := func(pid int) {
		if !seen[pid] {
			seen[pid] = true
			pids = append(pids, pid)
		}
	}
	for _, ev := range file.TraceEvents {
		switch ev.Phase {
		case "M":
			if ev.Name == "process_name" {
				if n, ok := ev.Args["name"].(string); ok {
					note(ev.PID)
					names[ev.PID] = n
				}
			}
		case "X":
			rec := SpanRecord{Name: ev.Name}
			rec.Start = durationFromMicros(ev.TS)
			if ev.Dur != nil {
				rec.Duration = durationFromMicros(*ev.Dur)
			}
			rec.ID = uintArg(ev.Args, "id")
			rec.Parent = uintArg(ev.Args, "parent")
			for k, v := range ev.Args {
				if k == "id" || k == "parent" {
					continue
				}
				if sv, ok := v.(string); ok {
					rec.Attrs = append(rec.Attrs, Attr{Key: k, Value: sv})
				}
			}
			sort.Slice(rec.Attrs, func(i, j int) bool { return rec.Attrs[i].Key < rec.Attrs[j].Key })
			note(ev.PID)
			spans[ev.PID] = append(spans[ev.PID], rec)
		}
	}
	if len(pids) == 0 {
		return nil, fmt.Errorf("parse chrome trace: no trace events found")
	}
	sort.Ints(pids)
	out := make([]Trace, 0, len(pids))
	for _, pid := range pids {
		ss := spans[pid]
		sortSpans(ss)
		out = append(out, Trace{Name: names[pid], Spans: ss})
	}
	return out, nil
}

// durationFromMicros converts a trace_event microsecond value to a
// duration, rounding to the nearest nanosecond.
func durationFromMicros(us float64) time.Duration {
	return time.Duration(us * 1e3)
}

// uintArg reads a numeric event arg as uint64; JSON numbers decode as
// float64.
func uintArg(args map[string]any, key string) uint64 {
	if f, ok := args[key].(float64); ok {
		return uint64(f)
	}
	return 0
}
