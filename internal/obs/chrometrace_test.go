package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// buildTestTrace makes a deterministic trace with overlapping siblings:
//
//	assign [0,100ms]
//	├── center.solve A [1,40ms]   (overlaps B)
//	│   └── round [2,10ms]
//	└── center.solve B [5,60ms]
func buildTestTrace() Trace {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return Trace{
		Name: "fta assign",
		Spans: []SpanRecord{
			{ID: 1, Name: "assign", Start: 0, Duration: ms(100)},
			{ID: 2, Parent: 1, Name: "center.solve", Start: ms(1), Duration: ms(39),
				Attrs: []Attr{{Key: "center", Value: "A"}}},
			{ID: 3, Parent: 2, Name: "round", Start: ms(2), Duration: ms(8)},
			{ID: 4, Parent: 1, Name: "center.solve", Start: ms(5), Duration: ms(55),
				Attrs: []Attr{{Key: "center", Value: "B"}}},
		},
	}
}

func TestWriteChromeTraceFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, buildTestTrace()); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if file.DisplayUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", file.DisplayUnit)
	}
	if len(file.TraceEvents) != 5 { // 1 metadata + 4 spans
		t.Fatalf("got %d events, want 5", len(file.TraceEvents))
	}
	meta := file.TraceEvents[0]
	if meta["ph"] != "M" || meta["name"] != "process_name" {
		t.Fatalf("first event must be process_name metadata, got %+v", meta)
	}
	for _, ev := range file.TraceEvents[1:] {
		if ev["ph"] != "X" {
			t.Errorf("span event phase = %v, want X", ev["ph"])
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Errorf("event missing numeric ts: %+v", ev)
		}
		if _, ok := ev["dur"].(float64); !ok {
			t.Errorf("event missing numeric dur: %+v", ev)
		}
		args, ok := ev["args"].(map[string]any)
		if !ok {
			t.Fatalf("event missing args: %+v", ev)
		}
		if _, ok := args["id"].(float64); !ok {
			t.Errorf("args missing id: %+v", args)
		}
	}
	// Microsecond conversion: the assign span lasts 100ms = 100000us.
	var assignDur float64
	for _, ev := range file.TraceEvents[1:] {
		if ev["name"] == "assign" {
			assignDur = ev["dur"].(float64)
		}
	}
	if assignDur != 100000 {
		t.Errorf("assign dur = %v us, want 100000", assignDur)
	}
}

func TestChromeTraceLanesSeparateOverlaps(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, buildTestTrace()); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	tids := map[string][]int{}
	for _, ev := range file.TraceEvents {
		if ev.Phase == "X" {
			key := ev.Name
			if c, ok := ev.Args["center"].(string); ok {
				key += ":" + c
			}
			tids[key] = append(tids[key], ev.TID)
		}
	}
	a, b := tids["center.solve:A"][0], tids["center.solve:B"][0]
	if a == b {
		t.Fatalf("overlapping sibling solves share tid %d; must differ", a)
	}
	// The nested round should sit on its parent's lane so Chrome nests it.
	if r := tids["round"][0]; r != a {
		t.Errorf("round tid = %d, want parent's %d", r, a)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	orig := buildTestTrace()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d traces, want 1", len(got))
	}
	tr := got[0]
	if tr.Name != orig.Name {
		t.Errorf("name = %q, want %q", tr.Name, orig.Name)
	}
	if len(tr.Spans) != len(orig.Spans) {
		t.Fatalf("got %d spans, want %d", len(tr.Spans), len(orig.Spans))
	}
	for i, s := range tr.Spans {
		o := orig.Spans[i]
		if s.ID != o.ID || s.Parent != o.Parent || s.Name != o.Name {
			t.Errorf("span %d identity = %d/%d/%q, want %d/%d/%q",
				i, s.ID, s.Parent, s.Name, o.ID, o.Parent, o.Name)
		}
		if s.Start != o.Start || s.Duration != o.Duration {
			t.Errorf("span %d timing = %v/%v, want %v/%v", i, s.Start, s.Duration, o.Start, o.Duration)
		}
		if o.Attr("center") != s.Attr("center") {
			t.Errorf("span %d center = %q, want %q", i, s.Attr("center"), o.Attr("center"))
		}
	}
}

func TestChromeTraceMultipleTraces(t *testing.T) {
	t1, t2 := buildTestTrace(), buildTestTrace()
	t2.Name = "POST /solve"
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, t1, t2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d traces, want 2", len(got))
	}
	if got[0].Name != "fta assign" || got[1].Name != "POST /solve" {
		t.Errorf("trace names = %q, %q", got[0].Name, got[1].Name)
	}
}

func TestReadChromeTraceErrors(t *testing.T) {
	if _, err := ReadChromeTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("want error for invalid JSON")
	}
	if _, err := ReadChromeTrace(strings.NewReader(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("want error for empty trace")
	}
}
