package obs

// ParallelMetrics bundles the instruments of the batch throughput layer
// (internal/platform's shared solve pool): pool sizing, per-task queue and
// run latencies, and batch/task counters. A nil *ParallelMetrics disables
// the telemetry entirely. See docs/PERFORMANCE.md.
type ParallelMetrics struct {
	reg *Registry

	// PoolWorkers is the shared pool's worker-goroutine count
	// (fta_parallel_pool_workers).
	PoolWorkers *Gauge
	// Tasks counts solve tasks executed on the pool
	// (fta_parallel_tasks_total); Batches counts whole multi-center
	// assignments served by it (fta_parallel_batches_total).
	Tasks, Batches *Counter
	// QueueSeconds observes how long each task waited between submission
	// and a worker picking it up; TaskSeconds the task's own run time.
	QueueSeconds, TaskSeconds *Histogram
}

// NewParallelMetrics registers the fta_parallel_* families on the registry
// and returns the bundle. Safe to call more than once on the same registry
// via its first-registration semantics.
func NewParallelMetrics(reg *Registry) *ParallelMetrics {
	return &ParallelMetrics{
		reg: reg,
		PoolWorkers: reg.Gauge("fta_parallel_pool_workers",
			"Worker goroutines in the shared solve pool."),
		Tasks: reg.Counter("fta_parallel_tasks_total",
			"Solve tasks executed on the shared pool."),
		Batches: reg.Counter("fta_parallel_batches_total",
			"Multi-center assignments served by the shared pool."),
		QueueSeconds: reg.Histogram("fta_parallel_queue_seconds",
			"Time solve tasks spent queued before a pool worker picked them up.",
			DefBuckets),
		TaskSeconds: reg.Histogram("fta_parallel_task_seconds",
			"Run time of solve tasks on the shared pool.", DefBuckets),
	}
}

// Registry returns the registry the metrics write into.
func (m *ParallelMetrics) Registry() *Registry { return m.reg }
