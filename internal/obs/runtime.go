package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// RuntimeMetrics exposes process-level health metrics: build identity,
// uptime, goroutine count and heap size. Values are sampled at scrape time
// via GaugeFunc, so the registry always reports the current state without a
// background collector goroutine.
type RuntimeMetrics struct {
	start time.Time
}

// NewRuntimeMetrics registers the process metrics on the registry and
// returns the collector (kept only for its start timestamp):
//
//	fta_build_info{version,go_version} 1
//	fta_uptime_seconds
//	fta_goroutines
//	fta_heap_bytes
//
// The version label is the module's VCS-derived version from the build info
// ("(devel)" or a pseudo-version for untagged builds).
func NewRuntimeMetrics(reg *Registry) *RuntimeMetrics {
	rm := &RuntimeMetrics{start: time.Now()}
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	reg.Gauge("fta_build_info",
		"Build identity; the value is always 1, the identity is in the labels.",
		L("version", version), L("go_version", runtime.Version())).Set(1)
	reg.GaugeFunc("fta_uptime_seconds",
		"Seconds since the process registered its metrics.",
		func() float64 { return time.Since(rm.start).Seconds() })
	reg.GaugeFunc("fta_goroutines",
		"Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("fta_heap_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	return rm
}

// Uptime returns the time since the metrics were registered.
func (rm *RuntimeMetrics) Uptime() time.Duration { return time.Since(rm.start) }
