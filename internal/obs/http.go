package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"time"
)

// StatusRecorder wraps an http.ResponseWriter, capturing the response code
// and body size for instrumentation.
type StatusRecorder struct {
	http.ResponseWriter
	// Status is the response code; 200 until WriteHeader is called.
	Status int
	// Bytes counts response body bytes written.
	Bytes int64
}

// NewStatusRecorder wraps w with Status defaulting to 200.
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	return &StatusRecorder{ResponseWriter: w, Status: http.StatusOK}
}

// WriteHeader implements http.ResponseWriter.
func (s *StatusRecorder) WriteHeader(code int) {
	s.Status = code
	s.ResponseWriter.WriteHeader(code)
}

// Write implements io.Writer.
func (s *StatusRecorder) Write(p []byte) (int, error) {
	n, err := s.ResponseWriter.Write(p)
	s.Bytes += int64(n)
	return n, err
}

// CodeClass buckets an HTTP status code into "1xx".."5xx" for low-cardinality
// status labels.
func CodeClass(status int) string {
	switch {
	case status < 200:
		return "1xx"
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// Middleware instruments next with per-request metrics in reg
// (fta_http_requests_total by route and status class, the
// fta_http_request_seconds latency histogram by route, and the
// fta_http_in_flight gauge) and structured request logs to logger. A nil reg
// skips metrics, a nil logger skips logging; with both nil the handler is
// returned untouched. route maps a request to its low-cardinality route
// label; nil uses the raw URL path (only safe for fixed route sets).
func Middleware(reg *Registry, logger *slog.Logger, route func(*http.Request) string, next http.Handler) http.Handler {
	if reg == nil && logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt := r.URL.Path
		if route != nil {
			rt = route(r)
		}
		var inflight *Gauge
		if reg != nil {
			inflight = reg.Gauge("fta_http_in_flight", "HTTP requests currently being served.")
			inflight.Inc()
		}
		sw := NewStatusRecorder(w)
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		if reg != nil {
			inflight.Dec()
			reg.Counter("fta_http_requests_total", "HTTP requests served, by route and status class.",
				L("route", rt), L("code", CodeClass(sw.Status))).Inc()
			reg.Histogram("fta_http_request_seconds", "HTTP request latency in seconds, by route.",
				DefBuckets, L("route", rt)).Observe(elapsed.Seconds())
		}
		if logger != nil {
			level := slog.LevelInfo
			if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
				level = slog.LevelDebug // scrape and probe spam stays out of info logs
			}
			logger.LogAttrs(r.Context(), level, "http request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.Status),
				slog.Int64("bytes", sw.Bytes),
				slog.Duration("elapsed", elapsed),
				slog.String("remote", r.RemoteAddr))
		}
	})
}

// MetricsHandler serves reg in the Prometheus text exposition format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
}
