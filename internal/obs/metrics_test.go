package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(0)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1.5 {
		t.Fatalf("Value() = %v, want 1.5", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 10, 11, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("Count() = %d, want 6", got)
	}
	if got, want := h.Sum(), 125.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum() = %v, want %v", got, want)
	}
	// Per-bucket (non-cumulative) counts: le=1 gets {0.5, 1}; le=5 gets {3};
	// le=10 gets {10}; +Inf slot gets {11, 100}.
	want := []int64{2, 1, 1, 2}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestRegistryReusesSamples(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("k", "v"))
	b := r.Counter("x_total", "ignored on reuse", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) should return the same counter")
	}
	other := r.Counter("x_total", "", L("k", "w"))
	if a == other {
		t.Fatal("different label values should return distinct counters")
	}
	// Label order must not matter.
	h1 := r.Histogram("y_seconds", "", DefBuckets, L("a", "1"), L("b", "2"))
	h2 := r.Histogram("y_seconds", "", DefBuckets, L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order should not create a new histogram child")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name should panic")
		}
	}()
	r.Gauge("clash", "")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", `has "quotes" and \slashes`, L("route", "/solve")).Add(3)
	r.Gauge("a_gauge", "line one\nline two").Set(1.5)
	h := r.Histogram("c_seconds", "latency", []float64{0.5, 1})
	h.Observe(0.3)
	h.Observe(0.7)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP a_gauge line one\nline two
# TYPE a_gauge gauge
a_gauge 1.5
# HELP b_total has "quotes" and \\slashes
# TYPE b_total counter
b_total{route="/solve"} 3
# HELP c_seconds latency
# TYPE c_seconds histogram
c_seconds_bucket{le="0.5"} 1
c_seconds_bucket{le="1"} 2
c_seconds_bucket{le="+Inf"} 3
c_seconds_sum 3
c_seconds_count 3
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusSpecialFloats(t *testing.T) {
	r := NewRegistry()
	r.Gauge("inf_gauge", "").Set(math.Inf(1))
	r.Gauge("nan_gauge", "").Set(math.NaN())
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "inf_gauge +Inf\n") {
		t.Errorf("missing +Inf rendering in:\n%s", out)
	}
	if !strings.Contains(out, "nan_gauge NaN\n") {
		t.Errorf("missing NaN rendering in:\n%s", out)
	}
}

func TestEscapeValue(t *testing.T) {
	got := escapeValue("a\\b\"c\nd")
	if want := `a\\b\"c\nd`; got != want {
		t.Fatalf("escapeValue = %q, want %q", got, want)
	}
}

func TestCodeClass(t *testing.T) {
	cases := map[int]string{100: "1xx", 200: "2xx", 204: "2xx", 301: "3xx", 404: "4xx", 500: "5xx", 599: "5xx"}
	for code, want := range cases {
		if got := CodeClass(code); got != want {
			t.Errorf("CodeClass(%d) = %q, want %q", code, got, want)
		}
	}
}

// TestRegistryConcurrent exercises the registry under the race detector:
// concurrent first-registrations, increments and expositions.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("conc_total", "", L("worker", string(rune('a'+i%4)))).Inc()
				r.Gauge("conc_gauge", "").Set(float64(j))
				r.Histogram("conc_seconds", "", DefBuckets).Observe(float64(j) / 100)
				if j%50 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for _, v := range []string{"a", "b", "c", "d"} {
		total += r.Counter("conc_total", "", L("worker", v)).Value()
	}
	if total != 8*200 {
		t.Fatalf("concurrent increments lost: total = %d, want %d", total, 8*200)
	}
	if got := r.Histogram("conc_seconds", "", DefBuckets).Count(); got != 8*200 {
		t.Fatalf("histogram observations lost: %d, want %d", got, 8*200)
	}
}
