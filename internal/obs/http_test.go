package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareMetricsAndLogs(t *testing.T) {
	reg := NewRegistry()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("hello"))
	})
	h := Middleware(reg, logger, nil, inner)

	for _, path := range []string{"/ok", "/ok", "/missing"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
	}

	if got := reg.Counter("fta_http_requests_total", "", L("route", "/ok"), L("code", "2xx")).Value(); got != 2 {
		t.Errorf("requests{/ok,2xx} = %d, want 2", got)
	}
	if got := reg.Counter("fta_http_requests_total", "", L("route", "/missing"), L("code", "4xx")).Value(); got != 1 {
		t.Errorf("requests{/missing,4xx} = %d, want 1", got)
	}
	if got := reg.Histogram("fta_http_request_seconds", "", DefBuckets, L("route", "/ok")).Count(); got != 2 {
		t.Errorf("latency observations for /ok = %d, want 2", got)
	}
	if got := reg.Gauge("fta_http_in_flight", "").Value(); got != 0 {
		t.Errorf("in-flight after requests = %v, want 0", got)
	}

	var entry struct {
		Msg    string `json:"msg"`
		Method string `json:"method"`
		Path   string `json:"path"`
		Status int    `json:"status"`
	}
	if err := json.Unmarshal([]byte(strings.SplitN(logBuf.String(), "\n", 2)[0]), &entry); err != nil {
		t.Fatalf("first log line is not JSON: %v", err)
	}
	if entry.Msg != "http request" || entry.Method != "GET" || entry.Path != "/ok" || entry.Status != 200 {
		t.Errorf("unexpected log entry: %+v", entry)
	}
}

func TestMiddlewareRouteMapper(t *testing.T) {
	reg := NewRegistry()
	h := Middleware(reg, nil, func(*http.Request) string { return "fixed" },
		http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusAccepted) }))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/whatever/long/path", nil))
	if got := reg.Counter("fta_http_requests_total", "", L("route", "fixed"), L("code", "2xx")).Value(); got != 1 {
		t.Fatalf("requests{fixed,2xx} = %d, want 1", got)
	}
}

func TestMiddlewareNilPassthrough(t *testing.T) {
	inner := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {})
	if got := Middleware(nil, nil, nil, inner); got == nil {
		t.Fatal("nil reg and logger should still return a handler")
	}
	// With both nil the handler must be returned untouched (no wrapper
	// allocation per request).
	rr := httptest.NewRecorder()
	Middleware(nil, nil, nil, inner).ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("passthrough status = %d", rr.Code)
	}
}

func TestStatusRecorderDefaults(t *testing.T) {
	rr := httptest.NewRecorder()
	sw := NewStatusRecorder(rr)
	n, err := sw.Write([]byte("abc"))
	if err != nil || n != 3 {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	if sw.Status != http.StatusOK || sw.Bytes != 3 {
		t.Fatalf("StatusRecorder = status %d bytes %d, want 200/3", sw.Status, sw.Bytes)
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "a demo").Inc()
	rr := httptest.NewRecorder()
	MetricsHandler(reg).ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want exposition format 0.0.4", ct)
	}
	if body := rr.Body.String(); !strings.Contains(body, "demo_total 1\n") {
		t.Errorf("body missing sample:\n%s", body)
	}
}
