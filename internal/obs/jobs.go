package obs

// JobsMetrics bundles the instruments of the asynchronous solve-job
// subsystem (internal/jobs). All fixed-name instruments are registered at
// construction so the first /metrics scrape already lists every family with
// zero values; a nil *JobsMetrics disables job telemetry entirely.
type JobsMetrics struct {
	reg *Registry

	// QueueDepth is the number of jobs currently waiting in the queue.
	QueueDepth *Gauge
	// Running is the number of jobs currently executing on workers.
	Running *Gauge
	// WaitSeconds observes queue wait time (submit to run start) per job.
	WaitSeconds *Histogram
	// RunSeconds observes execution time (run start to finish) per job.
	RunSeconds *Histogram
	// Submitted counts accepted job submissions.
	Submitted *Counter
	// Done, Failed and Canceled count terminal job states.
	Done, Failed, Canceled *Counter
	// Rejected counts submissions refused by admission control (queue or
	// store full, or the manager draining).
	Rejected *Counter
	// Evicted counts terminal jobs dropped from the result store by TTL or
	// capacity eviction.
	Evicted *Counter
}

// NewJobsMetrics registers the fta_jobs_* families on the registry and
// returns the bundle. Safe to call more than once on the same registry: the
// instruments are shared via the registry's first-registration semantics.
func NewJobsMetrics(reg *Registry) *JobsMetrics {
	return &JobsMetrics{
		reg: reg,
		QueueDepth: reg.Gauge("fta_jobs_queue_depth",
			"Solve jobs currently waiting in the bounded queue."),
		Running: reg.Gauge("fta_jobs_running",
			"Solve jobs currently executing on the worker pool."),
		WaitSeconds: reg.Histogram("fta_jobs_wait_seconds",
			"Queue wait time per job, from submission to run start.", DefBuckets),
		RunSeconds: reg.Histogram("fta_jobs_run_seconds",
			"Execution time per job, from run start to completion.", DefBuckets),
		Submitted: reg.Counter("fta_jobs_submitted_total",
			"Solve jobs accepted into the queue."),
		Done: reg.Counter("fta_jobs_total",
			"Solve jobs by terminal state.", L("state", "done")),
		Failed: reg.Counter("fta_jobs_total",
			"Solve jobs by terminal state.", L("state", "failed")),
		Canceled: reg.Counter("fta_jobs_total",
			"Solve jobs by terminal state.", L("state", "canceled")),
		Rejected: reg.Counter("fta_jobs_rejected_total",
			"Job submissions refused by admission control."),
		Evicted: reg.Counter("fta_jobs_evicted_total",
			"Terminal jobs dropped from the result store by TTL or capacity."),
	}
}

// Registry returns the registry the metrics write into.
func (j *JobsMetrics) Registry() *Registry { return j.reg }
