package obs

// FaultMetrics bundles the instruments of the resilience layer
// (internal/fault): retry and degradation counters. A nil *FaultMetrics
// disables the telemetry entirely. See docs/RESILIENCE.md.
type FaultMetrics struct {
	reg *Registry

	// RetrySolve counts backoff retries of per-center solve attempts.
	RetrySolve *Counter
	// RetryJobs counts backoff retries of asynchronous job executions.
	RetryJobs *Counter
	// ExhaustedSolve and ExhaustedJobs count retry loops that ran out of
	// attempts without success, per scope.
	ExhaustedSolve, ExhaustedJobs *Counter
	// DegradeSampled and DegradeGreedy count solves served by a
	// degradation-ladder rung below exact.
	DegradeSampled, DegradeGreedy *Counter
}

// NewFaultMetrics registers the fta_retry_* and fta_degrade_* families on
// the registry and returns the bundle. Safe to call more than once on the
// same registry via its first-registration semantics.
func NewFaultMetrics(reg *Registry) *FaultMetrics {
	return &FaultMetrics{
		reg: reg,
		RetrySolve: reg.Counter("fta_retry_total",
			"Backoff retries by scope.", L("scope", "solve")),
		RetryJobs: reg.Counter("fta_retry_total",
			"Backoff retries by scope.", L("scope", "jobs")),
		ExhaustedSolve: reg.Counter("fta_retry_exhausted_total",
			"Retry loops that ran out of attempts, by scope.", L("scope", "solve")),
		ExhaustedJobs: reg.Counter("fta_retry_exhausted_total",
			"Retry loops that ran out of attempts, by scope.", L("scope", "jobs")),
		DegradeSampled: reg.Counter("fta_degrade_total",
			"Solves served by a degradation-ladder rung.", L("rung", "sampled")),
		DegradeGreedy: reg.Counter("fta_degrade_total",
			"Solves served by a degradation-ladder rung.", L("rung", "greedy")),
	}
}

// Registry returns the registry the metrics write into.
func (f *FaultMetrics) Registry() *Registry { return f.reg }
