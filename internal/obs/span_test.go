package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeCollect(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("assign")
	root.SetAttrInt("centers", 2)
	c1 := root.Child("center.solve")
	c1.SetAttr("center", "w1")
	r1 := c1.Child("round")
	r1.End()
	c1.End()
	root.End()

	got := tr.Collect("test")
	if got.Name != "test" {
		t.Fatalf("trace name = %q, want test", got.Name)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("collected %d spans, want 3", len(got.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range got.Spans {
		byName[s.Name] = s
	}
	rootRec, ok := byName["assign"]
	if !ok || rootRec.Parent != 0 {
		t.Fatalf("root span missing or has parent: %+v", rootRec)
	}
	if rootRec.Attr("centers") != "2" {
		t.Errorf("root attr centers = %q, want 2", rootRec.Attr("centers"))
	}
	solve := byName["center.solve"]
	if solve.Parent != rootRec.ID {
		t.Errorf("center.solve parent = %d, want %d", solve.Parent, rootRec.ID)
	}
	if solve.Attr("center") != "w1" {
		t.Errorf("center attr = %q, want w1", solve.Attr("center"))
	}
	round := byName["round"]
	if round.Parent != solve.ID {
		t.Errorf("round parent = %d, want %d", round.Parent, solve.ID)
	}
	for _, s := range got.Spans {
		if s.Duration < 0 {
			t.Errorf("span %s has negative duration %v", s.Name, s.Duration)
		}
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *Span
	child := s.Child("x")
	if child != nil {
		t.Fatal("nil span Child must return nil")
	}
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 3)
	s.End() // must not panic
}

func TestStartSpanWithoutTracer(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "phase")
	if sp != nil {
		t.Fatal("StartSpan on bare context must return nil span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan on bare context must return the context unchanged")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("SpanFromContext on bare context must be nil")
	}
}

func TestStartSpanPropagation(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("root")
	ctx := ContextWithSpan(context.Background(), root)
	ctx, sp := StartSpan(ctx, "inner")
	if sp == nil {
		t.Fatal("StartSpan with active span must return a child")
	}
	if got := SpanFromContext(ctx); got != sp {
		t.Fatalf("returned context must carry the child span")
	}
	sp.End()
	root.End()
	trace := tr.Collect("t")
	if len(trace.Spans) != 2 {
		t.Fatalf("collected %d spans, want 2", len(trace.Spans))
	}
}

func TestContextWithSpanNil(t *testing.T) {
	ctx := context.Background()
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Fatal("ContextWithSpan(nil) must return ctx unchanged")
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("root")
	const workers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sp := root.Child("work")
				sp.SetAttrInt("w", w)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	trace := tr.Collect("t")
	if want := workers*each + 1; len(trace.Spans) != want {
		t.Fatalf("collected %d spans, want %d", len(trace.Spans), want)
	}
	seen := map[uint64]bool{}
	for _, s := range trace.Spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
	// Collect drained everything; a second collect is empty.
	if again := tr.Collect("t"); len(again.Spans) != 0 {
		t.Fatalf("second Collect returned %d spans, want 0", len(again.Spans))
	}
}

func TestCollectSortedByStart(t *testing.T) {
	tr := NewTracer()
	root := tr.Root("root")
	for i := 0; i < 50; i++ {
		sp := root.Child(fmt.Sprintf("s%d", i))
		sp.End()
	}
	root.End()
	trace := tr.Collect("t")
	for i := 1; i < len(trace.Spans); i++ {
		a, b := trace.Spans[i-1], trace.Spans[i]
		if a.Start > b.Start || (a.Start == b.Start && a.ID > b.ID) {
			t.Fatalf("spans not sorted at %d: %+v before %+v", i, a, b)
		}
	}
}

func TestRecordRange(t *testing.T) {
	base := time.Now()
	tr := NewTracerAt(base)
	root := tr.Root("job")
	tr.RecordRange(root, "job.queued", base.Add(-time.Second), base.Add(10*time.Millisecond))
	tr.RecordRange(nil, "orphan", base.Add(time.Millisecond), base.Add(2*time.Millisecond))
	root.End()
	trace := tr.Collect("t")
	var queued, orphan *SpanRecord
	for i := range trace.Spans {
		switch trace.Spans[i].Name {
		case "job.queued":
			queued = &trace.Spans[i]
		case "orphan":
			orphan = &trace.Spans[i]
		}
	}
	if queued == nil || orphan == nil {
		t.Fatalf("missing recorded ranges in %+v", trace.Spans)
	}
	if queued.Start != 0 {
		t.Errorf("pre-tracer start must clamp to 0, got %v", queued.Start)
	}
	if queued.Duration <= 0 {
		t.Errorf("queued duration = %v, want > 0", queued.Duration)
	}
	if orphan.Parent != 0 {
		t.Errorf("nil-parent range must be a root, got parent %d", orphan.Parent)
	}
	if orphan.Start != time.Millisecond || orphan.Duration != time.Millisecond {
		t.Errorf("orphan range = start %v dur %v, want 1ms/1ms", orphan.Start, orphan.Duration)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Add(Trace{Name: fmt.Sprintf("t%d", i)})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(snap))
	}
	want := []string{"t4", "t3", "t2"}
	for i, tr := range snap {
		if tr.Name != want[i] {
			t.Errorf("snapshot[%d] = %q, want %q", i, tr.Name, want[i])
		}
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
}

func TestTraceRingDefaultCapacity(t *testing.T) {
	r := NewTraceRing(0)
	for i := 0; i < 40; i++ {
		r.Add(Trace{Name: fmt.Sprintf("t%d", i)})
	}
	if got := len(r.Snapshot()); got != 32 {
		t.Fatalf("default ring holds %d, want 32", got)
	}
}

func TestTraceDuration(t *testing.T) {
	tr := Trace{Spans: []SpanRecord{
		{Start: 0, Duration: 5 * time.Millisecond},
		{Start: 2 * time.Millisecond, Duration: 10 * time.Millisecond},
	}}
	if got := tr.Duration(); got != 12*time.Millisecond {
		t.Fatalf("Duration = %v, want 12ms", got)
	}
	if (Trace{}).Duration() != 0 {
		t.Fatal("empty trace duration must be 0")
	}
}
