// Package obs is the zero-dependency telemetry layer of the fairtask
// engine: a concurrency-safe metrics registry with Prometheus text-format
// exposition, a Recorder hook interface the solve path emits into, and
// net/http instrumentation for the assignment service.
//
// The package is deliberately stdlib-only (the module has no external
// dependencies) and imports nothing else from this repository, so every
// internal package — vdps, game, evo, platform, server — can depend on it
// without import cycles. All instruments are safe for concurrent use; the
// hot paths (Counter.Inc, Gauge.Set, Histogram.Observe) are lock-free
// atomics. A nil Recorder disables telemetry with no measurable overhead:
// emitting packages guard every event behind a nil check.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric sample.
type Label struct {
	// Name is the label key, e.g. "route".
	Name string
	// Value is the label value, e.g. "/solve".
	Value string
}

// L is shorthand for Label{Name: name, Value: value}.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter; non-positive deltas are ignored, keeping the
// counter monotonic.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add applies a (possibly negative) delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric. Buckets are cumulative
// upper bounds in the Prometheus style; observations above the last bound
// land in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last entry is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// newHistogram builds a histogram over ascending bucket bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, or the +Inf slot
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets are default latency buckets in seconds, from 1ms to 10s.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CountBuckets are coarse buckets for iteration- and size-style histograms.
var CountBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500}

// PayoffBuckets cover payoff-scale quantities (P_dif, average payoff, the
// fairness potential Phi): log-spaced from small fractional differences up
// to large aggregate potentials.
var PayoffBuckets = []float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000,
}

// metricKind distinguishes the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// sample is one labeled child of a metric family; exactly one of c, g, h is
// non-nil, matching the family kind. For gauges, fn (when non-nil) is
// evaluated at exposition time instead of reading g.
type sample struct {
	labels []Label // sorted by name
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups all samples sharing a metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	bounds  []float64 // histogram families only
	samples map[string]*sample
}

// Registry is a concurrency-safe collection of metric families. Instrument
// lookups take a read lock; only the first registration of a (name, labels)
// pair takes the write lock. The zero value is not usable — call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

// Counter returns the counter registered under name with the given labels,
// creating it on first use. help is recorded on first registration of the
// family. It panics if name is already registered as a different kind.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.sample(name, help, kindCounter, nil, labels).c
}

// Gauge returns the gauge registered under name with the given labels,
// creating it on first use. It panics if name is already registered as a
// different kind.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.sample(name, help, kindGauge, nil, labels).g
}

// Histogram returns the histogram registered under name with the given
// labels, creating it on first use with the given bucket upper bounds (the
// family's first registration wins; later bounds are ignored). It panics if
// name is already registered as a different kind.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return r.sample(name, help, kindHistogram, bounds, labels).h
}

// GaugeFunc registers a gauge whose value is computed by fn at every
// exposition — for quantities that live outside the registry (uptime,
// goroutine count, heap size). fn must be safe for concurrent use. On an
// already-registered (name, labels) pair the function replaces the previous
// sampler; it panics if name is registered as a different kind.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.sample(name, help, kindGauge, nil, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// sample finds or creates the (family, labels) child.
func (r *Registry) sample(name, help string, kind metricKind, bounds []float64, labels []Label) *sample {
	sorted := sortLabels(labels)
	key := labelKey(sorted)

	r.mu.RLock()
	if f := r.families[name]; f != nil && f.kind == kind {
		if s := f.samples[key]; s != nil {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, samples: map[string]*sample{}}
		if kind == kindHistogram {
			b := append([]float64(nil), bounds...)
			sort.Float64s(b)
			f.bounds = b
		}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	s := f.samples[key]
	if s == nil {
		s = &sample{labels: sorted}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = newHistogram(f.bounds)
		}
		f.samples[key] = s
	}
	return s
}

// sortLabels returns a copy of labels sorted by name.
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// labelKey builds the canonical child key from sorted labels.
func labelKey(sorted []Label) string {
	if len(sorted) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Name)
		b.WriteByte(0)
		b.WriteString(l.Value)
		b.WriteByte(0)
	}
	return b.String()
}

// WritePrometheus writes every family in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with # HELP and
// # TYPE header lines, samples sorted by label signature, histograms with
// cumulative _bucket series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()

	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.samples))
		for k := range f.samples {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := writeSample(w, f, f.samples[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample writes the exposition lines of one labeled child.
func writeSample(w io.Writer, f *family, s *sample) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(s.labels), s.c.Value())
		return err
	case kindGauge:
		v := s.g.Value()
		if s.fn != nil {
			v = s.fn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(s.labels), formatFloat(v))
		return err
	default:
		var cum int64
		for i := range s.h.bounds {
			cum += s.h.counts[i].Load()
			le := append(append([]Label(nil), s.labels...), L("le", formatFloat(s.h.bounds[i])))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(le), cum); err != nil {
				return err
			}
		}
		cum += s.h.counts[len(s.h.bounds)].Load()
		inf := append(append([]Label(nil), s.labels...), L("le", "+Inf"))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(inf), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(s.labels), formatFloat(s.h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(s.labels), s.h.Count())
		return err
	}
}

// labelString renders {a="x",b="y"}, or "" for no labels.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeValue escapes a label value per the exposition format.
func escapeValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes HELP text per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation; +Inf/-Inf/NaN spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
