package obs

import (
	"context"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the span-tracing layer: hierarchical timed spans
// carried through context.Context, recorded into sharded lock-free buffers
// with monotonic timestamps and parent/child IDs. One Tracer covers one
// traced operation (an assignment, an HTTP request, an async job); its
// finished spans are collected into a Trace and exported as Chrome
// trace_event JSON (chrometrace.go), analyzed into per-phase breakdowns
// (breakdown.go), or kept in a bounded TraceRing for GET /debug/traces.
//
// Disabled tracing is free by construction: every Span method is nil-safe,
// so an instrumentation site on a path without a tracer costs exactly one
// nil check (StartSpan additionally costs one context.Value lookup, which
// is why hot loops hold the parent *Span and call Child directly). The
// enabled path allocates one node per span and publishes it with a single
// compare-and-swap onto a shard-local Treiber stack — no locks, no
// contention between goroutines on different shards.

// Attr is one string key/value annotation on a span (a center ID, an
// attempt number, a degradation rung).
type Attr struct {
	// Key is the annotation name.
	Key string `json:"key"`
	// Value is the annotation value, always rendered as a string.
	Value string `json:"value"`
}

// SpanRecord is one finished span: a named time range with its position in
// the span tree. Start and Duration are offsets on the tracer's monotonic
// clock, so arithmetic between records of one trace is exact regardless of
// wall-clock steps.
type SpanRecord struct {
	// ID is the span's identifier, unique within its trace and never zero.
	ID uint64 `json:"id"`
	// Parent is the parent span's ID, or zero for a root span.
	Parent uint64 `json:"parent,omitempty"`
	// Name is the phase name ("vdps.generate", "round", "center.solve", ...).
	// Aggregation in Breakdown groups by this name.
	Name string `json:"name"`
	// Start is the span's start as a monotonic offset from the trace start.
	Start time.Duration `json:"start_ns"`
	// Duration is the span's length.
	Duration time.Duration `json:"duration_ns"`
	// Attrs holds the span's annotations, in the order they were set.
	Attrs []Attr `json:"attrs,omitempty"`
}

// End returns the span's end offset.
func (r SpanRecord) End() time.Duration { return r.Start + r.Duration }

// Attr returns the value of the named annotation, or "" when absent.
func (r SpanRecord) Attr(key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Trace is one collected span tree: every finished span of one traced
// operation, sorted by start offset.
type Trace struct {
	// Name labels the trace ("fta assign", "POST /solve", "job 01HX...").
	Name string `json:"name"`
	// Start is the wall-clock time offsets are relative to.
	Start time.Time `json:"start"`
	// Spans holds the finished spans, sorted by Start then ID.
	Spans []SpanRecord `json:"spans"`
}

// Duration returns the end offset of the last-ending span, i.e. the traced
// operation's total span coverage.
func (t Trace) Duration() time.Duration {
	var max time.Duration
	for _, s := range t.Spans {
		if e := s.End(); e > max {
			max = e
		}
	}
	return max
}

// spanNode is one entry of a shard's Treiber stack.
type spanNode struct {
	rec  SpanRecord
	next *spanNode
}

// spanShard is one lock-free finished-span buffer. The trailing padding
// keeps concurrently written shard heads on separate cache lines.
type spanShard struct {
	head atomic.Pointer[spanNode]
	_    [56]byte
}

// Tracer collects the spans of one traced operation. Span creation and End
// are safe for concurrent use from any number of goroutines: finished spans
// are pushed onto one of GOMAXPROCS-aligned shard stacks with a single CAS,
// so goroutines ending spans concurrently almost never touch the same
// cache line. A Tracer is cheap (one small allocation per span) but not
// free — create one only when the caller asked for a trace.
type Tracer struct {
	start  time.Time
	ids    atomic.Uint64
	shards []spanShard
	mask   uint64
}

// NewTracer returns a tracer whose span offsets are measured from now.
func NewTracer() *Tracer { return NewTracerAt(time.Now()) }

// NewTracerAt returns a tracer whose span offsets are measured from start —
// used to anchor a trace at an event that predates tracer construction
// (e.g. a job's submit time, so the queued phase is on the timeline).
func NewTracerAt(start time.Time) *Tracer {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return &Tracer{start: start, shards: make([]spanShard, n), mask: uint64(n - 1)}
}

// since returns the current monotonic offset from the trace start.
func (t *Tracer) since() time.Duration { return time.Since(t.start) }

// Root starts a new root span (no parent). The returned span must be ended
// with End to appear in the collected trace.
func (t *Tracer) Root(name string) *Span {
	return &Span{t: t, id: t.ids.Add(1), name: name, start: t.since()}
}

// RecordRange emits an already-finished span covering [start, end] in wall
// time, parented under parent (nil for a root). It records phases whose
// boundaries were observed before a span could be opened — e.g. the queued
// phase of a job, measured between its submit and run-start timestamps.
func (t *Tracer) RecordRange(parent *Span, name string, start, end time.Time) {
	var pid uint64
	if parent != nil {
		pid = parent.id
	}
	s := start.Sub(t.start)
	if s < 0 {
		s = 0
	}
	d := end.Sub(start)
	if d < 0 {
		d = 0
	}
	t.push(SpanRecord{ID: t.ids.Add(1), Parent: pid, Name: name, Start: s, Duration: d})
}

// push publishes one finished span onto the shard selected by its ID.
func (t *Tracer) push(rec SpanRecord) {
	sh := &t.shards[rec.ID&t.mask]
	n := &spanNode{rec: rec}
	for {
		old := sh.head.Load()
		n.next = old
		if sh.head.CompareAndSwap(old, n) {
			return
		}
	}
}

// Collect drains every finished span recorded so far and returns them as a
// Trace sorted by start offset. Spans still open (not yet ended) are not
// included; call Collect after the operation's root span has ended.
func (t *Tracer) Collect(name string) Trace {
	var spans []SpanRecord
	for i := range t.shards {
		for n := t.shards[i].head.Swap(nil); n != nil; n = n.next {
			spans = append(spans, n.rec)
		}
	}
	sortSpans(spans)
	return Trace{Name: name, Start: t.start, Spans: spans}
}

// sortSpans orders spans by start offset, breaking ties by ID so the order
// is deterministic.
func sortSpans(spans []SpanRecord) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
}

// Span is one open (not yet ended) phase of a traced operation. All methods
// are nil-safe: a nil *Span is the disabled-tracing form and every call on
// it is a single pointer comparison, so instrumentation sites need no
// enabled/disabled branching of their own. A Span is used by one goroutine
// at a time (hand a Child to each concurrent branch instead of sharing).
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Duration
	attrs  []Attr
}

// Child starts a sub-span under s. On a nil span it returns nil, making the
// disabled path one nil check.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, id: s.t.ids.Add(1), parent: s.id, name: name, start: s.t.since()}
}

// SetAttr annotates the span; no-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates the span with an integer value; no-op on nil.
func (s *Span) SetAttrInt(key string, v int) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.Itoa(v)})
}

// End finishes the span and publishes its record to the tracer. No-op on
// nil. End must be called at most once per span.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.t.since()
	s.t.push(SpanRecord{
		ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, Duration: end - s.start, Attrs: s.attrs,
	})
}

// spanKey is the context key carrying the active span.
type spanKey struct{}

// ContextWithSpan returns a context carrying s as the active span. A nil
// span returns ctx unchanged, so disabled callers pay nothing downstream.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the active span, or nil when the context carries
// none (tracing disabled). Functions with hot inner loops should call this
// once and use Span.Child per site.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's active span and returns a
// context carrying the child. When the context has no active span (tracing
// disabled) it returns ctx and nil unchanged — the cost is one
// context.Value lookup, and all uses of the returned nil span are nil
// checks.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.Child(name)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// TraceRing is a bounded, concurrency-safe ring of recent traces, served by
// the HTTP service at GET /debug/traces. When full, adding evicts the
// oldest trace.
type TraceRing struct {
	mu    sync.Mutex
	buf   []Trace
	next  int
	count uint64
}

// NewTraceRing returns a ring holding up to capacity traces; capacity <= 0
// selects the default of 32.
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = 32
	}
	return &TraceRing{buf: make([]Trace, 0, capacity)}
}

// Add appends a trace, evicting the oldest when the ring is full.
func (r *TraceRing) Add(t Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
		return
	}
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
}

// Snapshot returns the retained traces, newest first.
func (r *TraceRing) Snapshot() []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		// Walk backwards from the most recently written slot.
		idx := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// Total returns how many traces have ever been added, including evicted
// ones.
func (r *TraceRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}
