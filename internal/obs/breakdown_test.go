package obs

import (
	"testing"
	"time"
)

func TestBreakdownSelfAndTotal(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	tr := Trace{Spans: []SpanRecord{
		{ID: 1, Name: "assign", Start: 0, Duration: ms(100)},
		{ID: 2, Parent: 1, Name: "center.solve", Start: ms(10), Duration: ms(50)},
		{ID: 3, Parent: 2, Name: "round", Start: ms(15), Duration: ms(10)},
		{ID: 4, Parent: 2, Name: "round", Start: ms(30), Duration: ms(20)},
	}}
	stats := Breakdown(tr)
	byName := map[string]PhaseStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	assign := byName["assign"]
	if assign.Count != 1 || assign.Total != ms(100) {
		t.Fatalf("assign = %+v", assign)
	}
	// assign's only child covers [10,60) → self = 100 - 50 = 50ms.
	if assign.Self != ms(50) {
		t.Errorf("assign self = %v, want 50ms", assign.Self)
	}
	solve := byName["center.solve"]
	// children cover [15,25) and [30,50) → 30ms covered, self = 20ms.
	if solve.Self != ms(20) {
		t.Errorf("center.solve self = %v, want 20ms", solve.Self)
	}
	round := byName["round"]
	if round.Count != 2 || round.Total != ms(30) || round.Self != ms(30) {
		t.Errorf("round = %+v", round)
	}
	if round.Max != ms(20) {
		t.Errorf("round max = %v, want 20ms", round.Max)
	}
	if round.P50 != ms(10) {
		t.Errorf("round p50 = %v, want 10ms", round.P50)
	}
	// Ordered by descending self time: assign(50) > round(30) > solve(20).
	if stats[0].Name != "assign" || stats[1].Name != "round" || stats[2].Name != "center.solve" {
		t.Errorf("order = %s, %s, %s", stats[0].Name, stats[1].Name, stats[2].Name)
	}
}

func TestBreakdownOverlappingChildrenNotDoubleCounted(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	// Two concurrent children covering [10,40) and [20,50): union is 40ms,
	// not 60ms, so parent self must be 100-40=60ms.
	tr := Trace{Spans: []SpanRecord{
		{ID: 1, Name: "parent", Start: 0, Duration: ms(100)},
		{ID: 2, Parent: 1, Name: "child", Start: ms(10), Duration: ms(30)},
		{ID: 3, Parent: 1, Name: "child", Start: ms(20), Duration: ms(30)},
	}}
	stats := Breakdown(tr)
	for _, s := range stats {
		if s.Name == "parent" && s.Self != ms(60) {
			t.Fatalf("parent self = %v, want 60ms (overlap double-counted?)", s.Self)
		}
	}
}

func TestBreakdownChildExceedingParentClamped(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	// Child extends past the parent's end (e.g. clock skew); coverage is
	// clamped to the parent's interval so self never goes negative.
	tr := Trace{Spans: []SpanRecord{
		{ID: 1, Name: "parent", Start: 0, Duration: ms(10)},
		{ID: 2, Parent: 1, Name: "child", Start: ms(5), Duration: ms(50)},
	}}
	stats := Breakdown(tr)
	for _, s := range stats {
		if s.Name == "parent" {
			if s.Self != ms(5) {
				t.Fatalf("parent self = %v, want 5ms", s.Self)
			}
			if s.Self < 0 {
				t.Fatal("self time must never be negative")
			}
		}
	}
}

func TestTopSpans(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	tr := Trace{Spans: []SpanRecord{
		{ID: 1, Name: "center.solve", Duration: ms(10), Attrs: []Attr{{Key: "center", Value: "a"}}},
		{ID: 2, Name: "center.solve", Duration: ms(30), Attrs: []Attr{{Key: "center", Value: "b"}}},
		{ID: 3, Name: "round", Duration: ms(99)},
		{ID: 4, Name: "center.solve", Duration: ms(20), Attrs: []Attr{{Key: "center", Value: "c"}}},
	}}
	top := TopSpans(tr, "center.solve", 2)
	if len(top) != 2 {
		t.Fatalf("got %d spans, want 2", len(top))
	}
	if top[0].Attr("center") != "b" || top[1].Attr("center") != "c" {
		t.Errorf("top centers = %q, %q; want b, c", top[0].Attr("center"), top[1].Attr("center"))
	}
	all := TopSpans(tr, "", 0)
	if len(all) != 4 || all[0].Name != "round" {
		t.Errorf("TopSpans all = %d spans, first %q", len(all), all[0].Name)
	}
}

func TestBreakdownEmpty(t *testing.T) {
	if got := Breakdown(Trace{}); len(got) != 0 {
		t.Fatalf("breakdown of empty trace = %d phases, want 0", len(got))
	}
}
