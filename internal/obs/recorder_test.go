package obs

import (
	"strings"
	"testing"
	"time"
)

func TestMetricsRecorderVDPS(t *testing.T) {
	reg := NewRegistry()
	rec := NewMetricsRecorder(reg)
	rec.RecordVDPS(VDPSEvent{Points: 6, Workers: 3, Subsets: 40, Pruned: 12, Candidates: 25, Elapsed: 3 * time.Millisecond})
	rec.RecordVDPS(VDPSEvent{Subsets: 10, Pruned: 2, Candidates: 5, Sampled: true, Elapsed: time.Millisecond})

	if got := reg.Counter("fta_vdps_subsets_total", "").Value(); got != 50 {
		t.Errorf("subsets = %d, want 50", got)
	}
	if got := reg.Counter("fta_vdps_pruned_total", "").Value(); got != 14 {
		t.Errorf("pruned = %d, want 14", got)
	}
	if got := reg.Counter("fta_vdps_candidates_total", "").Value(); got != 30 {
		t.Errorf("candidates = %d, want 30", got)
	}
	if got := reg.Histogram("fta_vdps_generation_seconds", "", DefBuckets).Count(); got != 2 {
		t.Errorf("generation observations = %d, want 2", got)
	}
}

func TestMetricsRecorderIteration(t *testing.T) {
	reg := NewRegistry()
	rec := NewMetricsRecorder(reg)
	rec.RecordIteration("FGT", IterationStat{Iteration: 1, Changes: 4, Potential: 9, PayoffDiff: 2.5, AvgPayoff: 7})
	rec.RecordIteration("FGT", IterationStat{Iteration: 2, Changes: 1, Potential: 11, PayoffDiff: 1.25, AvgPayoff: 7.5})

	alg := L("algorithm", "FGT")
	if got := reg.Counter("fta_solve_strategy_changes_total", "", alg).Value(); got != 5 {
		t.Errorf("strategy changes = %d, want 5", got)
	}
}

// TestMetricsRecorderSolvePayoffHistograms covers the per-solve payoff
// distributions that replaced the old last-write-wins gauges: concurrent
// per-center solves each contribute one observation instead of clobbering a
// single value.
func TestMetricsRecorderSolvePayoffHistograms(t *testing.T) {
	reg := NewRegistry()
	rec := NewMetricsRecorder(reg)
	rec.RecordSolve(SolveEvent{Algorithm: "FGT", Iterations: 5, Difference: 1.25, Average: 7.5, Potential: 11})
	rec.RecordSolve(SolveEvent{Algorithm: "FGT", Iterations: 3, Difference: 2.5, Average: 7, Potential: 9})
	rec.RecordSolve(SolveEvent{Algorithm: "GTA", Iterations: 0, Difference: 4, Average: 6})

	alg := L("algorithm", "FGT")
	diff := reg.Histogram("fta_solve_payoff_difference", "", PayoffBuckets, alg)
	if diff.Count() != 2 || diff.Sum() != 3.75 {
		t.Errorf("payoff difference: count %d sum %v, want 2/3.75", diff.Count(), diff.Sum())
	}
	avg := reg.Histogram("fta_solve_average_payoff", "", PayoffBuckets, alg)
	if avg.Count() != 2 || avg.Sum() != 14.5 {
		t.Errorf("average payoff: count %d sum %v, want 2/14.5", avg.Count(), avg.Sum())
	}
	pot := reg.Histogram("fta_solve_potential", "", PayoffBuckets, alg)
	if pot.Count() != 2 || pot.Sum() != 20 {
		t.Errorf("potential: count %d sum %v, want 2/20", pot.Count(), pot.Sum())
	}
	// Non-iterative baselines have no potential; their zero must not be
	// observed.
	gta := reg.Histogram("fta_solve_potential", "", PayoffBuckets, L("algorithm", "GTA"))
	if gta.Count() != 0 {
		t.Errorf("GTA potential observations = %d, want 0", gta.Count())
	}
}

// TestSeedAlgorithms verifies that seeding makes algorithm-labeled families
// visible on the first exposition, before any solve ran.
func TestSeedAlgorithms(t *testing.T) {
	reg := NewRegistry()
	rec := NewMetricsRecorder(reg)
	rec.SeedAlgorithms("FGT", "IEGT")
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`fta_solve_payoff_difference_count{algorithm="FGT"} 0`,
		`fta_solve_average_payoff_count{algorithm="IEGT"} 0`,
		`fta_solve_potential_count{algorithm="FGT"} 0`,
		`fta_solve_strategy_changes_total{algorithm="IEGT"} 0`,
		`fta_solve_total{algorithm="FGT",converged="true"} 0`,
		`fta_solve_total{algorithm="FGT",converged="false"} 0`,
		`fta_assign_total{algorithm="IEGT"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("seeded exposition missing %q", want)
		}
	}
}

func TestMetricsRecorderSolveAndAssign(t *testing.T) {
	reg := NewRegistry()
	rec := NewMetricsRecorder(reg)
	if rec.Registry() != reg {
		t.Fatal("Registry() should return the construction registry")
	}
	rec.RecordSolve(SolveEvent{Algorithm: "FGT", Workers: 3, Points: 6, Iterations: 7, Converged: true, Elapsed: time.Millisecond})
	rec.RecordSolve(SolveEvent{Algorithm: "IEGT", Iterations: 120, Converged: false, Elapsed: time.Millisecond})
	rec.RecordAssign(AssignEvent{Algorithm: "FGT", Centers: 4, Workers: 12, Points: 24, Parallelism: 2, Elapsed: 5 * time.Millisecond})

	if got := reg.Histogram("fta_solve_iterations", "", CountBuckets).Count(); got != 2 {
		t.Errorf("iteration observations = %d, want 2", got)
	}
	if got := reg.Counter("fta_solve_total", "", L("algorithm", "FGT"), L("converged", "true")).Value(); got != 1 {
		t.Errorf("fta_solve_total{FGT,true} = %d, want 1", got)
	}
	if got := reg.Counter("fta_assign_centers_total", "").Value(); got != 4 {
		t.Errorf("assign centers = %d, want 4", got)
	}
	if got := reg.Gauge("fta_assign_parallelism", "").Value(); got != 2 {
		t.Errorf("parallelism = %v, want 2", got)
	}
	if got := reg.Counter("fta_assign_workers_total", "").Value(); got != 12 {
		t.Errorf("assign workers = %d, want 12", got)
	}
}

// TestMetricsRecorderExposesRequiredFamilies guards the metric names promised
// in the docs: a fresh recorder's first exposition must already list them.
func TestMetricsRecorderExposesRequiredFamilies(t *testing.T) {
	reg := NewRegistry()
	NewMetricsRecorder(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"fta_vdps_subsets_total",
		"fta_vdps_pruned_total",
		"fta_vdps_candidates_total",
		"fta_vdps_generation_seconds",
		"fta_solve_iterations",
		"fta_solve_seconds",
		"fta_assign_seconds",
		"fta_assign_centers_total",
		"fta_assign_parallelism",
	} {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("fresh exposition missing family %s", name)
		}
	}
}
