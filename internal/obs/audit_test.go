package obs

import (
	"strings"
	"testing"
)

func TestAuditMetrics(t *testing.T) {
	reg := NewRegistry()
	am := NewAuditMetrics(reg)
	if am.Registry() != reg {
		t.Error("Registry() does not return the construction registry")
	}
	am.Runs.Inc()
	am.Runs.Inc()
	am.Failures.Inc()

	// Re-constructing on the same registry must share instruments, not reset
	// or duplicate them.
	again := NewAuditMetrics(reg)
	again.Runs.Inc()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "fta_audit_runs_total 3") {
		t.Errorf("exposition missing runs counter:\n%s", out)
	}
	if !strings.Contains(out, "fta_audit_failures_total 1") {
		t.Errorf("exposition missing failures counter:\n%s", out)
	}
}
