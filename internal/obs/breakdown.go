package obs

import (
	"sort"
	"time"
)

// This file aggregates a collected trace into a per-phase breakdown: for
// every span name, how often it ran, its total and self time (total minus
// time covered by child spans), and its duration quantiles. It powers the
// `fta trace` subcommand and the /debug/traces summary view.

// PhaseStat is the aggregate of all spans sharing one name within a trace.
type PhaseStat struct {
	// Name is the phase (span) name.
	Name string `json:"name"`
	// Count is how many spans had this name.
	Count int `json:"count"`
	// Total is the summed duration of those spans.
	Total time.Duration `json:"total_ns"`
	// Self is Total minus the time covered by each span's children; it is
	// the time actually attributable to this phase's own work.
	Self time.Duration `json:"self_ns"`
	// P50 and P99 are duration quantiles over the spans of this phase.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// Max is the longest single span of this phase.
	Max time.Duration `json:"max_ns"`
}

// Breakdown aggregates the trace's spans by name, ordered by descending
// self time. Self time subtracts only direct children (union of their
// intervals), so concurrent children overlapping each other are not double
// subtracted.
func Breakdown(t Trace) []PhaseStat {
	children := make(map[uint64][][2]int64) // parent ID -> child [start,end) intervals
	for _, s := range t.Spans {
		if s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent],
				[2]int64{s.Start.Nanoseconds(), s.End().Nanoseconds()})
		}
	}
	byName := make(map[string]*PhaseStat)
	durs := make(map[string][]time.Duration)
	var order []string
	for _, s := range t.Spans {
		st := byName[s.Name]
		if st == nil {
			st = &PhaseStat{Name: s.Name}
			byName[s.Name] = st
			order = append(order, s.Name)
		}
		st.Count++
		st.Total += s.Duration
		st.Self += s.Duration - coveredWithin(children[s.ID], s.Start.Nanoseconds(), s.End().Nanoseconds())
		if s.Duration > st.Max {
			st.Max = s.Duration
		}
		durs[s.Name] = append(durs[s.Name], s.Duration)
	}
	out := make([]PhaseStat, 0, len(order))
	for _, name := range order {
		st := byName[name]
		d := durs[name]
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		st.P50 = quantileDur(d, 0.50)
		st.P99 = quantileDur(d, 0.99)
		out = append(out, *st)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Self > out[j].Self })
	return out
}

// coveredWithin returns the total time the union of the given intervals
// covers inside [lo, hi). Intervals may overlap (concurrent children).
func coveredWithin(iv [][2]int64, lo, hi int64) time.Duration {
	if len(iv) == 0 {
		return 0
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	var covered, curLo, curHi int64
	started := false
	flush := func() {
		if !started {
			return
		}
		a, b := curLo, curHi
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if b > a {
			covered += b - a
		}
	}
	for _, in := range iv {
		if !started || in[0] > curHi {
			flush()
			curLo, curHi, started = in[0], in[1], true
			continue
		}
		if in[1] > curHi {
			curHi = in[1]
		}
	}
	flush()
	return time.Duration(covered)
}

// quantileDur returns the q-quantile of sorted durations using the
// nearest-rank method; empty input yields zero.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TopSpans returns the n longest spans matching name ("" matches all),
// longest first — used by `fta trace` to list the slowest centers.
func TopSpans(t Trace, name string, n int) []SpanRecord {
	var match []SpanRecord
	for _, s := range t.Spans {
		if name == "" || s.Name == name {
			match = append(match, s)
		}
	}
	sort.SliceStable(match, func(i, j int) bool { return match[i].Duration > match[j].Duration })
	if n > 0 && len(match) > n {
		match = match[:n]
	}
	return match
}
