package assign

import (
	"context"
	"math"

	"fairtask/internal/game"
	"fairtask/internal/vdps"
)

// MMTA is a Max-Min fair Task Assignment extension: it heuristically
// maximizes the minimum worker payoff, the fairness notion of Ye et al.
// discussed in the paper's related work (§II). MMTA is not one of the
// paper's four evaluated methods; it is provided as an additional
// descriptive model of fairness (the paper's future-work direction) and as
// a point of comparison against the difference-minimizing game approaches.
//
// The heuristic repeatedly lets the currently worst-off worker that can
// still improve take its best available strategy. Each switch strictly
// raises that worker's payoff and leaves the others untouched, so the total
// payoff strictly increases and the loop terminates at a state where the
// minimum cannot be raised by any single-worker move.
type MMTA struct{}

// Name implements Assigner.
func (MMTA) Name() string { return "MMTA" }

// Assign implements Assigner.
func (MMTA) Assign(ctx context.Context, g *vdps.Generator) (*game.Result, error) {
	s := game.NewState(g)
	if len(s.Current) == 0 {
		return nil, game.ErrNoWorkers
	}
	iterations := 0
	for {
		iterations++
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Pick the worst-off worker that has an available strictly better
		// strategy.
		w, si := -1, game.Null
		worst := math.Inf(1)
		for cand := range s.Current {
			cur := s.Payoffs[cand]
			if cur >= worst {
				continue
			}
			if better := bestAvailableAbove(s, cand, cur); better != game.Null {
				w, si, worst = cand, better, cur
			}
		}
		if w == -1 {
			break
		}
		s.Switch(w, si)
	}
	return &game.Result{
		Assignment: s.Assignment(),
		Summary:    s.Summary(),
		Iterations: iterations,
		Converged:  true,
	}, nil
}

// bestAvailableAbove returns the worker's highest-payoff available strategy
// with payoff strictly above the threshold, or game.Null.
func bestAvailableAbove(s *game.State, w int, threshold float64) int {
	for si := range s.Strategies[w] { // sorted by descending payoff
		if s.Strategies[w][si].Payoff <= threshold {
			return game.Null
		}
		if si != s.Current[w] && s.Available(w, si) {
			return si
		}
	}
	return game.Null
}
