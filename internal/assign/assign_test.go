package assign

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"fairtask/internal/game"
	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/travel"
	"fairtask/internal/vdps"
)

func gridInstance(nPoints, nWorkers, maxDP int, expiry float64, seed int64) *model.Instance {
	in := &model.Instance{
		Center: geo.Pt(0, 0),
		Travel: travel.MustModel(geo.Euclidean{}, 1),
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nPoints; i++ {
		in.Points = append(in.Points, model.DeliveryPoint{
			ID:  i,
			Loc: geo.Pt(rng.Float64()*6-3, rng.Float64()*6-3),
			Tasks: []model.Task{
				{ID: 2 * i, Point: i, Expiry: expiry, Reward: 1},
				{ID: 2*i + 1, Point: i, Expiry: expiry, Reward: 1},
			},
		})
	}
	for w := 0; w < nWorkers; w++ {
		in.Workers = append(in.Workers, model.Worker{
			ID:    w,
			Loc:   geo.Pt(rng.Float64()*6-3, rng.Float64()*6-3),
			MaxDP: maxDP,
		})
	}
	return in
}

func mustGen(t *testing.T, in *model.Instance) *vdps.Generator {
	t.Helper()
	g, err := vdps.Generate(in, vdps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNames(t *testing.T) {
	if (GTA{}).Name() != "GTA" || (MPTA{}).Name() != "MPTA" {
		t.Error("unexpected algorithm names")
	}
}

func TestGTAValidAndDeterministic(t *testing.T) {
	in := gridInstance(8, 4, 2, 100, 1)
	g := mustGen(t, in)
	a, err := (GTA{}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Assignment.Validate(in); err != nil {
		t.Fatalf("GTA assignment invalid: %v", err)
	}
	b, err := (GTA{}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Total != b.Summary.Total {
		t.Error("GTA not deterministic")
	}
	if a.Summary.Assigned == 0 {
		t.Error("GTA assigned nothing")
	}
}

// The first greedy pick is the globally best (worker, VDPS) payoff; that
// worker must hold a strategy achieving its personal best payoff.
func TestGTAFirstPickIsGlobalBest(t *testing.T) {
	in := gridInstance(8, 4, 2, 100, 2)
	g := mustGen(t, in)
	res, err := (GTA{}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	bestPayoff := 0.0
	bestW := -1
	for w := range in.Workers {
		ws := g.ForWorker(w)
		if len(ws) > 0 && ws[0].Payoff > bestPayoff {
			bestPayoff = ws[0].Payoff
			bestW = w
		}
	}
	if bestW == -1 {
		t.Skip("no strategies")
	}
	got := res.Summary.Payoffs[bestW]
	if math.Abs(got-bestPayoff) > 1e-9 {
		t.Errorf("global-best worker %d got payoff %g, want its best %g", bestW, got, bestPayoff)
	}
}

func TestGTANoWorkers(t *testing.T) {
	in := gridInstance(3, 1, 1, 100, 3)
	in.Workers = nil
	g, err := vdps.Generate(in, vdps.Options{MaxSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (GTA{}).Assign(context.Background(), g); err != game.ErrNoWorkers {
		t.Errorf("err = %v, want ErrNoWorkers", err)
	}
	if _, err := (MPTA{}).Assign(context.Background(), g); err != game.ErrNoWorkers {
		t.Errorf("MPTA err = %v, want ErrNoWorkers", err)
	}
}

func TestMPTAValid(t *testing.T) {
	in := gridInstance(8, 4, 2, 100, 4)
	g := mustGen(t, in)
	res, err := (MPTA{}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(in); err != nil {
		t.Fatalf("MPTA assignment invalid: %v", err)
	}
	if !res.Converged {
		t.Error("small instance should be solved exactly")
	}
}

// MPTA maximizes total payoff: it must match brute force on tiny instances
// and dominate GTA's total payoff everywhere.
func TestMPTAOptimalOnTinyInstances(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := gridInstance(5, 3, 2, 100, seed+100)
		g := mustGen(t, in)
		res, err := (MPTA{}).Assign(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteBestTotal(g)
		if math.Abs(res.Summary.Total-want) > 1e-9 {
			t.Errorf("seed %d: MPTA total %g, brute-force optimum %g",
				seed, res.Summary.Total, want)
		}
	}
}

// bruteBestTotal enumerates all disjoint joint strategies exhaustively.
func bruteBestTotal(g *vdps.Generator) float64 {
	s := game.NewState(g)
	var best float64
	var rec func(w int, total float64)
	rec = func(w int, total float64) {
		if w == len(s.Current) {
			if total > best {
				best = total
			}
			return
		}
		rec(w+1, total) // null
		for si := range s.Strategies[w] {
			if !s.Available(w, si) {
				continue
			}
			s.Switch(w, si)
			rec(w+1, total+s.Strategies[w][si].Payoff)
			s.Switch(w, game.Null)
		}
	}
	rec(0, 0)
	return best
}

func TestMPTADominatesGTA(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in := gridInstance(9, 4, 2, 100, seed+200)
		g := mustGen(t, in)
		gta, err := (GTA{}).Assign(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		mpta, err := (MPTA{}).Assign(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if mpta.Summary.Total < gta.Summary.Total-1e-9 {
			t.Errorf("seed %d: MPTA total %g below GTA total %g",
				seed, mpta.Summary.Total, gta.Summary.Total)
		}
	}
}

// With a tiny node budget MPTA falls back to local search but still returns
// a valid assignment.
func TestMPTABudgetFallback(t *testing.T) {
	in := gridInstance(10, 5, 2, 100, 300)
	g := mustGen(t, in)
	res, err := (MPTA{NodeBudget: 10}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("budget-limited run should not claim optimality")
	}
	if err := res.Assignment.Validate(in); err != nil {
		t.Fatalf("fallback assignment invalid: %v", err)
	}
	// Local search guarantees at least greedy-quality totals; sanity only.
	if res.Summary.Total <= 0 {
		t.Error("fallback produced empty assignment")
	}
}

func TestMPTATopKRestriction(t *testing.T) {
	in := gridInstance(8, 3, 2, 100, 400)
	g := mustGen(t, in)
	full, err := (MPTA{}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := (MPTA{TopK: 1}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Summary.Total > full.Summary.Total+1e-9 {
		t.Error("restricting candidates should not raise the optimum")
	}
	if err := narrow.Assignment.Validate(in); err != nil {
		t.Fatalf("narrow assignment invalid: %v", err)
	}
}

// TestComponentsSeparatedClusters builds two far-apart point clusters with
// their own workers; the conflict graph must split into (at least) two
// components, and MPTA must still find the global brute-force optimum.
func TestComponentsSeparatedClusters(t *testing.T) {
	in := &model.Instance{
		Center: geo.Pt(0, 0),
		Travel: travel.MustModel(geo.Euclidean{}, 1),
	}
	mk := func(cx, cy float64, pointBase, workerBase int) {
		for i := 0; i < 3; i++ {
			pi := pointBase + i
			in.Points = append(in.Points, model.DeliveryPoint{
				ID:  pi,
				Loc: geo.Pt(cx+float64(i)*0.5, cy),
				Tasks: []model.Task{{
					ID: pi, Point: pi, Expiry: 50, Reward: 1,
				}},
			})
		}
		for i := 0; i < 2; i++ {
			in.Workers = append(in.Workers, model.Worker{
				ID: workerBase + i, Loc: geo.Pt(cx, cy+1), MaxDP: 2,
			})
		}
	}
	mk(0, 5, 0, 0)
	mk(400, 5, 3, 2) // far cluster: no shared strategies possible

	g, err := vdps.Generate(in, vdps.Options{Epsilon: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := game.NewState(g)
	comps := components(s, 64)
	if len(comps) < 2 {
		t.Fatalf("components = %d, want >= 2 for separated clusters", len(comps))
	}
	seen := map[int]bool{}
	total := 0
	for _, c := range comps {
		for _, w := range c {
			if seen[w] {
				t.Fatalf("worker %d in two components", w)
			}
			seen[w] = true
			total++
		}
	}
	if total != len(in.Workers) {
		t.Fatalf("components cover %d workers, want %d", total, len(in.Workers))
	}

	res, err := (MPTA{}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(in); err != nil {
		t.Fatalf("decomposed MPTA invalid: %v", err)
	}
	want := bruteBestTotal(g)
	if math.Abs(res.Summary.Total-want) > 1e-9 {
		t.Errorf("decomposed MPTA total %g, brute optimum %g", res.Summary.Total, want)
	}
}

func TestMPTADisableDecompositionSameOptimum(t *testing.T) {
	in := gridInstance(6, 3, 2, 100, 500)
	g := mustGen(t, in)
	dec, err := (MPTA{}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := (MPTA{DisableDecomposition: true}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Summary.Total-mono.Summary.Total) > 1e-9 {
		t.Errorf("decomposed total %g != monolithic total %g",
			dec.Summary.Total, mono.Summary.Total)
	}
}
