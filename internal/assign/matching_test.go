package assign

import (
	"math"
	"math/rand"
	"testing"
)

// randBipartite draws a random bipartite graph with nLeft/nRight vertices
// and edge probability pr.
func randBipartite(rng *rand.Rand, nLeft, nRight int, pr float64) [][]int {
	adj := make([][]int, nLeft)
	for l := 0; l < nLeft; l++ {
		for r := 0; r < nRight; r++ {
			if rng.Float64() < pr {
				adj[l] = append(adj[l], r)
			}
		}
	}
	return adj
}

// Hopcroft–Karp must agree with the independent Kuhn reference on the
// maximum matching size (both equal the max-flow value by König's theorem).
func TestHopcroftKarpMatchesKuhnReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		nLeft := rng.Intn(13)
		nRight := rng.Intn(13)
		pr := rng.Float64()
		adj := randBipartite(rng, nLeft, nRight, pr)
		_, hk := hopcroftKarp(nRight, adj)
		kuhn := kuhnMatch(nRight, adj)
		if hk != kuhn {
			t.Fatalf("trial %d (%dx%d, p=%.2f): hopcroftKarp size %d, kuhn size %d",
				trial, nLeft, nRight, pr, hk, kuhn)
		}
	}
}

// The returned partner table must be a valid matching of the reported size:
// every matched edge exists, and no right vertex is used twice.
func TestHopcroftKarpWitnessIsValidMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		nLeft := 1 + rng.Intn(10)
		nRight := 1 + rng.Intn(10)
		adj := randBipartite(rng, nLeft, nRight, 0.4)
		matchL, size := hopcroftKarp(nRight, adj)
		seen := make(map[int]bool)
		count := 0
		for l, r := range matchL {
			if r == unmatched {
				continue
			}
			count++
			if seen[r] {
				t.Fatalf("trial %d: right vertex %d matched twice", trial, r)
			}
			seen[r] = true
			found := false
			for _, cand := range adj[l] {
				if cand == r {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: matched edge (%d,%d) not in graph", trial, l, r)
			}
		}
		if count != size {
			t.Fatalf("trial %d: witness has %d edges, reported size %d", trial, count, size)
		}
	}
}

func TestHopcroftKarpDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	adj := randBipartite(rng, 9, 9, 0.5)
	a, _ := hopcroftKarp(9, adj)
	b, _ := hopcroftKarp(9, adj)
	for l := range a {
		if a[l] != b[l] {
			t.Fatalf("left %d matched to %d then %d on identical input", l, a[l], b[l])
		}
	}
}

// bruteAssignMax maximizes total weight over all injective row->column maps.
func bruteAssignMax(weights [][]float64) float64 {
	n := len(weights)
	if n == 0 {
		return 0
	}
	m := len(weights[0])
	used := make([]bool, m)
	best := math.Inf(-1)
	var rec func(row int, total float64)
	rec = func(row int, total float64) {
		if row == n {
			if total > best {
				best = total
			}
			return
		}
		for c := 0; c < m; c++ {
			if used[c] {
				continue
			}
			used[c] = true
			rec(row+1, total+weights[row][c])
			used[c] = false
		}
	}
	rec(0, 0)
	return best
}

func randMatrix(rng *rand.Rand, n, m int) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, m)
		for j := range w[i] {
			w[i][j] = rng.NormFloat64() * 10
		}
	}
	return w
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(5)
		m := n + rng.Intn(3)
		w := randMatrix(rng, n, m)
		rowCol, total := hungarianMax(w)
		if rowCol == nil {
			t.Fatalf("trial %d: nil result for feasible %dx%d", trial, n, m)
		}
		check := 0.0
		seen := make(map[int]bool)
		for i, j := range rowCol {
			if j < 0 || j >= m || seen[j] {
				t.Fatalf("trial %d: invalid column choice %v", trial, rowCol)
			}
			seen[j] = true
			check += w[i][j]
		}
		if math.Abs(check-total) > 1e-9 {
			t.Fatalf("trial %d: reported total %g but edges sum to %g", trial, total, check)
		}
		want := bruteAssignMax(w)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: hungarian total %g, brute-force optimum %g", trial, total, want)
		}
	}
}

// The optimal assignment value must be invariant under any row and column
// permutation of the weight matrix.
func TestHungarianPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(5)
		m := n + rng.Intn(3)
		w := randMatrix(rng, n, m)
		_, total := hungarianMax(w)
		pr := rng.Perm(n)
		pc := rng.Perm(m)
		perm := make([][]float64, n)
		for i := range perm {
			perm[i] = make([]float64, m)
			for j := range perm[i] {
				perm[i][j] = w[pr[i]][pc[j]]
			}
		}
		_, ptotal := hungarianMax(perm)
		if math.Abs(total-ptotal) > 1e-9 {
			t.Fatalf("trial %d: total %g changed to %g under permutation", trial, total, ptotal)
		}
	}
}

func TestHungarianRejectsMoreRowsThanColumns(t *testing.T) {
	if rowCol, _ := hungarianMax([][]float64{{1}, {2}}); rowCol != nil {
		t.Fatalf("2x1 matrix returned %v, want nil", rowCol)
	}
	if rowCol, total := hungarianMax(nil); rowCol == nil || len(rowCol) != 0 || total != 0 {
		t.Fatalf("empty matrix returned (%v, %g), want ([], 0)", rowCol, total)
	}
}
