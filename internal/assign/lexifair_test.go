package assign

import (
	"context"
	"errors"
	"math"
	"sort"
	"testing"

	"fairtask/internal/game"
	"fairtask/internal/model"
	"fairtask/internal/vdps"
)

// lexVector extracts an assignment's ascending-sorted payoff vector through
// the game state's strategy resolution, so the floats are the exact
// StrategyRef payoffs and bitwise comparison against the oracle is sound.
func lexVector(t *testing.T, g *vdps.Generator, a *model.Assignment) []float64 {
	t.Helper()
	s := game.NewState(g)
	if err := s.LoadAssignment(a); err != nil {
		t.Fatalf("assignment outside strategy space: %v", err)
	}
	out := append([]float64(nil), s.Payoffs...)
	sort.Float64s(out)
	return out
}

// sameVector demands bitwise equality (no tolerance).
func sameVector(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lexSweepConfigs are the exhaustive differential-sweep shapes: at most 6
// workers, and instances small enough that workers stay at <= 8 strategies
// (cases beyond that are skipped and counted).
var lexSweepConfigs = []struct {
	points, workers, maxDP int
	expiry                 float64
}{
	{3, 2, 1, 100},
	{4, 2, 2, 100},
	{4, 3, 1, 100},
	{4, 3, 2, 6},
	{5, 4, 1, 100},
	{5, 4, 2, 5},
	{6, 5, 1, 8},
	{6, 6, 1, 6},
}

// TestLexifairMatchesOracleExhaustive is the tentpole differential test:
// on every exhaustively-enumerable small instance, Lexifair's sorted payoff
// vector must be bit-identical to the brute-force leximin oracle's.
func TestLexifairMatchesOracleExhaustive(t *testing.T) {
	ctx := context.Background()
	tested := 0
	for ci, cfg := range lexSweepConfigs {
		for seed := int64(0); seed < 15; seed++ {
			in := gridInstance(cfg.points, cfg.workers, cfg.maxDP, cfg.expiry, 1000*int64(ci)+seed)
			g := mustGen(t, in)
			tooWide := false
			for w := range in.Workers {
				if len(g.ForWorker(w)) > 8 {
					tooWide = true
					break
				}
			}
			if tooWide {
				continue
			}
			oracle, err := OracleLexifair(ctx, g, 0)
			if errors.Is(err, ErrSearchTooLarge) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			res, err := (Lexifair{}).Assign(ctx, g)
			if err != nil {
				t.Fatalf("config %d seed %d: %v", ci, seed, err)
			}
			if !res.Converged {
				t.Fatalf("config %d seed %d: exhaustive-size instance did not converge", ci, seed)
			}
			if err := res.Assignment.Validate(in); err != nil {
				t.Fatalf("config %d seed %d: invalid assignment: %v", ci, seed, err)
			}
			got := lexVector(t, g, res.Assignment)
			if !sameVector(got, oracle.Sorted) {
				t.Fatalf("config %d seed %d: lexifair vector %v != oracle vector %v",
					ci, seed, got, oracle.Sorted)
			}
			tested++
		}
	}
	if tested < 60 {
		t.Fatalf("differential sweep exercised only %d instances; want >= 60", tested)
	}
}

// The oracle's own output must be a valid point-disjoint assignment whose
// re-derived vector matches the one it reports.
func TestOracleSelfConsistent(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 6; seed++ {
		in := gridInstance(4, 3, 1, 100, 600+seed)
		g := mustGen(t, in)
		oracle, err := OracleLexifair(ctx, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := oracle.Assignment.Validate(in); err != nil {
			t.Fatalf("seed %d: oracle assignment invalid: %v", seed, err)
		}
		if got := lexVector(t, g, oracle.Assignment); !sameVector(got, oracle.Sorted) {
			t.Fatalf("seed %d: oracle assignment realizes %v, reports %v", seed, got, oracle.Sorted)
		}
	}
}

func TestOracleSearchTooLarge(t *testing.T) {
	in := gridInstance(8, 4, 2, 100, 7)
	g := mustGen(t, in)
	if _, err := OracleLexifair(context.Background(), g, 2); !errors.Is(err, ErrSearchTooLarge) {
		t.Fatalf("err = %v, want ErrSearchTooLarge", err)
	}
	if _, err := OracleBestScore(context.Background(), g, 1, 2); !errors.Is(err, ErrSearchTooLarge) {
		t.Fatalf("score err = %v, want ErrSearchTooLarge", err)
	}
}

// Exact is regression-pinned against the oracle on its own scalarized
// objective, for both the default Lambda and the NoLambda sentinel.
func TestExactMatchesOracleScore(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 10; seed++ {
		in := gridInstance(4, 3, 1, 100, 700+seed)
		g := mustGen(t, in)
		res, err := (Exact{}).Assign(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		want, err := OracleBestScore(ctx, g, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := Score(res.Summary.Payoffs, 1)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("seed %d: Exact score %g, oracle optimum %g", seed, got, want)
		}
	}
}

// MMTA is a heuristic: its minimum payoff must never exceed the oracle's
// max-min optimum (the leximin vector's first entry), and on these small
// instances the single-switch dynamics actually reach it.
func TestMMTABoundedByOracleMaxMin(t *testing.T) {
	ctx := context.Background()
	hits, total := 0, 0
	for seed := int64(0); seed < 12; seed++ {
		in := gridInstance(4, 3, 1, 100, 800+seed)
		g := mustGen(t, in)
		oracle, err := OracleLexifair(ctx, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := (MMTA{}).Assign(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		vec := lexVector(t, g, res.Assignment)
		if vec[0] > oracle.Sorted[0] {
			t.Fatalf("seed %d: MMTA min %v exceeds oracle max-min %v", seed, vec[0], oracle.Sorted[0])
		}
		total++
		if vec[0] == oracle.Sorted[0] {
			hits++
		}
	}
	// Regression pin: the sweep is deterministic and the single-switch
	// heuristic currently reaches the optimum on 2 of these 12 seeds; a
	// drop to zero means an MMTA regression (losing even its greedy wins).
	if hits < 2 {
		t.Fatalf("MMTA reached the oracle max-min on only %d/%d seeds, want >= 2", hits, total)
	}
}

// NoLambda must select the pure welfare objective: with the fairness term
// gone, Exact's optimal total equals the brute-force welfare optimum. This
// pins the sentinel fix — a literal Lambda 0 used to silently collapse into
// the default weight of 1.
func TestExactNoLambdaIsPureWelfare(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in := gridInstance(5, 3, 2, 100, 900+seed)
		g := mustGen(t, in)
		res, err := (Exact{Lambda: NoLambda}).Assign(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteBestTotal(g)
		if math.Abs(res.Summary.Total-want) > 1e-9 {
			t.Fatalf("seed %d: NoLambda total %g, welfare optimum %g", seed, res.Summary.Total, want)
		}
	}
}

// Feasibility of "every worker earns at least T" must be monotone
// non-increasing in T — the invariant the level binary search relies on.
func TestLexifairThresholdMonotonicity(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := gridInstance(6, 4, 2, 100, 1000+seed)
		g := mustGen(t, in)
		m, err := newLexMatrix(g)
		if err != nil {
			t.Fatal(err)
		}
		l := &lexSolver{m: m, ctx: context.Background(), budget: lexDefaultBudget}
		all := make([]int, len(in.Workers))
		for w := range all {
			all[w] = w
		}
		reqs := make([]lexReq, len(in.Workers))
		vals := l.levelValues(all)
		wasFeasible := true
		for i, v := range vals {
			_, ok := l.feasible(l.withMin(reqs, all, v))
			if i == 0 && !ok {
				t.Fatalf("seed %d: floor threshold 0 infeasible", seed)
			}
			if ok && !wasFeasible {
				t.Fatalf("seed %d: threshold %g feasible after a lower one was not", seed, v)
			}
			wasFeasible = ok
		}
		if l.overBudget {
			t.Fatalf("seed %d: monotonicity probe exhausted the budget", seed)
		}
	}
}

func TestLexifairValidDeterministicOnMediumInstance(t *testing.T) {
	in := gridInstance(10, 5, 2, 100, 42)
	g := mustGen(t, in)
	a, err := (Lexifair{}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Assignment.Validate(in); err != nil {
		t.Fatalf("lexifair assignment invalid: %v", err)
	}
	if !a.Converged {
		t.Error("medium instance should converge within the default budget")
	}
	if a.Summary.Assigned == 0 {
		t.Error("lexifair assigned nothing")
	}
	b, err := (Lexifair{}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !sameVector(lexVector(t, g, a.Assignment), lexVector(t, g, b.Assignment)) {
		t.Error("lexifair not deterministic")
	}
}

func TestLexifairNoWorkers(t *testing.T) {
	in := gridInstance(3, 1, 1, 100, 3)
	in.Workers = nil
	g, err := vdps.Generate(in, vdps.Options{MaxSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Lexifair{}).Assign(context.Background(), g); err != game.ErrNoWorkers {
		t.Errorf("err = %v, want ErrNoWorkers", err)
	}
}

// A starved node budget must degrade, not fail: valid assignment,
// Converged = false.
func TestLexifairBudgetFallback(t *testing.T) {
	in := gridInstance(10, 5, 2, 100, 44)
	g := mustGen(t, in)
	res, err := (Lexifair{NodeBudget: 3}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("budget-limited run should not claim optimality")
	}
	if err := res.Assignment.Validate(in); err != nil {
		t.Fatalf("fallback assignment invalid: %v", err)
	}
}

func TestLexifairCancellation(t *testing.T) {
	in := gridInstance(6, 3, 2, 100, 45)
	g := mustGen(t, in)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Lexifair{}).Assign(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The audit certificate must accept every solver output...
func TestVerifyLexifairCertifiesSolver(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 8; seed++ {
		in := gridInstance(5, 3, 2, 100, 1100+seed)
		g := mustGen(t, in)
		res, err := (Lexifair{}).Assign(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			continue
		}
		if err := VerifyLexifair(ctx, g, res.Assignment, 0); err != nil {
			t.Fatalf("seed %d: certificate rejected an optimal assignment: %v", seed, err)
		}
	}
}

// ...and reject assignments whose minimum could be raised.
func TestVerifyLexifairRejectsSuboptimal(t *testing.T) {
	ctx := context.Background()
	in := gridInstance(5, 3, 2, 100, 46)
	g := mustGen(t, in)
	oracle, err := OracleLexifair(ctx, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Sorted[len(oracle.Sorted)-1] <= 0 {
		t.Skip("instance has an all-zero optimum")
	}
	empty := game.NewState(g).Assignment() // all-null: minimum raisable
	if err := VerifyLexifair(ctx, g, empty, 0); err == nil {
		t.Fatal("certificate accepted the empty assignment on an instance with positive optimum")
	}
	// A route outside the strategy space must be rejected, not mis-scored.
	bad := game.NewState(g).Assignment()
	bad.Routes[0] = []int{0, 0, 0, 0, 0, 0}
	if err := VerifyLexifair(ctx, g, bad, 0); err == nil {
		t.Fatal("certificate accepted an out-of-space route")
	}
}

// When workers outnumber the deliverable points the true bottleneck is 0,
// so the level-value replay alone cannot distinguish the leximin optimum
// from an all-null assignment — the saturation probe must. Regression for
// a false accept found by driving `fta audit` with emptied route exports.
func TestVerifyLexifairRejectsDominatedAtZeroBottleneck(t *testing.T) {
	ctx := context.Background()
	in := gridInstance(2, 4, 1, 100, 3)
	g := mustGen(t, in)
	oracle, err := OracleLexifair(ctx, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Sorted[0] != 0 {
		t.Fatalf("want a zero-bottleneck instance, got minimum %v", oracle.Sorted[0])
	}
	if oracle.Sorted[len(oracle.Sorted)-1] <= 0 {
		t.Skip("instance has an all-zero optimum")
	}
	empty := game.NewState(g).Assignment()
	if err := VerifyLexifair(ctx, g, empty, 0); err == nil {
		t.Fatal("certificate accepted the empty assignment at a zero bottleneck")
	}
	res, err := (Lexifair{}).Assign(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyLexifair(ctx, g, res.Assignment, 0); err != nil {
		t.Fatalf("certificate rejected the solver's own output: %v", err)
	}
}

// Lexifair's minimum payoff dominates the max-min heuristic's everywhere
// (it is the exact max-min optimum at the first level).
func TestLexifairMinDominatesMMTA(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 6; seed++ {
		in := gridInstance(8, 4, 2, 100, 1200+seed)
		g := mustGen(t, in)
		lex, err := (Lexifair{}).Assign(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		if !lex.Converged {
			continue
		}
		mm, err := (MMTA{}).Assign(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		lv := lexVector(t, g, lex.Assignment)
		mv := lexVector(t, g, mm.Assignment)
		if lv[0] < mv[0] {
			t.Fatalf("seed %d: lexifair min %v below MMTA min %v", seed, lv[0], mv[0])
		}
	}
}
