package assign

import "math"

// This file holds the bipartite matching kernels behind the Lexifair solver:
// Hopcroft–Karp maximum matching (the feasibility kernel of the threshold
// search), a plain Kuhn augmenting-path matcher kept as the König/max-flow
// reference the property tests compare against, and a dense rectangular
// Hungarian (Jonker–Volgenant-style shortest augmenting paths with
// potentials) used as the final tie-break kernel. All three operate on
// left-indexed adjacency lists or dense matrices and know nothing about
// workers or strategies.

// unmatched marks a vertex with no partner in a matching.
const unmatched = -1

// hopcroftKarp computes a maximum matching of the bipartite graph with
// len(adj) left vertices and nRight right vertices, where adj[l] lists the
// right vertices adjacent to left vertex l. It returns the left-to-right
// partner table (unmatched entries are -1) and the matching size, in
// O(E*sqrt(V)) worst case. Deterministic: augmenting paths are explored in
// adjacency order, so equal inputs produce identical matchings.
func hopcroftKarp(nRight int, adj [][]int) ([]int, int) {
	nLeft := len(adj)
	matchL := make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}

	const inf = int(^uint(0) >> 1)
	dist := make([]int, nLeft)
	queue := make([]int, 0, nLeft)

	// bfs layers the graph from free left vertices; it reports whether any
	// augmenting path exists.
	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < nLeft; l++ {
			if matchL[l] == unmatched {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range adj[l] {
				nl := matchR[r]
				if nl == unmatched {
					found = true
				} else if dist[nl] == inf {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}

	// dfs extends an augmenting path from left vertex l along the BFS
	// layering.
	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, r := range adj[l] {
			nl := matchR[r]
			if nl == unmatched || (dist[nl] == dist[l]+1 && dfs(nl)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	size := 0
	for bfs() {
		for l := 0; l < nLeft; l++ {
			if matchL[l] == unmatched && dfs(l) {
				size++
			}
		}
	}
	return matchL, size
}

// kuhnMatch computes the same maximum-matching size with the classic Kuhn
// augmenting-path algorithm (O(V*E)). It is the independent reference the
// property tests pin hopcroftKarp against — by König's theorem both equal
// the max-flow value of the unit-capacity network, so any divergence is a
// kernel bug.
func kuhnMatch(nRight int, adj [][]int) int {
	nLeft := len(adj)
	matchR := make([]int, nRight)
	for i := range matchR {
		matchR[i] = unmatched
	}
	seen := make([]bool, nRight)
	var try func(l int) bool
	try = func(l int) bool {
		for _, r := range adj[l] {
			if seen[r] {
				continue
			}
			seen[r] = true
			if matchR[r] == unmatched || try(matchR[r]) {
				matchR[r] = l
				return true
			}
		}
		return false
	}
	size := 0
	for l := 0; l < nLeft; l++ {
		for i := range seen {
			seen[i] = false
		}
		if try(l) {
			size++
		}
	}
	return size
}

// hungarianMax solves the dense rectangular assignment problem: given an
// n×m weight matrix with n <= m, it returns a column for every row
// maximizing the total weight over all row-perfect matchings, plus that
// total. It runs the Jonker–Volgenant-style shortest-augmenting-path scheme
// with dual potentials in O(n^2*m). Forbidden cells should carry a large
// negative weight; callers must check the result honors them. It returns
// nil when n > m (no row-perfect matching exists).
func hungarianMax(weights [][]float64) ([]int, float64) {
	n := len(weights)
	if n == 0 {
		return []int{}, 0
	}
	m := len(weights[0])
	if n > m {
		return nil, 0
	}

	// Internally minimize cost = -weight with 1-based arrays; p[j] is the
	// row matched to column j, p[0] the row currently seeking a column.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)
	way := make([]int, m+1)
	minv := make([]float64, m+1)
	used := make([]bool, m+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = math.Inf(1)
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			j1 := 0
			delta := math.Inf(1)
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := -weights[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowCol := make([]int, n)
	total := 0.0
	for j := 1; j <= m; j++ {
		if p[j] != 0 {
			rowCol[p[j]-1] = j - 1
			total += weights[p[j]-1][j-1]
		}
	}
	return rowCol, total
}
