package assign

import (
	"context"
	"errors"

	"fairtask/internal/game"
	"fairtask/internal/payoff"
	"fairtask/internal/vdps"
)

// Exact is a reference solver for the FTA objective. The paper states FTA
// as a lexicographic bi-objective — minimize P_dif, then maximize the
// average payoff — whose literal optimum is degenerate (the empty
// assignment has P_dif = 0). Exact therefore optimizes the standard
// scalarization used by related work (e.g. Chen et al.):
//
//	score = avg(payoffs) - Lambda * P_dif(payoffs)
//
// over the full joint strategy space. FTA is NP-hard, so Exact is only
// usable on small instances; its purpose is measuring the optimality gap of
// the heuristics (see the "optgap" experiment).
type Exact struct {
	// Lambda weights the fairness term. Zero means the default of 1; a
	// non-positive value (use the NoLambda constant) drops the fairness
	// term entirely and maximizes the pure average payoff.
	Lambda float64
	// MaxJointStrategies aborts with ErrSearchTooLarge when the product of
	// per-worker strategy counts exceeds it. Zero means the default of 5e6.
	MaxJointStrategies float64
}

// ErrSearchTooLarge is returned when the joint strategy space exceeds
// Exact.MaxJointStrategies.
var ErrSearchTooLarge = errors.New("assign: joint strategy space too large for exact search")

// NoLambda selects the pure welfare objective in Exact.Lambda: a literal 0
// cannot mean "no fairness term" because the zero value already selects the
// default weight of 1 — the same sentinel pattern as game.NoEpsilon and
// evo.NoTolerance. Any negative value behaves the same.
const NoLambda = -1

// Score is the scalarized FTA objective Exact maximizes.
func Score(payoffs []float64, lambda float64) float64 {
	return payoff.Average(payoffs) - lambda*payoff.Difference(payoffs)
}

// Name implements Assigner.
func (Exact) Name() string { return "EXACT" }

// Assign implements Assigner.
func (e Exact) Assign(ctx context.Context, g *vdps.Generator) (*game.Result, error) {
	s := game.NewState(g)
	if len(s.Current) == 0 {
		return nil, game.ErrNoWorkers
	}
	lambda := e.Lambda
	if lambda < 0 {
		lambda = 0 // NoLambda: pure average payoff
	} else if lambda == 0 {
		lambda = 1
	}
	limit := e.MaxJointStrategies
	if limit <= 0 {
		limit = 5e6
	}
	space := 1.0
	for w := range s.Current {
		space *= float64(len(s.Strategies[w]) + 1)
		if space > limit {
			return nil, ErrSearchTooLarge
		}
	}

	n := len(s.Current)
	payoffs := make([]float64, n)
	best := make([]int, n)
	cur := make([]int, n)
	for i := range best {
		best[i] = game.Null
		cur[i] = game.Null
	}
	bestScore := Score(payoffs, lambda) // all-null baseline

	var leaves int
	canceled := false
	var rec func(w int)
	rec = func(w int) {
		if canceled {
			return
		}
		if w == n {
			leaves++
			// Poll cancellation every 8192 complete joint strategies.
			if leaves&0x1fff == 0 && ctx.Err() != nil {
				canceled = true
				return
			}
			if sc := Score(payoffs, lambda); sc > bestScore+1e-12 {
				bestScore = sc
				copy(best, cur)
			}
			return
		}
		// Null choice.
		payoffs[w] = 0
		rec(w + 1)
		for si := range s.Strategies[w] {
			if !s.Available(w, si) {
				continue
			}
			s.Switch(w, si)
			cur[w] = si
			payoffs[w] = s.Strategies[w][si].Payoff
			rec(w + 1)
			s.Switch(w, game.Null)
			cur[w] = game.Null
			payoffs[w] = 0
		}
	}
	rec(0)
	if canceled {
		return nil, ctx.Err()
	}

	for w, si := range best {
		if si != game.Null {
			s.Switch(w, si)
		}
	}
	return &game.Result{
		Assignment: s.Assignment(),
		Summary:    s.Summary(),
		Iterations: 1,
		Converged:  true,
	}, nil
}
