package assign

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"
	"testing"

	"fairtask/internal/game"
	"fairtask/internal/vdps"
)

// FuzzLexifairMatrix drives the payoff-matrix builder and the solver over
// randomized instance shapes, including corrupted task rewards (NaN,
// infinite, negative): no input may panic, and every rejection must be
// typed with ErrLexMatrix so callers can classify it with errors.Is.
func FuzzLexifairMatrix(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint8(1), 100.0, int64(1), uint8(0))
	f.Add(uint8(5), uint8(3), uint8(2), 8.0, int64(2), uint8(0))
	f.Add(uint8(4), uint8(0), uint8(1), 100.0, int64(3), uint8(0))
	f.Add(uint8(4), uint8(3), uint8(1), 100.0, int64(4), uint8(1))
	f.Add(uint8(4), uint8(3), uint8(2), 6.0, int64(5), uint8(2))
	f.Add(uint8(3), uint8(2), uint8(1), 0.5, int64(6), uint8(4))
	f.Add(uint8(3), uint8(2), uint8(1), math.Inf(1), int64(7), uint8(1))

	f.Fuzz(func(t *testing.T, np, nw, maxDP uint8, expiry float64, seed int64, corrupt uint8) {
		nPoints := int(np%6) + 1
		nWorkers := int(nw % 6) // 0 workers is a valid shape: ErrNoWorkers
		dp := int(maxDP%3) + 1
		in := gridInstance(nPoints, nWorkers, dp, expiry, seed)
		if corrupt&1 != 0 {
			in.Points[0].Tasks[0].Reward = math.NaN()
		}
		if corrupt&2 != 0 {
			in.Points[0].Tasks[1].Reward = math.Inf(1)
		}
		if corrupt&4 != 0 {
			in.Points[nPoints-1].Tasks[0].Reward = -5
		}
		g, err := vdps.Generate(in, vdps.Options{})
		if err != nil {
			return // generator rejection is fine; panics are not
		}
		if _, err := newLexMatrix(g); err != nil {
			if !errors.Is(err, ErrLexMatrix) {
				t.Fatalf("builder rejection %v is not typed as ErrLexMatrix", err)
			}
			return
		}
		res, err := (Lexifair{NodeBudget: 20000}).Assign(context.Background(), g)
		if err != nil {
			if !errors.Is(err, game.ErrNoWorkers) && !errors.Is(err, ErrLexMatrix) {
				t.Fatalf("unexpected solver error: %v", err)
			}
			return
		}
		if len(res.Assignment.Routes) != len(in.Workers) {
			t.Fatalf("result has %d routes for %d workers", len(res.Assignment.Routes), len(in.Workers))
		}
	})
}

// A corrupted candidate table (the generator shares it with callers) must
// surface as a typed builder error, never a panic — the non-finite payoff
// branch of the validation that the fuzz target cannot reach reliably.
func TestLexMatrixRejectsNonFinitePayoff(t *testing.T) {
	in := gridInstance(4, 2, 1, 100, 9)
	g := mustGen(t, in)
	cands := g.Candidates()
	if len(cands) == 0 {
		t.Skip("no candidates generated")
	}
	cands[0].Reward = math.NaN()
	_, err := newLexMatrix(g)
	if err == nil {
		t.Fatal("builder accepted a NaN candidate reward")
	}
	if !errors.Is(err, ErrLexMatrix) {
		t.Fatalf("rejection %v is not typed as ErrLexMatrix", err)
	}
	if _, err := (Lexifair{}).Assign(context.Background(), g); !errors.Is(err, ErrLexMatrix) {
		t.Fatalf("solver error %v is not typed as ErrLexMatrix", err)
	}
}

// Concurrent solves over one shared generator must be race-free and
// deterministic — the solver may only read the generator. Exercised by the
// CI race matrix for internal/assign.
func TestLexifairConcurrentSolvesRace(t *testing.T) {
	in := gridInstance(8, 4, 2, 100, 10)
	g := mustGen(t, in)
	want, err := (Lexifair{}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	wantVec := lexVector(t, g, want.Assignment)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	vecs := make([][]float64, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := (Lexifair{}).Assign(context.Background(), g)
			if err != nil {
				errs[i] = err
				return
			}
			s := game.NewState(g)
			if err := s.LoadAssignment(res.Assignment); err != nil {
				errs[i] = err
				return
			}
			vec := append([]float64(nil), s.Payoffs...)
			vecs[i] = vec
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
		sorted := append([]float64(nil), vecs[i]...)
		sort.Float64s(sorted)
		if !sameVector(sorted, wantVec) {
			t.Fatalf("goroutine %d: vector %v != sequential %v", i, sorted, wantVec)
		}
	}
}

// BenchmarkLexifair times a full lexifair solve on the benchmark-scale grid
// instance; benchguard gates it via BENCH_assign.json.
func BenchmarkLexifair(b *testing.B) {
	in := gridInstance(12, 6, 2, 100, 7)
	g, err := vdps.Generate(in, vdps.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Lexifair{}).Assign(ctx, g); err != nil {
			b.Fatal(err)
		}
	}
}
