package assign

import (
	"context"
	"sort"

	"fairtask/internal/game"
	"fairtask/internal/model"
	"fairtask/internal/vdps"
)

// This file holds the brute-force enumeration oracle the package's
// differential tests pin every solver against. The oracle walks the full
// joint strategy space (every worker picks the null strategy or one of its
// VDPSs, point-disjointness enforced through game.State) and evaluates a
// caller-chosen objective at each leaf. It is exponential by construction
// and guarded by the same search-space cap as Exact; its only job is to be
// obviously correct on tiny instances.

// OracleVector is the leximin oracle's answer: the optimal ascending-sorted
// payoff vector and an assignment realizing it.
type OracleVector struct {
	// Sorted is the ascending-sorted worker payoff vector — the exact
	// StrategyRef payoffs, so solver comparisons can demand bit identity.
	Sorted []float64
	// Assignment realizes Sorted.
	Assignment *model.Assignment
}

// OracleLexifair exhaustively computes the lexicographic-minimax optimum:
// among all point-disjoint joint strategies it maximizes the smallest
// payoff, then the second smallest, and so on (ascending-sorted vectors
// compared lexicographically). maxJoint caps the joint strategy space like
// Exact.MaxJointStrategies (0 = the same 5e6 default) and exceeding it
// returns ErrSearchTooLarge.
func OracleLexifair(ctx context.Context, g *vdps.Generator, maxJoint float64) (OracleVector, error) {
	var best OracleVector
	s, err := oracleEnumerate(ctx, g, maxJoint, func(s *game.State, payoffs []float64) {
		sorted := append([]float64(nil), payoffs...)
		sort.Float64s(sorted)
		if best.Sorted == nil || lexLess(best.Sorted, sorted) {
			best.Sorted = sorted
			best.Assignment = s.Assignment()
		}
	})
	if err != nil {
		return OracleVector{}, err
	}
	if best.Sorted == nil { // no workers: empty vector, empty assignment
		best.Sorted = []float64{}
		best.Assignment = s.Assignment()
	}
	return best, nil
}

// OracleBestScore exhaustively computes the maximum of Exact's scalarized
// objective Score(payoffs, lambda) over all point-disjoint joint
// strategies, under the same search-space cap as OracleLexifair.
func OracleBestScore(ctx context.Context, g *vdps.Generator, lambda, maxJoint float64) (float64, error) {
	var best float64
	first := true
	_, err := oracleEnumerate(ctx, g, maxJoint, func(_ *game.State, payoffs []float64) {
		if sc := Score(payoffs, lambda); first || sc > best {
			best = sc
			first = false
		}
	})
	return best, err
}

// oracleEnumerate drives the shared exhaustive recursion: visit wraps the
// objective and is called once per complete point-disjoint joint strategy
// with the live state and the per-worker payoff vector (callers must copy
// whatever they keep). It returns the state so callers can read structure
// for empty instances, and ErrSearchTooLarge or the context error on abort.
func oracleEnumerate(ctx context.Context, g *vdps.Generator, maxJoint float64, visit func(*game.State, []float64)) (*game.State, error) {
	s := game.NewState(g)
	limit := maxJoint
	if limit <= 0 {
		limit = 5e6
	}
	space := 1.0
	for w := range s.Current {
		space *= float64(len(s.Strategies[w]) + 1)
		if space > limit {
			return nil, ErrSearchTooLarge
		}
	}

	n := len(s.Current)
	payoffs := make([]float64, n)
	var leaves int
	canceled := false
	var rec func(w int)
	rec = func(w int) {
		if canceled {
			return
		}
		if w == n {
			leaves++
			// Poll cancellation every 8192 complete joint strategies.
			if leaves&0x1fff == 0 && ctx.Err() != nil {
				canceled = true
				return
			}
			visit(s, payoffs)
			return
		}
		// Null choice.
		payoffs[w] = 0
		rec(w + 1)
		for si := range s.Strategies[w] {
			if !s.Available(w, si) {
				continue
			}
			s.Switch(w, si)
			payoffs[w] = s.Strategies[w][si].Payoff
			rec(w + 1)
			s.Switch(w, game.Null)
			payoffs[w] = 0
		}
	}
	rec(0)
	if canceled {
		return nil, ctx.Err()
	}
	return s, nil
}
