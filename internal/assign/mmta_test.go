package assign

import (
	"context"
	"testing"

	"fairtask/internal/game"
	"fairtask/internal/payoff"
	"fairtask/internal/vdps"
)

func TestMMTAName(t *testing.T) {
	if (MMTA{}).Name() != "MMTA" {
		t.Error("unexpected name")
	}
}

func TestMMTAValidAndDeterministic(t *testing.T) {
	in := gridInstance(10, 5, 2, 100, 900)
	g := mustGen(t, in)
	a, err := (MMTA{}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Assignment.Validate(in); err != nil {
		t.Fatalf("MMTA assignment invalid: %v", err)
	}
	b, err := (MMTA{}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Total != b.Summary.Total {
		t.Error("MMTA not deterministic")
	}
}

func TestMMTANoWorkers(t *testing.T) {
	in := gridInstance(3, 1, 1, 100, 901)
	in.Workers = nil
	g, err := vdps.Generate(in, vdps.Options{MaxSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (MMTA{}).Assign(context.Background(), g); err != game.ErrNoWorkers {
		t.Errorf("err = %v, want ErrNoWorkers", err)
	}
}

// Post-condition: no single worker switch can raise the minimum payoff —
// in particular, the worst-off worker has no available better strategy.
func TestMMTALocalMaxMinOptimum(t *testing.T) {
	in := gridInstance(12, 6, 2, 100, 902)
	g := mustGen(t, in)
	res, err := (MMTA{}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the final state.
	s := game.NewState(g)
	for w, r := range res.Assignment.Routes {
		if len(r) == 0 {
			continue
		}
		for si := range s.Strategies[w] {
			seq := s.StrategySeq(w, si)
			if len(seq) == len(r) && routeEq(seq, r) {
				s.Switch(w, si)
				break
			}
		}
	}
	for w := range s.Current {
		if si := bestAvailableAbove(s, w, s.Payoffs[w]); si != game.Null {
			t.Errorf("worker %d (payoff %g) still has a better available strategy",
				w, s.Payoffs[w])
		}
	}
}

func routeEq(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MMTA should never leave the minimum payoff below GTA's minimum on the
// same instance (both are greedy-style, but MMTA prioritizes the worst-off
// worker at every step).
func TestMMTAMinAtLeastGTAMin(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in := gridInstance(10, 5, 2, 100, 910+seed)
		g := mustGen(t, in)
		gta, err := (GTA{}).Assign(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		mmta, err := (MMTA{}).Assign(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		gMin := payoff.MinPayoff(gta.Summary.Payoffs)
		mMin := payoff.MinPayoff(mmta.Summary.Payoffs)
		if mMin < gMin-1e-9 {
			t.Errorf("seed %d: MMTA min %g below GTA min %g", seed, mMin, gMin)
		}
	}
}
