// Package assign provides the non-game-theoretic baselines the paper
// evaluates against — GTA (Greedy Task Assignment) and MPTA (Maximal Payoff
// based Task Assignment) — behind a common Assigner interface that the
// game-theoretic methods also satisfy via adapters in the root package.
package assign

import (
	"context"
	"sort"

	"fairtask/internal/game"
	"fairtask/internal/vdps"
)

// Assigner computes a task assignment from a VDPS generator.
type Assigner interface {
	// Name identifies the algorithm in experiment output ("GTA", "FGT", ...).
	Name() string
	// Assign solves the instance backing g. Implementations observe ctx at
	// iteration boundaries and return ctx.Err() when it is done, so a
	// canceled request or an expired job deadline stops the search instead
	// of running to completion.
	Assign(ctx context.Context, g *vdps.Generator) (*game.Result, error)
}

// GTA is the Greedy Task Assignment baseline: repeatedly give the
// still-unassigned worker whose best available VDPS has the highest payoff
// that VDPS, until no unassigned worker has an available strategy. GTA
// ignores fairness entirely.
type GTA struct{}

// Name implements Assigner.
func (GTA) Name() string { return "GTA" }

// Assign implements Assigner.
func (GTA) Assign(ctx context.Context, g *vdps.Generator) (*game.Result, error) {
	s := game.NewState(g)
	if len(s.Current) == 0 {
		return nil, game.ErrNoWorkers
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	greedy(s)
	return &game.Result{
		Assignment: s.Assignment(),
		Summary:    s.Summary(),
		Iterations: 1,
		Converged:  true,
	}, nil
}

// greedy fills the state with the greedy assignment over all workers: each
// round, the still-unassigned worker whose best available VDPS has the
// highest payoff takes it (strategies are sorted by descending payoff, so
// each worker's greedy choice is its first available one). It returns the
// achieved total payoff.
func greedy(s *game.State) float64 {
	all := make([]int, len(s.Current))
	for i := range all {
		all[i] = i
	}
	return greedySubset(s, all)
}

// MPTA is the Maximal Payoff based Task Assignment baseline: it maximizes
// the total worker payoff. The paper realizes MPTA with a tree-decomposition
// technique from prior work; this implementation solves the identical
// objective — a maximum-weight set packing over (worker, VDPS) candidates —
// with exact branch-and-bound under a node budget, falling back to greedy
// completion plus single-switch local search when the budget is exhausted
// (see DESIGN.md, substitutions).
type MPTA struct {
	// TopK limits each worker's candidate strategies to its K highest-payoff
	// VDPSs to keep the search tractable. Zero means the default of 64.
	TopK int
	// NodeBudget caps branch-and-bound nodes. Zero means the default of 2e6.
	NodeBudget int
	// DisableDecomposition solves all workers as a single component instead
	// of decomposing the conflict graph. Only useful for the decomposition
	// ablation benchmark.
	DisableDecomposition bool
}

// Name implements Assigner.
func (MPTA) Name() string { return "MPTA" }

// Assign implements Assigner.
func (m MPTA) Assign(ctx context.Context, g *vdps.Generator) (*game.Result, error) {
	s := game.NewState(g)
	if len(s.Current) == 0 {
		return nil, game.ErrNoWorkers
	}
	topK := m.TopK
	if topK <= 0 {
		topK = 64
	}
	budget := m.NodeBudget
	if budget <= 0 {
		budget = 2_000_000
	}

	// Decompose the conflict graph into connected components of workers:
	// two workers interact iff their candidate strategies can share a
	// delivery point. Components are independent set-packing subproblems,
	// mirroring the worker-decomposition idea behind the paper's MPTA
	// references, and shrink the search exponentially on sparse instances.
	comps := components(s, topK)
	if m.DisableDecomposition {
		all := make([]int, len(s.Current))
		for i := range all {
			all[i] = i
		}
		comps = [][]int{all}
	}
	exhausted := true
	n := len(s.Current)
	for _, comp := range comps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		compBudget := budget * len(comp) / n
		if compBudget < 1000 {
			compBudget = 1000
		}
		b := &bnb{s: s, ctx: ctx, topK: topK, budget: compBudget, workers: comp}
		b.run()
		if b.canceled {
			return nil, ctx.Err()
		}
		if !b.exhausted {
			exhausted = false
		}
		// Apply the component's best joint strategy.
		for i, w := range comp {
			if si := b.best[i]; si != game.Null && s.Available(w, si) {
				s.Switch(w, si)
			}
		}
	}
	localSearch(s)

	return &game.Result{
		Assignment: s.Assignment(),
		Summary:    s.Summary(),
		Iterations: 1,
		Converged:  exhausted, // true when every component was solved exactly
	}, nil
}

// components groups workers into connected components of the strategy
// conflict graph, considering each worker's top-K strategies.
func components(s *game.State, topK int) [][]int {
	n := len(s.Current)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	pointToWorker := map[int]int{}
	for w := range s.Current {
		limit := len(s.Strategies[w])
		if limit > topK {
			limit = topK
		}
		for si := 0; si < limit; si++ {
			for _, p := range s.StrategySeq(w, si) {
				if prev, ok := pointToWorker[p]; ok {
					union(prev, w)
				} else {
					pointToWorker[p] = w
				}
			}
		}
	}

	byRoot := map[int][]int{}
	for w := 0; w < n; w++ {
		r := find(w)
		byRoot[r] = append(byRoot[r], w)
	}
	// Deterministic order: by smallest member.
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return byRoot[roots[i]][0] < byRoot[roots[j]][0] })
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// bnb is the branch-and-bound search state for one MPTA component. It only
// assigns the workers listed in workers; all indices below are positions in
// that slice, not global worker indices.
type bnb struct {
	s       *game.State
	ctx     context.Context
	topK    int
	budget  int
	workers []int

	choice    []int // current partial joint strategy, per position
	best      []int
	bestValue float64
	nodes     int
	exhausted bool
	canceled  bool

	// suffixMax[i] bounds the payoff positions i.. can still add (sum of
	// each worker's best strategy payoff, ignoring conflicts — admissible).
	suffixMax []float64
}

func (b *bnb) run() {
	n := len(b.workers)
	b.choice = make([]int, n)
	b.best = make([]int, n)
	for i := range b.best {
		b.choice[i] = game.Null
		b.best[i] = game.Null
	}

	// Warm start: seed the incumbent with the greedy solution restricted to
	// this component, so the search prunes aggressively and — when the node
	// budget is exhausted — the result never falls below GTA quality.
	b.bestValue = greedySubset(b.s, b.workers)
	for i, w := range b.workers {
		b.best[i] = b.s.Current[w]
	}
	for _, w := range b.workers {
		b.s.Switch(w, game.Null)
	}

	b.suffixMax = make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		w := b.workers[i]
		top := 0.0
		if len(b.s.Strategies[w]) > 0 {
			top = b.s.Strategies[w][0].Payoff // sorted descending
		}
		b.suffixMax[i] = b.suffixMax[i+1] + top
	}
	b.exhausted = b.dfs(0, 0)
	// Leave the component's workers unassigned; the caller applies b.best.
	for _, w := range b.workers {
		if b.s.Current[w] != game.Null {
			b.s.Switch(w, game.Null)
		}
	}
}

// dfs explores position i's choices given the accumulated value. It returns
// false when the node budget ran out somewhere below.
func (b *bnb) dfs(i int, value float64) bool {
	if b.canceled {
		return false
	}
	b.nodes++
	if b.nodes > b.budget {
		return false
	}
	// Poll cancellation every 8192 nodes: frequent enough that a canceled
	// search stops within microseconds, rare enough to stay off the profile.
	if b.nodes&0x1fff == 0 && b.ctx.Err() != nil {
		b.canceled = true
		return false
	}
	if value+b.suffixMax[i] <= b.bestValue {
		return true // pruned: cannot beat the incumbent
	}
	if i == len(b.workers) {
		if value > b.bestValue {
			b.bestValue = value
			copy(b.best, b.choice)
		}
		return true
	}
	w := b.workers[i]
	complete := true
	// Try the worker's top-K strategies (highest payoff first), then Null.
	limit := len(b.s.Strategies[w])
	if limit > b.topK {
		limit = b.topK
	}
	for si := 0; si < limit; si++ {
		if !b.s.Available(w, si) {
			continue
		}
		b.s.Switch(w, si)
		b.choice[i] = si
		if !b.dfs(i+1, value+b.s.Strategies[w][si].Payoff) {
			complete = false
		}
		b.s.Switch(w, game.Null)
		b.choice[i] = game.Null
		if b.nodes > b.budget {
			return false
		}
	}
	if !b.dfs(i+1, value) {
		complete = false
	}
	return complete
}

// greedySubset runs the greedy assignment over only the given workers and
// returns the total payoff they achieve. Other workers' current strategies
// (if any) still block conflicting points via the shared ownership table.
func greedySubset(s *game.State, workers []int) float64 {
	assigned := make(map[int]bool, len(workers))
	var total float64
	for {
		bestW, bestSi := -1, game.Null
		bestPayoff := 0.0
		for _, w := range workers {
			if assigned[w] {
				continue
			}
			for si := range s.Strategies[w] {
				if !s.Available(w, si) {
					continue
				}
				if p := s.Strategies[w][si].Payoff; p > bestPayoff {
					bestW, bestSi, bestPayoff = w, si, p
				}
				break
			}
		}
		if bestW == -1 {
			break
		}
		s.Switch(bestW, bestSi)
		assigned[bestW] = true
		total += bestPayoff
	}
	return total
}

// localSearch improves the current joint strategy by single-worker switches
// that raise the total payoff, until a local optimum. It is a no-op when the
// branch-and-bound already proved optimality but cheap enough to always run.
func localSearch(s *game.State) {
	for improved := true; improved; {
		improved = false
		for w := range s.Current {
			cur := 0.0
			if s.Current[w] != game.Null {
				cur = s.Payoffs[w]
			}
			for si := range s.Strategies[w] {
				if si == s.Current[w] || !s.Available(w, si) {
					continue
				}
				if s.Strategies[w][si].Payoff > cur+1e-12 {
					s.Switch(w, si)
					improved = true
					break
				}
			}
		}
	}
}
