package assign

import (
	"context"
	"errors"
	"math"
	"testing"

	"fairtask/internal/evo"
	"fairtask/internal/game"
	"fairtask/internal/vdps"
)

func TestExactName(t *testing.T) {
	if (Exact{}).Name() != "EXACT" {
		t.Error("unexpected name")
	}
}

func TestScore(t *testing.T) {
	p := []float64{1, 3}
	// avg 2, diff 2 -> score 2 - lambda*2.
	if got := Score(p, 1); math.Abs(got-0) > 1e-9 {
		t.Errorf("Score(lambda=1) = %g, want 0", got)
	}
	if got := Score(p, 0.5); math.Abs(got-1) > 1e-9 {
		t.Errorf("Score(lambda=0.5) = %g, want 1", got)
	}
}

func TestExactNoWorkers(t *testing.T) {
	in := gridInstance(3, 1, 1, 100, 700)
	in.Workers = nil
	g, err := vdps.Generate(in, vdps.Options{MaxSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Exact{}).Assign(context.Background(), g); err != game.ErrNoWorkers {
		t.Errorf("err = %v, want ErrNoWorkers", err)
	}
}

func TestExactSearchTooLarge(t *testing.T) {
	in := gridInstance(10, 5, 3, 100, 701)
	g := mustGen(t, in)
	if _, err := (Exact{MaxJointStrategies: 10}).Assign(context.Background(), g); !errors.Is(err, ErrSearchTooLarge) {
		t.Errorf("err = %v, want ErrSearchTooLarge", err)
	}
}

// Exact must attain the best scalarized score: verified against an
// independent enumeration.
func TestExactIsOptimal(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := gridInstance(5, 3, 2, 100, 710+seed)
		g := mustGen(t, in)
		res, err := (Exact{}).Assign(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Assignment.Validate(in); err != nil {
			t.Fatalf("exact assignment invalid: %v", err)
		}
		got := Score(res.Summary.Payoffs, 1)
		want := bruteBestScore(g, 1)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("seed %d: exact score %g, brute %g", seed, got, want)
		}
	}
}

// bruteBestScore re-enumerates the joint space with independent bookkeeping.
func bruteBestScore(g *vdps.Generator, lambda float64) float64 {
	s := game.NewState(g)
	n := len(s.Current)
	payoffs := make([]float64, n)
	best := Score(payoffs, lambda)
	var rec func(w int)
	rec = func(w int) {
		if w == n {
			if sc := Score(payoffs, lambda); sc > best {
				best = sc
			}
			return
		}
		payoffs[w] = 0
		rec(w + 1)
		for si := range s.Strategies[w] {
			if !s.Available(w, si) {
				continue
			}
			s.Switch(w, si)
			payoffs[w] = s.Strategies[w][si].Payoff
			rec(w + 1)
			s.Switch(w, game.Null)
			payoffs[w] = 0
		}
	}
	rec(0)
	return best
}

// No heuristic can beat Exact's scalarized score (sanity for both sides).
func TestHeuristicsNeverBeatExact(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		in := gridInstance(6, 3, 2, 100, 720+seed)
		g := mustGen(t, in)
		exact, err := (Exact{}).Assign(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		exactScore := Score(exact.Summary.Payoffs, 1)
		iegt, err := evo.IEGT(context.Background(), g, evo.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if sc := Score(iegt.Summary.Payoffs, 1); sc > exactScore+1e-9 {
			t.Errorf("seed %d: IEGT score %g beats exact %g — exact solver is wrong",
				seed, sc, exactScore)
		}
		gta, err := (GTA{}).Assign(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if sc := Score(gta.Summary.Payoffs, 1); sc > exactScore+1e-9 {
			t.Errorf("seed %d: GTA score %g beats exact %g", seed, sc, exactScore)
		}
	}
}

// Lambda controls the trade-off: with lambda = 0 Exact maximizes average
// payoff only, so its average must be at least the lambda = 1 solution's.
func TestExactLambdaTradeoff(t *testing.T) {
	in := gridInstance(6, 3, 2, 100, 730)
	g := mustGen(t, in)
	payoffOnly, err := (Exact{Lambda: 1e-9}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := (Exact{Lambda: 1}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if payoffOnly.Summary.Average < balanced.Summary.Average-1e-9 {
		t.Errorf("payoff-weighted average %g below balanced %g",
			payoffOnly.Summary.Average, balanced.Summary.Average)
	}
	if balanced.Summary.Difference > payoffOnly.Summary.Difference+1e-9 {
		t.Errorf("balanced diff %g exceeds payoff-weighted diff %g",
			balanced.Summary.Difference, payoffOnly.Summary.Difference)
	}
}
