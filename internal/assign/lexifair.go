package assign

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"fairtask/internal/bitset"
	"fairtask/internal/game"
	"fairtask/internal/model"
	"fairtask/internal/obs"
	"fairtask/internal/payoff"
	"fairtask/internal/vdps"
)

// Lexifair is the egalitarian counterpart of the paper's inequity-aversion
// game: iterative lexicographic minimax assignment. It maximizes the
// smallest worker payoff; among those solutions it maximizes the second
// smallest, and so on until every worker's level is fixed — the classic
// leximin refinement of max-min fairness (Basık et al., Hosseini et al.).
//
// Each level finds the best achievable bottleneck payoff by binary search
// over the distinct payoff thresholds, deciding feasibility of "every
// unfrozen worker earns at least T" with a Hopcroft–Karp bipartite matching
// between workers and VDPS candidates; when the matched candidates overlap
// on delivery points (matching relaxes point-disjointness) an exact
// conflict-aware backtracking search settles the answer. Workers proven
// unable to exceed the bottleneck are frozen at it and the search recurses
// on the rest. When no worker is provably stuck — a genuinely ambiguous
// level — the solver branches over the candidate bottleneck workers and
// keeps the lexicographically best completion, so the result is exact, not
// heuristic. The final level re-selects concrete strategies with a dense
// Hungarian matching that maximizes total reward among the payoff-optimal
// realizations (a pure tie-break: the payoff vector is already fixed).
//
// The search is exact while NodeBudget lasts; exhausting it degrades to the
// best bottleneck vector found so far and reports Converged = false.
type Lexifair struct {
	// NodeBudget caps search nodes (conflict-backtracking steps, feasibility
	// probes and level branches) across the whole solve. Zero means the
	// default of 4e6. The exhaustive differential tests run far below it.
	NodeBudget int
}

// lexDefaultBudget is the default Lexifair.NodeBudget.
const lexDefaultBudget = 4_000_000

// ErrLexMatrix is the sentinel wrapped by every lexifair payoff-matrix
// construction failure: a strategy reference pointing outside the
// generator's candidate or frontier tables, or a non-finite payoff.
// Classify builder errors with errors.Is.
var ErrLexMatrix = errors.New("assign: invalid lexifair payoff matrix")

// lexNull is the witness entry meaning "worker selects no strategy".
const lexNull = int32(game.Null)

// lexMatrix is the worker × VDPS-strategy payoff matrix the Lexifair solver
// searches over: per-worker strategy references sorted by descending payoff
// (rows), with the generator's candidate table as the shared column space —
// column masks give O(words) point-disjointness tests and column rewards
// feed the Hungarian tie-break.
type lexMatrix struct {
	g    *vdps.Generator
	refs [][]vdps.StrategyRef
	// colMask[c] and colReward[c] cache candidate c's point mask and total
	// reward (shared with the generator, read-only).
	colMask   []bitset.Set
	colReward []float64
	points    int
}

// newLexMatrix builds and validates the payoff matrix for every worker of
// the generator's instance. All errors wrap ErrLexMatrix; the builder never
// panics on a corrupt generator, which is what the fuzz harness pins.
func newLexMatrix(g *vdps.Generator) (*lexMatrix, error) {
	in := g.Instance()
	cands := g.Candidates()
	m := &lexMatrix{
		g:         g,
		refs:      make([][]vdps.StrategyRef, len(in.Workers)),
		colMask:   make([]bitset.Set, len(cands)),
		colReward: make([]float64, len(cands)),
		points:    len(in.Points),
	}
	for ci := range cands {
		m.colMask[ci] = cands[ci].Mask
		m.colReward[ci] = cands[ci].Reward
	}
	var sc vdps.StrategyScratch
	for w := range in.Workers {
		refs := g.WorkerStrategies(w, &sc)
		for i, r := range refs {
			if r.Cand < 0 || int(r.Cand) >= len(cands) {
				return nil, fmt.Errorf("%w: worker %d strategy %d references candidate %d of %d",
					ErrLexMatrix, w, i, r.Cand, len(cands))
			}
			if r.Entry < 0 || int(r.Entry) >= len(cands[r.Cand].Frontier) {
				return nil, fmt.Errorf("%w: worker %d strategy %d references frontier entry %d of %d",
					ErrLexMatrix, w, i, r.Entry, len(cands[r.Cand].Frontier))
			}
			if math.IsNaN(r.Payoff) || math.IsInf(r.Payoff, 0) {
				return nil, fmt.Errorf("%w: worker %d strategy %d has non-finite payoff %v",
					ErrLexMatrix, w, i, r.Payoff)
			}
			if i > 0 && refs[i-1].Payoff < r.Payoff {
				return nil, fmt.Errorf("%w: worker %d strategies not sorted by descending payoff at %d",
					ErrLexMatrix, w, i)
			}
		}
		m.refs[w] = refs
	}
	return m, nil
}

// lexReq is one worker's payoff requirement during the level search. The
// zero value is unconstrained (the null strategy satisfies it).
type lexReq struct {
	// min is the required payoff lower bound; <= 0 without pin means free.
	min float64
	// pin freezes the worker at exactly min: a frozen level. min == 0 pins
	// the worker to the null strategy (or any zero-payoff one — equivalent
	// for the vector, and null never blocks anyone).
	pin bool
}

// required reports whether the requirement forces a real (non-null)
// strategy.
func (r lexReq) required() bool { return r.min > 0 }

// allowedRange returns the [lo, hi) slice of worker w's descending-payoff
// strategy list that satisfies the requirement: payoff >= min, narrowed to
// payoff == min when pinned.
func (m *lexMatrix) allowedRange(w int, rq lexReq) (int, int) {
	refs := m.refs[w]
	if !rq.required() {
		return 0, len(refs)
	}
	hi := sort.Search(len(refs), func(i int) bool { return refs[i].Payoff < rq.min })
	lo := 0
	if rq.pin {
		lo = sort.Search(len(refs), func(i int) bool { return refs[i].Payoff <= rq.min })
	}
	return lo, hi
}

// nextAbove returns worker w's smallest strategy payoff strictly above t,
// or ok == false when none exists.
func (m *lexMatrix) nextAbove(w int, t float64) (float64, bool) {
	refs := m.refs[w]
	hi := sort.Search(len(refs), func(i int) bool { return refs[i].Payoff <= t })
	if hi == 0 {
		return 0, false
	}
	return refs[hi-1].Payoff, true
}

// hasPayoff reports whether worker w has a strategy paying exactly t.
func (m *lexMatrix) hasPayoff(w int, t float64) bool {
	lo, hi := m.allowedRange(w, lexReq{min: t, pin: true})
	return lo < hi
}

// lexSolver carries the mutable search state of one Lexifair solve.
type lexSolver struct {
	m      *lexMatrix
	ctx    context.Context
	budget int

	nodes      int
	levels     int
	branches   int
	overBudget bool
	canceled   bool

	// fallback is the witness of the last successful feasibility probe at a
	// completed level — the best bottleneck realization known if the budget
	// runs out mid-search.
	fallback []int32
}

// step charges one search node against the budget and polls cancellation
// every 256 nodes. It reports whether the search may continue.
func (l *lexSolver) step() bool {
	if l.overBudget || l.canceled {
		return false
	}
	l.nodes++
	if l.nodes > l.budget {
		l.overBudget = true
		return false
	}
	if l.nodes&0xff == 0 && l.ctx.Err() != nil {
		l.canceled = true
		return false
	}
	return true
}

// feasible decides whether some point-disjoint joint strategy satisfies
// every requirement, returning a witness choice per worker (lexNull for the
// null strategy). The fast path is a Hopcroft–Karp matching between
// requiring workers and candidate columns — exact refutation (two workers
// can never share a candidate) and, when the matched candidates are
// pairwise point-disjoint, exact confirmation. Overlapping matches fall
// back to conflict-aware backtracking with forward checking, budgeted by
// step. A false result with overBudget set means "unknown", which callers
// treat as infeasible and surface via Converged = false.
func (l *lexSolver) feasible(reqs []lexReq) ([]int32, bool) {
	if !l.step() {
		return nil, false
	}
	m := l.m
	var req []int
	for w := range reqs {
		if reqs[w].required() {
			lo, hi := m.allowedRange(w, reqs[w])
			if lo >= hi {
				return nil, false
			}
			req = append(req, w)
		}
	}
	witness := make([]int32, len(reqs))
	for w := range witness {
		witness[w] = lexNull
	}
	if len(req) == 0 {
		return witness, true
	}

	adj := make([][]int, len(req))
	for i, w := range req {
		lo, hi := m.allowedRange(w, reqs[w])
		cols := make([]int, 0, hi-lo)
		for si := lo; si < hi; si++ {
			cols = append(cols, int(m.refs[w][si].Cand))
		}
		adj[i] = cols
	}
	matchL, size := hopcroftKarp(len(m.colMask), adj)
	if size < len(req) {
		return nil, false
	}

	// Disjointness of the matched candidates: if they never share a point
	// the matching itself is a valid joint strategy.
	used := bitset.New(m.points)
	conflict := false
	for i := range req {
		mask := m.colMask[matchL[i]]
		if used.Intersects(mask) {
			conflict = true
			break
		}
		orInto(used, mask)
	}
	if !conflict {
		for i, w := range req {
			witness[w] = l.strategyFor(w, reqs[w], matchL[i])
		}
		return witness, true
	}
	return l.feasibleBacktrack(reqs, req)
}

// strategyFor returns the index of worker w's first allowed strategy using
// candidate col. It panics only on a matcher bug (col came from w's
// adjacency list).
func (l *lexSolver) strategyFor(w int, rq lexReq, col int) int32 {
	lo, hi := l.m.allowedRange(w, rq)
	for si := lo; si < hi; si++ {
		if int(l.m.refs[w][si].Cand) == col {
			return int32(si)
		}
	}
	panic("assign: lexifair matching selected a disallowed candidate")
}

// feasibleBacktrack is the exact completion of feasible when the matching
// relaxation could not settle disjointness: depth-first search over the
// requiring workers (fewest options first) with point-mask pruning and
// one-step forward checking.
func (l *lexSolver) feasibleBacktrack(reqs []lexReq, req []int) ([]int32, bool) {
	m := l.m
	order := append([]int(nil), req...)
	span := func(w int) int {
		lo, hi := m.allowedRange(w, reqs[w])
		return hi - lo
	}
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := span(order[i]), span(order[j])
		if si != sj {
			return si < sj
		}
		return order[i] < order[j]
	})

	used := bitset.New(m.points)
	choice := make([]int32, len(reqs))
	for w := range choice {
		choice[w] = lexNull
	}
	// hasOption reports whether worker w still has an allowed strategy
	// disjoint from the already claimed points.
	hasOption := func(w int) bool {
		lo, hi := m.allowedRange(w, reqs[w])
		for si := lo; si < hi; si++ {
			if !used.Intersects(m.colMask[m.refs[w][si].Cand]) {
				return true
			}
		}
		return false
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if !l.step() {
			return false
		}
		if k == len(order) {
			return true
		}
		w := order[k]
		lo, hi := m.allowedRange(w, reqs[w])
		for si := lo; si < hi; si++ {
			mask := m.colMask[m.refs[w][si].Cand]
			if used.Intersects(mask) {
				continue
			}
			orInto(used, mask)
			choice[w] = int32(si)
			ok := true
			for _, rest := range order[k+1:] {
				if !hasOption(rest) {
					ok = false
					break
				}
			}
			if ok && rec(k+1) {
				return true
			}
			clearFrom(used, mask)
			choice[w] = lexNull
			if l.overBudget || l.canceled {
				return false
			}
		}
		return false
	}
	if rec(0) {
		return choice, true
	}
	return nil, false
}

// orInto adds every bit of mask to dst in place. dst must be sized to the
// instance's point count, which bounds every candidate mask.
func orInto(dst, mask bitset.Set) {
	for i := range mask {
		dst[i] |= mask[i]
	}
}

// clearFrom removes every bit of mask from dst in place; callers only clear
// masks they previously or'ed in and masks of co-selected candidates are
// disjoint, so this is an exact undo.
func clearFrom(dst, mask bitset.Set) {
	for i := range mask {
		dst[i] &^= mask[i]
	}
}

// withMin returns a copy of reqs demanding at least t from every unfrozen
// worker (t <= 0 leaves them free).
func (l *lexSolver) withMin(reqs []lexReq, unfrozen []int, t float64) []lexReq {
	out := append([]lexReq(nil), reqs...)
	for _, w := range unfrozen {
		out[w] = lexReq{min: t}
	}
	return out
}

// levelValues returns the ascending distinct payoff thresholds relevant to
// the unfrozen workers, always starting with 0 (the all-null floor).
func (l *lexSolver) levelValues(unfrozen []int) []float64 {
	vals := []float64{0}
	for _, w := range unfrozen {
		for _, r := range l.m.refs[w] {
			if r.Payoff > 0 {
				vals = append(vals, r.Payoff)
			}
		}
	}
	sort.Float64s(vals)
	out := vals[:1]
	for _, v := range vals[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// maxMin finds the largest threshold T such that every unfrozen worker can
// earn at least T simultaneously under reqs, by binary search over the
// distinct payoff values (feasibility is monotone: any joint strategy
// meeting a higher threshold meets every lower one). It returns T, a
// witness realizing it, and ok == false when even the frozen requirements
// alone are infeasible (or the budget ran out before the floor probe).
func (l *lexSolver) maxMin(reqs []lexReq, unfrozen []int) (float64, []int32, bool) {
	vals := l.levelValues(unfrozen)
	wit, ok := l.feasible(l.withMin(reqs, unfrozen, vals[0]))
	if !ok {
		return 0, nil, false
	}
	lo, hi := 0, len(vals)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if w2, ok := l.feasible(l.withMin(reqs, unfrozen, vals[mid])); ok {
			lo = mid
			wit = w2
		} else {
			hi = mid - 1
		}
	}
	return vals[lo], wit, true
}

// vectorOf maps a witness to its ascending-sorted payoff vector.
func (l *lexSolver) vectorOf(witness []int32) []float64 {
	out := make([]float64, len(witness))
	for w, si := range witness {
		if si != lexNull {
			out[w] = l.m.refs[w][si].Payoff
		}
	}
	sort.Float64s(out)
	return out
}

// lexLess reports whether ascending-sorted vector a is lexicographically
// smaller than b — i.e. b is the fairer (leximin-greater) outcome.
func lexLess(a, b []float64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// solveLevels runs the freeze-and-recurse loop: per level, find the best
// bottleneck T, freeze every worker that provably cannot exceed it, and
// continue on the rest; when no worker is provably stuck, branch over the
// candidate bottleneck workers and keep the lexicographically best
// completion. It returns the final witness and whether the search completed
// (false after cancellation or budget exhaustion).
func (l *lexSolver) solveLevels(reqs []lexReq, unfrozen []int) ([]int32, bool) {
	var witness []int32
	for len(unfrozen) > 0 {
		t, wit, ok := l.maxMin(reqs, unfrozen)
		if !ok {
			return nil, false
		}
		witness = wit
		l.fallback = wit
		l.levels++

		// Freeze every worker that cannot exceed T while the others hold at
		// least T: any remaining solution pays it exactly T.
		base := l.withMin(reqs, unfrozen, t)
		var saturated []int
		for _, w := range unfrozen {
			next, has := l.m.nextAbove(w, t)
			if !has {
				saturated = append(saturated, w)
				continue
			}
			save := base[w]
			base[w] = lexReq{min: next}
			if _, ok := l.feasible(base); !ok {
				if l.canceled {
					return nil, false
				}
				saturated = append(saturated, w)
			}
			base[w] = save
		}
		if len(saturated) > 0 {
			for _, w := range saturated {
				reqs[w] = lexReq{min: t, pin: true}
			}
			unfrozen = removeAll(unfrozen, saturated)
			continue
		}

		// Ambiguous level: every unfrozen worker could individually exceed
		// T, yet jointly someone must sit at it. Try each candidate
		// bottleneck worker (it needs a strategy paying exactly T, or any
		// worker when T is the null floor) and keep the best completion.
		var bestWit []int32
		var bestVec []float64
		for _, w := range unfrozen {
			if t > 0 && !l.m.hasPayoff(w, t) {
				continue
			}
			if !l.step() {
				break
			}
			l.branches++
			reqsB := append([]lexReq(nil), reqs...)
			reqsB[w] = lexReq{min: t, pin: true}
			witB, okB := l.solveLevels(reqsB, removeAll(unfrozen, []int{w}))
			if !okB {
				if l.canceled {
					return nil, false
				}
				continue
			}
			vecB := l.vectorOf(witB)
			if bestWit == nil || lexLess(bestVec, vecB) {
				bestWit, bestVec = witB, vecB
			}
		}
		if bestWit == nil {
			return nil, false
		}
		return bestWit, true
	}

	if witness == nil {
		wit, ok := l.feasible(reqs)
		if !ok {
			return nil, false
		}
		witness = wit
	}
	return l.realize(reqs, witness), true
}

// removeAll returns items without every member of drop, preserving order.
func removeAll(items, drop []int) []int {
	out := make([]int, 0, len(items))
	for _, v := range items {
		skip := false
		for _, d := range drop {
			if v == d {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, v)
		}
	}
	return out
}

// realize re-selects concrete strategies for the fully frozen requirement
// set, maximizing total reward among the realizations of the (already
// fixed) payoff vector with a dense Hungarian matching over workers ×
// allowed candidates. The matching relaxes point-disjointness, so its
// result is adopted only when the selected candidates are pairwise
// disjoint; otherwise the proven witness stands.
func (l *lexSolver) realize(reqs []lexReq, witness []int32) []int32 {
	m := l.m
	var rows []int
	for w := range reqs {
		if reqs[w].required() && reqs[w].pin {
			rows = append(rows, w)
		}
	}
	if len(rows) == 0 {
		return witness
	}

	// Dense column set: the union of the rows' allowed candidates.
	colIdx := make(map[int]int)
	var cols []int
	for _, w := range rows {
		lo, hi := m.allowedRange(w, reqs[w])
		for si := lo; si < hi; si++ {
			c := int(m.refs[w][si].Cand)
			if _, ok := colIdx[c]; !ok {
				colIdx[c] = len(cols)
				cols = append(cols, c)
			}
		}
	}
	if len(rows) > len(cols) {
		return witness
	}
	var rewardSum float64
	for _, c := range cols {
		rewardSum += m.colReward[c]
	}
	// An allowed cell outweighs any forbidden completion: matched columns
	// are distinct, so a matching's reward never exceeds rewardSum and a
	// bonus above it makes cardinality-on-allowed dominate.
	bonus := rewardSum + 1
	weights := make([][]float64, len(rows))
	for i, w := range rows {
		row := make([]float64, len(cols))
		lo, hi := m.allowedRange(w, reqs[w])
		for si := lo; si < hi; si++ {
			c := int(m.refs[w][si].Cand)
			row[colIdx[c]] = bonus + m.colReward[c]
		}
		weights[i] = row
	}
	rowCol, _ := hungarianMax(weights)
	if rowCol == nil {
		return witness
	}

	out := append([]int32(nil), witness...)
	used := bitset.New(m.points)
	for i, w := range rows {
		c := cols[rowCol[i]]
		if weights[i][rowCol[i]] == 0 {
			return witness // matched a forbidden cell: no all-allowed matching
		}
		mask := m.colMask[c]
		if used.Intersects(mask) {
			return witness // reward-optimal matching overlaps; keep the proven one
		}
		orInto(used, mask)
		out[w] = l.strategyFor(w, reqs[w], c)
	}
	return out
}

// Name implements Assigner.
func (Lexifair) Name() string { return "LEXIFAIR" }

// Assign implements Assigner.
func (lx Lexifair) Assign(ctx context.Context, g *vdps.Generator) (*game.Result, error) {
	in := g.Instance()
	if len(in.Workers) == 0 {
		return nil, game.ErrNoWorkers
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := obs.SpanFromContext(ctx)
	msp := sp.Child("lexifair.matrix")
	m, err := newLexMatrix(g)
	msp.End()
	if err != nil {
		return nil, err
	}
	budget := lx.NodeBudget
	if budget <= 0 {
		budget = lexDefaultBudget
	}
	l := &lexSolver{m: m, ctx: ctx, budget: budget}
	reqs := make([]lexReq, len(in.Workers))
	unfrozen := make([]int, len(in.Workers))
	for w := range unfrozen {
		unfrozen[w] = w
	}
	lsp := sp.Child("lexifair.levels")
	witness, ok := l.solveLevels(reqs, unfrozen)
	lsp.SetAttrInt("levels", l.levels)
	lsp.SetAttrInt("nodes", l.nodes)
	lsp.SetAttrInt("branches", l.branches)
	lsp.End()
	if l.canceled {
		return nil, ctx.Err()
	}
	if !ok {
		// Budget exhausted: serve the best bottleneck realization reached.
		witness = l.fallback
		if witness == nil {
			witness = make([]int32, len(in.Workers))
			for w := range witness {
				witness[w] = lexNull
			}
		}
	}

	a := model.NewAssignment(len(in.Workers))
	for w, si := range witness {
		if si != lexNull {
			a.Routes[w] = g.RefSeq(m.refs[w][si]).Clone()
		}
	}
	return &game.Result{
		Assignment: a,
		Summary:    payoff.Summarize(in, a),
		Iterations: l.levels,
		Converged:  ok && !l.overBudget,
	}, nil
}

// VerifyLexifair is the independent leximin certificate used by the audit
// layer: it re-solves every frozen level from the instance alone and checks
// that the assignment's payoff vector is level-wise unimprovable — at each
// level, with every poorer worker held at its achieved payoff, the minimum
// over the remaining workers cannot be raised, and every worker frozen at
// the level is saturated (lifting it strictly above the level while
// flooring everyone else at their achieved payoff is infeasible, so the
// assignment is not pointwise dominated). nodeBudget caps the verifier's
// own search (0 = the solver default); a nil error certifies the
// assignment.
func VerifyLexifair(ctx context.Context, g *vdps.Generator, a *model.Assignment, nodeBudget int) error {
	in := g.Instance()
	if len(a.Routes) != len(in.Workers) {
		return fmt.Errorf("assign: lexifair certificate: %d routes for %d workers",
			len(a.Routes), len(in.Workers))
	}
	m, err := newLexMatrix(g)
	if err != nil {
		return err
	}
	achieved := make([]float64, len(in.Workers))
	for w, route := range a.Routes {
		if len(route) == 0 {
			continue
		}
		found := false
		for _, r := range m.refs[w] {
			if routesMatch(g.RefSeq(r), route) {
				achieved[w] = r.Payoff
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("assign: lexifair certificate: route %v not in worker %d's strategy space", route, w)
		}
	}
	if nodeBudget <= 0 {
		nodeBudget = lexDefaultBudget
	}
	l := &lexSolver{m: m, ctx: ctx, budget: nodeBudget}
	reqs := make([]lexReq, len(in.Workers))
	unfrozen := make([]int, len(in.Workers))
	for w := range unfrozen {
		unfrozen[w] = w
	}
	for len(unfrozen) > 0 {
		t, _, ok := l.maxMin(reqs, unfrozen)
		if l.canceled {
			return ctx.Err()
		}
		if !ok {
			return fmt.Errorf("assign: lexifair certificate: frozen levels are jointly infeasible")
		}
		minAch := math.Inf(1)
		for _, w := range unfrozen {
			if achieved[w] < minAch {
				minAch = achieved[w]
			}
		}
		if minAch != t {
			return fmt.Errorf(
				"assign: lexifair certificate: unfrozen minimum is %v but an independent re-solve achieves %v",
				minAch, t)
		}
		// Every worker at this level must be saturated: with all other
		// unfrozen workers floored at their achieved payoffs, it must be
		// infeasible to lift the worker strictly above t. A feasible lift
		// means the assignment is pointwise dominated — some worker was
		// left at the bottleneck that a better realization raises. Without
		// this probe an all-null assignment would certify on any instance
		// whose true bottleneck is 0.
		var level []int
		for _, w := range unfrozen {
			if achieved[w] != t {
				continue
			}
			if up, hasUp := l.m.nextAbove(w, t); hasUp {
				probe := append([]lexReq(nil), reqs...)
				for _, u := range unfrozen {
					if u != w {
						probe[u] = lexReq{min: achieved[u]}
					}
				}
				probe[w] = lexReq{min: up}
				if _, liftable := l.feasible(probe); liftable {
					return fmt.Errorf(
						"assign: lexifair certificate: worker %d is held at %v but %v is achievable without lowering anyone",
						w, t, up)
				}
				if l.canceled {
					return ctx.Err()
				}
			}
			level = append(level, w)
		}
		for _, w := range level {
			reqs[w] = lexReq{min: t, pin: true}
		}
		unfrozen = removeAll(unfrozen, level)
	}
	if l.overBudget {
		return fmt.Errorf("assign: lexifair certificate: verification budget exhausted")
	}
	return nil
}

// routesMatch reports whether two visiting sequences are identical.
func routesMatch(a, b model.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
