package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestEuclideanDistance(t *testing.T) {
	e := Euclidean{}
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 2}, 1},
		{Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, c := range cases {
		if got := e.Distance(c.a, c.b); !almostEqual(got, c.want) {
			t.Errorf("Distance(%v, %v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestManhattanDistance(t *testing.T) {
	m := Manhattan{}
	if got := m.Distance(Point{0, 0}, Point{3, 4}); !almostEqual(got, 7) {
		t.Errorf("Manhattan distance = %g, want 7", got)
	}
	if got := m.Distance(Point{-1, 2}, Point{-1, 2}); got != 0 {
		t.Errorf("Manhattan self-distance = %g, want 0", got)
	}
}

func TestMetricNames(t *testing.T) {
	if name := (Euclidean{}).Name(); name != "euclidean" {
		t.Errorf("Euclidean name = %q", name)
	}
	if name := (Manhattan{}).Name(); name != "manhattan" {
		t.Errorf("Manhattan name = %q", name)
	}
}

// Property: both metrics are symmetric and non-negative.
func TestMetricProperties(t *testing.T) {
	for _, m := range []Metric{Euclidean{}, Manhattan{}} {
		m := m
		symmetric := func(ax, ay, bx, by float64) bool {
			a, b := Point{ax, ay}, Point{bx, by}
			d1, d2 := m.Distance(a, b), m.Distance(b, a)
			return d1 == d2 && d1 >= 0
		}
		if err := quick.Check(symmetric, nil); err != nil {
			t.Errorf("%s: symmetry/non-negativity violated: %v", m.Name(), err)
		}
	}
}

// Property: triangle inequality holds for both metrics (within float slack).
func TestMetricTriangleInequality(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	for _, m := range []Metric{Euclidean{}, Manhattan{}} {
		m := m
		tri := func(ax, ay, bx, by, cx, cy int16) bool {
			a := Point{float64(ax), float64(ay)}
			b := Point{float64(bx), float64(by)}
			c := Point{float64(cx), float64(cy)}
			return m.Distance(a, c) <= m.Distance(a, b)+m.Distance(b, c)+1e-9
		}
		if err := quick.Check(tri, cfg); err != nil {
			t.Errorf("%s: triangle inequality violated: %v", m.Name(), err)
		}
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Point{3, 4}).Norm(); !almostEqual(got, 5) {
		t.Errorf("Norm = %g", got)
	}
}

func TestPointIsFinite(t *testing.T) {
	if !(Point{1, 2}).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	for _, p := range []Point{
		{math.NaN(), 0}, {0, math.NaN()},
		{math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if p.IsFinite() {
			t.Errorf("%v reported finite", p)
		}
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1.5, -2}).String(); got != "(1.5, -2)" {
		t.Errorf("String = %q", got)
	}
}

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(Point{5, 1}, Point{2, 7})
	if r.Min != (Point{2, 1}) || r.Max != (Point{5, 7}) {
		t.Errorf("NewRect = %+v", r)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	if !r.Contains(Point{5, 5}) || !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 10}) {
		t.Error("Rect should contain interior and boundary points")
	}
	if r.Contains(Point{11, 5}) || r.Contains(Point{5, -1}) {
		t.Error("Rect should not contain exterior points")
	}
}

func TestRectGeometry(t *testing.T) {
	r := NewRect(Point{1, 2}, Point{5, 8})
	if !almostEqual(r.Width(), 4) || !almostEqual(r.Height(), 6) {
		t.Errorf("Width/Height = %g/%g", r.Width(), r.Height())
	}
	if c := r.Center(); c != (Point{3, 5}) {
		t.Errorf("Center = %v", c)
	}
}

func TestBounds(t *testing.T) {
	if got := Bounds(nil); got != (Rect{}) {
		t.Errorf("Bounds(nil) = %+v", got)
	}
	pts := []Point{{1, 5}, {-2, 3}, {4, 0}}
	r := Bounds(pts)
	if r.Min != (Point{-2, 0}) || r.Max != (Point{4, 5}) {
		t.Errorf("Bounds = %+v", r)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("Bounds does not contain %v", p)
		}
	}
}

func TestCentroid(t *testing.T) {
	if _, ok := Centroid(nil); ok {
		t.Error("Centroid(nil) should report !ok")
	}
	c, ok := Centroid([]Point{{0, 0}, {2, 0}, {1, 3}})
	if !ok || !almostEqual(c.X, 1) || !almostEqual(c.Y, 1) {
		t.Errorf("Centroid = %v ok=%v", c, ok)
	}
}

// Property: the centroid always lies inside the bounding box of its points.
func TestCentroidInsideBounds(t *testing.T) {
	f := func(raw []struct{ X, Y int8 }) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Point{float64(r.X), float64(r.Y)}
		}
		c, ok := Centroid(pts)
		if !ok {
			return false
		}
		b := Bounds(pts)
		const eps = 1e-9
		return c.X >= b.Min.X-eps && c.X <= b.Max.X+eps &&
			c.Y >= b.Min.Y-eps && c.Y <= b.Max.Y+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
