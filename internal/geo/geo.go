// Package geo provides the planar geometry primitives used throughout the
// fairtask library: points, distance metrics, bounding boxes and centroids.
//
// The paper models worker and delivery-point locations as points in a 2D
// Euclidean plane (kilometres); all travel distances derive from a Metric.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the 2D plane. Coordinates are in kilometres unless a
// caller documents otherwise.
type Point struct {
	X, Y float64
}

// String renders the point as "(x, y)" with short float formatting.
func (p Point) String() string {
	return fmt.Sprintf("(%g, %g)", p.X, p.Y)
}

// Add returns the component-wise sum p + q.
func (p Point) Add(q Point) Point {
	return Point{p.X + q.X, p.Y + q.Y}
}

// Sub returns the component-wise difference p - q.
func (p Point) Sub(q Point) Point {
	return Point{p.X - q.X, p.Y - q.Y}
}

// Scale returns the point scaled by f.
func (p Point) Scale(f float64) Point {
	return Point{p.X * f, p.Y * f}
}

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 {
	return math.Hypot(p.X, p.Y)
}

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// Metric computes the travel distance between two locations.
// Implementations must be symmetric, non-negative, and zero on identical
// points; the library's pruning logic additionally assumes the triangle
// inequality holds.
type Metric interface {
	Distance(a, b Point) float64
	// Name identifies the metric in logs and experiment output.
	Name() string
}

// Euclidean is the straight-line distance metric used by the paper.
type Euclidean struct{}

// Distance returns sqrt((ax-bx)^2 + (ay-by)^2).
func (Euclidean) Distance(a, b Point) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Manhattan is the L1 (city-block) metric, useful for grid-like road
// networks. It is provided as an alternative travel substrate; the paper's
// experiments use Euclidean.
type Manhattan struct{}

// Distance returns |ax-bx| + |ay-by|.
func (Manhattan) Distance(a, b Point) float64 {
	return math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
}

// Name implements Metric.
func (Manhattan) Name() string { return "manhattan" }

// Rect is an axis-aligned bounding box. Min is the lower-left corner and Max
// the upper-right corner; a Rect with Min == Max is a degenerate point box.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanned by the two corners in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the horizontal extent of the rectangle.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of the rectangle.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Expand grows the rectangle to include p and returns the result.
func (r Rect) Expand(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// Bounds returns the bounding box of the points, or a zero Rect when the
// slice is empty.
func Bounds(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r = r.Expand(p)
	}
	return r
}

// Centroid returns the arithmetic mean of the points. It is the rule the
// paper uses to place the gMission distribution center
// (dc.l = (mean x, mean y) over all task locations). The second return value
// is false when pts is empty.
func Centroid(pts []Point) (Point, bool) {
	if len(pts) == 0 {
		return Point{}, false
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	n := float64(len(pts))
	return Point{c.X / n, c.Y / n}, true
}

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }
