// Package render draws problem instances and assignments as standalone SVG
// documents: the distribution center, delivery points sized by task count,
// workers, and per-worker route polylines in distinct colors. Useful for
// eyeballing assignments and for documentation.
package render

import (
	"fmt"
	"io"
	"math"
	"strings"

	"fairtask/internal/geo"
	"fairtask/internal/model"
)

// Options configure SVG rendering.
type Options struct {
	// Width is the SVG canvas width in pixels; height follows the data
	// aspect ratio. Zero means 640.
	Width int
	// Margin is the canvas margin in pixels. Zero means 24.
	Margin int
	// ShowLabels draws point and worker IDs.
	ShowLabels bool
}

// palette holds the route colors, cycled per worker.
var palette = []string{
	"#1b6ca8", "#c0392b", "#27ae60", "#8e44ad", "#d35400",
	"#16a085", "#7f8c8d", "#2c3e50", "#e67e22", "#2980b9",
}

// SVG writes the instance — and, when a is non-nil, its routes — as an SVG
// document.
func SVG(w io.Writer, in *model.Instance, a *model.Assignment, opt Options) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if a != nil {
		if err := a.Validate(in); err != nil {
			return err
		}
	}
	width := opt.Width
	if width <= 0 {
		width = 640
	}
	margin := opt.Margin
	if margin <= 0 {
		margin = 24
	}

	pts := collectPoints(in)
	box := geo.Bounds(pts)
	if box.Width() == 0 {
		box.Max.X += 1
		box.Min.X -= 1
	}
	if box.Height() == 0 {
		box.Max.Y += 1
		box.Min.Y -= 1
	}
	inner := float64(width - 2*margin)
	scale := inner / box.Width()
	height := int(box.Height()*scale) + 2*margin

	// Project model coordinates to canvas pixels (SVG y grows downward).
	px := func(p geo.Point) (float64, float64) {
		x := float64(margin) + (p.X-box.Min.X)*scale
		y := float64(height-margin) - (p.Y-box.Min.Y)*scale
		return x, y
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="#fcfcf8"/>` + "\n")

	// Routes first, under the markers.
	if a != nil {
		for wi, route := range a.Routes {
			if len(route) == 0 {
				continue
			}
			color := palette[wi%len(palette)]
			var path strings.Builder
			x, y := px(in.Workers[wi].Loc)
			fmt.Fprintf(&path, "M%.1f,%.1f", x, y)
			x, y = px(in.Center)
			fmt.Fprintf(&path, " L%.1f,%.1f", x, y)
			for _, p := range route {
				x, y = px(in.Points[p].Loc)
				fmt.Fprintf(&path, " L%.1f,%.1f", x, y)
			}
			fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.6" stroke-opacity="0.85"/>`+"\n",
				path.String(), color)
		}
	}

	// Delivery points: circles with radius scaled by task count.
	for i := range in.Points {
		dp := &in.Points[i]
		x, y := px(dp.Loc)
		r := 3 + 1.5*math.Sqrt(float64(len(dp.Tasks)))
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#b8b8b0" stroke="#666" stroke-width="0.6"/>`+"\n",
			x, y, r)
		if opt.ShowLabels {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" fill="#333">dp%d</text>`+"\n",
				x+r+2, y+3, dp.ID)
		}
	}

	// Workers: triangles in their route color.
	for wi := range in.Workers {
		x, y := px(in.Workers[wi].Loc)
		color := palette[wi%len(palette)]
		fmt.Fprintf(&b, `<path d="M%.1f,%.1f l-5,9 l10,0 z" fill="%s"/>`+"\n",
			x, y-5, color)
		if opt.ShowLabels {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" fill="%s">w%d</text>`+"\n",
				x+7, y+3, color, in.Workers[wi].ID)
		}
	}

	// Distribution center: a filled square.
	cx, cy := px(in.Center)
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="12" height="12" fill="#222"/>`+"\n",
		cx-6, cy-6)
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="#222">dc</text>`+"\n",
		cx+9, cy+4)

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// collectPoints gathers every drawable location for bounding-box purposes.
func collectPoints(in *model.Instance) []geo.Point {
	pts := []geo.Point{in.Center}
	for i := range in.Points {
		pts = append(pts, in.Points[i].Loc)
	}
	for i := range in.Workers {
		pts = append(pts, in.Workers[i].Loc)
	}
	return pts
}
