package render

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairtask/internal/dataset"
	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/travel"
)

func renderInstance(t *testing.T) *model.Instance {
	t.Helper()
	in, err := dataset.GenerateGM(dataset.GMConfig{
		Seed: 1, Tasks: 40, Workers: 4, DeliveryPoints: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSVGInstanceOnly(t *testing.T) {
	in := renderInstance(t)
	var buf bytes.Buffer
	if err := SVG(&buf, in, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a well-formed SVG document")
	}
	if strings.Count(out, "<circle") != len(in.Points) {
		t.Errorf("circles = %d, want %d delivery points",
			strings.Count(out, "<circle"), len(in.Points))
	}
	// One triangle path per worker, no route paths.
	if got := strings.Count(out, "<path"); got != len(in.Workers) {
		t.Errorf("paths = %d, want %d worker markers", got, len(in.Workers))
	}
	if !strings.Contains(out, ">dc</text>") {
		t.Error("distribution center label missing")
	}
}

func TestSVGWithRoutes(t *testing.T) {
	in := renderInstance(t)
	a := model.NewAssignment(len(in.Workers))
	for pt := range in.Points {
		if in.RouteFeasible(0, model.Route{pt}) {
			a.Routes[0] = model.Route{pt}
			break
		}
	}
	if len(a.Routes[0]) == 0 {
		t.Skip("no feasible singleton")
	}
	var buf bytes.Buffer
	if err := SVG(&buf, in, a, Options{ShowLabels: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Worker markers + one route polyline.
	if got := strings.Count(out, "<path"); got != len(in.Workers)+1 {
		t.Errorf("paths = %d, want %d", got, len(in.Workers)+1)
	}
	if !strings.Contains(out, "dp0") || !strings.Contains(out, "w0") {
		t.Error("labels missing despite ShowLabels")
	}
}

func TestSVGRejectsInvalid(t *testing.T) {
	in := renderInstance(t)
	bad := model.NewAssignment(len(in.Workers))
	bad.Routes[0] = model.Route{999}
	var buf bytes.Buffer
	if err := SVG(&buf, in, bad, Options{}); err == nil {
		t.Error("invalid assignment accepted")
	}
	in.Workers[0].MaxDP = -1
	if err := SVG(&buf, in, nil, Options{}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestSVGDegenerateGeometry(t *testing.T) {
	// All entities at one point: bounding box is degenerate but rendering
	// must still succeed.
	in := renderInstance(t)
	for i := range in.Points {
		in.Points[i].Loc = in.Center
	}
	for i := range in.Workers {
		in.Workers[i].Loc = in.Center
	}
	var buf bytes.Buffer
	if err := SVG(&buf, in, nil, Options{Width: 200}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `width="200"`) {
		t.Error("custom width not honored")
	}
}

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestSVGGolden pins the exact SVG output for a fixed tiny scene.
func TestSVGGolden(t *testing.T) {
	in := &model.Instance{
		Center: geo.Pt(1, 1),
		Travel: travel.MustModel(geo.Euclidean{}, 1),
		Points: []model.DeliveryPoint{
			{ID: 0, Loc: geo.Pt(0, 0), Tasks: []model.Task{{ID: 0, Point: 0, Expiry: 10, Reward: 1}}},
			{ID: 1, Loc: geo.Pt(2, 2), Tasks: []model.Task{{ID: 1, Point: 1, Expiry: 10, Reward: 1}}},
		},
		Workers: []model.Worker{{ID: 0, Loc: geo.Pt(0, 2)}},
	}
	a := model.NewAssignment(1)
	a.Routes[0] = model.Route{0, 1}
	var buf bytes.Buffer
	if err := SVG(&buf, in, a, Options{Width: 200, ShowLabels: true}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "tiny.golden.svg")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if buf.String() != string(want) {
		t.Errorf("SVG output changed; run with -update if intended")
	}
}
