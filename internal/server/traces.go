package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"fairtask/internal/obs"
)

// TraceSummary is the wire form of one retained trace at GET /debug/traces:
// identity, total duration, a per-phase breakdown, and (with ?spans=1) the
// raw span records.
type TraceSummary struct {
	// Name labels the traced operation ("POST /solve", "job <id>").
	Name string `json:"name"`
	// Start is the trace's wall-clock start.
	Start time.Time `json:"start"`
	// DurationMS is the span coverage of the trace in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// SpanCount is the number of recorded spans.
	SpanCount int `json:"span_count"`
	// Phases is the per-phase aggregation, ordered by descending self time.
	Phases []PhaseSummary `json:"phases"`
	// Spans holds the raw records when requested with ?spans=1.
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}

// PhaseSummary is one row of a trace's per-phase breakdown in milliseconds.
type PhaseSummary struct {
	// Name is the phase (span) name.
	Name string `json:"name"`
	// Count is how many spans had this name.
	Count int `json:"count"`
	// TotalMS and SelfMS are the summed and self time of the phase.
	TotalMS float64 `json:"total_ms"`
	SelfMS  float64 `json:"self_ms"`
	// P50MS and P99MS are per-span duration quantiles.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// TracesResponse is the JSON body of GET /debug/traces.
type TracesResponse struct {
	// Total counts every trace ever recorded, including ones evicted from
	// the ring.
	Total uint64 `json:"total"`
	// Traces lists the retained traces, newest first.
	Traces []TraceSummary `json:"traces"`
}

// debugTraces serves the recent-trace ring: GET /debug/traces returns the
// retained traces newest first with per-phase breakdowns; ?spans=1 includes
// raw span records, ?n=5 limits the count. 404 when tracing is disabled.
func (h *Handler) debugTraces(w http.ResponseWriter, r *http.Request) {
	if h.Traces == nil {
		http.NotFound(w, r)
		return
	}
	traces := h.Traces.Snapshot()
	if s := r.URL.Query().Get("n"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(traces) {
			traces = traces[:n]
		}
	}
	withSpans := false
	if s := r.URL.Query().Get("spans"); s != "" {
		withSpans, _ = strconv.ParseBool(s)
	}
	resp := TracesResponse{Total: h.Traces.Total(), Traces: []TraceSummary{}}
	for _, tr := range traces {
		ts := TraceSummary{
			Name:       tr.Name,
			Start:      tr.Start,
			DurationMS: durMS(tr.Duration()),
			SpanCount:  len(tr.Spans),
			Phases:     []PhaseSummary{},
		}
		for _, ph := range obs.Breakdown(tr) {
			ts.Phases = append(ts.Phases, PhaseSummary{
				Name:    ph.Name,
				Count:   ph.Count,
				TotalMS: durMS(ph.Total),
				SelfMS:  durMS(ph.Self),
				P50MS:   durMS(ph.P50),
				P99MS:   durMS(ph.P99),
			})
		}
		if withSpans {
			ts.Spans = tr.Spans
		}
		resp.Traces = append(resp.Traces, ts)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// durMS converts a duration to fractional milliseconds for JSON output.
func durMS(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}
