package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"fairtask/internal/dataset"
	"fairtask/internal/model"
	"fairtask/internal/stream"
)

// streamCSV returns a single-center GM problem in the CSV wire schema.
func streamCSV(t *testing.T, seed int64) ([]byte, *model.Instance) {
	t.Helper()
	in, err := dataset.GenerateGM(dataset.GMConfig{
		Seed: seed, Tasks: 30, Workers: 6, DeliveryPoints: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	p := &model.Problem{Instances: []model.Instance{*in}}
	if err := dataset.WriteCSV(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), in
}

func postStreamInstance(t *testing.T, url string, body []byte) StreamStateResponse {
	t.Helper()
	resp, err := http.Post(url+"/stream/instance?alg=FGT&seed=5&eps=1.5", "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream init status = %d: %s", resp.StatusCode, raw)
	}
	var st StreamStateResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func postEvents(t *testing.T, url string, ds []stream.Delta) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/stream/events", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

// TestStreamEndpoints drives the full HTTP lifecycle: instance upload, a
// delta batch, and a state read that reflects the committed sequence.
func TestStreamEndpoints(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()
	csv, in := streamCSV(t, 31)

	st := postStreamInstance(t, srv.URL, csv)
	if st.Seq != 0 || st.Workers != 6 || !st.Converged {
		t.Fatalf("unexpected initial state: %+v", st)
	}

	ds := []stream.Delta{
		{Seq: 1, Kind: stream.RewardChanged, TaskID: in.Points[0].Tasks[0].ID, Reward: 2},
		{Seq: 2, Kind: stream.TaskArrived, TaskID: 9000, Point: 1, Expiry: 100, Reward: 1},
	}
	resp, raw := postEvents(t, srv.URL, ds)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d: %s", resp.StatusCode, raw)
	}
	var ar StreamApplyResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Seq != 2 || ar.Applied != 2 {
		t.Fatalf("apply response %+v", ar)
	}
	if ar.Resolve == "" || !ar.Converged {
		t.Fatalf("apply response missing resolve/convergence: %+v", ar)
	}

	resp2, err := http.Get(srv.URL + "/stream/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st2 StreamStateResponse
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if st2.Seq != 2 || st2.Tasks != in.TaskCount()+1 {
		t.Fatalf("state after events: %+v", st2)
	}
	if st2.Algorithm != "FGT" {
		t.Fatalf("algorithm = %q", st2.Algorithm)
	}
}

// TestStreamContinuation exercises ?continue=1 on the instance upload: a
// reprice delta should resolve via an audited continuation and report the
// dynamics rounds it saved; a malformed value is rejected up front.
func TestStreamContinuation(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()
	csv, in := streamCSV(t, 35)

	resp, err := http.Post(srv.URL+"/stream/instance?alg=FGT&seed=5&eps=1.5&continue=1",
		"text/csv", bytes.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream init status = %d: %s", resp.StatusCode, raw)
	}

	ds := []stream.Delta{
		{Seq: 1, Kind: stream.RewardChanged, TaskID: in.Points[0].Tasks[0].ID, Reward: 3},
	}
	eresp, raw := postEvents(t, srv.URL, ds)
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d: %s", eresp.StatusCode, raw)
	}
	var ar StreamApplyResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Resolve != stream.ResolveContinuation {
		t.Fatalf("resolve = %q, want %q (response %+v)", ar.Resolve, stream.ResolveContinuation, ar)
	}
	if ar.AuditOK == nil || !*ar.AuditOK {
		t.Fatalf("continuation resolve must carry a passing audit: %+v", ar)
	}
	if ar.IterationsSaved < 0 {
		t.Fatalf("iterations_saved = %d", ar.IterationsSaved)
	}

	resp2, err := http.Post(srv.URL+"/stream/instance?continue=maybe", "text/csv", bytes.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad continue value status = %d", resp2.StatusCode)
	}
}

// TestStreamEventErrors pins the error contract: 404 before an instance is
// installed, 409 for stale sequence numbers, 422 for unknown entities, and
// 400 for malformed JSON.
func TestStreamEventErrors(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()

	resp, raw := postEvents(t, srv.URL, []stream.Delta{{Seq: 1, Kind: stream.RewardChanged}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-instance events status = %d: %s", resp.StatusCode, raw)
	}
	if resp, err := http.Get(srv.URL + "/stream/state"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("pre-instance state status = %d", resp.StatusCode)
		}
	}

	csv, in := streamCSV(t, 32)
	postStreamInstance(t, srv.URL, csv)

	good := stream.Delta{Seq: 1, Kind: stream.RewardChanged, TaskID: in.Points[0].Tasks[0].ID, Reward: 2}
	if resp, raw := postEvents(t, srv.URL, []stream.Delta{good}); resp.StatusCode != http.StatusOK {
		t.Fatalf("good delta status = %d: %s", resp.StatusCode, raw)
	}
	// Replaying the same sequence number is a conflict, repeatably.
	for i := 0; i < 2; i++ {
		if resp, _ := postEvents(t, srv.URL, []stream.Delta{good}); resp.StatusCode != http.StatusConflict {
			t.Fatalf("stale seq status = %d, want 409", resp.StatusCode)
		}
	}
	// Unknown task: rejected without consuming the sequence number.
	bad := stream.Delta{Seq: 2, Kind: stream.RewardChanged, TaskID: 999999, Reward: 2}
	if resp, _ := postEvents(t, srv.URL, []stream.Delta{bad}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown task status = %d, want 422", resp.StatusCode)
	}
	good.Seq = 2
	good.Reward = 3
	if resp, raw := postEvents(t, srv.URL, []stream.Delta{good}); resp.StatusCode != http.StatusOK {
		t.Fatalf("seq 2 after rejection status = %d: %s", resp.StatusCode, raw)
	}

	resp2, err := http.Post(srv.URL+"/stream/events", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status = %d, want 400", resp2.StatusCode)
	}

	// A typoed field name ("task" for "task_id") must be rejected, not
	// silently decoded as task 0.
	resp3, err := http.Post(srv.URL+"/stream/events", "application/json",
		strings.NewReader(`[{"seq":3,"kind":"reward_changed","task":1,"reward":2}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status = %d, want 400", resp3.StatusCode)
	}
}

// TestStreamInstanceErrors pins upload validation.
func TestStreamInstanceErrors(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/stream/instance", "text/csv", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk CSV status = %d, want 400", resp.StatusCode)
	}

	// Multi-center problems are not streamable.
	p, err := dataset.GenerateSYN(dataset.SYNConfig{
		Seed: 1, Centers: 2, Tasks: 20, Workers: 6, DeliveryPoints: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, p); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/stream/instance", "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("multi-center status = %d, want 400", resp.StatusCode)
	}

	csv, _ := streamCSV(t, 33)
	resp, err = http.Post(srv.URL+"/stream/instance?seed=x", "text/csv", bytes.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad seed status = %d, want 400", resp.StatusCode)
	}
}

// TestStreamConcurrentPosts hammers /stream/events from many goroutines.
// Exactly one post per sequence number wins; every loser gets 409 and the
// final state is coherent — this is the -race exercise for the engine mutex.
func TestStreamConcurrentPosts(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()
	csv, in := streamCSV(t, 34)
	postStreamInstance(t, srv.URL, csv)

	const seqs = 8
	const racers = 4
	var wg sync.WaitGroup
	wins := make([]int, seqs)
	var mu sync.Mutex
	for seq := 1; seq <= seqs; seq++ {
		// All racers for seq N start only after N-1 is committed, so every
		// sequence number is contested but the stream still advances.
		var won bool
		for r := 0; r < racers; r++ {
			wg.Add(1)
			go func(seq, r int) {
				defer wg.Done()
				d := stream.Delta{
					Seq:    uint64(seq),
					Kind:   stream.RewardChanged,
					TaskID: in.Points[0].Tasks[0].ID,
					Reward: float64(seq) + float64(r)/10,
				}
				body, _ := json.Marshal([]stream.Delta{d})
				resp, err := http.Post(srv.URL+"/stream/events", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				defer mu.Unlock()
				switch resp.StatusCode {
				case http.StatusOK:
					wins[seq-1]++
				case http.StatusConflict:
				default:
					t.Errorf("seq %d racer %d: status %d", seq, r, resp.StatusCode)
				}
			}(seq, r)
		}
		wg.Wait()
		mu.Lock()
		won = wins[seq-1] == 1
		mu.Unlock()
		if !won {
			t.Fatalf("seq %d won %d times, want exactly 1", seq, wins[seq-1])
		}
	}

	resp, err := http.Get(srv.URL + "/stream/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StreamStateResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Seq != seqs || st.Applied != seqs {
		t.Fatalf("final state %+v, want seq=applied=%d", st, seqs)
	}
}

// TestStreamMetricsPreRegistered checks the serve-startup contract: the
// stream and online metric families appear on the very first scrape, before
// any streaming traffic.
func TestStreamMetricsPreRegistered(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, family := range []string{
		"fta_stream_deltas_total", "fta_stream_rejected_total", "fta_stream_apply_seconds",
		"fta_stream_resolve_seconds", "fta_stream_workers_touched", "fta_stream_resolves_total",
		"fta_stream_seq", "fta_online_assigned_total", "fta_online_rejected_total",
	} {
		if !bytes.Contains(raw, []byte(family)) {
			t.Errorf("first scrape missing %s", family)
		}
	}
}
