package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"fairtask/internal/dataset"
	"fairtask/internal/obs"
	"fairtask/internal/stream"
	"fairtask/internal/vdps"
)

// StreamStateResponse is the JSON body of GET /stream/state, also returned
// by POST /stream/instance after the initial solve.
type StreamStateResponse struct {
	Algorithm  string  `json:"algorithm"`
	Seq        uint64  `json:"seq"`
	Applied    uint64  `json:"applied"`
	Workers    int     `json:"workers"`
	Tasks      int     `json:"tasks"`
	Assigned   int     `json:"assigned"`
	Difference float64 `json:"payoff_difference"`
	Average    float64 `json:"average_payoff"`
	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
	Degraded   string  `json:"degraded,omitempty"`
}

// StreamApplyResponse is the JSON body of POST /stream/events.
type StreamApplyResponse struct {
	Seq             uint64  `json:"seq"`
	Applied         int     `json:"applied"`
	Resolve         string  `json:"resolve"`
	WorkersTouched  int     `json:"workers_touched"`
	Difference      float64 `json:"payoff_difference"`
	Average         float64 `json:"average_payoff"`
	Iterations      int     `json:"iterations"`
	Converged       bool    `json:"converged"`
	Degraded        string  `json:"degraded,omitempty"`
	AuditOK         *bool   `json:"audit_ok,omitempty"`
	IterationsSaved int     `json:"iterations_saved,omitempty"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// streamInstance handles POST /stream/instance: a single-center problem CSV
// creates (or replaces) the streaming engine, cold-solving it once; every
// later delta is applied incrementally via POST /stream/events.
func (h *Handler) streamInstance(w http.ResponseWriter, r *http.Request) {
	maxBody := h.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)

	q := r.URL.Query()
	alg := q.Get("alg")
	if alg == "" {
		alg = "FGT"
	}
	seed := int64(1)
	if s := q.Get("seed"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			errorJSON(w, http.StatusBadRequest, "bad seed: "+err.Error())
			return
		}
		seed = v
	}
	eps := math.Inf(1)
	if s := q.Get("eps"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			errorJSON(w, http.StatusBadRequest, "bad eps")
			return
		}
		eps = v
	}
	cont := false
	if s := q.Get("continue"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			errorJSON(w, http.StatusBadRequest, "bad continue: "+err.Error())
			return
		}
		cont = v
	}

	prob, err := dataset.ReadCSV(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			errorJSON(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		errorJSON(w, http.StatusBadRequest, "bad problem CSV: "+err.Error())
		return
	}
	if len(prob.Instances) != 1 {
		errorJSON(w, http.StatusBadRequest,
			fmt.Sprintf("streaming serves one distribution center, got %d", len(prob.Instances)))
		return
	}

	opt := stream.Options{
		Algorithm: stream.Algorithm(alg),
		VDPS:      vdps.Options{Epsilon: eps},
		Continue:  cont,
		Degrade:   h.Degrade,
		Retry:     h.retryPolicy(),
		Metrics:   obs.NewStreamMetrics(h.Registry),
		Recorder:  h.Recorder,
	}
	opt.Game.Seed, opt.Evo.Seed = seed, seed
	eng, err := stream.New(r.Context(), &prob.Instances[0], opt)
	if err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, "stream init failed: "+err.Error())
		return
	}

	h.streamMu.Lock()
	h.stream = eng
	snap := eng.Snapshot()
	h.streamMu.Unlock()
	writeJSON(w, h, stateResponse(snap))
}

// streamEvents handles POST /stream/events: a JSON array of deltas applied
// as one atomic batch. Stale or duplicate sequence numbers answer 409 with
// the whole batch rejected and no state changed.
func (h *Handler) streamEvents(w http.ResponseWriter, r *http.Request) {
	maxBody := h.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)

	var ds []stream.Delta
	dec := json.NewDecoder(r.Body)
	// A typoed field name would otherwise decode as the zero value and
	// silently target task/worker 0 — reject unknown keys outright.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ds); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			errorJSON(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		errorJSON(w, http.StatusBadRequest, "bad event JSON: "+err.Error())
		return
	}

	h.streamMu.Lock()
	eng := h.stream
	if eng == nil {
		h.streamMu.Unlock()
		errorJSON(w, http.StatusNotFound, "no streaming instance; POST /stream/instance first")
		return
	}
	res, err := eng.ApplyAll(r.Context(), ds)
	h.streamMu.Unlock()
	if err != nil {
		switch {
		case errors.Is(err, stream.ErrStaleSeq):
			errorJSON(w, http.StatusConflict, err.Error())
		case r.Context().Err() != nil:
			errorJSON(w, http.StatusServiceUnavailable, "stream apply aborted: "+r.Context().Err().Error())
		default:
			errorJSON(w, http.StatusUnprocessableEntity, err.Error())
		}
		return
	}
	resp := StreamApplyResponse{
		Seq:             res.Seq,
		Applied:         res.Applied,
		Resolve:         res.Resolve,
		WorkersTouched:  res.WorkersTouched,
		Difference:      res.Summary.Difference,
		Average:         res.Summary.Average,
		Iterations:      res.Iterations,
		Converged:       res.Converged,
		Degraded:        res.Degraded,
		IterationsSaved: res.IterationsSaved,
		ElapsedMS:       float64(res.Elapsed.Microseconds()) / 1000,
	}
	if res.Audit != nil {
		ok := len(res.Audit.Violations) == 0
		resp.AuditOK = &ok
	}
	writeJSON(w, h, resp)
}

// streamState handles GET /stream/state.
func (h *Handler) streamState(w http.ResponseWriter, r *http.Request) {
	h.streamMu.Lock()
	eng := h.stream
	if eng == nil {
		h.streamMu.Unlock()
		errorJSON(w, http.StatusNotFound, "no streaming instance; POST /stream/instance first")
		return
	}
	snap := eng.Snapshot()
	h.streamMu.Unlock()
	writeJSON(w, h, stateResponse(snap))
}

// stateResponse maps an engine snapshot to the wire shape.
func stateResponse(snap stream.Snapshot) StreamStateResponse {
	return StreamStateResponse{
		Algorithm:  string(snap.Algorithm),
		Seq:        snap.Seq,
		Applied:    snap.Applied,
		Workers:    len(snap.Instance.Workers),
		Tasks:      snap.Instance.TaskCount(),
		Assigned:   snap.Summary.Assigned,
		Difference: snap.Summary.Difference,
		Average:    snap.Summary.Average,
		Iterations: snap.Iterations,
		Converged:  snap.Converged,
		Degraded:   snap.Degraded,
	}
}

// writeJSON encodes the response body, logging (not failing) encode errors
// since the 200 header is already on the wire.
func writeJSON(w http.ResponseWriter, h *Handler, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil && h.Logger != nil {
		h.Logger.Warn("write stream response", "error", err.Error())
	}
}
