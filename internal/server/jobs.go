package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"fairtask/internal/jobs"
)

// JobResponse is the JSON representation of a solve job returned by the
// /jobs endpoints.
type JobResponse struct {
	// ID identifies the job; poll GET /jobs/{id} with it.
	ID string `json:"id"`
	// State is queued, running, done, failed or canceled.
	State string `json:"state"`
	// SubmittedAt/StartedAt/FinishedAt are lifecycle timestamps; the latter
	// two are omitted until the transition happens.
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// Error is the failure or cancellation cause for failed/canceled jobs.
	Error string `json:"error,omitempty"`
	// Attempts is how many times the solve ran, counting backoff retries;
	// omitted for jobs that have not started.
	Attempts int `json:"attempts,omitempty"`
	// Result is the solve outcome, present only in state done.
	Result *SolveResponse `json:"result,omitempty"`
}

// jobResponse converts a manager snapshot to the wire shape.
func jobResponse(s jobs.Snapshot) JobResponse {
	resp := JobResponse{
		ID:          s.ID,
		State:       string(s.State),
		SubmittedAt: s.SubmittedAt,
	}
	if !s.StartedAt.IsZero() {
		t := s.StartedAt
		resp.StartedAt = &t
	}
	if !s.FinishedAt.IsZero() {
		t := s.FinishedAt
		resp.FinishedAt = &t
	}
	if s.Err != nil {
		resp.Error = s.Err.Error()
	}
	resp.Attempts = s.Attempts
	if sr, ok := s.Result.(*SolveResponse); ok {
		resp.Result = sr
	}
	return resp
}

// writeJob writes a JobResponse with the given status.
func writeJob(w http.ResponseWriter, status int, s jobs.Snapshot) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(jobResponse(s))
}

// jobSubmit handles POST /jobs: validate exactly like the synchronous
// /solve, then enqueue the solve and answer 202 with the job's identity.
// Admission failures map to 429 (queue/store full) or 503 (draining), so
// load balancers can shed or fail over.
func (h *Handler) jobSubmit(w http.ResponseWriter, r *http.Request) {
	if h.Jobs == nil {
		errorJSON(w, http.StatusServiceUnavailable, "job API disabled")
		return
	}
	req := h.parseSolveRequest(w, r)
	if req == nil {
		return
	}
	snap, err := h.Jobs.Submit(func(ctx context.Context) (any, error) {
		return h.runSolve(ctx, req)
	})
	switch {
	case errors.Is(err, jobs.ErrQueueFull) || errors.Is(err, jobs.ErrStoreFull):
		w.Header().Set("Retry-After", "1")
		errorJSON(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, jobs.ErrNotAccepting):
		errorJSON(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		errorJSON(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Location", "/jobs/"+snap.ID)
	writeJob(w, http.StatusAccepted, snap)
}

// jobGet handles GET /jobs/{id}.
func (h *Handler) jobGet(w http.ResponseWriter, r *http.Request) {
	if h.Jobs == nil {
		errorJSON(w, http.StatusServiceUnavailable, "job API disabled")
		return
	}
	snap, err := h.Jobs.Get(r.PathValue("id"))
	if err != nil {
		errorJSON(w, http.StatusNotFound, err.Error())
		return
	}
	writeJob(w, http.StatusOK, snap)
}

// jobCancel handles DELETE /jobs/{id}: request cancellation and return the
// post-request state. Canceling a terminal job is a no-op, not an error.
func (h *Handler) jobCancel(w http.ResponseWriter, r *http.Request) {
	if h.Jobs == nil {
		errorJSON(w, http.StatusServiceUnavailable, "job API disabled")
		return
	}
	snap, err := h.Jobs.Cancel(r.PathValue("id"))
	if err != nil {
		errorJSON(w, http.StatusNotFound, err.Error())
		return
	}
	writeJob(w, http.StatusOK, snap)
}

// ReadyResponse is the JSON body of GET /readyz.
type ReadyResponse struct {
	// Ready is true while the service accepts new work.
	Ready bool `json:"ready"`
	// Jobs reports the queue's admission state; omitted when the job API is
	// disabled.
	Jobs *jobs.Stats `json:"jobs,omitempty"`
}

// ready handles GET /readyz: 200 while accepting work, 503 once draining has
// begun, so orchestrators stop routing new requests during shutdown. With
// the job API disabled, a running process is simply ready.
func (h *Handler) ready(w http.ResponseWriter, _ *http.Request) {
	resp := ReadyResponse{Ready: true}
	if h.Jobs != nil {
		st := h.Jobs.Stats()
		resp.Ready = st.Accepting
		resp.Jobs = &st
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}
