package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fairtask/internal/jobs"
)

func TestSolveWithAudit(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/solve?alg=GTA&eps=2&audit=1", "text/csv",
		bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Audit == nil {
		t.Fatal("audit=1 returned no audit block")
	}
	if !out.Audit.OK {
		t.Errorf("audit failed: %+v", out.Audit.Violations)
	}
	if out.Audit.Centers != 2 {
		t.Errorf("audited %d centers, want 2", out.Audit.Centers)
	}
	if len(out.Audit.Violations) != 0 {
		t.Errorf("unexpected violations: %+v", out.Audit.Violations)
	}

	// The audit counters must show up on /metrics with the runs counted.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(body), "fta_audit_runs_total 2") {
		t.Errorf("metrics missing audit runs:\n%s", grepLines(string(body), "fta_audit"))
	}
	if !strings.Contains(string(body), "fta_audit_failures_total 0") {
		t.Errorf("metrics missing audit failures:\n%s", grepLines(string(body), "fta_audit"))
	}
}

func TestSolveWithoutAuditOmitsBlock(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/solve?alg=GTA&eps=2", "text/csv",
		bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(body), `"audit"`) {
		t.Errorf("audit block present without audit=1: %s", body)
	}
}

func TestSolveBadAuditParam(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/solve?alg=GTA&audit=banana", "text/csv",
		bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

// TestJobsWithAudit checks the async path inherits the audit option from the
// shared request parser.
func TestJobsWithAudit(t *testing.T) {
	h, _ := newJobServer(t, jobs.Config{Workers: 2, QueueDepth: 8})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/jobs?alg=GTA&eps=2&audit=true", "text/csv",
		bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	job := decodeJob(t, resp.Body)
	out := pollJob(t, srv.URL, job.ID)
	if out.State != "done" {
		t.Fatalf("job state = %q: %+v", out.State, out)
	}
	if out.Result == nil || out.Result.Audit == nil {
		t.Fatalf("job result missing audit block: %+v", out)
	}
	if !out.Result.Audit.OK {
		t.Errorf("job audit failed: %+v", out.Result.Audit.Violations)
	}
}

// grepLines returns the lines of s containing sub, for terse test failures.
func grepLines(s, sub string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, sub) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
