package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fairtask/internal/fault"
	"fairtask/internal/jobs"
	"fairtask/internal/obs"
	"fairtask/internal/platform"
)

// newChaosServer builds a handler wired exactly like `fta serve --degrade
// --retry-max`: metrics recorder, solve-scope retry, degradation ladder and
// the async job API.
func newChaosServer(t *testing.T) (*Handler, *jobs.Manager) {
	t.Helper()
	h := New(testFactory)
	h.Recorder = obs.NewMetricsRecorder(h.Registry)
	h.Retry = &fault.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond}
	h.Degrade = &platform.Degrade{}
	m := jobs.New(jobs.Config{
		Workers: 2, QueueDepth: 8,
		Metrics: obs.NewJobsMetrics(h.Registry),
		Retry:   &fault.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond},
		Fault:   obs.NewFaultMetrics(h.Registry),
	})
	h.Jobs = m
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := m.Close(ctx); err != nil {
			t.Errorf("drain with faults armed: %v", err)
		}
	})
	t.Cleanup(fault.DisarmAll)
	return h, m
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestChaosJobDegradesE2E is the full resilience story over the wire: an
// armed failpoint breaks exact candidate generation, the job's solve retries,
// degrades to the sampled rung, completes — and the retry and degrade
// counters land on /metrics. problemCSV has two centers, so every per-center
// count is exactly 2.
func TestChaosJobDegradesE2E(t *testing.T) {
	h, _ := newChaosServer(t)
	srv := httptest.NewServer(h)
	defer srv.Close()

	if err := fault.ArmSpecs("vdps.generate:err:10"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(srv.URL+"/jobs?alg=GTA&eps=2", "text/csv",
		bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	jr := decodeJob(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	fin := pollJob(t, srv.URL, jr.ID)
	if fin.State != "done" {
		t.Fatalf("job state = %s (error %q), want done", fin.State, fin.Error)
	}
	if fin.Result == nil {
		t.Fatal("done job has no result")
	}
	if fin.Result.Degraded != platform.RungSampled {
		t.Fatalf("degraded = %q, want %q", fin.Result.Degraded, platform.RungSampled)
	}
	// The degradation ladder absorbed the faults, so the job itself
	// succeeded on its first attempt.
	if fin.Attempts != 1 {
		t.Errorf("job attempts = %d, want 1", fin.Attempts)
	}

	body := scrapeMetrics(t, srv.URL)
	for _, sample := range []string{
		`fta_retry_total{scope="solve"} 2`,
		`fta_degrade_total{rung="sampled"} 2`,
		`fta_retry_total{scope="jobs"} 0`,
	} {
		if !strings.Contains(body, sample+"\n") {
			t.Errorf("metrics missing %q in:\n%s", sample, body)
		}
	}
}

// TestDegradeSyncSolveE2E covers the synchronous /solve path: the response
// itself carries the serving rung.
func TestDegradeSyncSolveE2E(t *testing.T) {
	h, _ := newChaosServer(t)
	srv := httptest.NewServer(h)
	defer srv.Close()

	if err := fault.ArmSpecs("vdps.generate:err:100"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/solve?alg=GTA&eps=2", "text/csv",
		bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("solve status = %d: %s", resp.StatusCode, b)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Degraded != platform.RungSampled {
		t.Errorf("degraded = %q, want %q", out.Degraded, platform.RungSampled)
	}
	if len(out.Routes) == 0 {
		t.Error("degraded solve returned no routes")
	}
}

// TestChaosJobRetryExhaustedE2E arms faults deeper than the ladder can
// absorb: the job fails, the error is reported over the wire, and the
// exhaustion counters tick.
func TestChaosJobRetryExhaustedE2E(t *testing.T) {
	h, _ := newChaosServer(t)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Break every rung: exact and sampled generation plus the greedy rung's
	// sampled generator all keep failing.
	if err := fault.ArmSpecs("vdps.generate:err:1000, vdps.sample:err:1000"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(srv.URL+"/jobs?alg=GTA&eps=2", "text/csv",
		bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	jr := decodeJob(t, resp.Body)
	resp.Body.Close()

	fin := pollJob(t, srv.URL, jr.ID)
	if fin.State != "failed" {
		t.Fatalf("job state = %s, want failed", fin.State)
	}
	if !strings.Contains(fin.Error, "injected") {
		t.Errorf("job error %q does not mention the injected fault", fin.Error)
	}
	// Jobs-scope retry engaged after the whole solve (ladder included)
	// failed: MaxAttempts 2 means one retry, one exhaustion.
	if fin.Attempts != 2 {
		t.Errorf("job attempts = %d, want 2", fin.Attempts)
	}
	body := scrapeMetrics(t, srv.URL)
	for _, sample := range []string{
		`fta_retry_total{scope="jobs"} 1`,
		`fta_retry_exhausted_total{scope="jobs"} 1`,
	} {
		if !strings.Contains(body, sample+"\n") {
			t.Errorf("metrics missing %q in:\n%s", sample, body)
		}
	}
}

// TestChaosDrainWithFaultsArmed floods the queue while every execution
// fails, then drains: Close must return cleanly and every job must reach a
// terminal state.
func TestChaosDrainWithFaultsArmed(t *testing.T) {
	h, m := newChaosServer(t)
	srv := httptest.NewServer(h)
	defer srv.Close()

	if err := fault.ArmSpecs("jobs.run:err:1000"); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 6; i++ {
		resp, err := http.Post(srv.URL+"/jobs?alg=GTA&eps=2", "text/csv",
			bytes.NewReader(problemCSV(t)))
		if err != nil {
			t.Fatal(err)
		}
		jr := decodeJob(t, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status = %d", i, resp.StatusCode)
		}
		ids = append(ids, jr.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("Close with faults armed: %v", err)
	}
	for _, id := range ids {
		s, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s) after drain: %v", id, err)
		}
		if !s.State.Terminal() {
			t.Errorf("job %s not terminal after drain: %s", id, s.State)
		}
	}
}
