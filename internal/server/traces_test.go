package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestDebugTracesAfterSolve(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()
	body := problemCSV(t)

	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/solve?alg=GTA&eps=2", "text/csv",
			bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve status = %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(srv.URL + "/debug/traces?spans=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces status = %d", resp.StatusCode)
	}
	var out TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 3 {
		t.Errorf("total = %d, want 3", out.Total)
	}
	if len(out.Traces) != 3 {
		t.Fatalf("retained = %d, want 3", len(out.Traces))
	}
	tr := out.Traces[0]
	if tr.Name != "POST /solve" {
		t.Errorf("trace name = %q", tr.Name)
	}
	if tr.SpanCount == 0 || len(tr.Spans) != tr.SpanCount {
		t.Errorf("span count %d vs %d raw spans", tr.SpanCount, len(tr.Spans))
	}
	phases := make(map[string]bool)
	for _, ph := range tr.Phases {
		phases[ph.Name] = true
		if ph.SelfMS < 0 || ph.TotalMS < ph.SelfMS {
			t.Errorf("phase %s: self %v total %v", ph.Name, ph.SelfMS, ph.TotalMS)
		}
	}
	for _, want := range []string{"POST /solve", "assign", "center.solve"} {
		if !phases[want] {
			t.Errorf("breakdown missing phase %q (got %v)", want, tr.Phases)
		}
	}

	// ?n= limits the retained listing without affecting the total.
	resp2, err := http.Get(srv.URL + "/debug/traces?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var limited TracesResponse
	if err := json.NewDecoder(resp2.Body).Decode(&limited); err != nil {
		t.Fatal(err)
	}
	if limited.Total != 3 || len(limited.Traces) != 1 {
		t.Errorf("n=1: total %d retained %d, want 3/1", limited.Total, len(limited.Traces))
	}
	if len(limited.Traces[0].Spans) != 0 {
		t.Error("spans included without ?spans=1")
	}
}

func TestDebugTracesDisabled(t *testing.T) {
	h := New(testFactory)
	h.Traces = nil
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled tracing status = %d, want 404", resp.StatusCode)
	}
}
