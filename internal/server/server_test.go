package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fairtask/internal/assign"
	"fairtask/internal/dataset"
)

func testFactory(algorithm string, seed int64) (assign.Assigner, error) {
	switch algorithm {
	case "GTA":
		return assign.GTA{}, nil
	case "MMTA":
		return assign.MMTA{}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algorithm)
	}
}

func problemCSV(t *testing.T) []byte {
	t.Helper()
	p, err := dataset.GenerateSYN(dataset.SYNConfig{
		Seed: 1, Centers: 2, Tasks: 40, Workers: 8, DeliveryPoints: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestSolveEndpoint(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()
	body := problemCSV(t)

	resp, err := http.Post(srv.URL+"/solve?alg=GTA&eps=2&seed=3", "text/csv",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "GTA" {
		t.Errorf("algorithm = %q", out.Algorithm)
	}
	if out.Workers != 8 {
		t.Errorf("workers = %d, want 8", out.Workers)
	}
	if out.Difference < 0 || out.Gini < 0 || out.Gini > 1 {
		t.Errorf("metrics out of range: %+v", out)
	}
	if len(out.Routes) == 0 {
		t.Error("no routes returned")
	}
	for _, r := range out.Routes {
		if len(r.Points) == 0 {
			t.Error("route without points")
		}
	}
}

func TestSolveRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()
	body := problemCSV(t)

	cases := []struct {
		name   string
		method string
		url    string
		body   string
		want   int
	}{
		{"wrong method", http.MethodGet, "/solve", "", http.StatusMethodNotAllowed},
		{"garbage body", http.MethodPost, "/solve", "not,a,problem", http.StatusBadRequest},
		{"unknown alg", http.MethodPost, "/solve?alg=XXX", string(body), http.StatusBadRequest},
		{"bad seed", http.MethodPost, "/solve?seed=abc", string(body), http.StatusBadRequest},
		{"bad eps", http.MethodPost, "/solve?eps=-1", string(body), http.StatusBadRequest},
		{"bad parallel", http.MethodPost, "/solve?parallel=-2", string(body), http.StatusBadRequest},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+c.url, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

func TestSolveBodyLimit(t *testing.T) {
	h := New(testFactory)
	h.MaxBodyBytes = 64 // far below the problem size
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/solve", "text/csv", bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("oversized body accepted")
	}
}
