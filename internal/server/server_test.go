package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"fairtask/internal/assign"
	"fairtask/internal/dataset"
	"fairtask/internal/obs"
)

func testFactory(algorithm string, seed int64) (assign.Assigner, error) {
	switch algorithm {
	case "GTA":
		return assign.GTA{}, nil
	case "MMTA":
		return assign.MMTA{}, nil
	case "LEXIFAIR":
		return assign.Lexifair{}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algorithm)
	}
}

func problemCSV(t *testing.T) []byte {
	t.Helper()
	p, err := dataset.GenerateSYN(dataset.SYNConfig{
		Seed: 1, Centers: 2, Tasks: 40, Workers: 8, DeliveryPoints: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestSolveEndpoint(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()
	body := problemCSV(t)

	resp, err := http.Post(srv.URL+"/solve?alg=GTA&eps=2&seed=3", "text/csv",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "GTA" {
		t.Errorf("algorithm = %q", out.Algorithm)
	}
	if out.Workers != 8 {
		t.Errorf("workers = %d, want 8", out.Workers)
	}
	if out.Difference < 0 || out.Gini < 0 || out.Gini > 1 {
		t.Errorf("metrics out of range: %+v", out)
	}
	if len(out.Routes) == 0 {
		t.Error("no routes returned")
	}
	for _, r := range out.Routes {
		if len(r.Points) == 0 {
			t.Error("route without points")
		}
	}
}

func TestSolveRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()
	body := problemCSV(t)

	cases := []struct {
		name   string
		method string
		url    string
		body   string
		want   int
	}{
		{"wrong method", http.MethodGet, "/solve", "", http.StatusMethodNotAllowed},
		{"garbage body", http.MethodPost, "/solve", "not,a,problem", http.StatusBadRequest},
		{"unknown alg", http.MethodPost, "/solve?alg=XXX", string(body), http.StatusBadRequest},
		{"bad seed", http.MethodPost, "/solve?seed=abc", string(body), http.StatusBadRequest},
		{"bad eps", http.MethodPost, "/solve?eps=-1", string(body), http.StatusBadRequest},
		{"bad parallel", http.MethodPost, "/solve?parallel=-2", string(body), http.StatusBadRequest},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+c.url, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

func TestSolveBodyLimit(t *testing.T) {
	h := New(testFactory)
	h.MaxBodyBytes = 64 // far below the problem size
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/solve", "text/csv", bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
	var out struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("413 body is not JSON: %v", err)
	}
	if !strings.Contains(out.Error, "64 bytes") {
		t.Errorf("error message %q should state the limit", out.Error)
	}
}

func TestSolveMethodNotAllowedSetsAllow(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
	if got := resp.Header.Get("Allow"); got != http.MethodPost {
		t.Errorf("Allow = %q, want POST", got)
	}
}

// TestMetricsEndpoint round-trips the exposition: before any traffic the
// seeded HTTP families must be present; after a solve the solver families
// must carry non-zero samples.
func TestMetricsEndpoint(t *testing.T) {
	h := New(testFactory)
	h.Recorder = obs.NewMetricsRecorder(h.Registry)
	srv := httptest.NewServer(h)
	defer srv.Close()

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Errorf("Content-Type = %q", ct)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	first := scrape()
	for _, name := range []string{
		"fta_http_requests_total", "fta_http_request_seconds",
		"fta_solve_iterations", "fta_vdps_pruned_total",
	} {
		if !strings.Contains(first, "# TYPE "+name+" ") {
			t.Errorf("first scrape missing family %s", name)
		}
	}
	checkExpositionFormat(t, first)

	resp, err := http.Post(srv.URL+"/solve?alg=GTA&eps=2", "text/csv", bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d", resp.StatusCode)
	}

	second := scrape()
	for _, sample := range []string{
		`fta_http_requests_total{code="2xx",route="/solve"} 1`,
		`fta_assign_centers_total 2`,
	} {
		if !strings.Contains(second, sample+"\n") {
			t.Errorf("post-solve scrape missing %q in:\n%s", sample, second)
		}
	}
	if !regexp.MustCompile(`fta_vdps_candidates_total [1-9]`).MatchString(second) {
		t.Error("post-solve scrape has zero VDPS candidates")
	}
}

// checkExpositionFormat validates the Prometheus text format line by line:
// comments are HELP/TYPE, samples are `name{labels} value` with a parseable
// float value.
func checkExpositionFormat(t *testing.T, body string) {
	t.Helper()
	sampleRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]Inf|[-+0-9.eE]+)$`)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sampleRe.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

// TestConcurrentRequests hammers /solve and /metrics together; under -race
// this exercises the registry, middleware and recorder for data races.
func TestConcurrentRequests(t *testing.T) {
	h := New(testFactory)
	h.Recorder = obs.NewMetricsRecorder(h.Registry)
	srv := httptest.NewServer(h)
	defer srv.Close()
	body := problemCSV(t)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				resp, err := http.Post(srv.URL+"/solve?alg=GTA&eps=2", "text/csv", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("solve status = %d", resp.StatusCode)
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				resp, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if want := `fta_http_requests_total{code="2xx",route="/solve"} 12`; !strings.Contains(string(b), want+"\n") {
		t.Errorf("metrics missing %q after concurrent solves", want)
	}
}

// TestMetricsDisabled checks that a nil Registry turns /metrics into a 404
// and leaves the API functional.
func TestMetricsDisabled(t *testing.T) {
	h := New(testFactory)
	h.Registry = nil
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("metrics with nil registry: status = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz with nil registry: status = %d", resp.StatusCode)
	}
}

// TestSolveLogs checks the structured request and solve log lines.
func TestSolveLogs(t *testing.T) {
	h := New(testFactory)
	var buf syncBuffer
	h.Logger = slog.New(slog.NewJSONHandler(&buf, nil))
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/solve?alg=GTA&eps=2", "text/csv", bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var msgs []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var entry struct {
			Msg string `json:"msg"`
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("log line %q is not JSON: %v", line, err)
		}
		msgs = append(msgs, entry.Msg)
	}
	joined := strings.Join(msgs, ",")
	if !strings.Contains(joined, "solve") || !strings.Contains(joined, "http request") {
		t.Errorf("expected solve and http request log entries, got %q", joined)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer; slog handlers may be invoked
// from the server goroutine while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// The HTTP layer must serve the leximin assigner like any other algorithm
// value — the same path fta serve exposes through fairtask.NewAssigner.
func TestSolveEndpointLexifair(t *testing.T) {
	srv := httptest.NewServer(New(testFactory))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/solve?alg=LEXIFAIR&eps=2", "text/csv",
		bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "LEXIFAIR" {
		t.Errorf("algorithm = %q", out.Algorithm)
	}
	if len(out.Routes) == 0 {
		t.Error("no routes returned")
	}
}
