package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fairtask/internal/assign"
	"fairtask/internal/game"
	"fairtask/internal/jobs"
	"fairtask/internal/obs"
	"fairtask/internal/vdps"
)

// newJobServer builds a handler with the async job API enabled and returns
// it with its manager for direct inspection. Cleanup drains the manager.
func newJobServer(t *testing.T, cfg jobs.Config) (*Handler, *jobs.Manager) {
	t.Helper()
	h := New(testFactory)
	cfg.Metrics = obs.NewJobsMetrics(h.Registry)
	m := jobs.New(cfg)
	h.Jobs = m
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return h, m
}

func decodeJob(t *testing.T, r io.Reader) JobResponse {
	t.Helper()
	var jr JobResponse
	if err := json.NewDecoder(r).Decode(&jr); err != nil {
		t.Fatalf("decode job response: %v", err)
	}
	return jr
}

// pollJob polls GET /jobs/{id} until the job is terminal.
func pollJob(t *testing.T, base, id string) JobResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		jr := decodeJob(t, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d", id, resp.StatusCode)
		}
		switch jr.State {
		case "done", "failed", "canceled":
			return jr
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobResponse{}
}

// TestJobLifecycleE2E drives the documented flow: submit a solve, poll the
// job, read the result.
func TestJobLifecycleE2E(t *testing.T) {
	h, _ := newJobServer(t, jobs.Config{Workers: 2, QueueDepth: 8})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/jobs?alg=GTA&eps=2", "text/csv", bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs: status %d, body %s", resp.StatusCode, b)
	}
	jr := decodeJob(t, resp.Body)
	if jr.ID == "" || jr.State != "queued" {
		t.Fatalf("submit response = %+v, want queued with an id", jr)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+jr.ID {
		t.Fatalf("Location = %q, want /jobs/%s", loc, jr.ID)
	}

	fin := pollJob(t, srv.URL, jr.ID)
	if fin.State != "done" {
		t.Fatalf("final state = %s (error %q), want done", fin.State, fin.Error)
	}
	if fin.Result == nil || fin.Result.Algorithm != "GTA" || fin.Result.Workers == 0 {
		t.Fatalf("result = %+v, want a populated GTA SolveResponse", fin.Result)
	}
	if fin.StartedAt == nil || fin.FinishedAt == nil {
		t.Fatalf("terminal job missing timestamps: %+v", fin)
	}
}

// slowSolver blocks inside Assign until its context is canceled, so tests
// can hold a job in the running state deterministically.
type slowSolver struct{ started chan string }

func (slowSolver) Name() string { return "SLOW" }

func (s slowSolver) Assign(ctx context.Context, g *vdps.Generator) (*game.Result, error) {
	select {
	case s.started <- "": // signal once; later centers skip via ctx
	default:
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestJobCancelE2E submits a solve that never finishes on its own, cancels
// it over HTTP, and watches it reach the canceled state.
func TestJobCancelE2E(t *testing.T) {
	started := make(chan string, 1)
	h := New(func(string, int64) (assign.Assigner, error) {
		return slowSolver{started: started}, nil
	})
	m := jobs.New(jobs.Config{Workers: 1, QueueDepth: 4})
	h.Jobs = m
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/jobs?alg=SLOW", "text/csv", bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	jr := decodeJob(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}
	<-started // the solver is now blocked inside Assign

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+jr.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /jobs/%s: status %d", jr.ID, dresp.StatusCode)
	}

	fin := pollJob(t, srv.URL, jr.ID)
	if fin.State != "canceled" {
		t.Fatalf("final state = %s, want canceled", fin.State)
	}
	if fin.Result != nil {
		t.Fatal("canceled job carries a result")
	}
}

// TestJobQueueFull429 saturates the queue through the API and checks the
// 429 + Retry-After contract.
func TestJobQueueFull429(t *testing.T) {
	started := make(chan string, 1)
	h := New(func(string, int64) (assign.Assigner, error) {
		return slowSolver{started: started}, nil
	})
	m := jobs.New(jobs.Config{Workers: 1, QueueDepth: 1})
	h.Jobs = m
	t.Cleanup(func() { m.Close(context.Background()) })
	srv := httptest.NewServer(h)
	defer srv.Close()

	post := func() *http.Response {
		resp, err := http.Post(srv.URL+"/jobs?alg=SLOW", "text/csv", bytes.NewReader(problemCSV(t)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	var ids []string
	r1 := post() // occupies the worker
	ids = append(ids, decodeJob(t, r1.Body).ID)
	r1.Body.Close()
	<-started
	r2 := post() // fills the single queue slot
	ids = append(ids, decodeJob(t, r2.Body).ID)
	r2.Body.Close()

	r3 := post()
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("POST /jobs on full queue: status %d, want 429", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	// Cancel the stuck jobs so Close's drain is quick.
	for _, id := range ids {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

func TestJobNotFound(t *testing.T) {
	h, _ := newJobServer(t, jobs.Config{Workers: 1, QueueDepth: 1})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/jobs/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /jobs/doesnotexist: status %d, want 404", resp.StatusCode)
	}
}

func TestJobAPIDisabled(t *testing.T) {
	srv := httptest.NewServer(New(testFactory)) // no Jobs manager
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/jobs?alg=GTA", "text/csv", bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /jobs without manager: status %d, want 503", resp.StatusCode)
	}
	// /readyz still reports ready: the process serves synchronous solves.
	rresp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /readyz without manager: status %d, want 200", rresp.StatusCode)
	}
}

func TestReadyzReflectsDrain(t *testing.T) {
	h, m := newJobServer(t, jobs.Config{Workers: 1, QueueDepth: 2})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !ready.Ready || ready.Jobs == nil {
		t.Fatalf("readyz before drain: status %d body %+v", resp.StatusCode, ready)
	}
	if ready.Jobs.QueueCapacity != 2 {
		t.Fatalf("readyz queue capacity = %d, want 2", ready.Jobs.QueueCapacity)
	}

	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: status %d, want 503", resp.StatusCode)
	}
}

// TestJobSubmitValidatesLikeSolve checks the async path reuses the sync
// path's validation rather than deferring failures into the job.
func TestJobSubmitValidatesLikeSolve(t *testing.T) {
	h, _ := newJobServer(t, jobs.Config{Workers: 1, QueueDepth: 2})
	srv := httptest.NewServer(h)
	defer srv.Close()

	cases := []struct {
		url  string
		body string
	}{
		{srv.URL + "/jobs?alg=NOPE", string(problemCSV(t))},
		{srv.URL + "/jobs?alg=GTA&eps=-1", string(problemCSV(t))},
		{srv.URL + "/jobs?alg=GTA", "not,a,problem\ncsv"},
	}
	for _, tc := range cases {
		resp, err := http.Post(tc.url, "text/csv", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status %d, want 400", tc.url, resp.StatusCode)
		}
	}
	// Nothing should have been admitted.
	if st := h.Jobs.Stats(); st.Stored != 0 {
		t.Errorf("invalid submissions stored %d jobs, want 0", st.Stored)
	}
}

// TestSolveTimeoutReturns503 bounds the synchronous path: with a tiny
// server-side solve timeout, a slow solve answers 503 instead of hanging.
func TestSolveTimeoutReturns503(t *testing.T) {
	started := make(chan string, 1)
	h := New(func(string, int64) (assign.Assigner, error) {
		return slowSolver{started: started}, nil
	})
	h.SolveTimeout = 30 * time.Millisecond
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/solve?alg=SLOW", "text/csv", bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /solve with timeout: status %d body %s, want 503", resp.StatusCode, b)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body["error"], "deadline") {
		t.Fatalf("503 body = %v, want a deadline message", body)
	}
}

// TestJobsMetricsExposed checks the job counters flow into /metrics.
func TestJobsMetricsExposed(t *testing.T) {
	h, _ := newJobServer(t, jobs.Config{Workers: 1, QueueDepth: 4})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/jobs?alg=GTA&eps=2", "text/csv", bytes.NewReader(problemCSV(t)))
	if err != nil {
		t.Fatal(err)
	}
	jr := decodeJob(t, resp.Body)
	resp.Body.Close()
	pollJob(t, srv.URL, jr.ID)

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"fta_jobs_submitted_total 1",
		`fta_jobs_total{state="done"} 1`,
		"fta_jobs_queue_depth 0",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
