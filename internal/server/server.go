// Package server exposes the assignment engine over HTTP, so an SC platform
// can call fairtask as a sidecar service: POST a problem in the library's
// CSV schema and receive the assignment and its fairness metrics as JSON.
// Every request is instrumented through the internal/obs registry, exposed
// in Prometheus text format at GET /metrics.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"fairtask/internal/assign"
	"fairtask/internal/audit"
	"fairtask/internal/dataset"
	"fairtask/internal/fault"
	"fairtask/internal/jobs"
	"fairtask/internal/model"
	"fairtask/internal/obs"
	"fairtask/internal/payoff"
	"fairtask/internal/platform"
	"fairtask/internal/stream"
	"fairtask/internal/vdps"
)

// Factory builds an assigner for an algorithm name and seed, or returns an
// error for unknown names. The root package supplies one wrapping
// fairtask.NewAssigner, so the service supports the same algorithm set as
// the library.
type Factory func(algorithm string, seed int64) (assign.Assigner, error)

// Handler is the HTTP API. Routes:
//
//	GET  /healthz           -> 200 "ok"
//	GET  /readyz            -> JSON queue/drain state; 503 while draining
//	GET  /metrics           -> Prometheus text exposition of Registry
//	POST /solve?alg=FGT&eps=2&seed=1&parallel=4&audit=1
//	     body: problem CSV  -> JSON SolveResponse (synchronous)
//	POST /jobs?alg=...      -> 202 JSON JobResponse; 429 when the queue is full
//	GET  /jobs/{id}         -> JSON JobResponse (Result populated when done)
//	DELETE /jobs/{id}       -> cancel; JSON JobResponse
type Handler struct {
	factory Factory
	mux     *http.ServeMux
	// MaxBodyBytes bounds request bodies; zero means 32 MiB.
	MaxBodyBytes int64
	// Registry collects the service's HTTP and solver metrics. New installs
	// a fresh registry; replace or nil it before serving the first request.
	Registry *obs.Registry
	// Logger receives structured request and solve logs. Nil (the default)
	// disables logging.
	Logger *slog.Logger
	// Recorder receives solver telemetry (VDPS generation, per-center
	// solves, whole assignments) for every /solve request. Nil disables it.
	Recorder obs.Recorder
	// Jobs is the asynchronous solve-job manager behind /jobs and /readyz.
	// Nil (the default) disables the job API: job routes answer 503 and
	// /readyz reports ready based on the process being up alone.
	Jobs *jobs.Manager
	// SolveTimeout bounds synchronous /solve requests; the request context
	// is canceled after this long and the client receives 503. Zero means
	// no server-imposed deadline.
	SolveTimeout time.Duration
	// Retry retries each per-center solve attempt under this policy, with
	// fta_retry_total{scope="solve"} counting the retries. Nil disables
	// retrying.
	Retry *fault.RetryPolicy
	// Degrade enables the exact→sampled→greedy degradation ladder for all
	// solves; the serving rung is reported in SolveResponse.Degraded and
	// counted in fta_degrade_total{rung}. Nil means exact-only.
	Degrade *platform.Degrade
	// Pool, when set, runs every solve's per-center work on this shared
	// long-lived worker pool (the batch throughput mode) instead of
	// per-request goroutine fan-outs, so concurrent requests share one
	// fixed set of solver goroutines. The owner closes it at shutdown.
	Pool *platform.Pool
	// Traces is the ring of recent solve traces served at GET /debug/traces.
	// Synchronous /solve requests trace into it directly; wire the same ring
	// into jobs.Config.Traces to capture async jobs too. Nil disables
	// request tracing (span sites then cost one nil check).
	Traces *obs.TraceRing

	// streamMu serializes the streaming engine behind /stream/*; the engine
	// itself is single-writer by design.
	streamMu sync.Mutex
	stream   *stream.Engine
}

// New builds the handler around a solver factory with a fresh metrics
// registry. The HTTP metric families are pre-registered so the first
// /metrics scrape already lists them.
func New(factory Factory) *Handler {
	h := &Handler{
		factory:  factory,
		mux:      http.NewServeMux(),
		Registry: obs.NewRegistry(),
		Traces:   obs.NewTraceRing(0),
	}
	h.mux.HandleFunc("/healthz", h.health)
	h.mux.HandleFunc("GET /readyz", h.ready)
	h.mux.HandleFunc("/solve", h.solve)
	h.mux.HandleFunc("/metrics", h.metrics)
	h.mux.HandleFunc("POST /jobs", h.jobSubmit)
	h.mux.HandleFunc("GET /jobs/{id}", h.jobGet)
	h.mux.HandleFunc("DELETE /jobs/{id}", h.jobCancel)
	h.mux.HandleFunc("GET /debug/traces", h.debugTraces)
	h.mux.HandleFunc("POST /stream/instance", h.streamInstance)
	h.mux.HandleFunc("POST /stream/events", h.streamEvents)
	h.mux.HandleFunc("GET /stream/state", h.streamState)
	seedHTTPMetrics(h.Registry)
	obs.NewAuditMetrics(h.Registry)
	obs.NewFaultMetrics(h.Registry)
	obs.NewRuntimeMetrics(h.Registry)
	obs.NewStreamMetrics(h.Registry)
	obs.NewOnlineMetrics(h.Registry)
	obs.NewParallelMetrics(h.Registry)
	return h
}

// routes are the fixed paths used as low-cardinality route labels; anything
// else is folded into "other". Per-job paths share the "/jobs/:id" label so
// job IDs never become label values.
var routes = []string{"/solve", "/healthz", "/readyz", "/metrics", "/jobs", "/jobs/:id", "/debug/traces",
	"/stream/instance", "/stream/events", "/stream/state"}

// routeLabel maps a request path to its metric label.
func routeLabel(r *http.Request) string {
	for _, known := range routes {
		if r.URL.Path == known {
			return known
		}
	}
	if len(r.URL.Path) > len("/jobs/") && r.URL.Path[:len("/jobs/")] == "/jobs/" {
		return "/jobs/:id"
	}
	return "other"
}

// seedHTTPMetrics pre-registers the request metric families with zero-valued
// children for every known route, so a scrape before the first request (or
// the very first scrape, which is itself only counted after it responds)
// already exposes fta_http_requests_total and fta_http_request_seconds.
func seedHTTPMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("fta_http_in_flight", "HTTP requests currently being served.")
	for _, rt := range routes {
		reg.Counter("fta_http_requests_total", "HTTP requests served, by route and status class.",
			obs.L("route", rt), obs.L("code", "2xx"))
		reg.Histogram("fta_http_request_seconds", "HTTP request latency in seconds, by route.",
			obs.DefBuckets, obs.L("route", rt))
	}
}

// ServeHTTP implements http.Handler, instrumenting every request with the
// handler's current Registry and Logger.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	obs.Middleware(h.Registry, h.Logger, routeLabel, h.mux).ServeHTTP(w, r)
}

func (h *Handler) health(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// metrics serves the registry in Prometheus text format; 404 when metrics
// are disabled (nil Registry).
func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	if h.Registry == nil {
		http.NotFound(w, r)
		return
	}
	obs.MetricsHandler(h.Registry).ServeHTTP(w, r)
}

// WorkerRoute is one worker's route in a SolveResponse. Points carries
// delivery point IDs in visiting order.
type WorkerRoute struct {
	Center int     `json:"center"`
	Worker int     `json:"worker"`
	Points []int   `json:"points"`
	Payoff float64 `json:"payoff"`
}

// AuditViolation is one invariant violation found by the assignment auditor,
// tagged with the distribution center it occurred in.
type AuditViolation struct {
	Center int    `json:"center"`
	Check  string `json:"check"`
	Worker int    `json:"worker"`
	Detail string `json:"detail"`
}

// AuditResponse summarizes the independent re-verification of a solve
// (requested with ?audit=1). Unlike the library, the service reports
// violations instead of failing the request: the caller gets the assignment
// and decides what to do with a failed audit.
type AuditResponse struct {
	OK         bool             `json:"ok"`
	Centers    int              `json:"centers"`
	Violations []AuditViolation `json:"violations,omitempty"`
}

// SolveResponse is the JSON result of POST /solve.
type SolveResponse struct {
	Algorithm  string         `json:"algorithm"`
	Workers    int            `json:"workers"`
	Difference float64        `json:"payoff_difference"`
	Average    float64        `json:"average_payoff"`
	Gini       float64        `json:"gini"`
	ElapsedMS  float64        `json:"elapsed_ms"`
	Routes     []WorkerRoute  `json:"routes"`
	Audit      *AuditResponse `json:"audit,omitempty"`
	// Degraded names the worst degradation-ladder rung that served any
	// center ("sampled", "greedy"); omitted for full-fidelity solves.
	Degraded string `json:"degraded,omitempty"`
}

// errorJSON writes a JSON error body with the given status.
func errorJSON(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// solveRequest is a fully parsed and validated solve request: the problem,
// the solver, and the platform options. Both the synchronous /solve path and
// the asynchronous job path parse into this before solving.
type solveRequest struct {
	prob   *model.Problem
	solver assign.Assigner
	opt    platform.Options
}

// parseSolveRequest validates the query parameters and CSV body shared by
// POST /solve and POST /jobs. On failure it writes the error response and
// returns nil.
func (h *Handler) parseSolveRequest(w http.ResponseWriter, r *http.Request) *solveRequest {
	maxBody := h.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)

	q := r.URL.Query()
	alg := q.Get("alg")
	if alg == "" {
		alg = "FGT"
	}
	seed := int64(1)
	if s := q.Get("seed"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			errorJSON(w, http.StatusBadRequest, "bad seed: "+err.Error())
			return nil
		}
		seed = v
	}
	eps := math.Inf(1)
	if s := q.Get("eps"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			errorJSON(w, http.StatusBadRequest, "bad eps")
			return nil
		}
		eps = v
	}
	par := 0
	if s := q.Get("parallel"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			errorJSON(w, http.StatusBadRequest, "bad parallel")
			return nil
		}
		par = v
	}
	var aopt *audit.Options
	if s := q.Get("audit"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			errorJSON(w, http.StatusBadRequest, "bad audit")
			return nil
		}
		if v {
			aopt = &audit.Options{VDPS: vdps.Options{Epsilon: eps}}
		}
	}

	prob, err := dataset.ReadCSV(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			errorJSON(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return nil
		}
		errorJSON(w, http.StatusBadRequest, "bad problem CSV: "+err.Error())
		return nil
	}
	solver, err := h.factory(alg, seed)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err.Error())
		return nil
	}
	return &solveRequest{
		prob:   prob,
		solver: solver,
		opt: platform.Options{
			VDPS:        vdps.Options{Epsilon: eps},
			Parallelism: par,
			Pool:        h.Pool,
			Recorder:    h.Recorder,
			Audit:       aopt,
			Retry:       h.retryPolicy(),
			Degrade:     h.Degrade,
		},
	}
}

// retryPolicy clones the handler's retry policy with the solve-scope retry
// counter chained onto OnRetry. Nil when retrying is disabled.
func (h *Handler) retryPolicy() *fault.RetryPolicy {
	if h.Retry == nil {
		return nil
	}
	p := *h.Retry
	if h.Registry != nil {
		fm := obs.NewFaultMetrics(h.Registry)
		chain := p.OnRetry
		p.OnRetry = func(attempt int, delay time.Duration, err error) {
			fm.RetrySolve.Inc()
			if chain != nil {
				chain(attempt, delay, err)
			}
		}
	}
	return &p
}

// auditResponse folds the per-center audit reports into the response block
// and bumps the audit metrics. Returns nil when auditing was off.
func (h *Handler) auditResponse(prob *model.Problem, res *platform.Result) *AuditResponse {
	if res.Audit == nil {
		return nil
	}
	var am *obs.AuditMetrics
	if h.Registry != nil {
		am = obs.NewAuditMetrics(h.Registry)
	}
	ar := &AuditResponse{OK: true}
	for i, rep := range res.Audit {
		if rep == nil {
			continue
		}
		ar.Centers++
		if am != nil {
			am.Runs.Inc()
		}
		if rep.OK() {
			continue
		}
		ar.OK = false
		if am != nil {
			am.Failures.Inc()
		}
		for _, v := range rep.Violations {
			ar.Violations = append(ar.Violations, AuditViolation{
				Center: prob.Instances[i].CenterID,
				Check:  string(v.Check),
				Worker: v.Worker,
				Detail: v.Detail,
			})
		}
	}
	return ar
}

// fpServe is hit once per executed solve request (synchronous or job), so
// chaos specs can fail requests above the solver layer ("server.solve:err:1").
var fpServe = fault.Point("server.solve")

// runSolve executes a parsed solve request and builds the response body.
func (h *Handler) runSolve(ctx context.Context, req *solveRequest) (*SolveResponse, error) {
	if err := fpServe.Hit(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := platform.AssignContext(ctx, req.prob, req.solver, req.opt)
	if err != nil {
		var re *fault.RetryError
		if errors.As(err, &re) && h.Registry != nil {
			obs.NewFaultMetrics(h.Registry).ExhaustedSolve.Inc()
		}
		return nil, err
	}
	resp := &SolveResponse{
		Algorithm:  req.solver.Name(),
		Workers:    len(res.Payoffs),
		Difference: res.Difference,
		Average:    res.Average,
		Gini:       payoff.Gini(res.Payoffs),
		ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
		Audit:      h.auditResponse(req.prob, res),
		Degraded:   res.Degraded,
	}
	for i, pc := range res.PerCenter {
		in := &req.prob.Instances[i]
		for wi, route := range pc.Assignment.Routes {
			if len(route) == 0 {
				continue
			}
			ids := make([]int, len(route))
			for k, p := range route {
				ids[k] = in.Points[p].ID
			}
			resp.Routes = append(resp.Routes, WorkerRoute{
				Center: in.CenterID,
				Worker: in.Workers[wi].ID,
				Points: ids,
				Payoff: pc.Summary.Payoffs[wi],
			})
		}
	}
	if h.Logger != nil {
		h.Logger.LogAttrs(ctx, slog.LevelInfo, "solve",
			slog.String("algorithm", req.solver.Name()),
			slog.Int("centers", len(req.prob.Instances)),
			slog.Int("workers", len(res.Payoffs)),
			slog.Float64("payoff_difference", res.Difference),
			slog.Float64("average_payoff", res.Average),
			slog.Duration("elapsed", res.Elapsed))
	}
	return resp, nil
}

func (h *Handler) solve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		errorJSON(w, http.StatusMethodNotAllowed, "POST a problem CSV to /solve")
		return
	}
	req := h.parseSolveRequest(w, r)
	if req == nil {
		return
	}

	// The solve observes the request context — canceled when the client
	// disconnects — tightened by the server-side timeout when configured.
	ctx := r.Context()
	if h.SolveTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, h.SolveTimeout)
		defer cancel()
	}
	// Request tracing: one tracer per synchronous solve, collected into the
	// /debug/traces ring whether the solve succeeds or fails.
	var tracer *obs.Tracer
	var rootSp *obs.Span
	if h.Traces != nil {
		tracer = obs.NewTracer()
		rootSp = tracer.Root("POST /solve")
		rootSp.SetAttr("algorithm", req.solver.Name())
		ctx = obs.ContextWithSpan(ctx, rootSp)
	}
	resp, err := h.runSolve(ctx, req)
	if tracer != nil {
		rootSp.End()
		h.Traces.Add(tracer.Collect("POST /solve"))
	}
	if err != nil {
		if ctx.Err() != nil {
			errorJSON(w, http.StatusServiceUnavailable,
				"solve aborted: "+ctx.Err().Error()+" (submit via POST /jobs for long solves)")
			return
		}
		errorJSON(w, http.StatusUnprocessableEntity, "solve failed: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil && h.Logger != nil {
		// The response is already partially on the wire (status 200), so all
		// we can do is record that the client got a truncated body.
		h.Logger.LogAttrs(r.Context(), slog.LevelWarn, "write solve response",
			slog.String("error", err.Error()))
	}
}
