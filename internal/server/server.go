// Package server exposes the assignment engine over HTTP, so an SC platform
// can call fairtask as a sidecar service: POST a problem in the library's
// CSV schema and receive the assignment and its fairness metrics as JSON.
// Every request is instrumented through the internal/obs registry, exposed
// in Prometheus text format at GET /metrics.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"time"

	"fairtask/internal/assign"
	"fairtask/internal/dataset"
	"fairtask/internal/obs"
	"fairtask/internal/payoff"
	"fairtask/internal/platform"
	"fairtask/internal/vdps"
)

// Factory builds an assigner for an algorithm name and seed, or returns an
// error for unknown names. The root package supplies one wrapping
// fairtask.NewAssigner, so the service supports the same algorithm set as
// the library.
type Factory func(algorithm string, seed int64) (assign.Assigner, error)

// Handler is the HTTP API. Routes:
//
//	GET  /healthz           -> 200 "ok"
//	GET  /metrics           -> Prometheus text exposition of Registry
//	POST /solve?alg=FGT&eps=2&seed=1&parallel=4
//	     body: problem CSV  -> JSON SolveResponse
type Handler struct {
	factory Factory
	mux     *http.ServeMux
	// MaxBodyBytes bounds request bodies; zero means 32 MiB.
	MaxBodyBytes int64
	// Registry collects the service's HTTP and solver metrics. New installs
	// a fresh registry; replace or nil it before serving the first request.
	Registry *obs.Registry
	// Logger receives structured request and solve logs. Nil (the default)
	// disables logging.
	Logger *slog.Logger
	// Recorder receives solver telemetry (VDPS generation, per-center
	// solves, whole assignments) for every /solve request. Nil disables it.
	Recorder obs.Recorder
}

// New builds the handler around a solver factory with a fresh metrics
// registry. The HTTP metric families are pre-registered so the first
// /metrics scrape already lists them.
func New(factory Factory) *Handler {
	h := &Handler{factory: factory, mux: http.NewServeMux(), Registry: obs.NewRegistry()}
	h.mux.HandleFunc("/healthz", h.health)
	h.mux.HandleFunc("/solve", h.solve)
	h.mux.HandleFunc("/metrics", h.metrics)
	seedHTTPMetrics(h.Registry)
	return h
}

// routes are the fixed paths used as low-cardinality route labels; anything
// else is folded into "other".
var routes = []string{"/solve", "/healthz", "/metrics"}

// routeLabel maps a request path to its metric label.
func routeLabel(r *http.Request) string {
	for _, known := range routes {
		if r.URL.Path == known {
			return known
		}
	}
	return "other"
}

// seedHTTPMetrics pre-registers the request metric families with zero-valued
// children for every known route, so a scrape before the first request (or
// the very first scrape, which is itself only counted after it responds)
// already exposes fta_http_requests_total and fta_http_request_seconds.
func seedHTTPMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("fta_http_in_flight", "HTTP requests currently being served.")
	for _, rt := range routes {
		reg.Counter("fta_http_requests_total", "HTTP requests served, by route and status class.",
			obs.L("route", rt), obs.L("code", "2xx"))
		reg.Histogram("fta_http_request_seconds", "HTTP request latency in seconds, by route.",
			obs.DefBuckets, obs.L("route", rt))
	}
}

// ServeHTTP implements http.Handler, instrumenting every request with the
// handler's current Registry and Logger.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	obs.Middleware(h.Registry, h.Logger, routeLabel, h.mux).ServeHTTP(w, r)
}

func (h *Handler) health(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// metrics serves the registry in Prometheus text format; 404 when metrics
// are disabled (nil Registry).
func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	if h.Registry == nil {
		http.NotFound(w, r)
		return
	}
	obs.MetricsHandler(h.Registry).ServeHTTP(w, r)
}

// WorkerRoute is one worker's route in a SolveResponse. Points carries
// delivery point IDs in visiting order.
type WorkerRoute struct {
	Center int     `json:"center"`
	Worker int     `json:"worker"`
	Points []int   `json:"points"`
	Payoff float64 `json:"payoff"`
}

// SolveResponse is the JSON result of POST /solve.
type SolveResponse struct {
	Algorithm  string        `json:"algorithm"`
	Workers    int           `json:"workers"`
	Difference float64       `json:"payoff_difference"`
	Average    float64       `json:"average_payoff"`
	Gini       float64       `json:"gini"`
	ElapsedMS  float64       `json:"elapsed_ms"`
	Routes     []WorkerRoute `json:"routes"`
}

// errorJSON writes a JSON error body with the given status.
func errorJSON(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (h *Handler) solve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		errorJSON(w, http.StatusMethodNotAllowed, "POST a problem CSV to /solve")
		return
	}
	maxBody := h.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)

	q := r.URL.Query()
	alg := q.Get("alg")
	if alg == "" {
		alg = "FGT"
	}
	seed := int64(1)
	if s := q.Get("seed"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			errorJSON(w, http.StatusBadRequest, "bad seed: "+err.Error())
			return
		}
		seed = v
	}
	eps := math.Inf(1)
	if s := q.Get("eps"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			errorJSON(w, http.StatusBadRequest, "bad eps")
			return
		}
		eps = v
	}
	par := 0
	if s := q.Get("parallel"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			errorJSON(w, http.StatusBadRequest, "bad parallel")
			return
		}
		par = v
	}

	prob, err := dataset.ReadCSV(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			errorJSON(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		errorJSON(w, http.StatusBadRequest, "bad problem CSV: "+err.Error())
		return
	}
	solver, err := h.factory(alg, seed)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err.Error())
		return
	}

	start := time.Now()
	res, err := platform.AssignContext(r.Context(), prob, solver, platform.Options{
		VDPS:        vdps.Options{Epsilon: eps},
		Parallelism: par,
		Recorder:    h.Recorder,
	})
	if err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, "solve failed: "+err.Error())
		return
	}

	resp := SolveResponse{
		Algorithm:  solver.Name(),
		Workers:    len(res.Payoffs),
		Difference: res.Difference,
		Average:    res.Average,
		Gini:       payoff.Gini(res.Payoffs),
		ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, pc := range res.PerCenter {
		in := &prob.Instances[i]
		for wi, route := range pc.Assignment.Routes {
			if len(route) == 0 {
				continue
			}
			ids := make([]int, len(route))
			for k, p := range route {
				ids[k] = in.Points[p].ID
			}
			resp.Routes = append(resp.Routes, WorkerRoute{
				Center: in.CenterID,
				Worker: in.Workers[wi].ID,
				Points: ids,
				Payoff: pc.Summary.Payoffs[wi],
			})
		}
	}
	if h.Logger != nil {
		h.Logger.LogAttrs(r.Context(), slog.LevelInfo, "solve",
			slog.String("algorithm", solver.Name()),
			slog.Int("centers", len(prob.Instances)),
			slog.Int("workers", len(res.Payoffs)),
			slog.Float64("payoff_difference", res.Difference),
			slog.Float64("average_payoff", res.Average),
			slog.Duration("elapsed", res.Elapsed))
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil && h.Logger != nil {
		// The response is already partially on the wire (status 200), so all
		// we can do is record that the client got a truncated body.
		h.Logger.LogAttrs(r.Context(), slog.LevelWarn, "write solve response",
			slog.String("error", err.Error()))
	}
}
