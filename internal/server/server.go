// Package server exposes the assignment engine over HTTP, so an SC platform
// can call fairtask as a sidecar service: POST a problem in the library's
// CSV schema and receive the assignment and its fairness metrics as JSON.
package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"fairtask/internal/assign"
	"fairtask/internal/dataset"
	"fairtask/internal/payoff"
	"fairtask/internal/platform"
	"fairtask/internal/vdps"
)

// Factory builds an assigner for an algorithm name and seed, or returns an
// error for unknown names. The root package supplies one wrapping
// fairtask.NewAssigner, so the service supports the same algorithm set as
// the library.
type Factory func(algorithm string, seed int64) (assign.Assigner, error)

// Handler is the HTTP API. Routes:
//
//	GET  /healthz           -> 200 "ok"
//	POST /solve?alg=FGT&eps=2&seed=1&parallel=4
//	     body: problem CSV  -> JSON SolveResponse
type Handler struct {
	factory Factory
	mux     *http.ServeMux
	// MaxBodyBytes bounds request bodies; zero means 32 MiB.
	MaxBodyBytes int64
}

// New builds the handler around a solver factory.
func New(factory Factory) *Handler {
	h := &Handler{factory: factory, mux: http.NewServeMux()}
	h.mux.HandleFunc("/healthz", h.health)
	h.mux.HandleFunc("/solve", h.solve)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) health(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// WorkerRoute is one worker's route in a SolveResponse. Points carries
// delivery point IDs in visiting order.
type WorkerRoute struct {
	Center int     `json:"center"`
	Worker int     `json:"worker"`
	Points []int   `json:"points"`
	Payoff float64 `json:"payoff"`
}

// SolveResponse is the JSON result of POST /solve.
type SolveResponse struct {
	Algorithm  string        `json:"algorithm"`
	Workers    int           `json:"workers"`
	Difference float64       `json:"payoff_difference"`
	Average    float64       `json:"average_payoff"`
	Gini       float64       `json:"gini"`
	ElapsedMS  float64       `json:"elapsed_ms"`
	Routes     []WorkerRoute `json:"routes"`
}

// errorJSON writes a JSON error body with the given status.
func errorJSON(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (h *Handler) solve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		errorJSON(w, http.StatusMethodNotAllowed, "POST a problem CSV to /solve")
		return
	}
	maxBody := h.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)

	q := r.URL.Query()
	alg := q.Get("alg")
	if alg == "" {
		alg = "FGT"
	}
	seed := int64(1)
	if s := q.Get("seed"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			errorJSON(w, http.StatusBadRequest, "bad seed: "+err.Error())
			return
		}
		seed = v
	}
	eps := math.Inf(1)
	if s := q.Get("eps"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			errorJSON(w, http.StatusBadRequest, "bad eps")
			return
		}
		eps = v
	}
	par := 0
	if s := q.Get("parallel"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			errorJSON(w, http.StatusBadRequest, "bad parallel")
			return
		}
		par = v
	}

	prob, err := dataset.ReadCSV(r.Body)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "bad problem CSV: "+err.Error())
		return
	}
	solver, err := h.factory(alg, seed)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, err.Error())
		return
	}

	start := time.Now()
	res, err := platform.AssignContext(r.Context(), prob, solver, platform.Options{
		VDPS:        vdps.Options{Epsilon: eps},
		Parallelism: par,
	})
	if err != nil {
		errorJSON(w, http.StatusUnprocessableEntity, "solve failed: "+err.Error())
		return
	}

	resp := SolveResponse{
		Algorithm:  solver.Name(),
		Workers:    len(res.Payoffs),
		Difference: res.Difference,
		Average:    res.Average,
		Gini:       payoff.Gini(res.Payoffs),
		ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, pc := range res.PerCenter {
		in := &prob.Instances[i]
		for wi, route := range pc.Assignment.Routes {
			if len(route) == 0 {
				continue
			}
			ids := make([]int, len(route))
			for k, p := range route {
				ids[k] = in.Points[p].ID
			}
			resp.Routes = append(resp.Routes, WorkerRoute{
				Center: in.CenterID,
				Worker: in.Workers[wi].ID,
				Points: ids,
				Payoff: pc.Summary.Payoffs[wi],
			})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
