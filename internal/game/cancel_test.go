package game

import (
	"context"
	"errors"
	"testing"
)

// cancelAfterErrCalls is a context that reports cancellation after its Err
// method has been consulted limit times. FGT polls ctx.Err exactly once per
// best-response round, so the call count is a deterministic round counter:
// the solve must return within limit+1 polls regardless of MaxIterations.
type cancelAfterErrCalls struct {
	context.Context
	calls, limit int
}

func (c *cancelAfterErrCalls) Err() error {
	c.calls++
	if c.calls > c.limit {
		return context.Canceled
	}
	return nil
}

// TestFGTCanceledStopsBeforeMaxIterations is the subsystem's acceptance
// check: a canceled solve stops at the next round boundary instead of
// burning CPU to MaxIterations.
func TestFGTCanceledStopsBeforeMaxIterations(t *testing.T) {
	in := gridInstance(10, 5, 3, 100)
	g := mustGen(t, in)
	// Cancellation lands after round 1 completes; FGT must notice it at the
	// round-2 boundary rather than running on toward MaxIterations.
	const limit = 1
	ctx := &cancelAfterErrCalls{Context: context.Background(), limit: limit}

	res, err := FGT(ctx, g, Options{MaxIterations: 100000, Seed: 7})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FGT under canceled ctx: err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("FGT returned a result alongside the cancellation error")
	}
	if ctx.calls > limit+1 {
		t.Fatalf("FGT polled ctx %d times, want <= %d: it kept iterating after cancellation",
			ctx.calls, limit+1)
	}
}

func TestFGTImmediateCancel(t *testing.T) {
	in := gridInstance(6, 3, 2, 100)
	g := mustGen(t, in)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FGT(ctx, g, Options{Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("FGT with pre-canceled ctx: err = %v, want context.Canceled", err)
	}
}
