// This file retains the pre-index solver implementation verbatim so the
// optimized loops can be differentially tested against it: same seed and
// options must produce a bit-identical assignment, iteration count,
// convergence flag, and trace. It is the executable specification of the
// solver's semantics, not a fallback — do not optimize it.

package game

import (
	"context"
	"math/rand"

	"fairtask/internal/fairness"
	"fairtask/internal/vdps"
)

// ReferenceFGT is the direct transcription of Algorithm 2 the optimized FGT
// is pinned against: best responses evaluate the reference fairness.IAU /
// fairness.PriorityIAU over a scratch copy of all payoffs (O(W) per
// candidate strategy), and traced rounds re-run payoff.Summarize over the
// whole instance.
func ReferenceFGT(ctx context.Context, g *vdps.Generator, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	s := NewState(g)
	if len(s.Current) == 0 {
		return nil, ErrNoWorkers
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	s.RandomInit(rng)

	priorities := workerPriorities(s.Instance(), opt.UsePriorities)

	res := &Result{}
	scratch := make([]float64, len(s.Payoffs))
	order := make([]int, len(s.Current))
	for i := range order {
		order[i] = i
	}
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opt.RandomOrder {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		changes := 0
		for _, w := range order {
			if best, ok := referenceBestResponse(s, w, opt, priorities, scratch); ok && best != s.Current[w] {
				s.Switch(w, best)
				changes++
			}
		}
		res.Iterations = iter
		if opt.Trace || opt.Recorder != nil {
			sum := s.Summary()
			st := IterationStat{
				Iteration:  iter,
				Changes:    changes,
				Potential:  fairness.Potential(opt.Fairness, s.Payoffs),
				PayoffDiff: sum.Difference,
				AvgPayoff:  sum.Average,
			}
			if opt.Trace {
				res.Trace = append(res.Trace, st)
			}
			if opt.Recorder != nil {
				opt.Recorder.RecordIteration("FGT", st)
			}
		}
		if changes == 0 {
			res.Converged = true
			break
		}
	}
	res.Assignment = s.Assignment()
	res.Summary = s.Summary()
	res.Potential = fairness.Potential(opt.Fairness, s.Payoffs)
	return res, nil
}

// referenceBestResponse evaluates every candidate strategy's IAU over a
// scratch payoff vector, exactly like the pre-index solver. The once
// duplicated utility(0) evaluation for a Null incumbent is folded into one
// call; the selected strategy is unaffected.
func referenceBestResponse(s *State, w int, opt Options, priorities []float64, scratch []float64) (int, bool) {
	if len(s.Strategies[w]) == 0 {
		return Null, false
	}
	copy(scratch, s.Payoffs)

	utility := func(p float64) float64 {
		scratch[w] = p
		if priorities != nil {
			return fairness.PriorityIAU(opt.Fairness, scratch, priorities, w)
		}
		return fairness.IAU(opt.Fairness, scratch, w)
	}

	best := s.Current[w]
	var bestU float64
	if best == Null {
		bestU = utility(0)
	} else {
		bestU = utility(s.Payoffs[w])
		// The null strategy is always available.
		if u := utility(0); u > bestU+opt.EpsilonUtility {
			best, bestU = Null, u
		}
	}
	for si := range s.Strategies[w] {
		if si == s.Current[w] || !s.Available(w, si) {
			continue
		}
		if u := utility(s.Strategies[w][si].Payoff); u > bestU+opt.EpsilonUtility {
			best, bestU = si, u
		}
	}
	return best, true
}
