package game

import (
	"fmt"

	"fairtask/internal/fairness"
	"fairtask/internal/model"
	"fairtask/internal/vdps"
)

// LoadAssignment sets the state's joint strategy to match an existing
// assignment, resolving each non-empty route to the worker's strategy with
// the same visiting sequence. It fails if a route is not in the worker's
// strategy space (e.g. the assignment came from a different instance or
// candidate generation options).
func (s *State) LoadAssignment(a *model.Assignment) error {
	if len(a.Routes) != len(s.Current) {
		return fmt.Errorf("game: assignment has %d routes for %d workers",
			len(a.Routes), len(s.Current))
	}
	for w, r := range a.Routes {
		if len(r) == 0 {
			continue
		}
		found := false
		for si := range s.Strategies[w] {
			if routeEqual(s.StrategySeq(w, si), r) {
				if !s.Available(w, si) {
					return fmt.Errorf("game: route %v for worker %d conflicts with another worker", r, w)
				}
				s.Switch(w, si)
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("game: route %v not in worker %d's strategy space", r, w)
		}
	}
	return nil
}

func routeEqual(a, b model.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NEOptions configure the Nash-equilibrium certificate.
type NEOptions struct {
	// Fairness holds the IAU weights; the zero value is replaced by the
	// paper's default alpha = beta = 0.5.
	Fairness fairness.Params
	// Tol is the utility-gain threshold below which a deviation does not
	// refute the equilibrium. It should be at least the solver's
	// EpsilonUtility. Zero means the numerical default of 1e-9; any
	// negative value demands a strict equilibrium where any improving
	// deviation refutes, which the zero value cannot express.
	Tol float64
	// Priorities switches the certificate to the priority-aware IAU
	// extension; it must match the priorities the solve used (one entry per
	// worker). Nil checks the plain IAU.
	Priorities []float64
}

// VerifyNE checks that the assignment is a pure Nash equilibrium of the FTA
// game under the IAU utility: no worker has an available strategy (or Null)
// with utility more than tol above its current one. It returns nil when the
// assignment is an equilibrium and a descriptive error otherwise.
//
// This is the certificate form of Algorithm 2's termination condition;
// callers can use it to audit assignments produced elsewhere.
func VerifyNE(g *vdps.Generator, a *model.Assignment, prm fairness.Params, tol float64) error {
	return VerifyNEOpts(g, a, NEOptions{Fairness: prm, Tol: tol})
}

// VerifyNEOpts is VerifyNE with the full option set, including the
// priority-aware utility used when the solve ran with UsePriorities.
func VerifyNEOpts(g *vdps.Generator, a *model.Assignment, opt NEOptions) error {
	prm := opt.Fairness
	if prm == (fairness.Params{}) {
		prm = fairness.DefaultParams()
	}
	tol := opt.Tol
	if tol < 0 {
		tol = 0 // strict certificate: any improving deviation refutes
	} else if tol == 0 {
		tol = 1e-9
	}
	s := NewState(g)
	if err := s.LoadAssignment(a); err != nil {
		return err
	}
	// One O(log V) index query per candidate deviation instead of an O(W)
	// payoff rescan; the certificate's tolerance absorbs the last-ulp
	// difference between the aggregate and scan forms of MP/LP.
	idx := newUtilityIndex(s, prm, opt.Priorities)
	for w := range s.Current {
		cur := idx.Utility(w, s.Payoffs[w])
		if s.Current[w] != Null {
			if u := idx.Utility(w, 0); u > cur+tol {
				return fmt.Errorf("game: worker %d improves IAU %g -> %g by going idle", w, cur, u)
			}
		}
		for si := range s.Strategies[w] {
			if si == s.Current[w] || !s.Available(w, si) {
				continue
			}
			if u := idx.Utility(w, s.Strategies[w][si].Payoff); u > cur+tol {
				return fmt.Errorf("game: worker %d improves IAU %g -> %g via strategy %v (not a Nash equilibrium)",
					w, cur, u, s.StrategySeq(w, si))
			}
		}
	}
	return nil
}
