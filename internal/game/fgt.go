package game

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"fairtask/internal/fairness"
	"fairtask/internal/model"
	"fairtask/internal/obs"
	"fairtask/internal/payoff"
	"fairtask/internal/vdps"
)

// Options configure the FGT best-response run.
type Options struct {
	// Fairness holds the IAU weights; the zero value is replaced by the
	// paper's default alpha = beta = 0.5.
	Fairness fairness.Params
	// MaxIterations caps best-response rounds (a round visits every
	// worker once). Zero means the default of 200.
	MaxIterations int
	// Seed drives the random initial assignment.
	Seed int64
	// EpsilonUtility implements the paper's future-work early termination:
	// a worker only switches when the utility gain exceeds this threshold.
	// Zero means the numerical default of 1e-12; any negative value (use
	// the NoEpsilon constant) selects the strict best response with no
	// threshold at all, which the zero value cannot express.
	EpsilonUtility float64
	// Parallel sets the goroutine count for the deterministic speculative
	// best-response sweep: quiescing rounds evaluate workers concurrently
	// against the frozen pre-round state and commit sequentially in the
	// fixed visiting order, re-evaluating every worker after the round's
	// first commit (a switch changes the owner table and payoff multiset,
	// both best-response inputs). Results are bit-identical to the
	// sequential sweep and independent of GOMAXPROCS. 0 or 1 disables.
	Parallel int
	// UsePriorities switches the utility to the priority-aware IAU
	// extension, reading worker priorities from the instance.
	UsePriorities bool
	// Trace enables per-iteration statistics collection (Figure 12).
	Trace bool
	// RandomOrder shuffles the best-response visiting order every round
	// instead of the default fixed round-robin. The paper plays the game
	// "in sequence"; random order is an ablation of that choice.
	RandomOrder bool
	// Recorder receives one IterationStat per round via RecordIteration.
	// Nil disables telemetry; per-round statistics are then only computed
	// when Trace is set.
	Recorder obs.Recorder
}

// NoEpsilon selects the strict best response in Options.EpsilonUtility: a
// worker switches on any utility gain, however small. The zero value keeps
// the numerical default threshold, so "exactly zero" needs this sentinel
// (any negative value works; the constant names the intent).
const NoEpsilon = -1

func (o Options) withDefaults() Options {
	if o.Fairness == (fairness.Params{}) {
		o.Fairness = fairness.DefaultParams()
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 200
	}
	if o.EpsilonUtility < 0 {
		o.EpsilonUtility = 0 // NoEpsilon: strict best response
	} else if o.EpsilonUtility == 0 {
		o.EpsilonUtility = 1e-12
	}
	return o
}

// IterationStat records one best-response round for convergence studies.
// It aliases obs.IterationStat, the canonical per-iteration convergence
// record, so traces flow into telemetry recorders and the CLI's JSONL
// export without conversion.
type IterationStat = obs.IterationStat

// Result is the outcome of a game-theoretic run (FGT or IEGT).
type Result struct {
	// Assignment is the final task assignment.
	Assignment *model.Assignment
	// Summary holds the final payoff metrics.
	Summary payoff.Summary
	// Iterations is the number of rounds executed.
	Iterations int
	// Converged reports whether a fixed point (pure Nash equilibrium for
	// FGT, evolutionary equilibrium for IEGT) was reached before the
	// iteration cap.
	Converged bool
	// Trace holds per-round statistics when Options.Trace was set.
	Trace []IterationStat
	// Potential is the fairness potential Phi of the final payoffs (FGT: at
	// the run's IAU weights; IEGT: at the default weights, for
	// comparability). Telemetry observes it per solve.
	Potential float64
	// Degraded names the degradation-ladder rung that produced this result
	// ("sampled", "greedy"); empty for a full-fidelity exact solve. Set by
	// the platform layer, not by solvers.
	Degraded string
}

// ErrNoWorkers is returned when the instance has no workers.
var ErrNoWorkers = errors.New("game: instance has no workers")

// FGT runs the Fairness-aware Game-Theoretic approach (Algorithm 2):
// a random singleton initialization followed by sequential asynchronous
// best-response updates of the workers' strategies under the IAU utility,
// until a pure Nash equilibrium (no worker switches) is reached.
//
// ctx is observed at every best-response round boundary: when it is done
// the run stops and ctx.Err() is returned, so canceled requests and expired
// job deadlines do not burn CPU to MaxIterations. The per-round check is a
// single atomic load and stays within benchmark noise.
func FGT(ctx context.Context, g *vdps.Generator, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	sp := obs.SpanFromContext(ctx)
	bsp := sp.Child("state.build")
	s := NewState(g)
	return fgtRun(ctx, s, opt, bsp, false)
}

// FGTFromState runs Algorithm 2 on a prebuilt, unplayed state (fresh from
// NewState or NewStateWithStrategies: no strategies chosen, no points owned).
// The result is bit-identical to FGT on the generator the state was built
// from — the streaming engine relies on this to warm-start re-solves from
// incrementally repaired strategy spaces while staying pinned to the cold
// reference solve.
func FGTFromState(ctx context.Context, s *State, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	bsp := obs.SpanFromContext(ctx).Child("state.build")
	return fgtRun(ctx, s, opt, bsp, false)
}

// FGTFromSeededState runs the best-response rounds of Algorithm 2 on a state
// whose joint strategy has already been played — the streaming engine's
// continuation mode replays the previous committed equilibrium onto repaired
// strategy spaces and resumes from there. The seeded random initialization
// is skipped, so the result is NOT bit-pinned against FGT/FGTFromState on
// the same generator: different starts can reach different (equally valid)
// pure Nash equilibria. Callers certify results independently; the streaming
// engine runs a mandatory internal/audit pass per continuation resolve.
func FGTFromSeededState(ctx context.Context, s *State, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	bsp := obs.SpanFromContext(ctx).Child("state.build")
	return fgtRun(ctx, s, opt, bsp, true)
}

// fgtRun is the shared core of FGT, FGTFromState and FGTFromSeededState:
// random singleton initialization (skipped for seeded states, which arrive
// with a played joint strategy), then sequential best-response rounds to a
// pure Nash equilibrium. bsp is the caller's open state-build span, ended
// once the index and tracker are up.
func fgtRun(ctx context.Context, s *State, opt Options, bsp *obs.Span, seeded bool) (*Result, error) {
	sp := obs.SpanFromContext(ctx)
	if len(s.Current) == 0 {
		bsp.End()
		return nil, ErrNoWorkers
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	if !seeded {
		s.RandomInit(rng)
	}

	priorities := workerPriorities(s.Instance(), opt.UsePriorities)
	idx := newUtilityIndex(s, opt.Fairness, priorities)
	var tracker *SummaryTracker
	if opt.Trace || opt.Recorder != nil {
		tracker = NewSummaryTracker(s)
	}
	bsp.End()

	res := &Result{}
	order := make([]int, len(s.Current))
	for i := range order {
		order[i] = i
	}
	// Dirty-set gating for the best-response sweep. version counts switches;
	// cleanAt[w] = version+1 records that w was evaluated at that version and
	// declined to switch (zero = never evaluated). A worker's best response
	// reads only its own strategy space, the owner table and the payoff
	// multiset — all of which change exclusively through switches — so while
	// version is unchanged a re-evaluation provably returns "no switch" again
	// and is skipped. Skipped evaluations alter no state (and consume no
	// randomness), so the round trajectory — and therefore the equilibrium,
	// iteration count and traces — stays bit-identical to the ungated
	// reference sweep; only the final quiescent sweeps get cheaper. After a
	// switch the switcher itself is clean too: it just chose its best
	// response at the new version.
	version := 0
	cleanAt := make([]int, len(s.Current))
	sw := newSweeper(len(s.Current), opt.Parallel)
	prevChanges := len(s.Current) // assume a busy first round: no speculation
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rsp := sp.Child("round")
		rsp.SetAttrInt("i", iter)
		if err := fpFGTRound.Hit(ctx); err != nil {
			rsp.End()
			return nil, fmt.Errorf("game: fgt round %d: %w", iter, err)
		}
		if opt.RandomOrder {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		// Speculative parallel phase: when the previous round was quiet
		// enough for speculation to likely survive the commit loop, evaluate
		// every non-clean worker's best response concurrently against the
		// frozen pre-round state. The choice to speculate is pure
		// optimization — both paths commit identical switches — so the
		// heuristic cannot affect results, only wasted work.
		spec := sw.speculate(prevChanges)
		if spec {
			roundV := version
			sw.run(order, func(w int) bool { return cleanAt[w] != roundV+1 }, func(w int) {
				sw.best[w], sw.ok[w] = bestResponse(s, idx, w, opt)
			})
		}
		roundStart := version
		changes, reeval := 0, 0
		for _, w := range order {
			if cleanAt[w] == version+1 {
				continue
			}
			var best int
			var ok bool
			if spec && version == roundStart {
				// No commit yet this round: the live state is bit-identical
				// to the snapshot phase A evaluated against.
				best, ok = sw.best[w], sw.ok[w]
			} else {
				// An earlier commit changed the owner table and the payoff
				// multiset — both inputs of w's best response — so the
				// speculative proposal is stale; re-evaluate live, exactly
				// as the sequential sweep would.
				best, ok = bestResponse(s, idx, w, opt)
				if spec {
					reeval++
				}
			}
			if ok && best != s.Current[w] {
				s.Switch(w, best)
				idx.Update(w, s.Payoffs[w])
				if tracker != nil {
					tracker.Update(w)
				}
				changes++
				version++
			}
			cleanAt[w] = version + 1
		}
		if spec {
			rsp.SetAttrInt("spec", sw.evaluated)
			rsp.SetAttrInt("reeval", reeval)
		}
		prevChanges = changes
		res.Iterations = iter
		if tracker != nil {
			diff, avg := tracker.DiffAvg()
			st := IterationStat{
				Iteration: iter,
				Changes:   changes,
				// The reference O(W^2) potential keeps traces bit-comparable
				// across solver generations; see docs/PERFORMANCE.md.
				Potential:  fairness.Potential(opt.Fairness, s.Payoffs),
				PayoffDiff: diff,
				AvgPayoff:  avg,
			}
			if opt.Trace {
				res.Trace = append(res.Trace, st)
			}
			if opt.Recorder != nil {
				opt.Recorder.RecordIteration("FGT", st)
			}
		}
		rsp.End()
		if changes == 0 {
			res.Converged = true
			break
		}
	}
	res.Assignment = s.Assignment()
	res.Summary = s.Summary()
	res.Potential = fairness.Potential(opt.Fairness, s.Payoffs)
	return res, nil
}

// newUtilityIndex builds the incremental IAU index over the state's current
// payoffs.
func newUtilityIndex(s *State, prm fairness.Params, priorities []float64) *fairness.Index {
	idx := fairness.NewIndex(prm, len(s.Current), priorities)
	for w, p := range s.Payoffs {
		if p != 0 {
			idx.Update(w, p)
		}
	}
	return idx
}

// bestResponse returns worker w's utility-maximizing available strategy
// (Equation 10) under the current joint strategy of the others, preferring
// the incumbent on ties so a Nash equilibrium is a true fixed point.
// The second return value is false when the worker has no strategies at all.
//
// Each candidate utility is one O(log V) index query instead of the
// reference's O(W) payoff rescan, and the always-available null strategy is
// evaluated exactly once (the reference recomputed utility(0) a second time
// when the incumbent was already Null). The loop performs no allocations.
func bestResponse(s *State, idx *fairness.Index, w int, opt Options) (int, bool) {
	if len(s.Strategies[w]) == 0 {
		return Null, false
	}

	best := s.Current[w]
	nullU := idx.Utility(w, 0)
	var bestU float64
	if best == Null {
		bestU = nullU
	} else {
		bestU = idx.Utility(w, s.Payoffs[w])
		// The null strategy is always available.
		if nullU > bestU+opt.EpsilonUtility {
			best, bestU = Null, nullU
		}
	}
	for si := range s.Strategies[w] {
		if si == s.Current[w] || !s.Available(w, si) {
			continue
		}
		if u := idx.Utility(w, s.Strategies[w][si].Payoff); u > bestU+opt.EpsilonUtility {
			best, bestU = si, u
		}
	}
	return best, true
}

// workerPriorities extracts the effective priorities when the priority-aware
// extension is enabled, or nil for plain IAU.
func workerPriorities(in *model.Instance, use bool) []float64 {
	if !use {
		return nil
	}
	out := make([]float64, len(in.Workers))
	for i := range in.Workers {
		out[i] = in.Workers[i].EffectivePriority()
	}
	return out
}
