package game

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"fairtask/internal/fairness"
	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/travel"
	"fairtask/internal/vdps"
)

// gridInstance builds an instance with points on a small grid around the
// center and several workers, loose deadlines, unit rewards.
func gridInstance(nPoints, nWorkers, maxDP int, expiry float64) *model.Instance {
	in := &model.Instance{
		Center: geo.Pt(0, 0),
		Travel: travel.MustModel(geo.Euclidean{}, 1),
	}
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < nPoints; i++ {
		in.Points = append(in.Points, model.DeliveryPoint{
			ID:  i,
			Loc: geo.Pt(rng.Float64()*6-3, rng.Float64()*6-3),
			Tasks: []model.Task{
				{ID: 2 * i, Point: i, Expiry: expiry, Reward: 1},
				{ID: 2*i + 1, Point: i, Expiry: expiry, Reward: 1},
			},
		})
	}
	for w := 0; w < nWorkers; w++ {
		in.Workers = append(in.Workers, model.Worker{
			ID:    w,
			Loc:   geo.Pt(rng.Float64()*6-3, rng.Float64()*6-3),
			MaxDP: maxDP,
		})
	}
	return in
}

func mustGen(t *testing.T, in *model.Instance) *vdps.Generator {
	t.Helper()
	g, err := vdps.Generate(in, vdps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStateSwitchAndAvailability(t *testing.T) {
	in := gridInstance(4, 2, 2, 100)
	s := NewState(mustGen(t, in))
	if len(s.Strategies[0]) == 0 || len(s.Strategies[1]) == 0 {
		t.Fatal("workers should have strategies")
	}
	// Give worker 0 its first strategy; any strategy of worker 1 sharing a
	// point must become unavailable.
	s.Switch(0, 0)
	taken := map[int]bool{}
	for _, p := range s.points(0, 0) {
		taken[p] = true
	}
	for si := range s.Strategies[1] {
		overlaps := false
		for _, p := range s.points(1, si) {
			if taken[p] {
				overlaps = true
			}
		}
		if overlaps == s.Available(1, si) {
			t.Errorf("strategy %d: overlap=%v but Available=%v", si, overlaps, s.Available(1, si))
		}
	}
	// Null is always available; switching to it releases points.
	if !s.Available(0, Null) {
		t.Error("Null should be available")
	}
	s.Switch(0, Null)
	if s.Payoffs[0] != 0 || s.Current[0] != Null {
		t.Error("Null switch did not clear state")
	}
	for si := range s.Strategies[1] {
		if !s.Available(1, si) {
			t.Errorf("strategy %d should be available after release", si)
		}
	}
}

func TestSwitchPanicsOnConflict(t *testing.T) {
	in := gridInstance(3, 2, 1, 100)
	s := NewState(mustGen(t, in))
	s.Switch(0, 0)
	conflict := -1
	for si := range s.Strategies[1] {
		if !s.Available(1, si) {
			conflict = si
			break
		}
	}
	if conflict == -1 {
		t.Skip("no conflicting strategy in this topology")
	}
	defer func() {
		if recover() == nil {
			t.Error("Switch to conflicting strategy did not panic")
		}
	}()
	s.Switch(1, conflict)
}

func TestRandomInitSingletonsAndDisjoint(t *testing.T) {
	in := gridInstance(6, 4, 3, 100)
	s := NewState(mustGen(t, in))
	s.RandomInit(rand.New(rand.NewSource(1)))
	seen := map[int]bool{}
	for w, si := range s.Current {
		if si == Null {
			continue
		}
		seq := s.StrategySeq(w, si)
		if len(seq) != 1 {
			t.Errorf("worker %d initialized with non-singleton %v", w, seq)
		}
		if seen[seq[0]] {
			t.Errorf("point %d assigned twice", seq[0])
		}
		seen[seq[0]] = true
	}
	if err := s.Assignment().Validate(in); err != nil {
		t.Errorf("initial assignment invalid: %v", err)
	}
}

func TestFGTProducesValidAssignment(t *testing.T) {
	in := gridInstance(8, 4, 3, 100)
	res, err := FGT(context.Background(), mustGen(t, in), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("FGT did not converge on a small instance")
	}
	if err := res.Assignment.Validate(in); err != nil {
		t.Errorf("FGT assignment invalid: %v", err)
	}
	if res.Summary.Assigned == 0 {
		t.Error("FGT assigned no workers")
	}
}

// TestFGTNashEquilibrium verifies the post-condition of Algorithm 2: at the
// returned joint strategy, no worker has an *available* strategy (or Null)
// with strictly higher IAU.
func TestFGTNashEquilibrium(t *testing.T) {
	in := gridInstance(8, 4, 2, 100)
	g := mustGen(t, in)
	opt := Options{Seed: 3}
	res, err := FGT(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence")
	}
	// Rebuild the final state.
	s := NewState(g)
	for w, r := range res.Assignment.Routes {
		if len(r) == 0 {
			continue
		}
		found := false
		for si := range s.Strategies[w] {
			if routesEqual(s.StrategySeq(w, si), r) {
				s.Switch(w, si)
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("final route %v not in worker %d's strategy space", r, w)
		}
	}
	prm := fairness.DefaultParams()
	for w := range s.Current {
		cur := fairness.IAU(prm, s.Payoffs, w)
		try := func(p float64) float64 {
			tmp := append([]float64(nil), s.Payoffs...)
			tmp[w] = p
			return fairness.IAU(prm, tmp, w)
		}
		if u := try(0); s.Current[w] != Null && u > cur+1e-9 {
			t.Errorf("worker %d: Null improves IAU %g -> %g", w, cur, u)
		}
		for si := range s.Strategies[w] {
			if si == s.Current[w] || !s.Available(w, si) {
				continue
			}
			if u := try(s.Strategies[w][si].Payoff); u > cur+1e-9 {
				t.Errorf("worker %d: strategy %d improves IAU %g -> %g (not a NE)",
					w, si, cur, u)
			}
		}
	}
}

func routesEqual(a, b model.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFGTDeterministicPerSeed(t *testing.T) {
	in := gridInstance(7, 3, 2, 100)
	g := mustGen(t, in)
	a, err := FGT(context.Background(), g, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FGT(context.Background(), g, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Difference != b.Summary.Difference || a.Iterations != b.Iterations {
		t.Error("same seed produced different results")
	}
	for w := range a.Assignment.Routes {
		if !routesEqual(a.Assignment.Routes[w], b.Assignment.Routes[w]) {
			t.Fatalf("route mismatch for worker %d", w)
		}
	}
}

func TestFGTTrace(t *testing.T) {
	in := gridInstance(8, 4, 2, 100)
	res, err := FGT(context.Background(), mustGen(t, in), Options{Seed: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Iterations {
		t.Fatalf("trace length %d != iterations %d", len(res.Trace), res.Iterations)
	}
	last := res.Trace[len(res.Trace)-1]
	if last.Changes != 0 {
		t.Error("final round should have zero changes at a NE")
	}
	if math.Abs(last.PayoffDiff-res.Summary.Difference) > 1e-9 {
		t.Error("trace PayoffDiff disagrees with final summary")
	}
}

func TestFGTNoWorkers(t *testing.T) {
	in := gridInstance(3, 1, 1, 100)
	in.Workers = nil
	g, err := vdps.Generate(in, vdps.Options{MaxSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FGT(context.Background(), g, Options{}); err != ErrNoWorkers {
		t.Errorf("err = %v, want ErrNoWorkers", err)
	}
}

func TestFGTTightDeadlinesNullWorkers(t *testing.T) {
	// Deadlines so tight nothing is reachable: everyone ends up Null.
	in := gridInstance(4, 3, 2, 0.0001)
	g, err := vdps.Generate(in, vdps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := FGT(context.Background(), g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Assigned != 0 {
		t.Errorf("assigned %d workers despite unreachable deadlines", res.Summary.Assigned)
	}
	if !res.Converged {
		t.Error("trivial game should converge immediately")
	}
}

func TestFGTWithPriorities(t *testing.T) {
	in := gridInstance(8, 3, 2, 100)
	in.Workers[0].Priority = 3
	res, err := FGT(context.Background(), mustGen(t, in), Options{Seed: 2, UsePriorities: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(in); err != nil {
		t.Errorf("priority FGT assignment invalid: %v", err)
	}
}

func TestEligibleWorkers(t *testing.T) {
	in := gridInstance(4, 2, 2, 100)
	s := NewState(mustGen(t, in))
	if got := s.EligibleWorkers(); got != 2 {
		t.Errorf("EligibleWorkers = %d, want 2", got)
	}
}

func TestFGTRandomOrderStillConvergesToNE(t *testing.T) {
	in := gridInstance(8, 4, 2, 100)
	g := mustGen(t, in)
	res, err := FGT(context.Background(), g, Options{Seed: 13, RandomOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("random-order FGT did not converge")
	}
	if err := res.Assignment.Validate(in); err != nil {
		t.Errorf("random-order FGT assignment invalid: %v", err)
	}
}

func TestVerifyNE(t *testing.T) {
	in := gridInstance(8, 4, 2, 100)
	g := mustGen(t, in)
	res, err := FGT(context.Background(), g, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence")
	}
	if err := VerifyNE(g, res.Assignment, fairness.Params{}, 0); err != nil {
		t.Errorf("FGT output rejected by VerifyNE: %v", err)
	}
	// A GTA assignment is generally NOT a Nash equilibrium of the IAU game;
	// on most instances VerifyNE must find a deviation. (If it happens to be
	// one, the check is vacuous but not wrong, so only log.)
	s := NewState(g)
	s.RandomInit(rand.New(rand.NewSource(1)))
	if err := VerifyNE(g, s.Assignment(), fairness.Params{}, 0); err == nil {
		t.Log("random initial assignment happened to be a NE")
	}
}

func TestLoadAssignmentErrors(t *testing.T) {
	in := gridInstance(6, 3, 2, 100)
	g := mustGen(t, in)
	s := NewState(g)
	// Wrong worker count.
	if err := s.LoadAssignment(model.NewAssignment(1)); err == nil {
		t.Error("wrong route count accepted")
	}
	// Route not in strategy space (fabricated ordering unlikely to exist).
	a := model.NewAssignment(3)
	a.Routes[0] = model.Route{5, 0} // probably not a generated min-time order
	if err := s.LoadAssignment(a); err == nil {
		t.Log("fabricated route coincided with a real strategy (acceptable)")
	}
}
