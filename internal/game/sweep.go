package game

import "sync"

// sweeper runs the speculative phase of the deterministic parallel
// best-response sweep. Each round it can evaluate every non-clean worker's
// best response concurrently against the frozen pre-round state (phase A);
// the solver then commits switches sequentially in the fixed visiting order
// (phase B), consuming a speculative proposal only while no commit has
// happened yet in the round — the live state is then still bit-identical to
// the snapshot phase A read. After the round's first commit, every later
// worker's inputs (owner table, payoff multiset) may have changed, so phase
// B re-evaluates them live, exactly as the sequential sweep would. The
// parallel phase only ever reads shared solver state and writes per-worker
// proposal slots, so its results — and the committed trajectory — are
// independent of goroutine scheduling and GOMAXPROCS.
type sweeper struct {
	parallel int
	// best[w], ok[w] hold worker w's phase-A proposal; stale entries are
	// never read because phase B stops consuming proposals at the round's
	// first commit.
	best []int
	ok   []bool
	// evaluated is the number of workers phase A evaluated in the last run.
	evaluated int
}

// newSweeper sizes a sweeper for n workers and the configured goroutine
// count. parallel <= 1 yields an inert sweeper that never speculates and
// allocates nothing.
func newSweeper(n, parallel int) *sweeper {
	if parallel <= 1 {
		return &sweeper{parallel: 1}
	}
	return &sweeper{
		parallel: parallel,
		best:     make([]int, n),
		ok:       make([]bool, n),
	}
}

// speculate reports whether the coming round should run the parallel phase.
func (sw *sweeper) speculate(prevChanges int) bool {
	return sw.parallel > 1 && ShouldSpeculate(prevChanges, len(sw.best))
}

// run evaluates the phase-A proposals for the round.
func (sw *sweeper) run(order []int, include func(int) bool, eval func(int)) {
	sw.evaluated = ParallelSweep(sw.parallel, order, include, eval)
}

// ShouldSpeculate is the round-level heuristic shared by the FGT and IEGT
// parallel sweeps: a commit invalidates every later proposal, so speculation
// only pays in quiescing rounds, and the heuristic requires the previous
// round to have switched at most half the workers. A mispredicted round
// costs at most the parallel phase's wall time — one sequential round's
// work divided by the goroutine count — while a correct prediction
// parallelizes the whole sweep (the zero-change confirmation sweep every
// converging run ends with is the canonical win), so the threshold errs
// loose. The choice is pure optimization — speculative and live evaluations
// commit identical switches — so it cannot affect results, only wasted work.
func ShouldSpeculate(prevChanges, workers int) bool {
	return prevChanges*2 <= workers
}

// ParallelSweep evaluates eval(w) for every worker w in order with
// include(w) true, sharding order contiguously across parallel goroutines,
// and returns the number of workers evaluated. eval must only read shared
// state and write w's own proposal slots; include must be a pure read.
// Shards write disjoint slots, so the outcome is independent of scheduling
// and GOMAXPROCS. parallel <= 1 runs inline on the calling goroutine.
// Exported for the evo package, whose selection sweep shares the same
// speculate/commit structure.
func ParallelSweep(parallel int, order []int, include func(int) bool, eval func(int)) int {
	par := parallel
	if par > len(order) {
		par = len(order)
	}
	if par <= 1 {
		n := 0
		for _, w := range order {
			if include(w) {
				eval(w)
				n++
			}
		}
		return n
	}
	counts := make([]int, par)
	chunk := (len(order) + par - 1) / par
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		lo := g * chunk
		hi := lo + chunk
		if hi > len(order) {
			hi = len(order)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(g int, shard []int) {
			defer wg.Done()
			n := 0
			for _, w := range shard {
				if include(w) {
					eval(w)
					n++
				}
			}
			counts[g] = n
		}(g, order[lo:hi])
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}
