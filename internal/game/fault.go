package game

import "fairtask/internal/fault"

// fpFGTRound is hit once per FGT best-response round; armed chaos specs can
// fail or delay a solve mid-convergence. Disarmed it is one atomic load.
var fpFGTRound = fault.Point("game.fgt.round")
