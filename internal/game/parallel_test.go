package game

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"fairtask/internal/fairness"
	"fairtask/internal/model"
	"fairtask/internal/obs"
)

// TestFGTParallelMatchesReference pins the deterministic speculative sweep
// bit-exactly against the sequential reference across seeds, scales, option
// variants and GOMAXPROCS values: same assignment, iterations, convergence,
// summary and trace, regardless of how many goroutines evaluate the
// speculative phase or how many cores schedule them.
func TestFGTParallelMatchesReference(t *testing.T) {
	instances := map[string]*model.Instance{
		"small": gridInstance(10, 6, 2, 100),
		"large": gridInstance(18, 12, 3, 60),
	}
	variants := map[string]Options{
		"default":    {},
		"priorities": {UsePriorities: true},
		"random":     {RandomOrder: true},
		"epsilon":    {EpsilonUtility: 0.05},
	}
	restore := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(restore)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for iname, in := range instances {
			if iname == "priorities" {
				in = prioritized(in)
			}
			g := mustGen(t, in)
			for vname, base := range variants {
				for seed := int64(0); seed < 3; seed++ {
					for _, par := range []int{2, 4} {
						opt := base
						opt.Seed = seed
						opt.Trace = true
						opt.Parallel = par
						got, err := FGT(context.Background(), g, opt)
						if err != nil {
							t.Fatal(err)
						}
						ref := opt
						ref.Parallel = 0
						want, err := ReferenceFGT(context.Background(), g, ref)
						if err != nil {
							t.Fatal(err)
						}
						label := fmt.Sprintf("procs=%d/%s/%s/seed=%d/par=%d",
							procs, iname, vname, seed, par)
						sameResult(t, label, got, want)
					}
				}
			}
		}
	}
}

// TestFGTParallelRecorderMatchesReference compares the per-round telemetry
// stream of the parallel sweep against the sequential reference: the
// speculative phase must not add, drop or reorder a single recorded round.
func TestFGTParallelRecorderMatchesReference(t *testing.T) {
	g := mustGen(t, gridInstance(14, 8, 2, 100))
	for seed := int64(0); seed < 3; seed++ {
		var recGot, recWant captureRecorder
		if _, err := FGT(context.Background(), g, Options{Seed: seed, Parallel: 4, Recorder: &recGot}); err != nil {
			t.Fatal(err)
		}
		if _, err := ReferenceFGT(context.Background(), g, Options{Seed: seed, Recorder: &recWant}); err != nil {
			t.Fatal(err)
		}
		if len(recGot.stats) != len(recWant.stats) {
			t.Fatalf("seed %d: %d recorded rounds, reference %d",
				seed, len(recGot.stats), len(recWant.stats))
		}
		for i := range recWant.stats {
			if recGot.algos[i] != recWant.algos[i] || recGot.stats[i] != recWant.stats[i] {
				t.Fatalf("seed %d round %d: recorded (%s, %+v), reference (%s, %+v)",
					seed, i, recGot.algos[i], recGot.stats[i], recWant.algos[i], recWant.stats[i])
			}
		}
	}
}

// TestFGTParallelSweepSpeculates proves the speculative phase actually runs
// under the adaptive heuristic — without this, a heuristic that never fires
// would render every bit-exactness test above vacuous. The round spans
// record a "spec" attribute whenever phase A ran.
func TestFGTParallelSweepSpeculates(t *testing.T) {
	g := mustGen(t, gridInstance(18, 12, 3, 60))
	speculated := false
	for seed := int64(0); seed < 5 && !speculated; seed++ {
		tr := obs.NewTracer()
		root := tr.Root("test")
		ctx := obs.ContextWithSpan(context.Background(), root)
		if _, err := FGT(ctx, g, Options{Seed: seed, Parallel: 4}); err != nil {
			t.Fatal(err)
		}
		root.End()
		for _, sp := range tr.Collect("test").Spans {
			if sp.Name == "round" && sp.Attr("spec") != "" {
				speculated = true
				break
			}
		}
	}
	if !speculated {
		t.Fatal("no round ran the speculative parallel phase across 5 seeds; the heuristic never fires and the differential tests are vacuous")
	}
}

// TestWithDefaultsEpsilonSentinel is the regression test for the
// EpsilonUtility zero-collapse bug: the zero value keeps the numerical
// default, NoEpsilon (and any negative value) selects the strict best
// response with a threshold of exactly 0, and positive values pass through.
func TestWithDefaultsEpsilonSentinel(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{0, 1e-12},
		{NoEpsilon, 0},
		{-0.5, 0},
		{0.05, 0.05},
	}
	for _, c := range cases {
		got := Options{EpsilonUtility: c.in}.withDefaults().EpsilonUtility
		if got != c.want {
			t.Errorf("EpsilonUtility %v: withDefaults -> %v, want %v", c.in, got, c.want)
		}
	}
	// The reference solver shares withDefaults, so the sentinel changes both
	// sides of the differential tests identically; a quick solve pins that
	// the strict threshold is accepted end to end.
	g := mustGen(t, gridInstance(8, 4, 2, 100))
	got, err := FGT(context.Background(), g, Options{Seed: 1, EpsilonUtility: NoEpsilon, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceFGT(context.Background(), g, Options{Seed: 1, EpsilonUtility: NoEpsilon, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "noepsilon", got, want)
}

// TestVerifyNEStrictTolerance pins the NEOptions.Tol sentinel: negative
// demands a strict equilibrium, zero keeps the numerical default. A strict
// certificate must still accept a strict-best-response equilibrium.
func TestVerifyNEStrictTolerance(t *testing.T) {
	g := mustGen(t, gridInstance(10, 5, 2, 100))
	res, err := FGT(context.Background(), g, Options{Seed: 2, EpsilonUtility: NoEpsilon})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("FGT did not converge")
	}
	if err := VerifyNEOpts(g, res.Assignment, NEOptions{Tol: -1}); err != nil {
		t.Fatalf("strict certificate rejected a strict equilibrium: %v", err)
	}
}

// TestUtilityIndexZeroSkip is the property test for newUtilityIndex's
// construction shortcut: skipping Update for zero payoffs must be
// indistinguishable — bitwise, on every query — from explicitly updating
// every worker, in plain mode and in priority-normalized mode including the
// degenerate priorities (zero, negative, NaN) that normalization folds to 1.
func TestUtilityIndexZeroSkip(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name       string
		payoffs    []float64
		priorities []float64
	}{
		{"plain", []float64{0, 3.5, 0, 1.25, 7, 0}, nil},
		{"allzero", []float64{0, 0, 0, 0}, nil},
		{"priority", []float64{0, 3.5, 0, 1.25, 7, 0}, []float64{2, 0.5, 1, 3, 0.25, 4}},
		{"degenerate-priority", []float64{0, 2, 0, 5}, []float64{0, -1, 2, 0.5}},
		{"nan-priority", []float64{0, 2, 4, 5}, []float64{nan, 2, nan, 0.5}},
	}
	prm := fairness.DefaultParams()
	for _, c := range cases {
		n := len(c.payoffs)
		s := &State{Current: make([]int, n), Payoffs: c.payoffs}
		skip := newUtilityIndex(s, prm, c.priorities)
		full := fairness.NewIndex(prm, n, c.priorities)
		for w, p := range c.payoffs {
			full.Update(w, p)
		}
		for w := 0; w < n; w++ {
			for _, q := range []float64{0, 0.5, 1.25, 3.5, 7, 100} {
				a, b := skip.Utility(w, q), full.Utility(w, q)
				if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
					t.Fatalf("%s: Utility(%d, %v) = %v with zero-skip, %v with full updates",
						c.name, w, q, a, b)
				}
			}
			if a, b := skip.CurrentUtility(w), full.CurrentUtility(w); a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("%s: CurrentUtility(%d) = %v with zero-skip, %v with full updates", c.name, w, a, b)
			}
		}
	}
}
