// Package game formulates FTA as an n-player strategic game (paper §V) and
// implements the Fairness-aware Game-Theoretic (FGT) best-response algorithm
// (Algorithm 2). The State type — strategy spaces, current joint strategy,
// delivery-point ownership and payoffs — is shared with the evolutionary
// algorithm in package evo.
package game

import (
	"math/rand"

	"fairtask/internal/model"
	"fairtask/internal/payoff"
	"fairtask/internal/vdps"
)

// Null is the strategy index meaning "select no delivery points".
const Null = -1

// State is the mutable state of an FTA game: each worker's strategy space
// (its valid VDPSs), the current joint strategy, the delivery-point owner
// table enforcing disjointness, and the induced payoffs.
type State struct {
	gen *vdps.Generator
	// Strategies[w] lists worker w's valid VDPSs, sorted by descending
	// payoff (see vdps.Generator.ForWorker).
	Strategies [][]vdps.WorkerVDPS
	// Current[w] is the index into Strategies[w] of w's chosen strategy, or
	// Null.
	Current []int
	// Payoffs[w] is the payoff of w's current strategy (0 for Null).
	Payoffs []float64
	// owner[p] is the worker currently holding delivery point p, or -1.
	owner []int
}

// NewState builds a game state with empty strategy choices from the
// generator's per-worker VDPS lists.
func NewState(g *vdps.Generator) *State {
	in := g.Instance()
	n := len(in.Workers)
	s := &State{
		gen:        g,
		Strategies: make([][]vdps.WorkerVDPS, n),
		Current:    make([]int, n),
		Payoffs:    make([]float64, n),
		owner:      make([]int, len(in.Points)),
	}
	for w := 0; w < n; w++ {
		s.Strategies[w] = g.ForWorker(w)
		s.Current[w] = Null
	}
	for p := range s.owner {
		s.owner[p] = -1
	}
	return s
}

// Instance returns the underlying problem instance.
func (s *State) Instance() *model.Instance { return s.gen.Instance() }

// Generator returns the VDPS generator backing the state.
func (s *State) Generator() *vdps.Generator { return s.gen }

// points returns the delivery-point set of worker w's strategy si.
func (s *State) points(w, si int) []int {
	return s.gen.Candidates()[s.Strategies[w][si].Candidate].Points
}

// Available reports whether worker w could switch to strategy si without
// overlapping another worker's current delivery points. The worker's own
// current points do not block the switch. si == Null is always available.
func (s *State) Available(w, si int) bool {
	if si == Null {
		return true
	}
	for _, p := range s.points(w, si) {
		if o := s.owner[p]; o != -1 && o != w {
			return false
		}
	}
	return true
}

// Switch sets worker w's strategy to si (possibly Null), releasing w's
// previous delivery points and claiming the new ones. It panics if the new
// strategy is not available; callers must check Available first.
func (s *State) Switch(w, si int) {
	if cur := s.Current[w]; cur != Null {
		for _, p := range s.points(w, cur) {
			s.owner[p] = -1
		}
	}
	if si == Null {
		s.Current[w] = Null
		s.Payoffs[w] = 0
		return
	}
	for _, p := range s.points(w, si) {
		if o := s.owner[p]; o != -1 && o != w {
			panic("game: Switch to unavailable strategy")
		}
		s.owner[p] = w
	}
	s.Current[w] = si
	s.Payoffs[w] = s.Strategies[w][si].Payoff
}

// RandomInit performs the initial assignment of Algorithm 2 (lines 6-16)
// and Algorithm 3 (lines 6-16): workers are visited in random order and each
// receives a random *singleton* VDPS (a set with one delivery point) among
// those still available; workers without any available singleton get Null.
func (s *State) RandomInit(rng *rand.Rand) {
	order := rng.Perm(len(s.Current))
	for _, w := range order {
		var singles []int
		for si, st := range s.Strategies[w] {
			if len(st.Seq) == 1 && s.Available(w, si) {
				singles = append(singles, si)
			}
		}
		if len(singles) == 0 {
			s.Switch(w, Null)
			continue
		}
		s.Switch(w, singles[rng.Intn(len(singles))])
	}
}

// Assignment materializes the current joint strategy as a model.Assignment.
func (s *State) Assignment() *model.Assignment {
	a := model.NewAssignment(len(s.Current))
	for w, si := range s.Current {
		if si != Null {
			a.Routes[w] = s.Strategies[w][si].Seq.Clone()
		}
	}
	return a
}

// Summary returns the payoff metrics of the current joint strategy.
func (s *State) Summary() payoff.Summary {
	return payoff.Summarize(s.Instance(), s.Assignment())
}

// EligibleWorkers returns the number of workers with a non-empty strategy
// space.
func (s *State) EligibleWorkers() int {
	var n int
	for _, st := range s.Strategies {
		if len(st) > 0 {
			n++
		}
	}
	return n
}
