// Package game formulates FTA as an n-player strategic game (paper §V) and
// implements the Fairness-aware Game-Theoretic (FGT) best-response algorithm
// (Algorithm 2). The State type — strategy spaces, current joint strategy,
// delivery-point ownership and payoffs — is shared with the evolutionary
// algorithm in package evo.
package game

import (
	"math/rand"
	"sync"

	"fairtask/internal/model"
	"fairtask/internal/payoff"
	"fairtask/internal/vdps"
)

// Null is the strategy index meaning "select no delivery points".
const Null = -1

// State is the mutable state of an FTA game: each worker's strategy space
// (its valid VDPSs), the current joint strategy, the delivery-point owner
// table enforcing disjointness, and the induced payoffs.
type State struct {
	gen *vdps.Generator
	// Strategies[w] lists worker w's valid VDPSs in compact reference form,
	// sorted by descending payoff (the same order as vdps.Generator.ForWorker).
	// The 16-byte pointer-free references keep the strategy space — the
	// dominant allocation of a solve — cheap to build and invisible to the
	// garbage collector; resolve sequences on demand with StrategySeq.
	Strategies [][]vdps.StrategyRef
	// Current[w] is the index into Strategies[w] of w's chosen strategy, or
	// Null.
	Current []int
	// Payoffs[w] is the payoff of w's current strategy (0 for Null).
	Payoffs []float64
	// owner[p] is the worker currently holding delivery point p, or -1.
	owner []int
}

// NewState builds a game state with empty strategy choices from the
// generator's per-worker VDPS lists.
//
// The per-worker strategy-space construction is an embarrassingly parallel
// O(W * C) scan over the generator's candidates: with enough workers it is
// sharded over Generator.Parallelism() goroutines using the same 2x-headroom
// heuristic as the generator's own level expansion. Every shard writes only
// its own Strategies slots, and each worker's list is independent of the
// others, so the result is identical to the sequential construction.
func NewState(g *vdps.Generator) *State {
	in := g.Instance()
	n := len(in.Workers)
	s := &State{
		gen:        g,
		Strategies: make([][]vdps.StrategyRef, n),
		Current:    make([]int, n),
		Payoffs:    make([]float64, n),
		owner:      make([]int, len(in.Points)),
	}
	par := g.Parallelism()
	if par > 1 && n >= 2*par {
		var wg sync.WaitGroup
		chunk := (n + par - 1) / par
		for start := 0; start < n; start += chunk {
			end := start + chunk
			if end > n {
				end = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				fillStrategies(g, s.Strategies, lo, hi)
			}(start, end)
		}
		wg.Wait()
	} else {
		fillStrategies(g, s.Strategies, 0, n)
	}
	for w := 0; w < n; w++ {
		s.Current[w] = Null
	}
	for p := range s.owner {
		s.owner[p] = -1
	}
	return s
}

// NewStateWithStrategies builds a game state over prebuilt per-worker
// strategy spaces instead of deriving them from the generator. strategies
// must have one entry per instance worker, each holding exactly what
// Generator.WorkerStrategies would return for that worker against g — the
// streaming engine caches those lists across deltas and rebuilds only the
// workers whose feasible VDPS sets changed, so state construction becomes a
// slice-header copy instead of an O(W*C) scan. The strategy slices are
// shared, not copied; the game dynamics never mutate them. It panics on a
// worker-count mismatch, which is always a caller bug.
func NewStateWithStrategies(g *vdps.Generator, strategies [][]vdps.StrategyRef) *State {
	in := g.Instance()
	if len(strategies) != len(in.Workers) {
		panic("game: NewStateWithStrategies: strategy spaces do not match worker count")
	}
	n := len(in.Workers)
	s := &State{
		gen:        g,
		Strategies: strategies,
		Current:    make([]int, n),
		Payoffs:    make([]float64, n),
		owner:      make([]int, len(in.Points)),
	}
	for w := 0; w < n; w++ {
		s.Current[w] = Null
	}
	for p := range s.owner {
		s.owner[p] = -1
	}
	return s
}

// fillStrategies builds the strategy lists of workers [lo, hi), reusing one
// key scratch so each worker's list is allocated exactly once at its final
// size and only 16-byte sort keys move through the sort.
func fillStrategies(g *vdps.Generator, strategies [][]vdps.StrategyRef, lo, hi int) {
	var sc vdps.StrategyScratch
	for w := lo; w < hi; w++ {
		strategies[w] = g.WorkerStrategies(w, &sc)
	}
}

// Instance returns the underlying problem instance.
func (s *State) Instance() *model.Instance { return s.gen.Instance() }

// Generator returns the VDPS generator backing the state.
func (s *State) Generator() *vdps.Generator { return s.gen }

// points returns the delivery-point set of worker w's strategy si.
func (s *State) points(w, si int) []int {
	return s.gen.RefPoints(s.Strategies[w][si])
}

// StrategySeq returns the visiting sequence of worker w's strategy si. The
// route is shared with the generator; callers must not modify it.
func (s *State) StrategySeq(w, si int) model.Route {
	return s.gen.RefSeq(s.Strategies[w][si])
}

// Available reports whether worker w could switch to strategy si without
// overlapping another worker's current delivery points. The worker's own
// current points do not block the switch. si == Null is always available.
func (s *State) Available(w, si int) bool {
	if si == Null {
		return true
	}
	for _, p := range s.points(w, si) {
		if o := s.owner[p]; o != -1 && o != w {
			return false
		}
	}
	return true
}

// Switch sets worker w's strategy to si (possibly Null), releasing w's
// previous delivery points and claiming the new ones. It panics if the new
// strategy is not available; callers must check Available first.
func (s *State) Switch(w, si int) {
	if cur := s.Current[w]; cur != Null {
		for _, p := range s.points(w, cur) {
			s.owner[p] = -1
		}
	}
	if si == Null {
		s.Current[w] = Null
		s.Payoffs[w] = 0
		return
	}
	for _, p := range s.points(w, si) {
		if o := s.owner[p]; o != -1 && o != w {
			panic("game: Switch to unavailable strategy")
		}
		s.owner[p] = w
	}
	s.Current[w] = si
	s.Payoffs[w] = s.Strategies[w][si].Payoff
}

// RandomInit performs the initial assignment of Algorithm 2 (lines 6-16)
// and Algorithm 3 (lines 6-16): workers are visited in random order and each
// receives a random *singleton* VDPS (a set with one delivery point) among
// those still available; workers without any available singleton get Null.
func (s *State) RandomInit(rng *rand.Rand) {
	order := rng.Perm(len(s.Current))
	for _, w := range order {
		var singles []int
		for si := range s.Strategies[w] {
			// A sequence visits exactly its candidate's point set, so a
			// singleton route is a size-1 set — checked on the point set to
			// avoid chasing the frontier entry per strategy.
			if len(s.points(w, si)) == 1 && s.Available(w, si) {
				singles = append(singles, si)
			}
		}
		if len(singles) == 0 {
			s.Switch(w, Null)
			continue
		}
		s.Switch(w, singles[rng.Intn(len(singles))])
	}
}

// Assignment materializes the current joint strategy as a model.Assignment.
func (s *State) Assignment() *model.Assignment {
	a := model.NewAssignment(len(s.Current))
	for w, si := range s.Current {
		if si != Null {
			a.Routes[w] = s.StrategySeq(w, si).Clone()
		}
	}
	return a
}

// Summary returns the payoff metrics of the current joint strategy.
func (s *State) Summary() payoff.Summary {
	return payoff.Summarize(s.Instance(), s.Assignment())
}

// EligibleWorkers returns the number of workers with a non-empty strategy
// space.
func (s *State) EligibleWorkers() int {
	var n int
	for _, st := range s.Strategies {
		if len(st) > 0 {
			n++
		}
	}
	return n
}
