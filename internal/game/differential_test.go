package game

import (
	"context"
	"testing"

	"fairtask/internal/model"
	"fairtask/internal/obs"
	"fairtask/internal/vdps"
)

// captureRecorder collects RecordIteration calls so the optimized and
// reference solvers' telemetry streams can be compared exactly.
type captureRecorder struct {
	algos []string
	stats []IterationStat
}

func (r *captureRecorder) RecordIteration(algo string, st IterationStat) {
	r.algos = append(r.algos, algo)
	r.stats = append(r.stats, st)
}

func (r *captureRecorder) RecordVDPS(obs.VDPSEvent)     {}
func (r *captureRecorder) RecordSolve(obs.SolveEvent)   {}
func (r *captureRecorder) RecordAssign(obs.AssignEvent) {}

// sameResult requires bit-identical results: the index-backed solver must
// reproduce the reference's assignment, iteration count, convergence flag,
// summary, and trace exactly — not approximately.
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Iterations != want.Iterations || got.Converged != want.Converged {
		t.Fatalf("%s: (iterations, converged) = (%d, %v), reference (%d, %v)",
			label, got.Iterations, got.Converged, want.Iterations, want.Converged)
	}
	if len(got.Assignment.Routes) != len(want.Assignment.Routes) {
		t.Fatalf("%s: %d routes, reference %d", label,
			len(got.Assignment.Routes), len(want.Assignment.Routes))
	}
	for w := range want.Assignment.Routes {
		if !routeEqual(got.Assignment.Routes[w], want.Assignment.Routes[w]) {
			t.Fatalf("%s: worker %d route %v, reference %v",
				label, w, got.Assignment.Routes[w], want.Assignment.Routes[w])
		}
	}
	if got.Summary.Difference != want.Summary.Difference ||
		got.Summary.Average != want.Summary.Average ||
		got.Summary.Total != want.Summary.Total ||
		got.Summary.Min != want.Summary.Min ||
		got.Summary.Max != want.Summary.Max ||
		got.Summary.Assigned != want.Summary.Assigned {
		t.Fatalf("%s: summary %+v, reference %+v", label, got.Summary, want.Summary)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("%s: trace length %d, reference %d", label, len(got.Trace), len(want.Trace))
	}
	for i := range want.Trace {
		if got.Trace[i] != want.Trace[i] {
			t.Fatalf("%s: trace[%d] = %+v, reference %+v", label, i, got.Trace[i], want.Trace[i])
		}
	}
}

// prioritized assigns distinct worker priorities so the priority-aware path
// actually normalizes by different divisors.
func prioritized(in *model.Instance) *model.Instance {
	for w := range in.Workers {
		in.Workers[w].Priority = 0.5 + float64(w%4)
	}
	return in
}

// TestFGTMatchesReference pins the index-backed FGT bit-exactly against the
// retained pre-index implementation across instance shapes, seeds, and the
// option variants that alter the hot loop (priorities, random order,
// tracing, epsilon).
func TestFGTMatchesReference(t *testing.T) {
	instances := map[string]*model.Instance{
		"small":    gridInstance(8, 4, 2, 100),
		"mid":      gridInstance(14, 6, 3, 50),
		"tight":    gridInstance(10, 8, 2, 6),
		"priority": prioritized(gridInstance(12, 5, 2, 100)),
	}
	variants := map[string]Options{
		"default":    {},
		"priorities": {UsePriorities: true},
		"random":     {RandomOrder: true},
		"trace":      {Trace: true},
		"epsilon":    {EpsilonUtility: 0.05, Trace: true},
	}
	for iname, in := range instances {
		g := mustGen(t, in)
		for vname, opt := range variants {
			for seed := int64(0); seed < 4; seed++ {
				opt := opt
				opt.Seed = seed
				got, err := FGT(context.Background(), g, opt)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ReferenceFGT(context.Background(), g, opt)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, iname+"/"+vname, got, want)
			}
		}
	}
}

// TestFGTRecorderMatchesReference compares the per-round telemetry stream,
// which exercises the SummaryTracker on every iteration even without Trace.
func TestFGTRecorderMatchesReference(t *testing.T) {
	g := mustGen(t, gridInstance(12, 6, 2, 100))
	for seed := int64(0); seed < 3; seed++ {
		var recGot, recWant captureRecorder
		if _, err := FGT(context.Background(), g, Options{Seed: seed, Recorder: &recGot}); err != nil {
			t.Fatal(err)
		}
		if _, err := ReferenceFGT(context.Background(), g, Options{Seed: seed, Recorder: &recWant}); err != nil {
			t.Fatal(err)
		}
		if len(recGot.stats) != len(recWant.stats) {
			t.Fatalf("seed %d: %d recorded rounds, reference %d",
				seed, len(recGot.stats), len(recWant.stats))
		}
		for i := range recWant.stats {
			if recGot.algos[i] != recWant.algos[i] || recGot.stats[i] != recWant.stats[i] {
				t.Fatalf("seed %d round %d: recorded (%s, %+v), reference (%s, %+v)",
					seed, i, recGot.algos[i], recGot.stats[i], recWant.algos[i], recWant.stats[i])
			}
		}
	}
}

// TestVerifyNEAcceptsFGTResult keeps the index-backed certificate consistent
// with the index-backed solver, in both plain and priority modes.
func TestVerifyNEAcceptsFGTResult(t *testing.T) {
	for _, use := range []bool{false, true} {
		in := prioritized(gridInstance(10, 5, 2, 100))
		g := mustGen(t, in)
		opt := Options{Seed: 3, UsePriorities: use}
		res, err := FGT(context.Background(), g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("usePriorities=%v: FGT did not converge", use)
		}
		ne := NEOptions{Tol: 1e-9}
		if use {
			ne.Priorities = workerPriorities(in, true)
		}
		if err := VerifyNEOpts(g, res.Assignment, ne); err != nil {
			t.Fatalf("usePriorities=%v: %v", use, err)
		}
	}
}

// TestNewStateParallelMatchesSequential pins the sharded strategy-space
// construction to the sequential one: same candidates, same order, same
// payoffs. Run with -race this also exercises the shard boundaries.
func TestNewStateParallelMatchesSequential(t *testing.T) {
	in := gridInstance(16, 12, 2, 100)
	seq, err := vdps.Generate(in, vdps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := vdps.Generate(in, vdps.Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewState(seq), NewState(par)
	if len(a.Strategies) != len(b.Strategies) {
		t.Fatalf("worker counts differ: %d vs %d", len(a.Strategies), len(b.Strategies))
	}
	for w := range a.Strategies {
		if len(a.Strategies[w]) != len(b.Strategies[w]) {
			t.Fatalf("worker %d: %d strategies sequential, %d parallel",
				w, len(a.Strategies[w]), len(b.Strategies[w]))
		}
		for si := range a.Strategies[w] {
			// StrategyRef is comparable; equal refs imply equal sequences.
			if x, y := a.Strategies[w][si], b.Strategies[w][si]; x != y {
				t.Fatalf("worker %d strategy %d differs: %+v vs %+v", w, si, x, y)
			}
		}
	}
}
