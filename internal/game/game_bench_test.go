package game

import (
	"context"
	"testing"

	"fairtask/internal/obs"
	"fairtask/internal/vdps"
)

func benchSetup(b *testing.B, nPoints, nWorkers int) *vdps.Generator {
	b.Helper()
	in := gridInstance(nPoints, nWorkers, 3, 100)
	g, err := vdps.Generate(in, vdps.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkFGT(b *testing.B) {
	g := benchSetup(b, 20, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FGT(context.Background(), g, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFGTWithRecorder measures solver overhead with telemetry enabled.
// Compare against BenchmarkFGT (nil recorder): the disabled path must cost
// only the per-iteration nil check.
func BenchmarkFGTWithRecorder(b *testing.B) {
	g := benchSetup(b, 20, 10)
	rec := obs.NewMetricsRecorder(obs.NewRegistry())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FGT(context.Background(), g, Options{Seed: 1, Recorder: rec}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestResponseRound(b *testing.B) {
	g := benchSetup(b, 20, 10)
	s := NewState(g)
	opt := Options{}.withDefaults()
	idx := newUtilityIndex(s, opt.Fairness, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := range s.Current {
			bestResponse(s, idx, w, opt)
		}
	}
}

// BenchmarkBestResponse measures a single index-backed best-response
// evaluation; it must report 0 allocs/op (ISSUE 4 acceptance).
func BenchmarkBestResponse(b *testing.B) {
	g := benchSetup(b, 20, 10)
	s := NewState(g)
	opt := Options{}.withDefaults()
	idx := newUtilityIndex(s, opt.Fairness, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bestResponse(s, idx, 0, opt)
	}
}

// BenchmarkReferenceBestResponse is the pre-index O(W)-scan form, kept for
// before/after comparison with BenchmarkBestResponse.
func BenchmarkReferenceBestResponse(b *testing.B) {
	g := benchSetup(b, 20, 10)
	s := NewState(g)
	opt := Options{}.withDefaults()
	scratch := make([]float64, len(s.Payoffs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceBestResponse(s, 0, opt, nil, scratch)
	}
}
