package game

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fairtask/internal/vdps"
)

// TestStateOwnershipInvariant drives the game state through random legal
// switch sequences and checks, after every operation, that the ownership
// table matches the current strategies exactly: a point is owned by w iff
// it appears in w's current strategy, and the materialized assignment
// always validates.
func TestStateOwnershipInvariant(t *testing.T) {
	f := func(seed int64, opsRaw []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		in := gridInstance(6+rng.Intn(5), 3+rng.Intn(3), 2, 50)
		g, err := vdps.Generate(in, vdps.Options{})
		if err != nil {
			return false
		}
		s := NewState(g)
		for _, op := range opsRaw {
			w := int(op) % len(s.Current)
			if len(s.Strategies[w]) == 0 {
				continue
			}
			si := int(op/7) % (len(s.Strategies[w]) + 1)
			if si == len(s.Strategies[w]) {
				si = Null
			}
			if !s.Available(w, si) {
				continue
			}
			s.Switch(w, si)

			// Invariant: the assignment derived from Current validates
			// (disjointness + feasibility + maxDP).
			if err := s.Assignment().Validate(in); err != nil {
				t.Logf("assignment invalid after switch: %v", err)
				return false
			}
			// Invariant: payoffs match the chosen strategies.
			for w2, cur := range s.Current {
				want := 0.0
				if cur != Null {
					want = s.Strategies[w2][cur].Payoff
				}
				if s.Payoffs[w2] != want {
					t.Logf("payoff cache inconsistent for worker %d", w2)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAvailabilityMatchesValidation cross-checks Available against the
// model-level validator: whenever Available says yes, the switch must
// produce a valid assignment.
func TestAvailabilityMatchesValidation(t *testing.T) {
	in := gridInstance(8, 4, 2, 100)
	g := mustGen(t, in)
	s := NewState(g)
	rng := rand.New(rand.NewSource(2))
	s.RandomInit(rng)
	for trial := 0; trial < 200; trial++ {
		w := rng.Intn(len(s.Current))
		if len(s.Strategies[w]) == 0 {
			continue
		}
		si := rng.Intn(len(s.Strategies[w]))
		if !s.Available(w, si) {
			continue
		}
		before := s.Current[w]
		s.Switch(w, si)
		if err := s.Assignment().Validate(in); err != nil {
			t.Fatalf("Available=true but switch produced invalid assignment: %v", err)
		}
		// Restore to keep exploring diverse states.
		if before == Null || s.Available(w, before) {
			s.Switch(w, before)
		}
	}
}
