package game

import (
	"fairtask/internal/payoff"
)

// SummaryTracker maintains the per-iteration payoff statistics the solver
// traces (IterationStat.PayoffDiff and AvgPayoff) incrementally.
//
// The pre-index solvers re-ran payoff.Summarize over the whole instance
// every traced round: materialize the assignment (cloning every route),
// recompute every worker's payoff from the travel model, then aggregate —
// O(W * route) travel evaluations per round. The tracker instead recomputes
// only the payoff of the worker that switched, with the same payoff.Worker
// call Summarize uses on the same route, so the maintained vector — and the
// Difference/Average derived from it — is bit-identical to what Summarize
// would report, at O(route) per switch plus O(W log W) per traced round.
//
// The tracked vector deliberately re-derives payoffs from the travel model
// rather than mirroring State.Payoffs: the VDPS-cached strategy payoffs are
// computed from candidate aggregates whose summation order can differ from
// the route-order recomputation in the final ulps, and traces must stay
// bit-comparable with the reference solvers and the end-of-run Summary.
type SummaryTracker struct {
	s       *State
	pay     []float64
	scratch []float64
}

// NewSummaryTracker captures the state's current per-worker payoffs.
func NewSummaryTracker(s *State) *SummaryTracker {
	t := &SummaryTracker{
		s:       s,
		pay:     make([]float64, len(s.Current)),
		scratch: make([]float64, len(s.Current)),
	}
	for w := range s.Current {
		t.Update(w)
	}
	return t
}

// Update refreshes worker w's tracked payoff; call it after every
// State.Switch of w.
func (t *SummaryTracker) Update(w int) {
	si := t.s.Current[w]
	if si == Null {
		t.pay[w] = 0
		return
	}
	t.pay[w] = payoff.Worker(t.s.Instance(), w, t.s.StrategySeq(w, si))
}

// DiffAvg returns the payoff difference P_dif (Equation 2) and the mean
// payoff of the tracked vector, bit-identical to the Difference and Average
// fields payoff.Summarize would compute for the current assignment.
func (t *SummaryTracker) DiffAvg() (diff, avg float64) {
	return payoff.DifferenceBuf(t.pay, t.scratch), payoff.Average(t.pay)
}
