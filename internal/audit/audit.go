// Package audit independently re-verifies task assignments against the
// paper's guarantees. Solvers promise that their outputs are spatial task
// assignments per Definition 8 (disjoint routes, deadlines met, maxDP
// respected), that routes are drawn from the workers' Valid Delivery Point
// Sets (§IV), that the reported payoff metrics match Definition 7 and
// Equation 2, and — for the game-theoretic methods — that the result is an
// equilibrium (§V–§VI). A production assignment service must never silently
// violate these invariants, so this package re-derives every one of them
// from the instance alone, sharing no state with the solver that produced
// the assignment.
//
// The auditor is wired behind fairtask.Options.Audit, the HTTP service's
// audit query parameter, and the fta audit CLI subcommand; see docs/AUDIT.md.
package audit

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"fairtask/internal/assign"
	"fairtask/internal/evo"
	"fairtask/internal/fairness"
	"fairtask/internal/game"
	"fairtask/internal/model"
	"fairtask/internal/payoff"
	"fairtask/internal/vdps"
)

// Check identifies one audited invariant family.
type Check string

// The audited invariants, in execution order.
const (
	// CheckStructure re-derives Assignment.Validate's structural invariants:
	// one route per worker, in-range and duplicate-free routes, pairwise
	// disjointness, and maxDP.
	CheckStructure Check = "structure"
	// CheckDeadlines re-simulates every route with RouteArrivals and checks
	// each arrival against the point's earliest task expiration
	// (Definition 6).
	CheckDeadlines Check = "deadlines"
	// CheckSummary recomputes the per-worker payoffs, P_dif, average and the
	// remaining Summary fields from scratch and compares them with the
	// reported summary within tolerance.
	CheckSummary Check = "summary"
	// CheckVDPS verifies that every non-empty route is a sequence the
	// worker's candidate generator actually admits, and that the generator's
	// Pareto frontiers satisfy their monotonicity contract.
	CheckVDPS Check = "vdps-membership"
	// CheckEquilibrium verifies the equilibrium certificate: a pure Nash
	// equilibrium under the IAU utility for FGT, the improved evolutionary
	// stable state for IEGT.
	CheckEquilibrium Check = "equilibrium"
	// CheckLexifair verifies the leximin certificate for LEXIFAIR
	// assignments: an independent re-solve of every frozen level confirms
	// that no worker's minimum payoff can be raised without lowering a
	// poorer worker's.
	CheckLexifair Check = "lexifair"
)

// Violation is one broken invariant found by the auditor.
type Violation struct {
	// Check names the invariant family.
	Check Check `json:"check"`
	// Worker is the offending worker index, or -1 when the violation is not
	// attributable to a single worker.
	Worker int `json:"worker"`
	// Detail is a human-readable description of the violation.
	Detail string `json:"detail"`
}

// String renders the violation as "check: worker N: detail", dropping the
// worker part for violations not attributable to one worker.
func (v Violation) String() string {
	if v.Worker >= 0 {
		return fmt.Sprintf("%s: worker %d: %s", v.Check, v.Worker, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Check, v.Detail)
}

// Report is the outcome of one audit run.
type Report struct {
	// Checks lists the invariant families that were executed.
	Checks []Check `json:"checks"`
	// Skipped lists the families that could not run: checks gated behind a
	// failed structure check, the summary comparison when no summary was
	// reported, or the equilibrium certificate when the algorithm has none
	// or the solver did not converge.
	Skipped []Check `json:"skipped,omitempty"`
	// Violations holds every broken invariant found.
	Violations []Violation `json:"violations,omitempty"`
	// Recomputed is the payoff summary the auditor derived from scratch
	// (independent of the solver's reported summary). Invalid routes are
	// treated as empty.
	Recomputed payoff.Summary `json:"-"`
}

// OK reports whether the audit found no violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil for a clean report and an *Error wrapping the report
// otherwise.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return &Error{Report: r}
}

// Error is the error form of a failed audit, carrying the full report.
type Error struct {
	Report *Report
}

// Error implements error, listing every violation.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d violation(s)", len(e.Report.Violations))
	for _, v := range e.Report.Violations {
		b.WriteString("; ")
		b.WriteString(v.String())
	}
	return b.String()
}

// Options configure an audit run.
type Options struct {
	// Generator supplies the VDPS candidates for the membership and
	// equilibrium checks. Nil makes the auditor regenerate candidates from
	// the instance with the VDPS options below — fully independent, but as
	// expensive as the solver's own generation.
	Generator *vdps.Generator
	// VDPS configures candidate regeneration when Generator is nil. It must
	// match the options the assignment was solved with (in particular
	// Epsilon), or the equilibrium check may see strategies the solver never
	// had.
	VDPS vdps.Options
	// Fairness holds the IAU weights for the FGT equilibrium certificate;
	// the zero value means the paper's alpha = beta = 0.5.
	Fairness fairness.Params
	// EpsilonUtility is the utility-gain threshold below which a deviation
	// does not refute the FGT equilibrium; it must be at least the solver's
	// own threshold. Zero means the numerical default of 1e-9; any negative
	// value demands a strict equilibrium (see game.NEOptions.Tol).
	EpsilonUtility float64
	// UsePriorities switches the FGT certificate to the priority-aware IAU,
	// reading priorities from the instance (it must match the solve).
	UsePriorities bool
	// Tolerance is the relative tolerance for the summary comparison.
	// Zero means the numerical default of 1e-6; any negative value demands
	// bit-exact summaries, which the zero value cannot express.
	Tolerance float64
	// Algorithm is the name of the solver that produced the assignment
	// ("FGT", "IEGT", ...). Only FGT and IEGT have equilibrium
	// certificates; for other values CheckEquilibrium is skipped.
	Algorithm string
	// Converged reports whether the solver reached its fixed point. The
	// equilibrium certificate only applies to converged runs; an
	// iteration-capped run is allowed to be off-equilibrium.
	Converged bool
}

// Run audits the assignment against the instance. sum is the solver's
// reported summary; nil skips the summary comparison (the recomputed summary
// is still returned in the report). Run never panics on malformed
// assignments: structurally invalid routes are reported and excluded from
// the downstream checks.
func Run(in *model.Instance, a *model.Assignment, sum *payoff.Summary, opt Options) *Report {
	r := &Report{}
	if opt.Tolerance < 0 {
		opt.Tolerance = 0 // bit-exact summary comparison
	} else if opt.Tolerance == 0 {
		opt.Tolerance = 1e-6
	}

	// Structure: worker count, per-route validity, disjointness, maxDP.
	r.Checks = append(r.Checks, CheckStructure)
	if len(a.Routes) != len(in.Workers) {
		r.violate(CheckStructure, -1, fmt.Sprintf("%d routes for %d workers",
			len(a.Routes), len(in.Workers)))
		// Nothing downstream is well-defined without a per-worker route map.
		r.Skipped = append(r.Skipped, CheckDeadlines, CheckSummary, CheckVDPS, CheckEquilibrium)
		if opt.Algorithm == "LEXIFAIR" {
			r.Skipped = append(r.Skipped, CheckLexifair)
		}
		return r
	}
	routeOK := r.checkStructure(in, a)

	// Deadlines: re-simulate arrivals for every structurally valid route.
	r.Checks = append(r.Checks, CheckDeadlines)
	r.checkDeadlines(in, a, routeOK)

	// Summary: recompute everything from scratch, then compare if reported.
	r.Recomputed = recompute(in, a, routeOK)
	if sum != nil {
		r.Checks = append(r.Checks, CheckSummary)
		r.checkSummary(sum, opt.Tolerance)
	} else {
		r.Skipped = append(r.Skipped, CheckSummary)
	}

	// VDPS: frontier contract plus route membership in the strategy spaces.
	r.Checks = append(r.Checks, CheckVDPS)
	g := opt.Generator
	if g == nil {
		var err error
		g, err = vdps.Generate(in, opt.VDPS)
		if err != nil {
			r.violate(CheckVDPS, -1, "candidate regeneration failed: "+err.Error())
			r.Skipped = append(r.Skipped, CheckEquilibrium)
			if opt.Algorithm == "LEXIFAIR" {
				r.Skipped = append(r.Skipped, CheckLexifair)
			}
			return r
		}
	}
	membershipOK := r.checkVDPS(in, g, a, routeOK)

	// Equilibrium: only meaningful for a converged game-theoretic solve on
	// an assignment whose routes all live in the strategy spaces (otherwise
	// LoadAssignment fails and the membership violation is already reported).
	if (opt.Algorithm == "FGT" || opt.Algorithm == "IEGT") && opt.Converged && membershipOK {
		r.Checks = append(r.Checks, CheckEquilibrium)
		r.checkEquilibrium(in, g, a, opt)
	} else {
		r.Skipped = append(r.Skipped, CheckEquilibrium)
	}

	// Leximin: applicable to LEXIFAIR solves only, and — like the
	// equilibrium certificates — only meaningful for a converged run whose
	// routes all live in the strategy spaces.
	if opt.Algorithm == "LEXIFAIR" {
		if opt.Converged && membershipOK {
			r.Checks = append(r.Checks, CheckLexifair)
			r.checkLexifair(g, a)
		} else {
			r.Skipped = append(r.Skipped, CheckLexifair)
		}
	}
	return r
}

func (r *Report) violate(c Check, worker int, detail string) {
	r.Violations = append(r.Violations, Violation{Check: c, Worker: worker, Detail: detail})
}

// checkStructure validates every route's indices, uniqueness, maxDP and
// cross-worker disjointness. It returns per-worker flags; a false entry means
// the route is not even indexable and must be excluded from arrival
// simulation and payoff computation (both would panic on it).
func (r *Report) checkStructure(in *model.Instance, a *model.Assignment) []bool {
	routeOK := make([]bool, len(a.Routes))
	owner := make(map[int]int, len(in.Points))
	for w, route := range a.Routes {
		routeOK[w] = true
		seen := make(map[int]bool, len(route))
		for _, p := range route {
			if p < 0 || p >= len(in.Points) {
				r.violate(CheckStructure, w, fmt.Sprintf(
					"route references point %d, instance has %d points", p, len(in.Points)))
				routeOK[w] = false
				continue
			}
			if seen[p] {
				r.violate(CheckStructure, w, fmt.Sprintf("route visits point %d twice", p))
				routeOK[w] = false
				continue
			}
			seen[p] = true
			if prev, taken := owner[p]; taken {
				r.violate(CheckStructure, w, fmt.Sprintf(
					"point %d already assigned to worker %d (routes overlap)", p, prev))
			} else {
				owner[p] = w
			}
		}
		if max := in.Workers[w].MaxDP; max > 0 && len(route) > max {
			r.violate(CheckStructure, w, fmt.Sprintf(
				"route has %d points, worker maxDP is %d", len(route), max))
		}
	}
	return routeOK
}

// checkDeadlines re-simulates each valid route and flags every stop whose
// arrival exceeds the point's earliest task expiration.
func (r *Report) checkDeadlines(in *model.Instance, a *model.Assignment, routeOK []bool) {
	for w, route := range a.Routes {
		if !routeOK[w] || len(route) == 0 {
			continue
		}
		arr := in.RouteArrivals(w, route)
		for i, p := range route {
			if e := in.Points[p].EarliestExpiry(); arr[i] > e {
				r.violate(CheckDeadlines, w, fmt.Sprintf(
					"arrives at point %d (stop %d) at %g, after its expiry %g", p, i, arr[i], e))
			}
		}
	}
}

// recompute derives the payoff summary from scratch. Structurally invalid
// routes contribute a zero payoff, like the null strategy.
func recompute(in *model.Instance, a *model.Assignment, routeOK []bool) payoff.Summary {
	clean := model.NewAssignment(len(a.Routes))
	for w, route := range a.Routes {
		if routeOK[w] {
			clean.Routes[w] = route
		}
	}
	return payoff.Summarize(in, clean)
}

// checkSummary compares the reported summary with the recomputed one.
func (r *Report) checkSummary(sum *payoff.Summary, tol float64) {
	got := &r.Recomputed
	if len(sum.Payoffs) != len(got.Payoffs) {
		r.violate(CheckSummary, -1, fmt.Sprintf(
			"reported %d payoffs, instance has %d workers", len(sum.Payoffs), len(got.Payoffs)))
		return
	}
	for w := range got.Payoffs {
		if !closeTo(sum.Payoffs[w], got.Payoffs[w], tol) {
			r.violate(CheckSummary, w, fmt.Sprintf(
				"reported payoff %g, recomputed %g", sum.Payoffs[w], got.Payoffs[w]))
		}
	}
	scalar := func(name string, reported, recomputed float64) {
		if !closeTo(reported, recomputed, tol) {
			r.violate(CheckSummary, -1, fmt.Sprintf(
				"reported %s %g, recomputed %g", name, reported, recomputed))
		}
	}
	scalar("payoff difference", sum.Difference, got.Difference)
	scalar("average payoff", sum.Average, got.Average)
	scalar("minimum payoff", sum.Min, got.Min)
	scalar("maximum payoff", sum.Max, got.Max)
	scalar("total payoff", sum.Total, got.Total)
	if sum.Assigned != got.Assigned {
		r.violate(CheckSummary, -1, fmt.Sprintf(
			"reported %d assigned workers, recomputed %d", sum.Assigned, got.Assigned))
	}
}

// closeTo reports |a-b| <= tol*(1+|b|): absolute near zero, relative at scale.
func closeTo(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(b))
}

// checkVDPS verifies the generator's frontier contract and that every valid
// non-empty route appears verbatim in its worker's strategy space. It returns
// whether every audited route is a member (gating the equilibrium check,
// which loads the assignment into a game state).
func (r *Report) checkVDPS(in *model.Instance, g *vdps.Generator, a *model.Assignment, routeOK []bool) bool {
	r.checkFrontiers(g)
	ok := true
	for w, route := range a.Routes {
		if !routeOK[w] || len(route) == 0 {
			if !routeOK[w] {
				ok = false
			}
			continue
		}
		found := false
		for _, st := range g.ForWorker(w) {
			if routesEqual(st.Seq, route) {
				found = true
				break
			}
		}
		if !found {
			r.violate(CheckVDPS, w, fmt.Sprintf(
				"route %v is not a valid delivery point sequence for this worker", route))
			ok = false
		}
	}
	return ok
}

// checkFrontiers asserts the candidates' Pareto-frontier contract: frontiers
// are non-empty, strictly ascending in both Time and Slack (dominance prunes
// any state that is no faster and no slacker than another), and every state's
// sequence is a permutation of the candidate's point set.
func (r *Report) checkFrontiers(g *vdps.Generator) {
	for ci := range g.Candidates() {
		c := &g.Candidates()[ci]
		if len(c.Frontier) == 0 {
			r.violate(CheckVDPS, -1, fmt.Sprintf("candidate %d has an empty frontier", ci))
			continue
		}
		for i, st := range c.Frontier {
			if !isPermutation(st.Seq, c.Points) {
				r.violate(CheckVDPS, -1, fmt.Sprintf(
					"candidate %d state %d: sequence %v does not visit point set %v",
					ci, i, st.Seq, c.Points))
			}
			if i == 0 {
				continue
			}
			prev := c.Frontier[i-1]
			if !(st.Time > prev.Time && st.Slack > prev.Slack) {
				r.violate(CheckVDPS, -1, fmt.Sprintf(
					"candidate %d frontier not strictly ascending: state %d (time %g, slack %g) after (time %g, slack %g)",
					ci, i, st.Time, st.Slack, prev.Time, prev.Slack))
			}
		}
	}
}

// isPermutation reports whether seq visits exactly the points of the sorted
// set, each once.
func isPermutation(seq model.Route, set []int) bool {
	if len(seq) != len(set) {
		return false
	}
	sorted := append([]int(nil), seq...)
	sort.Ints(sorted)
	for i := range sorted {
		if sorted[i] != set[i] {
			return false
		}
	}
	return true
}

func routesEqual(a, b model.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkEquilibrium runs the algorithm's equilibrium certificate.
func (r *Report) checkEquilibrium(in *model.Instance, g *vdps.Generator, a *model.Assignment, opt Options) {
	switch opt.Algorithm {
	case "FGT":
		ne := game.NEOptions{Fairness: opt.Fairness, Tol: opt.EpsilonUtility}
		if opt.UsePriorities {
			ne.Priorities = make([]float64, len(in.Workers))
			for i := range in.Workers {
				ne.Priorities[i] = in.Workers[i].EffectivePriority()
			}
		}
		if err := game.VerifyNEOpts(g, a, ne); err != nil {
			r.violate(CheckEquilibrium, -1, err.Error())
		}
	case "IEGT":
		if err := evo.VerifyEquilibrium(g, a); err != nil {
			r.violate(CheckEquilibrium, -1, err.Error())
		}
	}
}

// checkLexifair runs the leximin certificate: assign.VerifyLexifair
// independently re-solves each frozen payoff level and rejects any
// assignment whose minimum could be raised without hurting a poorer worker.
func (r *Report) checkLexifair(g *vdps.Generator, a *model.Assignment) {
	if err := assign.VerifyLexifair(context.Background(), g, a, 0); err != nil {
		r.violate(CheckLexifair, -1, err.Error())
	}
}
