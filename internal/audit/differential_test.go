// Differential correctness tests: every solver's output on small random
// instances must pass the independent audit, and the fairness-blind score of
// the heuristics must never beat the exhaustive Exact search. The file lives
// in package audit_test so it can exercise the public fairtask wiring
// (fairtask imports internal/audit, so the in-package tests cannot).
package audit_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fairtask"
	"fairtask/internal/assign"
	"fairtask/internal/audit"
	"fairtask/internal/game"
	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/travel"
	"fairtask/internal/vdps"
)

// randomInstance builds a small instance with heterogeneous expiries so the
// strategy spaces stay enumerable for assign.Exact.
func randomInstance(seed int64) *model.Instance {
	rng := rand.New(rand.NewSource(seed))
	in := &model.Instance{
		Center: geo.Pt(2, 2),
		Travel: travel.MustModel(geo.Euclidean{}, 10),
	}
	for i := 0; i < 6; i++ {
		in.Points = append(in.Points, model.DeliveryPoint{
			ID:  i,
			Loc: geo.Pt(rng.Float64()*4, rng.Float64()*4),
			Tasks: []model.Task{{
				ID:     i,
				Point:  i,
				Expiry: 0.5 + rng.Float64()*1.5,
				Reward: 1 + rng.Float64(),
			}},
		})
	}
	for w := 0; w < 3; w++ {
		in.Workers = append(in.Workers, model.Worker{
			ID:    w,
			Loc:   geo.Pt(rng.Float64()*4, rng.Float64()*4),
			MaxDP: 2,
		})
	}
	return in
}

// exactScore runs the exhaustive baseline and returns the fairness-blind
// total-payoff score it optimizes, or NaN when the space is too large.
func exactScore(t *testing.T, in *model.Instance) float64 {
	t.Helper()
	g, err := vdps.Generate(in, vdps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := assign.Exact{Lambda: 1}.Assign(context.Background(), g)
	if err != nil {
		if err == assign.ErrSearchTooLarge {
			return math.NaN()
		}
		t.Fatal(err)
	}
	return assign.Score(res.Summary.Payoffs, 1)
}

// TestSolversPassAudit solves small random instances with every algorithm
// through the public API with auditing enabled (a violation fails the solve),
// re-audits the result explicitly, and cross-checks the heuristics against
// the exhaustive search.
func TestSolversPassAudit(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			in := randomInstance(seed)
			best := exactScore(t, in)
			for _, alg := range []fairtask.Algorithm{
				fairtask.AlgFGT, fairtask.AlgIEGT, fairtask.AlgMPTA, fairtask.AlgGTA,
			} {
				res, err := fairtask.Solve(in, fairtask.Options{
					Algorithm: alg,
					Seed:      seed + 1,
					Audit:     true,
				})
				if err != nil {
					t.Fatalf("%s: %v", alg, err)
				}
				rep := fairtask.Audit(in, res.Assignment, &res.Summary, fairtask.AuditOptions{
					Algorithm: string(alg),
					Converged: res.Converged,
				})
				if !rep.OK() {
					t.Errorf("%s: audit violations: %v", alg, rep.Violations)
				}
				if !math.IsNaN(best) {
					if got := assign.Score(res.Summary.Payoffs, 1); got > best+1e-9 {
						t.Errorf("%s: score %g beats exhaustive optimum %g", alg, got, best)
					}
				}
				if alg == fairtask.AlgFGT && res.Converged {
					g, err := vdps.Generate(in, vdps.Options{})
					if err != nil {
						t.Fatal(err)
					}
					if err := game.VerifyNE(g, res.Assignment, fairtask.DefaultFairness(), 1e-9); err != nil {
						t.Errorf("converged FGT is not a Nash equilibrium: %v", err)
					}
				}
			}
		})
	}
}

// TestAuditCatchesForeignAssignment swaps the assignments of two different
// instances: the audit must reject an assignment that was solved for a
// different geometry.
func TestAuditCatchesForeignAssignment(t *testing.T) {
	inA, inB := randomInstance(100), randomInstance(200)
	resB, err := fairtask.Solve(inB, fairtask.Options{Algorithm: fairtask.AlgMPTA})
	if err != nil {
		t.Fatal(err)
	}
	if resB.Summary.Assigned == 0 {
		t.Skip("no assigned workers to transplant")
	}
	rep := audit.Run(inA, resB.Assignment, &resB.Summary, audit.Options{})
	if rep.OK() {
		t.Error("audit accepted an assignment for a different instance")
	}
}
