package audit

import (
	"context"
	"testing"

	"fairtask/internal/assign"
	"fairtask/internal/evo"
	"fairtask/internal/game"
	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/payoff"
	"fairtask/internal/travel"
	"fairtask/internal/vdps"
)

// lineInstance places nPoints delivery points at x = 1..n on the x axis,
// center at the origin, workers at (-1, 0), unit speed, one unit-reward
// task per point with the given expiry.
func lineInstance(nPoints, nWorkers int, expiry float64, maxDP int) *model.Instance {
	in := &model.Instance{
		Center: geo.Pt(0, 0),
		Travel: travel.MustModel(geo.Euclidean{}, 1),
	}
	for i := 0; i < nPoints; i++ {
		in.Points = append(in.Points, model.DeliveryPoint{
			ID:  i,
			Loc: geo.Pt(float64(i+1), 0),
			Tasks: []model.Task{
				{ID: i, Point: i, Expiry: expiry, Reward: 1},
			},
		})
	}
	for w := 0; w < nWorkers; w++ {
		in.Workers = append(in.Workers, model.Worker{ID: w, Loc: geo.Pt(-1, 0), MaxDP: maxDP})
	}
	return in
}

func mustGenerate(t *testing.T, in *model.Instance) *vdps.Generator {
	t.Helper()
	g, err := vdps.Generate(in, vdps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// hasViolation reports whether the report contains a violation of the given
// check (for any worker when worker is -2).
func hasViolation(r *Report, c Check, worker int) bool {
	for _, v := range r.Violations {
		if v.Check == c && (worker == -2 || v.Worker == worker) {
			return true
		}
	}
	return false
}

func hasSkipped(r *Report, c Check) bool {
	for _, s := range r.Skipped {
		if s == c {
			return true
		}
	}
	return false
}

func TestRunCleanFGT(t *testing.T) {
	in := lineInstance(4, 2, 100, 2)
	g := mustGenerate(t, in)
	res, err := game.FGT(context.Background(), g, game.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("FGT did not converge on a trivial instance")
	}
	rep := Run(in, res.Assignment, &res.Summary, Options{
		Generator: g, Algorithm: "FGT", Converged: true,
	})
	if !rep.OK() {
		t.Fatalf("clean FGT result failed audit: %v", rep.Violations)
	}
	want := []Check{CheckStructure, CheckDeadlines, CheckSummary, CheckVDPS, CheckEquilibrium}
	if len(rep.Checks) != len(want) {
		t.Fatalf("Checks = %v, want %v", rep.Checks, want)
	}
	for i, c := range want {
		if rep.Checks[i] != c {
			t.Errorf("Checks[%d] = %s, want %s", i, rep.Checks[i], c)
		}
	}
	if len(rep.Skipped) != 0 {
		t.Errorf("Skipped = %v, want none", rep.Skipped)
	}
	if rep.Err() != nil {
		t.Errorf("Err() = %v on a clean report", rep.Err())
	}
}

func TestRunCleanIEGT(t *testing.T) {
	in := lineInstance(4, 2, 100, 2)
	g := mustGenerate(t, in)
	res, err := evo.IEGT(context.Background(), g, evo.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(in, res.Assignment, &res.Summary, Options{
		Generator: g, Algorithm: "IEGT", Converged: res.Converged,
	})
	if !rep.OK() {
		t.Fatalf("clean IEGT result failed audit: %v", rep.Violations)
	}
}

// TestRunRegenerates exercises the Generator == nil path: the auditor must
// regenerate candidates itself and reach the same verdict.
func TestRunRegenerates(t *testing.T) {
	in := lineInstance(3, 2, 100, 2)
	g := mustGenerate(t, in)
	res, err := game.FGT(context.Background(), g, game.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(in, res.Assignment, &res.Summary, Options{
		Algorithm: "FGT", Converged: res.Converged,
	})
	if !rep.OK() {
		t.Fatalf("audit with regeneration failed: %v", rep.Violations)
	}
}

func TestWorkerCountMismatch(t *testing.T) {
	in := lineInstance(3, 2, 100, 2)
	a := model.NewAssignment(1) // instance has 2 workers
	rep := Run(in, a, nil, Options{})
	if !hasViolation(rep, CheckStructure, -1) {
		t.Fatalf("missing structure violation: %v", rep.Violations)
	}
	for _, c := range []Check{CheckDeadlines, CheckSummary, CheckVDPS, CheckEquilibrium} {
		if !hasSkipped(rep, c) {
			t.Errorf("check %s not skipped after worker-count mismatch", c)
		}
	}
}

func TestOverlappingRoutes(t *testing.T) {
	in := lineInstance(3, 2, 100, 2)
	a := model.NewAssignment(2)
	a.Routes[0] = model.Route{0}
	a.Routes[1] = model.Route{0} // same point
	rep := Run(in, a, nil, Options{})
	if !hasViolation(rep, CheckStructure, 1) {
		t.Fatalf("missing overlap violation: %v", rep.Violations)
	}
}

func TestMaxDPExceeded(t *testing.T) {
	in := lineInstance(3, 1, 100, 2)
	a := model.NewAssignment(1)
	a.Routes[0] = model.Route{0, 1, 2} // maxDP is 2
	rep := Run(in, a, nil, Options{})
	if !hasViolation(rep, CheckStructure, 0) {
		t.Fatalf("missing maxDP violation: %v", rep.Violations)
	}
}

func TestOutOfRangePoint(t *testing.T) {
	in := lineInstance(3, 1, 100, 0)
	a := model.NewAssignment(1)
	a.Routes[0] = model.Route{0, 7}   // point 7 does not exist
	rep := Run(in, a, nil, Options{}) // must not panic in RouteArrivals
	if !hasViolation(rep, CheckStructure, 0) {
		t.Fatalf("missing out-of-range violation: %v", rep.Violations)
	}
	// The invalid route contributes zero payoff, like the null strategy.
	if rep.Recomputed.Payoffs[0] != 0 {
		t.Errorf("invalid route got payoff %g, want 0", rep.Recomputed.Payoffs[0])
	}
}

func TestDuplicatePoint(t *testing.T) {
	in := lineInstance(3, 1, 100, 0)
	a := model.NewAssignment(1)
	a.Routes[0] = model.Route{1, 1}
	rep := Run(in, a, nil, Options{})
	if !hasViolation(rep, CheckStructure, 0) {
		t.Fatalf("missing duplicate-point violation: %v", rep.Violations)
	}
}

func TestDeadlineMiss(t *testing.T) {
	// Expiry 2.5: visiting points 0 then 2 arrives at x=3 at time 1+2=3 from
	// the center, past the deadline.
	in := lineInstance(3, 1, 2.5, 0)
	a := model.NewAssignment(1)
	a.Routes[0] = model.Route{0, 2}
	rep := Run(in, a, nil, Options{})
	if !hasViolation(rep, CheckDeadlines, 0) {
		t.Fatalf("missing deadline violation: %v", rep.Violations)
	}
}

func TestSummaryMismatch(t *testing.T) {
	in := lineInstance(3, 2, 100, 2)
	a := model.NewAssignment(2)
	a.Routes[0] = model.Route{0}
	a.Routes[1] = model.Route{1}
	good := payoff.Summarize(in, a)

	t.Run("clean", func(t *testing.T) {
		rep := Run(in, a, &good, Options{})
		if !rep.OK() {
			t.Fatalf("correct summary rejected: %v", rep.Violations)
		}
	})
	t.Run("difference", func(t *testing.T) {
		bad := good
		bad.Difference += 0.5
		rep := Run(in, a, &bad, Options{})
		if !hasViolation(rep, CheckSummary, -1) {
			t.Fatalf("missing difference violation: %v", rep.Violations)
		}
	})
	t.Run("payoff", func(t *testing.T) {
		bad := good
		bad.Payoffs = append([]float64(nil), good.Payoffs...)
		bad.Payoffs[1] *= 2
		rep := Run(in, a, &bad, Options{})
		if !hasViolation(rep, CheckSummary, 1) {
			t.Fatalf("missing per-worker payoff violation: %v", rep.Violations)
		}
	})
	t.Run("assigned", func(t *testing.T) {
		bad := good
		bad.Assigned++
		rep := Run(in, a, &bad, Options{})
		if !hasViolation(rep, CheckSummary, -1) {
			t.Fatalf("missing assigned-count violation: %v", rep.Violations)
		}
	})
	t.Run("payoff-count", func(t *testing.T) {
		bad := good
		bad.Payoffs = good.Payoffs[:1]
		rep := Run(in, a, &bad, Options{})
		if !hasViolation(rep, CheckSummary, -1) {
			t.Fatalf("missing payoff-count violation: %v", rep.Violations)
		}
	})
}

func TestVDPSNonMembership(t *testing.T) {
	in := lineInstance(3, 1, 100, 0)
	// Generate with MaxSize 1: only singleton candidates exist, so a 2-point
	// route is feasible for the worker but not in its strategy space.
	g, err := vdps.Generate(in, vdps.Options{MaxSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := model.NewAssignment(1)
	a.Routes[0] = model.Route{0, 1}
	rep := Run(in, a, nil, Options{Generator: g, Algorithm: "FGT", Converged: true})
	if !hasViolation(rep, CheckVDPS, 0) {
		t.Fatalf("missing membership violation: %v", rep.Violations)
	}
	// The equilibrium certificate is meaningless for a non-member route.
	if !hasSkipped(rep, CheckEquilibrium) {
		t.Errorf("equilibrium not skipped after membership failure: checks %v", rep.Checks)
	}
}

func TestFrontierCorruption(t *testing.T) {
	inst := lineInstance(3, 2, 100, 2)
	g := mustGenerate(t, inst)
	cands := g.Candidates()
	var corrupted bool
	for ci := range cands {
		if len(cands[ci].Frontier) == 0 {
			continue
		}
		// Destroy monotonicity: duplicate the first state. Candidates()
		// returns the generator's own slice, so the mutation is visible to
		// the auditor.
		cands[ci].Frontier = append(cands[ci].Frontier, cands[ci].Frontier[0])
		corrupted = true
		break
	}
	if !corrupted {
		t.Fatal("no frontier to corrupt")
	}
	a := model.NewAssignment(2)
	rep := Run(inst, a, nil, Options{Generator: g})
	if !hasViolation(rep, CheckVDPS, -1) {
		t.Fatalf("missing frontier violation: %v", rep.Violations)
	}
}

func TestRegenerationFailure(t *testing.T) {
	in := lineInstance(4, 1, 100, 0)
	a := model.NewAssignment(1)
	rep := Run(in, a, nil, Options{VDPS: vdps.Options{MaxSets: 1}})
	if !hasViolation(rep, CheckVDPS, -1) {
		t.Fatalf("missing regeneration violation: %v", rep.Violations)
	}
	if !hasSkipped(rep, CheckEquilibrium) {
		t.Errorf("equilibrium not skipped after regeneration failure")
	}
}

func TestFGTEquilibriumBreak(t *testing.T) {
	in := lineInstance(4, 2, 100, 2)
	g := mustGenerate(t, in)
	res, err := game.FGT(context.Background(), g, game.Options{Seed: 1})
	if err != nil || !res.Converged {
		t.Fatalf("FGT: err %v, converged %v", err, res.Converged)
	}
	// Null a busy worker's route: it can profitably re-take its strategy, so
	// the mutated assignment is no equilibrium.
	mut := res.Assignment.Clone()
	nulled := -1
	for w, route := range mut.Routes {
		if len(route) > 0 {
			mut.Routes[w] = nil
			nulled = w
			break
		}
	}
	if nulled < 0 {
		t.Fatal("no non-empty route to null")
	}
	rep := Run(in, mut, nil, Options{Generator: g, Algorithm: "FGT", Converged: true})
	if !hasViolation(rep, CheckEquilibrium, -1) {
		t.Fatalf("missing FGT equilibrium violation: %v", rep.Violations)
	}
}

func TestIEGTEquilibriumBreak(t *testing.T) {
	// Worker 0 holds {0} (payoff 1/2); worker 1 idles while {1} and {2} are
	// free: payoffs are unequal and worker 1 can improve, so the state is
	// not evolutionarily stable.
	in := lineInstance(3, 2, 100, 1)
	g := mustGenerate(t, in)
	a := model.NewAssignment(2)
	a.Routes[0] = model.Route{0}
	rep := Run(in, a, nil, Options{Generator: g, Algorithm: "IEGT", Converged: true})
	if !hasViolation(rep, CheckEquilibrium, -1) {
		t.Fatalf("missing IEGT equilibrium violation: %v", rep.Violations)
	}
}

func TestEquilibriumSkippedWhenNotConverged(t *testing.T) {
	in := lineInstance(3, 2, 100, 1)
	g := mustGenerate(t, in)
	a := model.NewAssignment(2)
	a.Routes[0] = model.Route{0}
	rep := Run(in, a, nil, Options{Generator: g, Algorithm: "FGT", Converged: false})
	if hasViolation(rep, CheckEquilibrium, -2) {
		t.Fatalf("equilibrium checked on a non-converged run: %v", rep.Violations)
	}
	if !hasSkipped(rep, CheckEquilibrium) {
		t.Error("equilibrium not marked skipped")
	}
	// Baselines have no certificate either.
	rep = Run(in, a, nil, Options{Generator: g, Algorithm: "MPTA", Converged: true})
	if !hasSkipped(rep, CheckEquilibrium) {
		t.Error("equilibrium not skipped for MPTA")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Check: CheckStructure, Worker: 3, Detail: "boom"}
	if got := v.String(); got != "structure: worker 3: boom" {
		t.Errorf("String() = %q", got)
	}
	v.Worker = -1
	if got := v.String(); got != "structure: boom" {
		t.Errorf("String() = %q", got)
	}
}

func TestCloseTo(t *testing.T) {
	if !closeTo(1.0000001, 1, 1e-6) {
		t.Error("near-equal values rejected")
	}
	if closeTo(1.1, 1, 1e-6) {
		t.Error("distant values accepted")
	}
	if !closeTo(0, 1e-9, 1e-6) {
		t.Error("near-zero absolute comparison rejected")
	}
}

// A converged Lexifair solve must pass the leximin certificate end to end.
func TestRunCleanLexifair(t *testing.T) {
	in := lineInstance(4, 2, 100, 2)
	g := mustGenerate(t, in)
	res, err := (assign.Lexifair{}).Assign(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("Lexifair did not converge on a trivial instance")
	}
	rep := Run(in, res.Assignment, &res.Summary, Options{
		Generator: g, Algorithm: "LEXIFAIR", Converged: true,
	})
	if !rep.OK() {
		t.Fatalf("clean LEXIFAIR result failed audit: %v", rep.Violations)
	}
	found := false
	for _, c := range rep.Checks {
		if c == CheckLexifair {
			found = true
		}
	}
	if !found {
		t.Fatalf("Checks = %v, want CheckLexifair included", rep.Checks)
	}
	if hasSkipped(rep, CheckLexifair) {
		t.Error("CheckLexifair skipped on a converged LEXIFAIR run")
	}
}

// A suboptimal assignment labeled LEXIFAIR must be caught by the leximin
// certificate, and an unconverged run must skip it.
func TestLexifairCertificateBreakAndSkip(t *testing.T) {
	in := lineInstance(4, 2, 100, 2)
	g := mustGenerate(t, in)
	empty := model.NewAssignment(len(in.Workers))
	rep := Run(in, empty, nil, Options{
		Generator: g, Algorithm: "LEXIFAIR", Converged: true,
	})
	if !hasViolation(rep, CheckLexifair, -2) {
		t.Errorf("empty assignment passed the leximin certificate: %v", rep.Violations)
	}
	rep = Run(in, empty, nil, Options{
		Generator: g, Algorithm: "LEXIFAIR", Converged: false,
	})
	if hasViolation(rep, CheckLexifair, -2) {
		t.Error("unconverged run was held to the leximin certificate")
	}
	if !hasSkipped(rep, CheckLexifair) {
		t.Error("unconverged LEXIFAIR run did not record the skip")
	}
}
