package grid

import (
	"math/rand"
	"testing"

	"fairtask/internal/geo"
)

func benchPoints(n int) []geo.Point {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	return pts
}

func BenchmarkNew(b *testing.B) {
	pts := benchPoints(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(pts, 2)
	}
}

func BenchmarkWithin(b *testing.B) {
	pts := benchPoints(5000)
	ix := New(pts, 2)
	dst := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = ix.Within(pts[i%len(pts)], 2, dst[:0])
	}
}

// BenchmarkWithinScan is the brute-force baseline Within replaces.
func BenchmarkWithinScan(b *testing.B) {
	pts := benchPoints(5000)
	e := geo.Euclidean{}
	var hits int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := pts[i%len(pts)]
		hits = 0
		for _, p := range pts {
			if e.Distance(q, p) <= 2 {
				hits++
			}
		}
	}
	_ = hits
}
