// Package grid provides a uniform spatial hash index over 2D points, used
// to answer "which delivery points lie within ε of this one" during VDPS
// generation without scanning the full point set per DP extension.
package grid

import (
	"math"

	"fairtask/internal/geo"
)

// Index is a uniform-cell spatial hash over a fixed point set.
// Build one with New; the zero value is unusable.
type Index struct {
	pts      []geo.Point
	cellSize float64
	origin   geo.Point
	cells    map[cellKey][]int
}

// cellKey uses int64 coordinates: a tiny cell size over a large coordinate
// extent (e.g. an ε of 1e-6 km on a continental dataset) produces cell
// indices beyond int32 range, and Go's float-to-int conversion of
// out-of-range values is implementation-defined — silently corrupting
// neighborhoods rather than failing.
type cellKey struct{ cx, cy int64 }

// New builds an index over pts with the given cell size. A non-positive
// cell size defaults to 1. Points are referenced by their slice index.
func New(pts []geo.Point, cellSize float64) *Index {
	if cellSize <= 0 {
		cellSize = 1
	}
	ix := &Index{
		pts:      pts,
		cellSize: cellSize,
		cells:    make(map[cellKey][]int, len(pts)),
	}
	if len(pts) > 0 {
		b := geo.Bounds(pts)
		ix.origin = b.Min
	}
	for i, p := range pts {
		k := ix.keyOf(p)
		ix.cells[k] = append(ix.cells[k], i)
	}
	return ix
}

func (ix *Index) keyOf(p geo.Point) cellKey {
	return cellKey{
		cx: int64(math.Floor((p.X - ix.origin.X) / ix.cellSize)),
		cy: int64(math.Floor((p.Y - ix.origin.Y) / ix.cellSize)),
	}
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.pts) }

// Within appends to dst the indices of all points with Euclidean distance
// <= r from q (including q itself if indexed) and returns the extended
// slice. Pass a reused dst to avoid allocation in hot loops.
func (ix *Index) Within(q geo.Point, r float64, dst []int) []int {
	if r < 0 || len(ix.pts) == 0 {
		return dst
	}
	e := geo.Euclidean{}
	lo := ix.keyOf(geo.Pt(q.X-r, q.Y-r))
	hi := ix.keyOf(geo.Pt(q.X+r, q.Y+r))
	for cx := lo.cx; cx <= hi.cx; cx++ {
		for cy := lo.cy; cy <= hi.cy; cy++ {
			for _, i := range ix.cells[cellKey{cx, cy}] {
				if e.Distance(q, ix.pts[i]) <= r {
					dst = append(dst, i)
				}
			}
		}
	}
	return dst
}

// Neighborhoods returns, for every indexed point, the indices of all points
// within r of it (including itself). It is the bulk form of Within used to
// precompute the ε-neighbor lists for VDPS generation.
func (ix *Index) Neighborhoods(r float64) [][]int {
	out := make([][]int, len(ix.pts))
	for i, p := range ix.pts {
		out[i] = ix.Within(p, r, nil)
	}
	return out
}
