package grid

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fairtask/internal/geo"
)

func TestWithinSmall(t *testing.T) {
	pts := []geo.Point{
		geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(0, 1), geo.Pt(5, 5),
	}
	ix := New(pts, 1)
	got := ix.Within(geo.Pt(0, 0), 1.5, nil)
	sort.Ints(got)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Within = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Within = %v, want %v", got, want)
		}
	}
}

func TestWithinEdgeCases(t *testing.T) {
	ix := New(nil, 1)
	if got := ix.Within(geo.Pt(0, 0), 10, nil); len(got) != 0 {
		t.Errorf("empty index returned %v", got)
	}
	ix = New([]geo.Point{geo.Pt(1, 1)}, 0) // cell size defaults
	if got := ix.Within(geo.Pt(1, 1), 0, nil); len(got) != 1 {
		t.Errorf("zero-radius query on exact point = %v, want the point", got)
	}
	if got := ix.Within(geo.Pt(1, 1), -1, nil); len(got) != 0 {
		t.Errorf("negative radius returned %v", got)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d", ix.Len())
	}
}

func TestWithinReusesDst(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(0.5, 0)}
	ix := New(pts, 1)
	dst := make([]int, 0, 8)
	out := ix.Within(geo.Pt(0, 0), 1, dst)
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	if cap(out) != cap(dst) {
		t.Error("Within reallocated despite sufficient capacity")
	}
}

// Property: Within agrees with a brute-force scan for random points, radii
// and cell sizes.
func TestWithinMatchesBruteForce(t *testing.T) {
	f := func(seed int64, n uint8, cell uint8, r uint8) bool {
		count := int(n%50) + 1
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geo.Point, count)
		for i := range pts {
			pts[i] = geo.Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		}
		cellSize := float64(cell%5)/2 + 0.5
		radius := float64(r % 8)
		ix := New(pts, cellSize)
		q := geo.Pt(rng.Float64()*20-10, rng.Float64()*20-10)

		got := ix.Within(q, radius, nil)
		sort.Ints(got)
		var want []int
		e := geo.Euclidean{}
		for i, p := range pts {
			if e.Distance(q, p) <= radius {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNeighborhoods(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 0), geo.Pt(10, 10)}
	ix := New(pts, 2)
	nb := ix.Neighborhoods(1.5)
	if len(nb) != 3 {
		t.Fatalf("neighborhood count = %d", len(nb))
	}
	sort.Ints(nb[0])
	if len(nb[0]) != 2 || nb[0][0] != 0 || nb[0][1] != 1 {
		t.Errorf("nb[0] = %v, want [0 1]", nb[0])
	}
	if len(nb[2]) != 1 || nb[2][0] != 2 {
		t.Errorf("nb[2] = %v, want [2]", nb[2])
	}
	// Symmetry: j in nb[i] iff i in nb[j].
	for i := range nb {
		for _, j := range nb[i] {
			found := false
			for _, k := range nb[j] {
				if k == i {
					found = true
				}
			}
			if !found {
				t.Errorf("asymmetric neighborhood: %d in nb[%d] but not vice versa", j, i)
			}
		}
	}
}

// TestWithinTinyCellLargeExtent is the cell-key overflow regression test.
// A 1e-6 cell size over a ~2147 km extent produces cell indices beyond
// int32 range; Go's float-to-int conversion of out-of-range values is
// implementation-defined (0x80000000 on amd64), so with 32-bit keys the
// query's high corner collapsed below its low corner and the scan loop never
// ran — every neighborhood near the far edge came back empty. 64-bit keys
// make the indices exact.
func TestWithinTinyCellLargeExtent(t *testing.T) {
	pts := []geo.Point{
		geo.Pt(0, 0),
		geo.Pt(2147.4836, 0), // cell index ~2.1474836e9, just inside int32
		geo.Pt(2147.4837, 0), // cell index ~2.1474837e9, beyond int32
	}
	ix := New(pts, 1e-6)
	got := ix.Within(geo.Pt(2147.4837, 0), 2e-4, nil)
	sort.Ints(got)
	want := []int{1, 2} // 0.0001 apart, both within the 2e-4 radius
	if len(got) != len(want) {
		t.Fatalf("Within = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Within = %v, want %v", got, want)
		}
	}
	// The bulk form must agree.
	nbr := ix.Neighborhoods(2e-4)
	if len(nbr[2]) != 2 {
		t.Errorf("Neighborhoods[2] = %v, want two points", nbr[2])
	}
}
