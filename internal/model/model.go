// Package model defines the FTA problem domain: spatial tasks, delivery
// points, distribution centers, workers, problem instances and assignments.
//
// Terminology follows the paper (Definitions 1-8): a distribution center dc
// holds a set of delivery points; each delivery point dp carries the set of
// tasks to be delivered to its location; a worker w must first travel to the
// center to pick up packages and then visit its assigned delivery points in
// sequence, completing every point's tasks before their expiration times.
package model

import (
	"errors"
	"fmt"
	"math"

	"fairtask/internal/geo"
	"fairtask/internal/travel"
)

// Task is a spatial task (Definition 3): a delivery from the distribution
// center to a delivery point, with an expiration deadline and a reward.
type Task struct {
	// ID identifies the task within its instance.
	ID int
	// Point is the index (into Instance.Points) of the delivery point this
	// task is delivered to.
	Point int
	// Expiry is the absolute deadline (hours from the assignment instant) by
	// which a worker must arrive at the delivery point.
	Expiry float64
	// Reward is the payment for completing the task. The paper's experiments
	// use unit rewards.
	Reward float64
}

// DeliveryPoint is a location with a set of tasks delivered to it
// (Definition 2).
type DeliveryPoint struct {
	// ID identifies the point within its instance.
	ID int
	// Loc is the point's location.
	Loc geo.Point
	// Tasks are the deliveries destined for this point.
	Tasks []Task
}

// EarliestExpiry returns the minimum expiration time among the point's tasks
// (the paper's dp.e). It returns +Inf for a point with no tasks, which makes
// such points trivially reachable but worthless.
func (dp *DeliveryPoint) EarliestExpiry() float64 {
	e := math.Inf(1)
	for _, t := range dp.Tasks {
		if t.Expiry < e {
			e = t.Expiry
		}
	}
	return e
}

// TotalReward returns the sum of the rewards of the point's tasks.
func (dp *DeliveryPoint) TotalReward() float64 {
	var r float64
	for _, t := range dp.Tasks {
		r += t.Reward
	}
	return r
}

// Worker is a crowd worker (Definition 4).
type Worker struct {
	// ID identifies the worker within its instance.
	ID int
	// Loc is the worker's current location.
	Loc geo.Point
	// MaxDP is the maximum number of delivery points the worker is willing
	// to visit (w.maxDP). Zero means unlimited.
	MaxDP int
	// Priority optionally weights the worker in the priority-aware fairness
	// extension (see fairness.PriorityIAU). Zero is treated as 1.
	Priority float64
	// Contribution optionally scales the worker's effective reward in the
	// contribution-weighted payoff extension. Zero is treated as 1.
	Contribution float64
	// Speed optionally overrides the instance travel model's speed for this
	// worker (heterogeneous fleets: bikes vs. vans). Zero means the
	// instance default. Negative values are rejected by Validate.
	Speed float64
}

// EffectivePriority returns the worker's priority, defaulting to 1 for
// non-positive (or NaN) values, matching fairness.NormalizedPayoff's
// treatment so both layers agree on the effective priority.
func (w *Worker) EffectivePriority() float64 {
	if w.Priority <= 0 || math.IsNaN(w.Priority) {
		return 1
	}
	return w.Priority
}

// EffectiveContribution returns the worker's contribution factor,
// defaulting to 1.
func (w *Worker) EffectiveContribution() float64 {
	if w.Contribution <= 0 {
		return 1
	}
	return w.Contribution
}

// Instance is a single-distribution-center FTA problem instance: the center,
// its delivery points (with tasks), its workers, and the travel model.
// Task assignment across distribution centers is independent (paper §VII-A),
// so multi-center problems are simply collections of instances (see Problem).
type Instance struct {
	// CenterID identifies the distribution center.
	CenterID int
	// Center is the distribution center's location (dc.l).
	Center geo.Point
	// Points are the delivery points dc.DP.
	Points []DeliveryPoint
	// Workers are the online workers available to the center.
	Workers []Worker
	// Travel converts distances to travel times.
	Travel travel.Model
}

// Validation errors.
var (
	ErrNoTravelModel  = errors.New("model: instance has no valid travel model")
	ErrBadLocation    = errors.New("model: non-finite location")
	ErrBadTaskPoint   = errors.New("model: task references wrong delivery point")
	ErrBadTaskExpiry  = errors.New("model: task expiry must be positive")
	ErrBadTaskReward  = errors.New("model: task reward must be non-negative")
	ErrNegativeMaxDP  = errors.New("model: worker maxDP must be non-negative")
	ErrDuplicateID    = errors.New("model: duplicate ID")
	ErrPointOutOfSeq  = errors.New("model: route references delivery point out of range")
	ErrDuplicatePoint = errors.New("model: route visits a delivery point twice")
	ErrBadWorkerSpeed = errors.New("model: worker speed must be non-negative")
)

// Validate checks structural invariants of the instance.
func (in *Instance) Validate() error {
	if !in.Travel.Valid() {
		return ErrNoTravelModel
	}
	if !in.Center.IsFinite() {
		return fmt.Errorf("%w: center %v", ErrBadLocation, in.Center)
	}
	pointIDs := make(map[int]bool, len(in.Points))
	taskIDs := make(map[int]bool)
	for i := range in.Points {
		dp := &in.Points[i]
		if !dp.Loc.IsFinite() {
			return fmt.Errorf("%w: delivery point %d", ErrBadLocation, dp.ID)
		}
		if pointIDs[dp.ID] {
			return fmt.Errorf("%w: delivery point %d", ErrDuplicateID, dp.ID)
		}
		pointIDs[dp.ID] = true
		for _, t := range dp.Tasks {
			if t.Point != i {
				return fmt.Errorf("%w: task %d at point index %d has Point=%d",
					ErrBadTaskPoint, t.ID, i, t.Point)
			}
			if t.Expiry <= 0 || math.IsNaN(t.Expiry) {
				return fmt.Errorf("%w: task %d expiry %g", ErrBadTaskExpiry, t.ID, t.Expiry)
			}
			if t.Reward < 0 || math.IsNaN(t.Reward) {
				return fmt.Errorf("%w: task %d reward %g", ErrBadTaskReward, t.ID, t.Reward)
			}
			if taskIDs[t.ID] {
				return fmt.Errorf("%w: task %d", ErrDuplicateID, t.ID)
			}
			taskIDs[t.ID] = true
		}
	}
	workerIDs := make(map[int]bool, len(in.Workers))
	for i := range in.Workers {
		w := &in.Workers[i]
		if !w.Loc.IsFinite() {
			return fmt.Errorf("%w: worker %d", ErrBadLocation, w.ID)
		}
		if w.MaxDP < 0 {
			return fmt.Errorf("%w: worker %d maxDP %d", ErrNegativeMaxDP, w.ID, w.MaxDP)
		}
		if w.Speed < 0 || math.IsNaN(w.Speed) {
			return fmt.Errorf("%w: worker %d speed %g", ErrBadWorkerSpeed, w.ID, w.Speed)
		}
		if workerIDs[w.ID] {
			return fmt.Errorf("%w: worker %d", ErrDuplicateID, w.ID)
		}
		workerIDs[w.ID] = true
	}
	return nil
}

// Clone returns a deep copy of the instance: points (with their task
// slices) and workers are copied, so mutating the clone never aliases the
// original. The travel model is a value and is copied with the struct.
// Long-lived consumers that mutate instances over time — the streaming
// equilibrium engine — clone at the ownership boundary so callers keep an
// immutable view.
func (in *Instance) Clone() *Instance {
	out := *in
	out.Points = make([]DeliveryPoint, len(in.Points))
	for i := range in.Points {
		out.Points[i] = in.Points[i]
		out.Points[i].Tasks = append([]Task(nil), in.Points[i].Tasks...)
	}
	out.Workers = append([]Worker(nil), in.Workers...)
	return &out
}

// TaskCount returns the total number of tasks across all delivery points.
func (in *Instance) TaskCount() int {
	var n int
	for i := range in.Points {
		n += len(in.Points[i].Tasks)
	}
	return n
}

// TotalReward returns the sum of all task rewards in the instance.
func (in *Instance) TotalReward() float64 {
	var r float64
	for i := range in.Points {
		r += in.Points[i].TotalReward()
	}
	return r
}

// SpeedFactor returns the multiplier applied to instance-level travel times
// for worker index w: 1 for workers using the default speed, otherwise
// defaultSpeed / workerSpeed (a slower worker takes proportionally longer
// over every leg).
func (in *Instance) SpeedFactor(w int) float64 {
	ws := in.Workers[w].Speed
	if ws <= 0 || ws == in.Travel.Speed() {
		return 1
	}
	return in.Travel.Speed() / ws
}

// ApproachTime returns the travel time from worker index w's location to the
// distribution center (the paper's c(w.l, dc.l)), at the worker's speed.
func (in *Instance) ApproachTime(w int) float64 {
	return in.Travel.Time(in.Workers[w].Loc, in.Center) * in.SpeedFactor(w)
}

// Route is an ordered visiting sequence of delivery points (a delivery point
// sequence, Definition 5), given as indices into Instance.Points. An empty
// route is the null strategy.
type Route []int

// Clone returns an independent copy of the route.
func (r Route) Clone() Route {
	if r == nil {
		return nil
	}
	out := make(Route, len(r))
	copy(out, r)
	return out
}

// checkRoute validates index range and uniqueness of a route's points.
func (in *Instance) checkRoute(r Route) error {
	seen := make(map[int]bool, len(r))
	for _, p := range r {
		if p < 0 || p >= len(in.Points) {
			return fmt.Errorf("%w: %d", ErrPointOutOfSeq, p)
		}
		if seen[p] {
			return fmt.Errorf("%w: %d", ErrDuplicatePoint, p)
		}
		seen[p] = true
	}
	return nil
}

// RouteArrivals returns the arrival time at each point of the route when
// worker index w departs at time zero, travels to the center, and then visits
// the route's points in order (Definition 5). The returned slice has one
// entry per route point. It panics on an invalid route; callers that accept
// external input should call checkRoute via Assignment.Validate first.
func (in *Instance) RouteArrivals(w int, r Route) []float64 {
	if len(r) == 0 {
		return nil
	}
	arr := make([]float64, len(r))
	f := in.SpeedFactor(w)
	t := in.ApproachTime(w) + f*in.Travel.Time(in.Center, in.Points[r[0]].Loc)
	arr[0] = t
	for i := 1; i < len(r); i++ {
		t += f * in.Travel.Time(in.Points[r[i-1]].Loc, in.Points[r[i]].Loc)
		arr[i] = t
	}
	return arr
}

// CenterRouteTime returns the total travel time of the route measured from
// the distribution center (excluding the worker's approach leg). It is the
// paper's t'_{dc,R}(dp_last).
func (in *Instance) CenterRouteTime(r Route) float64 {
	if len(r) == 0 {
		return 0
	}
	t := in.Travel.Time(in.Center, in.Points[r[0]].Loc)
	for i := 1; i < len(r); i++ {
		t += in.Travel.Time(in.Points[r[i-1]].Loc, in.Points[r[i]].Loc)
	}
	return t
}

// RouteTime returns worker w's total travel time for the route: approach leg
// plus the center-origin route time, both at the worker's speed. It is
// t(dp_|VDPS|) in Definition 7.
func (in *Instance) RouteTime(w int, r Route) float64 {
	if len(r) == 0 {
		return 0
	}
	return in.ApproachTime(w) + in.SpeedFactor(w)*in.CenterRouteTime(r)
}

// RouteReward returns the total reward of all tasks on the route's points.
func (in *Instance) RouteReward(r Route) float64 {
	var sum float64
	for _, p := range r {
		sum += in.Points[p].TotalReward()
	}
	return sum
}

// RouteFeasible reports whether worker w can complete every task on the
// route before expiry: arrival at each point must not exceed the point's
// earliest task expiration (Definition 6).
func (in *Instance) RouteFeasible(w int, r Route) bool {
	arr := in.RouteArrivals(w, r)
	for i, p := range r {
		if arr[i] > in.Points[p].EarliestExpiry() {
			return false
		}
	}
	return true
}

// Assignment maps each worker (by index) to its assigned route
// (Definition 8). Routes[i] is worker i's route; an empty route means the
// worker received no tasks (the null strategy).
type Assignment struct {
	Routes []Route
}

// NewAssignment returns an empty assignment for n workers.
func NewAssignment(n int) *Assignment {
	return &Assignment{Routes: make([]Route, n)}
}

// Clone returns a deep copy of the assignment.
func (a *Assignment) Clone() *Assignment {
	out := NewAssignment(len(a.Routes))
	for i, r := range a.Routes {
		out.Routes[i] = r.Clone()
	}
	return out
}

// AssignedWorkers returns the number of workers with a non-empty route.
func (a *Assignment) AssignedWorkers() int {
	var n int
	for _, r := range a.Routes {
		if len(r) > 0 {
			n++
		}
	}
	return n
}

// Assignment validation errors.
var (
	ErrWorkerCountMismatch = errors.New("model: assignment has wrong number of routes")
	ErrOverlap             = errors.New("model: assignment routes overlap")
	ErrInfeasibleRoute     = errors.New("model: assigned route misses a deadline")
	ErrMaxDPExceeded       = errors.New("model: route exceeds worker maxDP")
)

// Validate checks that the assignment is a spatial task assignment per
// Definition 8: one route per worker, pairwise-disjoint delivery points,
// every route feasible for its worker, and maxDP respected.
func (a *Assignment) Validate(in *Instance) error {
	if len(a.Routes) != len(in.Workers) {
		return fmt.Errorf("%w: %d routes for %d workers",
			ErrWorkerCountMismatch, len(a.Routes), len(in.Workers))
	}
	owner := make(map[int]int, len(in.Points))
	for w, r := range a.Routes {
		if err := in.checkRoute(r); err != nil {
			return fmt.Errorf("worker %d: %w", w, err)
		}
		if max := in.Workers[w].MaxDP; max > 0 && len(r) > max {
			return fmt.Errorf("%w: worker %d has %d points, maxDP %d",
				ErrMaxDPExceeded, w, len(r), max)
		}
		for _, p := range r {
			if prev, ok := owner[p]; ok {
				return fmt.Errorf("%w: point %d assigned to workers %d and %d",
					ErrOverlap, p, prev, w)
			}
			owner[p] = w
		}
		if len(r) > 0 && !in.RouteFeasible(w, r) {
			return fmt.Errorf("%w: worker %d route %v", ErrInfeasibleRoute, w, r)
		}
	}
	return nil
}

// Problem is a multi-center FTA problem: a set of independent instances that
// the platform may solve in parallel (paper §VII-A).
type Problem struct {
	Instances []Instance
}

// TaskCount returns the total task count across all centers.
func (p *Problem) TaskCount() int {
	var n int
	for i := range p.Instances {
		n += p.Instances[i].TaskCount()
	}
	return n
}

// WorkerCount returns the total worker count across all centers.
func (p *Problem) WorkerCount() int {
	var n int
	for i := range p.Instances {
		n += len(p.Instances[i].Workers)
	}
	return n
}

// Validate validates every instance in the problem.
func (p *Problem) Validate() error {
	for i := range p.Instances {
		if err := p.Instances[i].Validate(); err != nil {
			return fmt.Errorf("instance %d (center %d): %w",
				i, p.Instances[i].CenterID, err)
		}
	}
	return nil
}

// InstanceStats summarizes the shape of an instance: entity counts, task
// density, deadline tightness, and worker geometry. Used by reporting tools
// to characterize workloads.
type InstanceStats struct {
	// Points, Tasks and Workers are entity counts.
	Points, Tasks, Workers int
	// TasksPerPoint is the mean task count per delivery point.
	TasksPerPoint float64
	// MeanExpiry is the mean task expiration time in hours.
	MeanExpiry float64
	// ReachablePoints counts delivery points a worker standing at the
	// center could reach before their earliest expiry.
	ReachablePoints int
	// MeanApproach is the mean worker approach time to the center in hours.
	MeanApproach float64
}

// Stats computes summary statistics for the instance.
func (in *Instance) Stats() InstanceStats {
	st := InstanceStats{
		Points:  len(in.Points),
		Workers: len(in.Workers),
	}
	var expirySum float64
	for i := range in.Points {
		dp := &in.Points[i]
		st.Tasks += len(dp.Tasks)
		for _, t := range dp.Tasks {
			expirySum += t.Expiry
		}
		if in.Travel.Time(in.Center, dp.Loc) <= dp.EarliestExpiry() {
			st.ReachablePoints++
		}
	}
	if st.Points > 0 {
		st.TasksPerPoint = float64(st.Tasks) / float64(st.Points)
	}
	if st.Tasks > 0 {
		st.MeanExpiry = expirySum / float64(st.Tasks)
	}
	var approachSum float64
	for w := range in.Workers {
		approachSum += in.ApproachTime(w)
	}
	if st.Workers > 0 {
		st.MeanApproach = approachSum / float64(st.Workers)
	}
	return st
}
