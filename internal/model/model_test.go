package model

import (
	"errors"
	"math"
	"testing"

	"fairtask/internal/geo"
	"fairtask/internal/travel"
)

// testInstance builds a small valid instance: center at origin, three
// delivery points on the x axis at 1, 2, 3 km, one worker at (-1, 0),
// speed 1 km/h, generous deadlines.
func testInstance() *Instance {
	in := &Instance{
		CenterID: 0,
		Center:   geo.Pt(0, 0),
		Travel:   travel.MustModel(geo.Euclidean{}, 1),
	}
	for i := 0; i < 3; i++ {
		dp := DeliveryPoint{ID: i, Loc: geo.Pt(float64(i+1), 0)}
		dp.Tasks = append(dp.Tasks, Task{ID: i*10 + 1, Point: i, Expiry: 100, Reward: 1})
		dp.Tasks = append(dp.Tasks, Task{ID: i*10 + 2, Point: i, Expiry: 50, Reward: 2})
		in.Points = append(in.Points, dp)
	}
	in.Workers = []Worker{{ID: 0, Loc: geo.Pt(-1, 0), MaxDP: 3}}
	return in
}

func TestInstanceValidateOK(t *testing.T) {
	if err := testInstance().Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestValidateRejectsBadInstances(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Instance)
		want   error
	}{
		{"no travel model", func(in *Instance) { in.Travel = travel.Model{} }, ErrNoTravelModel},
		{"NaN center", func(in *Instance) { in.Center = geo.Pt(math.NaN(), 0) }, ErrBadLocation},
		{"NaN point", func(in *Instance) { in.Points[0].Loc.X = math.Inf(1) }, ErrBadLocation},
		{"wrong task point", func(in *Instance) { in.Points[1].Tasks[0].Point = 0 }, ErrBadTaskPoint},
		{"zero expiry", func(in *Instance) { in.Points[0].Tasks[0].Expiry = 0 }, ErrBadTaskExpiry},
		{"negative reward", func(in *Instance) { in.Points[0].Tasks[0].Reward = -1 }, ErrBadTaskReward},
		{"negative maxDP", func(in *Instance) { in.Workers[0].MaxDP = -1 }, ErrNegativeMaxDP},
		{"dup point ID", func(in *Instance) { in.Points[1].ID = in.Points[0].ID }, ErrDuplicateID},
		{"dup task ID", func(in *Instance) { in.Points[1].Tasks[0].ID = in.Points[0].Tasks[0].ID }, ErrDuplicateID},
		{"NaN worker", func(in *Instance) { in.Workers[0].Loc.Y = math.NaN() }, ErrBadLocation},
		{"dup worker ID", func(in *Instance) {
			in.Workers = append(in.Workers, Worker{ID: 0, Loc: geo.Pt(1, 1)})
		}, ErrDuplicateID},
	}
	for _, c := range cases {
		in := testInstance()
		c.mutate(in)
		if err := in.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestEarliestExpiryAndRewards(t *testing.T) {
	in := testInstance()
	dp := &in.Points[0]
	if got := dp.EarliestExpiry(); got != 50 {
		t.Errorf("EarliestExpiry = %g, want 50", got)
	}
	if got := dp.TotalReward(); got != 3 {
		t.Errorf("TotalReward = %g, want 3", got)
	}
	empty := DeliveryPoint{}
	if !math.IsInf(empty.EarliestExpiry(), 1) {
		t.Error("empty point EarliestExpiry should be +Inf")
	}
	if in.TaskCount() != 6 {
		t.Errorf("TaskCount = %d, want 6", in.TaskCount())
	}
	if in.TotalReward() != 9 {
		t.Errorf("TotalReward = %g, want 9", in.TotalReward())
	}
}

func TestWorkerDefaults(t *testing.T) {
	w := Worker{}
	if w.EffectivePriority() != 1 || w.EffectiveContribution() != 1 {
		t.Error("zero worker should default priority and contribution to 1")
	}
	w = Worker{Priority: 2.5, Contribution: 0.5}
	if w.EffectivePriority() != 2.5 || w.EffectiveContribution() != 0.5 {
		t.Error("explicit priority/contribution not honored")
	}
}

func TestRouteTimes(t *testing.T) {
	in := testInstance()
	// Worker at (-1,0): approach = 1. Route 0,1,2 visits x=1,2,3.
	r := Route{0, 1, 2}
	arr := in.RouteArrivals(0, r)
	want := []float64{2, 3, 4}
	for i := range want {
		if math.Abs(arr[i]-want[i]) > 1e-9 {
			t.Errorf("arrival[%d] = %g, want %g", i, arr[i], want[i])
		}
	}
	if got := in.RouteTime(0, r); math.Abs(got-4) > 1e-9 {
		t.Errorf("RouteTime = %g, want 4", got)
	}
	if got := in.CenterRouteTime(r); math.Abs(got-3) > 1e-9 {
		t.Errorf("CenterRouteTime = %g, want 3", got)
	}
	if got := in.RouteReward(r); got != 9 {
		t.Errorf("RouteReward = %g, want 9", got)
	}
	if in.RouteTime(0, nil) != 0 || in.CenterRouteTime(nil) != 0 {
		t.Error("empty route should have zero time")
	}
	if in.RouteArrivals(0, nil) != nil {
		t.Error("empty route should have nil arrivals")
	}
}

func TestRouteFeasible(t *testing.T) {
	in := testInstance()
	if !in.RouteFeasible(0, Route{0, 1, 2}) {
		t.Error("route within deadlines reported infeasible")
	}
	// Tighten the deadline of point 2 below its arrival time of 4.
	for i := range in.Points[2].Tasks {
		in.Points[2].Tasks[i].Expiry = 3.5
	}
	if in.RouteFeasible(0, Route{0, 1, 2}) {
		t.Error("route missing a deadline reported feasible")
	}
	// Visiting point 2 directly arrives at 1+3 = 4 > 3.5: still infeasible.
	if in.RouteFeasible(0, Route{2}) {
		t.Error("direct route missing deadline reported feasible")
	}
}

func TestAssignmentValidate(t *testing.T) {
	in := testInstance()
	in.Workers = append(in.Workers, Worker{ID: 1, Loc: geo.Pt(0, 1), MaxDP: 1})

	a := NewAssignment(2)
	a.Routes[0] = Route{0, 1}
	a.Routes[1] = Route{2}
	if err := a.Validate(in); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
	if a.AssignedWorkers() != 2 {
		t.Errorf("AssignedWorkers = %d, want 2", a.AssignedWorkers())
	}

	cases := []struct {
		name   string
		mutate func(*Assignment)
		want   error
	}{
		{"wrong route count", func(a *Assignment) { a.Routes = a.Routes[:1] }, ErrWorkerCountMismatch},
		{"overlap", func(a *Assignment) { a.Routes[1] = Route{0} }, ErrOverlap},
		{"out of range", func(a *Assignment) { a.Routes[1] = Route{9} }, ErrPointOutOfSeq},
		{"duplicate in route", func(a *Assignment) { a.Routes[0] = Route{0, 0} }, ErrDuplicatePoint},
		{"maxDP exceeded", func(a *Assignment) {
			a.Routes[0] = nil
			a.Routes[1] = Route{0, 1} // worker 1 has MaxDP 1
		}, ErrMaxDPExceeded},
	}
	for _, c := range cases {
		b := a.Clone()
		c.mutate(b)
		if err := b.Validate(in); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestAssignmentValidateInfeasible(t *testing.T) {
	in := testInstance()
	for i := range in.Points[2].Tasks {
		in.Points[2].Tasks[i].Expiry = 0.5 // unreachable: direct arrival is 4
	}
	a := NewAssignment(1)
	a.Routes[0] = Route{2}
	if err := a.Validate(in); !errors.Is(err, ErrInfeasibleRoute) {
		t.Errorf("err = %v, want ErrInfeasibleRoute", err)
	}
}

func TestAssignmentClone(t *testing.T) {
	a := NewAssignment(2)
	a.Routes[0] = Route{1, 2}
	b := a.Clone()
	b.Routes[0][0] = 9
	if a.Routes[0][0] != 1 {
		t.Error("Clone shares route storage with original")
	}
}

func TestRouteClone(t *testing.T) {
	var nilRoute Route
	if nilRoute.Clone() != nil {
		t.Error("nil route Clone should be nil")
	}
	r := Route{3, 4}
	c := r.Clone()
	c[0] = 7
	if r[0] != 3 {
		t.Error("Clone shares storage")
	}
}

func TestProblemAggregates(t *testing.T) {
	p := &Problem{Instances: []Instance{*testInstance(), *testInstance()}}
	p.Instances[1].CenterID = 1
	if p.TaskCount() != 12 {
		t.Errorf("TaskCount = %d, want 12", p.TaskCount())
	}
	if p.WorkerCount() != 2 {
		t.Errorf("WorkerCount = %d, want 2", p.WorkerCount())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
	p.Instances[1].Workers[0].MaxDP = -1
	if err := p.Validate(); err == nil {
		t.Error("invalid problem accepted")
	}
}

// TestPaperFigure1 reproduces the worked example from the paper's
// introduction: dc at (2,2), worker w1 at (1,2), delivery points placed so
// that the route legs are 1, 1.41, 1.12, 1.12 and the route rewards are
// 6+3+4 = 13, giving payoff 13/4.65 = 2.80.
func TestPaperFigure1(t *testing.T) {
	in := &Instance{
		Center: geo.Pt(2, 2),
		Travel: travel.MustModel(geo.Euclidean{}, 1), // unit speed, as in the paper
	}
	mkPoint := func(id int, loc geo.Point, tasks int) {
		dp := DeliveryPoint{ID: id, Loc: loc}
		for i := 0; i < tasks; i++ {
			dp.Tasks = append(dp.Tasks, Task{
				ID: id*100 + i, Point: id, Expiry: 100, Reward: 1,
			})
		}
		in.Points = append(in.Points, dp)
	}
	mkPoint(0, geo.Pt(3, 3), 6)                                 // dp1: |dc->dp1| = sqrt2 = 1.41
	mkPoint(1, geo.Pt(3.5, 4), 3)                               // dp2: |dp1->dp2| = sqrt1.25 = 1.12
	mkPoint(2, geo.Pt(4, 5), 4)                                 // dp3: |dp2->dp3| = sqrt1.25 = 1.12
	in.Workers = []Worker{{ID: 0, Loc: geo.Pt(1, 2), MaxDP: 3}} // w1

	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	r := Route{0, 1, 2}
	time := in.RouteTime(0, r)
	if math.Abs(time-4.650) > 0.005 {
		t.Errorf("route travel time = %.3f, want about 4.65", time)
	}
	reward := in.RouteReward(r)
	if reward != 13 {
		t.Errorf("route reward = %g, want 13", reward)
	}
	payoff := reward / time
	if math.Abs(payoff-2.80) > 0.01 {
		t.Errorf("payoff = %.3f, want about 2.80 (paper, Figure 1)", payoff)
	}
}

func TestInstanceStats(t *testing.T) {
	in := testInstance()
	st := in.Stats()
	if st.Points != 3 || st.Tasks != 6 || st.Workers != 1 {
		t.Errorf("counts = %+v", st)
	}
	if math.Abs(st.TasksPerPoint-2) > 1e-9 {
		t.Errorf("TasksPerPoint = %g", st.TasksPerPoint)
	}
	if math.Abs(st.MeanExpiry-75) > 1e-9 { // expiries 100 and 50 per point
		t.Errorf("MeanExpiry = %g", st.MeanExpiry)
	}
	if st.ReachablePoints != 3 {
		t.Errorf("ReachablePoints = %d", st.ReachablePoints)
	}
	if math.Abs(st.MeanApproach-1) > 1e-9 {
		t.Errorf("MeanApproach = %g", st.MeanApproach)
	}
	// Tighten a deadline to make point 2 unreachable even from the center.
	for i := range in.Points[2].Tasks {
		in.Points[2].Tasks[i].Expiry = 1 // direct arrival from center is 3
	}
	if got := in.Stats().ReachablePoints; got != 2 {
		t.Errorf("ReachablePoints after tightening = %d, want 2", got)
	}
}

func TestInstanceStatsEmpty(t *testing.T) {
	in := testInstance()
	in.Points = nil
	in.Workers = nil
	st := in.Stats()
	if st.TasksPerPoint != 0 || st.MeanExpiry != 0 || st.MeanApproach != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}
