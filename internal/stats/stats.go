// Package stats provides the small numeric aggregation helpers used by the
// experiment harness.
package stats

import (
	"math"
	"sort"
)

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the smallest value, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the middle value (mean of the two middle values for even
// lengths), or 0 for an empty slice. The input is not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
