package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSumMean(t *testing.T) {
	if Sum(nil) != 0 || Mean(nil) != 0 {
		t.Error("empty slice aggregates should be 0")
	}
	xs := []float64{1, 2, 3, 4}
	if Sum(xs) != 10 {
		t.Errorf("Sum = %g", Sum(xs))
	}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
}

func TestStdDev(t *testing.T) {
	if StdDev(nil) != 0 || StdDev([]float64{5}) != 0 {
		t.Error("degenerate StdDev should be 0")
	}
	// Population stddev of {2, 4, 4, 4, 5, 5, 7, 9} is 2.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); math.Abs(got-2) > 1e-9 {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if StdDev([]float64{3, 3, 3}) != 0 {
		t.Error("constant slice StdDev should be 0")
	}
}

func TestMinMax(t *testing.T) {
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be infinities")
	}
	xs := []float64{3, -1, 4}
	if Min(xs) != -1 || Max(xs) != 4 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("empty Median should be 0")
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %g", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %g", got)
	}
	// Median must not modify its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median modified its input")
	}
}

// Properties: Min <= Mean <= Max and Min <= Median <= Max.
func TestOrderingProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		lo, hi := Min(xs), Max(xs)
		m, med := Mean(xs), Median(xs)
		const eps = 1e-9
		return lo-eps <= m && m <= hi+eps && lo-eps <= med && med <= hi+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
