package evo

import (
	"context"
	"testing"

	"fairtask/internal/game"
	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/travel"
)

// ineligibleWorkerInstance has two eligible workers and one worker placed so
// far away that its strategy space is empty. Worker 0 sits on the center and
// is the only one able to reach the tight-deadline point 0; workers 0 and 1
// can balance payoffs exactly (point 0 alone pays 1, points 1+2 together pay
// 4 over 4 hours of travel from worker 1).
func ineligibleWorkerInstance() *model.Instance {
	return &model.Instance{
		Center: geo.Pt(0, 0),
		Travel: travel.MustModel(geo.Euclidean{}, 1),
		Points: []model.DeliveryPoint{
			{ID: 0, Loc: geo.Pt(1, 0), Tasks: []model.Task{{ID: 0, Point: 0, Expiry: 1, Reward: 1}}},
			{ID: 1, Loc: geo.Pt(0, 2), Tasks: []model.Task{{ID: 1, Point: 1, Expiry: 10, Reward: 1.5}}},
			{ID: 2, Loc: geo.Pt(0, 3), Tasks: []model.Task{{ID: 2, Point: 2, Expiry: 10, Reward: 2.5}}},
		},
		Workers: []model.Worker{
			{ID: 0, Loc: geo.Pt(0, 0), MaxDP: 2},
			{ID: 1, Loc: geo.Pt(0, 1), MaxDP: 2},
			{ID: 2, Loc: geo.Pt(100, 100), MaxDP: 2}, // cannot reach anything in time
		},
	}
}

// TestIEGTConvergesWithIneligibleWorker is the regression test for the
// sigma_dot = 0 convergence check: it used to include workers with empty
// strategy spaces (payoff pinned at zero), so the equal-payoff criterion
// could never fire while any such worker existed, and runs only terminated
// via a full no-change round. With the fix, at least one seed must converge
// in the very round that equalized the population payoffs (final trace row
// with Changes > 0).
func TestIEGTConvergesWithIneligibleWorker(t *testing.T) {
	in := ineligibleWorkerInstance()
	g := mustGen(t, in)
	if got := len(g.ForWorker(2)); got != 0 {
		t.Fatalf("worker 2 has %d strategies, want 0 (test setup)", got)
	}

	var equalPayoffExit bool
	for seed := int64(0); seed < 10; seed++ {
		res, err := IEGT(context.Background(), g, Options{Seed: seed, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: IEGT did not converge", seed)
		}
		if err := VerifyEquilibrium(g, res.Assignment); err != nil {
			t.Errorf("seed %d: converged state rejected: %v", seed, err)
		}
		if n := len(res.Trace); n > 0 && res.Trace[n-1].Changes > 0 {
			equalPayoffExit = true
		}
	}
	if !equalPayoffExit {
		t.Error("no seed converged via the population equal-payoff criterion; " +
			"sigma_dot = 0 check is still blocked by strategy-less workers")
	}
}

// TestIEGTTraceRecordsPotential is the regression test for the IEGT trace:
// IterationStat.Potential was left at zero because the evolutionary dynamics
// have no potential function of their own. It now carries Phi at the default
// IAU weights so FGT and IEGT traces are comparable.
func TestIEGTTraceRecordsPotential(t *testing.T) {
	in := gridInstance(8, 4, 2, 100, 17)
	res, err := IEGT(context.Background(), mustGen(t, in), Options{Seed: 3, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	for i, st := range res.Trace {
		if st.Potential == 0 {
			t.Fatalf("trace row %d has zero potential: %+v", i, st)
		}
	}
}

// TestPopulationPayoffs pins the population definition: only workers with a
// non-empty strategy space evolve.
func TestPopulationPayoffs(t *testing.T) {
	in := ineligibleWorkerInstance()
	g := mustGen(t, in)
	res, err := IEGT(context.Background(), g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := game.NewState(g)
	if err := s.LoadAssignment(res.Assignment); err != nil {
		t.Fatal(err)
	}
	pop := populationPayoffs(s)
	if len(pop) != 2 {
		t.Fatalf("population size = %d, want 2 (worker 2 is ineligible)", len(pop))
	}
}
