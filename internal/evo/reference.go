// This file retains the pre-index IEGT implementation verbatim so the
// optimized loop can be differentially tested against it: same seed and
// options must produce a bit-identical assignment, iteration count,
// convergence flag, and trace. It is the executable specification of the
// solver's semantics, not a fallback — do not optimize it.

package evo

import (
	"context"
	"math/rand"

	"fairtask/internal/fairness"
	"fairtask/internal/game"
	"fairtask/internal/vdps"
)

// ReferenceIEGT is the direct transcription of Algorithm 3 the optimized
// IEGT is pinned against: per-round population statistics materialize the
// payoff slice, strategy selection allocates fresh candidate lists, and
// traced rounds re-run payoff.Summarize over the whole instance.
func ReferenceIEGT(ctx context.Context, g *vdps.Generator, opt Options) (*game.Result, error) {
	opt = opt.withDefaults()
	s := game.NewState(g)
	if len(s.Current) == 0 {
		return nil, game.ErrNoWorkers
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	s.RandomInit(rng)

	res := &game.Result{}
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ubar := referenceAverage(populationPayoffs(s))
		changes := 0
		for w := range s.Current {
			if s.Payoffs[w] >= ubar {
				continue
			}
			if opt.MutationRate > 0 && rng.Float64() < opt.MutationRate {
				if si, ok := referenceRandomAvailable(s, w, rng); ok {
					s.Switch(w, si)
					changes++
					continue
				}
			}
			if si, ok := referenceRandomBetter(s, w, rng); ok {
				s.Switch(w, si)
				changes++
			}
		}
		res.Iterations = iter
		if opt.Trace || opt.Recorder != nil {
			sum := s.Summary()
			st := game.IterationStat{
				Iteration:  iter,
				Changes:    changes,
				Potential:  fairness.Potential(fairness.DefaultParams(), s.Payoffs),
				PayoffDiff: sum.Difference,
				AvgPayoff:  sum.Average,
			}
			if opt.Trace {
				res.Trace = append(res.Trace, st)
			}
			if opt.Recorder != nil {
				opt.Recorder.RecordIteration("IEGT", st)
			}
		}
		if changes == 0 || payoffsEqual(populationPayoffs(s), opt.Tolerance) {
			res.Converged = true
			break
		}
	}
	res.Assignment = s.Assignment()
	res.Summary = s.Summary()
	res.Potential = fairness.Potential(fairness.DefaultParams(), s.Payoffs)
	return res, nil
}

// referenceAverage is the slice form of populationAverage the pre-index
// solver used.
func referenceAverage(p []float64) float64 {
	if len(p) == 0 {
		return 0
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	return sum / float64(len(p))
}

// referenceRandomBetter is randomBetterStrategy with the original
// allocate-per-call candidate list.
func referenceRandomBetter(s *game.State, w int, rng *rand.Rand) (int, bool) {
	cur := 0.0
	if s.Current[w] != game.Null {
		cur = s.Payoffs[w]
	}
	var better []int
	for si := range s.Strategies[w] {
		if si == s.Current[w] {
			continue
		}
		if s.Strategies[w][si].Payoff > cur && s.Available(w, si) {
			better = append(better, si)
		}
	}
	if len(better) == 0 {
		return game.Null, false
	}
	return better[rng.Intn(len(better))], true
}

// referenceRandomAvailable is randomAvailableStrategy with the original
// allocate-per-call candidate list.
func referenceRandomAvailable(s *game.State, w int, rng *rand.Rand) (int, bool) {
	var avail []int
	for si := range s.Strategies[w] {
		if si != s.Current[w] && s.Available(w, si) {
			avail = append(avail, si)
		}
	}
	if len(avail) == 0 {
		return game.Null, false
	}
	return avail[rng.Intn(len(avail))], true
}
