package evo

import "fairtask/internal/fault"

// fpIEGTRound is hit once per IEGT evolution round; armed chaos specs can
// fail or delay a solve mid-convergence. Disarmed it is one atomic load.
var fpIEGTRound = fault.Point("evo.iegt.round")
