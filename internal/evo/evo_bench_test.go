package evo

import (
	"context"
	"testing"

	"fairtask/internal/vdps"
)

func BenchmarkIEGT(b *testing.B) {
	in := gridInstance(20, 10, 3, 100, 1)
	g, err := vdps.Generate(in, vdps.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IEGT(context.Background(), g, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
