// Package evo implements the Improved Evolutionary Game-Theoretic (IEGT)
// task assignment of paper §VI (Algorithm 3).
//
// The worker population of a distribution center repeatedly plays the
// assignment game. Each round, the replicator-dynamics signal
//
//	sigma_dot_km(t) = sigma_km(t) * (U_km(t) - Ubar_k(t))     (Equation 11)
//
// is evaluated per worker: a worker whose payoff falls below the population's
// average (sigma_dot < 0) is under selection pressure and switches — if
// possible — to a randomly chosen available strategy with a strictly higher
// payoff ("evolve or be eliminated"). The process stops at an improved
// evolutionary equilibrium: either all payoffs are (numerically) equal
// (sigma_dot = 0) or no worker changed strategy in a round.
package evo

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"fairtask/internal/fairness"
	"fairtask/internal/game"
	"fairtask/internal/model"
	"fairtask/internal/obs"
	"fairtask/internal/vdps"
)

// Options configure an IEGT run.
type Options struct {
	// MaxIterations caps evolution rounds. Zero means the default of 500.
	MaxIterations int
	// Seed drives the random initialization and random strategy selection.
	Seed int64
	// Tolerance is the payoff-equality tolerance for declaring
	// sigma_dot = 0. Zero means the numerical default of 1e-9; any negative
	// value (use the NoTolerance constant) requires exactly equal payoffs,
	// which the zero value cannot express.
	Tolerance float64
	// Parallel sets the goroutine count for the deterministic speculative
	// selection sweep: quiescing rounds gather the below-average workers'
	// better-strategy candidate lists concurrently against the frozen
	// pre-round state, while the random draws and commits stay sequential
	// in the fixed visiting order. Results are bit-identical to the
	// sequential sweep and independent of GOMAXPROCS. 0 or 1 disables.
	// Runs with MutationRate > 0 always use the sequential sweep (the
	// mutation draw consumes randomness on every evaluation, which the
	// candidate-gathering phase cannot reproduce).
	Parallel int
	// Trace enables per-iteration statistics collection (Figure 12).
	Trace bool
	// MutationRate is the probability that a below-average worker explores
	// a uniformly random available strategy instead of a strictly better
	// one — the classic mutation operator of evolutionary games. Zero (the
	// paper's Algorithm 3) disables exploration. With mutation enabled, a
	// round with mutations never counts as converged.
	MutationRate float64
	// Recorder receives one IterationStat per round via RecordIteration.
	// Nil disables telemetry; per-round statistics are then only computed
	// when Trace is set.
	Recorder obs.Recorder
}

// NoTolerance selects exact payoff equality in Options.Tolerance: the
// sigma_dot = 0 stopping criterion then only fires when all population
// payoffs are bit-equal. The zero value keeps the numerical default
// tolerance, so "exactly zero" needs this sentinel (any negative value
// works; the constant names the intent).
const NoTolerance = -1

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 500
	}
	if o.Tolerance < 0 {
		o.Tolerance = 0 // NoTolerance: exact payoff equality
	} else if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// IEGT runs the Improved Evolutionary Game-Theoretic approach (Algorithm 3)
// on the population of the generator's instance and returns the resulting
// assignment. The utility of a worker in the evolutionary game is its raw
// payoff (paper §VI-B), not the IAU.
//
// ctx is observed at every evolution round boundary: when it is done the
// run stops and ctx.Err() is returned.
func IEGT(ctx context.Context, g *vdps.Generator, opt Options) (*game.Result, error) {
	opt = opt.withDefaults()
	bsp := obs.SpanFromContext(ctx).Child("state.build")
	s := game.NewState(g)
	return iegtRun(ctx, s, opt, bsp, false)
}

// IEGTFromState runs Algorithm 3 on a prebuilt, unplayed state (fresh from
// game.NewState or game.NewStateWithStrategies). The result is bit-identical
// to IEGT on the generator the state was built from; the streaming engine
// uses it to re-run the evolutionary dynamics over incrementally repaired
// strategy spaces.
func IEGTFromState(ctx context.Context, s *game.State, opt Options) (*game.Result, error) {
	opt = opt.withDefaults()
	bsp := obs.SpanFromContext(ctx).Child("state.build")
	return iegtRun(ctx, s, opt, bsp, false)
}

// IEGTFromSeededState runs the selection rounds of Algorithm 3 on a state
// whose joint strategy has already been played — the streaming engine's
// continuation mode replays the previous committed equilibrium onto repaired
// strategy spaces and resumes the evolution from there. The seeded random
// initialization is skipped, so the result is NOT bit-pinned against
// IEGT/IEGTFromState on the same generator; callers certify results
// independently (the streaming engine audits every continuation resolve).
func IEGTFromSeededState(ctx context.Context, s *game.State, opt Options) (*game.Result, error) {
	opt = opt.withDefaults()
	bsp := obs.SpanFromContext(ctx).Child("state.build")
	return iegtRun(ctx, s, opt, bsp, true)
}

// iegtRun is the shared core of IEGT, IEGTFromState and IEGTFromSeededState.
// bsp is the caller's open state-build span, ended once initialization
// completes; seeded states skip the random initialization and keep their
// played joint strategy as the evolution's starting population.
func iegtRun(ctx context.Context, s *game.State, opt Options, bsp *obs.Span, seeded bool) (*game.Result, error) {
	sp := obs.SpanFromContext(ctx)
	if len(s.Current) == 0 {
		bsp.End()
		return nil, game.ErrNoWorkers
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	if !seeded {
		s.RandomInit(rng)
	}

	var tracker *game.SummaryTracker
	if opt.Trace || opt.Recorder != nil {
		tracker = game.NewSummaryTracker(s)
	}
	bsp.End()

	res := &game.Result{}
	// Population membership (workers with a non-empty strategy space) is
	// fixed for the whole run, so the per-round average and equal-payoff
	// checks fold into allocation-free scans over s.Payoffs that visit the
	// same workers in the same order as the populationPayoffs slice the
	// reference builds — the accumulated values are bit-identical.
	var cand []int // scratch for random strategy selection
	// Dirty-set gating for the selection sweep, mirroring the FGT loop:
	// version counts switches, cleanAt[w] = version+1 records that w's last
	// evaluation at that version found no strictly better available strategy
	// and consumed no randomness — with the payoff multiset (hence ubar) and
	// the owner table unchanged since, re-scanning would provably come up
	// empty again, so the O(strategies) scan is skipped. The gate never
	// engages with mutation enabled: a below-average worker then draws from
	// rng on every evaluation, and skipping would shift the random stream.
	version := 0
	cleanAt := make([]int, len(s.Current))
	// Speculative parallel sweep setup (see game.ParallelSweep). The random
	// draws stay sequential in the commit loop, so only MutationRate == 0
	// runs can speculate: the mutation operator consumes randomness on every
	// evaluation, which candidate gathering cannot reproduce.
	par := opt.Parallel
	if opt.MutationRate > 0 {
		par = 1
	}
	var order []int
	var cands [][]int
	if par > 1 {
		order = make([]int, len(s.Current))
		for i := range order {
			order[i] = i
		}
		cands = make([][]int, len(s.Current))
	}
	prevChanges := len(s.Current) // assume a busy first round: no speculation
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rsp := sp.Child("round")
		rsp.SetAttrInt("i", iter)
		if err := fpIEGTRound.Hit(ctx); err != nil {
			rsp.End()
			return nil, fmt.Errorf("evo: iegt round %d: %w", iter, err)
		}
		ubar := populationAverage(s)
		// Phase A: gather the below-average workers' better-strategy
		// candidate lists concurrently against the frozen pre-round state.
		// A worker's own payoff cannot change before its turn (each worker
		// switches at most once per round) and ubar is frozen at the round
		// start, so the selection filter is commit-invariant; only the
		// candidate lists go stale after the round's first commit.
		spec := par > 1 && game.ShouldSpeculate(prevChanges, len(s.Current))
		if spec {
			roundV := version
			rsp.SetAttrInt("spec", game.ParallelSweep(par, order,
				func(w int) bool {
					return s.Payoffs[w] < ubar && cleanAt[w] != roundV+1
				},
				func(w int) {
					cands[w] = betterCandidates(s, w, cands[w][:0])
				}))
		}
		roundStart := version
		changes, reeval := 0, 0
		for w := range s.Current {
			// sigma_km > 0 for every present strategy, so the sign of
			// sigma_dot is the sign of (U - Ubar): below-average workers
			// are under negative selection pressure.
			if s.Payoffs[w] >= ubar {
				continue
			}
			if cleanAt[w] == version+1 {
				continue
			}
			si, ok := -1, false
			if opt.MutationRate > 0 && rng.Float64() < opt.MutationRate {
				si, ok = randomAvailableStrategy(s, w, rng, &cand)
			}
			if !ok {
				if spec && version == roundStart {
					// No commit yet this round: the frozen candidate list
					// equals what a live scan would gather, and the draw
					// consumes rng exactly when the sequential sweep would
					// (only on a non-empty list).
					if cs := cands[w]; len(cs) > 0 {
						si, ok = cs[rng.Intn(len(cs))], true
					}
				} else {
					si, ok = randomBetterStrategy(s, w, rng, &cand)
					if spec {
						reeval++
					}
				}
			}
			if ok {
				s.Switch(w, si)
				if tracker != nil {
					tracker.Update(w)
				}
				changes++
				version++
			} else if opt.MutationRate == 0 {
				cleanAt[w] = version + 1
			}
		}
		if spec {
			rsp.SetAttrInt("reeval", reeval)
		}
		prevChanges = changes
		res.Iterations = iter
		if tracker != nil {
			diff, avg := tracker.DiffAvg()
			st := game.IterationStat{
				Iteration: iter,
				Changes:   changes,
				// IEGT's raw-payoff dynamics have no potential of their own;
				// Phi at the default IAU weights is recorded so traces stay
				// comparable with FGT's.
				Potential:  fairness.Potential(fairness.DefaultParams(), s.Payoffs),
				PayoffDiff: diff,
				AvgPayoff:  avg,
			}
			if opt.Trace {
				res.Trace = append(res.Trace, st)
			}
			if opt.Recorder != nil {
				opt.Recorder.RecordIteration("IEGT", st)
			}
		}
		rsp.End()
		// The sigma_dot = 0 criterion applies to the evolving population:
		// workers with empty strategy spaces are not part of the game (their
		// payoff is pinned at zero), so they must not block the equal-payoff
		// test — the population average excludes them for the same reason.
		if changes == 0 || populationEqual(s, opt.Tolerance) {
			res.Converged = true
			break
		}
	}
	res.Assignment = s.Assignment()
	res.Summary = s.Summary()
	res.Potential = fairness.Potential(fairness.DefaultParams(), s.Payoffs)
	return res, nil
}

// populationEqual reports whether the evolving population's payoffs all lie
// within tol of each other, the allocation-free form of
// payoffsEqual(populationPayoffs(s), tol).
func populationEqual(s *game.State, tol float64) bool {
	min, max := math.Inf(1), math.Inf(-1)
	n := 0
	for w := range s.Current {
		if len(s.Strategies[w]) == 0 {
			continue
		}
		v := s.Payoffs[w]
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		n++
	}
	if n < 2 {
		return true
	}
	return max-min <= tol
}

// populationPayoffs returns the payoffs of the evolving population: workers
// with at least one strategy. Workers with empty strategy spaces cannot play
// and are excluded from both the average and the equal-payoff convergence
// test.
func populationPayoffs(s *game.State) []float64 {
	out := make([]float64, 0, len(s.Current))
	for w := range s.Current {
		if len(s.Strategies[w]) == 0 {
			continue
		}
		out = append(out, s.Payoffs[w])
	}
	return out
}

// populationAverage is Ubar_k (Equation 14). Every worker holds exactly one
// strategy, so each population share sigma_km is 1/|G_k| and the
// share-weighted average reduces to the mean payoff over the evolving
// population. The scan visits workers in the same order populationPayoffs
// appends them, so the accumulated sum — and the hot loop's switch decisions
// that hinge on it — is bit-identical to averaging the materialized slice,
// without the per-round allocation.
func populationAverage(s *game.State) float64 {
	var sum float64
	n := 0
	for w := range s.Current {
		if len(s.Strategies[w]) == 0 {
			continue
		}
		sum += s.Payoffs[w]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// randomBetterStrategy picks uniformly at random among worker w's available
// strategies with payoff strictly above the current one (Algorithm 3,
// lines 23-25). The candidate list is gathered into *buf, reused across
// calls; candidate order and rng consumption match the pre-scratch form, so
// the selected strategy is bit-identical for the same rng state.
func randomBetterStrategy(s *game.State, w int, rng *rand.Rand, buf *[]int) (int, bool) {
	better := betterCandidates(s, w, (*buf)[:0])
	*buf = better
	if len(better) == 0 {
		return game.Null, false
	}
	return better[rng.Intn(len(better))], true
}

// betterCandidates appends to dst the indices of worker w's available
// strategies with payoff strictly above the current one, in strategy order
// (Algorithm 3, lines 23-25). A pure read of the state, safe for the
// concurrent gathering phase of the speculative sweep.
func betterCandidates(s *game.State, w int, dst []int) []int {
	cur := 0.0
	if s.Current[w] != game.Null {
		cur = s.Payoffs[w]
	}
	for si := range s.Strategies[w] {
		if si == s.Current[w] {
			continue
		}
		if s.Strategies[w][si].Payoff > cur && s.Available(w, si) {
			dst = append(dst, si)
		}
	}
	return dst
}

// randomAvailableStrategy picks uniformly among all of worker w's available
// strategies other than the current one (the mutation operator). *buf is the
// shared candidate scratch, as in randomBetterStrategy.
func randomAvailableStrategy(s *game.State, w int, rng *rand.Rand, buf *[]int) (int, bool) {
	avail := (*buf)[:0]
	for si := range s.Strategies[w] {
		if si != s.Current[w] && s.Available(w, si) {
			avail = append(avail, si)
		}
	}
	*buf = avail
	if len(avail) == 0 {
		return game.Null, false
	}
	return avail[rng.Intn(len(avail))], true
}

// payoffsEqual reports whether all payoffs lie within tol of each other.
func payoffsEqual(p []float64, tol float64) bool {
	if len(p) < 2 {
		return true
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range p {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max-min <= tol
}

// Replicator computes the replicator-dynamics value sigma_dot for a
// hypothetical worker utility u in a population with share sigma and average
// utility ubar (Equation 11). Exposed for tests and for the convergence
// experiment, which plots the selection pressure over iterations.
func Replicator(sigma, u, ubar float64) float64 {
	return sigma * (u - ubar)
}

// PopulationShares returns sigma_km per strategy identity: since each worker
// holds a distinct VDPS, shares are 1/n for each of the n playing workers
// (Equations 12-13). Exposed for the convergence experiment.
func PopulationShares(s *game.State) []float64 {
	var n int
	for w := range s.Current {
		if s.Current[w] != game.Null {
			n++
		}
	}
	out := make([]float64, len(s.Current))
	if n == 0 {
		return out
	}
	for w := range s.Current {
		if s.Current[w] != game.Null {
			out[w] = 1 / float64(n)
		}
	}
	return out
}

// VerifyEquilibrium checks the improved evolutionary stable state of
// Algorithm 3 for an existing assignment: either all population payoffs are
// numerically equal (the sigma_dot = 0 stopping criterion), or no worker
// with payoff below the population average has an available strategy with
// strictly higher payoff. It returns nil for a stable assignment and a
// descriptive error otherwise.
func VerifyEquilibrium(g *vdps.Generator, a *model.Assignment) error {
	s := game.NewState(g)
	if err := s.LoadAssignment(a); err != nil {
		return err
	}
	if populationEqual(s, 1e-9) {
		return nil
	}
	ubar := populationAverage(s)
	for w := range s.Current {
		if s.Payoffs[w] >= ubar || len(s.Strategies[w]) == 0 {
			continue
		}
		cur := s.Payoffs[w]
		for si := range s.Strategies[w] {
			if si == s.Current[w] {
				continue
			}
			if s.Strategies[w][si].Payoff > cur && s.Available(w, si) {
				return fmt.Errorf(
					"evo: worker %d (payoff %g, below average %g) can still improve via %v",
					w, cur, ubar, s.StrategySeq(w, si))
			}
		}
	}
	return nil
}
