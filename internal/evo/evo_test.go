package evo

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"fairtask/internal/game"
	"fairtask/internal/geo"
	"fairtask/internal/model"
	"fairtask/internal/travel"
	"fairtask/internal/vdps"
)

func gridInstance(nPoints, nWorkers, maxDP int, expiry float64, seed int64) *model.Instance {
	in := &model.Instance{
		Center: geo.Pt(0, 0),
		Travel: travel.MustModel(geo.Euclidean{}, 1),
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nPoints; i++ {
		in.Points = append(in.Points, model.DeliveryPoint{
			ID:  i,
			Loc: geo.Pt(rng.Float64()*6-3, rng.Float64()*6-3),
			Tasks: []model.Task{
				{ID: 2 * i, Point: i, Expiry: expiry, Reward: 1},
				{ID: 2*i + 1, Point: i, Expiry: expiry, Reward: 1},
			},
		})
	}
	for w := 0; w < nWorkers; w++ {
		in.Workers = append(in.Workers, model.Worker{
			ID:    w,
			Loc:   geo.Pt(rng.Float64()*6-3, rng.Float64()*6-3),
			MaxDP: maxDP,
		})
	}
	return in
}

func mustGen(t *testing.T, in *model.Instance) *vdps.Generator {
	t.Helper()
	g, err := vdps.Generate(in, vdps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIEGTProducesValidAssignment(t *testing.T) {
	in := gridInstance(8, 4, 3, 100, 1)
	res, err := IEGT(context.Background(), mustGen(t, in), Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("IEGT did not converge on a small instance")
	}
	if err := res.Assignment.Validate(in); err != nil {
		t.Errorf("IEGT assignment invalid: %v", err)
	}
	if res.Summary.Assigned == 0 {
		t.Error("IEGT assigned no workers")
	}
}

// The IEGT stable state must satisfy: no below-average worker has an
// available strictly better strategy (otherwise the round would have
// switched it and not terminated).
func TestIEGTEquilibriumCondition(t *testing.T) {
	in := gridInstance(10, 5, 2, 100, 3)
	g := mustGen(t, in)
	res, err := IEGT(context.Background(), g, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence")
	}
	// Rebuild the final state.
	s := game.NewState(g)
	for w, r := range res.Assignment.Routes {
		if len(r) == 0 {
			continue
		}
		for si := range s.Strategies[w] {
			if routesEqual(s.StrategySeq(w, si), r) {
				s.Switch(w, si)
				break
			}
		}
	}
	ubar := populationAverage(s)
	for w := range s.Current {
		if s.Payoffs[w] >= ubar || len(s.Strategies[w]) == 0 {
			continue
		}
		var buf []int
		if _, ok := randomBetterStrategy(s, w, rand.New(rand.NewSource(0)), &buf); ok {
			t.Errorf("worker %d is below average (%g < %g) yet has a better available strategy",
				w, s.Payoffs[w], ubar)
		}
	}
}

func routesEqual(a, b model.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIEGTDeterministicPerSeed(t *testing.T) {
	in := gridInstance(8, 4, 2, 100, 5)
	g := mustGen(t, in)
	a, _ := IEGT(context.Background(), g, Options{Seed: 21})
	b, _ := IEGT(context.Background(), g, Options{Seed: 21})
	if a.Summary.Difference != b.Summary.Difference || a.Iterations != b.Iterations {
		t.Error("same seed produced different results")
	}
}

func TestIEGTNoWorkers(t *testing.T) {
	in := gridInstance(3, 1, 1, 100, 7)
	in.Workers = nil
	g, err := vdps.Generate(in, vdps.Options{MaxSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IEGT(context.Background(), g, Options{}); err != game.ErrNoWorkers {
		t.Errorf("err = %v, want ErrNoWorkers", err)
	}
}

func TestIEGTTrace(t *testing.T) {
	in := gridInstance(10, 4, 2, 100, 9)
	res, err := IEGT(context.Background(), mustGen(t, in), Options{Seed: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Iterations {
		t.Fatalf("trace length %d != iterations %d", len(res.Trace), res.Iterations)
	}
	if math.Abs(res.Trace[len(res.Trace)-1].PayoffDiff-res.Summary.Difference) > 1e-9 {
		t.Error("trace disagrees with final summary")
	}
}

func TestPayoffsEqual(t *testing.T) {
	if !payoffsEqual(nil, 0.1) || !payoffsEqual([]float64{1}, 0.1) {
		t.Error("degenerate slices should be equal")
	}
	if !payoffsEqual([]float64{1, 1.05}, 0.1) {
		t.Error("within tolerance should be equal")
	}
	if payoffsEqual([]float64{1, 2}, 0.1) {
		t.Error("outside tolerance should be unequal")
	}
}

func TestReplicatorSign(t *testing.T) {
	if Replicator(0.5, 1, 2) >= 0 {
		t.Error("below-average utility should give negative sigma_dot")
	}
	if Replicator(0.5, 3, 2) <= 0 {
		t.Error("above-average utility should give positive sigma_dot")
	}
	if Replicator(0.5, 2, 2) != 0 {
		t.Error("average utility should give zero sigma_dot")
	}
	if Replicator(0, 5, 1) != 0 {
		t.Error("zero share should give zero sigma_dot")
	}
}

func TestPopulationShares(t *testing.T) {
	in := gridInstance(6, 3, 2, 100, 13)
	g := mustGen(t, in)
	s := game.NewState(g)
	s.RandomInit(rand.New(rand.NewSource(1)))
	shares := PopulationShares(s)
	var sum float64
	for w, sh := range shares {
		if (s.Current[w] == game.Null) != (sh == 0) {
			t.Errorf("worker %d: share %g inconsistent with strategy", w, sh)
		}
		sum += sh
	}
	if sum > 0 && math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %g, want 1", sum)
	}
}

// On a symmetric instance IEGT should typically reach a lower payoff
// difference than a pure payoff-maximizing choice would; here we just check
// the difference is finite and the run improves or maintains fairness
// relative to its own start.
func TestIEGTImprovesFairness(t *testing.T) {
	in := gridInstance(12, 6, 2, 100, 17)
	g := mustGen(t, in)
	res, err := IEGT(context.Background(), g, Options{Seed: 4, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) < 1 {
		t.Fatal("no trace")
	}
	first := res.Trace[0].PayoffDiff
	last := res.Trace[len(res.Trace)-1].PayoffDiff
	if math.IsNaN(last) || math.IsInf(last, 0) {
		t.Fatal("non-finite payoff difference")
	}
	if last > first*3+1e-9 {
		t.Errorf("fairness deteriorated drastically: %g -> %g", first, last)
	}
}

func TestIEGTMutationStillValid(t *testing.T) {
	in := gridInstance(10, 5, 2, 100, 21)
	g := mustGen(t, in)
	res, err := IEGT(context.Background(), g, Options{Seed: 6, MutationRate: 0.3, MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(in); err != nil {
		t.Errorf("mutated IEGT assignment invalid: %v", err)
	}
}

func TestIEGTZeroMutationMatchesBaseline(t *testing.T) {
	in := gridInstance(8, 4, 2, 100, 23)
	g := mustGen(t, in)
	a, err := IEGT(context.Background(), g, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := IEGT(context.Background(), g, Options{Seed: 9, MutationRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Difference != b.Summary.Difference || a.Iterations != b.Iterations {
		t.Error("zero mutation rate changed the run")
	}
}

func TestVerifyEquilibrium(t *testing.T) {
	in := gridInstance(10, 5, 2, 100, 31)
	g := mustGen(t, in)
	res, err := IEGT(context.Background(), g, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("no convergence")
	}
	if err := VerifyEquilibrium(g, res.Assignment); err != nil {
		t.Errorf("IEGT output rejected by VerifyEquilibrium: %v", err)
	}
}
