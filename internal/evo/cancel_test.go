package evo

import (
	"context"
	"errors"
	"testing"
)

// cancelAfterErrCalls reports cancellation after limit Err() polls; IEGT
// polls once per evolution round, making the call count a round counter.
type cancelAfterErrCalls struct {
	context.Context
	calls, limit int
}

func (c *cancelAfterErrCalls) Err() error {
	c.calls++
	if c.calls > c.limit {
		return context.Canceled
	}
	return nil
}

// TestIEGTCanceledStopsBeforeMaxIterations mirrors the FGT acceptance
// check: cancellation ends the replicator loop at the next round boundary.
func TestIEGTCanceledStopsBeforeMaxIterations(t *testing.T) {
	in := gridInstance(10, 5, 3, 100, 2)
	g := mustGen(t, in)
	const limit = 3
	ctx := &cancelAfterErrCalls{Context: context.Background(), limit: limit}

	// MutationRate 1 keeps the population exploring, so the loop cannot
	// converge on its own — only cancellation can end it early.
	res, err := IEGT(ctx, g, Options{MaxIterations: 100000, Seed: 7, MutationRate: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("IEGT under canceled ctx: err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("IEGT returned a result alongside the cancellation error")
	}
	if ctx.calls > limit+1 {
		t.Fatalf("IEGT polled ctx %d times, want <= %d: it kept iterating after cancellation",
			ctx.calls, limit+1)
	}
}

func TestIEGTImmediateCancel(t *testing.T) {
	in := gridInstance(6, 3, 2, 100, 3)
	g := mustGen(t, in)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := IEGT(ctx, g, Options{Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("IEGT with pre-canceled ctx: err = %v, want context.Canceled", err)
	}
}
