package evo

import (
	"context"
	"testing"

	"fairtask/internal/game"
	"fairtask/internal/obs"
)

// captureRecorder collects RecordIteration calls so the optimized and
// reference solvers' telemetry streams can be compared exactly.
type captureRecorder struct {
	algos []string
	stats []game.IterationStat
}

func (r *captureRecorder) RecordIteration(algo string, st game.IterationStat) {
	r.algos = append(r.algos, algo)
	r.stats = append(r.stats, st)
}

func (r *captureRecorder) RecordVDPS(obs.VDPSEvent)     {}
func (r *captureRecorder) RecordSolve(obs.SolveEvent)   {}
func (r *captureRecorder) RecordAssign(obs.AssignEvent) {}

// sameResult requires bit-identical results from the allocation-free IEGT
// and the retained reference implementation.
func sameResult(t *testing.T, label string, got, want *game.Result) {
	t.Helper()
	if got.Iterations != want.Iterations || got.Converged != want.Converged {
		t.Fatalf("%s: (iterations, converged) = (%d, %v), reference (%d, %v)",
			label, got.Iterations, got.Converged, want.Iterations, want.Converged)
	}
	for w := range want.Assignment.Routes {
		if !routesEqual(got.Assignment.Routes[w], want.Assignment.Routes[w]) {
			t.Fatalf("%s: worker %d route %v, reference %v",
				label, w, got.Assignment.Routes[w], want.Assignment.Routes[w])
		}
	}
	if got.Summary.Difference != want.Summary.Difference ||
		got.Summary.Average != want.Summary.Average ||
		got.Summary.Total != want.Summary.Total {
		t.Fatalf("%s: summary %+v, reference %+v", label, got.Summary, want.Summary)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("%s: trace length %d, reference %d", label, len(got.Trace), len(want.Trace))
	}
	for i := range want.Trace {
		if got.Trace[i] != want.Trace[i] {
			t.Fatalf("%s: trace[%d] = %+v, reference %+v", label, i, got.Trace[i], want.Trace[i])
		}
	}
}

// TestIEGTMatchesReference pins the optimized IEGT bit-exactly against the
// retained pre-index implementation: the allocation-free population scans
// and scratch-buffer strategy selection must not change a single rng draw,
// switch, iteration count, or traced statistic.
func TestIEGTMatchesReference(t *testing.T) {
	instances := map[string]int64{"a": 1, "b": 5, "tight": 9}
	variants := map[string]Options{
		"default":   {},
		"trace":     {Trace: true},
		"mutation":  {MutationRate: 0.3, Trace: true},
		"tolerance": {Tolerance: 0.5},
	}
	for iname, iseed := range instances {
		in := gridInstance(10, 5, 2, 100, iseed)
		if iname == "tight" {
			in = gridInstance(8, 6, 2, 6, iseed)
		}
		g := mustGen(t, in)
		for vname, opt := range variants {
			for seed := int64(0); seed < 4; seed++ {
				opt := opt
				opt.Seed = seed
				got, err := IEGT(context.Background(), g, opt)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ReferenceIEGT(context.Background(), g, opt)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, iname+"/"+vname, got, want)
			}
		}
	}
}

// TestIEGTRecorderMatchesReference compares the telemetry stream, which
// exercises the SummaryTracker every round even without Trace.
func TestIEGTRecorderMatchesReference(t *testing.T) {
	g := mustGen(t, gridInstance(10, 5, 2, 100, 3))
	for seed := int64(0); seed < 3; seed++ {
		var recGot, recWant captureRecorder
		if _, err := IEGT(context.Background(), g, Options{Seed: seed, Recorder: &recGot}); err != nil {
			t.Fatal(err)
		}
		if _, err := ReferenceIEGT(context.Background(), g, Options{Seed: seed, Recorder: &recWant}); err != nil {
			t.Fatal(err)
		}
		if len(recGot.stats) != len(recWant.stats) {
			t.Fatalf("seed %d: %d recorded rounds, reference %d",
				seed, len(recGot.stats), len(recWant.stats))
		}
		for i := range recWant.stats {
			if recGot.algos[i] != recWant.algos[i] || recGot.stats[i] != recWant.stats[i] {
				t.Fatalf("seed %d round %d: recorded (%s, %+v), reference (%s, %+v)",
					seed, i, recGot.algos[i], recGot.stats[i], recWant.algos[i], recWant.stats[i])
			}
		}
	}
}
