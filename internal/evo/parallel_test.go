package evo

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"fairtask/internal/obs"
)

// TestIEGTParallelMatchesReference pins the deterministic speculative
// candidate-gathering sweep bit-exactly against the sequential reference
// across seeds, scales, option variants and GOMAXPROCS values: identical
// assignment, iterations, convergence, summary, trace and — because rng
// draws happen only at commit time in visiting order — identical rng
// streams, regardless of goroutine count or core count.
func TestIEGTParallelMatchesReference(t *testing.T) {
	instances := map[string]int64{"small": 1, "large": 7}
	variants := map[string]Options{
		"default":   {},
		"trace":     {Trace: true},
		"tolerance": {Tolerance: 0.5},
		"strict":    {Tolerance: NoTolerance},
	}
	restore := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(restore)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for iname, iseed := range instances {
			in := gridInstance(10, 5, 2, 100, iseed)
			if iname == "large" {
				in = gridInstance(18, 12, 3, 60, iseed)
			}
			g := mustGen(t, in)
			for vname, base := range variants {
				for seed := int64(0); seed < 3; seed++ {
					for _, par := range []int{2, 4} {
						opt := base
						opt.Seed = seed
						opt.Parallel = par
						got, err := IEGT(context.Background(), g, opt)
						if err != nil {
							t.Fatal(err)
						}
						ref := opt
						ref.Parallel = 0
						want, err := ReferenceIEGT(context.Background(), g, ref)
						if err != nil {
							t.Fatal(err)
						}
						label := fmt.Sprintf("procs=%d/%s/%s/seed=%d/par=%d",
							procs, iname, vname, seed, par)
						sameResult(t, label, got, want)
					}
				}
			}
		}
	}
}

// TestIEGTParallelRecorderMatchesReference compares the per-round telemetry
// stream of the parallel sweep against the sequential reference: the
// speculative phase must not add, drop or reorder a single recorded round.
func TestIEGTParallelRecorderMatchesReference(t *testing.T) {
	g := mustGen(t, gridInstance(14, 8, 2, 100, 3))
	for seed := int64(0); seed < 3; seed++ {
		var recGot, recWant captureRecorder
		if _, err := IEGT(context.Background(), g, Options{Seed: seed, Parallel: 4, Recorder: &recGot}); err != nil {
			t.Fatal(err)
		}
		if _, err := ReferenceIEGT(context.Background(), g, Options{Seed: seed, Recorder: &recWant}); err != nil {
			t.Fatal(err)
		}
		if len(recGot.stats) != len(recWant.stats) {
			t.Fatalf("seed %d: %d recorded rounds, reference %d",
				seed, len(recGot.stats), len(recWant.stats))
		}
		for i := range recWant.stats {
			if recGot.algos[i] != recWant.algos[i] || recGot.stats[i] != recWant.stats[i] {
				t.Fatalf("seed %d round %d: recorded (%s, %+v), reference (%s, %+v)",
					seed, i, recGot.algos[i], recGot.stats[i], recWant.algos[i], recWant.stats[i])
			}
		}
	}
}

// TestIEGTParallelSweepSpeculates proves the speculative phase actually runs
// under the adaptive heuristic — otherwise the bit-exactness tests above
// would be vacuous. Round spans record a "spec" attribute when phase A ran.
func TestIEGTParallelSweepSpeculates(t *testing.T) {
	g := mustGen(t, gridInstance(18, 12, 3, 60, 7))
	speculated := false
	for seed := int64(0); seed < 5 && !speculated; seed++ {
		tr := obs.NewTracer()
		root := tr.Root("test")
		ctx := obs.ContextWithSpan(context.Background(), root)
		if _, err := IEGT(ctx, g, Options{Seed: seed, Parallel: 4}); err != nil {
			t.Fatal(err)
		}
		root.End()
		for _, sp := range tr.Collect("test").Spans {
			if sp.Name == "round" && sp.Attr("spec") != "" {
				speculated = true
				break
			}
		}
	}
	if !speculated {
		t.Fatal("no round ran the speculative parallel phase across 5 seeds; the heuristic never fires and the differential tests are vacuous")
	}
}

// TestIEGTMutationForcesSequential pins the mutation-mode fallback: with
// MutationRate > 0 every evaluation consumes rng draws, so the solver must
// run sequentially (no round span ever records a "spec" attribute) while
// still matching the reference bit-exactly.
func TestIEGTMutationForcesSequential(t *testing.T) {
	g := mustGen(t, gridInstance(10, 5, 2, 100, 1))
	for seed := int64(0); seed < 3; seed++ {
		tr := obs.NewTracer()
		root := tr.Root("test")
		ctx := obs.ContextWithSpan(context.Background(), root)
		opt := Options{Seed: seed, MutationRate: 0.3, Parallel: 4, Trace: true}
		got, err := IEGT(ctx, g, opt)
		if err != nil {
			t.Fatal(err)
		}
		root.End()
		for _, sp := range tr.Collect("test").Spans {
			if sp.Name == "round" && sp.Attr("spec") != "" {
				t.Fatalf("seed %d: mutation-mode round ran the speculative phase", seed)
			}
		}
		ref := opt
		ref.Parallel = 0
		want, err := ReferenceIEGT(context.Background(), g, ref)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("mutation/seed=%d", seed), got, want)
	}
}

// TestWithDefaultsToleranceSentinel is the regression test for the Tolerance
// zero-collapse bug, mirroring the game package's EpsilonUtility sentinel:
// the zero value keeps the numerical default, NoTolerance (and any negative
// value) selects an exact-zero tolerance, and positive values pass through.
func TestWithDefaultsToleranceSentinel(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{0, 1e-9},
		{NoTolerance, 0},
		{-0.5, 0},
		{0.5, 0.5},
	}
	for _, c := range cases {
		got := Options{Tolerance: c.in}.withDefaults().Tolerance
		if got != c.want {
			t.Errorf("Tolerance %v: withDefaults -> %v, want %v", c.in, got, c.want)
		}
	}
}
