package platform

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fairtask/internal/assign"
	"fairtask/internal/audit"
	"fairtask/internal/fault"
	"fairtask/internal/game"
	"fairtask/internal/model"
	"fairtask/internal/obs"
	"fairtask/internal/payoff"
	"fairtask/internal/vdps"
)

// Degradation-ladder rung names, recorded in game.Result.Degraded,
// Result.Degraded and obs.SolveEvent.Degraded. The exact rung is the empty
// string: a result without a rung label is a full-fidelity solve.
const (
	// RungSampled replaces the exact DP candidate generation with randomized
	// sampled generation (vdps.GenerateSampled) and re-runs the configured
	// solver over the sampled strategy spaces.
	RungSampled = "sampled"
	// RungGreedy is the last resort: greedy assignment (assign.GTA) over
	// sampled candidates — cheap, fairness-blind, but still a valid
	// assignment.
	RungGreedy = "greedy"
)

// Degrade configures the exact→sampled→greedy degradation ladder. When a
// rung's budget expires, its solve fails, or an armed failpoint fires, the
// next rung engages; the ladder is monotone — a rung never serves a request
// unless every better rung failed. Degraded (non-exact) results are always
// audited for the structural guarantees (route validity, disjointness,
// deadlines, VDPS membership) before being accepted, so a fallback can
// never ship an invalid assignment.
type Degrade struct {
	// ExactBudget is the wall-clock allowance of the exact rung, covering
	// DP candidate generation, the solve, and any retries. Zero means 10s.
	// Negative skips the exact rung entirely (useful for tests and for
	// instances known to be DP-hostile).
	ExactBudget time.Duration
	// SampledBudget is the wall-clock allowance of the sampled rung. Zero
	// means ExactBudget when that is positive, otherwise 10s. Negative
	// skips the rung. The greedy rung has no budget: it runs under the
	// caller's context alone.
	SampledBudget time.Duration
	// Sample configures candidate generation for the sampled and greedy
	// rungs. A zero Epsilon inherits the exact rung's VDPS.Epsilon; the
	// remaining zero fields take the vdps.SampleOptions defaults.
	Sample vdps.SampleOptions
}

// withDefaults fills the ladder's zero fields against the exact-rung VDPS
// options.
func (d Degrade) withDefaults(vopt vdps.Options) Degrade {
	if d.ExactBudget == 0 {
		d.ExactBudget = 10 * time.Second
	}
	if d.SampledBudget == 0 {
		// Inherit only a real allowance: with the exact rung disabled
		// (negative budget) the sampled rung gets the stock 10s, not the
		// disable marker.
		if d.ExactBudget > 0 {
			d.SampledBudget = d.ExactBudget
		} else {
			d.SampledBudget = 10 * time.Second
		}
	}
	if d.Sample.Epsilon == 0 {
		d.Sample.Epsilon = vopt.Epsilon
	}
	if d.Sample.MaxSize == 0 {
		d.Sample.MaxSize = vopt.MaxSize
	}
	return d
}

// fpSolve is hit at the start of every per-center solve attempt (every rung,
// every retry), so chaos specs can fail whole solves independently of the
// generation- and round-level failpoints.
var fpSolve = fault.Point("platform.solve")

// rung is one step of the degradation ladder.
type rung struct {
	// name is the rung's Degraded label; empty for the exact rung.
	name string
	// budget bounds the rung's wall clock including retries; zero means
	// no budget beyond the caller's context.
	budget time.Duration
	// solver computes the assignment from the rung's candidates.
	solver assign.Assigner
	// generate builds the rung's candidate generator.
	generate func(ctx context.Context, in *model.Instance) (*vdps.Generator, error)
}

// SolveInstance generates candidates for one center and runs the solver,
// retrying under Options.Retry and walking the Options.Degrade ladder when
// rungs fail. The returned audit report is non-nil when Options.Audit was
// set (any rung) or when a degraded rung served the result (degraded
// results are always audited). Violations in the final report are reported,
// not fatal — policy is the caller's; violations on degraded rungs reject
// the rung and engage the next one.
func SolveInstance(ctx context.Context, in *model.Instance, solver assign.Assigner, opt Options) (*game.Result, *audit.Report, error) {
	vopt := opt.VDPS
	if vopt.Recorder == nil {
		vopt.Recorder = opt.Recorder
	}
	exactGen := func(ctx context.Context, in *model.Instance) (*vdps.Generator, error) {
		return vdps.GenerateContext(ctx, in, vopt)
	}
	if opt.Degrade == nil {
		return solveRung(ctx, in, rung{solver: solver, generate: exactGen}, opt)
	}

	d := opt.Degrade.withDefaults(vopt)
	sopt := d.Sample
	if sopt.Recorder == nil {
		sopt.Recorder = opt.Recorder
	}
	sampledGen := func(ctx context.Context, in *model.Instance) (*vdps.Generator, error) {
		return vdps.GenerateSampledContext(ctx, in, sopt)
	}
	ladder := []rung{
		{name: "", budget: d.ExactBudget, solver: solver, generate: exactGen},
		{name: RungSampled, budget: d.SampledBudget, solver: solver, generate: sampledGen},
		{name: RungGreedy, solver: assign.GTA{}, generate: sampledGen},
	}

	var errs []error
	for _, rg := range ladder {
		if rg.budget < 0 {
			continue // rung disabled by configuration
		}
		res, rep, err := solveRung(ctx, in, rg, opt)
		if err == nil {
			return res, rep, nil
		}
		label := rg.name
		if label == "" {
			label = "exact"
		}
		errs = append(errs, fmt.Errorf("%s rung: %w", label, err))
		// A dead parent context means the caller is out of time, not the
		// rung: stop the ladder instead of burning CPU on fallbacks nobody
		// will read.
		if ctx.Err() != nil {
			return nil, nil, errors.Join(errs...)
		}
	}
	return nil, nil, fmt.Errorf("platform: degradation ladder exhausted: %w", errors.Join(errs...))
}

// solveRung runs one ladder rung: an optional per-rung budget around
// generation + solve (+ retries under Options.Retry), the per-solve
// failpoint, telemetry, and the rung's audit. Degraded rungs are audited
// unconditionally and an audit violation fails the rung.
func solveRung(ctx context.Context, in *model.Instance, rg rung, opt Options) (*game.Result, *audit.Report, error) {
	rungLabel := rg.name
	if rungLabel == "" {
		rungLabel = "exact"
	}
	rsp := obs.SpanFromContext(ctx).Child("rung." + rungLabel)
	defer rsp.End()
	rctx := obs.ContextWithSpan(ctx, rsp)
	if rg.budget > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(rctx, rg.budget)
		defer cancel()
	}

	var (
		res      *game.Result
		g        *vdps.Generator
		attempts int
	)
	start := time.Now()
	attempt := func(actx context.Context) error {
		attempts++
		asp := rsp.Child("attempt")
		asp.SetAttrInt("n", attempts)
		defer asp.End()
		actx = obs.ContextWithSpan(actx, asp)
		if err := fpSolve.Hit(actx); err != nil {
			return fmt.Errorf("platform: solve: %w", err)
		}
		var err error
		g, err = rg.generate(actx, in)
		if err != nil {
			return err
		}
		res, err = rg.solver.Assign(actx, g)
		return err
	}
	var err error
	if opt.Retry != nil && opt.Retry.MaxAttempts > 1 {
		err = fault.NewRetrier(*opt.Retry).Do(rctx, attempt)
	} else {
		err = attempt(rctx)
	}
	if err != nil {
		return nil, nil, err
	}
	res.Degraded = rg.name

	if opt.Recorder != nil {
		opt.Recorder.RecordSolve(obs.SolveEvent{
			Algorithm:  rg.solver.Name(),
			CenterID:   in.CenterID,
			Workers:    len(in.Workers),
			Points:     len(in.Points),
			Iterations: res.Iterations,
			Converged:  res.Converged,
			Elapsed:    time.Since(start),
			Degraded:   rg.name,
			Difference: payoff.Difference(res.Summary.Payoffs),
			Average:    payoff.Average(res.Summary.Payoffs),
			Potential:  res.Potential,
		})
	}

	ausp := rsp.Child("audit")
	rep, err := auditRung(in, rg, res, g, opt)
	ausp.End()
	if err != nil {
		return nil, nil, err
	}
	return res, rep, nil
}

// auditRung audits one rung's result. The exact rung is audited exactly when
// Options.Audit is set, with the caller's parameters. Degraded rungs are
// always audited — a fallback must never ship an invalid assignment — but
// when the caller provided no audit parameters the equilibrium certificate
// is skipped (Converged forced false): the caller's fairness weights are
// unknown, and the rung's job is the structural guarantees (routes,
// deadlines, disjointness, VDPS membership). A degraded rung failing its
// audit is a rung failure, surfaced as an error so the ladder falls through.
func auditRung(in *model.Instance, rg rung, res *game.Result, g *vdps.Generator, opt Options) (*audit.Report, error) {
	if opt.Audit == nil && rg.name == "" {
		return nil, nil
	}
	var o audit.Options
	if opt.Audit != nil {
		o = *opt.Audit
	}
	o.Generator = g
	o.Algorithm = rg.solver.Name()
	o.Converged = res.Converged && opt.Audit != nil
	rep := audit.Run(in, res.Assignment, &res.Summary, o)
	if rg.name != "" && !rep.OK() {
		return nil, fmt.Errorf("platform: %s rung failed verification: %w", rg.name, rep.Err())
	}
	return rep, nil
}

// worseRung returns the lower (more degraded) of two rung labels, where
// "" (exact) < RungSampled < RungGreedy.
func worseRung(a, b string) string {
	rank := func(r string) int {
		switch r {
		case RungGreedy:
			return 2
		case RungSampled:
			return 1
		default:
			return 0
		}
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}
