// Package platform is the spatial-crowdsourcing platform substrate: it runs
// task assignment over many distribution centers in parallel (the paper
// notes in §VII-A that assignment across centers is independent) and
// simulates the worker lifecycle over repeated assignment epochs — workers
// go offline while executing an assigned delivery point sequence and return
// when done, tasks expire if left unassigned, and new tasks may arrive.
package platform

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"fairtask/internal/assign"
	"fairtask/internal/audit"
	"fairtask/internal/fault"
	"fairtask/internal/game"
	"fairtask/internal/model"
	"fairtask/internal/obs"
	"fairtask/internal/payoff"
	"fairtask/internal/vdps"
)

// Options configure a one-shot multi-center assignment.
type Options struct {
	// VDPS configures candidate generation per center.
	VDPS vdps.Options
	// Parallelism bounds concurrent per-center solves. Zero means
	// runtime.GOMAXPROCS(0). Ignored when Pool is set.
	Parallelism int
	// Pool, when set, runs per-center solves on the shared long-lived
	// worker pool instead of per-call goroutines — the batch throughput
	// mode for serving many independent assignments concurrently. The
	// pool's size replaces Parallelism; result aggregation is unchanged
	// and stays in center order, so results are identical either way.
	Pool *Pool
	// Recorder receives one obs.SolveEvent per center and one
	// obs.AssignEvent for the whole assignment; it is also threaded into
	// VDPS generation when VDPS.Recorder is unset. Nil disables telemetry.
	Recorder obs.Recorder
	// Audit enables independent re-verification of every per-center result;
	// the reports land in Result.Audit. The options' Generator, Algorithm
	// and Converged fields are overwritten per center (the center's own
	// generator is reused, so auditing adds no second candidate
	// generation). Nil (the default) disables auditing. Violations are
	// reported, not fatal — policy is the caller's (the library fails the
	// solve, the HTTP service returns the report).
	Audit *audit.Options
	// Retry retries each per-center solve attempt (candidate generation +
	// solver run) under this policy. Nil or MaxAttempts < 2 disables
	// retrying. Context cancellation and deadline expiry are never retried.
	Retry *fault.RetryPolicy
	// Degrade enables the exact→sampled→greedy degradation ladder for
	// per-center solves; see Degrade. Nil (the default) means exact-only:
	// a failed solve fails the assignment.
	Degrade *Degrade
}

// Result is the outcome of a one-shot multi-center assignment.
type Result struct {
	// PerCenter holds each instance's result, indexed like
	// Problem.Instances.
	PerCenter []*game.Result
	// Payoffs concatenates all workers' payoffs across centers.
	Payoffs []float64
	// Difference is P_dif over all workers of all centers.
	Difference float64
	// Average is the mean payoff over all workers of all centers.
	Average float64
	// Elapsed is the wall-clock time of the whole solve.
	Elapsed time.Duration
	// Audit holds the per-center audit reports when Options.Audit was set,
	// indexed like PerCenter (nil entries for centers without workers,
	// which produce empty assignments without a solver run).
	Audit []*audit.Report
	// Degraded is the worst degradation rung that served any center
	// ("" = every center solved exactly, RungSampled, RungGreedy); see
	// the per-center rungs in PerCenter[i].Degraded.
	Degraded string
}

// AuditOK reports whether every executed audit passed. It is vacuously true
// when auditing was disabled.
func (r *Result) AuditOK() bool {
	for _, rep := range r.Audit {
		if rep != nil && !rep.OK() {
			return false
		}
	}
	return true
}

// AuditErr returns the first failed audit report's error, wrapped with its
// center, or nil when every audit passed.
func (r *Result) AuditErr(p *model.Problem) error {
	for i, rep := range r.Audit {
		if rep != nil && !rep.OK() {
			return fmt.Errorf("center %d: %w", p.Instances[i].CenterID, rep.Err())
		}
	}
	return nil
}

// ErrNoInstances is returned for a problem without instances.
var ErrNoInstances = errors.New("platform: problem has no instances")

// Assign solves every instance of the problem with the given algorithm,
// fanning centers out over Parallelism goroutines, and aggregates the
// paper's metrics over the full worker population.
func Assign(p *model.Problem, solver assign.Assigner, opt Options) (*Result, error) {
	return AssignContext(context.Background(), p, solver, opt)
}

// AssignContext is Assign with cancellation: centers not yet started when
// ctx is done are skipped, in-flight per-center solves observe ctx at their
// iteration boundaries and stop early, and the context error is returned.
func AssignContext(ctx context.Context, p *model.Problem, solver assign.Assigner, opt Options) (*Result, error) {
	if len(p.Instances) == 0 {
		return nil, ErrNoInstances
	}
	par := opt.Parallelism
	if opt.Pool != nil {
		par = opt.Pool.Size()
	} else if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	ctx, asp := obs.StartSpan(ctx, "assign")
	asp.SetAttrInt("centers", len(p.Instances))
	asp.SetAttr("algorithm", solver.Name())
	defer asp.End()
	start := time.Now()
	res := &Result{PerCenter: make([]*game.Result, len(p.Instances))}
	if opt.Audit != nil {
		res.Audit = make([]*audit.Report, len(p.Instances))
	}
	var sem chan struct{}
	if opt.Pool == nil {
		sem = make(chan struct{}, par)
	} else {
		opt.Pool.batchStarted()
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	for i := range p.Instances {
		if err := ctx.Err(); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			break
		}
		// Centers without workers yield an empty result without a solver
		// run (or an audit): there is nothing to assign.
		if len(p.Instances[i].Workers) == 0 {
			res.PerCenter[i] = &game.Result{
				Assignment: model.NewAssignment(0),
				Converged:  true,
			}
			continue
		}
		i := i
		solveCenter := func() {
			defer wg.Done()
			csp := asp.Child("center.solve")
			csp.SetAttrInt("center", p.Instances[i].CenterID)
			defer csp.End()
			r, rep, err := SolveInstance(obs.ContextWithSpan(ctx, csp), &p.Instances[i], solver, opt)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("center %d: %w", p.Instances[i].CenterID, err)
				}
				return
			}
			res.PerCenter[i] = r
			if res.Audit != nil {
				res.Audit[i] = rep
			}
		}
		wg.Add(1)
		if opt.Pool != nil {
			// Submit blocks while the shared queue is full, throttling
			// concurrent batches against each other instead of spawning
			// one goroutine per center.
			opt.Pool.Submit(solveCenter)
			continue
		}
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			solveCenter()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	for _, r := range res.PerCenter {
		res.Payoffs = append(res.Payoffs, r.Summary.Payoffs...)
		res.Degraded = worseRung(res.Degraded, r.Degraded)
	}
	res.Difference = payoff.Difference(res.Payoffs)
	res.Average = payoff.Average(res.Payoffs)
	res.Elapsed = time.Since(start)
	if opt.Recorder != nil {
		var points int
		for i := range p.Instances {
			points += len(p.Instances[i].Points)
		}
		opt.Recorder.RecordAssign(obs.AssignEvent{
			Algorithm:   solver.Name(),
			Centers:     len(p.Instances),
			Workers:     len(res.Payoffs),
			Points:      points,
			Parallelism: par,
			Elapsed:     res.Elapsed,
		})
	}
	return res, nil
}
